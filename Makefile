GO ?= go

# Native fuzz targets: the pinned wire decoders and the TCP frame parser.
# Each entry is <package>:<target>; fuzz-smoke runs every target briefly,
# fuzz-long (the nightly job) runs them for FUZZTIME_LONG each.
FUZZ_TARGETS = \
	./internal/types:FuzzDecodeVote \
	./internal/types:FuzzDecodeQC \
	./internal/types:FuzzDecodeCompactQC \
	./internal/types:FuzzDecodeBlock \
	./internal/types:FuzzDecodeTC \
	./internal/tcpnet:FuzzServeFrames$$ \
	./internal/tcpnet:FuzzServeFramesMultiPeer \
	./internal/app:FuzzBankApply \
	./internal/gateway:FuzzDecodeEventFrame \
	./internal/gateway:FuzzDecodeSubscribeFrame
FUZZTIME_SMOKE ?= 20s
FUZZTIME_LONG ?= 10m

.PHONY: all build build-examples vet test test-race bench bench-smoke bench-micro bench-guard fuzz-smoke fuzz-long adversary-fuzz adversary-fuzz-agg compactcert liveness-attack bank-workload obs-smoke gateway-smoke gateway-scale

all: test

build:
	$(GO) build ./...

# Smoke-compile the facade examples on their own: `go build ./...` covers
# them too, but this target is the CI step that fails loudly when an
# examples-only regression slips in.
build-examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# Race-detector run; CI runs this as its own job.
test-race:
	$(GO) test -race ./...

# Full figure benchmarks at reduced scale (n=31, one virtual minute each).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Quick smoke of the headline benchmarks; CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkThroughput|BenchmarkAblationBookkeeping|BenchmarkCrashRecovery' -benchtime=1x .

# Micro-benchmarks: PR-1 (QC cache, event core, tracker, signing payloads),
# PR-2 (WAL append/replay, vote-path journal appends), and PR-3 (batched
# signature verification vs the serial cold path).
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkVerifyQCCached|BenchmarkVerifyQCBatch' -benchmem ./internal/crypto/
	$(GO) test -run '^$$' -bench BenchmarkSimnetEventLoop -benchmem ./internal/simnet/
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerOnQC|BenchmarkMarker|BenchmarkJournalAppendVote' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkSigningPayload -benchmem ./internal/types/
	$(GO) test -run '^$$' -bench 'BenchmarkAppendFlush|BenchmarkReplay' -benchmem ./internal/wal/

# Bench guard: every AllocsPerRun regression guard plus the compact-QC
# wire-size guard (a steady-state certificate must stay O(1) bytes: 100 at
# n=31, 108 at n=103 — one extra bitmap word is the only growth allowed),
# run as tests so any regression is a hard failure, then the
# micro-benchmarks for the numbers. CI runs this; record results in
# BENCH_PR<n>.json when they move.
bench-guard:
	$(GO) test -run 'Alloc' -count=1 ./internal/types/ ./internal/simnet/ ./internal/core/ ./internal/wal/ ./internal/crypto/ ./internal/obs/ ./internal/app/
	$(GO) test -run 'TestCompactQCSizeFlat' -count=1 ./internal/types/
	$(MAKE) bench-micro

# Short native-fuzz pass over the wire decoders and the TCP frame parser;
# CI runs this on every push. `go test -fuzz` takes one target per
# invocation, so the loop fans the list out.
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "== fuzz $$pkg $$target ($(FUZZTIME_SMOKE))"; \
		$(GO) test $$pkg -run '^$$' -fuzz "$$target" -fuzztime $(FUZZTIME_SMOKE) || exit 1; \
	done

# Long fuzz for the nightly / manual-dispatch workflow.
fuzz-long:
	$(MAKE) fuzz-smoke FUZZTIME_SMOKE=$(FUZZTIME_LONG)

# The adversarial scenario fuzzer at its acceptance setting: >= 50 seeded
# randomized scenarios plus the weakened-rule canary.
adversary-fuzz:
	$(GO) run ./cmd/sftbench -experiment adversary -seed 1 -n 7

# The same sweep with compact certificates on the wire: every QC formed in
# every scenario is an aggregated bitmap certificate under real ed25519.
adversary-fuzz-agg:
	$(GO) run ./cmd/sftbench -experiment adversary -seed 1 -n 7 -scheme ed25519-agg

# The compact-certificate experiment (fig 7a analogue): n=31 vs n=103 wire
# bytes and verify CPU, vector vs aggregated form, under real ed25519.
compactcert:
	$(GO) run ./cmd/sftbench -experiment compactcert -seed 1

# Liveness under attack: f timeout-spam + lie-round-entry colluders against
# the passive baseline vs the active, attack-hardened pacemaker at one seed
# (explicit-only in sftbench; this is its acceptance shape). The experiment
# fails unless the hardened arm stays live with its per-peer timeout buffer
# bounded while the passive arm's grows without bound.
liveness-attack:
	$(GO) run ./cmd/sftbench -experiment livenessattack -seed 1 -n 7 -duration 10s

# The execution-layer workload at its acceptance shape: n=7 replicas each
# executing the signed-transfer bank before voting, >= 100k accounts with
# per-transaction ed25519 signatures, reporting submit -> f-strong and
# submit -> 2f-strong latency into BENCH_PR9.json. The run fails unless every
# committed height's state root agrees across all replicas.
bank-workload:
	$(GO) run ./cmd/sftbench -experiment bankworkload -n 7 -duration 30s -seed 1 -json BENCH_PR9.json

# Ops-surface smoke: start a live 4-node TCP cluster with -obs-addr and
# assert /metrics serves well-formed Prometheus exposition, /healthz is 200,
# and /tracez + /debug/pprof respond. CI runs this.
obs-smoke:
	bash scripts/obs_smoke.sh

# Access-tier smoke: a live 4-node cluster, an sftgateway following it, and
# the sftclient -subscribe probe verifying streamed strength proofs against
# the committee's PKI, plus the gateway's own /metrics + /healthz. CI runs
# this.
gateway-smoke:
	bash scripts/gateway_smoke.sh

# The access-tier scale experiment at its acceptance shape: 1000 concurrent
# proof-verified strength subscriptions on one gateway against an n=7
# cluster, commit cadence compared to a no-gateway baseline, and a lying
# gateway every subscriber must reject. Results go to BENCH_PR10.json.
gateway-scale:
	$(GO) run ./cmd/sftbench -experiment gateway -n 7 -duration 15s -seed 1 -json BENCH_PR10.json

GO ?= go

.PHONY: all build vet test bench bench-smoke bench-micro

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# Full figure benchmarks at reduced scale (n=31, one virtual minute each).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Quick smoke of the headline benchmarks; CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkThroughput|BenchmarkAblationBookkeeping' -benchtime=1x .

# PR-1 micro-benchmarks: QC cache, event core, tracker, signing payloads.
bench-micro:
	$(GO) test -run '^$$' -bench BenchmarkVerifyQCCached -benchmem ./internal/crypto/
	$(GO) test -run '^$$' -bench BenchmarkSimnetEventLoop -benchmem ./internal/simnet/
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerOnQC|BenchmarkMarker' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkSigningPayload -benchmem ./internal/types/

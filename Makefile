GO ?= go

.PHONY: all build build-examples vet test test-race bench bench-smoke bench-micro bench-guard

all: test

build:
	$(GO) build ./...

# Smoke-compile the facade examples on their own: `go build ./...` covers
# them too, but this target is the CI step that fails loudly when an
# examples-only regression slips in.
build-examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# Race-detector run; CI runs this as its own job.
test-race:
	$(GO) test -race ./...

# Full figure benchmarks at reduced scale (n=31, one virtual minute each).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Quick smoke of the headline benchmarks; CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkThroughput|BenchmarkAblationBookkeeping|BenchmarkCrashRecovery' -benchtime=1x .

# Micro-benchmarks: PR-1 (QC cache, event core, tracker, signing payloads),
# PR-2 (WAL append/replay, vote-path journal appends), and PR-3 (batched
# signature verification vs the serial cold path).
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkVerifyQCCached|BenchmarkVerifyQCBatch' -benchmem ./internal/crypto/
	$(GO) test -run '^$$' -bench BenchmarkSimnetEventLoop -benchmem ./internal/simnet/
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerOnQC|BenchmarkMarker|BenchmarkJournalAppendVote' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkSigningPayload -benchmem ./internal/types/
	$(GO) test -run '^$$' -bench 'BenchmarkAppendFlush|BenchmarkReplay' -benchmem ./internal/wal/

# Bench guard: every AllocsPerRun regression guard, run as tests so any
# regression is a hard failure, then the micro-benchmarks for the numbers.
# CI runs this; record results in BENCH_PR<n>.json when they move.
bench-guard:
	$(GO) test -run 'Alloc' -count=1 ./internal/types/ ./internal/simnet/ ./internal/core/ ./internal/wal/ ./internal/crypto/
	$(MAKE) bench-micro

// Geo-distributed latency demo: reproduces a reduced-scale Figure 7a on the
// deterministic simulator — a 31-replica SFT-DiemBFT cluster split over 3
// regions, showing how x-strong commit latency grows with x and spikes at
// 2f (where the out-of-sync stragglers' strong-votes are needed).
//
// The harness builds every replica through the same composition path
// (internal/compose) the public sft facade uses, so these measurements are
// of exactly the engines sft.New constructs.
//
//	go run ./examples/geodistributed [-delta 100ms] [-duration 60s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		delta    = flag.Duration("delta", 100*time.Millisecond, "inter-region one-way delay")
		duration = flag.Duration("duration", 60*time.Second, "virtual run duration")
	)
	flag.Parse()

	const (
		n = 31
		f = 10
	)
	fmt.Printf("Simulating %d replicas (f=%d) in 3 regions, inter-region delay %v, %v of virtual time...\n\n",
		n, f, *delta, *duration)

	start := time.Now()
	res, err := harness.Figure7a(harness.Scale{N: n, F: f, Duration: *duration, Seed: 1}, *delta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-14s %s\n", "x-strong", "latency (s)", "meaning")
	for _, lv := range harness.DefaultLevels(f) {
		s := res.LevelLatency[lv]
		lat := "unreached"
		if s.Count > 0 {
			lat = fmt.Sprintf("%.3f", s.Mean)
		}
		fmt.Printf("%-10s %-14s commit survives %d Byzantine replicas\n",
			harness.LevelLabel(lv, f), lat, lv)
	}
	fmt.Printf("\n%d blocks committed; regular commit latency %.3fs; %.1f msgs/commit\n",
		res.CommittedBlocks, res.RegularLatency.Mean, res.MsgsPerCommit)
	fmt.Printf("(simulated %v of cluster time in %v of wall time)\n",
		*duration, time.Since(start).Round(time.Millisecond))
}

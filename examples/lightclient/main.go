// Light-client demo (Section 5): replicas attach a strong-commit Log to
// their proposals; a light client that only sees certified blocks (block +
// QC pairs) — never the protocol messages — can verify strong-commit levels
// with nothing but the public keys.
//
// The cluster runs through the sft facade with WithCommitLog attaching the
// §5 Log. Every block embeds the certificate for its parent (the justify
// QC), so a relay that follows one replica's commit stream can hand the
// light client exactly the data a wallet app would download: (parent block,
// QC certifying it) pairs.
//
//	go run ./examples/lightclient
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/lightclient"
	"repro/sft"
)

func main() {
	const (
		n    = 4
		f    = 1
		seed = 21
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	// The light client: verifies QCs against the PKI, trusts nothing else.
	client := lightclient.New(ring, f)

	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The relay watches replica 0's commit stream and forwards certified
	// blocks: a committed block's justify QC certifies its parent, which an
	// earlier commit event already delivered.
	committed := make(map[sft.BlockID]*sft.Block)
	relay := func(ev sft.CommitEvent) {
		if !ev.Regular {
			return
		}
		b := ev.Block
		committed[b.ID()] = b
		if parent, ok := committed[b.Parent]; ok && b.Justify != nil {
			if err := client.ProcessCertified(parent, b.Justify); err != nil {
				log.Fatalf("light client rejected a genuine certificate: %v", err)
			}
		}
	}

	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(500 * time.Millisecond),
			sft.WithCommitLog(16), // attach the §5 Log to proposals
		}
		if id == 0 {
			opts = append(opts, sft.WithObserver(relay))
		}
		if _, err := sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...); err != nil {
			log.Fatal(err)
		}
	}

	world.Run(3 * time.Second)

	fmt.Printf("light client verified strong-commit proofs for %d blocks\n", client.Proven())
	blk, x := client.Strongest()
	fmt.Printf("strongest proven commit: block %v at %d-strong (2f = %d)\n", blk, x, 2*f)
	if x < 2*f {
		log.Fatal("expected a 2f-strong proof in a fault-free run")
	}
	fmt.Println("the client needed only public keys and certified blocks — no protocol state")
}

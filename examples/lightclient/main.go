// Light-client demo (Section 5): replicas attach a strong-commit Log to
// their proposals; a light client that only sees certified blocks (block +
// QC pairs) — never the protocol messages — can verify strong-commit levels
// with nothing but the public keys.
//
//	go run ./examples/lightclient
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/lightclient"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	const (
		n = 4
		f = 1
	)
	ring, err := crypto.NewKeyRing(n, 21, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	// The light client: verifies QCs against the PKI, trusts nothing else.
	client := lightclient.New(ring, f)

	sim := simnet.New(simnet.Config{
		N:       n,
		Latency: &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    1,
	})

	var replicas [n]*diembft.Replica
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			MaxCommitLog:     16, // attach the §5 Log to proposals
			RoundTimeout:     500 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		replicas[i] = rep
		sim.SetEngine(id, rep)
	}

	// A relay watches replica 0's chain and forwards certified blocks
	// (block + the QC embedded in its child) to the light client — the only
	// data a wallet app would download.
	sim.SetEngine(0, &certifiedRelay{Replica: replicas[0], client: client})

	sim.Run(3 * time.Second)

	fmt.Printf("light client verified strong-commit proofs for %d blocks\n", client.Proven())
	blk, x := client.Strongest()
	fmt.Printf("strongest proven commit: block %v at %d-strong (2f = %d)\n", blk, x, 2*f)
	if x < 2*f {
		log.Fatal("expected a 2f-strong proof in a fault-free run")
	}
	fmt.Println("the client needed only public keys and certified blocks — no protocol state")
}

// certifiedRelay wraps a replica engine and feeds every newly certified
// block (with its certificate) to the light client.
type certifiedRelay struct {
	*diembft.Replica
	client *lightclient.Client
}

func (r *certifiedRelay) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	outs := r.Replica.OnMessage(now, from, msg)
	// After any message, newly arrived proposals may certify their parent:
	// proposals embed the parent's QC, exactly what the client needs.
	if p, ok := msg.(*types.Proposal); ok && p.Block != nil && p.Block.Justify != nil {
		if parent := r.Store().Block(p.Block.Justify.Block); parent != nil {
			if err := r.client.ProcessCertified(parent, p.Block.Justify); err != nil {
				log.Fatalf("light client rejected a genuine certificate: %v", err)
			}
		}
	}
	return outs
}

// Byzantine counter-example (Appendix C), live: demonstrates WHY
// strong-votes need markers by actually running the attack against a
// cluster instead of replaying a hand-written script.
//
// A coalition of 2f colluders — built from the composable adversary
// subsystem (internal/adversary) — starves uncontested rounds to freeze
// locks, double-signs competing proposals, revives abandoned branches from
// certificates it assembles out of observed votes, and lies about its
// conflict markers. Against the UNSAFE naive endorsement counting of
// Appendix C (every indirect vote counts, markers ignored) this fabricates
// two conflicting branches whose blocks both claim x-strong commits with
// x >= t — a Definition 1 violation the scenario fuzzer's invariant checker
// reports. The identical collusion against the real marker rule stays safe.
//
// The same checker guards every randomized scenario of
// `sftbench -experiment adversary`; this example is its distilled story.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/harness"
)

const (
	seed = 1
	n    = 7
)

func main() {
	fmt.Println("Appendix C, live: 2f colluders attack the commit rule (n=7, f=2)")
	fmt.Println()

	naiveSpec, naiveViolations, err := harness.WeakenedRuleCanary(seed, n, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collusion: %s\n\n", naiveSpec)

	def1 := filterDef1(naiveViolations)
	fmt.Printf("NAIVE counting (no markers): %d Definition 1 violations\n", len(def1))
	for i, v := range def1 {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(def1)-3)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	if len(def1) == 0 {
		log.Fatal("the naive rule survived the collusion — the counter-example no longer reproduces")
	}
	fmt.Println()

	_, markerViolations, err := harness.WeakenedRuleCanary(seed, n, false)
	if err != nil {
		log.Fatal(err)
	}
	if len(markerViolations) > 0 {
		log.Fatalf("SFT markers also violated an invariant — this should be impossible: %v", markerViolations)
	}
	fmt.Println("SFT markers (the paper's rule): zero Definition 1 violations under the identical attack")
	fmt.Println()
	fmt.Println("Conclusion: counting endorsements without markers lets a coalition of 2f")
	fmt.Println("colluders certify two conflicting branches at the same claimed strength;")
	fmt.Println("the strengthened commit rule's markers expose every honest voter's")
	fmt.Println("conflicting history and block the second branch's claim.")
}

func filterDef1(violations []string) []string {
	var out []string
	for _, v := range violations {
		if strings.Contains(v, "Definition 1") {
			out = append(out, v)
		}
	}
	return out
}

// Byzantine counter-example (Appendix C): demonstrates WHY strong-votes
// need markers. Counting every indirect vote as an endorsement lets f+1
// Byzantine replicas fabricate two conflicting (f+1)-strong commits — a
// safety violation — while the marker rule blocks the second one.
//
// The program replays Figure 9's fork script against two endorsement
// trackers, the UNSAFE naive one and the marker-based SFT one, and prints
// the resulting strength claims side by side. Unlike the other examples it
// deliberately drives the internal tracker beneath the public sft facade:
// the "naive" counting mode it contrasts against is exactly what the
// facade's CommitRule refuses to offer, because this script shows it
// unsafe.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/types"
)

// ids for the scripted replicas: f=2 gives n=7; h1..h4 honest, b1..b3
// Byzantine (f+1 = 3 corruptions, above the classical threshold).
const (
	f  = 2
	nn = 3*f + 1
)

func main() {
	naive := newWorld(true)
	sft := newWorld(false)

	naive.playFigure9()
	sft.playFigure9()

	fmt.Println("Appendix C fork script: f+1 Byzantine replicas certify two conflicting branches")
	fmt.Println()
	fmt.Printf("%-34s %-18s %-18s\n", "", "naive counting", "SFT markers")
	br := naive.mainBlock
	fmt.Printf("%-34s %-18s %-18s\n",
		fmt.Sprintf("branch A block B_r (round %d)", br.Round),
		strength(naive.tracker, br), strength(sft.tracker, br))
	bc := naive.forkBlock
	fmt.Printf("%-34s %-18s %-18s\n",
		fmt.Sprintf("branch B block B'_r+4 (round %d)", bc.Round),
		strength(naive.tracker, naive.forkBlock), strength(sft.tracker, sft.forkBlock))
	fmt.Println()

	nA, nB := naive.tracker.Strength(naive.mainBlock.ID()), naive.tracker.Strength(naive.forkBlock.ID())
	sA, sB := sft.tracker.Strength(sft.mainBlock.ID()), sft.tracker.Strength(sft.forkBlock.ID())
	if nA >= f+1 && nB >= f+1 {
		fmt.Printf("NAIVE:  both conflicting blocks claim >= (f+1)-strong commits -> Definition 1 VIOLATED\n")
	}
	if sA >= f+1 && sB >= f+1 {
		log.Fatal("SFT markers also violated safety — this should be impossible")
	}
	fmt.Printf("SFT:    at most one branch reaches (f+1)-strong (A=%d, B=%d) -> safety preserved\n", sA, sB)
	_ = bc
}

func strength(t *core.Tracker, b *types.Block) string {
	x := t.Strength(b.ID())
	if x < 0 {
		return "not committed"
	}
	return fmt.Sprintf("%d-strong (f=%d)", x, f)
}

// world is one scripted replay of the Figure 9 chain.
type world struct {
	store   *blockstore.Store
	tracker *core.Tracker
	// voteRound[voter] tracks each replica's highest voted round so the
	// script can compute honest markers faithfully.
	voted map[types.ReplicaID][]*types.Block

	mainBlock *types.Block // B_r   on branch A ((f+1)-strong per naive counting)
	forkBlock *types.Block // B'_r+4 on branch B
}

func newWorld(naive bool) *world {
	w := &world{
		store: blockstore.New(),
		voted: make(map[types.ReplicaID][]*types.Block),
	}
	w.tracker = core.NewTracker(w.store, core.Config{N: nn, F: f, Mode: core.ModeRound, Naive: naive})
	return w
}

// marker computes the voter's honest marker for target: the highest round
// among its previous votes conflicting with target. Byzantine voters lie
// and always send 0.
func (w *world) marker(voter types.ReplicaID, target *types.Block, lie bool) types.Round {
	if lie {
		return 0
	}
	var m types.Round
	for _, b := range w.voted[voter] {
		if w.store.Conflicts(b.ID(), target.ID()) && b.Round > m {
			m = b.Round
		}
	}
	return m
}

// qc fabricates a QC for block b from the given voters (h* honest markers,
// b* lying Byzantine markers).
func (w *world) qc(b *types.Block, honest, byz []types.ReplicaID) *types.QC {
	votes := make([]types.Vote, 0, len(honest)+len(byz))
	add := func(voter types.ReplicaID, lie bool) {
		votes = append(votes, types.Vote{
			Block:  b.ID(),
			Round:  b.Round,
			Height: b.Height,
			Voter:  voter,
			Marker: w.marker(voter, b, lie),
		})
		w.voted[voter] = append(w.voted[voter], b)
	}
	for _, v := range honest {
		add(v, false)
	}
	for _, v := range byz {
		add(v, true)
	}
	return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
}

// playFigure9 reproduces the appendix scenario exactly, with r = 5.
// Replica naming follows the paper: honest h1..h2f are 0..3, Byzantine
// b1..bf+1 are 4..6.
//
//	B_{r-1} <- B_r <- B_{r+1} <- B_{r+2}            (branch A)
//	      \__ B'_{r+1} <- B'_{r+4} <- B'_{r+5} ...  (branch B)
func (w *world) playFigure9() {
	h := []types.ReplicaID{0, 1, 2, 3} // h1..h4 (2f honest)
	b := []types.ReplicaID{4, 5, 6}    // b1..b3 (f+1 Byzantine)
	g := w.store.Genesis()

	mk := func(parent *types.Block, round types.Round, tag byte) *types.Block {
		blk := types.NewBlock(parent.ID(), types.NewGenesisQC(parent.ID()), round,
			parent.Height+1, 0, int64(round), types.Payload{Txns: []types.Transaction{{Sender: uint32(tag)}}}, nil)
		if err := w.store.Insert(blk); err != nil {
			log.Fatal(err)
		}
		return blk
	}
	feed := func(qc *types.QC) { w.tracker.OnQC(qc) }

	// Round r-1 = 4: everyone agrees on B_{r-1}.
	brm1 := mk(g, 4, 'z')
	feed(w.qc(brm1, h, b[:1]))

	// Round r = 5: f honest (h1, h2) and all f+1 Byzantine vote for B_r.
	br := mk(brm1, 5, 'a')
	feed(w.qc(br, h[:2], b))

	// Round r+1 = 6: the Byzantine leader EQUIVOCATES. B_{r+1} extends B_r
	// (same voters as B_r); B'_{r+1} extends B_{r-1}, voted by the other f
	// honest replicas (h3, h4) plus the Byzantine ones. Both certified.
	ba1 := mk(br, 6, 'a')
	feed(w.qc(ba1, h[:2], b))
	bp1 := mk(brm1, 6, 'b')
	feed(w.qc(bp1, h[2:], b))

	// Round r+2 = 7: B_{r+2} extends B_{r+1}; h3 switches over (its lock
	// allows it) and all Byzantine replicas pile on, a 2f+2-vote QC. The
	// naive count treats h3's indirect vote as endorsing B_r and B_{r+1},
	// giving every block of the (B_r, B_{r+1}, B_{r+2}) 3-chain 2f+2
	// endorsers => B_r "(f+1)-strong committed". The marker rule knows h3
	// voted B'_{r+1} (round 6) on a conflicting fork, so h3 endorses
	// neither B_r (round 5) nor B_{r+1} (round 6).
	ba2 := mk(ba1, 7, 'a')
	feed(w.qc(ba2, h[:3], b))

	// Rounds r+4.. = 9..: the Byzantine leader revives branch B from
	// B'_{r+1}; every honest replica may vote (locks are at most round
	// r+1 = 6, the parent's round). With h2's, h3's and h4's votes plus the
	// Byzantine ones, B'_{r+4} legitimately reaches (f+1)-strong — which is
	// allowed alongside an f-strong B_r, but NOT alongside an
	// (f+1)-strong B_r.
	bb4 := mk(bp1, 9, 'b')
	feed(w.qc(bb4, h[2:], b))
	bb5 := mk(bb4, 10, 'b')
	feed(w.qc(bb5, h[1:], b))
	bb6 := mk(bb5, 11, 'b')
	feed(w.qc(bb6, h[1:], b))
	bb7 := mk(bb6, 12, 'b')
	feed(w.qc(bb7, h[1:], b))

	w.mainBlock = br
	w.forkBlock = bb4
}

// SFT-Streamlet demo (Appendix D): the strengthened-fault-tolerance idea
// carries over to the lock-step Streamlet protocol with height-keyed
// markers and k-endorsements. This example runs a 7-replica SFT-Streamlet
// cluster on the facade's deterministic Simnet fabric, with the O(n^3)
// echo mechanism enabled, and reports strong-commit levels. Note the
// commit rule: Streamlet's markers are height-keyed (sft.ModeHeight), the
// second instantiation of the paper's rule.
//
//	go run ./examples/streamlet
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/sft"
)

func main() {
	const (
		n    = 7
		f    = 2
		seed = 3
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 8 * time.Millisecond, Jitter: 4 * time.Millisecond},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	levels := make(map[sft.BlockID]int)
	commits := 0
	payload := workload.PaperPayload(1, 100, 8*1024)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithEngine(sft.Streamlet),
			sft.WithCommitRule(sft.CommitRule{Mode: sft.ModeHeight}),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(world.Transport(id)),
			sft.WithDelta(25 * time.Millisecond), // lock-step rounds of 2∆ = 50ms
			sft.WithPayload(payload),
		}
		if id == 0 {
			opts = append(opts, sft.WithObserver(func(ev sft.CommitEvent) {
				if ev.Regular {
					commits++
				} else if ev.Strength > levels[ev.Block.ID()] {
					levels[ev.Block.ID()] = ev.Strength
				}
			}))
		}
		if _, err := sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...); err != nil {
			log.Fatal(err)
		}
	}
	world.Run(10 * time.Second)

	hist := make(map[int]int)
	for _, x := range levels {
		hist[x]++
	}
	fmt.Printf("SFT-Streamlet: %d blocks committed on replica 0\n", commits)
	fmt.Printf("strong-commit levels reached (x -> #blocks):\n")
	for x := f; x <= 2*f; x++ {
		fmt.Printf("  %d-strong (%.1ff): %d blocks\n", x, float64(x)/float64(f), hist[x])
	}
	if hist[2*f] == 0 {
		log.Fatal("no block reached 2f-strong in a fault-free run")
	}
	fmt.Printf("\nheight-keyed markers give Streamlet the same graduated assurance as DiemBFT,\n" +
		"with the long-range-attack resistance discussed in Appendix D.4\n")
}

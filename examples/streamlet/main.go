// SFT-Streamlet demo (Appendix D): the strengthened-fault-tolerance idea
// carries over to the lock-step Streamlet protocol with height-keyed
// markers and k-endorsements. This example runs a 7-replica SFT-Streamlet
// cluster with its O(n^3) echo mechanism enabled and reports strong-commit
// levels.
//
//	go run ./examples/streamlet
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	const (
		n = 7
		f = 2
	)
	ring, err := crypto.NewKeyRing(n, 3, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	levels := make(map[types.BlockID]int)
	commits := 0
	sim := simnet.New(simnet.Config{
		N:       n,
		Latency: &simnet.UniformModel{Base: 8 * time.Millisecond, Jitter: 4 * time.Millisecond},
		Seed:    1,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep == 0 {
				commits++
			}
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > levels[b.ID()] {
				levels[b.ID()] = x
			}
		},
	})

	payload := workload.PaperPayload(1, 100, 8*1024)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := streamlet.New(streamlet.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			Delta:            25 * time.Millisecond, // lock-step rounds of 2∆ = 50ms
			SFT:              true,
			Payload:          payload,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim.SetEngine(id, rep)
	}
	sim.Run(10 * time.Second)

	hist := make(map[int]int)
	for _, x := range levels {
		hist[x]++
	}
	fmt.Printf("SFT-Streamlet: %d blocks committed on replica 0\n", commits)
	fmt.Printf("strong-commit levels reached (x -> #blocks):\n")
	for x := f; x <= 2*f; x++ {
		fmt.Printf("  %d-strong (%.1ff): %d blocks\n", x, float64(x)/float64(f), hist[x])
	}
	if hist[2*f] == 0 {
		log.Fatal("no block reached 2f-strong in a fault-free run")
	}
	fmt.Printf("\nheight-keyed markers give Streamlet the same graduated assurance as DiemBFT,\n" +
		"with the long-range-attack resistance discussed in Appendix D.4\n")
}

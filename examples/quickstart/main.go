// Quickstart: run a 4-replica SFT-DiemBFT cluster in-process through the
// public sft facade and watch blocks commit and then *gain* resilience,
// Nakamoto-style, as the chain extends them — from f-strong (tolerating 1
// Byzantine replica at n=4) up to 2f-strong (tolerating 2). The example
// consumes the facade's two subscription primitives: the Commits event
// stream and WaitStrength, the paper's "act when the commit is strong
// enough for you" knob.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/workload"
	"repro/sft"
)

func main() {
	const (
		n    = 4
		f    = 1
		seed = 7
	)
	// One PKI derivation for the in-process cluster (the paper's model:
	// everyone knows everyone's keys).
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}
	lan := sft.NewLocalNet(n)
	defer lan.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		gen := workload.NewGenerator(int64(i), 8, 32)
		node, err := sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(lan.Transport(id)),
			sft.WithRoundTimeout(500*time.Millisecond),
			sft.WithPayload(workload.FullPayload(gen, 10)),
		)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
	}

	// Observe replica 0's commit-strength stream.
	events := nodes[0].Commits()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	// WaitStrength demo: block until the first committed block tolerates
	// 2f Byzantine replicas, then report how long that took.
	var first sft.BlockID
	levels := make(map[sft.BlockID]int)
	max2f := 0
	for ev := range events {
		id := ev.Block.ID()
		switch {
		case ev.Regular:
			if ev.Height <= 5 {
				fmt.Printf("commit    %v at height %d (f-strong: safe vs %d fault)\n", id, ev.Height, f)
			}
			if first == (sft.BlockID{}) {
				first = id
				go func() {
					if err := nodes[0].WaitStrength(ctx, first, 2*f); err == nil {
						fmt.Printf("WaitStrength: first block %v is now %d-strong\n", first, 2*f)
					}
				}()
			}
		case ev.Strength > levels[id]:
			prev := levels[id]
			levels[id] = ev.Strength
			if ev.Strength == 2*f {
				max2f++
			}
			if ev.Height <= 5 && ev.Strength > prev && ev.Strength > f {
				fmt.Printf("STRENGTHEN %v at height %d -> %d-strong (now safe vs %d Byzantine faults)\n",
					id, ev.Height, ev.Strength, ev.Strength)
			}
		}
	}
	wg.Wait()

	fmt.Printf("\n%d blocks gained strength; %d reached the 2f maximum (tolerating %d of %d replicas Byzantine)\n",
		len(levels), max2f, 2*f, n)
}

// Quickstart: run a 4-replica SFT-DiemBFT cluster in-process through the
// public sft facade with the deterministic execution layer attached — every
// replica runs a signed-transfer bank, executes each block BEFORE voting,
// and certifies the resulting 32-byte state root (AppHash) inside the QC.
//
// The payoff is the paper's per-transaction resilience knob applied to a
// real side effect: a withdrawal is submitted requiring 2f-strong
// commitment, the conflict gate holds the account's later traffic while the
// withdrawal is in flight, and the cash is only "handed over" once
// WaitStrength reports the block tolerates 2f Byzantine replicas — twice
// the classical guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/sft"
)

func main() {
	const (
		n    = 4
		f    = 1
		seed = 7
	)
	// The execution layer: every replica builds an identical bank (1024
	// accounts, ed25519-signed transactions) and executes blocks against it
	// before voting. Sharing one BankKeys cache means each account key is
	// derived once and each signature verified once across the process.
	bankCfg := sft.BankConfig{
		Seed:           seed,
		Accounts:       1024,
		InitialBalance: 1_000_000,
		Keys:           sft.NewBankKeys(seed),
	}

	// The submit path: a mempool whose conflict gate (Section 5) holds a
	// sender's later transactions while a high-value one awaits its required
	// strength.
	mp := sft.NewMempool(0)

	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}
	lan := sft.NewLocalNet(n)
	defer lan.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()

	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(lan.Transport(id)),
			sft.WithRoundTimeout(500 * time.Millisecond),
			sft.WithApp(func() sft.StateMachine { return sft.NewBank(bankCfg) }),
		}
		if id == 0 {
			// Node 0 drains the mempool when it leads and feeds its commit
			// stream back into the conflict gate.
			opts = append(opts,
				sft.WithMempool(mp),
				sft.WithPayload(func(r sft.Round) sft.Payload {
					return sft.Payload{Txns: mp.Batch(64)}
				}),
			)
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}

	events := nodes[0].Commits()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	// Account 7 withdraws 50,000 — an irreversible side effect, so it must
	// be 2f-strong before the cash leaves the building — and immediately
	// queues a follow-up transfer. The gate holds the transfer until the
	// withdrawal's block reaches strength 2f.
	withdraw := sft.BankTx{Op: sft.OpWithdraw, From: 7, Amount: 50_000, Nonce: 1}
	sft.SignBankTx(seed, &withdraw)
	followUp := sft.BankTx{Op: sft.OpTransfer, From: 7, To: 8, Amount: 100, Nonce: 2}
	sft.SignBankTx(seed, &followUp)
	mp.Submit(withdraw.AsTransaction(), 2*f)
	mp.Submit(followUp.AsTransaction(), 0)
	fmt.Printf("submitted: withdraw 50000 from account 7 (requires %d-strong); follow-up transfer held=%d gated=%v\n",
		2*f, mp.Held(), mp.Gated(7))

	// Watch node 0's commit stream. CommitEvent.Results are the certified
	// execution verdicts — no payload re-decoding, no re-execution. Once the
	// withdrawal's block is found, WaitStrength gates the side effect; once
	// the released follow-up commits too, the demo is done.
	var withdrawBlock sft.BlockID
	released := make(chan struct{})
	for ev := range events {
		if !ev.Regular {
			continue
		}
		for _, res := range ev.Results {
			if res.Sender != 7 {
				continue
			}
			switch res.Seq {
			case withdraw.Nonce:
				fmt.Printf("withdrawal executed at height %d, verdict %v — f-strong only, cash stays put\n",
					ev.Height, res.Code)
				withdrawBlock = ev.Block.ID()
				// The resilience knob: block until the commit tolerates 2f
				// Byzantine replicas, then release the side effect.
				go func(id sft.BlockID) {
					if err := nodes[0].WaitStrength(ctx, id, 2*f); err == nil {
						fmt.Printf("WaitStrength: withdrawal block is %d-strong — releasing the cash\n", 2*f)
					}
					close(released)
				}(withdrawBlock)
			case followUp.Nonce:
				// The gate only lets this through after the withdrawal
				// strengthened to its requirement.
				<-released
				fmt.Printf("released follow-up transfer committed at height %d, verdict %v\n", ev.Height, res.Code)
				cancel()
			}
		}
	}
	wg.Wait()

	// With the cluster stopped, the application state is safe to read.
	bank := nodes[0].AppState().(*sft.Bank)
	fmt.Printf("\nfinal state of account 7: balance=%d nonce=%d (held=%d gated=%v)\n",
		bank.Balance(7), bank.Nonce(7), mp.Held(), mp.Gated(7))
	root, h := nodes[0].AppHash()
	fmt.Printf("final certified AppHash %x at height %d\n", root[:8], h)
}

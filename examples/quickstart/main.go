// Quickstart: run a 4-replica SFT-DiemBFT cluster in-process and watch
// blocks commit and then *gain* resilience, Nakamoto-style, as the chain
// extends them — from f-strong (tolerating 1 Byzantine replica at n=4) up
// to 2f-strong (tolerating 2).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	const (
		n = 4
		f = 1
	)
	// A key ring plays the paper's PKI: everyone knows everyone's keys.
	ring, err := crypto.NewKeyRing(n, 7, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}
	net := runtime.NewLocalNetwork(n)
	defer net.Close()

	var mu sync.Mutex
	levels := make(map[types.BlockID]int) // strongest level seen per block

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		gen := workload.NewGenerator(int64(i), 8, 32)
		replica, err := diembft.New(diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true, // strong-votes, endorsements, strong commits
			RoundTimeout:     500 * time.Millisecond,
			Payload:          workload.FullPayload(gen, 10),
		})
		if err != nil {
			log.Fatal(err)
		}
		opts := runtime.Options{N: n}
		if id == 0 { // observe one replica's view
			opts.OnCommit = func(b *types.Block) {
				if b.Height <= 5 {
					fmt.Printf("commit    %v at height %d (f-strong: safe vs %d fault)\n", b.ID(), b.Height, f)
				}
			}
			opts.OnStrength = func(b *types.Block, x int) {
				mu.Lock()
				prev := levels[b.ID()]
				levels[b.ID()] = x
				mu.Unlock()
				if b.Height <= 5 && x > prev && x > f {
					fmt.Printf("STRENGTHEN %v at height %d -> %d-strong (now safe vs %d Byzantine faults)\n",
						b.ID(), b.Height, x, x)
				}
			}
		}
		node, err := runtime.NewNode(replica, net.Endpoint(id), opts)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	<-ctx.Done()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	total, max2f := 0, 0
	for _, x := range levels {
		total++
		if x == 2*f {
			max2f++
		}
	}
	fmt.Printf("\n%d blocks gained strength; %d reached the 2f maximum (tolerating %d of %d replicas Byzantine)\n",
		total, max2f, 2*f, n)
}

// Trade-off demo (Section 4.2 / Figure 8): leaders that wait a little
// longer after reaching quorum fold straggler votes into larger strong-QCs,
// trading regular-commit latency for much faster strong commits — including
// the dynamic per-block strategy where only rounds near a high-value block
// wait. The same knobs are exposed on the public facade as
// sft.WithExtraWait / sft.WithExtraWaitFor; the harness runs them through
// the shared composition path at experiment scale.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
)

func main() {
	const (
		n = 31
		f = 10
	)
	sc := harness.Scale{N: n, F: f, Duration: 45 * time.Second, Seed: 7}
	waits := []time.Duration{0, 100 * time.Millisecond, 250 * time.Millisecond}

	fmt.Printf("Figure 8 trade-off at n=%d, f=%d (symmetric regions, δ=100ms):\n\n", n, f)
	points, err := harness.Figure8(sc, waits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-14s %-14s %s\n", "extra wait", "regular (s)", "2f-strong (s)", "effect")
	for _, p := range points {
		r := p.Result
		tf := r.LevelLatency[2*f]
		tfs := "unreached"
		if tf.Count > 0 {
			tfs = fmt.Sprintf("%.3f", tf.Mean)
		}
		effect := ""
		switch {
		case p.ExtraWait == 0:
			effect = "baseline: strong commits wait for straggler-led rounds"
		case tf.Count > 0 && tf.Mean < 2*r.RegularLatency.Mean:
			effect = "strong-QCs now diverse: 2f-strong merges with regular"
		default:
			effect = "partial capture of straggler votes"
		}
		fmt.Printf("%-12v %-14.3f %-14s %s\n", p.ExtraWait, r.RegularLatency.Mean, tfs, effect)
	}

	fmt.Println("\nThe paper's practical takeaway: a modest regular-latency sacrifice buys a")
	fmt.Println("large strong-commit speedup, and the wait can be applied dynamically to just")
	fmt.Println("the rounds following a high-value block (Config.ExtraWaitFor).")
}

// Operations demo (§5): running a cluster with the operational tooling the
// paper sketches — a health monitor that detects stragglers from strong-QC
// diversity, and the conflicting-transaction gate that holds a sender's
// follow-up transactions until its high-valued transaction is strong
// committed at the required level.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	const (
		n         = 7
		f         = 2
		straggler = types.ReplicaID(4)
	)
	ring, err := crypto.NewKeyRing(n, 13, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	monitor := health.NewMonitor(n, 2*n)
	pool := mempool.New(0)
	gate := mempool.NewConflictGate(pool)

	// Submit a high-valued transaction that demands a 2f-strong commit,
	// plus follow-ups from the same sender that must wait for it.
	gate.Submit(types.Transaction{Sender: 7, Seq: 1, Data: []byte("pay=1_000_000")}, 2*f)
	gate.Submit(types.Transaction{Sender: 7, Seq: 2, Data: []byte("pay=5")}, 0)
	gate.Submit(types.Transaction{Sender: 8, Seq: 1, Data: []byte("pay=1")}, 0)
	fmt.Printf("submitted: 1 gated high-value txn, %d held follow-up(s), 1 free txn\n\n", gate.Held())

	var releasedAt time.Duration
	sim := simnet.New(simnet.Config{
		N: n,
		Latency: &simnet.RegionModel{
			RegionOf: make([]int, n),
			Intra:    4 * time.Millisecond,
			Inter:    [][]time.Duration{{4 * time.Millisecond}},
			Jitter:   2 * time.Millisecond,
			Penalty:  map[types.ReplicaID]time.Duration{straggler: 50 * time.Millisecond},
		},
		Seed: 2,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep != 0 {
				return
			}
			if b.Justify != nil {
				monitor.ObserveQC(b.Justify)
			}
			gate.OnIncluded(b.ID(), b.Payload.Txns)
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep != 0 {
				return
			}
			held := gate.Held()
			gate.OnStrengthened(b.ID(), x)
			if held > 0 && gate.Held() == 0 && releasedAt == 0 {
				releasedAt = now
			}
		},
	})

	// Replica 0's proposals drain the gated pool; other replicas use
	// synthetic filler.
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		cfg := diembft.Config{
			ID: id, N: n, F: f,
			Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
			SFT: true, RoundTimeout: 600 * time.Millisecond,
		}
		if id == 0 {
			cfg.Payload = func(r types.Round) types.Payload {
				return types.Payload{Txns: pool.Batch(16)}
			}
		}
		rep, err := diembft.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim.SetEngine(id, rep)
	}
	sim.Run(20 * time.Second)

	rep := monitor.Snapshot()
	fmt.Printf("health after %d QCs (window %d rounds):\n", rep.QCsObserved, 2*n)
	fmt.Printf("  strong-QC diversity: %d/%d replicas -> max reachable level %d (2f = %d)\n",
		rep.Diversity, n, monitor.MaxLevel(f), 2*f)
	counts := monitor.AppearanceCounts()
	for id, c := range counts {
		marker := ""
		if types.ReplicaID(id) == straggler {
			marker = "   <- straggler (enters QCs only when leading)"
		}
		fmt.Printf("  replica %d appeared in %3d recent QCs%s\n", id, c, marker)
	}

	fmt.Println()
	if releasedAt > 0 {
		fmt.Printf("conflict gate: follow-up released at t=%v, once the high-value txn's block reached %d-strong\n",
			releasedAt.Round(time.Millisecond), 2*f)
	} else if gate.Held() > 0 {
		fmt.Printf("conflict gate: follow-up still held (high-value txn not yet %d-strong)\n", 2*f)
	}
}

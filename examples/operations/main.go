// Operations demo (§5): running a cluster with the operational tooling the
// paper sketches — a health monitor that detects stragglers from strong-QC
// diversity, the conflicting-transaction gate that holds a sender's
// follow-up transactions until its high-valued transaction is strong
// committed at the required level, and the durability layer's
// kill → restart → state-sync-rejoin cycle: one replica is killed mid-run,
// shows up in the monitor's straggler report while down, and after being
// restored from its write-ahead log catches back up and disappears from it.
//
// Everything is composed through the sft facade: the victim runs with
// WithWAL, the kill is Simnet.CrashAt, and Simnet.RestartAt rebuilds it
// from the log through the same composition path that built it.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/health"
	"repro/internal/mempool"
	"repro/sft"
)

func main() {
	const (
		n         = 7
		f         = 2
		seed      = 13
		straggler = sft.ReplicaID(4)
		victim    = sft.ReplicaID(5)
		crashAt   = 6 * time.Second
		restartAt = 12 * time.Second
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	monitor := health.NewMonitor(n, 2*n)
	pool := mempool.New(0)
	gate := mempool.NewConflictGate(pool)

	// Submit a high-valued transaction that demands a 2f-strong commit,
	// plus follow-ups from the same sender that must wait for it.
	gate.Submit(sft.Transaction{Sender: 7, Seq: 1, Data: []byte("pay=1_000_000")}, 2*f)
	gate.Submit(sft.Transaction{Sender: 7, Seq: 2, Data: []byte("pay=5")}, 0)
	gate.Submit(sft.Transaction{Sender: 8, Seq: 1, Data: []byte("pay=1")}, 0)
	fmt.Printf("submitted: 1 gated high-value txn, %d held follow-up(s), 1 free txn\n\n", gate.Held())

	world, err := sft.NewSimnet(sft.SimnetConfig{
		N: n,
		Latency: &sft.RegionLatency{
			RegionOf: make([]int, n),
			Intra:    4 * time.Millisecond,
			Inter:    [][]time.Duration{{4 * time.Millisecond}},
			Jitter:   2 * time.Millisecond,
			Penalty:  map[sft.ReplicaID]time.Duration{straggler: 50 * time.Millisecond},
		},
		Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replica 0 drives the operational tooling from its commit-strength
	// stream: QCs feed the health monitor, inclusions and strength updates
	// drive the conflict gate.
	var releasedAt time.Duration
	observe := func(ev sft.CommitEvent) {
		if ev.Regular {
			if ev.Block.Justify != nil {
				monitor.ObserveQC(ev.Block.Justify)
			}
			gate.OnIncluded(ev.Block.ID(), ev.Block.Payload.Txns)
			return
		}
		held := gate.Held()
		gate.OnStrengthened(ev.Block.ID(), ev.Strength)
		if held > 0 && gate.Held() == 0 && releasedAt == 0 {
			releasedAt = ev.Time
		}
	}

	// The victim runs journal-backed so the kill at 6s is survivable: at
	// 12s it is rebuilt from its WAL and re-joins via state sync.
	walDir, err := os.MkdirTemp("", "sft-operations-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(600 * time.Millisecond),
		}
		if id == 0 {
			// Replica 0's proposals drain the gated pool; other replicas
			// propose empty blocks.
			opts = append(opts,
				sft.WithPayload(func(r sft.Round) sft.Payload {
					return sft.Payload{Txns: pool.Batch(16)}
				}),
				sft.WithObserver(observe),
			)
		}
		if id == victim {
			opts = append(opts, sft.WithWAL(walDir))
		}
		if _, err := sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...); err != nil {
			log.Fatal(err)
		}
	}
	world.CrashAt(victim, crashAt)
	err = world.RestartAt(victim, restartAt, func(rec sft.RecoveryInfo) {
		fmt.Printf("t=%v  replica %d restored from WAL: %d blocks, %d own votes, committed height %d\n",
			restartAt, victim, rec.Blocks, rec.Votes, rec.CommittedHeight)
	})
	if err != nil {
		log.Fatal(err)
	}

	stragglerReport := func(when time.Duration) {
		st := monitor.Snapshot().Stragglers
		fmt.Printf("t=%v  stragglers per strong-QC diversity: %v\n", when, st)
	}
	// Sample the monitor while the victim is down, then run to completion.
	world.Run(11 * time.Second)
	stragglerReport(11 * time.Second)
	world.Run(20 * time.Second)
	stragglerReport(20 * time.Second)

	fmt.Println()
	rep := monitor.Snapshot()
	fmt.Printf("health after %d QCs (window %d rounds):\n", rep.QCsObserved, 2*n)
	fmt.Printf("  strong-QC diversity: %d/%d replicas -> max reachable level %d (2f = %d)\n",
		rep.Diversity, n, monitor.MaxLevel(f), 2*f)
	counts := monitor.AppearanceCounts()
	for id, c := range counts {
		marker := ""
		if sft.ReplicaID(id) == straggler {
			marker = "   <- straggler (enters QCs only when leading)"
		}
		if sft.ReplicaID(id) == victim {
			marker = "   <- killed at 6s, WAL-restored + state-synced at 12s"
		}
		fmt.Printf("  replica %d appeared in %3d recent QCs%s\n", id, c, marker)
	}

	fmt.Println()
	if releasedAt > 0 {
		fmt.Printf("conflict gate: follow-up released at t=%v, once the high-value txn's block reached %d-strong\n",
			releasedAt.Round(time.Millisecond), 2*f)
	} else if gate.Held() > 0 {
		fmt.Printf("conflict gate: follow-up still held (high-value txn not yet %d-strong)\n", 2*f)
	}
}

// Operations demo (§5): running a cluster with the operational tooling the
// paper sketches — a health monitor that detects stragglers from strong-QC
// diversity, the conflicting-transaction gate that holds a sender's
// follow-up transactions until its high-valued transaction is strong
// committed at the required level, and the durability layer's
// kill → restart → state-sync-rejoin cycle: one replica is killed mid-run,
// shows up in the monitor's straggler report while down, and after being
// restored from its write-ahead log catches back up and disappears from it.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wal"
)

func main() {
	const (
		n         = 7
		f         = 2
		straggler = types.ReplicaID(4)
		victim    = types.ReplicaID(5)
		crashAt   = 6 * time.Second
		restartAt = 12 * time.Second
	)
	ring, err := crypto.NewKeyRing(n, 13, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	monitor := health.NewMonitor(n, 2*n)
	pool := mempool.New(0)
	gate := mempool.NewConflictGate(pool)

	// Submit a high-valued transaction that demands a 2f-strong commit,
	// plus follow-ups from the same sender that must wait for it.
	gate.Submit(types.Transaction{Sender: 7, Seq: 1, Data: []byte("pay=1_000_000")}, 2*f)
	gate.Submit(types.Transaction{Sender: 7, Seq: 2, Data: []byte("pay=5")}, 0)
	gate.Submit(types.Transaction{Sender: 8, Seq: 1, Data: []byte("pay=1")}, 0)
	fmt.Printf("submitted: 1 gated high-value txn, %d held follow-up(s), 1 free txn\n\n", gate.Held())

	var releasedAt time.Duration
	sim := simnet.New(simnet.Config{
		N: n,
		Latency: &simnet.RegionModel{
			RegionOf: make([]int, n),
			Intra:    4 * time.Millisecond,
			Inter:    [][]time.Duration{{4 * time.Millisecond}},
			Jitter:   2 * time.Millisecond,
			Penalty:  map[types.ReplicaID]time.Duration{straggler: 50 * time.Millisecond},
		},
		Seed: 2,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep != 0 {
				return
			}
			if b.Justify != nil {
				monitor.ObserveQC(b.Justify)
			}
			gate.OnIncluded(b.ID(), b.Payload.Txns)
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep != 0 {
				return
			}
			held := gate.Held()
			gate.OnStrengthened(b.ID(), x)
			if held > 0 && gate.Held() == 0 && releasedAt == 0 {
				releasedAt = now
			}
		},
	})

	// Replica 0's proposals drain the gated pool; other replicas use
	// synthetic filler.
	buildReplica := func(id types.ReplicaID, journal *core.Journal) *diembft.Replica {
		cfg := diembft.Config{
			ID: id, N: n, F: f,
			Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
			SFT: true, RoundTimeout: 600 * time.Millisecond,
			Journal: journal,
		}
		if id == 0 {
			cfg.Payload = func(r types.Round) types.Payload {
				return types.Payload{Txns: pool.Batch(16)}
			}
		}
		rep, err := diembft.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// The victim runs journal-backed so the kill at 6s is survivable: at 12s
	// it is rebuilt from its WAL and re-joins via state sync.
	walDir, err := os.MkdirTemp("", "sft-operations-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	openJournal := func() *core.Journal {
		l, err := wal.Open(walDir, wal.Options{NoSync: true})
		if err != nil {
			log.Fatal(err)
		}
		return core.NewJournal(l)
	}

	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		var journal *core.Journal
		if id == victim {
			journal = openJournal()
		}
		sim.SetEngine(id, buildReplica(id, journal))
	}
	sim.CrashAt(victim, crashAt)
	sim.RestartAt(victim, restartAt, func() engine.Engine {
		journal := openJournal()
		rec, err := core.Recover(journal.Log())
		if err != nil {
			log.Fatal(err)
		}
		rep := buildReplica(victim, journal)
		if err := rep.Restore(rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%v  replica %d restored from WAL: %d blocks, %d own votes, committed height %d\n",
			restartAt, victim, len(rec.Blocks), len(rec.Votes), rec.CommittedHeight)
		return rep
	})

	stragglerReport := func(when time.Duration) {
		st := monitor.Snapshot().Stragglers
		fmt.Printf("t=%v  stragglers per strong-QC diversity: %v\n", when, st)
	}
	// Sample the monitor while the victim is down, then run to completion.
	sim.Run(11 * time.Second)
	stragglerReport(11 * time.Second)
	sim.Run(20 * time.Second)
	stragglerReport(20 * time.Second)

	fmt.Println()
	rep := monitor.Snapshot()
	fmt.Printf("health after %d QCs (window %d rounds):\n", rep.QCsObserved, 2*n)
	fmt.Printf("  strong-QC diversity: %d/%d replicas -> max reachable level %d (2f = %d)\n",
		rep.Diversity, n, monitor.MaxLevel(f), 2*f)
	counts := monitor.AppearanceCounts()
	for id, c := range counts {
		marker := ""
		if types.ReplicaID(id) == straggler {
			marker = "   <- straggler (enters QCs only when leading)"
		}
		if types.ReplicaID(id) == victim {
			marker = "   <- killed at 6s, WAL-restored + state-synced at 12s"
		}
		fmt.Printf("  replica %d appeared in %3d recent QCs%s\n", id, c, marker)
	}

	fmt.Println()
	if releasedAt > 0 {
		fmt.Printf("conflict gate: follow-up released at t=%v, once the high-value txn's block reached %d-strong\n",
			releasedAt.Round(time.Millisecond), 2*f)
	} else if gate.Held() > 0 {
		fmt.Printf("conflict gate: follow-up still held (high-value txn not yet %d-strong)\n", 2*f)
	}
}

// Command sftnode runs one SFT-DiemBFT replica over TCP. Start n = 3f+1 of
// them (locally or across machines) to form a real cluster.
//
// Example 4-node local cluster:
//
//	sftnode -id 0 -n 4 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	sftnode -id 1 -n 4 -listen 127.0.0.1:7001 -peers ... &
//	sftnode -id 2 -n 4 -listen 127.0.0.1:7002 -peers ... &
//	sftnode -id 3 -n 4 -listen 127.0.0.1:7003 -peers ... &
//
// All nodes must share -n and -seed (the seed derives the cluster's PKI;
// a real deployment would exchange public keys instead).
package main

import (
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	rt "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/mempool"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		id       = flag.Int("id", 0, "replica ID in [0, n)")
		n        = flag.Int("n", 4, "cluster size (3f+1)")
		listen   = flag.String("listen", "127.0.0.1:7000", "listen address")
		peersCSV = flag.String("peers", "", "comma-separated peer addresses indexed by replica ID")
		seed     = flag.Int64("seed", 42, "PKI derivation seed (must match across the cluster)")
		timeout  = flag.Duration("timeout", 2*time.Second, "round timeout")
		txns     = flag.Int("txns", 100, "transactions per block")
		wait     = flag.Duration("extra-wait", 0, "leader extra wait after quorum (Figure 8 knob)")
		run      = flag.Duration("run", 0, "exit after this duration (0 = run until signal)")
		quiet    = flag.Bool("quiet", false, "only print periodic summaries")
		clients  = flag.String("client-listen", "", "optional address accepting client transaction streams (see cmd/sftclient)")
		dataDir  = flag.String("data-dir", "", "directory for the write-ahead log; restarting with the same -data-dir recovers the pre-crash state and re-joins via state sync")
		pipeline = flag.Bool("pipeline", true, "verify signatures off the event loop, on the per-peer tcpnet reader goroutines, with batched QC verification")
		workers  = flag.Int("pipeline-workers", 0, "batch-verification concurrency per cold QC (with -pipeline); 0 = GOMAXPROCS divided across the n-1 concurrent peer readers")
	)
	flag.Parse()
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix(fmt.Sprintf("sftnode[%d] ", *id))

	if (*n-1)%3 != 0 {
		log.Fatalf("n=%d is not 3f+1", *n)
	}
	f := (*n - 1) / 3
	addrs := strings.Split(*peersCSV, ",")
	if len(addrs) != *n {
		log.Fatalf("need %d peer addresses, got %d", *n, len(addrs))
	}
	peers := make(map[types.ReplicaID]string, *n)
	for i, a := range addrs {
		peers[types.ReplicaID(i)] = strings.TrimSpace(a)
	}

	ring, err := crypto.NewKeyRing(*n, *seed, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	// Payload source: synthetic load, plus any transactions submitted by
	// clients over the -client-listen socket.
	gen := workload.NewGenerator(*seed+int64(*id), 16, 64)
	var (
		clientMu   sync.Mutex
		clientPool = mempool.New(1 << 16)
	)
	payload := func(r types.Round) types.Payload {
		clientMu.Lock()
		fromClients := clientPool.Batch(*txns)
		clientMu.Unlock()
		p := types.Payload{Txns: fromClients}
		if missing := *txns - len(fromClients); missing > 0 {
			p.Txns = append(p.Txns, gen.Batch(missing)...)
		}
		return p
	}
	if *clients != "" {
		ln, err := net.Listen("tcp", *clients)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("accepting client transactions on %s", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					dec := gob.NewDecoder(conn)
					for {
						var txn types.Transaction
						if err := dec.Decode(&txn); err != nil {
							return
						}
						clientMu.Lock()
						clientPool.Add(txn)
						clientMu.Unlock()
					}
				}()
			}
		}()
	}

	// Durability: with -data-dir the replica write-ahead-logs every vote,
	// block and certificate its safety depends on (fsynced before the vote
	// leaves the process) and recovers that state on restart.
	var journal *core.Journal
	var recovery *core.Recovery
	if *dataDir != "" {
		walPath := filepath.Join(*dataDir, fmt.Sprintf("replica-%d", *id))
		l, err := wal.Open(walPath, wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		journal = core.NewJournal(l)
		recovery, err = core.Recover(l)
		if err != nil {
			log.Fatalf("wal replay failed — durable state is unusable: %v", err)
		}
		if !recovery.Empty() {
			highRound := types.Round(0)
			if recovery.HighQC != nil {
				highRound = recovery.HighQC.Round
			}
			log.Printf("recovered from %s: %d blocks, %d own votes, voted r%d, committed height %d, high QC r%d",
				walPath, len(recovery.Blocks), len(recovery.Votes),
				recovery.VotedRound(), recovery.CommittedHeight, highRound)
		}
	}

	batchWorkers := 1
	if *pipeline {
		batchWorkers = *workers
		if batchWorkers <= 0 {
			// The n-1 per-peer reader goroutines already verify concurrently;
			// sizing the per-QC fan-out as GOMAXPROCS/(n-1) keeps a burst of
			// cold certificates from every peer at ~GOMAXPROCS runnable
			// goroutines instead of (n-1)*GOMAXPROCS.
			batchWorkers = max(1, rt.GOMAXPROCS(0)/max(1, *n-1))
		}
	}
	rep, err := diembft.New(diembft.Config{
		ID:               types.ReplicaID(*id),
		N:                *n,
		F:                f,
		Signer:           ring.Signer(types.ReplicaID(*id)),
		Verifier:         ring,
		VerifySignatures: true,
		BatchWorkers:     batchWorkers,
		SFT:              true,
		RoundTimeout:     *timeout,
		ExtraWait:        *wait,
		Payload:          payload,
		MaxCommitLog:     16,
		PruneKeep:        512,
		Journal:          journal,
	})
	if err != nil {
		log.Fatal(err)
	}
	if recovery != nil {
		if err := rep.Restore(recovery); err != nil {
			log.Fatal(err)
		}
	}

	netCfg := tcpnet.Config{
		ID:     types.ReplicaID(*id),
		Listen: *listen,
		Peers:  peers,
	}
	if *pipeline {
		// Stateless verification runs on the per-peer reader goroutines; the
		// engine loop receives pre-verified frames and does no crypto.
		netCfg.Prevalidate = rep.Prevalidate
	}
	nt, err := tcpnet.Listen(netCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer nt.Close()
	log.Printf("listening on %s, cluster n=%d f=%d (pipeline=%v batch-workers=%d)", nt.Addr(), *n, f, *pipeline, batchWorkers)

	var commits, strong, height atomic.Int64
	nodeOpts := runtime.Options{
		N: *n,
		OnCommit: func(b *types.Block) {
			commits.Add(1)
			height.Store(int64(b.Height))
			if !*quiet {
				log.Printf("commit %v (height %d, %d txns)", b.ID(), b.Height, len(b.Payload.Txns))
			}
		},
		OnStrength: func(b *types.Block, x int) {
			strong.Add(1)
			if !*quiet && x > f {
				log.Printf("strength %v -> %d-strong (%.1ff)", b.ID(), x, float64(x)/float64(f))
			}
		},
	}
	if journal != nil {
		// Run flushes and closes the WAL on the way out, so a graceful stop
		// never leaves buffered appends behind.
		nodeOpts.Journal = journal
	}
	// No PrevalidateWorkers here: the tcpnet hook already verifies every
	// frame on its per-peer reader goroutine, so the node-level worker pool
	// would only add queue hops. The pool is for transports without a
	// prevalidation hook (e.g. runtime.LocalNetwork).
	node, err := runtime.NewNode(rep, nt, nodeOpts)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *run > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *run)
		defer tcancel()
	}

	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				fs := nt.FrameStats()
				log.Printf("summary: %d commits, %d strength updates, committed height %d, dropped frames: %d spoofed / %d malformed / %d failed-verify",
					commits.Load(), strong.Load(), height.Load(),
					fs.Spoofed, fs.Malformed, fs.Prevalidated+node.PrevalidateDrops())
			}
		}
	}()

	if err := node.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Printf("shutting down after %d commits", commits.Load())
}

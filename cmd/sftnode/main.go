// Command sftnode runs one SFT-DiemBFT replica over TCP, composed entirely
// through the public sft facade. Start n = 3f+1 of them (locally or across
// machines) to form a real cluster.
//
// Example 4-node local cluster:
//
//	sftnode -id 0 -n 4 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	sftnode -id 1 -n 4 -listen 127.0.0.1:7001 -peers ... &
//	sftnode -id 2 -n 4 -listen 127.0.0.1:7002 -peers ... &
//	sftnode -id 3 -n 4 -listen 127.0.0.1:7003 -peers ... &
//
// All nodes must share -n and -seed (the seed derives the cluster's PKI;
// a real deployment would exchange public keys instead). SIGINT/SIGTERM
// (or -run expiring) shuts down gracefully: the event loop drains and
// Node.Close flushes and closes the write-ahead log before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
	"repro/sft"
)

func main() {
	var (
		id       = flag.Int("id", 0, "replica ID in [0, n)")
		n        = flag.Int("n", 4, "cluster size (3f+1)")
		listen   = flag.String("listen", "127.0.0.1:7000", "listen address")
		peersCSV = flag.String("peers", "", "comma-separated peer addresses indexed by replica ID")
		seed     = flag.Int64("seed", 42, "PKI derivation seed (must match across the cluster)")
		timeout  = flag.Duration("timeout", 2*time.Second, "round timeout")
		txns     = flag.Int("txns", 100, "transactions per block")
		wait     = flag.Duration("extra-wait", 0, "leader extra wait after quorum (Figure 8 knob)")
		run      = flag.Duration("run", 0, "exit after this duration (0 = run until signal)")
		quiet    = flag.Bool("quiet", false, "only print periodic summaries")
		clients  = flag.String("client-listen", "", "optional address accepting client transaction streams (see cmd/sftclient)")
		dataDir  = flag.String("data-dir", "", "directory for the write-ahead log; restarting with the same -data-dir recovers the pre-crash state and re-joins via state sync")
		pipeline = flag.Bool("pipeline", true, "verify signatures off the event loop, on the per-peer transport reader goroutines, with batched QC verification")
		workers  = flag.Int("pipeline-workers", 0, "batch-verification concurrency per cold QC (with -pipeline); 0 = GOMAXPROCS divided across the n-1 concurrent peer readers")
		strength = flag.Int("min-strength", 0, "x-strong threshold for reported commits (the paper's client-side knob; 0 = report every level)")
		obsAddr  = flag.String("obs-addr", "", "optional ops HTTP address serving /metrics (Prometheus), /healthz, /tracez and /debug/pprof")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("sftnode %s\n", sft.Version)
		return
	}
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix(fmt.Sprintf("sftnode[%d] ", *id))

	if (*n-1)%3 != 0 {
		log.Fatalf("n=%d is not 3f+1", *n)
	}
	f := (*n - 1) / 3
	addrs := strings.Split(*peersCSV, ",")
	if len(addrs) != *n {
		log.Fatalf("need %d peer addresses, got %d", *n, len(addrs))
	}
	peers := make(map[sft.ReplicaID]string, *n)
	for i, a := range addrs {
		peers[sft.ReplicaID(i)] = strings.TrimSpace(a)
	}

	// Payload source: synthetic load, plus any transactions submitted by
	// clients over the -client-listen socket.
	gen := workload.NewGenerator(*seed+int64(*id), 16, 64)
	var txnSrv *sft.TxnServer
	if *clients != "" {
		srv, err := sft.ListenTransactions(*clients, 1<<16)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		txnSrv = srv
		log.Printf("accepting client transactions on %s", srv.Addr())
	}
	payload := func(r sft.Round) sft.Payload {
		var p sft.Payload
		if txnSrv != nil {
			p.Txns = txnSrv.Batch(*txns)
		}
		if missing := *txns - len(p.Txns); missing > 0 {
			p.Txns = append(p.Txns, gen.Batch(missing)...)
		}
		return p
	}

	opts := []sft.Option{
		sft.WithEngine(sft.DiemBFT),
		sft.WithScheme(sft.SchemeEd25519),
		sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: *listen, Peers: peers})),
		sft.WithCommitRule(sft.CommitRule{MinStrength: *strength}),
		sft.WithRoundTimeout(*timeout),
		sft.WithExtraWait(*wait),
		sft.WithPayload(payload),
		sft.WithCommitLog(16),
		sft.WithPruneKeep(512),
	}
	if *dataDir != "" {
		// Durability: the replica write-ahead-logs every vote, block and
		// certificate its safety depends on (fsynced before the vote leaves
		// the process) and recovers that state on restart.
		opts = append(opts, sft.WithWAL(filepath.Join(*dataDir, fmt.Sprintf("replica-%d", *id))))
	}
	if *pipeline {
		opts = append(opts, sft.WithVerifyPipeline(*workers))
	}
	if *obsAddr != "" {
		opts = append(opts, sft.WithObservability(sft.ObsConfig{}))
	}

	node, err := sft.New(sft.Config{ID: sft.ReplicaID(*id), N: *n, Seed: *seed}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if rec, ok := node.Restored(); ok {
		log.Printf("recovered from WAL: %d blocks, %d own votes, voted r%d, committed height %d, high QC r%d",
			rec.Blocks, rec.Votes, rec.VotedRound, rec.CommittedHeight, rec.HighQCRound)
	}
	log.Printf("listening on %s, cluster n=%d f=%d (pipeline=%v)", node.Addr(), *n, f, *pipeline)

	// Ops surface: Prometheus metrics, health, block traces and pprof. The
	// health gate flags this replica when its own votes stop appearing in
	// recent chain QCs — the paper's "outcast replica" signal.
	if *obsAddr != "" {
		handler := obs.NewHandler(obs.ServerConfig{
			Obs: node.Obs(),
			Healthy: func() bool {
				rep, ok := node.Health()
				if !ok || rep.QCsObserved == 0 {
					return true // starting up; no chain evidence either way
				}
				for _, s := range rep.Stragglers {
					if s == sft.ReplicaID(*id) {
						return false
					}
				}
				return true
			},
			Health: func() any {
				rep, ok := node.Health()
				if !ok {
					return nil
				}
				return rep
			},
		})
		obsSrv := &http.Server{Addr: *obsAddr, Handler: handler}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("obs server: %v", err)
			}
		}()
		defer obsSrv.Close()
		log.Printf("ops endpoints on http://%s: /metrics /healthz /tracez /debug/pprof", *obsAddr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *run > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *run)
		defer tcancel()
	}

	// Consume the commit-strength stream: every commit arrives once at
	// f-strong and again at each level it climbs to (filtered by
	// -min-strength via the commit rule).
	go func() {
		for ev := range node.Commits() {
			if *quiet {
				continue
			}
			if ev.Regular {
				log.Printf("commit %v (height %d, %d txns)", ev.Block.ID(), ev.Height, len(ev.Block.Payload.Txns))
			} else if ev.Strength > f {
				log.Printf("strength %v -> %d-strong (%.1ff)", ev.Block.ID(), ev.Strength, float64(ev.Strength)/float64(f))
			}
		}
	}()
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				log.Printf("summary: %s", node.Metrics())
			}
		}
	}()

	// Run drains the event loop on cancellation and closes the node —
	// flushing the WAL — before returning.
	if err := node.Run(ctx); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutting down after %d commits", node.Metrics().Commits)
}

// Command sftbench regenerates the paper's evaluation artifacts (Figures
// 7a, 7b, 8, and the companion comparisons) on the discrete-event simulator
// and prints the measured series as tables.
//
// Usage:
//
//	sftbench -experiment fig7a [-n 100] [-duration 5m] [-delta 100ms] [-seed 1]
//	sftbench -experiment all -n 31 -duration 90s
//	sftbench -experiment verifypipeline -scheme ed25519 -n 31 -duration 60s
//
// Experiments: fig7a, fig7b, fig8, throughput, msgcomplexity, theorem2,
// theorem3, streamlet, crashrecovery, adversary, verifypipeline,
// compactcert, bankworkload, all.
// crashrecovery exercises the durability layer: a replica is killed
// mid-run, restored from its write-ahead log, and re-joins via state sync;
// the report compares its commits against the no-crash baseline. adversary
// runs the randomized Byzantine scenario fuzzer (-scenarios seeded
// scenarios against the invariant checkers, plus the weakened-rule canary;
// it uses its own per-scenario virtual duration, not -duration) — explicit
// only, not under "all": at the default n=100 each scenario simulates a
// full Byzantine cluster (hours), while the acceptance setting
// `-experiment adversary -seed 1 -n 7` takes ~2s.
// verifypipeline A/Bs the verification pipeline (prevalidate/apply split +
// batched signature checking) under real crypto and prints the determinism
// verdict; because it defaults to ed25519 (expensive at paper scale), it
// runs only when named explicitly, not under "all".
//
// bankworkload drives the execute-before-vote bank (deterministic execution
// with AppHash-certified state) over -accounts accounts with per-transaction
// ed25519 signatures and reports submit→f-strong vs submit→2f-strong
// latency. Explicit-only; acceptance shape
// `-experiment bankworkload -n 7 -duration 30s -json BENCH_PR9.json`.
//
// compactcert measures the compact O(1) certificates at committee sizes
// n=31 vs n=103: quorum-certificate wire bytes and cold verify CPU in
// per-signer vector form vs aggregated bitmap form, plus a fig7a-style
// simulation per size under the ed25519-agg scheme. Explicit-only (real
// crypto at n=103); it ignores -n.
//
// -scheme selects the signature implementation for every experiment: "sim"
// (fast, deterministic, the default), "ed25519" (real crypto; implies full
// signature verification), or their aggregating variants "sim-agg" /
// "ed25519-agg", which additionally compact every formed certificate into
// the constant-size aggregated form. -pipeline additionally routes every
// experiment through the verification pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/crypto"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/pacemaker"
)

// experimentNames lists every -experiment value, in the order the "all"
// sweep runs them (verifypipeline is explicit-only; "all" skips it).
var experimentNames = []string{
	"fig7a", "fig7b", "fig8", "throughput", "msgcomplexity",
	"theorem2", "theorem3", "streamlet", "crashrecovery", "adversary",
	"verifypipeline", "compactcert", "livenessattack", "bankworkload",
	"gateway", "all",
}

var validExperiments = func() map[string]bool {
	m := make(map[string]bool, len(experimentNames))
	for _, name := range experimentNames {
		m[name] = true
	}
	return m
}()

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (fig7a|fig7b|fig8|throughput|msgcomplexity|theorem2|theorem3|streamlet|crashrecovery|adversary|verifypipeline|compactcert|livenessattack|bankworkload|gateway|all)")
		n          = flag.Int("n", 100, "number of replicas (3f+1)")
		duration   = flag.Duration("duration", 5*time.Minute, "virtual run duration")
		delta      = flag.Duration("delta", 0, "inter-region delay; 0 sweeps the paper's {100ms,200ms}")
		seed       = flag.Int64("seed", 1, "simulation seed")
		scheme     = flag.String("scheme", crypto.SchemeSim, "signature scheme (sim|ed25519|sim-agg|ed25519-agg); the ed25519 schemes imply signature verification, the -agg schemes compact certificates")
		pipeline   = flag.Bool("pipeline", false, "route experiments through the verification pipeline (prevalidate/apply split)")
		scenarios  = flag.Int("scenarios", 60, "randomized scenarios for -experiment adversary")
		accounts   = flag.Uint("accounts", 1<<17, "bank accounts for -experiment bankworkload")
		txnsPer    = flag.Int("txns-per-block", 128, "transactions per proposal for -experiment bankworkload")
		unsigned   = flag.Bool("unsigned", false, "skip per-transaction ed25519 signatures in -experiment bankworkload")
		workers    = flag.Int("workers", 0, "concurrent scenarios for -experiment adversary (0 = GOMAXPROCS; results are identical at any worker count)")
		subs       = flag.Int("subscribers", 1000, "concurrent verified subscriptions for -experiment gateway")
		jsonPath   = flag.String("json", "", "write machine-readable results (per-experiment latency and per-level strength histograms) to this file")
	)
	flag.Parse()

	if (*n-1)%3 != 0 {
		fmt.Fprintf(os.Stderr, "sftbench: n=%d is not 3f+1\n", *n)
		os.Exit(1)
	}
	// Validate enum flags up front: a typo'd -experiment or -scheme must be
	// a usage error listing the valid choices, not a silent zero-value run.
	if !validExperiments[*experiment] {
		fmt.Fprintf(os.Stderr, "sftbench: unknown experiment %q\nvalid choices: %s\n",
			*experiment, strings.Join(experimentNames, ", "))
		flag.Usage()
		os.Exit(2)
	}
	switch *scheme {
	case crypto.SchemeSim, crypto.SchemeEd25519, crypto.SchemeSimAgg, crypto.SchemeEd25519Agg:
	default:
		fmt.Fprintf(os.Stderr, "sftbench: unknown scheme %q\nvalid choices: %s, %s, %s, %s\n",
			*scheme, crypto.SchemeSim, crypto.SchemeEd25519, crypto.SchemeSimAgg, crypto.SchemeEd25519Agg)
		flag.Usage()
		os.Exit(2)
	}
	sc := harness.Scale{
		N: *n, F: (*n - 1) / 3, Duration: *duration, Seed: *seed,
		Scheme: *scheme, Pipeline: *pipeline,
	}
	if *experiment == "verifypipeline" && !schemeSetExplicitly() {
		// The ablation exists to measure real crypto: unless the user chose
		// a scheme explicitly, override the -scheme flag's toy sim default —
		// resolved here so the banner announces the scheme actually run.
		sc.Scheme = crypto.SchemeEd25519
	}
	deltas := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if *delta != 0 {
		deltas = []time.Duration{*delta}
	}
	if *jsonPath != "" {
		benchInit(sc)
	}

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Printf("==> %s (n=%d f=%d duration=%v seed=%d scheme=%s pipeline=%v)\n",
			name, sc.N, sc.F, sc.Duration, sc.Seed, sc.Scheme, sc.Pipeline)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sftbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("    [wall time %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	run("fig7a", func() error { return figure7(sc, deltas, harness.Figure7a, "fig7a", "symmetric") })
	run("fig7b", func() error { return figure7(sc, deltas, harness.Figure7b, "fig7b", "asymmetric") })
	run("fig8", func() error { return figure8(sc) })
	run("throughput", func() error { return throughput(sc, deltas[0]) })
	run("msgcomplexity", func() error { return msgComplexity(sc) })
	run("theorem2", func() error { return theorem2(sc) })
	run("theorem3", func() error { return theorem3(sc) })
	run("streamlet", func() error { return streamletExp(sc) })
	run("crashrecovery", func() error { return crashRecovery(sc, deltas[0]) })
	// adversary is explicit-only (not part of "all"), like verifypipeline:
	// at the default paper scale (n=100) each of its 60 scenarios simulates
	// a full Byzantine cluster — hours of wall time — while its acceptance
	// setting is -n 7 (~2s). Run it as `-experiment adversary -n 7`.
	if *experiment == "adversary" {
		run("adversary", func() error { return adversaryFuzz(sc, *scenarios, *workers) })
	}
	// verifypipeline is explicit-only (not part of "all"): it defaults to
	// real ed25519 signatures, and two serially-verified macro runs at paper
	// scale would dominate the whole sweep's wall time.
	if *experiment == "verifypipeline" {
		run("verifypipeline", func() error { return verifyPipeline(sc, deltas[0]) })
	}
	// compactcert is explicit-only for the same reason: it sweeps committee
	// sizes {31, 103} under real ed25519 vote signatures regardless of -n.
	if *experiment == "compactcert" {
		run("compactcert", func() error { return compactCert(sc, deltas[0]) })
	}
	// livenessattack is explicit-only: its acceptance shape is n=7 over 10
	// virtual seconds (`-experiment livenessattack -n 7 -duration 10s`, ~2s
	// of wall time); the paper-scale defaults would simulate two full
	// adversarial clusters for 5 virtual minutes each.
	if *experiment == "livenessattack" {
		run("livenessattack", func() error { return livenessAttack(sc) })
	}
	// bankworkload is explicit-only: it drives the execute-before-vote bank
	// over a large account population (per-transaction ed25519 by default)
	// and measures submit→x-strong latency at the two assurance levels. Its
	// acceptance shape is `-experiment bankworkload -n 7 -duration 30s`.
	if *experiment == "bankworkload" {
		run("bankworkload", func() error { return bankWorkload(sc, uint32(*accounts), *txnsPer, !*unsigned) })
	}
	// gateway is explicit-only: unlike the simulated experiments it runs
	// three wall-clock arms over real loopback sockets — a bare cluster, the
	// same cluster serving -subscribers proof-verified strength
	// subscriptions through an observer-fed gateway, and a lying gateway
	// every subscriber must catch. Its acceptance shape is
	// `-experiment gateway -n 7 -duration 15s`.
	if *experiment == "gateway" {
		run("gateway", func() error { return gatewayScale(sc, *subs) })
	}
	if *jsonPath != "" {
		if err := benchWrite(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "sftbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}

// schemeSetExplicitly reports whether -scheme appeared on the command line.
func schemeSetExplicitly() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scheme" {
			set = true
		}
	})
	return set
}

func verifyPipeline(sc harness.Scale, delta time.Duration) error {
	res, err := harness.VerifyPipeline(sc, delta)
	if err != nil {
		return err
	}
	verdict := res.Verdict()
	printTable(fmt.Sprintf("Verification pipeline ablation (scheme=%s): prevalidate/apply split on vs off", res.Scheme),
		[]string{"metric", "pipeline off", "pipeline on"},
		[][]string{
			{"events processed", fmt.Sprintf("%d", res.Off.Events), fmt.Sprintf("%d", res.On.Events)},
			{"events/sec (host)", fmt.Sprintf("%.0f", res.OffEventsPerSec), fmt.Sprintf("%.0f", res.OnEventsPerSec)},
			{"wall time", res.OffWall.Round(time.Millisecond).String(), res.OnWall.Round(time.Millisecond).String()},
			{"blocks committed", fmt.Sprintf("%d", res.Off.CommittedBlocks), fmt.Sprintf("%d", res.On.CommittedBlocks)},
			{"regular latency (s)", fmt.Sprintf("%.3f", res.Off.RegularLatency.Mean), fmt.Sprintf("%.3f", res.On.RegularLatency.Mean)},
			{"messages", fmt.Sprintf("%d", res.Off.Msgs.Count), fmt.Sprintf("%d", res.On.Msgs.Count)},
			{"determinism verdict", verdict, verdict},
		})
	rows := [][]string{{"serial (baseline)", fmt.Sprintf("%.0f", res.SerialNsPerQC/1e3), "1.00"}}
	for _, p := range res.Sweep {
		rows = append(rows, []string{
			fmt.Sprintf("batch, %d worker(s)", p.Workers),
			fmt.Sprintf("%.0f", p.NsPerQC/1e3),
			fmt.Sprintf("%.2f", p.Speedup),
		})
	}
	printTable(fmt.Sprintf("Cold QC verification (%d signatures per certificate): batch worker sweep", res.Quorum),
		[]string{"path", "µs/QC", "speedup"}, rows)
	if !res.Identical {
		return fmt.Errorf("pipeline on/off runs diverged")
	}
	return nil
}

// adversaryFuzz runs the randomized adversarial scenario fuzzer: `count`
// seeded scenarios sampling engines, Byzantine behavior compositions (up to
// 2f colluders), crash/restart plans and network partitions, each checked
// against the paper's invariants (Definition 1 safety, strength
// monotonicity, chain consistency, benign liveness). It then runs the
// weakened-rule canary: the Appendix C collusion against naive
// (marker-free) endorsement counting must be caught by the same checker,
// while the identical collusion under the real rule stays clean. Scenarios
// use the fuzzer's own per-scenario virtual duration, not -duration.
func adversaryFuzz(sc harness.Scale, count, workers int) error {
	report, err := harness.RunFuzz(harness.FuzzOptions{
		Seed:      sc.Seed,
		Scenarios: count,
		N:         sc.N,
		Scheme:    sc.Scheme,
		Workers:   workers,
	})
	if err != nil {
		return err
	}
	verdict := "SAFE — zero invariant violations"
	if len(report.Failures) > 0 {
		verdict = fmt.Sprintf("VIOLATED — %d scenario(s) failed", len(report.Failures))
	}
	perMin := float64(report.Scenarios) / report.Elapsed.Minutes()
	printTable("Adversarial scenario fuzzer: randomized Byzantine compositions, crashes, partitions",
		[]string{"metric", "value"},
		[][]string{
			{"scenarios", fmt.Sprintf("%d", report.Scenarios)},
			{"with byzantine replicas", fmt.Sprintf("%d", report.ByzantineScenarios)},
			{"with partitions", fmt.Sprintf("%d", report.PartitionScenarios)},
			{"with crash/restart plans", fmt.Sprintf("%d", report.CrashScenarios)},
			{"simulation events", fmt.Sprintf("%d", report.TotalEvents)},
			{"blocks committed", fmt.Sprintf("%d", report.TotalBlocks)},
			{"wall time", report.Elapsed.Round(time.Millisecond).String()},
			{"scenarios/min", fmt.Sprintf("%.0f", perMin)},
			{"verdict", verdict},
		})
	for _, fail := range report.Failures {
		fmt.Printf("    REPLAY %s\n", fail.Spec)
		for _, v := range fail.Violations {
			fmt.Printf("      -> %s\n", v)
		}
	}
	if len(report.Failures) > 0 {
		return fmt.Errorf("adversary fuzzer found %d violating scenario(s)", len(report.Failures))
	}

	// Weakened-rule canary: the checker must have teeth.
	var caughtSeed int64
	caught := false
	var spec harness.FuzzScenario
	for seed := sc.Seed; seed < sc.Seed+8 && !caught; seed++ {
		var violations []string
		spec, violations, err = harness.WeakenedRuleCanary(seed, sc.N, true)
		if err != nil {
			return err
		}
		for _, v := range violations {
			if strings.Contains(v, "Definition 1") {
				caught, caughtSeed = true, seed
				break
			}
		}
	}
	if !caught {
		return fmt.Errorf("weakened (naive) commit rule was NOT caught — checker has no teeth")
	}
	_, markerViolations, err := harness.WeakenedRuleCanary(caughtSeed, sc.N, false)
	if err != nil {
		return err
	}
	if len(markerViolations) > 0 {
		// ANY invariant breach under the real rule — Definition 1,
		// monotonicity, bounds — is a regression, not just the headline one.
		return fmt.Errorf("real marker rule violated an invariant under the canary collusion: %s", markerViolations[0])
	}
	printTable("Weakened-rule canary: Appendix C collusion vs the commit rule",
		[]string{"commit rule", "Definition 1 verdict"},
		[][]string{
			{"naive counting (no markers)", fmt.Sprintf("VIOLATION CAUGHT (replay seed %d)", caughtSeed)},
			{"strengthened rule (markers)", "safe"},
		})
	fmt.Printf("    canary spec: %s\n", spec)

	// Pacemaker canary: the same timeout-spam + round-entry-lying coalition
	// under one seed, passive vs active. The hardened pacemaker must bound
	// the per-peer timeout buffer the passive baseline lets grow without
	// bound, while staying just as live.
	pSpec, pRes, pViol, err := harness.PacemakerCanary(sc.Seed, sc.N, false)
	if err != nil {
		return err
	}
	_, aRes, aViol, err := harness.PacemakerCanary(sc.Seed, sc.N, true)
	if err != nil {
		return err
	}
	if len(pViol) > 0 || len(aViol) > 0 {
		all := append(append([]string{}, pViol...), aViol...)
		return fmt.Errorf("pacemaker canary violated a safety invariant: %s", all[0])
	}
	peak := func(res *harness.Result) (p int) {
		for _, st := range res.Pacemakers {
			if st.PeakPerPeer > p {
				p = st.PeakPerPeer
			}
		}
		return p
	}
	pPeak, aPeak := peak(pRes), peak(aRes)
	if aPeak > pacemaker.DefaultPerPeerCap {
		return fmt.Errorf("pacemaker canary: hardened arm's per-peer buffer peaked at %d > cap %d", aPeak, pacemaker.DefaultPerPeerCap)
	}
	if pPeak <= pacemaker.DefaultPerPeerCap {
		return fmt.Errorf("pacemaker canary: passive arm peaked at only %d — spam never demonstrated growth", pPeak)
	}
	printTable("Pacemaker canary: timeout-spam + round-entry lying, passive vs active",
		[]string{"pacemaker", "blocks committed", "peak per-peer timeout buffer"},
		[][]string{
			{"passive (unbounded buffer)", fmt.Sprintf("%d", pRes.CommittedBlocks), fmt.Sprintf("%d", pPeak)},
			{"active (hardened)", fmt.Sprintf("%d", aRes.CommittedBlocks), fmt.Sprintf("%d (cap %d)", aPeak, pacemaker.DefaultPerPeerCap)},
		})
	fmt.Printf("    canary spec: %s\n", pSpec)
	return nil
}

// livenessAttack drives the pacemaker-hardening A/B (harness.LivenessAttack
// asserts the claim itself — safety both arms, bounded buffers and liveness
// on the hardened arm, demonstrated growth on the passive arm) and renders
// the comparison.
func livenessAttack(sc harness.Scale) error {
	res, err := harness.LivenessAttack(sc)
	if err != nil {
		return err
	}
	row := func(name string, f func(*harness.Result) string) []string {
		return []string{name, f(res.Passive), f(res.Active)}
	}
	printTable(fmt.Sprintf("Liveness under attack: f colluders (timeout-spam + lie-round-entry), per-peer cap %d", res.Cap),
		[]string{"metric", "passive (unhardened)", "active (hardened)"},
		[][]string{
			row("blocks committed", func(r *harness.Result) string { return fmt.Sprintf("%d", r.CommittedBlocks) }),
			row("throughput (blocks/s)", func(r *harness.Result) string { return fmt.Sprintf("%.1f", r.BlocksPerSec) }),
			row("regular latency p50 (s)", func(r *harness.Result) string { return fmt.Sprintf("%.3f", r.RegularLatency.P50) }),
			row("messages", func(r *harness.Result) string { return fmt.Sprintf("%d", r.Msgs.Count) }),
			{"peak per-peer timeout buffer", fmt.Sprintf("%d", res.PassivePeak), fmt.Sprintf("%d", res.ActivePeak)},
			{"timeouts shed by cap", fmt.Sprintf("%d", res.PassiveDropped), fmt.Sprintf("%d", res.ActiveDropped)},
		})
	fmt.Printf("    verdict: hardened pacemaker bounded the buffer (%d <= %d) the passive baseline grew to %d\n",
		res.ActivePeak, res.Cap, res.PassivePeak)
	return nil
}

// bankWorkload drives the deterministic execution layer end to end: every
// replica executes a signed-transfer bank before voting (AppHash-certified
// state), the workload pushes transfers and withdrawals across `accounts`
// accounts, and the report is the paper's knob applied to execution —
// submit→f-strong (the classical guarantee) vs submit→2f-strong (maximum
// assurance) latency, over a chain whose state roots all replicas agree on.
func bankWorkload(sc harness.Scale, accounts uint32, txnsPerBlock int, sign bool) error {
	res, err := harness.BankWorkload(sc, accounts, txnsPerBlock, sign)
	if err != nil {
		return err
	}
	sigs := "ed25519 per txn"
	if !res.Signed {
		sigs = "disabled"
	}
	row := func(name string, s metrics.Summary) []string {
		return []string{name, fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.3f", s.P50), fmt.Sprintf("%.3f", s.P99), fmt.Sprintf("%.3f", s.Mean)}
	}
	printTable(fmt.Sprintf("Bank workload: %d accounts, %d txns/block, signatures %s", res.Accounts, txnsPerBlock, sigs),
		[]string{"assurance", "samples", "p50 (s)", "p99 (s)", "mean (s)"},
		[][]string{
			row(fmt.Sprintf("submit -> f-strong (x=%d)", res.Result.Scenario.F), res.SubmitToF),
			row(fmt.Sprintf("submit -> 2f-strong (x=%d)", 2*res.Result.Scenario.F), res.SubmitTo2F),
		})
	fmt.Printf("    %d blocks committed, %d txns generated, %d blocks executed; %d/%d heights state-root agreed across all replicas\n",
		res.Result.CommittedBlocks, res.Generated, res.ExecutedBlocks,
		res.AgreedHeights, len(res.Result.AppHashes[res.Result.Observer]))
	if res.AgreedHeights == 0 {
		return fmt.Errorf("no committed height had all replicas agreeing on the state root")
	}
	e := benchExperimentOf("bankworkload", res.Result, res.Result.Scenario.F, 0, 0)
	e.ThroughputTPS = res.Result.ThroughputTPS
	benchRecord(e)
	return nil
}

// gatewayScale runs the access-tier scale experiment: a bare n-replica TCP
// cluster vs the same cluster with a non-voting observer feeding a gateway
// that serves `subscribers` concurrent proof-verified strength
// subscriptions, plus a lying-gateway arm that must be rejected by every
// client. The headline numbers are the commit-cadence slowdown (the read
// path's tax on the write path) and the subscriber coverage.
func gatewayScale(sc harness.Scale, subscribers int) error {
	res, err := harness.GatewayScaleExperiment(harness.GatewayScale{
		N: sc.N, Seed: sc.Seed, Scheme: sc.Scheme,
		Duration: sc.Duration, Subscribers: subscribers,
	})
	if err != nil {
		return err
	}
	row := func(name string, arm harness.GatewayArm) []string {
		return []string{name, fmt.Sprintf("%d", arm.Commits),
			fmt.Sprintf("%.1f", arm.Interval.P50*1e3), fmt.Sprintf("%.1f", arm.Interval.P95*1e3)}
	}
	printTable(fmt.Sprintf("Gateway scale: %d proof-verified subscriptions on one gateway", res.Subscribers),
		[]string{"arm", "commits", "interval p50 (ms)", "interval p95 (ms)"},
		[][]string{
			row("baseline (no gateway)", res.Baseline),
			row(fmt.Sprintf("gateway + %d subscribers", res.Subscribers), res.WithGateway),
		})
	fmt.Printf("    commit-cadence slowdown p50: %.2fx; %d/%d subscribers served (min %d events each, %d total), %d blocks proven\n",
		res.SlowdownP50, res.SubscribersServed, res.Subscribers,
		res.MinEventsPerSubscriber, res.EventsVerified, res.ProvenBlocks)
	fmt.Printf("    lying gateway: %d/%d subscribers rejected the fabricated proof\n",
		res.LyingRejected, res.LyingSubscribers)
	benchRecord(benchGatewayExperiment("gateway-baseline", res.Baseline, nil))
	benchRecord(benchGatewayExperiment("gateway", res.WithGateway, res))
	return res.Verdict()
}

// compactCert sweeps committee sizes n=31 and n=103: for each it encodes
// and cold-verifies one genuine quorum certificate in both wire forms, then
// runs the fig7a-style simulation under ed25519-agg. The wire-size check is
// a hard failure — compact certificates must stay O(1) in n (the bitmap
// adds one u64 word per 64 replicas; anything more means a per-signer field
// leaked back into the encoding).
func compactCert(sc harness.Scale, delta time.Duration) error {
	ns := []int{31, 103}
	points, err := harness.CompactCertificates(sc, ns, delta)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.Quorum),
			fmt.Sprintf("%d", p.VectorQCBytes),
			fmt.Sprintf("%d", p.CompactQCBytes),
			fmt.Sprintf("%.0f", p.VectorVerifyNs/1e3),
			fmt.Sprintf("%.0f", p.CompactVerifyNs/1e3),
		})
	}
	printTable("Compact O(1) certificates: per-signer vote vector vs aggregated bitmap QC",
		[]string{"n", "quorum", "vector bytes", "compact bytes", "vector µs/QC", "compact µs/QC"}, rows)

	simRows := [][]string{}
	for _, p := range points {
		lat := p.Sim.RegularLatency
		simRows = append(simRows, []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.Sim.CommittedBlocks),
			fmt.Sprintf("%.3f", lat.P50),
			fmt.Sprintf("%.3f", lat.P99),
			fmt.Sprintf("%.0f", p.Sim.BytesPerBlock),
		})
	}
	printTable("fig7a-style run under scheme=ed25519-agg (real vote signatures, compact QCs)",
		[]string{"n", "blocks committed", "regular p50 (s)", "regular p99 (s)", "bytes/block"}, simRows)

	small, large := points[0], points[len(points)-1]
	growth := large.CompactQCBytes - small.CompactQCBytes
	cpuRatio := large.CompactVerifyNs / small.CompactVerifyNs
	fmt.Printf("    compact QC bytes n=%d -> n=%d: +%d (vector: +%d); compact verify CPU ratio %.2fx\n",
		small.N, large.N, growth, large.VectorQCBytes-small.VectorQCBytes, cpuRatio)
	// One extra bitmap word per 64 replicas is the only growth a compact
	// certificate is allowed.
	if allowed := 8 * ((large.N+63)/64 - (small.N+63)/64); growth > allowed {
		return fmt.Errorf("compact QC grew %d bytes from n=%d to n=%d (allowed %d) — not O(1)",
			growth, small.N, large.N, allowed)
	}
	return nil
}

func crashRecovery(sc harness.Scale, delta time.Duration) error {
	res, err := harness.CrashRecovery(sc, delta)
	if err != nil {
		return err
	}
	verdict := "CONSISTENT"
	if !res.Consistent {
		verdict = "INCONSISTENT — safety violation"
	}
	printTable("Crash recovery: kill at T/3, restore from WAL + state-sync rejoin at T/2",
		[]string{"metric", "value"},
		[][]string{
			{"victim replica", fmt.Sprintf("%v", res.Victim)},
			{"killed at", res.CrashAt.String()},
			{"restarted at", res.RestartAt.String()},
			{"shared committed prefix (heights)", fmt.Sprintf("%d", res.SharedPrefix)},
			{"victim final height", fmt.Sprintf("%d", res.VictimHeight)},
			{"observer final height", fmt.Sprintf("%d", res.ObserverHeight)},
			{"baseline blocks committed", fmt.Sprintf("%d", res.Baseline.CommittedBlocks)},
			{"faulty-run blocks committed", fmt.Sprintf("%d", res.Faulty.CommittedBlocks)},
			{"consistency verdict", verdict},
		})
	if !res.Consistent {
		return fmt.Errorf("crash recovery produced inconsistent commits")
	}
	return nil
}

func figure7(sc harness.Scale, deltas []time.Duration, fn func(harness.Scale, time.Duration) (*harness.Result, error), name, label string) error {
	results := make([]*harness.Result, 0, len(deltas))
	for _, d := range deltas {
		res, err := fn(sc, d)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	f := sc.F
	if f == 0 {
		f = 33
	}
	header := []string{"x-strong"}
	for _, d := range deltas {
		header = append(header, fmt.Sprintf("latency(s) δ=%v", d))
	}
	rows := [][]string{}
	for _, lv := range harness.DefaultLevels(f) {
		row := []string{harness.LevelLabel(lv, f)}
		for _, res := range results {
			s := res.LevelLatency[lv]
			if s.Count == 0 {
				row = append(row, "unreached")
			} else {
				row = append(row, fmt.Sprintf("%.3f", s.Mean))
			}
		}
		rows = append(rows, row)
	}
	printTable(fmt.Sprintf("Figure 7 (%s): strong commit latency vs resilience", label), header, rows)

	// The operator's view of the same data: once a block is (f-strong)
	// committed locally, how much longer until it tolerates x faults.
	delayRows := [][]string{}
	for _, lv := range harness.DefaultLevels(f) {
		row := []string{harness.LevelLabel(lv, f)}
		any := false
		for _, res := range results {
			s := res.LevelCommitDelay[lv]
			if s.Count == 0 {
				row = append(row, "unreached", "-", "-")
			} else {
				any = true
				row = append(row, fmt.Sprintf("%.3f", s.P50), fmt.Sprintf("%.3f", s.P95), fmt.Sprintf("%.3f", s.P99))
			}
		}
		if any {
			delayRows = append(delayRows, row)
		}
	}
	delayHeader := []string{"x-strong"}
	for _, d := range deltas {
		delayHeader = append(delayHeader,
			fmt.Sprintf("p50 δ=%v", d), fmt.Sprintf("p95 δ=%v", d), fmt.Sprintf("p99 δ=%v", d))
	}
	printTable("Commit → x-strong delay (s): extra wait per resilience level after the regular commit", delayHeader, delayRows)

	for i, res := range results {
		fmt.Printf("    δ=%v: %d blocks committed, regular latency %.3fs, %.1f msgs/commit\n",
			deltas[i], res.CommittedBlocks, res.RegularLatency.Mean, res.MsgsPerCommit)
		benchRecord(benchExperimentOf(name, res, f, deltas[i], 0))
	}
	return nil
}

func figure8(sc harness.Scale) error {
	waits := []time.Duration{
		0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		150 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond, 300 * time.Millisecond,
	}
	points, err := harness.Figure8(sc, waits)
	if err != nil {
		return err
	}
	f := sc.F
	if f == 0 {
		f = 33
	}
	curves := []int{f + 2*f/10, f + 4*f/10, f + 6*f/10, f + 8*f/10, 2 * f}
	header := []string{"extra wait", "regular(s)"}
	for _, lv := range curves {
		header = append(header, harness.LevelLabel(lv, f)+"(s)")
	}
	rows := [][]string{}
	for _, p := range points {
		row := []string{p.ExtraWait.String(), fmt.Sprintf("%.3f", p.Result.RegularLatency.Mean)}
		for _, lv := range curves {
			s := p.Result.LevelLatency[lv]
			if s.Count == 0 {
				row = append(row, "unreached")
			} else {
				row = append(row, fmt.Sprintf("%.3f", s.Mean))
			}
		}
		rows = append(rows, row)
		benchRecord(benchExperimentOf("fig8", p.Result, f, 0, p.ExtraWait))
	}
	printTable("Figure 8: regular vs strong commit latency trade-off (δ=100ms)", header, rows)
	return nil
}

func throughput(sc harness.Scale, delta time.Duration) error {
	base, sft, err := harness.ThroughputComparison(sc, delta)
	if err != nil {
		return err
	}
	printTable("Throughput and regular commit latency: DiemBFT vs SFT-DiemBFT",
		[]string{"protocol", "throughput (tps)", "blocks/s", "regular latency (s)", "bytes/block"},
		[][]string{
			{"DiemBFT", fmt.Sprintf("%.0f", base.ThroughputTPS), fmt.Sprintf("%.2f", base.BlocksPerSec),
				fmt.Sprintf("%.3f", base.RegularLatency.Mean), fmt.Sprintf("%.0f", base.BytesPerBlock)},
			{"SFT-DiemBFT", fmt.Sprintf("%.0f", sft.ThroughputTPS), fmt.Sprintf("%.2f", sft.BlocksPerSec),
				fmt.Sprintf("%.3f", sft.RegularLatency.Mean), fmt.Sprintf("%.0f", sft.BytesPerBlock)},
		})
	return nil
}

func msgComplexity(sc harness.Scale) error {
	fs := []int{2, 5, 10, 21}
	if sc.N >= 100 {
		fs = append(fs, 33)
	}
	mcScale := sc
	mcScale.Duration = sc.Duration / 5
	points, err := harness.MessageComplexity(mcScale, fs)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.1f", p.SFTMsgsPerDec),
			fmt.Sprintf("%.1f", p.FBFTMsgsPer),
			fmt.Sprintf("%.2f", p.FBFTMsgsPer/p.SFTMsgsPerDec),
		})
	}
	printTable("Messages per block decision: SFT-DiemBFT (linear) vs FBFT-adapted (quadratic)",
		[]string{"n", "SFT msgs/decision", "FBFT msgs/decision", "ratio"}, rows)
	return nil
}

func theorem2(sc harness.Scale) error {
	rows := [][]string{}
	for _, c := range []int{0, sc.F / 2, sc.F} {
		res, target, err := harness.Theorem2(sc, c)
		if err != nil {
			return err
		}
		s := res.LevelLatency[target]
		lat := "unreached"
		if s.Count > 0 {
			lat = fmt.Sprintf("%.3f", s.Mean)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c),
			harness.LevelLabel(target, sc.F),
			lat,
			fmt.Sprintf("%d", s.Count),
		})
	}
	printTable("Theorem 2: (2f-c)-strong commit under c crash faults",
		[]string{"crashes c", "target level", "mean latency (s)", "samples"}, rows)
	return nil
}

func theorem3(sc harness.Scale) error {
	t := max(1, sc.F/2)
	marker, interval, target, err := harness.Theorem3(sc, t)
	if err != nil {
		return err
	}
	row := func(name string, r *harness.Result) []string {
		s := r.LevelLatency[target]
		lat := "unreached"
		if s.Count > 0 {
			lat = fmt.Sprintf("%.3f", s.Mean)
		}
		return []string{name, harness.LevelLabel(target, sc.F), lat, fmt.Sprintf("%d", s.Count)}
	}
	printTable(fmt.Sprintf("Theorem 3: (2f-t)-strong commit with t=%d equivocating Byzantine replicas", t),
		[]string{"vote mode", "target level", "mean latency (s)", "samples"},
		[][]string{row("marker (§3.2)", marker), row("intervals (§3.4)", interval)})
	return nil
}

func streamletExp(sc harness.Scale) error {
	res, err := harness.StreamletLatency(sc, 100*time.Millisecond)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, lv := range harness.DefaultLevels(sc.F) {
		s := res.LevelLatency[lv]
		lat := "unreached"
		if s.Count > 0 {
			lat = fmt.Sprintf("%.3f", s.Mean)
		}
		rows = append(rows, []string{harness.LevelLabel(lv, sc.F), lat})
	}
	printTable("SFT-Streamlet (Appendix D): strong commit latency vs resilience",
		[]string{"x-strong", "latency (s)"}, rows)
	fmt.Printf("    %d blocks committed, regular latency %.3fs\n",
		res.CommittedBlocks, res.RegularLatency.Mean)
	return nil
}

func printTable(title string, header []string, rows [][]string) {
	fmt.Printf("  %s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Printf("    %s\n", strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

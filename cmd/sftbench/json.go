package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// benchJSON is the machine-readable result sink behind -json: every
// experiment that produces latency series appends an entry, and main writes
// the collected document on exit. The shape is stable tooling input (CI
// trend lines, BENCH_PRn.json artifacts).
type benchJSON struct {
	Tool        string            `json:"tool"`
	N           int               `json:"n"`
	F           int               `json:"f"`
	Duration    string            `json:"duration"`
	Seed        int64             `json:"seed"`
	Scheme      string            `json:"scheme"`
	Experiments []benchExperiment `json:"experiments"`
}

// benchExperiment is one simulated run's measurements.
type benchExperiment struct {
	Name            string       `json:"name"`
	Delta           string       `json:"delta,omitempty"`
	ExtraWait       string       `json:"extra_wait,omitempty"`
	CommittedBlocks int          `json:"committed_blocks"`
	ThroughputTPS   float64      `json:"throughput_tps,omitempty"`
	MsgsPerCommit   float64      `json:"msgs_per_commit,omitempty"`
	RegularLatency  benchSummary `json:"regular_latency"`
	Levels          []benchLevel `json:"levels,omitempty"`
	// CommitInterval reports wall-clock inter-commit intervals for the
	// real-socket gateway arms (which have no virtual-time latency series).
	CommitInterval *benchSummary `json:"commit_interval_s,omitempty"`
	Gateway        *benchGateway `json:"gateway,omitempty"`
}

// benchGateway is the access-tier scale experiment's verdict data.
type benchGateway struct {
	Subscribers            int     `json:"subscribers"`
	SubscribersServed      int     `json:"subscribers_served"`
	MinEventsPerSubscriber int     `json:"min_events_per_subscriber"`
	EventsVerified         int64   `json:"events_verified"`
	ProvenBlocks           int     `json:"proven_blocks"`
	SlowdownP50            float64 `json:"slowdown_p50"`
	LyingSubscribers       int     `json:"lying_subscribers"`
	LyingRejected          int     `json:"lying_rejected"`
}

// benchGatewayExperiment shapes one gateway arm; res is nil for the
// baseline arm.
func benchGatewayExperiment(name string, arm harness.GatewayArm, res *harness.GatewayScaleResult) benchExperiment {
	interval := toBenchSummary(arm.Interval)
	e := benchExperiment{
		Name:            name,
		CommittedBlocks: arm.Commits,
		CommitInterval:  &interval,
	}
	if res != nil {
		e.Gateway = &benchGateway{
			Subscribers:            res.Subscribers,
			SubscribersServed:      res.SubscribersServed,
			MinEventsPerSubscriber: res.MinEventsPerSubscriber,
			EventsVerified:         res.EventsVerified,
			ProvenBlocks:           res.ProvenBlocks,
			SlowdownP50:            res.SlowdownP50,
			LyingSubscribers:       res.LyingSubscribers,
			LyingRejected:          res.LyingRejected,
		}
	}
	return e
}

// benchLevel reports one strength level's two latency distributions: block
// creation to x-strong (the paper's Figure 7 measurement) and local regular
// commit to x-strong (the operator's "how much longer for more resilience").
type benchLevel struct {
	X              int          `json:"x"`
	Label          string       `json:"label"`
	CreateToStrong benchSummary `json:"create_to_strong_s"`
	CommitToStrong benchSummary `json:"commit_to_strong_s"`
}

// benchSummary mirrors metrics.Summary in seconds.
type benchSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func toBenchSummary(s metrics.Summary) benchSummary {
	return benchSummary{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Min: s.Min, Max: s.Max}
}

// bench is nil unless -json was given; benchRecord is a no-op then, so the
// experiment drivers record unconditionally.
var bench *benchJSON

func benchInit(sc harness.Scale) {
	bench = &benchJSON{
		Tool:     "sftbench",
		N:        sc.N,
		F:        sc.F,
		Duration: sc.Duration.String(),
		Seed:     sc.Seed,
		Scheme:   sc.Scheme,
	}
}

func benchRecord(e benchExperiment) {
	if bench == nil {
		return
	}
	bench.Experiments = append(bench.Experiments, e)
}

// benchLevels extracts the per-level latency pairs from a harness result,
// in level order, skipping levels with no samples in either distribution.
func benchLevels(res *harness.Result, f int) []benchLevel {
	var out []benchLevel
	for _, lv := range harness.DefaultLevels(f) {
		create := res.LevelLatency[lv]
		delay := res.LevelCommitDelay[lv]
		if create.Count == 0 && delay.Count == 0 {
			continue
		}
		out = append(out, benchLevel{
			X:              lv,
			Label:          harness.LevelLabel(lv, f),
			CreateToStrong: toBenchSummary(create),
			CommitToStrong: toBenchSummary(delay),
		})
	}
	return out
}

func benchExperimentOf(name string, res *harness.Result, f int, delta, wait time.Duration) benchExperiment {
	e := benchExperiment{
		Name:            name,
		CommittedBlocks: res.CommittedBlocks,
		ThroughputTPS:   res.ThroughputTPS,
		MsgsPerCommit:   res.MsgsPerCommit,
		RegularLatency:  toBenchSummary(res.RegularLatency),
		Levels:          benchLevels(res, f),
	}
	if delta > 0 {
		e.Delta = delta.String()
	}
	if wait > 0 {
		e.ExtraWait = wait.String()
	}
	return e
}

func benchWrite(path string) error {
	if bench == nil {
		return nil
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d experiment(s) to %s\n", len(bench.Experiments), path)
	return nil
}

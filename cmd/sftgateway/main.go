// Command sftgateway runs the access tier's read path: a non-voting observer
// that follows a live cluster over TCP, feeding a strength-subscription
// gateway that fans proof-carrying rise events out to any number of
// subscribers — none of which add load to the voting committee.
//
// Against the 4-node example cluster from cmd/sftnode:
//
//	sftgateway -n 4 -upstreams 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -listen 127.0.0.1:8000
//
// Subscribers dial -listen with sft.Subscribe (or any client speaking the
// gateway frame protocol) and re-verify every event's proof against the
// committee's PKI, so the gateway itself needs no trust.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/sft"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8000", "address serving strength subscriptions")
		upstream = flag.String("upstreams", "", "comma-separated replica addresses indexed by replica ID (any non-empty subset of the committee; pass empty slots as blanks)")
		n        = flag.Int("n", 4, "committee size (3f+1)")
		seed     = flag.Int64("seed", 42, "PKI derivation seed (must match the cluster)")
		id       = flag.Int("id", 0, "observer wire identity outside [0, n); 0 = n")
		bound    = flag.Int("queue-bound", 0, "per-subscriber queue depth before eviction (0 = default)")
		obsAddr  = flag.String("obs-addr", "", "optional ops HTTP address serving /metrics and /healthz")
		run      = flag.Duration("run", 0, "exit after this duration (0 = run until signal)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("sftgateway %s\n", sft.Version)
		return
	}
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix("sftgateway ")

	if (*n-1)%3 != 0 {
		log.Fatalf("n=%d is not 3f+1", *n)
	}
	upstreams := map[sft.ReplicaID]string{}
	for i, a := range strings.Split(*upstream, ",") {
		if a = strings.TrimSpace(a); a != "" {
			upstreams[sft.ReplicaID(i)] = a
		}
	}
	if len(upstreams) == 0 {
		log.Fatal("need at least one -upstreams address")
	}

	var sink *obs.Obs
	if *obsAddr != "" {
		sink = obs.New(obs.Options{N: *n, F: (*n - 1) / 3})
	}

	gw, err := sft.NewGateway(sft.GatewayConfig{
		N: *n, Seed: *seed, Scheme: sft.SchemeEd25519,
		QueueBound: *bound,
		Obs:        sink,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	addr, err := gw.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving strength subscriptions on %s", addr)

	observer, err := sft.NewObserver(sft.ObserverConfig{
		ID: sft.ReplicaID(*id), N: *n, Seed: *seed, Scheme: sft.SchemeEd25519,
		Gateway: gw,
	}, sft.ObserverTCP(sft.ObserverTCPConfig{Upstreams: upstreams}))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("observer %d following %d upstream replicas", observer.ID(), len(upstreams))

	if *obsAddr != "" {
		handler := obs.NewHandler(obs.ServerConfig{
			Obs: sink,
			Health: func() any {
				return map[string]any{
					"subscribers":      gw.Subscribers(),
					"proven_blocks":    gw.Proven(),
					"committed_height": observer.CommittedHeight(),
				}
			},
		})
		obsSrv := &http.Server{Addr: *obsAddr, Handler: handler}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("obs server: %v", err)
			}
		}()
		defer obsSrv.Close()
		log.Printf("ops endpoints on http://%s: /metrics /healthz", *obsAddr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *run > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *run)
		defer tcancel()
	}

	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				log.Printf("summary: height=%d proven=%d subscribers=%d",
					observer.CommittedHeight(), gw.Proven(), gw.Subscribers())
			}
		}
	}()

	if err := observer.Run(ctx); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutting down at height %d with %d proven blocks", observer.CommittedHeight(), gw.Proven())
}

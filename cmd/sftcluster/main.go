// Command sftcluster launches an n-replica SFT-DiemBFT cluster over TCP
// loopback inside one process — the quickest way to watch the protocol run
// on real sockets without orchestrating separate sftnode processes. The
// whole cluster is composed through the public sft facade: ephemeral
// listeners first, then the address book, then Run.
//
//	sftcluster -n 7 -run 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/workload"
	"repro/sft"
)

func main() {
	var (
		n       = flag.Int("n", 4, "cluster size (3f+1)")
		run     = flag.Duration("run", 30*time.Second, "how long to run")
		timeout = flag.Duration("timeout", time.Second, "round timeout")
		txns    = flag.Int("txns", 100, "transactions per block")
	)
	flag.Parse()
	log.SetFlags(log.Lmicroseconds)

	if (*n-1)%3 != 0 {
		log.Fatalf("n=%d is not 3f+1", *n)
	}
	const seed = 2024
	f := (*n - 1) / 3
	// One PKI derivation for the whole in-process cluster.
	ring, err := sft.NewKeyRing(*n, seed, sft.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	// Bind all listeners on ephemeral ports first, then install the
	// complete address book everywhere.
	nodes := make([]*sft.Node, *n)
	peers := make(map[sft.ReplicaID]string, *n)
	for i := 0; i < *n; i++ {
		id := sft.ReplicaID(i)
		gen := workload.NewGenerator(int64(i), 16, 64)
		node, err := sft.New(sft.Config{ID: id, N: *n, Seed: seed},
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: "127.0.0.1:0"})),
			sft.WithRoundTimeout(*timeout),
			sft.WithPayload(workload.FullPayload(gen, *txns)),
			sft.WithPruneKeep(512),
		)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		peers[id] = node.Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	ctx, tcancel := context.WithTimeout(ctx, *run)
	defer tcancel()

	// Watch replica 0's commit-strength stream for periodic progress (its
	// per-node metrics sink keeps the totals for the final report).
	go func() {
		blocks := 0
		for ev := range nodes[0].Commits() {
			if !ev.Regular {
				continue
			}
			blocks++
			if blocks%10 == 0 {
				log.Printf("replica 0: %d blocks committed (height %d)", blocks, ev.Height)
			}
		}
	}()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	log.Printf("cluster of %d replicas (f=%d) running for %v", *n, f, *run)
	<-ctx.Done()
	wg.Wait()

	snap := nodes[0].Metrics()
	fmt.Printf("\ncommitted %d blocks; highest strong-commit level observed: %d (%.1ff, max possible 2f=%d)\n",
		snap.Commits, snap.MaxStrength, float64(snap.MaxStrength)/float64(f), 2*f)
}

// Command sftcluster launches an n-replica SFT-DiemBFT cluster over TCP
// loopback inside one process — the quickest way to watch the protocol run
// on real sockets without orchestrating separate sftnode processes.
//
//	sftcluster -n 7 -run 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 4, "cluster size (3f+1)")
		run     = flag.Duration("run", 30*time.Second, "how long to run")
		timeout = flag.Duration("timeout", time.Second, "round timeout")
		txns    = flag.Int("txns", 100, "transactions per block")
	)
	flag.Parse()
	log.SetFlags(log.Lmicroseconds)

	if (*n-1)%3 != 0 {
		log.Fatalf("n=%d is not 3f+1", *n)
	}
	f := (*n - 1) / 3
	ring, err := crypto.NewKeyRing(*n, 2024, crypto.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	// Bind all listeners first so the address book is complete.
	nets := make([]*tcpnet.Net, *n)
	peers := make(map[types.ReplicaID]string, *n)
	for i := 0; i < *n; i++ {
		nt, err := tcpnet.Listen(tcpnet.Config{ID: types.ReplicaID(i), Listen: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		nets[i] = nt
		peers[types.ReplicaID(i)] = nt.Addr().String()
	}
	for i := 0; i < *n; i++ {
		nets[i].SetPeers(peers)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	ctx, tcancel := context.WithTimeout(ctx, *run)
	defer tcancel()

	var commits, maxStrength atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		id := types.ReplicaID(i)
		gen := workload.NewGenerator(int64(i), 16, 64)
		rep, err := diembft.New(diembft.Config{
			ID:               id,
			N:                *n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			RoundTimeout:     *timeout,
			Payload:          workload.FullPayload(gen, *txns),
			PruneKeep:        512,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts := runtime.Options{N: *n}
		if id == 0 {
			opts.OnCommit = func(b *types.Block) {
				c := commits.Add(1)
				if c%10 == 0 {
					log.Printf("replica 0: %d blocks committed (height %d)", c, b.Height)
				}
			}
			opts.OnStrength = func(b *types.Block, x int) {
				for {
					cur := maxStrength.Load()
					if int64(x) <= cur || maxStrength.CompareAndSwap(cur, int64(x)) {
						break
					}
				}
			}
		}
		node, err := runtime.NewNode(rep, nets[i], opts)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	log.Printf("cluster of %d replicas (f=%d) running for %v", *n, f, *run)
	<-ctx.Done()
	wg.Wait()
	for _, nt := range nets {
		_ = nt.Close()
	}
	fmt.Printf("\ncommitted %d blocks; highest strong-commit level observed: %d (%.1ff, max possible 2f=%d)\n",
		commits.Load(), maxStrength.Load(), float64(maxStrength.Load())/float64(f), 2*f)
}

// Command sftclient streams transactions to an sftnode's -client-listen
// socket through the sft facade's transaction-stream protocol, simulating
// application load against a real cluster.
//
//	sftclient -node 127.0.0.1:9000 -rate 500 -run 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/sft"
)

func main() {
	var (
		node    = flag.String("node", "127.0.0.1:9000", "sftnode client-listen address")
		rate    = flag.Int("rate", 200, "transactions per second")
		size    = flag.Int("size", 128, "transaction payload bytes")
		run     = flag.Duration("run", 30*time.Second, "how long to stream")
		clients = flag.Uint("clients", 8, "simulated client identities")
		seed    = flag.Int64("seed", 1, "workload seed")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("sftclient %s\n", sft.Version)
		return
	}
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix("sftclient ")

	stream, err := sft.DialTransactions(*node, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	gen := workload.NewGenerator(*seed, uint32(*clients), *size)

	interval := time.Second / time.Duration(max(1, *rate))
	deadline := time.Now().Add(*run)
	tick := time.NewTicker(interval)
	defer tick.Stop()

	sent := 0
	for time.Now().Before(deadline) {
		<-tick.C
		if err := stream.Submit(gen.Next()); err != nil {
			log.Fatalf("after %d txns: %v", sent, err)
		}
		sent++
		if sent%1000 == 0 {
			log.Printf("%d transactions sent", sent)
		}
	}
	log.Printf("done: %d transactions in %v (%.0f tps)", sent, *run, float64(sent)/run.Seconds())
}

// Command sftclient streams transactions to an sftnode's -client-listen
// socket through the sft facade's transaction-stream protocol, simulating
// application load against a real cluster.
//
//	sftclient -node 127.0.0.1:9000 -rate 500 -run 30s
//
// With -subscribe it is a gateway probe instead: it dials an sftgateway,
// verifies each streamed strength event's proof against the committee's PKI
// (-n and -seed must match the cluster), and exits zero after -count
// verified events.
//
//	sftclient -subscribe 127.0.0.1:8000 -n 4 -seed 42 -count 3
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
	"repro/sft"
)

func main() {
	var (
		node    = flag.String("node", "127.0.0.1:9000", "sftnode client-listen address")
		rate    = flag.Int("rate", 200, "transactions per second")
		size    = flag.Int("size", 128, "transaction payload bytes")
		run     = flag.Duration("run", 30*time.Second, "how long to stream")
		clients = flag.Uint("clients", 8, "simulated client identities")
		seed    = flag.Int64("seed", 1, "workload seed; with -subscribe, the committee PKI seed")
		gwAddr  = flag.String("subscribe", "", "gateway address: verify streamed strength events instead of sending transactions")
		n       = flag.Int("n", 4, "committee size for -subscribe proof verification")
		count   = flag.Int("count", 3, "verified events to receive before exiting (with -subscribe)")
		minX    = flag.Int("min-strength", 0, "server-side strength filter (with -subscribe)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("sftclient %s\n", sft.Version)
		return
	}
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix("sftclient ")

	if *gwAddr != "" {
		subscribe(*gwAddr, *n, *seed, *minX, *count, *run)
		return
	}

	stream, err := sft.DialTransactions(*node, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	gen := workload.NewGenerator(*seed, uint32(*clients), *size)

	interval := time.Second / time.Duration(max(1, *rate))
	deadline := time.Now().Add(*run)
	tick := time.NewTicker(interval)
	defer tick.Stop()

	sent := 0
	for time.Now().Before(deadline) {
		<-tick.C
		if err := stream.Submit(gen.Next()); err != nil {
			log.Fatalf("after %d txns: %v", sent, err)
		}
		sent++
		if sent%1000 == 0 {
			log.Printf("%d transactions sent", sent)
		}
	}
	log.Printf("done: %d transactions in %v (%.0f tps)", sent, *run, float64(sent)/run.Seconds())
}

// subscribe dials a gateway and consumes its verified strength stream. Every
// event printed here carried a Section 5 proof this process checked itself —
// a lying gateway terminates the stream with a non-zero exit instead.
func subscribe(addr string, n int, seed int64, minX, count int, wait time.Duration) {
	sub, err := sft.Subscribe(addr, sft.SubscriberConfig{N: n, Seed: seed, MinStrength: minX})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	deadline := time.After(wait)
	for got := 0; got < count; {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				log.Fatalf("subscription ended after %d events: %v", got, sub.Err())
			}
			got++
			log.Printf("verified: block %x height %d round %d strength %d", ev.Block[:8], ev.Height, ev.Round, ev.Strength)
		case <-deadline:
			log.Fatalf("only %d/%d verified events within %v", got, count, wait)
		}
	}
	log.Printf("subscribe probe: %d proof-verified events", count)
}

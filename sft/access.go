package sft

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/gateway"
	"repro/internal/lightclient"
	"repro/internal/observer"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

// This file is the access tier's public face: read-path scale-out without
// adding voting weight. Three pieces compose:
//
//   - ObserverNode: a non-voting follower of the consensus tier. It consumes
//     the committee's own traffic (proposals, QCs, round entries, state-sync
//     segments), verifies every signature and certificate itself, and derives
//     the same commit/strength event stream a voting replica reports —
//     without ever voting. Run any number of them; replicas treat them as
//     read-only peers whose back-pressure can never stall consensus.
//   - GatewayService: fans the observers' proof-carrying strength feed out to
//     many subscribers over one streaming socket protocol.
//   - Subscriber: the client end. It re-verifies every event's Section 5
//     proof (the carrier block plus the certificate over it) through its own
//     light client, so a lying gateway is caught, not believed.

// StrengthRecord re-exports the Section 5 commit-log entry type.
type StrengthRecord = types.StrengthRecord

// ObserverConfig parameterizes a non-voting observer node.
type ObserverConfig struct {
	// ID is the observer's wire identity; it must lie outside the voting
	// committee [0, N). Zero means N (the first observer slot).
	ID ReplicaID
	// N is the committee size (3f+1) and Seed/Scheme/Ring identify its PKI,
	// exactly as in Config — the observer only ever verifies, never signs.
	N      int
	Seed   int64
	Scheme Scheme
	Ring   *KeyRing
	// Engine names the protocol the committee runs; it selects the marker
	// mode the observer tracks strength with (default DiemBFT).
	Engine Engine
	// Horizon bounds the endorsement walk (0 = unbounded).
	Horizon int
	// SyncInterval paces the stall-detection catch-up probe.
	SyncInterval time.Duration
	// VerifyWorkers parallelizes cold-certificate verification
	// (0 = sequential).
	VerifyWorkers int
	// Gateway, if non-nil, receives every certified (block, QC) pair the
	// observer verifies — the feed a GatewayService serves from.
	Gateway *GatewayService
	// OnCertified additionally observes the certified-pair feed directly.
	// Called on the observer's event path; keep it fast.
	OnCertified func(b *Block, qc *QC)
}

// ObserverTransport attaches an observer to its substrate: ObserverTCP for
// real sockets, or Simnet.ObserverTransport for the deterministic simulator.
// The interface is sealed, like Transport.
type ObserverTransport interface {
	attachObserver(o *ObserverNode) error
}

// ObserverTCPConfig configures the TCP observer transport.
type ObserverTCPConfig struct {
	// Upstreams maps replica IDs to dialable addresses. The observer
	// maintains one read-mostly connection per upstream; any non-empty
	// subset of the committee works, more upstreams tolerate more faulty
	// feeds.
	Upstreams map[ReplicaID]string
	// DialRetry is the pause between failed dials (default 250ms).
	DialRetry time.Duration
}

// ObserverTCP returns the real-socket observer transport: it dials the
// upstream replicas with an observer handshake, so they mirror their
// certified-chain traffic without ever counting the connection toward
// consensus.
func ObserverTCP(cfg ObserverTCPConfig) ObserverTransport {
	return &observerTCPTransport{cfg: cfg}
}

type observerTCPTransport struct{ cfg ObserverTCPConfig }

func (t *observerTCPTransport) attachObserver(o *ObserverNode) error {
	if len(t.cfg.Upstreams) == 0 {
		return fmt.Errorf("sft: observer needs at least one upstream")
	}
	onet, err := tcpnet.DialObservers(tcpnet.ObserverConfig{
		ID:          o.id,
		Upstreams:   t.cfg.Upstreams,
		DialRetry:   t.cfg.DialRetry,
		Prevalidate: o.eng.Prevalidate,
	})
	if err != nil {
		return err
	}
	o.net = onet
	node, err := runtime.NewNode(o.eng, onet, runtime.Options{
		N:          o.n,
		OnCommit:   func(b *types.Block) { o.onCommit(o.now(), b) },
		OnStrength: func(b *types.Block, x int) { o.onStrength(o.now(), b, x) },
	})
	if err != nil {
		onet.Close()
		return err
	}
	o.rt = node
	return nil
}

// ObserverNode is one running (or simulated) non-voting follower. Its read
// API mirrors Node's subscription surface: Commits, Strength,
// CommittedHeight and WaitStrength behave identically, fed by the observer's
// independently verified view of the chain instead of a voting engine.
type ObserverNode struct {
	id  ReplicaID
	n   int
	eng *observer.Observer

	rt  *runtime.Node
	net *tcpnet.ObserverNet

	start   time.Time
	started bool

	mu       sync.Mutex
	strength map[BlockID]int
	height   Height
	waiters  []*strengthWaiter
	subs     []*subscription
	closed   bool

	closeOnce sync.Once
	closeErr  error
}

// NewObserver composes a non-voting observer node and attaches it to its
// transport.
func NewObserver(cfg ObserverConfig, tr ObserverTransport) (*ObserverNode, error) {
	if cfg.N < 4 || (cfg.N-1)%3 != 0 {
		return nil, fmt.Errorf("sft: N=%d must be 3f+1 with f >= 1", cfg.N)
	}
	if tr == nil {
		return nil, fmt.Errorf("sft: an observer transport is required")
	}
	if cfg.ID == 0 {
		cfg.ID = ReplicaID(cfg.N)
	}
	if int(cfg.ID) < cfg.N {
		return nil, fmt.Errorf("sft: observer ID %d inside the voting committee [0, %d)", cfg.ID, cfg.N)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeEd25519
	}
	ring := cfg.Ring
	if ring == nil {
		var err error
		ring, err = crypto.NewKeyRing(cfg.N, cfg.Seed, string(cfg.Scheme))
		if err != nil {
			return nil, err
		}
	}
	mode := core.ModeRound
	if cfg.Engine == Streamlet {
		mode = core.ModeHeight
	}
	o := &ObserverNode{
		id:       cfg.ID,
		n:        cfg.N,
		strength: make(map[BlockID]int),
	}
	f := (cfg.N - 1) / 3
	verify := cfg.Scheme == SchemeEd25519 || cfg.Scheme == Ed25519Aggregate
	eng, err := observer.New(observer.Config{
		ID:               cfg.ID,
		N:                cfg.N,
		F:                f,
		Mode:             mode,
		Verifier:         ring,
		VerifySignatures: verify,
		Horizon:          cfg.Horizon,
		SyncInterval:     cfg.SyncInterval,
		BatchWorkers:     cfg.VerifyWorkers,
		OnCertified: func(b *types.Block, qc *types.QC) {
			if cfg.Gateway != nil {
				// A pair the observer itself verified; the gateway re-checks
				// anyway, so an error here is a bug, not a protocol event.
				_ = cfg.Gateway.Ingest(b, qc)
			}
			if cfg.OnCertified != nil {
				cfg.OnCertified(b, qc)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	o.eng = eng
	if err := tr.attachObserver(o); err != nil {
		return nil, err
	}
	return o, nil
}

// ID returns the observer's wire identity (outside the committee).
func (o *ObserverNode) ID() ReplicaID { return o.id }

// Run executes the observer's event loop until ctx is cancelled (TCP
// transport only; Simnet-attached observers are driven by Simnet.Run).
func (o *ObserverNode) Run(ctx context.Context) error {
	if o.rt == nil {
		return fmt.Errorf("sft: observer is attached to a Simnet; drive it with Simnet.Run")
	}
	o.start = time.Now()
	o.started = true
	err := o.rt.Run(ctx)
	cerr := o.Close()
	if err != nil && err != ctx.Err() {
		return err
	}
	return cerr
}

// Close stops the observer and closes every subscription channel.
func (o *ObserverNode) Close() error {
	o.closeOnce.Do(func() {
		if o.net != nil {
			o.closeErr = o.net.Close()
		}
		o.mu.Lock()
		o.closed = true
		subs := o.subs
		waiters := o.waiters
		o.subs, o.waiters = nil, nil
		o.mu.Unlock()
		for _, sub := range subs {
			sub.close()
		}
		for _, w := range waiters {
			close(w.ready)
		}
	})
	return o.closeErr
}

// Commits returns a fresh subscription to the observer's commit-strength
// stream, with Node.Commits semantics.
func (o *ObserverNode) Commits() <-chan CommitEvent {
	sub := newSubscription()
	o.mu.Lock()
	closed := o.closed
	if !closed {
		o.subs = append(o.subs, sub)
	}
	o.mu.Unlock()
	if closed {
		sub.close()
	}
	return sub.ch
}

// Strength returns the strongest commit level observed for the block, or -1.
func (o *ObserverNode) Strength(id BlockID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if x, ok := o.strength[id]; ok {
		return x
	}
	return -1
}

// CommittedHeight returns the highest committed height observed.
func (o *ObserverNode) CommittedHeight() Height {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.height
}

// WaitStrength blocks until the observer sees block id at strength >= x, the
// context is done, or the observer closes.
func (o *ObserverNode) WaitStrength(ctx context.Context, id BlockID, x int) error {
	for {
		o.mu.Lock()
		if cur, ok := o.strength[id]; ok && cur >= x {
			o.mu.Unlock()
			return nil
		}
		if o.closed {
			o.mu.Unlock()
			return fmt.Errorf("sft: observer closed before block reached strength %d", x)
		}
		w := &strengthWaiter{id: id, x: x, ready: make(chan struct{})}
		o.waiters = append(o.waiters, w)
		o.mu.Unlock()
		select {
		case <-ctx.Done():
			o.mu.Lock()
			for i, other := range o.waiters {
				if other == w {
					o.waiters = append(o.waiters[:i], o.waiters[i+1:]...)
					break
				}
			}
			o.mu.Unlock()
			return ctx.Err()
		case <-w.ready:
		}
	}
}

func (o *ObserverNode) now() time.Duration {
	if !o.started {
		return 0
	}
	return time.Since(o.start)
}

func (o *ObserverNode) onCommit(now time.Duration, b *Block) {
	f := (o.n - 1) / 3
	o.publish(CommitEvent{Block: b, Height: b.Height, Round: b.Round, Strength: f, Regular: true, Time: now})
}

func (o *ObserverNode) onStrength(now time.Duration, b *Block, x int) {
	o.publish(CommitEvent{Block: b, Height: b.Height, Round: b.Round, Strength: x, Time: now})
}

func (o *ObserverNode) publish(ev CommitEvent) {
	id := ev.Block.ID()
	o.mu.Lock()
	if cur, ok := o.strength[id]; !ok || ev.Strength > cur {
		o.strength[id] = ev.Strength
	}
	if ev.Height > o.height {
		o.height = ev.Height
	}
	kept := o.waiters[:0]
	for _, w := range o.waiters {
		if w.id == id && ev.Strength >= w.x {
			close(w.ready)
			continue
		}
		kept = append(kept, w)
	}
	o.waiters = kept
	subs := o.subs
	o.mu.Unlock()
	for _, sub := range subs {
		sub.push(ev)
	}
}

// GatewayConfig parameterizes a strength-subscription gateway.
type GatewayConfig struct {
	// N/Seed/Scheme/Ring identify the committee PKI the gateway (and its
	// subscribers) verify proofs against.
	N      int
	Seed   int64
	Scheme Scheme
	Ring   *KeyRing
	// QueueBound is the per-subscriber queue depth; a subscriber that falls
	// further behind is evicted (default gateway.DefaultQueueBound).
	QueueBound int
	// Obs, if non-nil, receives sft_gateway_* metrics.
	Obs *Observability
}

// GatewayService streams proof-carrying strength-rise events to many
// subscribers. Feed it from one or more observers (ObserverConfig.Gateway or
// explicit Ingest calls), serve it on any listener, and dial it with
// Subscribe.
type GatewayService struct {
	gw *gateway.Gateway
}

// NewGateway composes a gateway over the committee's PKI.
func NewGateway(cfg GatewayConfig) (*GatewayService, error) {
	if cfg.N < 4 || (cfg.N-1)%3 != 0 {
		return nil, fmt.Errorf("sft: N=%d must be 3f+1 with f >= 1", cfg.N)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeEd25519
	}
	ring := cfg.Ring
	if ring == nil {
		var err error
		ring, err = crypto.NewKeyRing(cfg.N, cfg.Seed, string(cfg.Scheme))
		if err != nil {
			return nil, err
		}
	}
	return &GatewayService{gw: gateway.New(gateway.Config{
		F:          (cfg.N - 1) / 3,
		Verifier:   ring,
		QueueBound: cfg.QueueBound,
		Obs:        cfg.Obs,
	})}, nil
}

// Ingest feeds one certified pair (qc certifies b); its CommitLog's fresh
// strength rises fan out to subscribers with the pair attached as proof.
func (g *GatewayService) Ingest(b *Block, qc *QC) error { return g.gw.Ingest(b, qc) }

// Serve accepts subscribers on ln until it closes. Blocking; run it in a
// goroutine. Multiple listeners may be served concurrently.
func (g *GatewayService) Serve(ln net.Listener) error { return g.gw.Serve(ln) }

// Listen binds addr and serves it in the background, returning the bound
// address (use ":0" for ephemeral).
func (g *GatewayService) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go g.gw.Serve(ln)
	return ln.Addr(), nil
}

// Subscribers returns the number of live subscriptions.
func (g *GatewayService) Subscribers() int { return g.gw.Subscribers() }

// Proven returns how many distinct blocks carry gateway-verified strength.
func (g *GatewayService) Proven() int { return g.gw.Proven() }

// Close disconnects every subscriber and stops serving.
func (g *GatewayService) Close() error { return g.gw.Close() }

// StrengthEvent is one proof-verified strength observation delivered to a
// Subscriber: the named block now tolerates Strength Byzantine faults.
type StrengthEvent struct {
	Block    BlockID
	Height   Height
	Round    Round
	Strength int
	// Time is when the subscriber verified the event.
	Time time.Time
}

// SubscriberConfig parameterizes a gateway subscription.
type SubscriberConfig struct {
	// N/Seed/Scheme/Ring identify the committee PKI events are verified
	// against — the client's trust root. The gateway is NOT part of it.
	N      int
	Seed   int64
	Scheme Scheme
	Ring   *KeyRing
	// MinStrength filters the subscription server-side: only rises at or
	// above it are streamed.
	MinStrength int
	// DialTimeout bounds the connection attempt (default 10s).
	DialTimeout time.Duration
}

// ErrProofInvalid wraps every verification failure a Subscriber hits: the
// gateway delivered an event whose Section 5 proof does not hold up. An
// honest gateway never triggers it; treat it as the gateway lying (or
// serving a committee with a different PKI) and stop trusting the feed.
type ErrProofInvalid struct {
	Reason string
	Err    error
}

func (e *ErrProofInvalid) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sft: gateway proof invalid: %s: %v", e.Reason, e.Err)
	}
	return "sft: gateway proof invalid: " + e.Reason
}

func (e *ErrProofInvalid) Unwrap() error { return e.Err }

// Subscriber is one verified gateway subscription. Events delivers rises in
// stream order; each was re-verified against the committee's PKI before
// delivery, so consuming code can act on Strength without trusting the
// gateway. The channel closes on any error — including a failed proof — and
// Err reports why.
type Subscriber struct {
	conn net.Conn
	lc   *lightclient.Client
	ch   chan StrengthEvent
	done chan struct{}

	mu     sync.Mutex
	err    error
	closed bool

	closeOnce sync.Once
}

// Subscribe dials a gateway, registers the subscription, and starts the
// verified event stream.
func Subscribe(addr string, cfg SubscriberConfig) (*Subscriber, error) {
	if cfg.N < 4 || (cfg.N-1)%3 != 0 {
		return nil, fmt.Errorf("sft: N=%d must be 3f+1 with f >= 1", cfg.N)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeEd25519
	}
	ring := cfg.Ring
	if ring == nil {
		var err error
		ring, err = crypto.NewKeyRing(cfg.N, cfg.Seed, string(cfg.Scheme))
		if err != nil {
			return nil, err
		}
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := gateway.WriteFrame(conn, gateway.AppendSubscribeFrame(nil, cfg.MinStrength)); err != nil {
		conn.Close()
		return nil, err
	}
	s := &Subscriber{
		conn: conn,
		lc:   lightclient.New(ring, (cfg.N-1)/3),
		ch:   make(chan StrengthEvent, 64),
		done: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

// Events returns the verified event stream. It closes when the subscription
// ends; check Err afterwards.
func (s *Subscriber) Events() <-chan StrengthEvent { return s.ch }

// Err reports why the stream ended: nil while it is live or after Close, an
// *ErrProofInvalid if the gateway lied, or the transport error otherwise.
func (s *Subscriber) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Strength returns the proven level of a block per the events verified so
// far, or -1.
func (s *Subscriber) Strength(id BlockID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lc.StrengthOf(id)
}

// Close terminates the subscription. Err remains nil for a local close.
func (s *Subscriber) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.done)
		s.conn.Close()
	})
	return nil
}

func (s *Subscriber) loop() {
	defer close(s.ch)
	for {
		payload, err := gateway.ReadFrame(s.conn)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("sft: gateway closed the subscription")
			}
			s.fail(err)
			return
		}
		ev, err := gateway.DecodeEventFrame(payload)
		if err != nil {
			s.fail(&ErrProofInvalid{Reason: "malformed event frame", Err: err})
			return
		}
		out, err := s.verify(ev)
		if err != nil {
			s.fail(err)
			return
		}
		select {
		case s.ch <- out:
		case <-s.done:
			return
		}
	}
}

// verify re-checks one event's Section 5 proof: the certificate must
// genuinely certify the carrier block under the committee's PKI, and the
// claimed record must be among the carrier's CommitLog entries. Anything
// less and the gateway could attribute arbitrary strength to arbitrary
// blocks.
func (s *Subscriber) verify(ev gateway.Event) (StrengthEvent, error) {
	s.mu.Lock()
	err := s.lc.ProcessCertified(ev.Carrier, ev.QC)
	s.mu.Unlock()
	if err != nil {
		return StrengthEvent{}, &ErrProofInvalid{Reason: "carrier not certified", Err: err}
	}
	proven := false
	for _, rec := range ev.Carrier.CommitLog {
		if rec == ev.Record {
			proven = true
			break
		}
	}
	if !proven {
		return StrengthEvent{}, &ErrProofInvalid{Reason: "claimed record not in certified commit log"}
	}
	return StrengthEvent{
		Block:    ev.Record.Block,
		Height:   ev.Record.Height,
		Round:    ev.Record.Round,
		Strength: ev.Record.X,
		Time:     time.Now(),
	}, nil
}

// fail records the terminal error (unless the subscriber closed itself — a
// local Close races with its own read error, which is not a failure).
func (s *Subscriber) fail(err error) {
	s.mu.Lock()
	if s.err == nil && !s.closed {
		s.err = err
	}
	s.mu.Unlock()
	s.conn.Close()
}

package sft_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/sft"
)

// TestWaitStrengthContextCancellation: a waiter on a block that never
// strengthens must return the context's error promptly — for both an
// unknown block (never committed) and a deadline that simply expires — and
// cancelled waiters must not leak (the node's waiter list shrinks back).
func TestWaitStrengthContextCancellation(t *testing.T) {
	const n = 4
	world, nodes := buildSimCluster(t, n, 51, nil)
	defer world.Close()
	world.Run(2 * time.Second)
	node := nodes[0]

	// Unknown block: never observed, never strengthens.
	var unknown sft.BlockID
	unknown[0] = 0xde
	if got := node.Strength(unknown); got != -1 {
		t.Fatalf("Strength(unknown) = %d, want -1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := node.WaitStrength(ctx, unknown, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitStrength(unknown) = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitStrength blocked %v past its deadline", elapsed)
	}

	// Explicit cancellation from another goroutine unblocks a live waiter.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- node.WaitStrength(ctx2, unknown, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled WaitStrength = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled WaitStrength never returned")
	}

	// A satisfied wait on an already-known block returns immediately even
	// with an expired context race: strength is checked first.
	var known sft.BlockID
	found := false
	events := node.Commits()
	world.Run(2500 * time.Millisecond)
	select {
	case ev := <-events:
		known = ev.Block.ID()
		found = true
	default:
	}
	if found {
		ctx3, cancel3 := context.WithCancel(context.Background())
		cancel3() // already cancelled
		if err := node.WaitStrength(ctx3, known, 1); err != nil {
			// Both outcomes are defensible; pin that it never hangs and
			// reports either satisfaction or the context error.
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("WaitStrength(known, cancelled ctx) = %v", err)
			}
		}
	}
}

// TestCommitsAfterClose: subscribing to a closed node must return an
// already-closed channel instead of leaking a pump goroutine, and closing
// twice is safe.
func TestCommitsAfterClose(t *testing.T) {
	const n = 4
	world, nodes := buildSimCluster(t, n, 53, nil)
	world.Run(time.Second)
	node := nodes[0]

	pre := node.Commits()
	if err := node.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The pre-close subscription drains and closes.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-pre:
			if !ok {
				goto closedPre
			}
		case <-deadline:
			t.Fatal("pre-close subscription never closed")
		}
	}
closedPre:
	// A post-close subscription is born closed.
	select {
	case _, ok := <-node.Commits():
		if ok {
			t.Fatal("post-close subscription delivered an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-close subscription not closed")
	}
	// WaitStrength on a closed node reports closure, not a hang.
	if err := node.WaitStrength(context.Background(), sft.BlockID{1}, 1); err == nil {
		t.Fatal("WaitStrength on a closed node returned nil")
	}
	_ = world.Close()
}

// TestSetPeersOnRunningTCPNode: the bind-first-then-exchange pattern, with
// SetPeers issued while nodes are already running — late address-book
// installation must not wedge the cluster, and a non-TCP node must reject
// SetPeers.
func TestSetPeersOnRunningTCPNode(t *testing.T) {
	const (
		n    = 4
		seed = 59
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithScheme(sft.SchemeSim),
			sft.WithKeyRing(ring),
			sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: "127.0.0.1:0"})),
			sft.WithRoundTimeout(250*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	peers := make(map[sft.ReplicaID]string, n)
	for i, node := range nodes {
		peers[sft.ReplicaID(i)] = node.Addr().String()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(ctx); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}
	// Nodes are running with NO address book: rounds time out, nothing can
	// be sent. Install the peers late, while everything is live.
	time.Sleep(300 * time.Millisecond)
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatalf("SetPeers on running node: %v", err)
		}
	}

	// The cluster must now converge and commit.
	deadline := time.Now().Add(30 * time.Second)
	for nodes[0].CommittedHeight() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("no commits after late SetPeers: height %d", nodes[0].CommittedHeight())
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	// Non-TCP nodes reject SetPeers.
	world, simNodes := buildSimCluster(t, n, 61, nil)
	defer world.Close()
	if err := simNodes[0].SetPeers(map[sft.ReplicaID]string{0: "localhost:1"}); err == nil {
		t.Fatal("SetPeers on a Simnet node succeeded")
	}
}

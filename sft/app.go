package sft

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/mempool"
)

// This file is the facade's execution-layer surface: deterministic
// execute-before-vote state machines (WithApp), the flagship signed-transfer
// bank, and the strength-gated mempool that holds a sender's later
// transactions while a high-value one waits for its required commit
// strength.

// Execution-layer re-exports (see internal/app for the full contract).
type (
	// StateMachine is the deterministic execution interface replicas run
	// before voting: Apply must be a pure function of (parent root, block) —
	// identical across replicas, no clocks, no map-iteration dependence —
	// because its 32-byte result rides in the vote's signed payload and in
	// QCs. Honest replicas refuse to vote for a proposal whose certified
	// parent state root disagrees with their own execution: state forks stop
	// at the vote, not at the application.
	StateMachine = app.StateMachine
	// TxResult is one transaction's deterministic execution outcome.
	TxResult = app.TxResult
	// TxCode classifies a transaction outcome (TxResult.Code).
	TxCode = app.Code
	// Bank is the flagship StateMachine: ed25519-signed transfers and
	// withdrawals over a derived account population, with nonces, balance
	// invariants, and an order-independent state commitment.
	Bank = app.Bank
	// BankConfig parameterizes a Bank.
	BankConfig = app.BankConfig
	// BankTx is one signed bank operation, carried as Transaction.Data.
	BankTx = app.BankTx
	// BankKeys is a shareable account-pubkey and signature-verdict cache.
	BankKeys = app.BankKeys
)

// Bank operation codes and helpers, re-exported.
const (
	// OpTransfer moves funds between accounts.
	OpTransfer = app.OpTransfer
	// OpWithdraw removes funds from the system — the irreversible operation
	// class applications gate on strength.
	OpWithdraw = app.OpWithdraw
)

// Transaction result codes (TxResult.Code), re-exported.
const (
	// CodeOK means the transaction applied.
	CodeOK = app.CodeOK
	// CodeMalformed means the transaction did not decode.
	CodeMalformed = app.CodeMalformed
	// CodeBadSignature means the signature check failed.
	CodeBadSignature = app.CodeBadSignature
	// CodeBadNonce means the nonce was not the account's next.
	CodeBadNonce = app.CodeBadNonce
	// CodeInsufficient means the balance was too low.
	CodeInsufficient = app.CodeInsufficient
)

// NewBank creates the flagship bank state machine. Use it as
// WithApp(func() sft.StateMachine { return sft.NewBank(cfg) }).
func NewBank(cfg BankConfig) *Bank { return app.NewBank(cfg) }

// NewBankKeys creates a shareable pubkey/verdict cache for BankConfig.Keys;
// share one across in-process replicas so each account key derives once and
// each signature verifies once globally.
func NewBankKeys(seed int64) *BankKeys { return app.NewBankKeys(seed) }

// SignBankTx signs t with the account key derived from (seed, t.From).
func SignBankTx(seed int64, t *BankTx) { app.SignBankTx(seed, t) }

// WithApp attaches a deterministic execution layer: every block is executed
// BEFORE the replica votes on it, the resulting state root (AppHash) is part
// of the vote's signed payload and of every QC, and honest replicas refuse
// to vote for proposals certifying a state root that disagrees with their
// own execution.
//
// The factory is invoked once per engine incarnation — including rebuilds
// after a crash (Simnet.RestartAt / a node recreated over its WAL) — so
// recovery always starts from a FRESH instance and deterministically
// re-executes the restored chain; reusing an instance across a restart would
// double-apply. All replicas must run the same factory; determinism of
// Apply is the whole contract (see StateMachine).
func WithApp(factory func() StateMachine) Option {
	return func(s *settings) { s.app = factory }
}

// WithPayloadNow is WithPayload with the node's virtual/monotonic time
// passed alongside the round — for latency-accounting workload generators
// whose transactions are stamped at proposal time. Overrides WithPayload
// when both are set.
func WithPayloadNow(fn func(r Round, now time.Duration) Payload) Option {
	return func(s *settings) { s.payloadNow = fn }
}

// executor returns the node's execution-layer executor (nil without
// WithApp), tracking engine swaps across Simnet restarts.
func (n *Node) executor() *app.Executor {
	n.mu.Lock()
	eng := n.eng
	n.mu.Unlock()
	if w, ok := eng.(*adversary.Replica); ok {
		eng = w.Inner()
	}
	if ax, ok := eng.(interface{ AppExecutor() *app.Executor }); ok {
		return ax.AppExecutor()
	}
	return nil
}

// AppState returns the node's live state machine instance (the one WithApp's
// factory built for the current incarnation), or nil without WithApp. Read
// it only between Simnet.Run calls or after Run returns — the engine's event
// loop owns it while events are flowing.
func (n *Node) AppState() StateMachine {
	if exec := n.executor(); exec != nil {
		return exec.StateMachine()
	}
	return nil
}

// AppHash returns the execution-layer state root of the latest committed
// block and its height (zero values without WithApp or before the first
// commit).
func (n *Node) AppHash() ([32]byte, Height) {
	if exec := n.executor(); exec != nil {
		return exec.CommittedRoot(), exec.CommittedHeight()
	}
	return [32]byte{}, 0
}

// Mempool is the facade's submit path: a bounded FIFO transaction pool
// behind the Section 5 conflict gate. Submit a transaction with a required
// strength > 0 and later transactions from the same sender are held back
// until the block carrying it reaches that strength — so a weaker,
// earlier-committed conflicting transaction can never overtake a stronger
// one still in flight. Attach it to a node with WithMempool; the node then
// reports inclusions and strength rises into the gate synchronously on its
// commit path (deterministic under Simnet), and drain batches from a
// WithPayload function.
type Mempool struct {
	mu   sync.Mutex
	pool *mempool.Pool
	gate *mempool.ConflictGate
}

// NewMempool creates a mempool bounded to capacity transactions (0 =
// unbounded).
func NewMempool(capacity int) *Mempool {
	p := mempool.New(capacity)
	return &Mempool{pool: p, gate: mempool.NewConflictGate(p)}
}

// Submit enqueues a transaction. requiredStrength > 0 marks it high-valued:
// until the block containing it is requiredStrength-strong committed, later
// transactions from the same sender are held back.
func (m *Mempool) Submit(txn Transaction, requiredStrength int) {
	m.mu.Lock()
	m.gate.Submit(txn, requiredStrength)
	m.mu.Unlock()
}

// Batch removes and returns up to max released transactions, oldest first —
// call it from a WithPayload / WithPayloadNow function.
func (m *Mempool) Batch(max int) []Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.Batch(max)
}

// Pending returns the number of transactions ready for inclusion.
func (m *Mempool) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool.Len()
}

// Held returns the number of transactions currently held behind an
// in-flight high-value transaction.
func (m *Mempool) Held() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gate.Held()
}

// Gated reports whether sender currently has an unreleased high-value
// transaction in flight.
func (m *Mempool) Gated(sender uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gate.Gated(sender)
}

// observe feeds one commit event into the conflict gate: the regular commit
// registers the block's transactions as included, and every event's strength
// releases senders whose requirement it satisfies.
func (m *Mempool) observe(ev CommitEvent) {
	id := ev.Block.ID()
	m.mu.Lock()
	if ev.Regular {
		m.gate.OnIncluded(id, ev.Block.Payload.Txns)
	}
	m.gate.OnStrengthened(id, ev.Strength)
	m.mu.Unlock()
}

// WithMempool wires the mempool's conflict gate into the node's commit path:
// every commit reports its transactions as included and every strength rise
// releases satisfied senders, synchronously on the event path (so Simnet
// runs stay deterministic). One mempool may back several nodes' payload
// functions, but attach the gate to exactly one node per mempool — the one
// whose strength observations should release holds.
func WithMempool(m *Mempool) Option {
	return func(s *settings) {
		if m == nil {
			s.fail(fmt.Errorf("sft: nil mempool"))
			return
		}
		s.mempool = m
	}
}

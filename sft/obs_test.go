package sft_test

import (
	"strings"
	"testing"

	"repro/sft"
)

// TestObservabilityPreservesDeterminism pins the tentpole contract of the
// observability layer: it is pure observation. A fixed-seed simnet run with
// WithObservability on every node produces exactly the same consensus trace
// — commit sequences, strength events, message and event counts — as the
// identical run without it.
func TestObservabilityPreservesDeterminism(t *testing.T) {
	for _, eng := range []sft.Engine{sft.DiemBFT, sft.Streamlet} {
		t.Run(eng.String(), func(t *testing.T) {
			plain := runFacade(t, eng)
			observed, nodes := runFacadeNodes(t, eng, sft.WithObservability(sft.ObsConfig{}))
			plain.equal(t, observed)
			if len(plain.commits[0]) == 0 {
				t.Fatal("run committed nothing; determinism comparison is vacuous")
			}
			// The sink must have actually seen the run it did not perturb.
			o := nodes[0].Obs()
			if o == nil {
				t.Fatal("WithObservability did not attach a sink")
			}
			if o.Commits() == 0 {
				t.Fatalf("obs saw no commits; facade observer saw %d", len(plain.commits[0]))
			}
			if got, want := o.Commits(), int64(len(plain.commits[0])); got != want {
				t.Fatalf("obs counted %d commits, facade observer %d", got, want)
			}
			if o.CurrentRound() == 0 {
				t.Fatal("obs saw no round advances")
			}
			if o.Tracer().Len() == 0 {
				t.Fatal("tracer recorded no block lifecycles")
			}
		})
	}
}

// TestObservabilityMetricsSnapshot checks the extended MetricsSnapshot
// fields and the health wiring: round/commit counters fill in, the health
// monitor ingests the chain's justify QCs, and String() reports diversity.
func TestObservabilityMetricsSnapshot(t *testing.T) {
	_, nodes := runFacadeNodes(t, sft.DiemBFT, sft.WithObservability(sft.ObsConfig{}))
	node := nodes[0]
	snap := node.Metrics()
	if snap.Round == 0 {
		t.Fatal("snapshot Round not filled from obs")
	}
	if !snap.HealthLive {
		t.Fatal("snapshot HealthLive false with observability on")
	}
	// 4 replicas, all honest and connected: every replica's votes appear in
	// recent QCs, so full diversity and no stragglers.
	if snap.HealthDiversity != detN {
		t.Fatalf("diversity %d, want %d", snap.HealthDiversity, detN)
	}
	if len(snap.HealthStragglers) != 0 {
		t.Fatalf("unexpected stragglers %v in a healthy cluster", snap.HealthStragglers)
	}
	if !strings.Contains(snap.String(), "diversity") {
		t.Fatalf("String() misses health section: %q", snap.String())
	}
	rep, ok := node.Health()
	if !ok {
		t.Fatal("Health() not live with observability on")
	}
	if rep.QCsObserved == 0 {
		t.Fatal("health monitor ingested no QCs")
	}
	if rep.Diversity != detN {
		t.Fatalf("health diversity %d, want %d", rep.Diversity, detN)
	}

	// Without the option, the surface reads as absent, not zero-valued-live.
	_, plainNodes := runFacadeNodes(t, sft.DiemBFT)
	if plainNodes[0].Obs() != nil {
		t.Fatal("Obs() non-nil without WithObservability")
	}
	if _, ok := plainNodes[0].Health(); ok {
		t.Fatal("Health() live without WithObservability")
	}
	if s := plainNodes[0].Metrics(); s.HealthLive || strings.Contains(s.String(), "diversity") {
		t.Fatalf("health fields leaked into plain snapshot: %q", s.String())
	}
}

package sft_test

import (
	"sync"
	"testing"
	"time"

	"repro/sft"
)

// buildSimCluster attaches n nodes to a fresh Simnet, applying extra per-id
// options, and returns the world plus nodes.
func buildSimCluster(t *testing.T, n int, seed int64, perID func(id sft.ReplicaID) []sft.Option) (*sft.Simnet, []*sft.Node) {
	t.Helper()
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 2 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(200 * time.Millisecond),
		}
		if perID != nil {
			opts = append(opts, perID(id)...)
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...)
		if err != nil {
			t.Fatal(err)
		}
	}
	return world, nodes
}

// TestWithAdversaryWithholding: a facade-built Byzantine node (silent
// voter) caps the cluster's strength at 2f - t without breaking safety —
// the adversary subsystem end to end through the public API.
func TestWithAdversaryWithholding(t *testing.T) {
	const n, f = 4, 1
	world, nodes := buildSimCluster(t, n, 41, func(id sft.ReplicaID) []sft.Option {
		if id == 3 {
			return []sft.Option{sft.WithAdversary(sft.AdversarySpec{Kind: sft.AdversaryWithhold})}
		}
		return nil
	})
	world.Run(6 * time.Second)
	defer world.Close()

	if h := nodes[0].CommittedHeight(); h < 5 {
		t.Fatalf("cluster with one silent Byzantine node committed only to height %d", h)
	}
	if m := nodes[0].Metrics(); m.MaxStrength > 2*f-1 {
		t.Fatalf("strength %d exceeds 2f-t = %d with a withholding replica", m.MaxStrength, 2*f-1)
	}
}

// TestWithAdversaryEquivocation: an equivocating facade node must not break
// prefix agreement between honest nodes.
func TestWithAdversaryEquivocation(t *testing.T) {
	const n = 4
	world, nodes := buildSimCluster(t, n, 43, func(id sft.ReplicaID) []sft.Option {
		if id == 2 {
			return []sft.Option{
				sft.WithAdversary(sft.AdversarySpec{Kind: sft.AdversaryEquivocate}),
				sft.WithAdversaryPeers(2),
			}
		}
		return nil
	})
	chains := make(map[sft.ReplicaID]map[sft.Height]sft.BlockID)
	var wg sync.WaitGroup
	for i, node := range nodes {
		id := sft.ReplicaID(i)
		chains[id] = make(map[sft.Height]sft.BlockID)
		events := node.Commits()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range events {
				if ev.Regular {
					chains[id][ev.Height] = ev.Block.ID()
				}
			}
		}()
	}
	world.Run(6 * time.Second)
	_ = world.Close() // closes subscriptions; collector goroutines drain and exit
	wg.Wait()

	honest := []sft.ReplicaID{0, 1, 3}
	ref := chains[0]
	if len(ref) < 5 {
		t.Fatalf("observer committed only %d heights under equivocation", len(ref))
	}
	for _, id := range honest[1:] {
		for h, b := range chains[id] {
			if other, ok := ref[h]; ok && other != b {
				t.Fatalf("SAFETY VIOLATION: replicas 0 and %d disagree at height %d", id, h)
			}
		}
	}
}

// TestSimnetPartitionHeals: PartitionAt splits the cluster below quorum —
// commits stop; HealAt restores them. The facade's partition scheduling end
// to end.
func TestSimnetPartitionHeals(t *testing.T) {
	const n = 4
	world, nodes := buildSimCluster(t, n, 47, nil)
	defer world.Close()

	world.PartitionAt(2*time.Second, []sft.ReplicaID{0, 1})
	world.HealAt(4 * time.Second)

	world.Run(2 * time.Second)
	atSplit := nodes[0].CommittedHeight()
	if atSplit < 3 {
		t.Fatalf("no progress before the partition: height %d", atSplit)
	}
	world.Run(3900 * time.Millisecond)
	duringSplit := nodes[0].CommittedHeight()
	world.Run(8 * time.Second)
	afterHeal := nodes[0].CommittedHeight()

	if world.PartitionDrops() == 0 {
		t.Fatal("partition dropped no deliveries")
	}
	if duringSplit > atSplit+2 {
		t.Fatalf("commits continued through a quorum-less partition: %d -> %d", atSplit, duringSplit)
	}
	if afterHeal <= duringSplit+2 {
		t.Fatalf("cluster did not recover after heal: %d -> %d", duringSplit, afterHeal)
	}
}

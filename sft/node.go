package sft

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
)

// Observability is the per-node observability sink built by
// WithObservability: a metric registry (Prometheus text via
// Registry().WritePrometheus), a block-lifecycle tracer, and snapshot
// accessors. Serve it over HTTP with obs.NewHandler.
type Observability = obs.Obs

// HealthReport is a snapshot of the Section 5 QC-diversity health signal.
type HealthReport = health.Report

// CommitEvent is one observation of a block's commit strength. Every block
// produces a sequence of events: first the regular commit (Strength = f,
// the classical guarantee), then one event per strength increase as the
// chain extends the block, up to 2f. Subscribers see the sequence filtered
// by their node's CommitRule.MinStrength.
type CommitEvent struct {
	// Block is the committed block.
	Block *Block
	// Height and Round locate it on the chain.
	Height Height
	Round  Round
	// Strength is the number of Byzantine faults the commit now tolerates
	// (Definition 1): F at the regular commit, rising toward 2F.
	Strength int
	// Regular marks the classical (f-strong) commit — exactly one per
	// block, in height order. Strength-rise events (including the tracker's
	// first report at x = F, which may accompany the regular commit) carry
	// Regular false.
	Regular bool
	// Results carries the block's per-transaction execution outcomes on the
	// regular commit of a node built WithApp — the deterministic verdicts the
	// certified state root commits to, exposed so consumers never re-decode
	// or re-execute the payload. Nil on strength-rise events and without an
	// execution layer. Results[i] corresponds to Block.Payload.Txns[i].
	Results []TxResult
	// Time is the node's clock when the event was observed — wall-clock
	// elapsed since Run for real transports, virtual time under Simnet.
	Time time.Duration
}

// RecoveryInfo summarizes what a node restored from its write-ahead log.
type RecoveryInfo struct {
	// Blocks and Votes count the replayed records.
	Blocks, Votes int
	// VotedRound is the highest round the pre-crash incarnation voted in —
	// the safety-critical value: the restored node never votes at or below
	// it in contradiction to its pre-crash markers.
	VotedRound Round
	// CommittedHeight is the pre-crash committed height.
	CommittedHeight Height
	// HighQCRound is the round of the highest recovered certificate.
	HighQCRound Round
}

func recoveryInfo(rec *core.Recovery) RecoveryInfo {
	info := RecoveryInfo{
		Blocks:          len(rec.Blocks),
		Votes:           len(rec.Votes),
		VotedRound:      rec.VotedRound(),
		CommittedHeight: rec.CommittedHeight,
	}
	if rec.HighQC != nil {
		info.HighQCRound = rec.HighQC.Round
	}
	return info
}

// journalHandle closes a journal exactly once no matter how many exit paths
// reach it (runtime.Node.Run's deferred close, Node.Close, New's error
// paths).
type journalHandle struct {
	once sync.Once
	j    *core.Journal
	err  error
}

func (h *journalHandle) Close() error {
	h.once.Do(func() { h.err = h.j.Close() })
	return h.err
}

// Node is one composed replica: engine, commit rule, transport, durability
// and subscriptions behind a single handle. Create with New; run with Run
// (TCP/LocalNet) or by driving the attached Simnet; stop with Close.
type Node struct {
	cfg  Config
	rule CommitRule
	spec compose.Spec
	eng  engine.Engine

	// Exactly one of rt/world is set, per the transport.
	rt    *runtime.Node
	tcp   *tcpnet.Net
	world *Simnet

	journal  *journalHandle
	walDir   string
	restored *RecoveryInfo

	pipeline        bool
	pipelineWorkers int

	metrics  *Metrics
	observer func(CommitEvent)
	mempool  *Mempool

	// obs and health are set by WithObservability; both read as nil-safe
	// no-ops when the option is absent.
	obs    *obs.Obs
	health *healthState

	start   time.Time
	started bool

	mu       sync.Mutex
	strength map[BlockID]int
	height   Height
	waiters  []*strengthWaiter
	subs     []*subscription
	closed   bool

	closeOnce sync.Once
	closeErr  error
}

type strengthWaiter struct {
	id    BlockID
	x     int
	ready chan struct{}
}

// healthState wraps the single-threaded health.Monitor for concurrent
// feeding (commit path) and reading (Node.Health, /healthz).
type healthState struct {
	mu  sync.Mutex
	mon *health.Monitor
}

func (h *healthState) observe(qc *QC) {
	if h == nil || qc == nil {
		return
	}
	h.mu.Lock()
	h.mon.ObserveQC(qc)
	h.mu.Unlock()
}

func (h *healthState) snapshot() HealthReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mon.Snapshot()
}

// ID returns the replica this node embodies.
func (n *Node) ID() ReplicaID { return n.cfg.ID }

// Rule returns the node's resolved commit rule.
func (n *Node) Rule() CommitRule { return n.rule }

// Restored reports the state recovered from the write-ahead log, if the
// node was built over a WAL left by a previous incarnation.
func (n *Node) Restored() (RecoveryInfo, bool) {
	if n.restored == nil {
		return RecoveryInfo{}, false
	}
	return *n.restored, true
}

// Addr returns the TCP listen address (nil for other transports) — useful
// with an ephemeral ":0" listen address.
func (n *Node) Addr() net.Addr {
	if n.tcp == nil {
		return nil
	}
	return n.tcp.Addr()
}

// SetPeers installs the cluster address book on a TCP node. Use it for the
// bind-first-then-exchange pattern: listen on ephemeral ports, collect
// every node's Addr, then SetPeers everywhere before Run.
func (n *Node) SetPeers(peers map[ReplicaID]string) error {
	if n.tcp == nil {
		return fmt.Errorf("sft: SetPeers requires the TCP transport")
	}
	n.tcp.SetPeers(peers)
	return nil
}

// Run executes the node's event loop until ctx is cancelled, then flushes
// and closes the node's resources (WAL included) — a SIGTERM-cancelled
// context is a graceful shutdown. Run applies only to real transports;
// Simnet-attached nodes are driven by Simnet.Run instead. Returns nil on
// plain context cancellation.
func (n *Node) Run(ctx context.Context) error {
	if n.rt == nil {
		return fmt.Errorf("sft: node %d is attached to a Simnet; drive it with Simnet.Run", n.cfg.ID)
	}
	n.start = time.Now()
	n.started = true
	err := n.rt.Run(ctx)
	cerr := n.Close()
	if err != nil && err != ctx.Err() {
		return err
	}
	return cerr
}

// Close releases the node's resources: the transport stops, the write-ahead
// log is flushed and closed, and every Commits subscription channel closes —
// buffered events keep flowing to consumers that keep receiving, but a
// consumer that stopped no longer pins the subscription. Safe to call more
// than once and after Run returned. Simnet-attached nodes may also be
// closed via Simnet.Close.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		if n.tcp != nil {
			n.closeErr = n.tcp.Close()
		}
		n.mu.Lock()
		journal := n.journal
		n.mu.Unlock()
		if journal != nil {
			if err := journal.Close(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
		n.mu.Lock()
		n.closed = true
		subs := n.subs
		waiters := n.waiters
		n.subs, n.waiters = nil, nil
		n.mu.Unlock()
		for _, sub := range subs {
			sub.close()
		}
		for _, w := range waiters {
			close(w.ready) // unblock; WaitStrength re-checks and reports closure
		}
	})
	return n.closeErr
}

// Commits returns a fresh subscription to the node's commit-strength
// stream. Each call returns an independent channel carrying every
// CommitEvent at or above CommitRule.MinStrength, in order, without
// back-pressure on the consensus path (events are buffered unboundedly
// until consumed). The channel closes when the node closes.
func (n *Node) Commits() <-chan CommitEvent {
	sub := newSubscription()
	n.mu.Lock()
	closed := n.closed
	if !closed {
		n.subs = append(n.subs, sub)
	}
	n.mu.Unlock()
	if closed {
		sub.close()
	}
	return sub.ch
}

// Strength returns the strongest commit level the node has observed for the
// block: -1 before the regular commit, then F..2F.
func (n *Node) Strength(id BlockID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if x, ok := n.strength[id]; ok {
		return x
	}
	return -1
}

// CommittedHeight returns the highest committed height observed.
func (n *Node) CommittedHeight() Height {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.height
}

// WaitStrength blocks until the node observes block id at strength >= x, the
// context is done, or the node closes. It is the programmatic form of the
// paper's per-transaction resilience choice: commit the transaction when its
// block tolerates the number of faults the caller cares about. Do not call
// it from the goroutine that drives a Simnet — virtual time only advances
// there.
func (n *Node) WaitStrength(ctx context.Context, id BlockID, x int) error {
	for {
		n.mu.Lock()
		if cur, ok := n.strength[id]; ok && cur >= x {
			n.mu.Unlock()
			return nil
		}
		if n.closed {
			n.mu.Unlock()
			return fmt.Errorf("sft: node closed before block reached strength %d", x)
		}
		w := &strengthWaiter{id: id, x: x, ready: make(chan struct{})}
		n.waiters = append(n.waiters, w)
		n.mu.Unlock()
		select {
		case <-ctx.Done():
			n.dropWaiter(w)
			return ctx.Err()
		case <-w.ready:
			// Either the strength was reached or the node closed; loop to
			// re-check under the lock.
		}
	}
}

func (n *Node) dropWaiter(w *strengthWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, other := range n.waiters {
		if other == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			return
		}
	}
}

// Metrics returns a snapshot of the node's counters, including the TCP
// transport's dropped-frame accounting when applicable. Nodes built with
// WithObservability additionally report round, timeout, prevalidation-drop
// and WAL-flush counters plus the health monitor's diversity/straggler
// scores.
func (n *Node) Metrics() MetricsSnapshot {
	snap := n.metrics.snapshot()
	if n.tcp != nil {
		fs := n.tcp.FrameStats()
		snap.SpoofedFrames = fs.Spoofed
		snap.MalformedFrames = fs.Malformed
		snap.VerifyDroppedFrames = fs.Prevalidated
	}
	if n.rt != nil {
		snap.VerifyDroppedFrames += n.rt.PrevalidateDrops()
	}
	if n.obs != nil {
		snap.Round = Round(n.obs.CurrentRound())
		snap.Timeouts = n.obs.LocalTimeouts()
		snap.PrevalidateDrops = n.obs.PrevalidateDrops()
		snap.WALFlushes = n.obs.WALFlushes()
	}
	if n.health != nil {
		rep := n.health.snapshot()
		snap.HealthLive = true
		snap.HealthDiversity = rep.Diversity
		snap.HealthStragglers = rep.Stragglers
	}
	return snap
}

// Obs returns the node's observability sink, or nil without
// WithObservability. The returned value's methods are nil-safe, so callers
// may use it unconditionally.
func (n *Node) Obs() *Observability { return n.obs }

// Health returns the Section 5 QC-diversity health snapshot. The second
// result is false without WithObservability. The monitor ingests the
// justify QC of every committed block, so diversity and stragglers reflect
// exactly the certificates the chain carries.
func (n *Node) Health() (HealthReport, bool) {
	if n.health == nil {
		return HealthReport{}, false
	}
	return n.health.snapshot(), true
}

// swapIncarnation points the handle at a restarted engine and its reopened
// journal (Simnet restarts). The crashed incarnation's journal handle is
// closed; its buffered appends were already flushed per event.
func (n *Node) swapIncarnation(eng engine.Engine, journal *journalHandle) {
	n.mu.Lock()
	old := n.journal
	n.eng = eng
	n.journal = journal
	n.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// now returns the node's event clock for real transports.
func (n *Node) now() time.Duration {
	if !n.started {
		return 0
	}
	return time.Since(n.start)
}

// onCommit and onStrength are the node's internal observers, wired into the
// runtime callbacks or the Simnet dispatcher by the transport attach.
func (n *Node) onCommit(now time.Duration, b *Block) {
	n.metrics.onCommit(b.Height)
	n.health.observe(b.Justify)
	ev := CommitEvent{Block: b, Height: b.Height, Round: b.Round, Strength: n.cfg.F(), Regular: true, Time: now}
	if exec := n.executor(); exec != nil {
		ev.Results = exec.Results(b.ID())
	}
	n.publish(ev)
}

func (n *Node) onStrength(now time.Duration, b *Block, x int) {
	n.metrics.onStrength(x)
	n.publish(CommitEvent{Block: b, Height: b.Height, Round: b.Round, Strength: x, Time: now})
}

// publish records the event and fans it out: strength bookkeeping and
// waiters always see it; subscriptions and the observer only at or above
// the commit rule's threshold.
func (n *Node) publish(ev CommitEvent) {
	id := ev.Block.ID()
	n.mu.Lock()
	if cur, ok := n.strength[id]; !ok || ev.Strength > cur {
		n.strength[id] = ev.Strength
	}
	if ev.Height > n.height {
		n.height = ev.Height
	}
	// Wake satisfied waiters.
	kept := n.waiters[:0]
	for _, w := range n.waiters {
		if w.id == id && ev.Strength >= w.x {
			close(w.ready)
			continue
		}
		kept = append(kept, w)
	}
	n.waiters = kept
	deliver := ev.Strength >= n.rule.MinStrength
	var subs []*subscription
	if deliver {
		subs = n.subs
	}
	n.mu.Unlock()
	// The conflict gate observes every event (below MinStrength too — holds
	// must release at the transaction's OWN requirement, not the node's
	// subscription filter), synchronously so Simnet runs stay deterministic.
	if n.mempool != nil {
		n.mempool.observe(ev)
	}
	for _, sub := range subs {
		sub.push(ev)
	}
	if deliver && n.observer != nil {
		n.observer(ev)
	}
}

// subscription is one unbounded commit-event queue with a pump goroutine
// feeding its channel, so publishing never blocks the consensus path. The
// queue grows until the consumer drains it; a consumer that abandons the
// channel on a still-running node therefore retains its backlog until the
// node closes — at which point the pump exits even mid-send (done unblocks
// it), so closed nodes never leak pump goroutines.
type subscription struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []CommitEvent
	closed bool
	done   chan struct{}
	ch     chan CommitEvent
}

func newSubscription() *subscription {
	sub := &subscription{ch: make(chan CommitEvent, 16), done: make(chan struct{})}
	sub.cond = sync.NewCond(&sub.mu)
	go sub.pump()
	return sub
}

func (s *subscription) push(ev CommitEvent) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscription) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscription) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		closed := s.closed
		s.mu.Unlock()
		for _, ev := range batch {
			// Fast path keeps delivery order cheap; after close, a consumer
			// that keeps receiving still drains the backlog (non-blocking
			// send first), but one that walked away no longer pins the
			// goroutine.
			select {
			case s.ch <- ev:
				continue
			default:
			}
			select {
			case s.ch <- ev:
			case <-s.done:
				close(s.ch)
				return
			}
		}
		if closed {
			close(s.ch)
			return
		}
	}
}

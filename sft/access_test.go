package sft_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/types"
	"repro/sft"
)

// TestAccessTierTCP runs the full read path end to end over real sockets:
// a 4-replica committee, a non-voting observer following it, a gateway fed
// by the observer, and a subscriber that verifies every streamed proof.
func TestAccessTierTCP(t *testing.T) {
	const (
		n    = 4
		seed = 61
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*sft.Node, n)
	peers := map[sft.ReplicaID]string{}
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: "127.0.0.1:0"})),
			sft.WithVerifyPipeline(0),
			sft.WithRoundTimeout(500*time.Millisecond),
			sft.WithCommitLog(8),
		)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = nodes[i].Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}

	gw, err := sft.NewGateway(sft.GatewayConfig{N: n, Seed: seed, Scheme: sft.SchemeEd25519, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwAddr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	obs, err := sft.NewObserver(sft.ObserverConfig{
		N: n, Seed: seed, Scheme: sft.SchemeEd25519, Ring: ring, Gateway: gw,
	}, sft.ObserverTCP(sft.ObserverTCPConfig{Upstreams: peers}))
	if err != nil {
		t.Fatal(err)
	}

	sub, err := sft.Subscribe(gwAddr.String(), sft.SubscriberConfig{
		N: n, Seed: seed, Scheme: sft.SchemeEd25519, Ring: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *sft.Node) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				t.Errorf("node: %v", err)
			}
		}(node)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := obs.Run(ctx); err != nil {
			t.Errorf("observer: %v", err)
		}
	}()

	// The observer must derive commits from the live chain...
	commits := obs.Commits()
	var first sft.CommitEvent
	select {
	case first = <-commits:
	case <-ctx.Done():
		t.Fatal("observer derived no commits from the live cluster")
	}
	if !first.Regular || first.Strength != 1 {
		t.Fatalf("first observer event = %+v, want regular f-strong commit", first)
	}

	// ...and the subscriber must receive proof-verified rises through the
	// gateway.
	var got sft.StrengthEvent
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("subscription died: %v", sub.Err())
		}
		got = ev
	case <-ctx.Done():
		t.Fatal("no verified strength event reached the subscriber")
	}
	if got.Strength < 1 {
		t.Fatalf("verified strength %d, want >= f", got.Strength)
	}
	if sub.Strength(got.Block) < got.Strength {
		t.Fatal("subscriber light client did not record the verified rise")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("live subscription reports error: %v", err)
	}

	cancel()
	wg.Wait()
	obs.Close()
}

// TestSimnetObserver attaches an observer slot to the deterministic fabric
// and checks it reports the same committed chain as the voting replicas.
func TestSimnetObserver(t *testing.T) {
	const (
		n    = 4
		seed = 7
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:         n,
		Observers: 1,
		Latency:   &sft.UniformLatency{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		nodes[i], err = sft.New(sft.Config{ID: sft.ReplicaID(i), N: n, Seed: seed},
			sft.WithScheme(sft.SchemeSim),
			sft.WithKeyRing(ring),
			sft.WithTransport(world.Transport(sft.ReplicaID(i))),
			sft.WithRoundTimeout(500*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	obs, err := sft.NewObserver(sft.ObserverConfig{
		N: n, Seed: seed, Scheme: sft.SchemeSim, Ring: ring,
	}, world.ObserverTransport(0))
	if err != nil {
		t.Fatal(err)
	}

	nodeEvents := nodes[0].Commits()
	obsEvents := obs.Commits()
	world.Run(5 * time.Second)
	world.Close()

	var nodeChain, obsChain []sft.BlockID
	for ev := range nodeEvents {
		if ev.Regular {
			nodeChain = append(nodeChain, ev.Block.ID())
		}
	}
	for ev := range obsEvents {
		if ev.Regular {
			obsChain = append(obsChain, ev.Block.ID())
		}
	}
	if len(obsChain) == 0 {
		t.Fatal("simnet observer committed nothing")
	}
	// Commits are observed at different instants by different endpoints, so
	// either side may be ahead by in-flight deliveries at the horizon — but
	// the chains must agree on their common prefix.
	common := min(len(obsChain), len(nodeChain))
	if diff := len(obsChain) - len(nodeChain); diff < -3 || diff > 3 {
		t.Fatalf("observer committed %d blocks, replica %d — more than in-flight lag", len(obsChain), len(nodeChain))
	}
	for i := 0; i < common; i++ {
		if obsChain[i] != nodeChain[i] {
			t.Fatalf("observer chain diverges from replica chain at %d", i)
		}
	}
	if obs.CommittedHeight() == 0 {
		t.Fatal("observer height not advanced")
	}
}

// TestLyingGatewayCaught serves fabricated events from a fake gateway: a
// record claiming a level the certified commit log does not prove. Every
// subscriber must reject it and surface ErrProofInvalid.
func TestLyingGatewayCaught(t *testing.T) {
	const (
		n    = 4
		seed = 13
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}

	// A genuinely certified carrier proving {block X at level 1}.
	genesis := types.Genesis()
	var subject types.BlockID
	subject[0] = 0xEE
	honest := types.StrengthRecord{Block: subject, Height: 3, Round: 3, X: 1}
	carrier := types.NewBlock(genesis.ID(), types.NewGenesisQC(genesis.ID()),
		5, 5, 0, 0, types.Payload{}, []types.StrengthRecord{honest})
	votes := make([]types.Vote, 3)
	for i := range votes {
		v := types.Vote{Block: carrier.ID(), Round: carrier.Round, Height: carrier.Height, Voter: types.ReplicaID(i)}
		v.Signature = ring.Signer(v.Voter).Sign(v.SigningPayload())
		votes[i] = v
	}
	qc := &types.QC{Block: carrier.ID(), Round: carrier.Round, Height: carrier.Height, Votes: votes}

	// The lie: same certified carrier, inflated claimed level.
	lie := honest
	lie.X = 2

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := gateway.ReadFrame(c); err != nil { // subscribe frame
					return
				}
				frame := gateway.AppendEventFrame(nil, gateway.Event{Record: lie, Carrier: carrier, QC: qc})
				_ = gateway.WriteFrame(c, frame)
			}(conn)
		}
	}()

	sub, err := sft.Subscribe(ln.Addr().String(), sft.SubscriberConfig{
		N: n, Seed: seed, Scheme: sft.SchemeSim, Ring: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	select {
	case ev, ok := <-sub.Events():
		if ok {
			t.Fatalf("subscriber accepted a fabricated event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not terminate on the lie")
	}
	var proofErr *sft.ErrProofInvalid
	if !errors.As(sub.Err(), &proofErr) {
		t.Fatalf("Err() = %v, want ErrProofInvalid", sub.Err())
	}
}

package sft_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
	"repro/internal/workload"
	"repro/sft"
)

// trace records everything observable about a run: the per-replica commit
// sequence, the per-replica strength-event sequence, and the simulator's
// message/event accounting. Two runs with equal traces are bit-identical
// for every purpose the experiments care about.
type trace struct {
	commits  map[types.ReplicaID][]types.BlockID
	strength map[types.ReplicaID][]strengthEvent
	events   int64
	msgs     int64
	bytes    int64
}

type strengthEvent struct {
	id types.BlockID
	x  int
}

func newTrace() *trace {
	return &trace{
		commits:  make(map[types.ReplicaID][]types.BlockID),
		strength: make(map[types.ReplicaID][]strengthEvent),
	}
}

func (tr *trace) equal(t *testing.T, other *trace) {
	t.Helper()
	if tr.events != other.events || tr.msgs != other.msgs || tr.bytes != other.bytes {
		t.Fatalf("accounting diverged: events %d vs %d, msgs %d vs %d, bytes %d vs %d",
			tr.events, other.events, tr.msgs, other.msgs, tr.bytes, other.bytes)
	}
	if len(tr.commits) != len(other.commits) {
		t.Fatalf("commit observers diverged: %d vs %d replicas", len(tr.commits), len(other.commits))
	}
	for rep, chain := range tr.commits {
		o := other.commits[rep]
		if len(chain) != len(o) {
			t.Fatalf("replica %v committed %d vs %d blocks", rep, len(chain), len(o))
		}
		for i := range chain {
			if chain[i] != o[i] {
				t.Fatalf("replica %v commit %d: %v vs %v", rep, i, chain[i], o[i])
			}
		}
	}
	for rep, evs := range tr.strength {
		o := other.strength[rep]
		if len(evs) != len(o) {
			t.Fatalf("replica %v saw %d vs %d strength events", rep, len(evs), len(o))
		}
		for i := range evs {
			if evs[i] != o[i] {
				t.Fatalf("replica %v strength event %d: %+v vs %+v", rep, i, evs[i], o[i])
			}
		}
	}
}

const (
	detN        = 4
	detF        = 1
	detSeed     = 99
	detDuration = 8 * time.Second
)

func detLatency() *simnet.UniformModel {
	return &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond}
}

// runFacade runs a cluster composed entirely through the public facade.
// Extra options apply to every node; the built nodes are returned for tests
// that inspect per-node state after the run.
func runFacade(t *testing.T, eng sft.Engine, extra ...sft.Option) *trace {
	t.Helper()
	tr, _ := runFacadeNodes(t, eng, extra...)
	return tr
}

func runFacadeNodes(t *testing.T, eng sft.Engine, extra ...sft.Option) (*trace, []*sft.Node) {
	t.Helper()
	tr := newTrace()
	world, err := sft.NewSimnet(sft.SimnetConfig{N: detN, Latency: detLatency(), Seed: detSeed})
	if err != nil {
		t.Fatal(err)
	}
	payload := workload.PaperPayload(detSeed, 50, 4096)
	nodes := make([]*sft.Node, detN)
	for i := 0; i < detN; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithEngine(eng),
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(500 * time.Millisecond),
			sft.WithDelta(25 * time.Millisecond),
			sft.WithPayload(payload),
			sft.WithObserver(func(ev sft.CommitEvent) {
				if ev.Regular {
					tr.commits[id] = append(tr.commits[id], ev.Block.ID())
				} else {
					tr.strength[id] = append(tr.strength[id], strengthEvent{ev.Block.ID(), ev.Strength})
				}
			}),
		}
		opts = append(opts, extra...)
		node, err := sft.New(sft.Config{ID: id, N: detN, Seed: detSeed}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	world.Run(detDuration)
	stats := world.Stats()
	tr.events, tr.msgs, tr.bytes = world.Events(), stats.Count, stats.Bytes
	return tr, nodes
}

// runHandWired runs the equivalent cluster wired by hand against the
// internal packages, the way every consumer did before the facade existed.
func runHandWired(t *testing.T, proto sft.Engine) *trace {
	t.Helper()
	tr := newTrace()
	ring, err := crypto.NewKeyRing(detN, detSeed, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(simnet.Config{
		N:       detN,
		Latency: detLatency(),
		Seed:    detSeed,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			tr.commits[rep] = append(tr.commits[rep], b.ID())
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			tr.strength[rep] = append(tr.strength[rep], strengthEvent{b.ID(), x})
		},
	})
	payload := workload.PaperPayload(detSeed, 50, 4096)
	for i := 0; i < detN; i++ {
		id := types.ReplicaID(i)
		switch proto {
		case sft.Streamlet:
			rep, err := streamlet.New(streamlet.Config{
				ID: id, N: detN, F: detF,
				Signer: ring.Signer(id), Verifier: ring,
				Delta:   25 * time.Millisecond,
				SFT:     true,
				Payload: payload,
			})
			if err != nil {
				t.Fatal(err)
			}
			sim.SetEngine(id, rep)
		default:
			rep, err := diembft.New(diembft.Config{
				ID: id, N: detN, F: detF,
				Signer: ring.Signer(id), Verifier: ring,
				SFT:          true,
				RoundTimeout: 500 * time.Millisecond,
				Payload:      payload,
			})
			if err != nil {
				t.Fatal(err)
			}
			sim.SetEngine(id, rep)
		}
	}
	sim.Run(detDuration)
	stats := sim.Stats()
	tr.events, tr.msgs, tr.bytes = sim.Events(), stats.Count, stats.Bytes
	return tr
}

// TestFacadeMatchesHandWiredDiemBFT pins the facade's composition path: a
// fixed-seed simnet run built through sft.New is bit-identical — same
// commit sequences, same strength events, same message and event counts —
// to the equivalent run hand-wired against the internal packages.
func TestFacadeMatchesHandWiredDiemBFT(t *testing.T) {
	facade := runFacade(t, sft.DiemBFT)
	hand := runHandWired(t, sft.DiemBFT)
	facade.equal(t, hand)
	if len(facade.commits[0]) == 0 {
		t.Fatal("run committed nothing; determinism comparison is vacuous")
	}
}

// TestFacadeMatchesHandWiredStreamlet is the Streamlet (height-mode commit
// rule) variant.
func TestFacadeMatchesHandWiredStreamlet(t *testing.T) {
	facade := runFacade(t, sft.Streamlet)
	hand := runHandWired(t, sft.Streamlet)
	facade.equal(t, hand)
	if len(facade.commits[0]) == 0 {
		t.Fatal("run committed nothing; determinism comparison is vacuous")
	}
}

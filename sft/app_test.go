package sft_test

import (
	"fmt"
	"testing"
	"time"

	"repro/sft"
)

// bankCluster builds an n=4 simnet cluster where every node executes the
// same bank before voting. Nodes share one workload-free payload function
// supplied by the caller (nil proposes empty blocks).
func bankCluster(t *testing.T, seed int64, cfg sft.BankConfig, extra func(id sft.ReplicaID) []sft.Option) (*sft.Simnet, []*sft.Node) {
	t.Helper()
	const n = 4
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.SchemeSim),
			sft.WithKeyRing(ring),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(250 * time.Millisecond),
			sft.WithApp(func() sft.StateMachine { return sft.NewBank(cfg) }),
		}
		if extra != nil {
			opts = append(opts, extra(id)...)
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...)
		if err != nil {
			t.Fatal(err)
		}
	}
	return world, nodes
}

// TestSimnetBankAppHashAgreement runs a signed-transfer workload through the
// facade and asserts the execution-layer headline properties end to end:
// every node certifies the same state root at its committed height, commit
// events carry per-transaction results without any payload re-decoding, and
// the application state is reachable through the handle.
func TestSimnetBankAppHashAgreement(t *testing.T) {
	const seed = 41
	cfg := sft.BankConfig{Seed: seed, Accounts: 64, InitialBalance: 1 << 16, Keys: sft.NewBankKeys(seed)}

	// Deterministic signed transfer stream: account i pays account i+1.
	var nonce [64]uint64
	payload := func(r sft.Round, now time.Duration) sft.Payload {
		var p sft.Payload
		for i := 0; i < 4; i++ {
			from := uint32((int(r)*4 + i) % 64)
			nonce[from]++
			tx := sft.BankTx{Op: sft.OpTransfer, From: from, To: (from + 1) % 64, Amount: 3, Nonce: nonce[from]}
			sft.SignBankTx(seed, &tx)
			p.Txns = append(p.Txns, tx.AsTransaction())
		}
		return p
	}

	world, nodes := bankCluster(t, seed, cfg, func(id sft.ReplicaID) []sft.Option {
		if id != 0 {
			return nil
		}
		// Only node 0 proposes traffic; that keeps the nonce stream coherent
		// (a shared counter across rotating leaders would race rounds that
		// never commit).
		return []sft.Option{sft.WithPayloadNow(payload)}
	})
	subs := make([]<-chan sft.CommitEvent, len(nodes))
	for i, node := range nodes {
		subs[i] = node.Commits()
	}

	world.Run(5 * time.Second)

	// All nodes must have executed to a non-genesis root, and nodes that
	// committed to the same height must certify the identical root.
	type tip struct {
		root [32]byte
		h    sft.Height
	}
	tips := make([]tip, len(nodes))
	genesis := sft.NewBank(cfg).GenesisRoot()
	for i, node := range nodes {
		if node.AppState() == nil {
			t.Fatalf("node %d: AppState is nil despite WithApp", i)
		}
		root, h := node.AppHash()
		if h == 0 || root == genesis || root == ([32]byte{}) {
			t.Fatalf("node %d: state never advanced (height %d, root %x)", i, h, root[:8])
		}
		tips[i] = tip{root, h}
	}
	agreeing := 0
	for i := 1; i < len(tips); i++ {
		if tips[i].h == tips[0].h {
			agreeing++
			if tips[i].root != tips[0].root {
				t.Fatalf("node %d and node 0 both committed height %d with different roots: %x vs %x",
					i, tips[0].h, tips[i].root[:8], tips[0].root[:8])
			}
		}
	}
	if agreeing == 0 {
		t.Fatal("no two nodes quiesced at a common height; run too short to compare roots")
	}

	// Commit events expose execution results aligned with the payload, with
	// all-OK verdicts for the well-formed stream — and every node reports the
	// identical verdict sequence per height (deterministic execution).
	for _, node := range nodes {
		node.Close()
	}
	verdicts := make([]map[sft.Height][]sft.TxResult, len(nodes))
	for i, sub := range subs {
		verdicts[i] = make(map[sft.Height][]sft.TxResult)
		for ev := range sub {
			if !ev.Regular {
				if ev.Results != nil {
					t.Fatalf("node %d: strength-rise event at height %d carries Results", i, ev.Height)
				}
				continue
			}
			if len(ev.Results) != len(ev.Block.Payload.Txns) {
				t.Fatalf("node %d height %d: %d results for %d txns", i, ev.Height, len(ev.Results), len(ev.Block.Payload.Txns))
			}
			for j, res := range ev.Results {
				txn := ev.Block.Payload.Txns[j]
				if res.Sender != txn.Sender || res.Seq != txn.Seq {
					t.Fatalf("node %d height %d: result %d is (%d,%d), txn is (%d,%d)",
						i, ev.Height, j, res.Sender, res.Seq, txn.Sender, txn.Seq)
				}
				if res.Code != sft.CodeOK {
					t.Fatalf("node %d height %d: txn %d rejected: %v", i, ev.Height, j, res.Code)
				}
			}
			verdicts[i][ev.Height] = ev.Results
		}
	}
	sawTxns := false
	for h, ref := range verdicts[0] {
		if len(ref) > 0 {
			sawTxns = true
		}
		for i := 1; i < len(verdicts); i++ {
			got, ok := verdicts[i][h]
			if !ok {
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("height %d: node %d saw %d results, node 0 saw %d", h, i, len(got), len(ref))
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("height %d txn %d: node %d verdict %+v, node 0 verdict %+v", h, j, i, got[j], ref[j])
				}
			}
		}
	}
	if !sawTxns {
		t.Fatal("no committed block carried transactions; workload never flowed")
	}
}

// TestMempoolGateReleasesAtStrength drives the Section 5 conflict gate
// through the facade: a withdrawal requiring 2f-strong commitment holds the
// sender's follow-up transfer until the block carrying it strengthens to 2f,
// at which point the hold releases and the follow-up commits too.
func TestMempoolGateReleasesAtStrength(t *testing.T) {
	const seed = 53
	cfg := sft.BankConfig{Seed: seed, Accounts: 16, InitialBalance: 1 << 16, Keys: sft.NewBankKeys(seed)}
	mp := sft.NewMempool(0)

	world, nodes := bankCluster(t, seed, cfg, func(id sft.ReplicaID) []sft.Option {
		if id != 0 {
			return nil
		}
		return []sft.Option{
			sft.WithMempool(mp),
			sft.WithPayloadNow(func(r sft.Round, now time.Duration) sft.Payload {
				return sft.Payload{Txns: mp.Batch(16)}
			}),
		}
	})

	// A high-value withdrawal from account 7 that must be 2f-strong before
	// anything later from the same sender moves, then a follow-up transfer.
	withdraw := sft.BankTx{Op: sft.OpWithdraw, From: 7, Amount: 1000, Nonce: 1}
	sft.SignBankTx(seed, &withdraw)
	followUp := sft.BankTx{Op: sft.OpTransfer, From: 7, To: 8, Amount: 5, Nonce: 2}
	sft.SignBankTx(seed, &followUp)

	mp.Submit(withdraw.AsTransaction(), 2) // 2f for f=1
	mp.Submit(followUp.AsTransaction(), 0)

	if held := mp.Held(); held != 1 {
		t.Fatalf("follow-up not held behind the withdrawal: held=%d", held)
	}
	if !mp.Gated(7) {
		t.Fatal("sender 7 not gated while the withdrawal is in flight")
	}

	world.Run(5 * time.Second)

	if mp.Gated(7) {
		t.Fatal("sender 7 still gated after the run; withdrawal never reached 2f-strong")
	}
	if held := mp.Held(); held != 0 {
		t.Fatalf("%d transactions still held after the run", held)
	}
	// Both transactions must have executed: the withdrawal burned 1000 and
	// the released follow-up moved 5 more, so account 7's committed state
	// shows both nonces consumed.
	bank, ok := nodes[0].AppState().(*sft.Bank)
	if !ok {
		t.Fatal("AppState is not the bank")
	}
	if n := bank.Nonce(7); n != 2 {
		t.Fatalf("account 7 nonce %d after the run; want 2 (withdrawal + released follow-up)", n)
	}
	wantBal := uint64(1<<16) - 1000 - 5
	if b := bank.Balance(7); b != wantBal {
		t.Fatalf("account 7 balance %d; want %d", b, wantBal)
	}
}

// TestSimnetBankRestartReconverges crashes a node mid-run and restarts it
// over its WAL: WithApp's factory builds a FRESH bank for the new
// incarnation, the recovered chain re-executes, and the node lands back on
// the cluster's certified state roots.
func TestSimnetBankRestartReconverges(t *testing.T) {
	const seed = 67
	cfg := sft.BankConfig{Seed: seed, Accounts: 32, InitialBalance: 1 << 16, DisableSigVerify: true}

	var nonce [32]uint64
	payload := func(r sft.Round, now time.Duration) sft.Payload {
		from := uint32(int(r) % 32)
		nonce[from]++
		tx := sft.BankTx{Op: sft.OpTransfer, From: from, To: (from + 3) % 32, Amount: 2, Nonce: nonce[from]}
		return sft.Payload{Txns: []sft.Transaction{tx.AsTransaction()}}
	}

	dir := t.TempDir()
	world, nodes := bankCluster(t, seed, cfg, func(id sft.ReplicaID) []sft.Option {
		opts := []sft.Option{sft.WithWAL(fmt.Sprintf("%s/wal-%d", dir, id))}
		if id == 0 {
			opts = append(opts, sft.WithPayloadNow(payload))
		}
		return opts
	})

	victim := sft.ReplicaID(2)
	world.CrashAt(victim, 2*time.Second)
	var restored bool
	if err := world.RestartAt(victim, 3*time.Second, func(info sft.RecoveryInfo) {
		restored = info.Blocks > 0
	}); err != nil {
		t.Fatal(err)
	}

	world.Run(6 * time.Second)

	if !restored {
		t.Fatal("restart recovered nothing from the WAL")
	}
	vroot, vh := nodes[victim].AppHash()
	if vh == 0 {
		t.Fatal("victim committed nothing after restart")
	}
	// The victim must agree with any node that quiesced at the same height.
	compared := false
	for i, node := range nodes {
		if sft.ReplicaID(i) == victim {
			continue
		}
		root, h := node.AppHash()
		if h == vh {
			compared = true
			if root != vroot {
				t.Fatalf("victim root %x at height %d, node %d root %x", vroot[:8], vh, i, root[:8])
			}
		}
	}
	if !compared {
		t.Skip("no peer quiesced at the victim's height; nothing to compare (rare scheduling)")
	}
}

package sft

import (
	"fmt"
	"sync/atomic"
)

// Metrics is an atomic counter sink nodes report into. One sink may be
// shared by several nodes (WithMetrics) to aggregate a whole in-process
// cluster; reads go through Node.Metrics or Snapshot.
type Metrics struct {
	commits         atomic.Int64
	strengthUpdates atomic.Int64
	committedHeight atomic.Int64
	maxStrength     atomic.Int64
}

// MetricsSnapshot is a point-in-time read of a node's counters.
type MetricsSnapshot struct {
	// Commits counts regular (f-strong) commits observed.
	Commits int64
	// StrengthUpdates counts strength-level increases observed.
	StrengthUpdates int64
	// CommittedHeight is the highest committed height observed.
	CommittedHeight Height
	// MaxStrength is the highest strength level x observed on any block.
	MaxStrength int
	// Dropped-frame accounting (TCP transport; zero elsewhere): frames that
	// spoofed their sender, broke the wire format, or failed signature /
	// certificate verification before reaching the engine.
	SpoofedFrames, MalformedFrames, VerifyDroppedFrames int64
	// The fields below are populated only when the node was built with
	// WithObservability; without it they stay zero.

	// Round is the highest round the engine entered.
	Round Round
	// Timeouts counts local pacemaker round timeouts fired.
	Timeouts int64
	// PrevalidateDrops counts messages dropped by signature prevalidation.
	PrevalidateDrops int64
	// WALFlushes counts write-ahead-log batch flushes.
	WALFlushes int64
	// HealthLive reports whether the Section 5 health monitor is wired (it
	// gates the health fields below and their String() rendering).
	HealthLive bool
	// HealthDiversity is the number of distinct replicas appearing in the
	// health window's QCs — the ceiling on reachable strong-commit levels.
	HealthDiversity int
	// HealthStragglers lists replicas absent from every recent chain QC,
	// the paper's "outcast replicas".
	HealthStragglers []ReplicaID
}

// String renders a snapshot compactly for periodic status logs.
func (m MetricsSnapshot) String() string {
	s := fmt.Sprintf("%d commits, %d strength updates, height %d, max strength %d, dropped %d spoofed / %d malformed / %d failed-verify",
		m.Commits, m.StrengthUpdates, m.CommittedHeight, m.MaxStrength,
		m.SpoofedFrames, m.MalformedFrames, m.VerifyDroppedFrames)
	if m.HealthLive {
		s += fmt.Sprintf(", diversity %d, stragglers %v", m.HealthDiversity, m.HealthStragglers)
	}
	return s
}

func (m *Metrics) onCommit(h Height) {
	m.commits.Add(1)
	for {
		cur := m.committedHeight.Load()
		if int64(h) <= cur || m.committedHeight.CompareAndSwap(cur, int64(h)) {
			return
		}
	}
}

func (m *Metrics) onStrength(x int) {
	m.strengthUpdates.Add(1)
	for {
		cur := m.maxStrength.Load()
		if int64(x) <= cur || m.maxStrength.CompareAndSwap(cur, int64(x)) {
			return
		}
	}
}

// Snapshot reads the sink's counters (transport frame counters are
// per-node; use Node.Metrics for those).
func (m *Metrics) Snapshot() MetricsSnapshot { return m.snapshot() }

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Commits:         m.commits.Load(),
		StrengthUpdates: m.strengthUpdates.Load(),
		CommittedHeight: Height(m.committedHeight.Load()),
		MaxStrength:     int(m.maxStrength.Load()),
	}
}

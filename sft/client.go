package sft

import (
	"encoding/gob"
	"net"
	"sync"
	"time"

	"repro/internal/mempool"
)

// The transaction streaming protocol between sftclient and sftnode: a plain
// TCP connection carrying gob-encoded Transactions. Both ends live here so
// the wire format has exactly one definition.

// TxnStream is the client side of a transaction stream (cmd/sftclient).
type TxnStream struct {
	conn net.Conn
	enc  *gob.Encoder
}

// DialTransactions connects to a node's transaction listener (the address
// its WithTransactionServer / -client-listen is bound to).
func DialTransactions(addr string, timeout time.Duration) (*TxnStream, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &TxnStream{conn: conn, enc: gob.NewEncoder(conn)}, nil
}

// Submit sends one transaction to the node's pool.
func (s *TxnStream) Submit(txn Transaction) error { return s.enc.Encode(txn) }

// Close closes the stream.
func (s *TxnStream) Close() error { return s.conn.Close() }

// DefaultMaxTxnConns caps concurrent client streams per TxnServer unless
// ListenTransactionsLimit says otherwise.
const DefaultMaxTxnConns = 1024

// TxnServer accepts transaction streams from clients and pools the
// submitted transactions until the node's payload function drains them
// (cmd/sftnode's -client-listen).
type TxnServer struct {
	ln       net.Listener
	maxConns int

	mu     sync.Mutex
	pool   *mempool.Pool
	conns  map[net.Conn]struct{}
	closed bool
}

// ListenTransactions starts accepting client transaction streams on addr.
// capacity bounds the pool (0 = unbounded); transactions over it are
// dropped, as a saturated mempool would. At most DefaultMaxTxnConns clients
// are served concurrently; use ListenTransactionsLimit to tune that.
func ListenTransactions(addr string, capacity int) (*TxnServer, error) {
	return ListenTransactionsLimit(addr, capacity, DefaultMaxTxnConns)
}

// ListenTransactionsLimit is ListenTransactions with an explicit cap on
// concurrent client connections (0 or negative = DefaultMaxTxnConns).
// Connections over the cap are closed immediately on accept, so a
// connection flood cannot exhaust the node's goroutines or descriptors.
func ListenTransactionsLimit(addr string, capacity, maxConns int) (*TxnServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if maxConns <= 0 {
		maxConns = DefaultMaxTxnConns
	}
	s := &TxnServer{
		ln:       ln,
		maxConns: maxConns,
		pool:     mempool.New(capacity),
		conns:    make(map[net.Conn]struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TxnServer) Addr() net.Addr { return s.ln.Addr() }

// Batch removes and returns up to max pooled transactions, oldest first —
// call it from a WithPayload function to build blocks from client load.
func (s *TxnServer) Batch(max int) []Transaction {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Batch(max)
}

// Pending returns the number of pooled transactions.
func (s *TxnServer) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Len()
}

// Conns returns the number of live client streams.
func (s *TxnServer) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting clients and severs every live stream; their decode
// goroutines exit and nothing feeds the pool afterwards.
func (s *TxnServer) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	return err
}

// track registers a freshly accepted conn unless the server is closed or at
// its connection cap; false means the caller must drop the conn.
func (s *TxnServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.maxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *TxnServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *TxnServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			for {
				var txn Transaction
				if err := dec.Decode(&txn); err != nil {
					return
				}
				s.mu.Lock()
				closed := s.closed
				if !closed {
					s.pool.Add(txn)
				}
				s.mu.Unlock()
				if closed {
					return
				}
			}
		}()
	}
}

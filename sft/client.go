package sft

import (
	"encoding/gob"
	"net"
	"sync"
	"time"

	"repro/internal/mempool"
)

// The transaction streaming protocol between sftclient and sftnode: a plain
// TCP connection carrying gob-encoded Transactions. Both ends live here so
// the wire format has exactly one definition.

// TxnStream is the client side of a transaction stream (cmd/sftclient).
type TxnStream struct {
	conn net.Conn
	enc  *gob.Encoder
}

// DialTransactions connects to a node's transaction listener (the address
// its WithTransactionServer / -client-listen is bound to).
func DialTransactions(addr string, timeout time.Duration) (*TxnStream, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &TxnStream{conn: conn, enc: gob.NewEncoder(conn)}, nil
}

// Submit sends one transaction to the node's pool.
func (s *TxnStream) Submit(txn Transaction) error { return s.enc.Encode(txn) }

// Close closes the stream.
func (s *TxnStream) Close() error { return s.conn.Close() }

// TxnServer accepts transaction streams from clients and pools the
// submitted transactions until the node's payload function drains them
// (cmd/sftnode's -client-listen).
type TxnServer struct {
	ln net.Listener

	mu   sync.Mutex
	pool *mempool.Pool
}

// ListenTransactions starts accepting client transaction streams on addr.
// capacity bounds the pool (0 = unbounded); transactions over it are
// dropped, as a saturated mempool would.
func ListenTransactions(addr string, capacity int) (*TxnServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TxnServer{ln: ln, pool: mempool.New(capacity)}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TxnServer) Addr() net.Addr { return s.ln.Addr() }

// Batch removes and returns up to max pooled transactions, oldest first —
// call it from a WithPayload function to build blocks from client load.
func (s *TxnServer) Batch(max int) []Transaction {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Batch(max)
}

// Pending returns the number of pooled transactions.
func (s *TxnServer) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Len()
}

// Close stops accepting clients.
func (s *TxnServer) Close() error { return s.ln.Close() }

func (s *TxnServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			for {
				var txn Transaction
				if err := dec.Decode(&txn); err != nil {
					return
				}
				s.mu.Lock()
				s.pool.Add(txn)
				s.mu.Unlock()
			}
		}()
	}
}

package sft_test

import (
	"net"
	"testing"
	"time"

	"repro/sft"
)

// TestTxnServerCloseSeversStreams is the PR-10 regression: Close used to
// close only the listener, so accepted connections kept decoding and
// feeding the pool afterwards.
func TestTxnServerCloseSeversStreams(t *testing.T) {
	srv, err := sft.ListenTransactions("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := sft.DialTransactions(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	if err := stream.Submit(sft.Transaction{Sender: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Pending() == 1 })

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Conns() == 0 })

	// The severed stream must surface a write error; a live gob stream over
	// a closed TCP conn errors within a few writes once RSTs propagate.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := stream.Submit(sft.Transaction{Sender: 1, Seq: 2}); err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if time.Now().After(deadline) {
		t.Fatal("stream still writable after server Close")
	}
	if got := srv.Pending(); got != 1 {
		t.Fatalf("pool grew after Close: %d", got)
	}
}

// TestTxnServerMaxConns checks the accept-side connection cap: conns over
// the limit are closed immediately and never feed the pool.
func TestTxnServerMaxConns(t *testing.T) {
	srv, err := sft.ListenTransactionsLimit("127.0.0.1:0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var keep []*sft.TxnStream
	for i := 0; i < 2; i++ {
		s, err := sft.DialTransactions(srv.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Prove the conn is accepted and live before dialing the next.
		if err := s.Submit(sft.Transaction{Sender: uint32(i), Seq: 1}); err != nil {
			t.Fatal(err)
		}
		keep = append(keep, s)
	}
	waitFor(t, func() bool { return srv.Conns() == 2 && srv.Pending() == 2 })

	// The third conn must be dropped: reads on it hit EOF/RST quickly.
	over, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := over.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap conn was served")
	}
	if got := srv.Conns(); got != 2 {
		t.Fatalf("conns = %d, want 2", got)
	}

	// Capped conns still work.
	if err := keep[0].Submit(sft.Transaction{Sender: 0, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Pending() == 3 })

	// Freeing a slot admits a new client.
	keep[1].Close()
	waitFor(t, func() bool { return srv.Conns() == 1 })
	again, err := sft.DialTransactions(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if err := again.Submit(sft.Transaction{Sender: 9, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Pending() == 4 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

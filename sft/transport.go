package sft

import (
	"fmt"
	rt "runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

// Transport selects a node's execution substrate. The three
// implementations — TCP, LocalNet endpoints, and Simnet slots — are
// constructed through this package; the interface is sealed.
type Transport interface {
	// attach wires the built engine into the substrate.
	attach(n *Node) error
	// simulated reports whether crashes are simulated in-process, in which
	// case page-cache WAL durability models them faithfully and fsync is
	// skipped.
	simulated() bool
}

// TCPConfig configures the TCP transport.
type TCPConfig struct {
	// Listen is the local address to accept peers on, e.g. ":7000" or
	// "127.0.0.1:0" (ephemeral; read the bound address from Node.Addr).
	Listen string
	// Peers maps every replica (self included; ignored) to its dialable
	// address. May be nil at construction and installed later with
	// Node.SetPeers.
	Peers map[ReplicaID]string
	// DialRetry is the pause between failed dials (default 250ms).
	DialRetry time.Duration
}

// TCP returns the real-socket transport: length-delimited gob frames over
// persistent connections with lazy dialing and a sender handshake. With
// WithVerifyPipeline, frames are verified on their per-peer reader
// goroutines before they reach the event loop.
func TCP(cfg TCPConfig) Transport { return &tcpTransport{cfg: cfg} }

type tcpTransport struct{ cfg TCPConfig }

func (t *tcpTransport) simulated() bool { return false }

func (t *tcpTransport) attach(n *Node) error {
	netCfg := tcpnet.Config{
		ID:        n.cfg.ID,
		Listen:    t.cfg.Listen,
		Peers:     t.cfg.Peers,
		DialRetry: t.cfg.DialRetry,
		Obs:       n.obs,
	}
	if n.pipeline {
		pe, ok := n.eng.(engine.Pipelined)
		if !ok {
			return fmt.Errorf("sft: engine %T does not support the verification pipeline", n.eng)
		}
		netCfg.Prevalidate = pe.Prevalidate
	}
	nt, err := tcpnet.Listen(netCfg)
	if err != nil {
		return err
	}
	n.tcp = nt
	return attachRuntime(n, nt, false)
}

// LocalNet connects up to n in-process nodes through buffered channels —
// the quickest way to run a real (goroutine-per-replica, wall-clock) cluster
// inside one process without sockets.
type LocalNet struct {
	net *runtime.LocalNetwork
	n   int
}

// NewLocalNet creates an in-process network with n endpoints.
func NewLocalNet(n int) *LocalNet {
	return &LocalNet{net: runtime.NewLocalNetwork(n), n: n}
}

// Transport returns the endpoint for replica id, for WithTransport.
func (l *LocalNet) Transport(id ReplicaID) Transport {
	return &localTransport{net: l, id: id}
}

// Close shuts down every endpoint; nodes' Run loops drain and return.
func (l *LocalNet) Close() { l.net.Close() }

type localTransport struct {
	net *LocalNet
	id  ReplicaID
}

func (t *localTransport) simulated() bool { return false }

func (t *localTransport) attach(n *Node) error {
	if n.cfg.ID != t.id {
		return fmt.Errorf("sft: transport endpoint %d attached to node %d", t.id, n.cfg.ID)
	}
	if int(t.id) >= t.net.n {
		return fmt.Errorf("sft: endpoint %d outside LocalNet of %d", t.id, t.net.n)
	}
	return attachRuntime(n, t.net.net.Endpoint(t.id), true)
}

// attachRuntime builds the runtime.Node around an already-built engine. The
// worker pool is only used for transports without a reader-side
// prevalidation hook; TCP verifies on its per-peer readers instead.
func attachRuntime(n *Node, tr runtime.Transport, workerPool bool) error {
	opts := runtime.Options{
		N:   n.cfg.N,
		Obs: n.obs,
		OnCommit: func(b *types.Block) {
			n.onCommit(n.now(), b)
		},
		OnStrength: func(b *types.Block, x int) {
			n.onStrength(n.now(), b, x)
		},
	}
	if n.journal != nil {
		// The runtime flushes and closes the journal when Run exits; the
		// once-guarded handle keeps Node.Close idempotent with that.
		opts.Journal = n.journal
	}
	if workerPool && n.pipeline {
		workers := n.pipelineWorkers
		if workers <= 0 {
			workers = rt.GOMAXPROCS(0)
		}
		opts.PrevalidateWorkers = workers
	}
	node, err := runtime.NewNode(n.eng, tr, opts)
	if err != nil {
		return err
	}
	n.rt = node
	return nil
}

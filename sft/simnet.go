package sft

import (
	"fmt"
	"time"

	"repro/internal/compose"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

// SimnetConfig parameterizes a deterministic simulation fabric.
type SimnetConfig struct {
	// N is the number of replica slots.
	N int
	// Latency is the network model; required.
	Latency LatencyModel
	// Seed drives all simulated randomness: same seed, same run,
	// bit-identical results.
	Seed int64
	// Observers adds non-voting observer slots numbered N..N+Observers-1,
	// attached with Simnet.ObserverTransport. Observer slots receive every
	// replica broadcast but never vote; with Observers = 0 the fabric is
	// bit-identical to one built before observer support existed.
	Observers int
	// VerifyPipeline routes every delivery through the engines'
	// prevalidate/apply split, synchronously — the simulator stays
	// single-threaded, so results are bit-identical to the pipeline being
	// off for honest traffic. This is the simulation-wide form of
	// WithVerifyPipeline (which New rejects on Simnet-attached nodes).
	VerifyPipeline bool
}

// Simnet is the deterministic discrete-event fabric the paper's experiments
// run on, exposed through the facade: create it, attach nodes built with
// WithTransport(world.Transport(id)), then drive virtual time with Run.
// Unattached slots model replicas that are down from the start.
type Simnet struct {
	cfg       SimnetConfig
	sim       *simnet.Sim
	nodes     []*Node
	observers []*ObserverNode
}

// NewSimnet creates a simulation fabric with cfg.N empty replica slots.
func NewSimnet(cfg SimnetConfig) (*Simnet, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sft: simnet needs N > 0")
	}
	if cfg.Latency == nil {
		return nil, fmt.Errorf("sft: simnet needs a latency model (e.g. sft.UniformLatency or sft.SymmetricLatency)")
	}
	if cfg.Observers < 0 {
		return nil, fmt.Errorf("sft: simnet observers must be non-negative")
	}
	w := &Simnet{
		cfg:       cfg,
		nodes:     make([]*Node, cfg.N),
		observers: make([]*ObserverNode, cfg.Observers),
	}
	w.sim = simnet.New(simnet.Config{
		N:           cfg.N,
		Observers:   cfg.Observers,
		Latency:     cfg.Latency,
		Seed:        cfg.Seed,
		Prevalidate: cfg.VerifyPipeline,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if int(rep) >= cfg.N {
				if o := w.observers[int(rep)-cfg.N]; o != nil {
					o.onCommit(now, b)
				}
				return
			}
			if n := w.nodes[rep]; n != nil {
				n.onCommit(now, b)
			}
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if int(rep) >= cfg.N {
				if o := w.observers[int(rep)-cfg.N]; o != nil {
					o.onStrength(now, b, x)
				}
				return
			}
			if n := w.nodes[rep]; n != nil {
				n.onStrength(now, b, x)
			}
		},
	})
	return w, nil
}

// Transport returns the fabric slot for replica id, for WithTransport.
func (w *Simnet) Transport(id ReplicaID) Transport {
	return &simTransport{world: w, id: id}
}

// ObserverTransport returns observer slot i (of SimnetConfig.Observers), for
// NewObserver. The attached observer's wire identity is N+i.
func (w *Simnet) ObserverTransport(i int) ObserverTransport {
	return &simObserverTransport{world: w, slot: i}
}

type simObserverTransport struct {
	world *Simnet
	slot  int
}

func (t *simObserverTransport) attachObserver(o *ObserverNode) error {
	w := t.world
	if t.slot < 0 || t.slot >= len(w.observers) {
		return fmt.Errorf("sft: observer slot %d outside simnet with %d observer slots", t.slot, len(w.observers))
	}
	want := ReplicaID(w.cfg.N + t.slot)
	if o.id != want {
		return fmt.Errorf("sft: simnet observer slot %d requires ID %d, node has %d", t.slot, want, o.id)
	}
	if w.observers[t.slot] != nil {
		return fmt.Errorf("sft: simnet observer slot %d already attached", t.slot)
	}
	w.observers[t.slot] = o
	w.sim.SetEngine(want, o.eng)
	return nil
}

// Run advances virtual time until `until` (an absolute virtual timestamp),
// dispatching every event in deterministic order. It may be called
// repeatedly with increasing horizons to interleave observations with the
// run, as the operations example does.
func (w *Simnet) Run(until time.Duration) { w.sim.Run(until) }

// Now returns the current virtual time.
func (w *Simnet) Now() time.Duration { return w.sim.Now() }

// Stats returns the message accounting so far.
func (w *Simnet) Stats() MsgStats { return w.sim.Stats() }

// Events returns the number of simulation events processed so far.
func (w *Simnet) Events() int64 { return w.sim.Events() }

// CrashAt schedules replica id to crash (stop processing events) at virtual
// time at. If the node runs with WithWAL, everything it flushed — which is
// everything, since engines flush per event — survives for RestartAt.
func (w *Simnet) CrashAt(id ReplicaID, at time.Duration) { w.sim.CrashAt(id, at) }

// PartitionAt schedules a network partition at virtual time at: replicas
// within one group keep talking, deliveries crossing groups are dropped at
// send time (in-flight messages still land). Replicas not listed in any
// group form one implicit final group together, so PartitionAt(t, g) splits
// g from the rest. A later partition replaces the current one; HealAt
// restores full connectivity.
func (w *Simnet) PartitionAt(at time.Duration, groups ...[]ReplicaID) {
	w.sim.PartitionAt(at, groups...)
}

// HealAt schedules the current partition (if any) to heal at virtual time
// at.
func (w *Simnet) HealAt(at time.Duration) { w.sim.HealAt(at) }

// PartitionDrops reports how many deliveries scheduled partitions have
// discarded so far.
func (w *Simnet) PartitionDrops() int64 { return w.sim.PartitionDrops() }

// RestartAt schedules a crashed replica to come back at virtual time at,
// rebuilt from its write-ahead log through the same composition path that
// built it: the WAL is replayed, a fresh engine is restored from it (its
// next vote cannot contradict its pre-crash markers), and Init re-joins the
// cluster via state sync. The node must have been built with WithWAL.
// onRestore, if non-nil, observes the recovered state at restart time.
func (w *Simnet) RestartAt(id ReplicaID, at time.Duration, onRestore func(RecoveryInfo)) error {
	if int(id) >= len(w.nodes) || w.nodes[id] == nil {
		return fmt.Errorf("sft: no node attached at slot %d", id)
	}
	n := w.nodes[id]
	if n.walDir == "" {
		return fmt.Errorf("sft: RestartAt(%d) requires the node to run with WithWAL", id)
	}
	w.sim.RestartAt(id, at, func() engine.Engine {
		// Dispatch time: the crashed incarnation's WAL holds its final
		// state. Recover it, rebuild the engine from the node's own spec,
		// and swap the node handle over to the new incarnation.
		j, rec, err := compose.OpenWALObserved(n.walDir, false, walObserver(n.obs))
		if err != nil {
			panic(fmt.Sprintf("sft: restart %d: %v", id, err))
		}
		spec := n.spec
		spec.Journal = j
		eng, err := compose.Engine(spec)
		if err != nil {
			panic(fmt.Sprintf("sft: restart %d: %v", id, err))
		}
		if err := compose.Restore(eng, rec); err != nil {
			panic(fmt.Sprintf("sft: restart %d: %v", id, err))
		}
		n.swapIncarnation(eng, &journalHandle{j: j})
		if onRestore != nil {
			onRestore(recoveryInfo(rec))
		}
		return eng
	})
	return nil
}

// Close closes every attached node (flushing WALs) — call it when the
// simulation is done if nodes hold journals or subscriptions.
func (w *Simnet) Close() error {
	var first error
	for _, n := range w.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, o := range w.observers {
		if o == nil {
			continue
		}
		if err := o.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type simTransport struct {
	world *Simnet
	id    ReplicaID
}

func (t *simTransport) simulated() bool { return true }

func (t *simTransport) attach(n *Node) error {
	if n.cfg.ID != t.id {
		return fmt.Errorf("sft: simnet slot %d attached to node %d", t.id, n.cfg.ID)
	}
	if int(t.id) >= t.world.cfg.N {
		return fmt.Errorf("sft: slot %d outside simnet of %d", t.id, t.world.cfg.N)
	}
	if n.cfg.N != t.world.cfg.N {
		return fmt.Errorf("sft: node cluster size %d != simnet size %d", n.cfg.N, t.world.cfg.N)
	}
	if t.world.nodes[t.id] != nil {
		return fmt.Errorf("sft: simnet slot %d already attached", t.id)
	}
	if n.pipeline {
		return fmt.Errorf("sft: under Simnet the verification pipeline is simulation-wide; set SimnetConfig.VerifyPipeline instead of WithVerifyPipeline")
	}
	t.world.nodes[t.id] = n
	n.world = t.world
	t.world.sim.SetEngine(t.id, n.eng)
	return nil
}

// Package sft is the public face of this repository: one builder API that
// composes everything the internal packages provide — consensus engines,
// the paper's strengthened commit rule, signature schemes, transports,
// durability, and the verification pipeline — into a running replica, plus
// a subscription API for consuming commits the way the paper intends.
//
// The paper's core idea (Strengthened Fault Tolerance, ICDCS 2021) is that
// a commit is not binary: each committed block carries a strength x — the
// number of Byzantine faults the commit tolerates — that starts at f and
// rises toward 2f as the chain extends the block. This package makes that
// knob first-class: CommitRule carries the x-strong threshold a client acts
// on, Node.Commits returns a stream of CommitEvents whose Strength field
// rises over time, and Node.WaitStrength blocks until a specific block is
// safe against the number of faults the caller cares about.
//
// Building a replica:
//
//	node, err := sft.New(sft.Config{ID: 0, N: 4, Seed: 42},
//		sft.WithEngine(sft.DiemBFT),
//		sft.WithScheme(sft.SchemeEd25519),
//		sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: ":7000", Peers: peers})),
//		sft.WithWAL("/var/lib/sft/replica-0"),
//		sft.WithVerifyPipeline(0),
//		sft.WithCommitRule(sft.CommitRule{MinStrength: 2}),
//	)
//
// Three transports cover the repository's three execution substrates: TCP
// (real sockets, cmd/sftnode), NewLocalNet (in-process channels), and
// NewSimnet (the deterministic discrete-event simulator the experiments run
// on — attach n nodes, then drive virtual time with Simnet.Run).
//
// The access tier scales the read path past the committee: NewObserver
// composes a non-voting follower that derives the same commit-strength
// stream a replica reports, NewGateway fans proof-carrying strength events
// out to many subscribers, and Subscribe is the client end, re-verifying
// every event's Section 5 proof so a lying gateway is caught rather than
// believed (see access.go).
//
// See doc.go at the repository root for the full option matrix and the
// commit-strength subscription semantics.
package sft

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Version identifies the facade API generation (cmd/sftnode -version).
const Version = "0.6.0"

// Re-exported chain types: the facade's vocabulary is the same as the
// engines', so values flow between the public API and the internal packages
// without conversion.
type (
	// Block is one block of the chain.
	Block = types.Block
	// BlockID is a block's content-derived identifier.
	BlockID = types.BlockID
	// ReplicaID numbers the replicas 0..n-1.
	ReplicaID = types.ReplicaID
	// Round is a protocol round (DiemBFT view / Streamlet epoch).
	Round = types.Round
	// Height is a chain height.
	Height = types.Height
	// Payload is a block's transaction batch.
	Payload = types.Payload
	// Transaction is one client transaction.
	Transaction = types.Transaction
	// QC is a quorum certificate.
	QC = types.QC
	// KeyRing is the cluster PKI: every replica's keys, derived from a seed.
	KeyRing = crypto.KeyRing
	// LatencyModel computes simulated delivery delays (Simnet transport).
	LatencyModel = simnet.LatencyModel
	// UniformLatency delays every delivery by Base plus uniform Jitter.
	UniformLatency = simnet.UniformModel
	// RegionLatency models geo-distributed regions with per-replica penalties.
	RegionLatency = simnet.RegionModel
	// MsgStats aggregates message counts and bytes for a Simnet run.
	MsgStats = simnet.MsgStats
	// AdversarySpec describes one composable Byzantine behavior for
	// WithAdversary (see internal/adversary for the catalog).
	AdversarySpec = adversary.Spec
	// AdversaryKind names a built-in behavior.
	AdversaryKind = adversary.Kind
)

// Built-in adversary behavior kinds, re-exported for WithAdversary. Compose
// them freely; AdversaryKinds lists all of them.
const (
	// AdversaryEquivocate proposes two conflicting blocks per led round.
	AdversaryEquivocate = adversary.Equivocate
	// AdversaryWithhold suppresses the replica's own votes.
	AdversaryWithhold = adversary.Withhold
	// AdversaryDoubleVote signs conflicting votes for competing proposals.
	AdversaryDoubleVote = adversary.DoubleVote
	// AdversaryLieMarkers claims an empty conflict history in strong-votes.
	AdversaryLieMarkers = adversary.LieMarkers
	// AdversaryForkRevive revives off-chain branches from observed votes.
	AdversaryForkRevive = adversary.ForkRevive
	// AdversaryWithholdUncontested starves rounds with a single proposal.
	AdversaryWithholdUncontested = adversary.WithholdUncontested
	// AdversaryCorruptSigs flips signature bytes on outbound messages.
	AdversaryCorruptSigs = adversary.CorruptSigs
	// AdversaryGarbage injects structurally broken messages.
	AdversaryGarbage = adversary.Garbage
	// AdversaryReplayStale rebroadcasts previously seen messages.
	AdversaryReplayStale = adversary.ReplayStale
	// AdversaryDrop discards outbound transmissions with probability P.
	AdversaryDrop = adversary.Drop
	// AdversaryDelay postpones outbound transmissions.
	AdversaryDelay = adversary.Delay
	// AdversaryDuplicate re-sends outbound transmissions with probability P.
	AdversaryDuplicate = adversary.Duplicate
	// AdversaryTimeoutSpam floods peers with validly signed far-future
	// timeouts — the buffer-exhaustion attack WithPacemaker's future window
	// and per-peer cap bound.
	AdversaryTimeoutSpam = adversary.TimeoutSpam
	// AdversaryLieRoundEntry broadcasts round-entry announcements with
	// missing, mismatched, or fabricated justification — the round-dragging
	// attack justified round entry rejects.
	AdversaryLieRoundEntry = adversary.LieRoundEntry
	// AdversaryWrongAppHash re-signs the replica's votes over a fabricated
	// execution state root — the state-fork attack execute-before-vote
	// certification exists to catch. Honest leaders drop the mismatching
	// votes when forming QCs, so at t <= f it costs the liar its vote and
	// nothing else (requires WithApp on the honest replicas to matter).
	AdversaryWrongAppHash = adversary.WrongAppHash
)

// AdversaryKinds lists every built-in behavior kind.
var AdversaryKinds = adversary.Kinds

// SymmetricLatency builds the paper's symmetric geo-distributed model: n
// replicas spread over `regions` equal regions, intra-region delay intra,
// inter-region delay delta, uniform jitter.
func SymmetricLatency(n, regions int, intra, delta, jitter time.Duration) *RegionLatency {
	return simnet.NewSymmetricModel(n, regions, intra, delta, jitter)
}

// Scheme selects the signature implementation.
type Scheme string

// Supported signature schemes.
const (
	// SchemeEd25519 is real crypto; the default. Signature verification is
	// always on under it.
	SchemeEd25519 Scheme = crypto.SchemeEd25519
	// SchemeSim is the fast deterministic toy scheme the large simulations
	// use; signature verification defaults to off since all traffic is
	// generated by trusted in-process engines.
	SchemeSim Scheme = crypto.SchemeSim
	// Ed25519Aggregate signs and verifies individual messages exactly like
	// SchemeEd25519 and additionally compacts every formed certificate into
	// the constant-size aggregated form (one 32-byte aggregated signature
	// plus a signer bitmap instead of the per-vote signature vector) — the
	// scheme for 100+-replica committees, where vector certificates dominate
	// both wire bytes and verify CPU. Verification is always on under it.
	Ed25519Aggregate Scheme = crypto.SchemeEd25519Agg
	// SimAggregate is SchemeSim plus compact aggregated certificates, for
	// large deterministic simulations that want the compact wire form
	// without real vote-transit crypto.
	SimAggregate Scheme = crypto.SchemeSimAgg
)

// Engine selects the consensus protocol.
type Engine int

// Supported engines.
const (
	// DiemBFT is the production-HotStuff protocol of the paper's Figure 2
	// with the SFT extension of Figure 4 (round-keyed markers).
	DiemBFT Engine = iota + 1
	// Streamlet is the lock-step protocol of Figure 10 with the
	// SFT-Streamlet extension of Appendix D (height-keyed markers).
	Streamlet
)

func (e Engine) String() string {
	switch e {
	case DiemBFT:
		return "diembft"
	case Streamlet:
		return "streamlet"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Mode selects which chain coordinate strong-vote markers are compared
// against — the two instantiations of the paper's commit rule.
type Mode int

// Commit-rule modes.
const (
	// ModeRound keys markers by round (Section 3.2) — the DiemBFT rule.
	ModeRound Mode = iota + 1
	// ModeHeight keys markers by height (Appendix D) — the Streamlet rule.
	ModeHeight
)

// VoteFlavor selects the strong-vote encoding (DiemBFT only).
type VoteFlavor int

// Strong-vote flavors.
const (
	// VoteMarkers attaches the single marker of Section 3.2 (default).
	VoteMarkers VoteFlavor = iota + 1
	// VoteIntervals attaches the generalized interval set of Section 3.4,
	// which strengthens liveness from benign-only (Theorem 2) to Byzantine
	// (Theorem 3).
	VoteIntervals
)

// CommitRule is the paper's strengthened commit rule as a first-class
// value: how endorsements are keyed, how strong-votes are encoded, and the
// strength threshold x the client acts on. The zero value means "the
// engine's natural rule, deliver every strength level".
type CommitRule struct {
	// Mode keys the rule by round (DiemBFT) or height (Streamlet). Zero
	// selects the engine's natural mode; a non-zero Mode that contradicts
	// the engine is rejected by New.
	Mode Mode
	// Votes selects marker (default) or interval strong-votes. Intervals
	// are DiemBFT-only.
	Votes VoteFlavor
	// IntervalWindow clips interval votes to the last window rounds
	// (0 = unbounded) — Section 3.4's size/liveness trade-off.
	IntervalWindow Round
	// Horizon bounds the endorsement walk depth (0 = unbounded).
	Horizon int
	// MinStrength is the x-strong threshold this node's subscribers act on:
	// CommitEvents below it are not delivered (the regular commit is
	// F-strong, so 0 or F delivers everything). It does not change the
	// protocol — only what the subscription surfaces.
	MinStrength int
}

// Config identifies one replica of an n = 3f+1 cluster.
type Config struct {
	// ID is this replica, in [0, N).
	ID ReplicaID
	// N is the cluster size; must be 3f+1.
	N int
	// Seed derives the cluster's PKI (all replicas must agree on it; a real
	// deployment would exchange public keys instead) and, under the Simnet
	// transport, seeds nothing — the simulation seed lives in SimnetConfig.
	Seed int64
}

// F returns the fault tolerance f = (N-1)/3.
func (c Config) F() int { return (c.N - 1) / 3 }

// NewKeyRing derives the cluster PKI from a seed — the same derivation New
// performs internally. Share one ring across in-process nodes via
// WithKeyRing to pay the key-generation cost once.
func NewKeyRing(n int, seed int64, scheme Scheme) (*KeyRing, error) {
	return crypto.NewKeyRing(n, seed, string(scheme))
}

// New composes a replica node from the configuration and options: engine,
// commit rule, signature scheme, transport, durability, verification
// pipeline and metrics all flow through this one path. The returned Node is
// not yet processing events — call Run (TCP/LocalNet transports) or drive
// the Simnet it is attached to.
func New(cfg Config, opts ...Option) (*Node, error) {
	if cfg.N < 4 || (cfg.N-1)%3 != 0 {
		return nil, fmt.Errorf("sft: N=%d must be 3f+1 with f >= 1", cfg.N)
	}
	if int(cfg.ID) < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("sft: ID=%d outside [0, %d)", cfg.ID, cfg.N)
	}
	s := defaultSettings()
	for _, opt := range opts {
		opt(&s)
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.transport == nil {
		return nil, fmt.Errorf("sft: a transport is required: WithTransport(sft.TCP(...)), sft.NewLocalNet(n).Transport(id), or sft.NewSimnet(...).Transport(id)")
	}
	rule, err := resolveRule(s.engine, s.rule)
	if err != nil {
		return nil, err
	}

	ring := s.ring
	if ring == nil {
		ring, err = crypto.NewKeyRing(cfg.N, cfg.Seed, string(s.scheme))
		if err != nil {
			return nil, err
		}
	} else if ring.N() != cfg.N {
		// Fail at construction: a short ring would otherwise panic deep in
		// the event loop when an out-of-range replica first signs.
		return nil, fmt.Errorf("sft: key ring holds %d keys, cluster has %d replicas", ring.N(), cfg.N)
	}
	verify := s.scheme == SchemeEd25519 || s.scheme == Ed25519Aggregate || s.verify

	n := &Node{
		cfg:      cfg,
		rule:     rule,
		metrics:  s.metrics,
		observer: s.observer,
		mempool:  s.mempool,
		strength: make(map[BlockID]int),
	}
	if n.metrics == nil {
		n.metrics = &Metrics{}
	}

	// Observability: built before the WAL opens so flush latencies of the
	// recovery replay's first appends are already counted, and before the
	// transport attaches so the network and prevalidation layers see it.
	if s.obsEnabled {
		n.obs = obs.New(obs.Options{
			N:             cfg.N,
			F:             cfg.F(),
			TraceCapacity: s.obsCfg.TraceCapacity,
		})
		n.health = &healthState{mon: health.NewMonitor(cfg.N, types.Round(s.obsCfg.HealthWindow))}
	}

	// Durability: open (and replay) the WAL before the engine is built so
	// the journal rides into the engine spec and the recovered state can be
	// restored into the fresh engine. Real transports fsync; the simulator
	// models in-process kills, where page-cache durability is faithful.
	var journal *journalHandle
	var recovery *core.Recovery
	if s.walDir != "" {
		j, rec, err := compose.OpenWALObserved(s.walDir, !s.transport.simulated(), walObserver(n.obs))
		if err != nil {
			return nil, err
		}
		journal = &journalHandle{j: j}
		if !rec.Empty() {
			info := recoveryInfo(rec)
			n.restored = &info
		}
		n.walDir = s.walDir
		recovery = rec
	}

	spec := compose.Spec{
		Protocol:         composeProtocol(s.engine),
		ID:               cfg.ID,
		N:                cfg.N,
		F:                cfg.F(),
		Signer:           ring.Signer(cfg.ID),
		Verifier:         ring,
		VerifySignatures: verify,
		SFT:              true,
		Horizon:          rule.Horizon,
		IntervalWindow:   rule.IntervalWindow,
		RoundTimeout:     s.roundTimeout,
		ExtraWait:        s.extraWait,
		ExtraWaitFor:     s.extraWaitFor,
		MaxCommitLog:     s.maxCommitLog,
		PruneKeep:        s.pruneKeep,
		Delta:            s.delta,
		DisableEcho:      s.disableEcho,
		Payload:          s.payload,
		PayloadNow:       s.payloadNow,
		App:              s.app,
		BatchWorkers:     s.batchWorkers(cfg.N),
		Obs:              n.obs,
	}
	if s.engine == DiemBFT && rule.Votes == VoteIntervals {
		spec.VoteMode = diembft.VoteIntervals
	}
	if s.pacemaker != (PacemakerConfig{}) {
		if s.engine != DiemBFT {
			return nil, fmt.Errorf("sft: WithPacemaker is DiemBFT-only (Streamlet rounds are wall-clock slots)")
		}
		spec.ActivePacemaker = s.pacemaker.Active
		spec.TimeoutWindow = s.pacemaker.Window
		spec.PerPeerTimeoutCap = s.pacemaker.PerPeerTimeoutCap
		spec.LeaderReputationWindow = s.pacemaker.LeaderReputation
	}
	if len(s.adversary) > 0 {
		spec.Adversary = s.adversary
		spec.AdversarySeed = cfg.Seed*1000003 + int64(cfg.ID)
		spec.AdversaryPeers = s.adversaryPeers
	}
	if journal != nil {
		spec.Journal = journal.j
	}
	eng, err := compose.Engine(spec)
	if err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, err
	}
	if journal != nil {
		// The replayed recovery is only needed here; it is not retained, so
		// a large replayed chain can be collected once the node is built.
		if err := compose.Restore(eng, recovery); err != nil {
			journal.Close()
			return nil, err
		}
	}
	n.spec = spec
	n.eng = eng
	n.journal = journal
	n.pipeline = s.pipeline
	n.pipelineWorkers = s.pipelineWorkers

	if err := s.transport.attach(n); err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, err
	}
	return n, nil
}

// resolveRule applies engine-dependent defaults and rejects contradictions:
// the commit rule's mode is a property of the protocol (round-keyed markers
// for DiemBFT, height-keyed for Streamlet), so asking for the other one is
// a configuration error, not a silent fallback.
func resolveRule(eng Engine, r CommitRule) (CommitRule, error) {
	natural := ModeRound
	if eng == Streamlet {
		natural = ModeHeight
	}
	if r.Mode == 0 {
		r.Mode = natural
	}
	if r.Mode != natural {
		return r, fmt.Errorf("sft: engine %v uses the %s commit rule; CommitRule.Mode requests %s", eng, modeName(natural), modeName(r.Mode))
	}
	if r.Votes == 0 {
		r.Votes = VoteMarkers
	}
	if r.Votes == VoteIntervals && eng != DiemBFT {
		return r, fmt.Errorf("sft: interval strong-votes are DiemBFT-only (Section 3.4)")
	}
	if r.MinStrength < 0 {
		return r, fmt.Errorf("sft: MinStrength must be >= 0")
	}
	return r, nil
}

func modeName(m Mode) string {
	if m == ModeHeight {
		return "height-keyed (Streamlet)"
	}
	return "round-keyed (DiemBFT)"
}

func composeProtocol(e Engine) compose.Protocol {
	if e == Streamlet {
		return compose.Streamlet
	}
	return compose.DiemBFT
}

// walObserver adapts an obs sink (possibly nil) into the WAL's flush hook.
// A nil func keeps the WAL's zero-overhead fast path.
func walObserver(o *obs.Obs) func(d time.Duration, bytes int, synced bool) {
	if o == nil {
		return nil
	}
	return o.ObserveWALFlush
}

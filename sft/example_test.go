package sft_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/sft"
)

// ExampleNew composes a 4-replica SFT-DiemBFT cluster on the deterministic
// Simnet fabric and counts commits and the strongest commit level through a
// shared metrics sink. Fixed seeds make the output reproducible.
func ExampleNew() {
	const (
		n    = 4
		seed = 42
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	metrics := &sft.Metrics{}
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		_, err := sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithEngine(sft.DiemBFT),
			sft.WithScheme(sft.SchemeSim), // fast deterministic toy signatures
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(500*time.Millisecond),
			sft.WithMetrics(metrics),
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	world.Run(2 * time.Second)

	snap := metrics.Snapshot()
	f := (n - 1) / 3
	fmt.Printf("committed %d blocks across %d replicas\n", snap.Commits, n)
	fmt.Printf("strongest commit level: %d (max possible 2f = %d)\n", snap.MaxStrength, 2*f)
	// Output:
	// committed 716 blocks across 4 replicas
	// strongest commit level: 2 (max possible 2f = 2)
}

// ExampleNew_streamlet runs the same facade against the Streamlet engine:
// the commit rule switches to height-keyed markers (Appendix D), selected
// explicitly here via WithCommitRule.
func ExampleNew_streamlet() {
	const (
		n    = 4
		seed = 11
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 4 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	metrics := &sft.Metrics{}
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		_, err := sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithEngine(sft.Streamlet),
			sft.WithCommitRule(sft.CommitRule{Mode: sft.ModeHeight}),
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithDelta(20*time.Millisecond), // lock-step rounds of 2∆
			sft.WithMetrics(metrics),
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	world.Run(4 * time.Second)

	snap := metrics.Snapshot()
	fmt.Printf("committed %d blocks\n", snap.Commits)
	fmt.Printf("strongest commit level: %d\n", snap.MaxStrength)
	// Output:
	// committed 396 blocks
	// strongest commit level: 2
}

// ExampleNode_waitStrength shows the paper's per-transaction resilience
// choice: act on a block only once it tolerates the number of Byzantine
// faults the caller cares about. The first committed block is captured from
// the commit stream; WaitStrength returns as soon as the block's strength
// reaches 2f.
func ExampleNode_waitStrength() {
	const (
		n    = 4
		f    = 1
		seed = 5
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{
		N:       n,
		Latency: &sft.UniformLatency{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	var first sft.BlockID
	var nodes [n]*sft.Node
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(500 * time.Millisecond),
		}
		if id == 0 {
			opts = append(opts, sft.WithObserver(func(ev sft.CommitEvent) {
				if ev.Regular && first == (sft.BlockID{}) {
					first = ev.Block.ID()
				}
			}))
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}
	world.Run(2 * time.Second)

	// The deterministic run already strengthened the block, so the wait
	// returns immediately; on live transports it blocks until the chain
	// catches up.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := nodes[0].WaitStrength(ctx, first, 2*f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first block is %d-strong (2f = %d)\n", nodes[0].Strength(first), 2*f)
	// Output:
	// first block is 2-strong (2f = 2)
}

package sft_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/sft"
)

func mustNodeErr(t *testing.T, wantSub string, cfg sft.Config, opts ...sft.Option) {
	t.Helper()
	_, err := sft.New(cfg, opts...)
	if err == nil {
		t.Fatalf("New succeeded; want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestNewValidation(t *testing.T) {
	world, err := sft.NewSimnet(sft.SimnetConfig{N: 4, Latency: &sft.UniformLatency{Base: time.Millisecond}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok := sft.Config{ID: 0, N: 4, Seed: 1}

	mustNodeErr(t, "3f+1", sft.Config{ID: 0, N: 5, Seed: 1})
	mustNodeErr(t, "outside", sft.Config{ID: 9, N: 4, Seed: 1})
	mustNodeErr(t, "transport is required", ok)
	mustNodeErr(t, "unknown engine", ok, sft.WithEngine(sft.Engine(9)), sft.WithTransport(world.Transport(0)))
	mustNodeErr(t, "unknown scheme", ok, sft.WithScheme("rsa"), sft.WithTransport(world.Transport(0)))
	// The commit rule's mode is a property of the engine.
	mustNodeErr(t, "commit rule", ok,
		sft.WithCommitRule(sft.CommitRule{Mode: sft.ModeHeight}),
		sft.WithTransport(world.Transport(0)))
	mustNodeErr(t, "DiemBFT-only", ok,
		sft.WithEngine(sft.Streamlet),
		sft.WithCommitRule(sft.CommitRule{Votes: sft.VoteIntervals}),
		sft.WithTransport(world.Transport(0)))
	// Under Simnet the pipeline is a simulation-wide, not per-node, choice.
	mustNodeErr(t, "SimnetConfig.VerifyPipeline", ok,
		sft.WithVerifyPipeline(2),
		sft.WithTransport(world.Transport(0)))
	// Slot/identity mismatches.
	mustNodeErr(t, "slot 1 attached to node 0", ok, sft.WithTransport(world.Transport(1)))
	// A shared key ring must cover the whole cluster.
	shortRing, err := sft.NewKeyRing(4, 1, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	mustNodeErr(t, "key ring holds 4 keys", sft.Config{ID: 0, N: 7, Seed: 1},
		sft.WithScheme(sft.SchemeSim), sft.WithKeyRing(shortRing), sft.WithTransport(world.Transport(0)))

	// A valid node attaches; the same slot cannot be attached twice.
	if _, err := sft.New(ok, sft.WithScheme(sft.SchemeSim), sft.WithTransport(world.Transport(0))); err != nil {
		t.Fatal(err)
	}
	mustNodeErr(t, "already attached", ok, sft.WithScheme(sft.SchemeSim), sft.WithTransport(world.Transport(0)))
}

// TestLocalNetSubscriptions runs a real (goroutine-per-replica) cluster over
// in-process channels and exercises the subscription API end to end:
// Commits ordering, WaitStrength, and close-on-shutdown semantics.
func TestLocalNetSubscriptions(t *testing.T) {
	const (
		n    = 4
		f    = 1
		seed = 17
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	lan := sft.NewLocalNet(n)
	defer lan.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithScheme(sft.SchemeSim),
			sft.WithKeyRing(ring),
			sft.WithTransport(lan.Transport(id)),
			sft.WithRoundTimeout(200*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	events := nodes[0].Commits()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(ctx); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}

	// First regular commit from the stream, then wait for it to strengthen
	// to 2f.
	var first sft.BlockID
	var prevHeight sft.Height
	deadline := time.After(30 * time.Second)
	for first == (sft.BlockID{}) {
		select {
		case ev := <-events:
			if ev.Regular {
				if ev.Height != prevHeight+1 {
					t.Fatalf("regular commits out of order: height %d after %d", ev.Height, prevHeight)
				}
				prevHeight = ev.Height
				first = ev.Block.ID()
			}
		case <-deadline:
			t.Fatal("no commit within 30s")
		}
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := nodes[0].WaitStrength(wctx, first, 2*f); err != nil {
		t.Fatalf("WaitStrength: %v", err)
	}
	if got := nodes[0].Strength(first); got < 2*f {
		t.Fatalf("Strength(first) = %d after WaitStrength(2f)", got)
	}

	// Shutdown closes the stream.
	cancel()
	wg.Wait()
	for range events {
	}
	snap := nodes[0].Metrics()
	if snap.Commits == 0 || snap.MaxStrength < 2*f {
		t.Fatalf("metrics snapshot %+v lacks commits or strength", snap)
	}
}

// TestLocalNetAggregateScheme runs a real goroutine-per-replica cluster
// with the aggregating ed25519 scheme: every certificate formed on the wire
// is a compact (bitmap + aggregate signature) QC, verification is on, and
// commits must still flow and strengthen to 2f.
func TestLocalNetAggregateScheme(t *testing.T) {
	const (
		n    = 4
		f    = 1
		seed = 23
	)
	ring, err := sft.NewKeyRing(n, seed, sft.Ed25519Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	lan := sft.NewLocalNet(n)
	defer lan.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithScheme(sft.Ed25519Aggregate),
			sft.WithKeyRing(ring),
			sft.WithTransport(lan.Transport(id)),
			sft.WithRoundTimeout(200*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	events := nodes[0].Commits()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(ctx); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}

	var first sft.BlockID
	deadline := time.After(30 * time.Second)
	for first == (sft.BlockID{}) {
		select {
		case ev := <-events:
			if ev.Regular {
				first = ev.Block.ID()
			}
		case <-deadline:
			t.Fatal("no commit within 30s under the aggregate scheme")
		}
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := nodes[0].WaitStrength(wctx, first, 2*f); err != nil {
		t.Fatalf("WaitStrength under aggregate scheme: %v", err)
	}

	cancel()
	wg.Wait()
	for range events {
	}
}

// TestMinStrengthFilter pins the commit rule's client-side threshold: a
// subscriber under MinStrength 2f sees only 2f-strong events.
func TestMinStrengthFilter(t *testing.T) {
	const (
		n    = 4
		f    = 1
		seed = 23
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{N: n, Latency: &sft.UniformLatency{Base: 2 * time.Millisecond}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var got []sft.CommitEvent
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(200 * time.Millisecond),
		}
		if id == 0 {
			opts = append(opts,
				sft.WithCommitRule(sft.CommitRule{MinStrength: 2 * f}),
				sft.WithObserver(func(ev sft.CommitEvent) { got = append(got, ev) }),
			)
		}
		if _, err := sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...); err != nil {
			t.Fatal(err)
		}
	}
	world.Run(3 * time.Second)
	if len(got) == 0 {
		t.Fatal("no events at MinStrength 2f in a fault-free run")
	}
	for _, ev := range got {
		if ev.Strength < 2*f {
			t.Fatalf("event below threshold leaked: %+v", ev)
		}
	}
}

// TestSimnetCrashRestartWAL exercises the facade's durability path: a
// WAL-backed victim is killed mid-run, restored via Simnet.RestartAt, and
// must catch back up without ever contradicting the observer's chain.
func TestSimnetCrashRestartWAL(t *testing.T) {
	const (
		n      = 4
		seed   = 31
		victim = sft.ReplicaID(2)
	)
	world, err := sft.NewSimnet(sft.SimnetConfig{N: n, Latency: &sft.UniformLatency{Base: 2 * time.Millisecond, Jitter: time.Millisecond}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	chains := make(map[sft.ReplicaID]map[sft.Height]sft.BlockID)
	observer := func(id sft.ReplicaID) sft.Option {
		chains[id] = make(map[sft.Height]sft.BlockID)
		return sft.WithObserver(func(ev sft.CommitEvent) {
			if ev.Regular {
				chains[id][ev.Height] = ev.Block.ID()
			}
		})
	}
	nodes := make([]*sft.Node, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.SchemeSim),
			sft.WithTransport(world.Transport(id)),
			sft.WithRoundTimeout(200 * time.Millisecond),
			observer(id),
		}
		if id == victim {
			opts = append(opts, sft.WithWAL(t.TempDir()))
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed}, opts...)
		if err != nil {
			t.Fatal(err)
		}
	}
	// RestartAt on a WAL-less node is refused.
	if err := world.RestartAt(0, time.Second, nil); err == nil {
		t.Fatal("RestartAt without WAL succeeded")
	}

	world.CrashAt(victim, 2*time.Second)
	var restored sft.RecoveryInfo
	if err := world.RestartAt(victim, 4*time.Second, func(rec sft.RecoveryInfo) { restored = rec }); err != nil {
		t.Fatal(err)
	}
	world.Run(8 * time.Second)

	if restored.Blocks == 0 || restored.Votes == 0 {
		t.Fatalf("restart recovered nothing: %+v", restored)
	}
	obs, vic := chains[0], chains[victim]
	if len(vic) == 0 {
		t.Fatal("victim committed nothing")
	}
	for h, id := range vic {
		if other, ok := obs[h]; ok && other != id {
			t.Fatalf("height %d: victim committed %v, observer %v", h, id, other)
		}
	}
	// The restored victim must have caught back up with the cluster.
	if nodes[victim].CommittedHeight() < nodes[0].CommittedHeight()-5 {
		t.Fatalf("victim height %d lags observer %d", nodes[victim].CommittedHeight(), nodes[0].CommittedHeight())
	}
	if err := world.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPFacade runs a small wall-clock cluster over real sockets with the
// verification pipeline on, using the ephemeral-port + SetPeers pattern.
func TestTCPFacade(t *testing.T) {
	const (
		n    = 4
		seed = 47
	)
	ring, err := sft.NewKeyRing(n, seed, sft.SchemeEd25519)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*sft.Node, n)
	peers := make(map[sft.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		id := sft.ReplicaID(i)
		nodes[i], err = sft.New(sft.Config{ID: id, N: n, Seed: seed},
			sft.WithScheme(sft.SchemeEd25519),
			sft.WithKeyRing(ring),
			sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: "127.0.0.1:0"})),
			sft.WithVerifyPipeline(0),
			sft.WithRoundTimeout(500*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = nodes[i].Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(ctx); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}
	wg.Wait()
	snap := nodes[0].Metrics()
	if snap.Commits == 0 {
		t.Fatal("TCP cluster committed nothing in 3s")
	}
	if snap.SpoofedFrames != 0 || snap.MalformedFrames != 0 || snap.VerifyDroppedFrames != 0 {
		t.Fatalf("honest cluster dropped frames: %+v", snap)
	}
}

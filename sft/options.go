package sft

import (
	"fmt"
	rt "runtime"
	"time"
)

// Option configures New. Options span every layer; see the package comment
// (and doc.go at the repository root) for the full matrix.
type Option func(*settings)

// settings is the resolved option set. Defaults mirror what the repository's
// commands ran with before the facade existed, so facade-built nodes behave
// identically to the old hand-wired ones.
type settings struct {
	err error

	engine    Engine
	rule      CommitRule
	scheme    Scheme
	verify    bool // force signature verification even under SchemeSim
	ring      *KeyRing
	transport Transport

	walDir string

	pipeline        bool
	pipelineWorkers int

	metrics  *Metrics
	observer func(CommitEvent)

	adversary      []AdversarySpec
	adversaryPeers []ReplicaID

	obsEnabled bool
	obsCfg     ObsConfig

	payload      func(Round) Payload
	payloadNow   func(Round, time.Duration) Payload
	app          func() StateMachine
	mempool      *Mempool
	roundTimeout time.Duration
	extraWait    time.Duration
	extraWaitFor func(Round) time.Duration
	delta        time.Duration
	disableEcho  bool
	maxCommitLog int
	pruneKeep    Height
	pacemaker    PacemakerConfig
}

func defaultSettings() settings {
	return settings{
		engine:       DiemBFT,
		scheme:       SchemeEd25519,
		roundTimeout: time.Second,
		delta:        100 * time.Millisecond,
	}
}

func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// batchWorkers resolves the per-QC signature-verification concurrency the
// engine is built with. The pipeline's TCP mode verifies on n-1 concurrent
// per-peer reader goroutines, so the auto heuristic divides GOMAXPROCS
// across them — the same sizing cmd/sftnode used before the facade.
func (s *settings) batchWorkers(n int) int {
	if !s.pipeline {
		return 0
	}
	if s.pipelineWorkers > 0 {
		return s.pipelineWorkers
	}
	return max(1, rt.GOMAXPROCS(0)/max(1, n-1))
}

// WithEngine selects the consensus protocol: DiemBFT (default) or
// Streamlet.
func WithEngine(e Engine) Option {
	return func(s *settings) {
		if e != DiemBFT && e != Streamlet {
			s.fail(fmt.Errorf("sft: unknown engine %v (want sft.DiemBFT or sft.Streamlet)", e))
			return
		}
		s.engine = e
	}
}

// WithCommitRule sets the strengthened commit rule: marker mode
// (round/height), strong-vote flavor, endorsement horizon, and the
// x-strong threshold subscriptions act on. The zero rule — the default —
// is the engine's natural mode with marker votes, delivering every
// strength level.
func WithCommitRule(r CommitRule) Option {
	return func(s *settings) { s.rule = r }
}

// WithScheme selects the signature scheme: SchemeEd25519 (default, real
// crypto, verification always on), SchemeSim (fast deterministic toy
// scheme, verification off — the setting large simulations use), or their
// aggregating variants Ed25519Aggregate / SimAggregate, which additionally
// compact every formed certificate into the constant-size aggregated form
// (recommended at n ≳ 64, where per-vote signature vectors dominate wire
// bytes and verify CPU).
func WithScheme(sc Scheme) Option {
	return func(s *settings) {
		switch sc {
		case SchemeEd25519, SchemeSim, Ed25519Aggregate, SimAggregate:
		default:
			s.fail(fmt.Errorf("sft: unknown scheme %q (want sft.SchemeEd25519, sft.SchemeSim, sft.Ed25519Aggregate or sft.SimAggregate)", sc))
			return
		}
		s.scheme = sc
	}
}

// WithSignatureVerification forces full signature checking even under
// SchemeSim (ed25519 always verifies). The determinism tests use it to pin
// verified and unverified runs against each other.
func WithSignatureVerification() Option {
	return func(s *settings) { s.verify = true }
}

// WithKeyRing shares a pre-derived PKI across in-process nodes so the
// ed25519 key generation for n replicas happens once per cluster instead of
// once per node. The ring must match Config.N and the cluster's seed/scheme.
func WithKeyRing(ring *KeyRing) Option {
	return func(s *settings) { s.ring = ring }
}

// WithTransport selects how the node reaches its peers: sft.TCP for real
// sockets, NewLocalNet(...).Transport(id) for in-process channels, or
// NewSimnet(...).Transport(id) for the deterministic simulator. Required.
func WithTransport(t Transport) Option {
	return func(s *settings) { s.transport = t }
}

// WithWAL makes the node durable: every block, own vote, certificate, lock
// and commit its safety depends on is write-ahead-logged to dir (fsynced
// under real transports, page-cache under Simnet) and flushed before the
// event's outputs leave the replica. Creating a node over an existing WAL
// recovers the pre-crash state, re-joins via state sync, and never votes in
// contradiction to its pre-crash markers; Node.Restored reports what was
// recovered. Node.Close (and Run, on the way out) flushes and closes the
// log.
func WithWAL(dir string) Option {
	return func(s *settings) {
		if dir == "" {
			s.fail(fmt.Errorf("sft: WithWAL requires a directory"))
			return
		}
		s.walDir = dir
	}
}

// WithVerifyPipeline takes signature verification — the dominant cost under
// real crypto — off the engine's single-threaded event loop. Under TCP,
// frames are verified on their per-peer reader goroutines and a cold
// certificate's 2f+1 signatures are batch-checked by up to `workers`
// goroutines (0 = GOMAXPROCS divided across the n-1 readers). Under a
// LocalNet, a bounded worker pool of `workers` goroutines (0 = GOMAXPROCS)
// prevalidates between the transport and the loop. Under Simnet the split
// runs synchronously and is enabled per-simulation via
// SimnetConfig.VerifyPipeline, not per node — New rejects the combination
// to keep determinism decisions in one place.
func WithVerifyPipeline(workers int) Option {
	return func(s *settings) {
		if workers < 0 {
			s.fail(fmt.Errorf("sft: negative pipeline workers"))
			return
		}
		s.pipeline = true
		s.pipelineWorkers = workers
	}
}

// WithAdversary makes THIS node Byzantine: its honest engine is wrapped
// with the composed behavior chain (equivocation, vote withholding,
// double-signing, marker lying, fork revival, signature corruption, garbage
// injection, replay, drop/delay/duplicate — see the Adversary* kinds).
// Behaviors act at the message level, so they work identically for both
// engines and under every transport. This is an adversarial-TESTING surface:
// use it to subject honest nodes to Byzantine peers in integration tests
// and simulations; see also the harness scenario fuzzer
// (internal/harness.RunFuzz) and `sftbench -experiment adversary`.
func WithAdversary(specs ...AdversarySpec) Option {
	return func(s *settings) {
		if len(specs) == 0 {
			s.fail(fmt.Errorf("sft: WithAdversary requires at least one behavior"))
			return
		}
		for _, spec := range specs {
			if _, err := spec.Build(); err != nil {
				s.fail(fmt.Errorf("sft: %w", err))
				return
			}
		}
		s.adversary = specs
	}
}

// WithAdversaryPeers tells a Byzantine node who its co-conspirators are
// (coalition-aware behaviors like fork revival coordinate through it). The
// paper's adversary is a coordinating coalition, so this knowledge is part
// of the model. Optional; meaningful only together with WithAdversary.
func WithAdversaryPeers(peers ...ReplicaID) Option {
	return func(s *settings) { s.adversaryPeers = peers }
}

// WithMetrics attaches a shared metrics sink: the node counts its commits,
// strength updates, committed height and peak strength into m. Several
// nodes may share one sink. Without this option the node allocates its own;
// either way Node.Metrics returns a snapshot.
func WithMetrics(m *Metrics) Option {
	return func(s *settings) {
		if m == nil {
			s.fail(fmt.Errorf("sft: nil metrics sink"))
			return
		}
		s.metrics = m
	}
}

// ObsConfig tunes WithObservability. The zero value is a sensible default.
type ObsConfig struct {
	// TraceCapacity bounds the block-lifecycle ring buffer behind /tracez
	// (default 256 blocks; older traces are evicted).
	TraceCapacity int
	// HealthWindow is the sliding window, in rounds, over which QC voter
	// diversity and stragglers are scored (default 2N — two full leader
	// rotations, Theorem 2's argument).
	HealthWindow Round
}

// WithObservability attaches the operator-grade observability sink: a
// metric registry instrumenting every layer (rounds, votes, QCs, commit and
// strength-rise latency histograms per level, WAL flush/fsync, per-peer
// transport frames, prevalidation), a block-lifecycle tracer, and the
// Section 5 health monitor fed from commit-event justify QCs. Read it
// through Node.Obs and Node.Health, or serve it over HTTP with
// obs.NewHandler (cmd/sftnode -obs-addr). Observation is pure — engine
// metrics are timestamped on the engine clock, so a Simnet run produces the
// same consensus trace (bit-identical fingerprint) with or without it.
func WithObservability(cfg ObsConfig) Option {
	return func(s *settings) {
		s.obsEnabled = true
		s.obsCfg = cfg
	}
}

// WithObserver registers a synchronous commit/strength observer. It runs on
// the node's event path — keep it fast, and use Commits() for heavy
// consumers. Events below CommitRule.MinStrength are filtered here too.
func WithObserver(fn func(CommitEvent)) Option {
	return func(s *settings) { s.observer = fn }
}

// WithPayload supplies block transactions: fn is called once per led round.
// nil (the default) proposes empty blocks.
func WithPayload(fn func(r Round) Payload) Option {
	return func(s *settings) { s.payload = fn }
}

// WithRoundTimeout sets the pacemaker's base round timeout (DiemBFT;
// default 1s).
func WithRoundTimeout(d time.Duration) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail(fmt.Errorf("sft: round timeout must be positive"))
			return
		}
		s.roundTimeout = d
	}
}

// WithExtraWait makes leaders sit on a formed quorum for d to fold
// straggler votes into a larger, more diverse strong-QC — the Figure 8
// trade-off knob (regular-commit latency for faster strong commits).
func WithExtraWait(d time.Duration) Option {
	return func(s *settings) { s.extraWait = d }
}

// WithExtraWaitFor is the dynamic per-round variant of WithExtraWait
// (Section 4.2): only rounds the function cares about pay the wait.
func WithExtraWaitFor(fn func(r Round) time.Duration) Option {
	return func(s *settings) { s.extraWaitFor = fn }
}

// WithDelta sets Streamlet's assumed maximum network delay ∆; rounds last
// 2∆ (default 100ms).
func WithDelta(d time.Duration) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail(fmt.Errorf("sft: delta must be positive"))
			return
		}
		s.delta = d
	}
}

// WithoutEcho disables Streamlet's O(n^3) echo relay (fine on reliable
// links, much cheaper at scale).
func WithoutEcho() Option {
	return func(s *settings) { s.disableEcho = true }
}

// WithCommitLog attaches up to k strong-commit Log entries to each
// proposal, the Section 5 mechanism light clients verify strength from.
func WithCommitLog(k int) Option {
	return func(s *settings) { s.maxCommitLog = k }
}

// WithPruneKeep prunes protocol state more than keep heights below the
// committed height, bounding memory on long runs.
func WithPruneKeep(keep Height) Option {
	return func(s *settings) { s.pruneKeep = keep }
}

// PacemakerConfig hardens DiemBFT round synchronization against liveness
// attacks (WithPacemaker).
type PacemakerConfig struct {
	// Active turns on justified round entry: every round advance broadcasts
	// a RoundEntry whose QC-or-TC justification peers validate before
	// following, and timeouts claiming rounds more than Window ahead of the
	// local round are dropped at prevalidation.
	Active bool
	// Window is the active-mode future window in rounds (0 = default 8).
	Window Round
	// PerPeerTimeoutCap bounds buffered timeout messages per peer (0 =
	// default 8). Enforced in passive mode too, so timeout-spam cannot
	// exhaust memory either way.
	PerPeerTimeoutCap int
	// LeaderReputation, when > 0, skips leaders whose most recent slot in
	// the last LeaderReputation rounds timed out (visible as round gaps on
	// the proposal's own justify ancestry), until they certify a block
	// again. Deterministic and WAL-recovery free, but it changes leader
	// schedules: with it off (the default), fixed-seed runs are bit-identical
	// to the passive baseline.
	LeaderReputation Round
}

// WithPacemaker configures the attack-hardened active pacemaker (DiemBFT
// only). The zero config is the passive paper baseline.
//
// Determinism contract: a fixed-seed simulation pins bit-identical to the
// passive baseline as long as LeaderReputation is off — Active mode only
// adds validated messages and rejections, it never changes what honest
// replicas do on an honest schedule. Turning LeaderReputation on changes
// leader schedules (that is its purpose) but remains deterministic per seed.
func WithPacemaker(cfg PacemakerConfig) Option {
	return func(s *settings) {
		if cfg.Window < 0 || cfg.PerPeerTimeoutCap < 0 || cfg.LeaderReputation < 0 {
			s.fail(fmt.Errorf("sft: pacemaker windows and caps must be non-negative"))
			return
		}
		if !cfg.Active && cfg.Window > 0 {
			s.fail(fmt.Errorf("sft: pacemaker Window requires Active"))
			return
		}
		s.pacemaker = cfg
	}
}

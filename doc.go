// Package repro is a from-scratch Go reproduction of "Strengthened Fault
// Tolerance in Byzantine Fault Tolerant Replication" (Xiang, Malkhi, Nayak,
// Ren — ICDCS 2021, arXiv:2101.03715).
//
// The repository implements SFT-DiemBFT and SFT-Streamlet — chain-based BFT
// SMR protocols whose committed blocks gain resilience from f up to 2f (out
// of n = 3f+1) as the chain extends them — together with every substrate the
// paper's evaluation depends on: the DiemBFT and Streamlet baselines, the
// Appendix B FBFT adaptation, a deterministic discrete-event network
// simulator with the paper's geo-distributed latency models, a real TCP
// runtime, Byzantine adversaries, a light-client proof system, and a
// benchmark harness regenerating every figure of the evaluation section.
//
// Start with README.md, DESIGN.md (architecture and experiment index) and
// EXPERIMENTS.md (paper-vs-measured results). The benchmarks in
// bench_test.go regenerate each figure at reduced scale; cmd/sftbench runs
// them at paper scale (n = 100, five virtual minutes).
package repro

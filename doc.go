// Package repro is a from-scratch Go reproduction of "Strengthened Fault
// Tolerance in Byzantine Fault Tolerant Replication" (Xiang, Malkhi, Nayak,
// Ren — ICDCS 2021, arXiv:2101.03715).
//
// The repository implements SFT-DiemBFT and SFT-Streamlet — chain-based BFT
// SMR protocols whose committed blocks gain resilience from f up to 2f (out
// of n = 3f+1) as the chain extends them — together with every substrate the
// paper's evaluation depends on: the DiemBFT and Streamlet baselines, the
// Appendix B FBFT adaptation, a deterministic discrete-event network
// simulator with the paper's geo-distributed latency models, a real TCP
// runtime, Byzantine adversaries, a light-client proof system, and a
// benchmark harness regenerating every figure of the evaluation section.
//
// Start with README.md (architecture map and performance notes). The
// benchmarks in bench_test.go regenerate each figure at reduced scale;
// cmd/sftbench runs them at paper scale (n = 100, five virtual minutes).
//
// # Public API: the sft facade
//
// PR 4 added the top-level sft package, the stable public surface every
// consumer builds on: sft.New(cfg, opts...) composes an engine, commit
// rule, signature scheme, transport, write-ahead log, verification
// pipeline and metrics sink into one Node, and all four commands plus all
// seven examples are wired through it (zero direct imports of
// internal/runtime, internal/diembft or internal/streamlet outside the
// facade). Engine construction itself lives in internal/compose — one
// composition path shared by the facade and the experiment harness, so
// harness measurements and facade deployments run identical engines, and
// fixed-seed facade runs are pinned bit-identical to hand-wired runs
// (sft/determinism_test.go).
//
// The option matrix:
//
//   - WithEngine(DiemBFT | Streamlet) — the consensus protocol.
//   - WithCommitRule(CommitRule{Mode, Votes, IntervalWindow, Horizon,
//     MinStrength}) — the paper's strengthened commit rule as a value:
//     round-keyed (DiemBFT, §3.2) or height-keyed (Streamlet, Appendix D)
//     markers, marker vs interval strong-votes (§3.4), the endorsement
//     horizon, and the x-strong threshold subscribers act on. Mode is
//     validated against the engine: asking DiemBFT for the height rule is
//     an error, not a fallback.
//   - WithScheme(SchemeEd25519 | SchemeSim), WithSignatureVerification,
//     WithKeyRing — the PKI layer (ed25519 always verifies; sim is the
//     fast deterministic scheme the large simulations use).
//   - WithTransport(TCP(...)) / NewLocalNet(n).Transport(id) /
//     NewSimnet(cfg).Transport(id) — real sockets, in-process channels, or
//     the deterministic discrete-event fabric (which adds CrashAt/RestartAt
//     kill-and-recover scheduling and simulation-wide VerifyPipeline).
//   - WithWAL(dir) — durability: the node write-ahead-logs everything its
//     safety depends on, recovers it on restart (Node.Restored), and
//     flushes/closes the log in Node.Close and on Run's way out.
//   - WithVerifyPipeline(workers) — signature checking off the event loop
//     (per-peer reader goroutines under TCP, a bounded worker pool under
//     LocalNet), with batched cold-QC verification.
//   - WithObservability(ObsConfig{...}) — the operator surface: a
//     per-node obs sink (Prometheus-style registry, block-lifecycle
//     tracer, health monitor) instrumenting every layer — rounds,
//     timeouts, votes, QCs, commit and strength-rise latency histograms
//     per resilience level, WAL fsync and batch-verify timings, per-peer
//     frame/byte counters. Node.Obs() and Node.Health() expose it;
//     obs.NewHandler serves /metrics, /healthz, /tracez and /debug/pprof
//     (cmd/sftnode -obs-addr). Engine-side hooks use the engine clock, so
//     fixed-seed runs stay bit-identical with the sink on or off.
//   - WithMetrics, WithObserver, WithPayload, WithRoundTimeout,
//     WithExtraWait(For), WithDelta, WithoutEcho, WithCommitLog,
//     WithPruneKeep — observation and per-engine knobs.
//   - WithAdversary(specs...) — adversarial testing: the node becomes
//     Byzantine, its honest engine wrapped with the composed behavior
//     chain (Adversary* kinds: equivocation, vote withholding,
//     double-signing, marker lying, fork revival, round starvation,
//     signature corruption, garbage, replay, drop/delay/duplicate,
//     timeout spamming, round-entry lying).
//     WithAdversaryPeers names its coalition — the paper's adversary
//     coordinates, and coalition-aware behaviors (fork revival) use it.
//   - WithPacemaker(PacemakerConfig{Active, Window, PerPeerTimeoutCap,
//     LeaderReputation}) — the attack-hardened active pacemaker (DiemBFT
//     only; PR 8). Active mode broadcasts justified RoundEntry
//     announcements (QC or 2f+1-attestation timeout certificate), rejects
//     unjustified round advances, and drops timeouts claiming rounds more
//     than Window (default 8) past the local round before any signature
//     work; PerPeerTimeoutCap (default 8, enforced in passive mode too)
//     bounds buffered timeouts per peer so spam holds O(cap) memory;
//     LeaderReputation > 0 deterministically skips recently-timed-out
//     leaders without consulting WAL recovery state. Determinism
//     contract: with LeaderReputation off, fixed-seed runs pin
//     bit-identical to the passive baseline — active mode only adds
//     validated messages and rejections, never changing what honest
//     replicas do on an honest schedule. The zero config (the default)
//     is the passive paper baseline, unchanged. `sftbench -experiment
//     livenessattack` (make liveness-attack) runs the passive-vs-active
//     A/B under timeout-spam + lie-round-entry colluders, and
//     sft_pacemaker_rejected_timeouts_total{reason} /
//     sft_round_entry_rejected_total{reason} expose rejections on
//     /metrics.
//   - WithApp(factory) — the deterministic execution layer (PR 9):
//     every replica builds a StateMachine from the factory and executes
//     each proposal BEFORE voting on it; the resulting 32-byte state root
//     (AppHash) joins the vote's signed payload and every QC, so
//     certificates certify ordering AND state, and an honest replica
//     refuses to vote for a proposal whose certified parent root
//     disagrees with its own execution — state forks die at the vote.
//     Determinism contract: Apply must be a pure function of
//     (parent root, block) — no clocks, no map-iteration order, no
//     randomness — and the factory runs once per engine incarnation, so
//     crash recovery re-executes the restored chain on a fresh instance.
//     Vote-payload versioning keeps the wire compatible: a flag byte
//     marks votes carrying an AppHash, app-less votes encode exactly the
//     legacy bytes (fixed-seed determinism pins hold bit-identical with
//     the layer off), and compact QCs reserve a second sentinel word for
//     the aggregated-form root. Node.AppState()/Node.AppHash() read the
//     live instance and the committed root; CommitEvent.Results carries
//     each committed block's per-transaction verdicts without payload
//     re-decoding. The flagship app is the signed-transfer bank
//     (NewBank: accounts, nonces, per-transaction ed25519, balance
//     invariants, order-independent state commitment); `sftbench
//     -experiment bankworkload` (make bank-workload) drives it over
//     100k+ accounts and reports submit→f-strong vs submit→2f-strong
//     latency.
//   - WithPayloadNow(fn), WithMempool(m) — the workload-side companions:
//     PayloadNow is WithPayload with the node's clock alongside the
//     round (latency-stamping generators); NewMempool wraps the bounded
//     FIFO pool behind the Section 5 conflict gate, so a transaction
//     submitted with a required strength holds the sender's later
//     traffic until its block is that strong — wired synchronously into
//     the commit path of the node carrying WithMempool.
//
// Commit-strength subscriptions are how clients consume the paper's
// contribution. Node.Commits() returns an independent channel of
// CommitEvents: each block appears once with Regular=true at the classical
// f-strong commit (in height order), then once per strength level x it
// climbs to (Regular=false), up to 2f. CommitRule.MinStrength filters the
// stream — a client that only acts on x-strong commits simply never sees
// weaker events — and Node.WaitStrength(ctx, id, x) blocks until one block
// tolerates x Byzantine faults. Delivery is unbounded-buffered so slow
// consumers never back-pressure consensus, and channels close when the
// node closes.
//
// # Access tier
//
// PR 10 scaled the read path past the committee without adding voting
// weight. Three pieces compose, all through the facade:
//
//   - NewObserver(ObserverConfig, ObserverTCP(...) | Simnet.ObserverTransport(i))
//     — a non-voting follower (internal/observer) with a wire identity
//     outside [0, n). Over TCP it dials upstream replicas with an observer
//     handshake; the replicas mirror their certified-chain traffic
//     (proposals, QCs, round entries, state-sync segments) to it and drop —
//     and count — anything from it that is not a catch-up request, so an
//     observer's vote power is structurally zero and its back-pressure can
//     never stall consensus. The observer verifies every signature and
//     certificate itself through the same engine pipeline replicas use,
//     tracks strength with the paper's marker rule, and serves the Node
//     subscription surface (Commits, Strength, WaitStrength,
//     CommittedHeight). It recovers from restarts via state sync, like a
//     crashed replica re-joining.
//   - NewGateway(GatewayConfig) — a strength-subscription fan-out service
//     (internal/gateway, cmd/sftgateway) fed by observers
//     (ObserverConfig.Gateway). Every certified (block, QC) pair is
//     re-verified by the gateway's own light client; fresh strength rises
//     fan out to subscribers as length-delimited frames carrying the
//     Section 5 proof — the carrier block whose CommitLog proves the rise,
//     plus the QC certifying that carrier. Per-subscriber queues are
//     bounded (GatewayConfig.QueueBound); a subscriber that falls further
//     behind is evicted rather than ever back-pressuring the feed.
//     sft_gateway_* metric families expose subscribers, events, evictions
//     and ingest counts on /metrics.
//   - Subscribe(addr, SubscriberConfig) — the client end. Each streamed
//     event is re-verified against the committee's PKI by the subscriber's
//     own lightclient (certificate check + CommitLog membership) before
//     delivery, so the gateway needs no trust: a lying gateway terminates
//     the stream with *ErrProofInvalid instead of being believed
//     (sftclient -subscribe is this as a probe).
//
// `sftbench -experiment gateway` (make gateway-scale) is the acceptance
// experiment: an n=7 cluster serving 1000 concurrent proof-verified
// subscriptions through one gateway, commit cadence compared against a
// no-gateway baseline, plus a lying-gateway arm every subscriber must
// reject. BENCH_PR10.json records the numbers; make gateway-smoke runs the
// live-binary smoke (sftnode cluster + sftgateway + sftclient -subscribe).
//
// # Performance
//
// The simulation hot path is engineered so that fixed-seed experiment
// results are bit-identical to the straightforward implementation while
// steady-state work per event stays allocation-free:
//
//   - crypto.QCCache memoizes verified certificates per replica (signatures
//     are immutable, so entries never invalidate; an LRU bounds memory),
//     turning the O(n²) per-round signature re-checking into one check per
//     distinct QC per replica.
//   - types.Vote.AppendSigningPayload and QC.Encode build signing payloads
//     into caller-owned scratch buffers; engines and verifiers reuse one
//     buffer per replica.
//   - simnet's event queue is a pooled, value-based indexed heap: events
//     live in a recycled slab and the heap orders int32 slot indices, so
//     dispatching an event performs no allocation once the queue size
//     plateaus.
//   - core.Tracker keeps per-block endorser sets as bitset words plus a flat
//     key array (popcount instead of map iteration), and core.VoteHistory
//     computes vote markers with a single indexed ancestor walk instead of
//     one ancestry walk per voted block.
//
// Determinism is the regression oracle for all of the above: see
// internal/harness/determinism_test.go and the allocation guards in
// internal/types, internal/simnet, and internal/core. BENCH_PR1.json
// records the before/after numbers.
//
// # Verification pipeline
//
// PR 3 moved signature verification — the dominant cost under real ed25519
// crypto — off the engines' single-threaded event loop. Both engines
// implement engine.Pipelined: a stateless Prevalidate stage (structure,
// signatures, certificates; safe to call concurrently with the event loop)
// and an OnVerifiedMessage state stage that skips the checks Prevalidate
// performed. crypto.BatchVerifier folds a certificate's 2f+1 signatures
// (and cross-message batches) into one sharded, worker-parallel pass,
// bisecting failed shards so a corrupted signature is attributed to the
// exact signer. tcpnet prevalidates on its per-peer reader goroutines,
// runtime.Node adds a bounded worker pool sharded by sender, and both
// preserve per-sender FIFO order — the only delivery order the network
// guarantees. simnet routes through the same split synchronously, keeping
// fixed-seed runs bit-identical with the pipeline on or off (the PR-3
// determinism oracle). README.md documents the ordering and determinism
// constraints; BENCH_PR3.json records the measurements.
//
// # Durability
//
// PR 2 added the durability layer: internal/wal (an append-only, segmented,
// CRC-framed log with batched fsync), the core.Journal record schema over
// it (accepted blocks, own votes, standalone certificates, locks, commits —
// in the pinned types encodings), engine Restore hooks that rebuild a
// crashed replica so its next vote cannot contradict its pre-crash markers,
// and internal/statesync, the catch-up protocol a recovered or lagging
// replica uses to re-join. The contract: every record an event stages is
// flushed under one fsync before the event's outputs — votes above all —
// reach the network. internal/simnet can kill and restart replicas
// (Sim.RestartAt), harness scenarios schedule it (harness.CrashPlan), and
// cmd/sftnode persists across process restarts via -data-dir. README.md
// documents the full contract; BENCH_PR2.json records the costs (vote-path
// WAL append: 0 allocs/op; bench-smoke with the WAL disabled: unchanged).
//
// # Compact certificates
//
// PR 6 made the steady-state certificate O(1) in committee size. The
// aggregating schemes (crypto.SchemeSimAgg, crypto.SchemeEd25519Agg;
// sft.SimAggregate / sft.Ed25519Aggregate on the facade) fold a quorum of
// votes into one 32-byte aggregate, and types.QC gained a compact wire
// form — signer bitmap + sparse marker-override table + aggregate
// signature — versioned into the existing encoding by a sentinel vote
// count, so vector certificates decode unchanged and gob/TCP transports
// ship whichever form the QC carries. A steady-state compact QC is 100
// bytes at n=31 and 108 bytes at n=103 (one extra bitmap word), against
// 2.9 KB and 9.6 KB for the vector form, and verifies in near-constant
// time because votes sharing a marker state share one aggregation payload.
// The scheme is ring-internal like the sim scheme (crypto.Aggregates is
// the swap point for real BLS); vote transit signatures stay genuine
// base-scheme signatures. core.VoteSet (bitmap + dense slice) replaced the
// engines' map-of-maps vote collection, keeping leader-side tracking
// subquadratic and emitting the canonical ascending voter order the
// compact form requires. `sftbench -experiment compactcert` measures the
// n=31 vs n=103 sweep and hard-fails if certificate growth exceeds the
// bitmap-word allowance; TestCompactQCSizeFlat pins the exact byte counts
// in make bench-guard; FuzzDecodeCompactQC fuzzes the decoder; and the
// adversarial fuzzer (now parallel across a worker pool with a
// deterministic index-ordered merge, and scheme-parameterized) runs the
// full Byzantine mix with compact certificates on the wire. BENCH_PR6.json
// records the measurements.
//
// # Adversarial testing
//
// PR 5 made Byzantine behavior a composable subsystem (internal/adversary)
// and put a randomized, invariant-checking scenario fuzzer on top
// (internal/harness.RunFuzz, `sftbench -experiment adversary`). Behaviors
// act on a replica's outbound messages through an engine wrapper, so the
// same implementations corrupt DiemBFT and Streamlet under the simulator
// and the real runtimes alike; the harness scenario type and the facade
// (WithAdversary, Simnet.PartitionAt/HealAt) expose them end to end.
//
// The fuzzer samples cluster shape, engine, commit-rule mode, behavior
// compositions up to 2f colluders, crash/restart plans and network
// partitions from a seed, and checks every run against the paper's
// invariants: Definition 1 (no two conflicting blocks both at strength
// >= t, t = number of Byzantine replicas), strength monotonicity per
// replica, chain consistency across honest replicas when t <= f, and
// Theorem 2 liveness under benign faults. Scenarios replay exactly from
// (seed, index); a violation prints the whole generated spec as one line.
//
// The checker's teeth are themselves pinned: harness.WeakenedRuleCanary
// runs the Appendix C collusion — consecutive-slot colluders starving
// uncontested rounds to freeze locks, double-signing both sides of every
// fork, reviving abandoned branches from certificates assembled out of
// gossiped votes, and lying about markers — against the deliberately
// weakened naive endorsement counting, which the Definition 1 checker
// catches with a replayable seed, while the identical collusion against
// the real marker rule stays safe (the paper's central claim, demonstrated
// live; examples/byzantine narrates it). Native go-fuzz targets cover the
// pinned wire decoders and the TCP frame parser (make fuzz-smoke in CI, a
// nightly long-fuzz workflow for depth). BENCH_PR5.json records fuzzer
// throughput and the zero-cost guarantee for honest replicas (an empty
// behavior chain never wraps the engine).
package repro

// Package compose is the single composition path for building a replica:
// every consumer — the public sft facade, the experiment harness, and
// (through the facade) the cmds and examples — constructs engines, attaches
// write-ahead logs, and restores crashed replicas through the functions
// here instead of hand-wiring internal/diembft, internal/streamlet and
// internal/wal themselves. One path means one place where defaults,
// durability attachment and recovery semantics live.
package compose

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/streamlet"
	"repro/internal/types"
	"repro/internal/wal"
)

// Protocol selects the consensus engine.
type Protocol int

// Supported protocols.
const (
	DiemBFT Protocol = iota + 1
	Streamlet
)

func (p Protocol) String() string {
	switch p {
	case DiemBFT:
		return "diembft"
	case Streamlet:
		return "streamlet"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Spec is the normalized, engine-agnostic description of one replica. It is
// the union of both engines' knobs; fields that do not apply to the selected
// protocol must be zero (Engine rejects contradictions rather than silently
// ignoring them where the mistake would change protocol semantics).
type Spec struct {
	Protocol Protocol // default DiemBFT

	ID   types.ReplicaID
	N, F int

	// PKI. Signer/Verifier are required; VerifySignatures enables full
	// signature checking.
	Signer           crypto.Signer
	Verifier         crypto.Verifier
	VerifySignatures bool

	// Strengthened fault tolerance (both engines).
	SFT     bool
	Horizon int

	// DiemBFT-only knobs.
	FBFT           bool
	VoteMode       diembft.VoteMode
	IntervalWindow types.Round
	RoundTimeout   time.Duration
	ExtraWait      time.Duration
	ExtraWaitFor   func(r types.Round) time.Duration
	MaxCommitLog   int
	PruneKeep      types.Height
	DisableQCCache bool
	QCCacheSize    int
	BatchWorkers   int

	// Active pacemaker (DiemBFT-only; see diembft.Config). ActivePacemaker
	// turns on justified round entry and the bounded future window
	// (TimeoutWindow, 0 = default); PerPeerTimeoutCap bounds buffered
	// timeouts per peer in both modes; LeaderReputationWindow > 0 enables
	// leader-reputation rotation.
	ActivePacemaker        bool
	TimeoutWindow          types.Round
	PerPeerTimeoutCap      int
	LeaderReputationWindow types.Round

	// Streamlet-only knobs.
	Delta       time.Duration
	DisableEcho bool
	// ProposalWindow bounds how far ahead of the local lock-step round a
	// Streamlet proposal may claim to be (0 = unbounded baseline).
	ProposalWindow types.Round

	// Shared.
	Payload func(r types.Round) types.Payload
	// PayloadNow supersedes Payload when non-nil: it also receives the
	// engine's virtual time, which latency-accounting workload generators
	// need (submit→commit measurement).
	PayloadNow func(r types.Round, now time.Duration) types.Payload
	Journal    *core.Journal

	// App, when non-nil, is the execution-layer factory: it is invoked once
	// per engine construction so every incarnation — including a rebuild
	// after a crash — starts from a FRESH state machine and deterministically
	// re-executes the restored chain (reusing an instance across a restart
	// would double-apply). The executor wraps the instance; engines expose it
	// via their AppExecutor accessor.
	App func() app.StateMachine

	// Obs, if non-nil, is the observability sink the engine reports into
	// (see internal/obs). Pure observation: identical specs produce
	// bit-identical runs whether Obs is set or nil.
	Obs *obs.Obs

	// Adversary, when non-empty, makes the replica Byzantine: the honest
	// engine is wrapped with the behavior chain the specs describe (see
	// internal/adversary), uniformly for both protocols. AdversarySeed
	// drives the behaviors' randomness; runs with identical specs and seeds
	// replay bit-identically. AdversaryPeers optionally lists the whole
	// coalition (the paper's adversary coordinates). Honest replicas (the
	// empty chain) are returned unwrapped, so the subsystem costs the
	// honest hot path nothing.
	Adversary      []adversary.Spec
	AdversarySeed  int64
	AdversaryPeers []types.ReplicaID

	// NaiveEndorsements switches the SFT tracker to the UNSAFE marker-free
	// counting of Appendix C — for the scenario fuzzer's weakened-rule
	// canary only; the facade never sets it.
	NaiveEndorsements bool
}

// Engine builds the replica engine the spec describes. It is the one place
// engine construction happens; defaults beyond the engines' own (e.g.
// RoundTimeout, Delta) are the caller's responsibility so that identical
// specs always produce identical engines — the facade's determinism tests
// pin facade-built runs against hand-wired ones through this property.
func Engine(s Spec) (engine.Engine, error) {
	var eng engine.Engine
	var err error
	var executor *app.Executor
	if s.App != nil {
		executor = app.NewExecutor(s.App())
	}
	switch s.Protocol {
	case Streamlet:
		if s.FBFT || s.VoteMode != 0 {
			return nil, fmt.Errorf("compose: FBFT/VoteMode are DiemBFT-only knobs")
		}
		if s.ActivePacemaker || s.TimeoutWindow != 0 || s.PerPeerTimeoutCap != 0 || s.LeaderReputationWindow != 0 {
			return nil, fmt.Errorf("compose: the active pacemaker is a DiemBFT-only subsystem (Streamlet has no timeouts; use ProposalWindow)")
		}
		eng, err = streamlet.New(streamlet.Config{
			ID:                s.ID,
			N:                 s.N,
			F:                 s.F,
			Signer:            s.Signer,
			Verifier:          s.Verifier,
			VerifySignatures:  s.VerifySignatures,
			Delta:             s.Delta,
			SFT:               s.SFT,
			Horizon:           s.Horizon,
			DisableEcho:       s.DisableEcho,
			ProposalWindow:    s.ProposalWindow,
			Payload:           s.Payload,
			PayloadNow:        s.PayloadNow,
			App:               executor,
			NaiveEndorsements: s.NaiveEndorsements,
			Journal:           s.Journal,
			Obs:               s.Obs,
		})
	case DiemBFT, 0:
		if s.ProposalWindow != 0 {
			return nil, fmt.Errorf("compose: ProposalWindow is a Streamlet-only knob (DiemBFT bounds rounds via the active pacemaker)")
		}
		eng, err = diembft.New(diembft.Config{
			ID:                s.ID,
			N:                 s.N,
			F:                 s.F,
			Signer:            s.Signer,
			Verifier:          s.Verifier,
			VerifySignatures:  s.VerifySignatures,
			QCCacheSize:       s.QCCacheSize,
			DisableQCCache:    s.DisableQCCache,
			BatchWorkers:      s.BatchWorkers,
			SFT:               s.SFT,
			FBFT:              s.FBFT,
			VoteMode:          s.VoteMode,
			IntervalWindow:    s.IntervalWindow,
			Horizon:           s.Horizon,
			RoundTimeout:      s.RoundTimeout,
			ExtraWait:         s.ExtraWait,
			ExtraWaitFor:      s.ExtraWaitFor,
			Payload:           s.Payload,
			PayloadNow:        s.PayloadNow,
			App:               executor,
			MaxCommitLog:      s.MaxCommitLog,
			PruneKeep:         s.PruneKeep,
			NaiveEndorsements: s.NaiveEndorsements,
			Journal:           s.Journal,
			Obs:               s.Obs,

			ActivePacemaker:        s.ActivePacemaker,
			TimeoutWindow:          s.TimeoutWindow,
			PerPeerTimeoutCap:      s.PerPeerTimeoutCap,
			LeaderReputationWindow: s.LeaderReputationWindow,
		})
	default:
		return nil, fmt.Errorf("compose: unknown protocol %v", s.Protocol)
	}
	if err != nil {
		return nil, err
	}
	// Byzantine replicas: wrap the honest engine with the behavior chain.
	// The empty chain returns eng unchanged.
	return adversary.Wrap(eng, adversary.Config{
		ID: s.ID, N: s.N, F: s.F, Signer: s.Signer,
		Seed: s.AdversarySeed, Colluders: s.AdversaryPeers,
	}, s.Adversary)
}

// Restorer is the journal-replay hook both engines implement.
type Restorer interface {
	Restore(*core.Recovery) error
}

// Restore replays a recovery into a freshly built engine. A nil recovery is
// a no-op; an engine without a Restore hook is an error (the caller asked
// for durability the engine cannot provide).
func Restore(e engine.Engine, rec *core.Recovery) error {
	if rec == nil || rec.Empty() {
		return nil
	}
	r, ok := e.(Restorer)
	if !ok {
		return fmt.Errorf("compose: engine %T does not support journal restore", e)
	}
	return r.Restore(rec)
}

// OpenWAL opens (or creates) the write-ahead log in dir, replays whatever a
// previous incarnation left there, and returns the journal to hand to Spec
// plus the recovered state to Restore into the rebuilt engine. With fsync
// false the log runs in NoSync mode — the setting for simulated crashes,
// where the process survives and page-cache durability models the kill
// faithfully; real deployments pass fsync true.
func OpenWAL(dir string, fsync bool) (*core.Journal, *core.Recovery, error) {
	return OpenWALObserved(dir, fsync, nil)
}

// OpenWALObserved is OpenWAL with a flush-observation hook threaded into the
// log (see wal.Options.ObserveFlush); the observability layer uses it to
// record flush counts, bytes, and fsync latency without touching replay or
// durability semantics.
func OpenWALObserved(dir string, fsync bool, observeFlush func(d time.Duration, bytes int, synced bool)) (*core.Journal, *core.Recovery, error) {
	l, err := wal.Open(dir, wal.Options{NoSync: !fsync, ObserveFlush: observeFlush})
	if err != nil {
		return nil, nil, err
	}
	rec, err := core.Recover(l)
	if err != nil {
		_ = l.Close()
		return nil, nil, fmt.Errorf("compose: wal replay failed — durable state is unusable: %w", err)
	}
	return core.NewJournal(l), rec, nil
}

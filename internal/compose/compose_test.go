package compose

import (
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/types"
)

func testSpec(t *testing.T, proto Protocol) Spec {
	t.Helper()
	ring, err := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Protocol:     proto,
		ID:           0,
		N:            4,
		F:            1,
		Signer:       ring.Signer(0),
		Verifier:     ring,
		SFT:          true,
		RoundTimeout: time.Second,
		Delta:        50 * time.Millisecond,
	}
}

func TestEngineBuildsBothProtocols(t *testing.T) {
	for _, proto := range []Protocol{DiemBFT, Streamlet} {
		eng, err := Engine(testSpec(t, proto))
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if eng.ID() != 0 {
			t.Fatalf("%v: engine ID %v", proto, eng.ID())
		}
		if _, ok := eng.(Restorer); !ok {
			t.Fatalf("%v: engine lacks the Restore hook", proto)
		}
	}
}

func TestEngineRejectsCrossProtocolKnobs(t *testing.T) {
	s := testSpec(t, Streamlet)
	s.VoteMode = diembft.VoteIntervals
	if _, err := Engine(s); err == nil {
		t.Fatal("streamlet spec with a DiemBFT vote mode built")
	}
	s = testSpec(t, Protocol(9))
	if _, err := Engine(s); err == nil {
		t.Fatal("unknown protocol built")
	}
}

// TestAdversaryWrapping pins the composition rules for Byzantine replicas:
// an empty behavior chain returns the honest engine unwrapped (the honest
// hot path never pays for the subsystem), a non-empty chain wraps it, and a
// bogus behavior kind fails construction.
func TestAdversaryWrapping(t *testing.T) {
	for _, proto := range []Protocol{DiemBFT, Streamlet} {
		s := testSpec(t, proto)
		honest, err := Engine(s)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if _, wrapped := honest.(*adversary.Replica); wrapped {
			t.Fatalf("%v: honest spec built a wrapped engine", proto)
		}
		s.Adversary = []adversary.Spec{{Kind: adversary.Equivocate}, {Kind: adversary.Withhold}}
		byz, err := Engine(s)
		if err != nil {
			t.Fatalf("%v byzantine: %v", proto, err)
		}
		if _, wrapped := byz.(*adversary.Replica); !wrapped {
			t.Fatalf("%v: byzantine spec built an unwrapped engine", proto)
		}
		// A wrapped engine must still support journal recovery (a Byzantine
		// replica under WithWAL, or a fuzz scenario's restart plan).
		if _, ok := byz.(Restorer); !ok {
			t.Fatalf("%v: wrapped engine lost the Restore hook", proto)
		}
		s.Adversary = []adversary.Spec{{Kind: adversary.Kind("no-such-behavior")}}
		if _, err := Engine(s); err == nil {
			t.Fatalf("%v: unknown behavior kind built", proto)
		}
	}
}

// TestOpenWALRoundTrip pins the facade-visible durability contract at the
// compose layer: an empty directory opens with an empty recovery, and a
// journaled vote survives reopen.
func TestOpenWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh WAL recovered state: %+v", rec)
	}
	v := &types.Vote{Round: 3, Height: 2, Voter: 1}
	if err := j.AppendVote(v); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Votes) != 1 || rec.VotedRound() != 3 {
		t.Fatalf("reopen recovered %d votes, voted round %v", len(rec.Votes), rec.VotedRound())
	}
}

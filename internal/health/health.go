// Package health implements the monitoring idea from Section 5
// ("Optimizations for Strong Commit Latencies"): the diversity of
// strong-QCs on the chain doubles as a replica health signal. A replica
// whose strong-votes never appear in recent chain QCs is out of sync — a
// straggler or an outcast — and is exactly what throttles high strong-commit
// levels, so operators should reconfigure or replace it.
package health

import (
	"sort"

	"repro/internal/types"
)

// Monitor ingests the strong-QCs observed on the chain and tracks, per
// replica, the last round whose QC carried its vote.
type Monitor struct {
	n        int
	window   types.Round
	lastSeen []types.Round // 0 = never seen
	lastQC   types.Round
	qcs      int64
	// presence counts appearances inside the sliding window, for diversity
	// scoring.
	recent []roundSet
}

type roundSet struct {
	round  types.Round
	voters []types.ReplicaID
}

// NewMonitor creates a monitor for n replicas with the given sliding window
// (in rounds). A window of 2n covers two full leader rotations — every
// healthy replica appears at least once per rotation (Theorem 2's argument).
func NewMonitor(n int, window types.Round) *Monitor {
	if window == 0 {
		window = types.Round(2 * n)
	}
	return &Monitor{n: n, window: window, lastSeen: make([]types.Round, n)}
}

// ObserveQC records one chain QC.
func (m *Monitor) ObserveQC(qc *types.QC) {
	m.qcs++
	if qc.Round > m.lastQC {
		m.lastQC = qc.Round
	}
	voters := make([]types.ReplicaID, 0, len(qc.Votes))
	for i := range qc.Votes {
		v := qc.Votes[i].Voter
		voters = append(voters, v)
		if int(v) < m.n && qc.Round > m.lastSeen[v] {
			m.lastSeen[v] = qc.Round
		}
	}
	m.recent = append(m.recent, roundSet{round: qc.Round, voters: voters})
	// Trim the window.
	cut := 0
	for cut < len(m.recent) && m.recent[cut].round+m.window < m.lastQC {
		cut++
	}
	m.recent = m.recent[cut:]
}

// Stragglers returns the replicas absent from every QC in the last
// `staleness` rounds (default: the window), sorted by ID. These are the
// paper's "outcast replicas" — the ones capping strong commit levels.
func (m *Monitor) Stragglers(staleness types.Round) []types.ReplicaID {
	if staleness == 0 {
		staleness = m.window
	}
	var out []types.ReplicaID
	for id := 0; id < m.n; id++ {
		if m.lastSeen[id]+staleness < m.lastQC || (m.lastSeen[id] == 0 && m.lastQC >= staleness) {
			out = append(out, types.ReplicaID(id))
		}
	}
	return out
}

// Diversity returns how many distinct replicas appear in the window's QCs.
// The highest reachable strong-commit level is Diversity() - f - 1.
func (m *Monitor) Diversity() int {
	seen := make(map[types.ReplicaID]bool)
	for _, rs := range m.recent {
		for _, v := range rs.voters {
			seen[v] = true
		}
	}
	return len(seen)
}

// MaxLevel returns the strongest x-strong commit the current QC diversity
// can support, per the strong commit rule (x + f + 1 endorsers needed).
func (m *Monitor) MaxLevel(f int) int {
	x := m.Diversity() - f - 1
	if x < 0 {
		return -1
	}
	if x > 2*f {
		return 2 * f
	}
	return x
}

// AppearanceCounts returns, for each replica, in how many window QCs its
// vote appeared — the raw diversity histogram, sorted by replica ID.
func (m *Monitor) AppearanceCounts() []int {
	counts := make([]int, m.n)
	for _, rs := range m.recent {
		for _, v := range rs.voters {
			if int(v) < m.n {
				counts[v]++
			}
		}
	}
	return counts
}

// Report is a snapshot of cluster health.
type Report struct {
	QCsObserved int64
	LastRound   types.Round
	Diversity   int
	Stragglers  []types.ReplicaID
}

// Snapshot builds a Report.
func (m *Monitor) Snapshot() Report {
	st := m.Stragglers(0)
	sort.Slice(st, func(i, j int) bool { return st[i] < st[j] })
	return Report{
		QCsObserved: m.qcs,
		LastRound:   m.lastQC,
		Diversity:   m.Diversity(),
		Stragglers:  st,
	}
}

package health_test

import (
	"testing"

	"repro/internal/health"
	"repro/internal/types"
)

func qcWith(round types.Round, voters ...types.ReplicaID) *types.QC {
	votes := make([]types.Vote, len(voters))
	for i, v := range voters {
		votes[i] = types.Vote{Round: round, Voter: v}
	}
	return &types.QC{Round: round, Votes: votes}
}

func TestStragglerDetection(t *testing.T) {
	m := health.NewMonitor(4, 8)
	// Replica 3 never appears.
	for r := types.Round(1); r <= 10; r++ {
		m.ObserveQC(qcWith(r, 0, 1, 2))
	}
	st := m.Stragglers(0)
	if len(st) != 1 || st[0] != 3 {
		t.Fatalf("stragglers = %v, want [3]", st)
	}
	// Replica 3 shows up (it led a round): no longer a straggler.
	m.ObserveQC(qcWith(11, 0, 1, 2, 3))
	if len(m.Stragglers(0)) != 0 {
		t.Fatalf("stragglers after appearance = %v", m.Stragglers(0))
	}
	// And goes dark again: flagged after the staleness window passes.
	for r := types.Round(12); r <= 24; r++ {
		m.ObserveQC(qcWith(r, 0, 1, 2))
	}
	st = m.Stragglers(8)
	if len(st) != 1 || st[0] != 3 {
		t.Fatalf("re-darkened straggler not flagged: %v", st)
	}
}

func TestDiversityAndMaxLevel(t *testing.T) {
	const f = 1
	m := health.NewMonitor(4, 6)
	for r := types.Round(1); r <= 5; r++ {
		m.ObserveQC(qcWith(r, 0, 1, 2))
	}
	if m.Diversity() != 3 {
		t.Fatalf("diversity = %d", m.Diversity())
	}
	// 3 distinct voters support at most x = 3 - f - 1 = 1 = f.
	if got := m.MaxLevel(f); got != 1 {
		t.Fatalf("max level = %d, want 1", got)
	}
	m.ObserveQC(qcWith(6, 0, 1, 2, 3))
	// 4 distinct voters: x = 4 - 2 = 2 = 2f.
	if got := m.MaxLevel(f); got != 2 {
		t.Fatalf("max level = %d, want 2", got)
	}
}

func TestWindowSlides(t *testing.T) {
	m := health.NewMonitor(4, 4)
	m.ObserveQC(qcWith(1, 0, 1, 2, 3))
	for r := types.Round(10); r <= 16; r++ {
		m.ObserveQC(qcWith(r, 0, 1, 2))
	}
	// Replica 3's appearance at round 1 has slid out of the window.
	if m.Diversity() != 3 {
		t.Fatalf("diversity = %d after window slide", m.Diversity())
	}
	counts := m.AppearanceCounts()
	if counts[3] != 0 {
		t.Fatalf("stale appearance survived: %v", counts)
	}
	if counts[0] == 0 {
		t.Fatalf("active replica lost: %v", counts)
	}
}

func TestSnapshot(t *testing.T) {
	m := health.NewMonitor(4, 8)
	for r := types.Round(1); r <= 9; r++ {
		m.ObserveQC(qcWith(r, 0, 2))
	}
	rep := m.Snapshot()
	if rep.QCsObserved != 9 || rep.LastRound != 9 || rep.Diversity != 2 {
		t.Fatalf("snapshot: %+v", rep)
	}
	if len(rep.Stragglers) != 2 || rep.Stragglers[0] != 1 || rep.Stragglers[1] != 3 {
		t.Fatalf("stragglers: %v", rep.Stragglers)
	}
}

func TestDefaultWindow(t *testing.T) {
	m := health.NewMonitor(10, 0) // default 2n
	m.ObserveQC(qcWith(1, 0))
	if m.Diversity() != 1 {
		t.Fatal("monitor with default window broken")
	}
}

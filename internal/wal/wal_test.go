package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	rt   RecordType
	data []byte
}

func collect(t *testing.T, l *Log) []rec {
	t.Helper()
	var out []rec
	if err := l.Replay(func(rt RecordType, payload []byte) error {
		out = append(out, rec{rt: rt, data: append([]byte(nil), payload...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{1, []byte("vote")},
		{2, []byte{}},
		{3, bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := l.Append(r.rt, r.data); err != nil {
			t.Fatal(err)
		}
	}
	if !l.Dirty() {
		t.Fatal("expected staged records")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].rt != want[i].rt || !bytes.Equal(got[i].data, want[i].data) {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and confirm the records survive plus new appends go after them.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(4, []byte("post-restart")); err != nil {
		t.Fatal(err)
	}
	got = collect(t, l2)
	if len(got) != len(want)+1 || got[3].rt != 4 {
		t.Fatalf("after reopen: got %d records, want %d", len(got), len(want)+1)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{7}, 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Stats(); s.Segments < 5 {
		t.Fatalf("expected several segments, got %d", s.Segments)
	}
	if got := collect(t, l); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
}

// TestTornTailTruncated simulates a crash mid-write: the last record is cut
// short on disk. Open must recover the valid prefix and resume appending.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop 10 bytes off the last record.
	path := filepath.Join(dir, segmentName(0))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-10); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 4 {
		t.Fatalf("torn tail: replayed %d records, want 4", len(got))
	}
	// The truncated slot must be reusable.
	if err := l2.Append(2, []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	got = collect(t, l2)
	if len(got) != 5 || got[4].rt != 2 {
		t.Fatalf("append after torn-tail recovery: got %d records", len(got))
	}
}

// TestFinalSegmentBitRotRefusesOpen: a CRC flip on a FULLY PRESENT record
// in the live segment is bit rot, not a torn tail — Open must refuse
// rather than truncate away the fsynced records that follow it.
func TestFinalSegmentBitRotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the SECOND record; records 3..5 stay valid.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[(headerSize+64)+headerSize+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over bit rot: %v, want ErrCorrupt", err)
	}
}

// TestStraySegmentLookalikesIgnored: wal-000000.log.bak must not alias the
// real segment and double-replay the history.
func TestStraySegmentLookalikesIgnored(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("once")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)+".bak"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (backup file aliased a segment)", len(got))
	}
}

// TestMidLogCorruptionDetected flips a byte inside a sealed segment; replay
// must fail loudly rather than skip records of the voted history.
func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first (sealed) segment's first record payload.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func(RecordType, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt for mid-log damage, got %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	if err := l.Replay(func(RecordType, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("expected callback error to propagate, got %v", err)
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
}

// TestAppendAllocFree is the PR-2 guard: steady-state appends on the vote
// path must not allocate (the frame header lives in a fixed array and the
// batch buffer is reused across flushes).
func TestAppendAllocFree(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{1}, 160) // a marker strong-vote's size class
	// Warm up: size the batch buffer and fault in the segment.
	for i := 0; i < 64; i++ {
		if err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WAL append+flush allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkAppendFlush(b *testing.B) {
	for _, sync := range []bool{false, true} {
		b.Run(fmt.Sprintf("fsync=%v", sync), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{NoSync: !sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := bytes.Repeat([]byte{1}, 160)
			b.SetBytes(int64(len(payload) + headerSize))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(1, payload); err != nil {
					b.Fatal(err)
				}
				if err := l.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	l, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{1}, 160)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n * (len(payload) + headerSize)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := l.Replay(func(RecordType, []byte) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d records, want %d", count, n)
		}
	}
}

// Package wal implements the append-only write-ahead log underlying the
// durability layer: segmented files of CRC-framed records with batched
// fsync and a replay iterator.
//
// The log is record-type agnostic — callers pass an opaque one-byte record
// type plus a payload, and internal/core.Journal defines the replica-level
// schema (votes, QCs, blocks, commits) on top of it. Appends accumulate in
// an internal buffer; Flush writes and (by default) fsyncs the batch, so a
// consensus engine groups every record of one event under a single fsync —
// the batched group-commit the durability contract relies on (see
// doc.go: nothing leaves the replica before the records it depends on are
// flushed).
//
// Crash tolerance: a torn write at the tail of the last segment — a record
// cut short at EOF, the only damage a crashed single appender can leave —
// is detected by its length frame and truncated away on Open. Bit rot (a
// CRC mismatch on fully present bytes, or a nonsense length) anywhere,
// final segment included, is NOT survivable silently: Open and Replay
// report it instead of handing back a hole in the voted history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// RecordType discriminates records; the schema lives in the caller
// (internal/core.Journal). Zero is reserved as invalid.
type RecordType uint8

// Framing constants.
const (
	// headerSize is the per-record frame overhead: 4-byte payload length
	// (including the type byte), 4-byte CRC-32C over type+payload, then the
	// type byte itself.
	headerSize = 9
	// maxRecordBytes bounds a single record so a corrupt length prefix
	// cannot drive replay into a giant allocation.
	maxRecordBytes = 64 << 20
)

// Errors returned by the log.
var (
	ErrClosed    = errors.New("wal: log closed")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrBadRecord = errors.New("wal: invalid record type")
)

// errShortRecord marks a frame that ends before its declared length — the
// signature of a torn tail write (a crash persists a PREFIX of the final
// append batch, so the only legitimate damage is a record cut short at
// EOF). A CRC mismatch on a fully present frame, or a nonsense length
// field, is bit rot instead and must surface as ErrCorrupt: truncating it
// away would silently destroy fsynced voted history.
var errShortRecord = errors.New("wal: short record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment that reaches it is
	// sealed and a new one started. Default 4 MiB.
	SegmentBytes int
	// NoSync skips the fsync in Flush. The discrete-event simulator uses it:
	// simulated crashes stop a replica's event dispatch, not the host
	// process, so page-cache durability suffices and runs stay fast. Close
	// always fsyncs regardless.
	NoSync bool
	// ObserveFlush, if non-nil, is called after each non-empty Flush with
	// its wall-clock duration, the bytes written, and whether the flush
	// fsynced. Pure observation for the metrics layer; errors still surface
	// through Flush itself.
	ObserveFlush func(d time.Duration, bytes int, synced bool)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Log is an append-only segmented record log. Not safe for concurrent use;
// the owning engine serializes all appends (engines are single-threaded
// event loops).
type Log struct {
	dir  string
	opts Options

	seg     *os.File // active segment, opened for append
	segIdx  int      // index of the active segment
	segSize int64    // bytes in the active segment (including buffered)

	buf   []byte // records appended since the last Flush
	hdr   [headerSize]byte
	err   error // sticky: a log that failed an IO operation stays failed
	stats Stats
}

// Stats counts log activity since Open.
type Stats struct {
	Appends  int64
	Flushes  int64
	Syncs    int64
	Bytes    int64
	Segments int // segments on disk
}

func segmentName(idx int) string { return fmt.Sprintf("wal-%06d.log", idx) }

// Open creates or opens the log in dir. An existing log is scanned for a
// torn tail record (a crash mid-write), which is truncated away; appends
// then continue at the end of the last segment.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, buf: make([]byte, 0, 64<<10)}
	if len(segs) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		l.stats.Segments = 1
		return l, nil
	}
	// Seal everything but the last segment as-is; the last one is scanned
	// and truncated past its final valid record.
	last := segs[len(segs)-1]
	valid, err := scanValid(filepath.Join(dir, segmentName(last)))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.seg, l.segIdx, l.segSize = f, last, valid
	l.stats.Segments = len(segs)
	return l, nil
}

// listSegments returns the sorted segment indices present in dir. Only
// exact segment names count — wal-000001.log.bak or editor leftovers must
// not alias a real segment and cause double replay.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.log", &idx); err == nil && e.Name() == segmentName(idx) {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanValid returns the byte offset just past the last fully valid record
// in the segment file, truncation-safe: a record cut short at EOF is the
// torn tail of a crashed append and marks the cut point, while a damaged
// record with its full length present (bit rot) aborts the open — the log
// cannot vouch for the voted history once fsynced records are unreadable.
func scanValid(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	var off int64
	for int(off) < len(data) {
		n, _, _, err := parseRecord(data[off:])
		if errors.Is(err, errShortRecord) {
			return off, nil // torn tail: a crash persisted a prefix of the batch
		}
		if err != nil {
			return 0, fmt.Errorf("%w: %s offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		off += n
	}
	return off, nil
}

// parseRecord parses one framed record from the front of b, returning the
// total frame length consumed, the record type, and the payload (aliasing
// b). errShortRecord means b ends before the frame does (torn tail); every
// other error is corruption of fully present bytes.
func parseRecord(b []byte) (int64, RecordType, []byte, error) {
	if len(b) < headerSize {
		return 0, 0, nil, errShortRecord
	}
	size := binary.BigEndian.Uint32(b[0:4]) // len(payload) + 1 type byte
	sum := binary.BigEndian.Uint32(b[4:8])
	if size == 0 || size > maxRecordBytes {
		return 0, 0, nil, ErrCorrupt
	}
	total := int64(8) + int64(size)
	if int64(len(b)) < total {
		return 0, 0, nil, errShortRecord
	}
	body := b[8:total] // type byte + payload
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, 0, nil, ErrCorrupt
	}
	rt := RecordType(body[0])
	if rt == 0 {
		return 0, 0, nil, ErrBadRecord
	}
	return total, rt, body[1:], nil
}

// Append stages one record. The payload is copied into the log's batch
// buffer, so the caller may reuse its own scratch immediately. Records
// become durable at the next Flush (or Close).
//
// Steady-state appends are allocation-free: the frame header is built in a
// fixed array and the batch buffer is reused across flushes.
func (l *Log) Append(rt RecordType, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	if l.seg == nil {
		return l.fail(ErrClosed)
	}
	if rt == 0 {
		return ErrBadRecord
	}
	if len(payload)+1 > maxRecordBytes {
		return l.fail(fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload)))
	}
	frame := int64(headerSize + len(payload))
	if l.segSize > 0 && l.segSize+frame > int64(l.opts.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint32(l.hdr[0:4], uint32(len(payload)+1))
	l.hdr[8] = byte(rt)
	sum := crc32.Update(crc32.Checksum(l.hdr[8:9], castagnoli), castagnoli, payload)
	binary.BigEndian.PutUint32(l.hdr[4:8], sum)
	l.buf = append(l.buf, l.hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.segSize += frame
	l.stats.Appends++
	l.stats.Bytes += frame
	return nil
}

// Dirty reports whether records are staged but not yet flushed.
func (l *Log) Dirty() bool { return len(l.buf) > 0 }

// Flush writes the staged batch to the active segment and fsyncs it (unless
// Options.NoSync). One Flush per engine event gives group commit: every
// record the event produced shares a single fsync.
func (l *Log) Flush() error {
	if l.err != nil {
		return l.err
	}
	if l.seg == nil {
		return l.fail(ErrClosed)
	}
	if len(l.buf) == 0 {
		return nil
	}
	var start time.Time
	if l.opts.ObserveFlush != nil {
		start = time.Now()
	}
	bytes := len(l.buf)
	if _, err := l.seg.Write(l.buf); err != nil {
		return l.fail(fmt.Errorf("wal: write: %w", err))
	}
	l.buf = l.buf[:0]
	l.stats.Flushes++
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			return l.fail(fmt.Errorf("wal: fsync: %w", err))
		}
		l.stats.Syncs++
	}
	if l.opts.ObserveFlush != nil {
		l.opts.ObserveFlush(time.Since(start), bytes, !l.opts.NoSync)
	}
	return nil
}

// Sync flushes and forces an fsync even under Options.NoSync — the shutdown
// path uses it so a graceful stop never relies on the page cache.
func (l *Log) Sync() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if l.seg == nil {
		return l.err
	}
	if err := l.seg.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.stats.Syncs++
	return nil
}

// Close flushes, fsyncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.seg == nil {
		return l.err
	}
	err := l.Sync()
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.seg = nil
	if l.err == nil {
		l.err = ErrClosed
	}
	return err
}

// Stats returns a copy of the activity counters.
func (l *Log) Stats() Stats { return l.stats }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// rotate seals the active segment (flushed and always fsynced, so sealed
// segments are immutable and fully durable) and starts the next one.
func (l *Log) rotate() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if err := l.seg.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: seal fsync: %w", err))
	}
	if err := l.seg.Close(); err != nil {
		return l.fail(fmt.Errorf("wal: seal: %w", err))
	}
	l.seg = nil
	if err := l.openSegment(l.segIdx + 1); err != nil {
		return err
	}
	l.stats.Segments++
	return nil
}

func (l *Log) openSegment(idx int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(idx)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return l.fail(fmt.Errorf("wal: open segment: %w", err))
	}
	l.seg, l.segIdx, l.segSize = f, idx, 0
	return nil
}

// Replay calls fn for every record in the log, oldest first, across all
// segments. The payload slice is only valid during the callback. Staged
// (unflushed) records are flushed first so replay observes a consistent
// prefix. A torn tail on the final segment ends replay cleanly; corruption
// anywhere else returns ErrCorrupt — a log whose middle is damaged cannot
// vouch for the voted history and the caller must treat the replica's
// durable state as lost.
func (l *Log) Replay(fn func(rt RecordType, payload []byte) error) error {
	if l.Dirty() {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, idx := range segs {
		data, err := os.ReadFile(filepath.Join(l.dir, segmentName(idx)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		var off int64
		for int(off) < len(data) {
			n, rt, payload, err := parseRecord(data[off:])
			if err != nil {
				if i == len(segs)-1 && errors.Is(err, errShortRecord) {
					return nil // torn tail on the live segment
				}
				// Sealed segments cannot have torn tails (they were closed
				// cleanly), and bit rot anywhere is unrecoverable state loss.
				return fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, idx, off)
			}
			if err := fn(rt, payload); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

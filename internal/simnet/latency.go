package simnet

import (
	"math/rand"
	"time"

	"repro/internal/types"
)

// LatencyModel computes the one-way delivery delay for a message.
type LatencyModel interface {
	// Delay returns the delivery latency from one replica to another. rng is
	// the simulation's deterministic source for jitter.
	Delay(from, to types.ReplicaID, size int, rng *rand.Rand) time.Duration
}

// RegionModel is the geo-distributed latency model of the paper's Section 4:
// replicas are partitioned into regions; same-region pairs see Intra delay,
// cross-region pairs see Inter[a][b]. Uniform jitter in [0, Jitter) plus an
// optional per-replica processing penalty (the paper's "stragglers") is
// added on top.
type RegionModel struct {
	// RegionOf maps each replica to its region index.
	RegionOf []int
	// Intra is the same-region one-way delay.
	Intra time.Duration
	// Inter[a][b] is the one-way delay from region a to region b (symmetric
	// models fill both directions).
	Inter [][]time.Duration
	// Jitter adds a uniform random [0, Jitter) to every delivery.
	Jitter time.Duration
	// Penalty adds a fixed per-destination-replica processing delay; nil
	// means none. It models the out-of-sync stragglers the paper blames for
	// the 2f-strong latency tail (Section 4.1).
	Penalty map[types.ReplicaID]time.Duration
}

// Delay implements LatencyModel.
func (m *RegionModel) Delay(from, to types.ReplicaID, size int, rng *rand.Rand) time.Duration {
	var d time.Duration
	ra, rb := m.RegionOf[from], m.RegionOf[to]
	if ra == rb {
		d = m.Intra
	} else {
		d = m.Inter[ra][rb]
	}
	if m.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	if m.Penalty != nil {
		d += m.Penalty[from] + m.Penalty[to]
	}
	return d
}

// NewSymmetricModel builds the paper's symmetric setting: replicas split
// evenly into `regions` regions with delay delta between any pair of
// replicas in different regions (Figure 6, left).
func NewSymmetricModel(n, regions int, intra, delta, jitter time.Duration) *RegionModel {
	regionOf := make([]int, n)
	for i := 0; i < n; i++ {
		// First region gets the remainder, matching the paper's 34/33/33.
		regionOf[i] = i * regions / n
	}
	inter := make([][]time.Duration, regions)
	for a := range inter {
		inter[a] = make([]time.Duration, regions)
		for b := range inter[a] {
			if a == b {
				inter[a][b] = intra
			} else {
				inter[a][b] = delta
			}
		}
	}
	return &RegionModel{RegionOf: regionOf, Intra: intra, Inter: inter, Jitter: jitter}
}

// NewAsymmetricModel builds the paper's asymmetric setting (Figure 6,
// right): region sizes sizes[0..2] (paper: 45, 45, 10), delay ab between
// regions 0 and 1 (paper: 20ms) and delta between region 2 and the others.
func NewAsymmetricModel(sizes [3]int, intra, ab, delta, jitter time.Duration) *RegionModel {
	n := sizes[0] + sizes[1] + sizes[2]
	regionOf := make([]int, 0, n)
	for r, sz := range sizes {
		for i := 0; i < sz; i++ {
			regionOf = append(regionOf, r)
		}
	}
	inter := [][]time.Duration{
		{intra, ab, delta},
		{ab, intra, delta},
		{delta, delta, intra},
	}
	return &RegionModel{RegionOf: regionOf, Intra: intra, Inter: inter, Jitter: jitter}
}

// UniformModel delivers every message with the same base delay plus jitter;
// the simplest model, used by unit tests.
type UniformModel struct {
	Base   time.Duration
	Jitter time.Duration
}

// Delay implements LatencyModel.
func (m *UniformModel) Delay(from, to types.ReplicaID, size int, rng *rand.Rand) time.Duration {
	d := m.Base
	if m.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	return d
}

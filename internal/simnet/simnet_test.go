package simnet_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// echoEngine replies to every ping with a pong and records receptions.
type echoEngine struct {
	id       types.ReplicaID
	received []string
	timers   []int
}

type ping struct{ Tag string }

func (ping) Type() types.MsgType { return 99 }
func (ping) Size() int           { return 10 }

func (e *echoEngine) ID() types.ReplicaID { return e.id }
func (e *echoEngine) Init(now time.Duration) []engine.Output {
	if e.id == 0 {
		return []engine.Output{
			engine.Broadcast{Msg: ping{Tag: "hello"}},
			engine.SetTimer{ID: 7, Delay: 50 * time.Millisecond},
		}
	}
	return nil
}
func (e *echoEngine) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	p := msg.(ping)
	e.received = append(e.received, fmt.Sprintf("%s@%v from %v", p.Tag, now, from))
	if p.Tag == "hello" {
		return []engine.Output{engine.Send{To: from, Msg: ping{Tag: "ack"}}}
	}
	return nil
}
func (e *echoEngine) OnTimer(now time.Duration, id int) []engine.Output {
	e.timers = append(e.timers, id)
	return nil
}

func build(n int, seed int64, lat simnet.LatencyModel) (*simnet.Sim, []*echoEngine) {
	sim := simnet.New(simnet.Config{N: n, Latency: lat, Seed: seed})
	engines := make([]*echoEngine, n)
	for i := 0; i < n; i++ {
		engines[i] = &echoEngine{id: types.ReplicaID(i)}
		sim.SetEngine(types.ReplicaID(i), engines[i])
	}
	return sim, engines
}

func TestBroadcastAndReply(t *testing.T) {
	lat := &simnet.UniformModel{Base: 10 * time.Millisecond}
	sim, engines := build(4, 1, lat)
	sim.Run(time.Second)

	for i := 1; i < 4; i++ {
		if len(engines[i].received) != 1 {
			t.Fatalf("replica %d received %d messages", i, len(engines[i].received))
		}
	}
	// Replica 0 gets three acks.
	if len(engines[0].received) != 3 {
		t.Fatalf("replica 0 received %d acks", len(engines[0].received))
	}
	if len(engines[0].timers) != 1 || engines[0].timers[0] != 7 {
		t.Fatalf("timer events: %v", engines[0].timers)
	}
	stats := sim.Stats()
	if stats.Count != 6 { // 3 pings + 3 acks
		t.Fatalf("message count = %d, want 6", stats.Count)
	}
	if stats.Bytes != 60 {
		t.Fatalf("bytes = %d, want 60", stats.Bytes)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) string {
		lat := &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: 5 * time.Millisecond}
		sim, engines := build(5, seed, lat)
		sim.Run(time.Second)
		out := ""
		for _, e := range engines {
			for _, r := range e.received {
				out += r + "\n"
			}
		}
		return out
	}
	if trace(42) != trace(42) {
		t.Error("same seed produced different traces")
	}
	if trace(42) == trace(43) {
		t.Error("different seeds produced identical traces (jitter ignored?)")
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	lat := &simnet.UniformModel{Base: 10 * time.Millisecond}
	sim, engines := build(4, 1, lat)
	sim.CrashAt(2, 5*time.Millisecond) // before the ping arrives
	sim.Run(time.Second)
	if len(engines[2].received) != 0 {
		t.Fatalf("crashed replica received %d messages", len(engines[2].received))
	}
	// Replica 0 gets only two acks now.
	if len(engines[0].received) != 2 {
		t.Fatalf("replica 0 received %d acks, want 2", len(engines[0].received))
	}
}

func TestDropRule(t *testing.T) {
	lat := &simnet.UniformModel{Base: time.Millisecond}
	sim := simnet.New(simnet.Config{
		N: 4, Latency: lat, Seed: 1,
		Drop: func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool {
			return to == 3 // partition replica 3
		},
	})
	engines := make([]*echoEngine, 4)
	for i := 0; i < 4; i++ {
		engines[i] = &echoEngine{id: types.ReplicaID(i)}
		sim.SetEngine(types.ReplicaID(i), engines[i])
	}
	sim.Run(time.Second)
	if len(engines[3].received) != 0 {
		t.Fatal("partitioned replica received messages")
	}
	if len(engines[1].received) != 1 {
		t.Fatal("unpartitioned replica lost messages")
	}
}

func TestExtraDelayBeforeGST(t *testing.T) {
	lat := &simnet.UniformModel{Base: time.Millisecond}
	var arrival time.Duration
	sim := simnet.New(simnet.Config{
		N: 2, Latency: lat, Seed: 1,
		ExtraDelay: func(from, to types.ReplicaID, now time.Duration) time.Duration {
			if now < 100*time.Millisecond {
				return 500 * time.Millisecond
			}
			return 0
		},
	})
	e0 := &echoEngine{id: 0}
	e1 := &recorder{id: 1, at: &arrival}
	sim.SetEngine(0, e0)
	sim.SetEngine(1, e1)
	sim.Run(time.Second)
	if arrival < 500*time.Millisecond {
		t.Fatalf("pre-GST message arrived at %v, want >= 500ms", arrival)
	}
}

type recorder struct {
	id types.ReplicaID
	at *time.Duration
}

func (r *recorder) ID() types.ReplicaID                        { return r.id }
func (r *recorder) Init(time.Duration) []engine.Output         { return nil }
func (r *recorder) OnTimer(time.Duration, int) []engine.Output { return nil }
func (r *recorder) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	*r.at = now
	return nil
}

func TestRegionModels(t *testing.T) {
	sym := simnet.NewSymmetricModel(100, 3, time.Millisecond, 100*time.Millisecond, 0)
	// Region sizes 34/33/33.
	count := make(map[int]int)
	for _, r := range sym.RegionOf {
		count[r]++
	}
	if count[0] != 34 || count[1] != 33 || count[2] != 33 {
		t.Fatalf("symmetric regions: %v", count)
	}
	rng := newTestRand()
	if d := sym.Delay(0, 1, 0, rng); d != time.Millisecond {
		t.Errorf("intra delay = %v", d)
	}
	if d := sym.Delay(0, 99, 0, rng); d != 100*time.Millisecond {
		t.Errorf("inter delay = %v", d)
	}

	asym := simnet.NewAsymmetricModel([3]int{45, 45, 10}, time.Millisecond, 20*time.Millisecond, 200*time.Millisecond, 0)
	if d := asym.Delay(0, 50, 0, rng); d != 20*time.Millisecond {
		t.Errorf("A-B delay = %v", d)
	}
	if d := asym.Delay(0, 95, 0, rng); d != 200*time.Millisecond {
		t.Errorf("A-C delay = %v", d)
	}
	if d := asym.Delay(91, 95, 0, rng); d != time.Millisecond {
		t.Errorf("C intra delay = %v", d)
	}

	// Straggler penalty applies on both endpoints.
	sym.Penalty = map[types.ReplicaID]time.Duration{5: 40 * time.Millisecond}
	if d := sym.Delay(5, 1, 0, rng); d != 41*time.Millisecond {
		t.Errorf("sender penalty = %v", d)
	}
	if d := sym.Delay(1, 5, 0, rng); d != 41*time.Millisecond {
		t.Errorf("receiver penalty = %v", d)
	}
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

// pingEngine drives a steady, allocation-free event load: every timer tick it
// re-arms the timer and sends one message to a peer; messages are dropped on
// receipt. All outputs are prebuilt so the engine itself allocates nothing —
// what remains is the simulator's own event machinery.
type pingEngine struct {
	id      types.ReplicaID
	onTimer []engine.Output
}

func newPingEngine(id, peer types.ReplicaID, period time.Duration) *pingEngine {
	return &pingEngine{
		id: id,
		onTimer: []engine.Output{
			engine.Send{To: peer, Msg: &types.SyncRequest{Sender: id}},
			engine.SetTimer{ID: 1, Delay: period},
		},
	}
}

func (e *pingEngine) ID() types.ReplicaID { return e.id }

func (e *pingEngine) Init(now time.Duration) []engine.Output { return e.onTimer }

func (e *pingEngine) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	return nil
}

func (e *pingEngine) OnTimer(now time.Duration, id int) []engine.Output { return e.onTimer }

func newPingSim(n int, seed int64) *Sim {
	s := New(Config{
		N:       n,
		Latency: &UniformModel{Base: time.Millisecond},
		Seed:    seed,
	})
	for i := 0; i < n; i++ {
		s.SetEngine(types.ReplicaID(i), newPingEngine(types.ReplicaID(i), types.ReplicaID((i+1)%n), time.Millisecond))
	}
	return s
}

// TestSteadyStateDispatchAllocs is the PR-1 allocation guard for the pooled
// event queue: once the slab, heap, free list, and stats map have reached
// steady state, pushing and popping events must not allocate at all. The
// only tolerated allocation source is the engines' messages — and the ping
// engines prebuild theirs.
func TestSteadyStateDispatchAllocs(t *testing.T) {
	s := newPingSim(4, 1)
	// Warm up: grow the slab/heap to their steady-state capacity.
	until := 50 * time.Millisecond
	s.Run(until)
	start := s.Events()

	allocs := testing.AllocsPerRun(100, func() {
		until += 10 * time.Millisecond
		s.Run(until)
	})
	if allocs != 0 {
		t.Errorf("steady-state event dispatch allocates %.1f times per 10ms window, want 0", allocs)
	}
	if s.Events() == start {
		t.Fatal("guard did not process any events")
	}
}

// TestStatsCopy pins the satellite fix: Stats must return a defensive copy,
// not a view of the simulator's internals.
func TestStatsCopy(t *testing.T) {
	s := newPingSim(2, 1)
	s.Run(20 * time.Millisecond)
	got := s.Stats()
	if got.Count == 0 || got.ByType[types.MsgSyncRequest] == 0 {
		t.Fatal("expected traffic in stats")
	}
	got.ByType[types.MsgSyncRequest] = -1
	got.ByType[types.MsgProposal] = 12345
	fresh := s.Stats()
	if fresh.ByType[types.MsgSyncRequest] == -1 || fresh.ByType[types.MsgProposal] == 12345 {
		t.Error("mutating the returned ByType map corrupted simulator internals")
	}
}

// TestEventQueueOrdering pins the pooled heap's contract: events pop in
// (at, seq) order regardless of push order or slot recycling.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	times := []time.Duration{30, 10, 20, 10, 40, 10, 30}
	for i, at := range times {
		q.push(event{at: at, seq: uint64(i)})
	}
	// Drain half, then refill to force free-list recycling.
	for i := 0; i < 3; i++ {
		q.pop()
	}
	for i, at := range []time.Duration{5, 25, 15} {
		q.push(event{at: at, seq: uint64(100 + i)})
	}
	var prevAt time.Duration
	var prevSeq uint64
	for first := true; q.len() > 0; first = false {
		ev := q.pop()
		if !first && (ev.at < prevAt || (ev.at == prevAt && ev.seq < prevSeq)) {
			t.Fatalf("out of order: (%v,%d) after (%v,%d)", ev.at, ev.seq, prevAt, prevSeq)
		}
		prevAt, prevSeq = ev.at, ev.seq
	}
}

// BenchmarkSimnetEventLoop measures raw event throughput of the simulator
// core under the prebuilt ping workload (b.N events per iteration unit).
func BenchmarkSimnetEventLoop(b *testing.B) {
	s := newPingSim(8, 1)
	s.Run(10 * time.Millisecond) // warm up pools
	b.ReportAllocs()
	b.ResetTimer()
	until := 10 * time.Millisecond
	events := s.Events()
	for i := 0; i < b.N; i++ {
		until += time.Millisecond
		s.Run(until)
	}
	b.StopTimer()
	if n := s.Events() - events; n > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/event")
	}
}

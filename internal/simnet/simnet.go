// Package simnet is the deterministic discrete-event network simulator the
// experiments run on. It replaces the paper's 100-instance EC2 deployment:
// replicas are event-driven engines (internal/engine), message deliveries
// and timers are events on a virtual clock, and latency comes from a
// configurable region model. Runs are reproducible from a seed.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

// event kinds.
const (
	evMessage = iota
	evTimer
	evCrash
	evStart
)

type event struct {
	at   time.Duration
	seq  uint64 // FIFO tie-break for determinism
	kind int

	to   types.ReplicaID
	from types.ReplicaID
	msg  types.Message
	tid  int // timer id
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// MsgStats aggregates message accounting for one run.
type MsgStats struct {
	Count  int64
	Bytes  int64
	ByType map[types.MsgType]int64
}

// Config parameterizes a simulation.
type Config struct {
	// N is the number of replicas (engine slots).
	N int
	// Latency computes delivery delays; required.
	Latency LatencyModel
	// Seed drives all randomness (jitter). Same seed, same run.
	Seed int64
	// OnCommit, if non-nil, observes every engine.Commit output.
	OnCommit func(replica types.ReplicaID, now time.Duration, b *types.Block)
	// OnStrength, if non-nil, observes every engine.Strength output.
	OnStrength func(replica types.ReplicaID, now time.Duration, b *types.Block, x int)
	// Drop, if non-nil, discards matching deliveries (partitions, GST
	// modeling, targeted censorship).
	Drop func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool
	// ExtraDelay, if non-nil, adds to the model latency (e.g. unbounded
	// delays before GST).
	ExtraDelay func(from, to types.ReplicaID, now time.Duration) time.Duration
}

// Sim is one simulation instance. Create with New, attach engines with
// SetEngine, then Run.
type Sim struct {
	cfg     Config
	engines []engine.Engine
	crashed []bool
	queue   eventQueue
	seq     uint64
	now     time.Duration
	rng     *rand.Rand
	stats   MsgStats
	events  int64
}

// New creates a simulation with n empty engine slots.
func New(cfg Config) *Sim {
	s := &Sim{
		cfg:     cfg,
		engines: make([]engine.Engine, cfg.N),
		crashed: make([]bool, cfg.N),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	s.stats.ByType = make(map[types.MsgType]int64)
	return s
}

// SetEngine installs the engine for one replica slot. A nil engine models a
// replica that is down from the start.
func (s *Sim) SetEngine(id types.ReplicaID, e engine.Engine) {
	s.engines[id] = e
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Stats returns message accounting so far.
func (s *Sim) Stats() MsgStats { return s.stats }

// Events returns the number of events processed so far.
func (s *Sim) Events() int64 { return s.events }

// CrashAt schedules replica id to crash (stop processing events) at time at.
func (s *Sim) CrashAt(id types.ReplicaID, at time.Duration) {
	s.push(&event{at: at, kind: evCrash, to: id})
}

// Run initializes every engine at time 0 (if not already started) and
// processes events until the virtual clock passes `until` or the queue
// drains.
func (s *Sim) Run(until time.Duration) {
	if s.now == 0 && s.events == 0 {
		for i, e := range s.engines {
			if e != nil {
				s.push(&event{at: 0, kind: evStart, to: types.ReplicaID(i)})
			}
		}
	}
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if ev.at > until {
			s.now = until
			return
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		s.events++
		s.dispatch(ev)
	}
	s.now = until
}

func (s *Sim) dispatch(ev *event) {
	id := ev.to
	if ev.kind == evCrash {
		s.crashed[id] = true
		return
	}
	if s.crashed[id] || s.engines[id] == nil {
		return
	}
	eng := s.engines[id]
	var outs []engine.Output
	switch ev.kind {
	case evStart:
		outs = eng.Init(s.now)
	case evMessage:
		outs = eng.OnMessage(s.now, ev.from, ev.msg)
	case evTimer:
		outs = eng.OnTimer(s.now, ev.tid)
	}
	s.apply(id, outs)
}

func (s *Sim) apply(id types.ReplicaID, outs []engine.Output) {
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			s.deliver(id, o.To, o.Msg)
		case engine.Broadcast:
			for i := 0; i < s.cfg.N; i++ {
				to := types.ReplicaID(i)
				if to == id {
					continue
				}
				s.deliver(id, to, o.Msg)
			}
			if o.SelfDeliver {
				// Local delivery is immediate: same-replica handoff.
				s.push(&event{at: s.now, kind: evMessage, to: id, from: id, msg: o.Msg})
			}
		case engine.SetTimer:
			s.push(&event{at: s.now + o.Delay, kind: evTimer, to: id, tid: o.ID})
		case engine.Commit:
			if s.cfg.OnCommit != nil {
				s.cfg.OnCommit(id, s.now, o.Block)
			}
		case engine.Strength:
			if s.cfg.OnStrength != nil {
				s.cfg.OnStrength(id, s.now, o.Block, o.X)
			}
		}
	}
}

func (s *Sim) deliver(from, to types.ReplicaID, msg types.Message) {
	if s.cfg.Drop != nil && s.cfg.Drop(from, to, msg, s.now) {
		return
	}
	s.stats.Count++
	s.stats.Bytes += int64(msg.Size())
	s.stats.ByType[msg.Type()]++
	d := s.cfg.Latency.Delay(from, to, msg.Size(), s.rng)
	if s.cfg.ExtraDelay != nil {
		d += s.cfg.ExtraDelay(from, to, s.now)
	}
	s.push(&event{at: s.now + d, kind: evMessage, to: to, from: from, msg: msg})
}

func (s *Sim) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

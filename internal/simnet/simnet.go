// Package simnet is the deterministic discrete-event network simulator the
// experiments run on. It replaces the paper's 100-instance EC2 deployment:
// replicas are event-driven engines (internal/engine), message deliveries
// and timers are events on a virtual clock, and latency comes from a
// configurable region model. Runs are reproducible from a seed.
package simnet

import (
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

// event kinds.
const (
	evMessage = iota
	evTimer
	evCrash
	evStart
	evPartition
	evHeal
)

type event struct {
	at   time.Duration
	seq  uint64 // FIFO tie-break for determinism
	kind int32
	tid  int // timer id; full width, engines pack round numbers into it

	to   types.ReplicaID
	from types.ReplicaID
	msg  types.Message

	// build, set on restart events, constructs the replacement engine at
	// dispatch time — by then the crashed replica's WAL holds everything up
	// to the crash, so the factory recovers exactly the pre-crash state.
	build func() engine.Engine

	// groups, set on partition events, lists the replica groups that can
	// still reach each other once the partition installs.
	groups [][]types.ReplicaID
}

// eventQueue is a pooled, value-based binary min-heap. Events live in a slab
// ([]event) whose free slots are recycled through a free list, and the heap
// orders int32 slab indices by (at, seq). Compared to the former
// container/heap of *event, pushing an event neither allocates a node nor
// boxes it through an interface, so steady-state simulation — where the
// queue size plateaus — runs allocation-free per event. (at, seq) is a total
// order (seq is unique), so any correct heap pops events in the identical
// deterministic sequence.
type eventQueue struct {
	slab []event
	free []int32
	heap []int32
}

func (q *eventQueue) len() int { return len(q.heap) }

// peek returns the index of the minimum event. The caller must not hold the
// reference across a push or pop.
func (q *eventQueue) peek() *event { return &q.slab[q.heap[0]] }

func (q *eventQueue) less(i, j int32) bool {
	a, b := &q.slab[i], &q.slab[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev event) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slab))
		q.slab = append(q.slab, event{})
	}
	q.slab[idx] = ev
	q.heap = append(q.heap, idx)
	// Sift up.
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes the minimum event and returns it by value, recycling its slot.
func (q *eventQueue) pop() event {
	idx := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(q.heap[l], q.heap[smallest]) {
			smallest = l
		}
		if r < n && q.less(q.heap[r], q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	ev := q.slab[idx]
	// Drop reference-typed fields so the GC can reclaim them while the slot
	// sits on the free list.
	q.slab[idx].msg = nil
	q.slab[idx].build = nil
	q.slab[idx].groups = nil
	q.free = append(q.free, idx)
	return ev
}

// MsgStats aggregates message accounting for one run.
type MsgStats struct {
	Count  int64
	Bytes  int64
	ByType map[types.MsgType]int64
}

// Config parameterizes a simulation.
type Config struct {
	// N is the number of replicas (engine slots).
	N int
	// Latency computes delivery delays; required.
	Latency LatencyModel
	// Seed drives all randomness (jitter). Same seed, same run.
	Seed int64
	// OnCommit, if non-nil, observes every engine.Commit output.
	OnCommit func(replica types.ReplicaID, now time.Duration, b *types.Block)
	// OnStrength, if non-nil, observes every engine.Strength output.
	OnStrength func(replica types.ReplicaID, now time.Duration, b *types.Block, x int)
	// Drop, if non-nil, discards matching deliveries (partitions, GST
	// modeling, targeted censorship).
	Drop func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool
	// ExtraDelay, if non-nil, adds to the model latency (e.g. unbounded
	// delays before GST).
	ExtraDelay func(from, to types.ReplicaID, now time.Duration) time.Duration
	// Observers adds non-voting engine slots numbered N..N+Observers-1.
	// Observer slots receive every replica broadcast (the fabric-level
	// analogue of tcpnet's observer mirroring) but are outside the committee:
	// replicas never address them except in reply to their own requests.
	// Latency models that index per-replica state see observer endpoints as
	// replica 0.
	Observers int
	// Prevalidate routes message deliveries through the engines'
	// prevalidate/apply split (engine.Pipelined): each delivery is
	// prevalidated synchronously — the simulator stays single-threaded and
	// deterministic — and applied via OnVerifiedMessage, exercising the
	// exact code path the real runtime's worker pool uses. Deliveries that
	// fail prevalidation are dropped (and counted), which for honest traffic
	// never happens, keeping fixed-seed runs bit-identical to Prevalidate
	// off. Engines that do not implement engine.Pipelined fall back to
	// OnMessage.
	Prevalidate bool
}

// Sim is one simulation instance. Create with New, attach engines with
// SetEngine, then Run.
type Sim struct {
	cfg     Config
	engines []engine.Engine
	// pipelined caches the engine.Pipelined capability per slot (nil when
	// Config.Prevalidate is off or the engine lacks the split), so the
	// dispatch loop pays no type assertion per event.
	pipelined  []engine.Pipelined
	crashed    []bool
	queue      eventQueue
	seq        uint64
	now        time.Duration
	rng        *rand.Rand
	stats      MsgStats
	events     int64
	prevalDrop int64

	// partition, when non-nil, maps each replica to its group; deliveries
	// crossing groups are discarded at send time (messages already in
	// flight when a partition installs still arrive, like real routes
	// converging). nil means fully connected — the honest-path check is one
	// nil comparison, so partition support costs connected runs nothing.
	partition []int32
	partDrop  int64
}

// New creates a simulation with n empty engine slots (plus observer slots,
// when configured).
func New(cfg Config) *Sim {
	slots := cfg.N + cfg.Observers
	s := &Sim{
		cfg:       cfg,
		engines:   make([]engine.Engine, slots),
		pipelined: make([]engine.Pipelined, slots),
		crashed:   make([]bool, slots),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	s.stats.ByType = make(map[types.MsgType]int64)
	return s
}

// SetEngine installs the engine for one replica slot. A nil engine models a
// replica that is down from the start.
func (s *Sim) SetEngine(id types.ReplicaID, e engine.Engine) {
	s.engines[id] = e
	s.pipelined[id] = nil
	if s.cfg.Prevalidate {
		if p, ok := e.(engine.Pipelined); ok {
			s.pipelined[id] = p
		}
	}
}

// PrevalidateDrops returns how many deliveries failed prevalidation (always
// 0 for honest traffic; scripted adversaries sign their messages too).
func (s *Sim) PrevalidateDrops() int64 { return s.prevalDrop }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Stats returns a copy of the message accounting so far. The ByType map is
// cloned so callers cannot mutate (or observe later mutations of) the
// simulator's internal counters.
func (s *Sim) Stats() MsgStats {
	out := s.stats
	out.ByType = make(map[types.MsgType]int64, len(s.stats.ByType))
	for k, v := range s.stats.ByType {
		out.ByType[k] = v
	}
	return out
}

// Events returns the number of events processed so far.
func (s *Sim) Events() int64 { return s.events }

// CrashAt schedules replica id to crash (stop processing events) at time at.
func (s *Sim) CrashAt(id types.ReplicaID, at time.Duration) {
	s.push(event{at: at, kind: evCrash, to: id})
}

// PartitionAt schedules a network partition at virtual time at: replicas in
// the same group keep talking, deliveries crossing groups are dropped (at
// send time; in-flight messages still land). Replicas not listed in any
// group form one implicit final group together, so PartitionAt(t, g) splits
// g from the rest. A new partition replaces the previous one; HealAt
// restores full connectivity.
func (s *Sim) PartitionAt(at time.Duration, groups ...[]types.ReplicaID) {
	s.push(event{at: at, kind: evPartition, groups: groups})
}

// HealAt schedules the partition (if any) to heal at virtual time at.
func (s *Sim) HealAt(at time.Duration) {
	s.push(event{at: at, kind: evHeal})
}

// PartitionDrops returns how many deliveries were discarded by partitions.
func (s *Sim) PartitionDrops() int64 { return s.partDrop }

// RestartAt schedules replica id to come back at time at with the engine the
// factory builds — typically one recovered from the replica's write-ahead
// log. The factory runs at dispatch time (virtual time at), after every
// pre-crash event has been processed, so it observes the final durable
// state. Restarting clears the crashed flag; messages sent to the replica
// while it was down were delivered into the void, exactly like a real
// process restart.
func (s *Sim) RestartAt(id types.ReplicaID, at time.Duration, build func() engine.Engine) {
	s.push(event{at: at, kind: evStart, to: id, build: build})
}

// Run initializes every engine at time 0 (if not already started) and
// processes events until the virtual clock passes `until` or the queue
// drains.
func (s *Sim) Run(until time.Duration) {
	if s.now == 0 && s.events == 0 {
		for i, e := range s.engines {
			if e != nil {
				s.push(event{at: 0, kind: evStart, to: types.ReplicaID(i)})
			}
		}
	}
	for s.queue.len() > 0 {
		if s.queue.peek().at > until {
			s.now = until
			return
		}
		ev := s.queue.pop()
		s.now = ev.at
		s.events++
		s.dispatch(ev)
	}
	s.now = until
}

func (s *Sim) dispatch(ev event) {
	id := ev.to
	switch ev.kind {
	case evCrash:
		s.crashed[id] = true
		return
	case evPartition:
		s.installPartition(ev.groups)
		return
	case evHeal:
		s.partition = nil
		return
	}
	if ev.kind == evStart && ev.build != nil {
		// Restart: install the recovered engine and fall through to Init.
		s.SetEngine(id, ev.build())
		s.crashed[id] = false
	}
	if s.crashed[id] || s.engines[id] == nil {
		return
	}
	eng := s.engines[id]
	var outs []engine.Output
	switch ev.kind {
	case evStart:
		outs = eng.Init(s.now)
	case evMessage:
		if p := s.pipelined[id]; p != nil {
			// The verification-pipeline path, run synchronously so the
			// simulation stays deterministic. Self-deliveries are locally
			// generated and trusted, exactly like the runtime's loopback.
			if ev.from != id {
				if err := p.Prevalidate(ev.from, ev.msg); err != nil {
					s.prevalDrop++
					return
				}
			}
			outs = p.OnVerifiedMessage(s.now, ev.from, ev.msg)
		} else {
			outs = eng.OnMessage(s.now, ev.from, ev.msg)
		}
	case evTimer:
		outs = eng.OnTimer(s.now, ev.tid)
	}
	s.apply(id, outs)
}

func (s *Sim) apply(id types.ReplicaID, outs []engine.Output) {
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			s.deliver(id, o.To, o.Msg)
		case engine.Broadcast:
			// Observer slots (>= N) receive every broadcast too — the
			// fabric-level form of tcpnet's mirroring.
			for i := range s.engines {
				to := types.ReplicaID(i)
				if to == id {
					continue
				}
				s.deliver(id, to, o.Msg)
			}
			if o.SelfDeliver {
				// Local delivery is immediate: same-replica handoff.
				s.push(event{at: s.now, kind: evMessage, to: id, from: id, msg: o.Msg})
			}
		case engine.SetTimer:
			s.push(event{at: s.now + o.Delay, kind: evTimer, to: id, tid: o.ID})
		case engine.Commit:
			if s.cfg.OnCommit != nil {
				s.cfg.OnCommit(id, s.now, o.Block)
			}
		case engine.Strength:
			if s.cfg.OnStrength != nil {
				s.cfg.OnStrength(id, s.now, o.Block, o.X)
			}
		}
	}
}

// installPartition assigns each listed replica its group index; unlisted
// replicas share the implicit final group.
func (s *Sim) installPartition(groups [][]types.ReplicaID) {
	part := make([]int32, len(s.engines))
	implicit := int32(len(groups))
	for i := range part {
		part[i] = implicit
	}
	for g, members := range groups {
		for _, id := range members {
			if int(id) < len(part) {
				part[id] = int32(g)
			}
		}
	}
	s.partition = part
}

func (s *Sim) deliver(from, to types.ReplicaID, msg types.Message) {
	if int(to) >= len(s.engines) {
		return
	}
	if s.partition != nil && s.partition[from] != s.partition[to] {
		s.partDrop++
		return
	}
	if s.cfg.Drop != nil && s.cfg.Drop(from, to, msg, s.now) {
		return
	}
	s.stats.Count++
	s.stats.Bytes += int64(msg.Size())
	s.stats.ByType[msg.Type()]++
	// Latency models size per-replica state by N; observer endpoints take
	// replica 0's profile.
	lf, lt := from, to
	if int(lf) >= s.cfg.N {
		lf = 0
	}
	if int(lt) >= s.cfg.N {
		lt = 0
	}
	d := s.cfg.Latency.Delay(lf, lt, msg.Size(), s.rng)
	if s.cfg.ExtraDelay != nil {
		d += s.cfg.ExtraDelay(from, to, s.now)
	}
	s.push(event{at: s.now + d, kind: evMessage, to: to, from: from, msg: msg})
}

func (s *Sim) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.queue.push(ev)
}

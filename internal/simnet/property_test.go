package simnet_test

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

// chainEngine forwards a token around the ring, recording hop times; used
// to property-test event ordering.
type chainEngine struct {
	id   types.ReplicaID
	n    int
	hops *[]time.Duration
}

func (e *chainEngine) ID() types.ReplicaID { return e.id }
func (e *chainEngine) Init(now time.Duration) []engine.Output {
	if e.id == 0 {
		return []engine.Output{engine.Send{To: 1, Msg: ping{Tag: "token"}}}
	}
	return nil
}
func (e *chainEngine) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	*e.hops = append(*e.hops, now)
	if len(*e.hops) >= 50 {
		return nil
	}
	next := types.ReplicaID((int(e.id) + 1) % e.n)
	return []engine.Output{engine.Send{To: next, Msg: msg}}
}
func (e *chainEngine) OnTimer(time.Duration, int) []engine.Output { return nil }

// TestEventTimeMonotonicity: virtual time observed by engines never goes
// backwards, and delays accumulate per the latency model.
func TestEventTimeMonotonicity(t *testing.T) {
	const n = 5
	var hops []time.Duration
	sim := simnet.New(simnet.Config{
		N:       n,
		Latency: &simnet.UniformModel{Base: 3 * time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:    9,
	})
	for i := 0; i < n; i++ {
		sim.SetEngine(types.ReplicaID(i), &chainEngine{id: types.ReplicaID(i), n: n, hops: &hops})
	}
	sim.Run(10 * time.Second)

	if len(hops) < 50 {
		t.Fatalf("token made only %d hops", len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if hops[i] < hops[i-1] {
			t.Fatalf("time went backwards at hop %d: %v < %v", i, hops[i], hops[i-1])
		}
		gap := hops[i] - hops[i-1]
		if gap < 3*time.Millisecond || gap > 5*time.Millisecond {
			t.Fatalf("hop %d gap %v outside [base, base+jitter]", i, gap)
		}
	}
}

// TestRunBoundary: events beyond the `until` horizon are not dispatched and
// the clock parks exactly at the horizon.
func TestRunBoundary(t *testing.T) {
	var hops []time.Duration
	sim := simnet.New(simnet.Config{
		N:       2,
		Latency: &simnet.UniformModel{Base: 30 * time.Millisecond},
		Seed:    1,
	})
	sim.SetEngine(0, &chainEngine{id: 0, n: 2, hops: &hops})
	sim.SetEngine(1, &chainEngine{id: 1, n: 2, hops: &hops})
	sim.Run(100 * time.Millisecond)
	if sim.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v", sim.Now())
	}
	for _, h := range hops {
		if h > 100*time.Millisecond {
			t.Fatalf("event dispatched beyond horizon: %v", h)
		}
	}
	// Run can be resumed to a later horizon.
	before := len(hops)
	sim.Run(200 * time.Millisecond)
	if len(hops) <= before {
		t.Fatal("resume dispatched nothing")
	}
}

// TestEventsCounter: the processed-event counter matches dispatches.
func TestEventsCounter(t *testing.T) {
	var hops []time.Duration
	sim := simnet.New(simnet.Config{
		N:       2,
		Latency: &simnet.UniformModel{Base: time.Millisecond},
		Seed:    1,
	})
	sim.SetEngine(0, &chainEngine{id: 0, n: 2, hops: &hops})
	sim.SetEngine(1, &chainEngine{id: 1, n: 2, hops: &hops})
	sim.Run(time.Second)
	// 2 starts + 50 message deliveries.
	if got := sim.Events(); got != 52 {
		t.Fatalf("events = %d, want 52", got)
	}
}

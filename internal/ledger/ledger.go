// Package ledger maintains one replica's committed transaction log — the
// linearizable log that BFT SMR exposes to applications — together with
// per-block strong-commit strength levels and a cross-replica consistency
// checker used by tests and the harness to verify the paper's safety
// properties end to end.
package ledger

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// Errors returned by Ledger operations.
var (
	ErrGap      = errors.New("ledger: commit height gap")
	ErrConflict = errors.New("ledger: conflicting commit at height")
)

// Entry is one committed block in the log.
type Entry struct {
	Block    *types.Block
	Strength int // highest known x such that the block is x-strong committed
	// AppHash is the execution-layer state root the replica computed for the
	// block (zero when no execution layer ran). Recorded via SetAppHash; the
	// consistency checker compares it across replicas per height.
	AppHash [32]byte
}

// Applier consumes committed transactions in order; the application's state
// machine. Implementations must be deterministic.
type Applier interface {
	// Apply executes one transaction. It is called exactly once per
	// committed transaction, in log order.
	Apply(txn types.Transaction)
}

// Ledger is one replica's committed chain prefix. Not safe for concurrent
// use; the engine's event loop owns it.
type Ledger struct {
	entries []Entry
	index   map[types.BlockID]int
	applier Applier
	applied int64
}

// New creates an empty ledger; applier may be nil.
func New(applier Applier) *Ledger {
	return &Ledger{index: make(map[types.BlockID]int), applier: applier}
}

// Commit appends a block at the next height. Blocks must arrive in height
// order with no gaps (engines emit commits that way), starting at height 1.
func (l *Ledger) Commit(b *types.Block) error {
	want := types.Height(len(l.entries) + 1)
	if b.Height != want {
		if b.Height <= types.Height(len(l.entries)) {
			// Duplicate commit of an existing height must match exactly.
			if l.entries[b.Height-1].Block.ID() != b.ID() {
				return fmt.Errorf("%w %d: %v vs %v", ErrConflict, b.Height,
					l.entries[b.Height-1].Block.ID(), b.ID())
			}
			return nil
		}
		return fmt.Errorf("%w: got h%d, want h%d", ErrGap, b.Height, want)
	}
	l.entries = append(l.entries, Entry{Block: b, Strength: -1})
	l.index[b.ID()] = len(l.entries) - 1
	if l.applier != nil {
		for _, txn := range b.Payload.Txns {
			l.applier.Apply(txn)
			l.applied++
		}
	}
	return nil
}

// Strengthen records that a block reached strength x. Unknown blocks are
// ignored (strength events can race ahead of commits for uncommitted
// descendants).
func (l *Ledger) Strengthen(id types.BlockID, x int) {
	if i, ok := l.index[id]; ok && x > l.entries[i].Strength {
		l.entries[i].Strength = x
	}
}

// SetAppHash records the execution-layer state root the replica computed for
// a committed block. Unknown blocks are ignored.
func (l *Ledger) SetAppHash(id types.BlockID, root [32]byte) {
	if i, ok := l.index[id]; ok {
		l.entries[i].AppHash = root
	}
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() types.Height { return types.Height(len(l.entries)) }

// Applied returns the number of transactions applied to the state machine.
func (l *Ledger) Applied() int64 { return l.applied }

// At returns the entry at height h (1-based), or nil.
func (l *Ledger) At(h types.Height) *Entry {
	if h < 1 || h > types.Height(len(l.entries)) {
		return nil
	}
	return &l.entries[h-1]
}

// StrengthAt returns the strength of the block at height h, or -1.
func (l *Ledger) StrengthAt(h types.Height) int {
	if e := l.At(h); e != nil {
		return e.Strength
	}
	return -1
}

// MinStrengthOver returns the minimum strength over heights [from, to], the
// assurance of the whole prefix a client relies on when acting on height
// `to` given everything since `from`.
func (l *Ledger) MinStrengthOver(from, to types.Height) int {
	minX := -1
	for h := from; h <= to; h++ {
		e := l.At(h)
		if e == nil {
			return -1
		}
		if minX == -1 || e.Strength < minX {
			minX = e.Strength
		}
	}
	return minX
}

// CheckPrefixConsistency verifies the BFT SMR safety property across
// replicas: no two ledgers commit different blocks at the same height.
// It returns the first divergence found.
func CheckPrefixConsistency(ledgers []*Ledger) error {
	if len(ledgers) == 0 {
		return nil
	}
	for h := types.Height(1); ; h++ {
		var ref *Entry
		var refIdx int
		any := false
		for i, l := range ledgers {
			e := l.At(h)
			if e == nil {
				continue
			}
			any = true
			if ref == nil {
				ref, refIdx = e, i
				continue
			}
			if e.Block.ID() != ref.Block.ID() {
				return fmt.Errorf("%w %d: replica %d has %v, replica %d has %v",
					ErrConflict, h, refIdx, ref.Block.ID(), i, e.Block.ID())
			}
			// Same block, different executed state: a state fork the ordering
			// check alone cannot see. Roots are compared only where both
			// replicas recorded one (zero = no execution layer on that side).
			if e.AppHash != ref.AppHash && e.AppHash != ([32]byte{}) && ref.AppHash != ([32]byte{}) {
				return fmt.Errorf("%w %d: replica %d state root %x, replica %d state root %x",
					ErrConflict, h, refIdx, ref.AppHash[:8], i, e.AppHash[:8])
			}
		}
		if !any {
			return nil
		}
	}
}

// KVStore is a deterministic Applier for tests and examples: transactions
// whose Data is "key=value" update a map; everything else is a no-op write
// counted but not stored.
type KVStore struct {
	state map[string]string
	ops   int64
}

// NewKVStore creates an empty store.
func NewKVStore() *KVStore {
	return &KVStore{state: make(map[string]string)}
}

// Apply implements Applier.
func (kv *KVStore) Apply(txn types.Transaction) {
	kv.ops++
	for i, c := range txn.Data {
		if c == '=' {
			kv.state[string(txn.Data[:i])] = string(txn.Data[i+1:])
			return
		}
	}
}

// Get returns the value for key and whether it exists.
func (kv *KVStore) Get(key string) (string, bool) {
	v, ok := kv.state[key]
	return v, ok
}

// Ops returns the number of applied transactions.
func (kv *KVStore) Ops() int64 { return kv.ops }

// Len returns the number of live keys.
func (kv *KVStore) Len() int { return len(kv.state) }

package ledger_test

import (
	"errors"
	"testing"

	"repro/internal/ledger"
	"repro/internal/types"
)

func mkBlock(parent types.BlockID, h types.Height, txns ...types.Transaction) *types.Block {
	return types.NewBlock(parent, types.NewGenesisQC(parent), types.Round(h), h, 0, int64(h),
		types.Payload{Txns: txns}, nil)
}

func TestCommitOrderAndApply(t *testing.T) {
	kv := ledger.NewKVStore()
	l := ledger.New(kv)
	g := types.Genesis()

	b1 := mkBlock(g.ID(), 1, types.Transaction{Sender: 1, Seq: 1, Data: []byte("a=1")})
	b2 := mkBlock(b1.ID(), 2, types.Transaction{Sender: 1, Seq: 2, Data: []byte("a=2")},
		types.Transaction{Sender: 2, Seq: 1, Data: []byte("b=9")})

	if err := l.Commit(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(b2); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 2 || l.Applied() != 3 {
		t.Fatalf("height=%d applied=%d", l.Height(), l.Applied())
	}
	if v, _ := kv.Get("a"); v != "2" {
		t.Fatalf("a=%q, want 2 (later write wins)", v)
	}
	if v, _ := kv.Get("b"); v != "9" {
		t.Fatalf("b=%q", v)
	}
	if kv.Len() != 2 || kv.Ops() != 3 {
		t.Fatalf("kv len=%d ops=%d", kv.Len(), kv.Ops())
	}
}

func TestCommitGapRejected(t *testing.T) {
	l := ledger.New(nil)
	g := types.Genesis()
	b1 := mkBlock(g.ID(), 1)
	b3 := mkBlock(b1.ID(), 3)
	if err := l.Commit(b3); !errors.Is(err, ledger.ErrGap) {
		t.Fatalf("want ErrGap, got %v", err)
	}
}

func TestDuplicateCommit(t *testing.T) {
	l := ledger.New(nil)
	g := types.Genesis()
	b1 := mkBlock(g.ID(), 1)
	if err := l.Commit(b1); err != nil {
		t.Fatal(err)
	}
	// Same block again: no-op.
	if err := l.Commit(b1); err != nil {
		t.Fatal(err)
	}
	// A DIFFERENT block at the same height: safety violation surfaced.
	other := mkBlock(g.ID(), 1, types.Transaction{Sender: 9})
	if err := l.Commit(other); !errors.Is(err, ledger.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
}

func TestStrengthTracking(t *testing.T) {
	l := ledger.New(nil)
	g := types.Genesis()
	b1 := mkBlock(g.ID(), 1)
	b2 := mkBlock(b1.ID(), 2)
	_ = l.Commit(b1)
	_ = l.Commit(b2)

	l.Strengthen(b1.ID(), 3)
	l.Strengthen(b1.ID(), 2) // regression ignored
	l.Strengthen(b2.ID(), 1)
	if l.StrengthAt(1) != 3 || l.StrengthAt(2) != 1 {
		t.Fatalf("strengths: %d, %d", l.StrengthAt(1), l.StrengthAt(2))
	}
	if got := l.MinStrengthOver(1, 2); got != 1 {
		t.Fatalf("min over prefix = %d", got)
	}
	if l.StrengthAt(9) != -1 {
		t.Fatal("unknown height has strength")
	}
	// Strengthen for a block not in the ledger: ignored, no panic.
	l.Strengthen(types.BlockID{9}, 5)
}

func TestCheckPrefixConsistency(t *testing.T) {
	g := types.Genesis()
	b1 := mkBlock(g.ID(), 1)
	b2 := mkBlock(b1.ID(), 2)
	forged := mkBlock(b1.ID(), 2, types.Transaction{Sender: 66})

	mk := func(blocks ...*types.Block) *ledger.Ledger {
		l := ledger.New(nil)
		for _, b := range blocks {
			if err := l.Commit(b); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	// Agreeing prefixes of different lengths: fine.
	if err := ledger.CheckPrefixConsistency([]*ledger.Ledger{mk(b1, b2), mk(b1)}); err != nil {
		t.Fatalf("consistent ledgers flagged: %v", err)
	}
	// Divergence at height 2: flagged.
	if err := ledger.CheckPrefixConsistency([]*ledger.Ledger{mk(b1, b2), mk(b1, forged)}); err == nil {
		t.Fatal("divergence not detected")
	}
	if err := ledger.CheckPrefixConsistency(nil); err != nil {
		t.Fatal("empty set must pass")
	}
}

func TestCheckPrefixConsistencyAppHash(t *testing.T) {
	g := types.Genesis()
	b1 := mkBlock(g.ID(), 1)

	mk := func(root [32]byte) *ledger.Ledger {
		l := ledger.New(nil)
		if err := l.Commit(b1); err != nil {
			t.Fatal(err)
		}
		l.SetAppHash(b1.ID(), root)
		return l
	}
	rootA := [32]byte{1}
	rootB := [32]byte{2}

	// Same block, same executed root: fine.
	if err := ledger.CheckPrefixConsistency([]*ledger.Ledger{mk(rootA), mk(rootA)}); err != nil {
		t.Fatalf("agreeing roots flagged: %v", err)
	}
	// Same block, divergent roots: a state fork the block-ID check cannot see.
	err := ledger.CheckPrefixConsistency([]*ledger.Ledger{mk(rootA), mk(rootB)})
	if !errors.Is(err, ledger.ErrConflict) {
		t.Fatalf("want ErrConflict for divergent roots, got %v", err)
	}
	// One side without an execution layer (zero root): tolerated.
	if err := ledger.CheckPrefixConsistency([]*ledger.Ledger{mk(rootA), mk([32]byte{})}); err != nil {
		t.Fatalf("zero-root side flagged: %v", err)
	}
	// SetAppHash for an unknown block: ignored, no panic.
	mk(rootA).SetAppHash(types.BlockID{9}, rootB)
}

package statesync

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/types"
)

// chainFixture builds a store holding a linear certified chain of length n
// (every block certified, each block's justify certifying its parent) and
// returns the store plus the blocks in ascending order.
func chainFixture(t *testing.T, n int) (*blockstore.Store, []*types.Block) {
	t.Helper()
	s := blockstore.New()
	parent := s.Genesis()
	parentQC := s.HighQC()
	blocks := make([]*types.Block, 0, n)
	for i := 1; i <= n; i++ {
		b := types.NewBlock(parent.ID(), parentQC, types.Round(i), types.Height(i), 0, int64(i), types.Payload{}, nil)
		if err := s.Insert(b); err != nil {
			t.Fatalf("insert h%d: %v", i, err)
		}
		qc := forge(b)
		if _, _, err := s.RegisterQC(qc); err != nil {
			t.Fatalf("register h%d: %v", i, err)
		}
		blocks = append(blocks, b)
		parent, parentQC = b, qc
	}
	return s, blocks
}

// forge builds an unsigned 3-vote certificate for b (structure-valid for
// quorum 3; signature checks are off in these tests).
func forge(b *types.Block) *types.QC {
	votes := make([]types.Vote, 3)
	for i := range votes {
		votes[i] = types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: types.ReplicaID(i)}
	}
	return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
}

func TestServeReturnsAscendingConnectedSegment(t *testing.T) {
	s, blocks := chainFixture(t, 10)
	resp := Serve(s, NewRequest(4, 1), 0, 0)
	if resp == nil {
		t.Fatal("no response for a lagging requester")
	}
	if len(resp.Blocks) != 6 {
		t.Fatalf("served %d blocks, want 6 (heights 5..10)", len(resp.Blocks))
	}
	for i, b := range resp.Blocks {
		if b.Height != types.Height(5+i) {
			t.Fatalf("segment position %d has height %d", i, b.Height)
		}
	}
	if resp.HighQC == nil || resp.HighQC.Block != blocks[9].ID() {
		t.Fatal("segment reaching the tip must carry the responder's high QC")
	}
}

func TestServeCapsAtLowEnd(t *testing.T) {
	s, _ := chainFixture(t, 10)
	resp := Serve(s, NewRequest(0, 1), 0, 4)
	if len(resp.Blocks) != 4 {
		t.Fatalf("served %d blocks, want cap 4", len(resp.Blocks))
	}
	// The LOWEST four, so the first connects to the requester's chain.
	if resp.Blocks[0].Height != 1 || resp.Blocks[3].Height != 4 {
		t.Fatalf("cap kept wrong end: heights %d..%d", resp.Blocks[0].Height, resp.Blocks[3].Height)
	}
	if resp.HighQC != nil {
		t.Fatal("capped segment does not reach the tip; no high QC expected")
	}
}

func TestServeNothingForCaughtUpPeer(t *testing.T) {
	s, _ := chainFixture(t, 5)
	if resp := Serve(s, NewRequest(5, 1), 0, 0); resp != nil {
		t.Fatalf("served %d blocks to a caught-up peer", len(resp.Blocks))
	}
}

func TestApplyInstallsSegment(t *testing.T) {
	src, blocks := chainFixture(t, 8)
	resp := Serve(src, NewRequest(0, 1), 0, 0)

	dst := blockstore.New()
	var installed, qcs int
	var high *types.QC
	ap := Applier{
		Store:     dst,
		Quorum:    3,
		OnInstall: func(*types.Block) { installed++ },
		OnQC:      func(*types.QC) { qcs++ },
		OnHighQC:  func(qc *types.QC) { high = qc },
	}
	n, err := ap.Apply(resp)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || installed != 8 {
		t.Fatalf("installed %d/%d blocks, want 8", n, installed)
	}
	for _, b := range blocks {
		if !dst.Has(b.ID()) {
			t.Fatalf("missing %v after apply", b)
		}
	}
	if high == nil || high.Block != blocks[7].ID() {
		t.Fatal("high QC hook not invoked with the tip certificate")
	}
	// Justifies certify heights 0..7; the tip's own cert arrives via the
	// high QC hook which the engine registers.
	if !dst.IsCertified(blocks[6].ID()) {
		t.Fatal("interior blocks must come out certified")
	}
}

func TestApplyRejectsBrokenLink(t *testing.T) {
	src, blocks := chainFixture(t, 6)
	resp := Serve(src, NewRequest(0, 1), 0, 0)
	// Corrupt the middle: swap in a justify that does not certify the
	// parent.
	bad := *resp.Blocks[3]
	bad.Justify = forge(blocks[5])
	resp.Blocks[3] = &bad

	dst := blockstore.New()
	ap := Applier{Store: dst, Quorum: 3}
	n, err := ap.Apply(resp)
	if err == nil {
		t.Fatal("broken segment accepted")
	}
	if n != 3 {
		t.Fatalf("installed %d blocks before the bad link, want 3", n)
	}
}

func TestApplyRejectsUnderQuorumCertificate(t *testing.T) {
	src, _ := chainFixture(t, 3)
	resp := Serve(src, NewRequest(0, 1), 0, 0)
	resp.Blocks[1].Justify.Votes = resp.Blocks[1].Justify.Votes[:1] // gut the quorum

	dst := blockstore.New()
	ap := Applier{Store: dst, Quorum: 3}
	if _, err := ap.Apply(resp); err == nil {
		t.Fatal("under-quorum certificate accepted")
	}
}

func TestApplySkipsKnownBlocks(t *testing.T) {
	src, _ := chainFixture(t, 5)
	resp := Serve(src, NewRequest(0, 1), 0, 0)
	dst := blockstore.New()
	ap := Applier{Store: dst, Quorum: 3}
	if _, err := ap.Apply(resp); err != nil {
		t.Fatal(err)
	}
	n, err := ap.Apply(resp) // idempotent re-apply
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("re-apply installed %d blocks, want 0", n)
	}
}

// Package statesync implements the catch-up protocol a recovered or lagging
// replica uses to rejoin the cluster: it asks peers for the certified chain
// above its committed height (types.StateSyncRequest) and installs the
// returned segment link by link (types.StateSyncResponse), each block
// validated by its successor's embedded justify QC and the segment tip by
// the responder's high QC.
//
// The package is engine-agnostic: both the DiemBFT and Streamlet engines
// serve requests with Serve and install responses with an Applier, over
// whichever transport hosts them (the discrete-event simulator or the TCP
// runtime — the messages are ordinary wire messages).
//
// Relation to the per-block SyncRequest healing that predates this package:
// SyncRequest repairs one known hole ("I saw a proposal whose parent I do
// not have"). State sync is for a replica that only knows how far it got —
// after a crash-restart from its WAL, or when it detects it has fallen many
// rounds behind — and wants everything after that.
package statesync

import (
	"fmt"

	"repro/internal/blockstore"
	"repro/internal/types"
)

// DefaultMaxBlocks caps one response segment. A requester whose gap exceeds
// it heals over multiple request/response rounds as its tip advances.
const DefaultMaxBlocks = 128

// NewRequest builds the catch-up request advertising the requester's
// committed height.
func NewRequest(have types.Height, self types.ReplicaID) *types.StateSyncRequest {
	return &types.StateSyncRequest{Have: have, Sender: self}
}

// Serve answers a catch-up request from the local store: the chain from just
// above req.Have to the high-QC block, ascending. The segment is capped to
// its LOWEST maxBlocks entries so its first block always connects to
// something the requester has; the responder's high QC rides along and
// certifies the tip when the segment reaches it. Returns nil when the store
// has nothing the requester lacks.
func Serve(store *blockstore.Store, req *types.StateSyncRequest, self types.ReplicaID, maxBlocks int) *types.StateSyncResponse {
	if maxBlocks <= 0 {
		maxBlocks = DefaultMaxBlocks
	}
	high := store.HighQC()
	tip := store.Block(high.Block)
	if tip == nil || tip.Height <= req.Have {
		return nil
	}
	// The segment is the LOWEST maxBlocks above req.Have, so find its top
	// first: for a far-behind requester that is the ancestor at
	// req.Have+maxBlocks, not the tip. Walking down from there keeps the
	// collected slice O(maxBlocks) regardless of how large the gap is (a
	// deep catch-up issues many requests; each must not pay for the whole
	// gap in allocation).
	end := tip
	if cut := req.Have + types.Height(maxBlocks); cut < tip.Height {
		if a := store.AncestorAtHeight(tip.ID(), cut); a != nil {
			end = a
		}
	}
	chain := make([]*types.Block, 0, min(maxBlocks, int(end.Height-req.Have)))
	for b := end; b != nil && !b.IsGenesis() && b.Height > req.Have; b = store.Parent(b.ID()) {
		chain = append(chain, b)
	}
	// Reverse into ascending order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) == 0 {
		return nil
	}
	resp := &types.StateSyncResponse{Blocks: chain, Sender: self}
	if chain[len(chain)-1].ID() == high.Block {
		resp.HighQC = high
	}
	return resp
}

// Applier installs fetched chain segments into a replica's store. The
// engine owns validation policy through the hooks; Applier enforces the
// structural chain: each response block's justify must certify its parent,
// pass the structure check, and (when VerifyQC is set) carry valid
// signatures before the block is inserted.
type Applier struct {
	Store *blockstore.Store
	// Quorum is the 2f+1 structure-check threshold.
	Quorum int
	// VerifyQC, if non-nil, cryptographically verifies a certificate (the
	// engine passes its cached verifier); nil skips signature checks.
	VerifyQC func(*types.QC) error
	// OnInstall, if non-nil, observes each block after insertion — engines
	// use it to journal the block, feed trackers, and flush orphaned
	// proposals that were waiting on it.
	OnInstall func(b *types.Block)
	// OnQC, if non-nil, observes each embedded justify certificate after it
	// is registered — engines route these through their usual QC processing
	// for locks/commits/round sync.
	OnQC func(qc *types.QC)
	// OnHighQC, if non-nil, receives the response's standalone high QC after
	// validation. The applier does NOT register it: the engine routes it
	// through its standalone-QC path, which is also what lands it in the
	// durability journal (no block record carries it).
	OnHighQC func(qc *types.QC)
}

// Apply validates and installs one response segment, returning how many new
// blocks were inserted. A malformed segment is rejected at the first bad
// link; everything installed before that point remains (it was
// independently certified).
func (a *Applier) Apply(m *types.StateSyncResponse) (int, error) {
	if m == nil {
		return 0, nil
	}
	installed := 0
	for _, b := range m.Blocks {
		if b == nil || b.Justify == nil {
			return installed, fmt.Errorf("statesync: segment block without justify")
		}
		if a.Store.Has(b.ID()) {
			continue
		}
		if b.Justify.Block != b.Parent {
			return installed, fmt.Errorf("statesync: justify for %v does not certify parent", b.Justify.Block)
		}
		if err := b.Justify.CheckStructure(a.Quorum); err != nil {
			return installed, fmt.Errorf("statesync: %w", err)
		}
		if a.VerifyQC != nil {
			if err := a.VerifyQC(b.Justify); err != nil {
				return installed, fmt.Errorf("statesync: %w", err)
			}
		}
		if !a.Store.Has(b.Parent) {
			return installed, fmt.Errorf("statesync: segment does not connect at %s", b)
		}
		if err := a.Store.Insert(b); err != nil {
			return installed, fmt.Errorf("statesync: %w", err)
		}
		installed++
		if _, _, err := a.Store.RegisterQC(b.Justify); err == nil && a.OnQC != nil {
			a.OnQC(b.Justify)
		}
		if a.OnInstall != nil {
			a.OnInstall(b)
		}
	}
	if qc := m.HighQC; qc != nil && a.Store.Has(qc.Block) {
		if err := qc.CheckStructure(a.Quorum); err != nil {
			return installed, fmt.Errorf("statesync: high qc: %w", err)
		}
		if a.VerifyQC != nil {
			if err := a.VerifyQC(qc); err != nil {
				return installed, fmt.Errorf("statesync: high qc: %w", err)
			}
		}
		if a.OnHighQC != nil {
			a.OnHighQC(qc)
		}
	}
	return installed, nil
}

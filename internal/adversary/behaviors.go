package adversary

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"time"

	"repro/internal/intervals"
	"repro/internal/types"
)

// Kind names one built-in behavior.
type Kind string

// Built-in behavior kinds. The engine-hook behaviors (equivocation,
// withholding, double-signing, marker lying) realize the paper's Byzantine
// model; the injection behaviors (corrupt signatures, garbage, stale replay)
// and the timing behaviors (drop, delay, duplicate) stress robustness of the
// receive paths.
const (
	// Equivocate proposes two conflicting blocks per led round, one to each
	// half of the cluster — the fork-creating attack of Appendix C and the
	// liveness gap Theorem 3's interval votes close.
	Equivocate Kind = "equivocate"
	// Withhold suppresses the replica's own votes (a "silent" Byzantine
	// replica: otherwise protocol-following, contributes nothing).
	Withhold Kind = "withhold-votes"
	// DoubleVote signs a second, conflicting vote per round whenever the
	// replica has seen a competing proposal for that round.
	DoubleVote Kind = "double-vote"
	// LieMarkers rewrites the replica's own strong-votes to claim an empty
	// conflict history (marker 0, full interval set), the Appendix C lie
	// that inflates naive endorsement counts.
	LieMarkers Kind = "lie-markers"
	// ForkRevive assembles a certificate from observed (signed, public)
	// votes for a recently certified block off the replica's own chain and
	// proposes a child of it in a round the replica leads — the branch
	// revival that, combined with double votes and vote starvation, realizes
	// the Appendix C fork script against a live cluster. With no revivable
	// candidate it falls back to plain equivocation, seeding the first fork
	// itself.
	ForkRevive Kind = "fork-revive"
	// WithholdUncontested suppresses the replica's own votes in rounds with
	// a single known proposal. Colluders running it starve honest-led
	// rounds below quorum — the resulting timeouts freeze locks, keeping a
	// revived branch's parents inside every honest replica's voting rule
	// (the round gaps of the Appendix C script).
	WithholdUncontested Kind = "withhold-uncontested"
	// CorruptSigs flips a signature byte on every Every-th signed outbound
	// message; verifying receivers must drop them.
	CorruptSigs Kind = "corrupt-sigs"
	// Garbage injects a structurally broken message (nil block, bogus vote,
	// malformed certificate, empty echo) alongside every Every-th outbound.
	Garbage Kind = "garbage"
	// ReplayStale rebroadcasts a previously seen message (its embedded
	// certificates now stale) alongside every Every-th outbound.
	ReplayStale Kind = "replay-stale"
	// Drop discards each outbound transmission with probability P.
	Drop Kind = "drop"
	// Delay postpones each outbound transmission by Delay plus uniform
	// Jitter.
	Delay Kind = "delay"
	// Duplicate re-sends each outbound transmission with probability P.
	Duplicate Kind = "duplicate"
	// TimeoutSpam floods peers with validly signed timeouts for ever-higher
	// far-future rounds, each carrying the (honestly matching) genesis
	// certificate. No single message is structurally rejectable — the attack
	// is volumetric: a passive pacemaker buffers every distinct claimed round
	// without bound, while an active pacemaker's future window plus per-peer
	// cap reduce the whole stream to a counter increment.
	TimeoutSpam Kind = "timeout-spam"
	// LieRoundEntry broadcasts active-pacemaker round-entry announcements
	// whose justification is missing, mismatched, or a fabricated timeout
	// certificate, trying to drag validators into rounds no quorum entered.
	// Justified-entry validation must reject every variant.
	LieRoundEntry Kind = "lie-round-entry"
	// WrongAppHash rewrites the replica's own strong-votes to certify a
	// fabricated execution state root (validly re-signed, since AppHash lives
	// inside the vote's signing payload). The execution layer's defenses must
	// contain it: honest leaders drop root-disagreeing votes at collection,
	// certificate structure checks reject mixed-root vote sets, and with at
	// most f such liars no fabricated root can reach a quorum — so honest
	// replicas never commit divergent state. Note the proposal side needs no
	// counterpart behavior: a Byzantine leader cannot forge a state-lying
	// certificate at all, because certificates are made of votes whose
	// signatures cover their AppHash.
	WrongAppHash Kind = "wrong-apphash"
)

// Kinds lists every built-in behavior, in a stable order the scenario
// fuzzer's generator samples from.
var Kinds = []Kind{
	Equivocate, Withhold, DoubleVote, LieMarkers, ForkRevive, WithholdUncontested,
	CorruptSigs, Garbage, ReplayStale, Drop, Delay, Duplicate,
	TimeoutSpam, LieRoundEntry, WrongAppHash,
}

// Forges reports whether the behavior can fabricate protocol content —
// conflicting proposals or votes, lied markers, bogus certificates — as
// opposed to merely reordering, suppressing or corrupting-in-transit what
// an honest engine produced. Definition 1's fault count t should count only
// forging replicas: a replica that just drops or delays traffic cannot
// contribute to two conflicting commits, so safety must hold around it as
// if it were honest (its tracker's observations are honest, too).
//
// TimeoutSpam and LieRoundEntry are deliberately non-forging: the spam
// timeouts are truthfully signed statements about the spammer's own state,
// and a lied round entry — even its fabricated TC — can at worst skip
// rounds, never produce a conflicting commit. They are liveness attacks, so
// scenarios built from them alone stay "benign" for the fuzzer's liveness
// checker, which is exactly the property the pacemaker A/B experiments need.
func (k Kind) Forges() bool {
	switch k {
	case Equivocate, DoubleVote, LieMarkers, ForkRevive, Garbage, WrongAppHash:
		return true
	default:
		return false
	}
}

// ForgingReplicas returns how many of the per-replica behavior chains
// contain at least one forging behavior — the t the Definition 1 checker
// must use.
func ForgingReplicas(chains map[types.ReplicaID][]Spec) int {
	n := 0
	for _, specs := range chains {
		for _, s := range specs {
			if s.Kind.Forges() {
				n++
				break
			}
		}
	}
	return n
}

// Spec is the serializable description of one behavior: enough to rebuild
// it (Build) and to print it into a replayable scenario line. Unused
// parameters are zero.
type Spec struct {
	Kind Kind
	// Every is the injection cadence for CorruptSigs/Garbage/ReplayStale
	// (0 = every message).
	Every int
	// P is the per-transmission probability for Drop/Duplicate.
	P float64
	// Delay and Jitter shape the Delay behavior.
	Delay, Jitter time.Duration
}

// String renders the spec compactly for scenario reproduction output.
func (s Spec) String() string {
	switch s.Kind {
	case CorruptSigs, Garbage, ReplayStale, TimeoutSpam, LieRoundEntry:
		return fmt.Sprintf("%s(every=%d)", s.Kind, s.cadence())
	case Drop, Duplicate:
		return fmt.Sprintf("%s(p=%.2f)", s.Kind, s.P)
	case Delay:
		return fmt.Sprintf("%s(d=%v,j=%v)", s.Kind, s.Delay, s.Jitter)
	default:
		return string(s.Kind)
	}
}

func (s Spec) cadence() int {
	if s.Every <= 0 {
		return 1
	}
	return s.Every
}

// Build constructs the behavior the spec describes.
func (s Spec) Build() (Behavior, error) {
	switch s.Kind {
	case Equivocate:
		return &equivocate{}, nil
	case Withhold:
		return withhold{}, nil
	case DoubleVote:
		return &doubleVote{
			proposals: make(map[types.Round][]*types.Proposal),
			voted:     make(map[types.Round]Outbound),
			signed:    make(map[types.BlockID]types.Round),
		}, nil
	case LieMarkers:
		return lieMarkers{}, nil
	case ForkRevive:
		return &forkRevive{
			votes:    make(map[types.BlockID]map[types.ReplicaID]types.Vote),
			revived:  make(map[types.BlockID]bool),
			gossiped: make(map[voteGossipKey]bool),
		}, nil
	case WithholdUncontested:
		return &withholdUncontested{
			competitors: make(map[types.Round]map[types.BlockID]bool),
			held:        make(map[types.Round]Outbound),
		}, nil
	case CorruptSigs:
		return &corruptSigs{every: s.cadence()}, nil
	case Garbage:
		return &garbage{every: s.cadence()}, nil
	case ReplayStale:
		return &replayStale{every: s.cadence()}, nil
	case Drop:
		return dropMsgs{p: s.P}, nil
	case Delay:
		return delayMsgs{d: s.Delay, jitter: s.Jitter}, nil
	case Duplicate:
		return duplicateMsgs{p: s.P}, nil
	case TimeoutSpam:
		return &timeoutSpam{every: s.cadence()}, nil
	case LieRoundEntry:
		return &lieRoundEntry{every: s.cadence()}, nil
	case WrongAppHash:
		return wrongAppHash{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown behavior kind %q", s.Kind)
	}
}

// Build constructs the full behavior chain for a spec list.
func Build(specs []Spec) ([]Behavior, error) {
	out := make([]Behavior, 0, len(specs))
	for _, s := range specs {
		b, err := s.Build()
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// --- engine-hook behaviors ---

// equivocate splits each own led-round proposal into two conflicting
// blocks. The first half of the cluster receives the honest block first and
// the sibling (poisoned payload) slightly later; the second half the other
// way around. Every replica eventually sees both — honest voters still vote
// only the first arrival of the round, so the vote split that certifies
// both siblings needs double-voting colluders, exactly as in Appendix C.
type equivocate struct{}

// equivocateLag is how much later the crossover copy of each fork half
// arrives; small enough to stay inside the round, large enough that the
// primary half usually wins the first-arrival vote.
const equivocateLag = 6 * time.Millisecond

// reviveMainLag is how much later the REGULAR proposal reaches the
// fork-first recipients when a reviver is active: a revival is often
// emitted a few milliseconds into the round (waiting for its certificate's
// final votes), and this cushion keeps it first at its half anyway.
const reviveMainLag = 10 * time.Millisecond

// unwrapEchoMsg strips up to the engines' echo-nesting cap of relay
// wrappers so behaviors observe the base message a Streamlet delivery
// carries; non-echo messages pass through unchanged and over-nested or
// empty chains surface as nil.
func unwrapEchoMsg(msg types.Message) types.Message {
	for depth := 0; depth < 4; depth++ {
		e, ok := msg.(*types.Echo)
		if !ok {
			return msg
		}
		if e.Inner == nil {
			return nil
		}
		msg = e.Inner
	}
	return nil
}

// poisonedSibling builds a conflicting sibling of the honest proposal p —
// same parent, same justify, a payload prepended with a poison transaction
// so the block ID differs — signed by the colluder. Shared by the
// equivocation behavior and the fork reviver's seeding fallback.
func poisonedSibling(ctx *Context, p *types.Proposal) *types.Proposal {
	b := p.Block
	alt := b.Payload
	alt.Txns = append([]types.Transaction{{Sender: ^uint32(0), Seq: uint64(b.Round)}}, alt.Txns...)
	sibling := types.NewBlock(b.Parent, b.Justify, b.Round, b.Height, b.Proposer, b.Timestamp, alt, nil)
	prop := &types.Proposal{Block: sibling, Round: p.Round, Sender: p.Sender}
	prop.Signature = ctx.Sign(prop.SigningPayload())
	return prop
}

// forkHalf deterministically assigns replica i to one side of a round's
// fork split. The assignment is stable across one leader rotation (a
// colluder window keeps a consistent split, so a contested branch can grow
// for several consecutive rounds) but rotates across rotations, varying
// which honest voters back each branch — a static split would hand every
// fork certificate the same voter set, capping its endorsement count.
func forkHalf(i int, round types.Round, n int) bool {
	return ((i+int(round)/n)%n)*2/n == 1
}

// forkFirst reports whether replica `to` should receive the fork branch's
// proposal ahead of the regular one in `round`. With coalition knowledge a
// rotating subset of about half the honest replicas backs the fork each
// round (colluders see it first too — they double-vote both sides anyway),
// so successive fork certificates carry varying honest voters; without it,
// the window-rotated static half applies.
func forkFirst(ctx *Context, to types.ReplicaID, round types.Round) bool {
	honest := ctx.Honest()
	if len(honest) == 0 {
		return forkHalf(int(to), round, ctx.N())
	}
	idx := -1
	for i, id := range honest {
		if id == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		return true // colluder: fork first, it votes both sides regardless
	}
	k := len(honest) / 2
	if k == 0 {
		k = 1
	}
	start := int(round) % len(honest)
	return (idx-start+len(honest))%len(honest) < k
}

func (*equivocate) Name() string { return string(Equivocate) }

func (*equivocate) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	p, ok := out.Msg.(*types.Proposal)
	if !ok || !out.Broadcast || p.Sender != ctx.ID() || p.Block == nil {
		emit(out)
		return
	}
	altProp := poisonedSibling(ctx, p)
	n := ctx.N()
	for i := 0; i < n; i++ {
		to := types.ReplicaID(i)
		if to == ctx.ID() {
			if out.SelfDeliver {
				emit(Outbound{To: to, Msg: p, Delay: out.Delay})
			}
			continue
		}
		first, second := types.Message(p), types.Message(altProp)
		if forkHalf(i, p.Round, n) { // one half leads with the honest block, the other with the fork
			first, second = second, first
		}
		emit(Outbound{To: to, Msg: first, Delay: out.Delay})
		emit(Outbound{To: to, Msg: second, Delay: out.Delay + equivocateLag})
	}
}

// withhold drops the replica's own votes.
type withhold struct{}

func (withhold) Name() string { return string(Withhold) }

func (withhold) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	if vm, ok := out.Msg.(*types.VoteMsg); ok && vm.Vote.Voter == ctx.ID() {
		return
	}
	emit(out)
}

// doubleVote signs a conflicting vote for every competing same-round
// proposal it learns about — whether the competitor arrived before or after
// the honest engine's own vote left — the quorum-intersection attack that,
// with enough colluders, certifies both sides of an equivocating leader's
// fork. Competing proposals are learned from inbound traffic AND from the
// replica's own outbound stream, so an equivocating or fork-reviving
// colluder double-votes its own fabrications too.
type doubleVote struct {
	proposals map[types.Round][]*types.Proposal
	// voted remembers the honest vote (and its routing) per round; signed
	// tracks which blocks this replica already voted (mapped to their round
	// so pruning can evict them), capping one vote per (round, block).
	voted    map[types.Round]Outbound
	signed   map[types.BlockID]types.Round
	pending  []Outbound
	maxRound types.Round
}

func (*doubleVote) Name() string { return string(DoubleVote) }

// noteProposal records a competing proposal and, when this replica already
// voted in that round, queues the conflicting vote.
func (d *doubleVote) noteProposal(ctx *Context, p *types.Proposal) {
	if p == nil || p.Block == nil {
		return
	}
	for _, seen := range d.proposals[p.Round] {
		if seen.Block.ID() == p.Block.ID() {
			return
		}
	}
	d.proposals[p.Round] = append(d.proposals[p.Round], p)
	if p.Round > d.maxRound {
		d.maxRound = p.Round
		// Bound memory: competitors (and the votes cast on them) matter
		// only near the current round.
		if len(d.proposals) > 128 {
			for r := range d.proposals {
				if r+64 < d.maxRound {
					delete(d.proposals, r)
				}
			}
			for r := range d.voted {
				if r+64 < d.maxRound {
					delete(d.voted, r)
				}
			}
			for id, r := range d.signed {
				if r+64 < d.maxRound {
					delete(d.signed, id)
				}
			}
		}
	}
	if tmpl, ok := d.voted[p.Round]; ok {
		d.queueConflict(ctx, tmpl, p)
	}
}

// queueConflict signs the conflicting vote for p using the honest vote as a
// template and queues it for the next Emit flush.
func (d *doubleVote) queueConflict(ctx *Context, tmpl Outbound, p *types.Proposal) {
	id := p.Block.ID()
	if _, dup := d.signed[id]; dup {
		return
	}
	vm := tmpl.Msg.(*types.VoteMsg)
	if vm.Vote.Block == id {
		return
	}
	v := vm.Vote
	v.Block = id
	v.Height = p.Block.Height
	v.Signature = ctx.Sign(v.SigningPayload())
	d.signed[id] = v.Round
	second := tmpl
	second.Msg = &types.VoteMsg{Vote: v}
	d.pending = append(d.pending, second)
}

func (d *doubleVote) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	if p, ok := unwrapEchoMsg(msg).(*types.Proposal); ok {
		d.noteProposal(ctx, p)
	}
}

func (d *doubleVote) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	switch m := out.Msg.(type) {
	case *types.Proposal:
		// Own (or upstream-fabricated) proposals are competitors too.
		d.noteProposal(ctx, m)
	case *types.VoteMsg:
		if m.Vote.Voter != ctx.ID() {
			return
		}
		round := m.Vote.Round
		if _, ok := d.voted[round]; !ok {
			d.voted[round] = out
			d.signed[m.Vote.Block] = round
			for _, p := range d.proposals[round] {
				d.queueConflict(ctx, out, p)
			}
		}
	}
}

// Emit flushes conflicting votes queued since the last event (e.g. for a
// competing proposal that arrived after the honest vote left).
func (d *doubleVote) Emit(ctx *Context, now time.Duration, emit func(Outbound)) {
	for _, out := range d.pending {
		emit(out)
	}
	d.pending = d.pending[:0]
}

// lieMarkers strips the conflict history from the replica's own
// strong-votes: marker 0 (and no interval set) endorses every ancestor, the
// lie that makes naive (marker-ignoring) endorsement counting unsafe and
// that the real commit rule tolerates up to x liars.
type lieMarkers struct{}

func (lieMarkers) Name() string { return string(LieMarkers) }

func (lieMarkers) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	vm, ok := out.Msg.(*types.VoteMsg)
	if !ok || vm.Vote.Voter != ctx.ID() || (vm.Vote.Marker == 0 && !vm.Vote.HasIntervals) {
		emit(out)
		return
	}
	v := vm.Vote
	v.Marker = 0
	v.HasIntervals = false
	v.Intervals = intervals.Set{}
	v.Signature = ctx.Sign(v.SigningPayload())
	out.Msg = &types.VoteMsg{Vote: v}
	emit(out)
}

// forkRevive collects the signed votes the replica observes, and — whenever
// its honest engine proposes — additionally proposes a child of a recently
// vote-quorumed block OFF its own chain, justified by a certificate
// assembled from those observed votes. Everything it sends is made of
// genuine signatures, so verifying receivers accept it; whether honest
// replicas then vote the revived branch is governed by their (lock or
// longest-chain) voting rules, exactly as the paper's adversary model
// intends.
type forkRevive struct {
	votes    map[types.BlockID]map[types.ReplicaID]types.Vote
	revived  map[types.BlockID]bool
	maxRound types.Round
	// current is the replica's own latest proposal (the led round a revival
	// competes in); lastRevived and lastSeeded cap each mechanism at one
	// per led round.
	current     *types.Proposal
	lastRevived types.Round
	lastSeeded  types.Round
	// Coalition vote gossip: every vote this replica observes (or signs) is
	// relayed once to each co-conspirator, so the whole coalition shares
	// one view of which blocks can still be certified. Votes are public,
	// signed objects — relaying them is within any adversary's power.
	gossiped      map[voteGossipKey]bool
	pendingGossip []types.Vote
}

type voteGossipKey struct {
	block types.BlockID
	voter types.ReplicaID
}

// reviveWindow is how far back a block stays revivable. Starved rounds
// freeze locks, so a parent this old can still pass honest voting rules —
// and votes for the revival walk back down the branch, raising its
// endorsement counts long after the contested rounds ended.
const reviveWindow = 8

func (*forkRevive) Name() string { return string(ForkRevive) }

func (f *forkRevive) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	if vm, ok := unwrapEchoMsg(msg).(*types.VoteMsg); ok {
		f.recordVote(ctx, vm.Vote)
	}
}

func (f *forkRevive) recordVote(ctx *Context, v types.Vote) {
	m, ok := f.votes[v.Block]
	if !ok {
		m = make(map[types.ReplicaID]types.Vote, 2*ctx.F()+1)
		f.votes[v.Block] = m
	}
	if _, seen := m[v.Voter]; !seen && len(ctx.cfg.Colluders) > 0 {
		// First sighting: queue it for coalition gossip (flushed by Emit).
		key := voteGossipKey{block: v.Block, voter: v.Voter}
		if !f.gossiped[key] {
			f.gossiped[key] = true
			f.pendingGossip = append(f.pendingGossip, v)
			if len(f.gossiped) > 8192 {
				f.gossiped = make(map[voteGossipKey]bool, 1024)
			}
		}
	}
	m[v.Voter] = v
	if v.Round > f.maxRound {
		f.maxRound = v.Round
		if len(f.votes) > 256 {
			for id, votes := range f.votes {
				for _, w := range votes {
					if w.Round+16 < f.maxRound {
						delete(f.votes, id)
					}
					break
				}
			}
		}
	}
}

func (f *forkRevive) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	if vm, ok := out.Msg.(*types.VoteMsg); ok {
		// Own votes count toward revivable quorums too — place this
		// behavior after a double-voter in the chain and both of the
		// replica's conflicting votes are seen here.
		f.recordVote(ctx, vm.Vote)
	}
	p, ok := out.Msg.(*types.Proposal)
	if !ok || p.Sender != ctx.ID() || p.Block == nil || p.Block.Proposer != ctx.ID() {
		emit(out)
		return
	}
	if f.current == nil || p.Round > f.current.Round {
		f.current = p
		// Stagger the honest proposal: the first half of the cluster gets it
		// immediately, the second half one beat later — the revival (emitted
		// mirrored) then wins the second half's first-arrival votes.
		if out.Broadcast {
			n := ctx.N()
			for i := 0; i < n; i++ {
				to := types.ReplicaID(i)
				if to == ctx.ID() {
					if out.SelfDeliver {
						emit(Outbound{To: to, Msg: p, Delay: out.Delay})
					}
					continue
				}
				delay := out.Delay
				// Coalition members get everything immediately — lagging
				// them would delay their double votes and with them the next
				// round's revival.
				if !ctx.IsColluder(to) && forkFirst(ctx, to, p.Round) {
					delay += reviveMainLag
				}
				emit(Outbound{To: to, Msg: p, Delay: delay})
			}
			f.tryRevive(ctx, emit, out.Delay)
			return
		}
	}
	emit(out)
	f.tryRevive(ctx, emit, out.Delay)
}

// Emit flushes coalition vote gossip and retries the revival after vote
// deliveries: the decisive vote that completes the off-chain block's quorum
// usually lands moments after the replica's own proposal already went out.
// The negative sentinel suppresses the equivocation fallback on retries.
func (f *forkRevive) Emit(ctx *Context, now time.Duration, emit func(Outbound)) {
	if len(f.pendingGossip) > 0 {
		for _, v := range f.pendingGossip {
			for _, peer := range ctx.cfg.Colluders {
				if peer == ctx.ID() {
					continue
				}
				emit(Outbound{To: peer, Msg: &types.VoteMsg{Vote: v}})
			}
		}
		f.pendingGossip = f.pendingGossip[:0]
	}
	f.tryRevive(ctx, emit, -1)
}

func (f *forkRevive) tryRevive(ctx *Context, emit func(Outbound), baseDelay time.Duration) {
	p := f.current
	if p == nil || p.Round <= f.lastRevived || p.Round <= f.lastSeeded {
		return // at most one competitor injected per led round
	}
	if f.maxRound > p.Round+1 {
		f.current = nil // the cluster moved on; this led round is over
		return
	}
	quorum := 2*ctx.F() + 1
	// Deterministic candidate choice (map order must not leak into runs):
	// the newest vote-quorumed block off the own chain, ties broken by ID.
	// A previous-round block one vote short of quorum defers the decision —
	// its colluder votes are usually still in flight, and reviving it beats
	// reviving something older (which honest locks would reject).
	var bestID types.BlockID
	var bestVote types.Vote
	found, pendingFresher := false, false
	for id, votes := range f.votes {
		if id == p.Block.Parent || f.revived[id] {
			continue
		}
		var sample types.Vote
		for _, v := range votes {
			sample = v
			break
		}
		if sample.Round+reviveWindow < p.Round || sample.Round >= p.Round {
			continue
		}
		if len(votes) < quorum {
			// Only branches this replica itself (double-)voted are worth
			// waiting for: an honest-led starved round also sits short of
			// quorum, but no colluder vote will ever complete it.
			if _, mine := votes[ctx.ID()]; mine && sample.Round == p.Round-1 {
				pendingFresher = true
			}
			continue
		}
		if !found || sample.Round > bestVote.Round ||
			(sample.Round == bestVote.Round && string(id[:]) < string(bestID[:])) {
			found, bestID, bestVote = true, id, sample
		}
	}
	if pendingFresher && (!found || bestVote.Round < p.Round-1) {
		return // wait for the fresher branch to complete; Emit retries
	}
	var revival *types.Proposal
	if found {
		votes := f.votes[bestID]
		qcVotes := make([]types.Vote, 0, len(votes))
		for _, v := range votes {
			qcVotes = append(qcVotes, v)
		}
		// Keep every observed vote in the certificate (not just a quorum):
		// the extra voters all count as endorsers wherever it registers.
		sort.Slice(qcVotes, func(i, j int) bool { return qcVotes[i].Voter < qcVotes[j].Voter })
		qc := &types.QC{Block: bestID, Round: bestVote.Round, Height: bestVote.Height, Votes: qcVotes}
		payload := types.Payload{Txns: []types.Transaction{{Sender: ^uint32(0) - 1, Seq: uint64(p.Round)}}}
		child := types.NewBlock(bestID, qc, p.Round, bestVote.Height+1, ctx.ID(), p.Block.Timestamp, payload, nil)
		revival = &types.Proposal{Block: child, Round: p.Round, Sender: ctx.ID()}
		revival.Signature = ctx.Sign(revival.SigningPayload())
		f.revived[bestID] = true
		f.lastRevived = p.Round
	} else {
		if baseDelay < 0 || f.lastSeeded >= p.Round {
			return // Emit retries only perform genuine revivals
		}
		// No revivable branch yet: seed one by equivocating — a poisoned
		// sibling of the honest proposal competes for the round's votes.
		revival = poisonedSibling(ctx, p)
		f.lastSeeded = p.Round
	}
	// The revival competes with the round's regular proposal for honest
	// first-arrival votes: the second half of the cluster receives it
	// immediately (ahead of the regular block they would otherwise see
	// first), the first half a beat later. The branch lives or dies by the
	// receivers' own voting rules.
	if baseDelay < 0 {
		baseDelay = 0
	}
	n := ctx.N()
	for i := 0; i < n; i++ {
		to := types.ReplicaID(i)
		if to == ctx.ID() {
			emit(Outbound{To: to, Msg: revival})
			continue
		}
		delay := baseDelay
		if !ctx.IsColluder(to) && !forkFirst(ctx, to, p.Round) {
			delay += equivocateLag
		}
		emit(Outbound{To: to, Msg: revival, Delay: delay})
	}
}

// withholdUncontested starves uncontested rounds: the replica's own vote is
// held back until a second, competing proposal for the round is known, and
// released (through the rest of the chain, so double-voting colluders react
// to it) only then. Rounds led by honest replicas have a single proposal
// and — with enough colluders starving them — never reach quorum; the
// timeouts freeze locks, which is what keeps revived branches votable
// across round gaps (the Appendix C structure).
type withholdUncontested struct {
	competitors map[types.Round]map[types.BlockID]bool
	held        map[types.Round]Outbound
	pending     []Outbound
	maxRound    types.Round
}

func (*withholdUncontested) Name() string { return string(WithholdUncontested) }

func (w *withholdUncontested) noteProposal(p *types.Proposal) {
	if p == nil || p.Block == nil {
		return
	}
	m, ok := w.competitors[p.Round]
	if !ok {
		m = make(map[types.BlockID]bool, 2)
		w.competitors[p.Round] = m
	}
	m[p.Block.ID()] = true
	if len(m) == 2 {
		if vote, heldBack := w.held[p.Round]; heldBack {
			delete(w.held, p.Round)
			w.pending = append(w.pending, vote)
		}
	}
	if p.Round > w.maxRound {
		w.maxRound = p.Round
		if len(w.competitors) > 128 {
			for r := range w.competitors {
				if r+64 < w.maxRound {
					delete(w.competitors, r)
					delete(w.held, r)
				}
			}
		}
	}
}

func (w *withholdUncontested) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	if p, ok := unwrapEchoMsg(msg).(*types.Proposal); ok {
		w.noteProposal(p)
	}
}

func (w *withholdUncontested) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	switch m := out.Msg.(type) {
	case *types.Proposal:
		w.noteProposal(m)
	case *types.VoteMsg:
		if m.Vote.Voter == ctx.ID() && len(w.competitors[m.Vote.Round]) < 2 {
			if _, dup := w.held[m.Vote.Round]; !dup {
				w.held[m.Vote.Round] = out
			}
			return
		}
	}
	emit(out)
}

// Emit releases votes whose round became contested since they were held.
func (w *withholdUncontested) Emit(ctx *Context, now time.Duration, emit func(Outbound)) {
	for _, out := range w.pending {
		emit(out)
	}
	w.pending = w.pending[:0]
}

// wrongAppHash replaces the state root in the replica's own strong-votes
// with a fabricated one and re-signs — the state-lying vote of the
// execute-before-vote model (the signing payload covers AppHash, so the lie
// needs the replica's real key and cannot be injected in transit). The lie is
// deterministic per (block, voter): colluders running the behavior all lie,
// but differently, so even a full coalition cannot hand any single fabricated
// root more than one vote. Votes without an AppHash (execution layer off)
// pass through untouched — there is no state to lie about.
type wrongAppHash struct{}

func (wrongAppHash) Name() string { return string(WrongAppHash) }

func (wrongAppHash) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	vm, ok := out.Msg.(*types.VoteMsg)
	if !ok || vm.Vote.Voter != ctx.ID() || !vm.Vote.HasAppHash() {
		emit(out)
		return
	}
	v := vm.Vote
	material := append([]byte("lieroot/"), v.Block[:]...)
	material = types.AppendUint32(material, uint32(v.Voter))
	v.AppHash = sha256.Sum256(material)
	v.Signature = ctx.Sign(v.SigningPayload())
	out.Msg = &types.VoteMsg{Vote: v}
	emit(out)
}

// --- injection behaviors ---

// corruptSigs flips a byte in the signature of every Every-th signed
// outbound message, on a copy (engines retain references to what they
// emitted).
type corruptSigs struct {
	every int
	n     int
}

func (*corruptSigs) Name() string { return string(CorruptSigs) }

func flipSig(sig []byte) []byte {
	if len(sig) == 0 {
		return []byte{0xff}
	}
	cp := append([]byte(nil), sig...)
	cp[len(cp)-1] ^= 0xff
	return cp
}

func (c *corruptSigs) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	switch m := out.Msg.(type) {
	case *types.Proposal:
		if c.tick() {
			cp := *m
			cp.Signature = flipSig(m.Signature)
			out.Msg = &cp
		}
	case *types.VoteMsg:
		if c.tick() {
			cp := *m
			cp.Vote.Signature = flipSig(m.Vote.Signature)
			out.Msg = &cp
		}
	case *types.Timeout:
		if c.tick() {
			cp := *m
			cp.Signature = flipSig(m.Signature)
			out.Msg = &cp
		}
	}
	emit(out)
}

func (c *corruptSigs) tick() bool {
	c.n++
	return c.n%c.every == 0
}

// garbage emits a structurally broken message alongside every Every-th
// outbound transmission: receivers must reject it without crashing or
// corrupting state.
type garbage struct {
	every int
	n     int
}

func (*garbage) Name() string { return string(Garbage) }

func (g *garbage) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	g.n++
	if g.n%g.every != 0 {
		return
	}
	rng := ctx.Rand()
	var junk types.Message
	var id types.BlockID
	rng.Read(id[:])
	round := types.Round(rng.Intn(64))
	switch rng.Intn(4) {
	case 0:
		junk = &types.Proposal{Block: nil, Round: round, Sender: ctx.ID(), Signature: []byte{1}}
	case 1:
		junk = &types.VoteMsg{Vote: types.Vote{
			Block: id, Round: round, Height: types.Height(rng.Intn(64)),
			Voter: ctx.ID(), Signature: []byte("garbage"),
		}}
	case 2:
		// Duplicate voters make the certificate structurally invalid.
		junk = &types.Timeout{Round: round, Sender: ctx.ID(), Signature: []byte{2},
			HighQC: &types.QC{Block: id, Round: round, Votes: []types.Vote{
				{Block: id, Round: round, Voter: 0}, {Block: id, Round: round, Voter: 0},
				{Block: id, Round: round, Voter: 0},
			}}}
	default:
		junk = &types.Echo{Inner: nil, Relayer: ctx.ID()}
	}
	emit(Outbound{Broadcast: true, Msg: junk})
}

// replayStale records traffic (inbound and own outbound) and rebroadcasts a
// random recorded message alongside every Every-th outbound — stale
// proposals and timeouts carrying long-superseded certificates that
// receivers must reject or absorb idempotently.
type replayStale struct {
	every int
	n     int
	ring  []types.Message
	next  int
}

func (*replayStale) Name() string { return string(ReplayStale) }

const replayRingSize = 64

func (r *replayStale) record(msg types.Message) {
	switch msg.(type) {
	case *types.Proposal, *types.Timeout, *types.VoteMsg:
	default:
		return
	}
	if len(r.ring) < replayRingSize {
		r.ring = append(r.ring, msg)
		return
	}
	r.ring[r.next] = msg
	r.next = (r.next + 1) % replayRingSize
}

func (r *replayStale) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	r.record(msg)
}

func (r *replayStale) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	r.record(out.Msg)
	r.n++
	if r.n%r.every != 0 || len(r.ring) == 0 {
		return
	}
	emit(Outbound{Broadcast: true, Msg: r.ring[ctx.Rand().Intn(len(r.ring))]})
}

// spamOffset places spam rounds safely beyond any honest replica's active
// future window; spamBurst is how many distinct-round timeouts each injection
// emits, so the claimed rounds grow without bound over a run.
const (
	spamOffset = 64
	spamBurst  = 4
)

// timeoutSpam broadcasts bursts of validly signed far-future timeouts
// alongside every Every-th outbound. Each claims a fresh, ever-higher round
// and carries the genesis certificate as its high QC — a truthful HighRound 0
// claim, so signature and structure checks all pass. The damage model is
// memory: a passive pacemaker's per-round timeout maps grow by one entry per
// spam message, forever.
type timeoutSpam struct {
	every int
	n     int
	high  types.Round // highest round observed in traffic
	next  types.Round // next spam round to claim
}

func (*timeoutSpam) Name() string { return string(TimeoutSpam) }

func (t *timeoutSpam) note(msg types.Message) {
	switch m := msg.(type) {
	case *types.Proposal:
		if m.Round > t.high {
			t.high = m.Round
		}
	case *types.VoteMsg:
		if m.Vote.Round > t.high {
			t.high = m.Vote.Round
		}
	case *types.Timeout:
		if m.Round > t.high {
			t.high = m.Round
		}
	}
}

func (t *timeoutSpam) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	t.note(msg)
}

func (t *timeoutSpam) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	t.note(out.Msg)
	t.n++
	if t.n%t.every != 0 {
		return
	}
	gqc := types.NewGenesisQC(types.Genesis().ID())
	if base := t.high + spamOffset; t.next < base {
		t.next = base
	}
	for i := 0; i < spamBurst; i++ {
		spam := &types.Timeout{Round: t.next, HighQC: gqc, HighRound: 0, Sender: ctx.ID()}
		spam.Signature = ctx.Sign(spam.SigningPayload())
		t.next++
		emit(Outbound{Broadcast: true, Msg: spam})
	}
}

// lieRoundEntry broadcasts round-entry announcements for rounds no quorum
// entered, rotating through the justification lies a validator must catch:
// no justification at all, a certificate that does not prove the claimed
// round, and a timeout certificate with fabricated attestations. The outer
// sender signature is genuine, so rejection must come from justified-entry
// validation, not signature checking.
type lieRoundEntry struct {
	every int
	n     int
	high  types.Round
}

func (*lieRoundEntry) Name() string { return string(LieRoundEntry) }

func (l *lieRoundEntry) note(msg types.Message) {
	switch m := msg.(type) {
	case *types.Proposal:
		if m.Round > l.high {
			l.high = m.Round
		}
	case *types.Timeout:
		if m.Round > l.high {
			l.high = m.Round
		}
	}
}

func (l *lieRoundEntry) ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message) {
	l.note(msg)
}

func (l *lieRoundEntry) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	l.note(out.Msg)
	l.n++
	if l.n%l.every != 0 {
		return
	}
	rng := ctx.Rand()
	target := l.high + 2 + types.Round(rng.Intn(6))
	e := &types.RoundEntry{Round: target, Sender: ctx.ID()}
	switch rng.Intn(3) {
	case 0:
		// Naked claim: no justification at all.
	case 1:
		// Mismatched certificate: genesis "justifying" a far-future round.
		e.Justify = types.NewGenesisQC(types.Genesis().ID())
	default:
		// Fabricated TC: structurally plausible, signed by nobody.
		e.TC = &types.TC{Round: target - 1, Attestations: []types.TCAttestation{
			{Sender: 0, HighRound: 0, Signature: []byte("forged")},
			{Sender: 1, HighRound: 0, Signature: []byte("forged")},
			{Sender: 2, HighRound: 0, Signature: []byte("forged")},
		}}
	}
	e.Signature = ctx.Sign(e.SigningPayload())
	emit(Outbound{Broadcast: true, Msg: e})
}

// --- timing behaviors ---

type dropMsgs struct{ p float64 }

func (dropMsgs) Name() string { return string(Drop) }

func (d dropMsgs) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	if ctx.Rand().Float64() < d.p {
		return
	}
	emit(out)
}

type delayMsgs struct{ d, jitter time.Duration }

func (delayMsgs) Name() string { return string(Delay) }

func (d delayMsgs) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	extra := d.d
	if d.jitter > 0 {
		extra += time.Duration(ctx.Rand().Int63n(int64(d.jitter)))
	}
	out.Delay += extra
	emit(out)
}

type duplicateMsgs struct{ p float64 }

func (duplicateMsgs) Name() string { return string(Duplicate) }

func (d duplicateMsgs) Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound)) {
	emit(out)
	if ctx.Rand().Float64() < d.p {
		emit(out)
	}
}

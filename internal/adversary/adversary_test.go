package adversary_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/types"
)

// stubEngine replays scripted outputs, one batch per event, so behaviors can
// be unit-tested without a full consensus engine.
type stubEngine struct {
	id      types.ReplicaID
	scripts [][]engine.Output
	step    int
}

func (s *stubEngine) ID() types.ReplicaID { return s.id }

func (s *stubEngine) next() []engine.Output {
	if s.step >= len(s.scripts) {
		return nil
	}
	outs := s.scripts[s.step]
	s.step++
	return outs
}

func (s *stubEngine) Init(now time.Duration) []engine.Output { return s.next() }
func (s *stubEngine) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	return s.next()
}
func (s *stubEngine) OnTimer(now time.Duration, id int) []engine.Output { return s.next() }

func testRing(t *testing.T, n int) *crypto.KeyRing {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 11, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

func wrap(t *testing.T, inner engine.Engine, id types.ReplicaID, specs ...adversary.Spec) engine.Engine {
	t.Helper()
	ring := testRing(t, 4)
	eng, err := adversary.Wrap(inner, adversary.Config{
		ID: id, N: 4, F: 1, Signer: ring.Signer(id), Seed: 99,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func proposal(t *testing.T, ring *crypto.KeyRing, proposer types.ReplicaID, round types.Round) *types.Proposal {
	t.Helper()
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), round, 1, proposer, 0, types.Payload{}, nil)
	p := &types.Proposal{Block: b, Round: round, Sender: proposer}
	p.Signature = ring.Signer(proposer).Sign(p.SigningPayload())
	return p
}

func vote(ring *crypto.KeyRing, voter types.ReplicaID, b *types.Block) types.Vote {
	v := types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: voter, Marker: 3}
	v.Signature = ring.Signer(voter).Sign(v.SigningPayload())
	return v
}

// TestWrapEmptyChainReturnsInner: honest replicas never pay for the
// subsystem — the empty spec list is the engine itself, not a wrapper.
func TestWrapEmptyChainReturnsInner(t *testing.T) {
	inner := &stubEngine{id: 1}
	eng := wrap(t, inner, 1)
	if eng != engine.Engine(inner) {
		t.Fatal("empty behavior chain wrapped the engine")
	}
}

// TestWithholdDropsOwnVotes: vote outputs vanish, everything else passes.
func TestWithholdDropsOwnVotes(t *testing.T) {
	ring := testRing(t, 4)
	p := proposal(t, ring, 1, 1)
	v := vote(ring, 1, p.Block)
	inner := &stubEngine{id: 1, scripts: [][]engine.Output{{
		engine.Send{To: 2, Msg: &types.VoteMsg{Vote: v}},
		engine.Broadcast{Msg: p, SelfDeliver: true},
		engine.SetTimer{ID: 7, Delay: time.Second},
	}}}
	outs := wrap(t, inner, 1, adversary.Spec{Kind: adversary.Withhold}).Init(0)
	for _, out := range outs {
		if s, ok := out.(engine.Send); ok {
			if _, isVote := s.Msg.(*types.VoteMsg); isVote {
				t.Fatal("withheld vote was sent")
			}
		}
	}
	if len(outs) != 2 {
		t.Fatalf("expected proposal + timer to survive, got %d outputs", len(outs))
	}
}

// TestEquivocateSplitsOwnProposal: the broadcast becomes per-replica sends,
// both fork halves eventually see both blocks, and the fabricated sibling
// carries a valid signature.
func TestEquivocateSplitsOwnProposal(t *testing.T) {
	ring := testRing(t, 4)
	p := proposal(t, ring, 1, 5)
	inner := &stubEngine{id: 1, scripts: [][]engine.Output{{
		engine.Broadcast{Msg: p, SelfDeliver: true},
	}}}
	outs := wrap(t, inner, 1, adversary.Spec{Kind: adversary.Equivocate}).Init(0)

	blocks := make(map[types.ReplicaID]map[types.BlockID]bool)
	timers := 0
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			prop, ok := o.Msg.(*types.Proposal)
			if !ok {
				t.Fatalf("unexpected message %T", o.Msg)
			}
			if !ring.Verify(1, prop.SigningPayload(), prop.Signature) {
				t.Fatal("equivocated proposal not properly signed")
			}
			if blocks[o.To] == nil {
				blocks[o.To] = make(map[types.BlockID]bool)
			}
			blocks[o.To][prop.Block.ID()] = true
		case engine.SetTimer:
			if o.ID >= 0 {
				t.Fatalf("behavior timer collides with engine space: %d", o.ID)
			}
			timers++
		case engine.Broadcast:
			t.Fatal("equivocation left the original broadcast intact")
		}
	}
	if timers == 0 {
		t.Fatal("no delayed crossover copies were scheduled")
	}
	if len(blocks[1]) != 1 {
		t.Fatalf("self-delivery must carry exactly the honest block, got %d", len(blocks[1]))
	}
}

// TestCorruptSigsRewritesCopies: the signature flip must happen on a copy —
// engines retain references to the messages they emitted.
func TestCorruptSigsRewritesCopies(t *testing.T) {
	ring := testRing(t, 4)
	p := proposal(t, ring, 1, 2)
	orig := append([]byte(nil), p.Signature...)
	inner := &stubEngine{id: 1, scripts: [][]engine.Output{{
		engine.Broadcast{Msg: p},
	}}}
	outs := wrap(t, inner, 1, adversary.Spec{Kind: adversary.CorruptSigs, Every: 1}).Init(0)
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	sent := outs[0].(engine.Broadcast).Msg.(*types.Proposal)
	if sent == p {
		t.Fatal("corruption mutated the engine's own message")
	}
	if ring.Verify(1, sent.SigningPayload(), sent.Signature) {
		t.Fatal("corrupted signature still verifies")
	}
	if !reflect.DeepEqual(p.Signature, orig) {
		t.Fatal("original signature bytes were mutated")
	}
}

// TestDoubleVoteSignsCompetitor: after observing a competing proposal for a
// voted round, a conflicting vote is emitted with a valid signature.
func TestDoubleVoteSignsCompetitor(t *testing.T) {
	ring := testRing(t, 4)
	mine := proposal(t, ring, 1, 3)
	other := proposal(t, ring, 2, 3) // same round, different block
	other.Block = types.NewBlock(mine.Block.Parent, mine.Block.Justify, 3, 1, 2, 1, types.Payload{}, nil)
	v := vote(ring, 1, mine.Block)
	inner := &stubEngine{id: 1, scripts: [][]engine.Output{
		{engine.Send{To: 3, Msg: &types.VoteMsg{Vote: v}}}, // event 1: own vote
		nil, // event 2: competitor arrives, engine silent
	}}
	eng := wrap(t, inner, 1, adversary.Spec{Kind: adversary.DoubleVote})
	_ = eng.Init(0)
	outs := eng.OnMessage(0, 2, other)

	found := false
	for _, out := range outs {
		s, ok := out.(engine.Send)
		if !ok {
			continue
		}
		vm, ok := s.Msg.(*types.VoteMsg)
		if !ok {
			continue
		}
		if vm.Vote.Block != other.Block.ID() || vm.Vote.Voter != 1 {
			t.Fatalf("unexpected double vote %+v", vm.Vote)
		}
		if !ring.Verify(1, vm.Vote.SigningPayload(), vm.Vote.Signature) {
			t.Fatal("double vote not properly signed")
		}
		if s.To != 3 {
			t.Fatalf("double vote routed to %d, want the original recipient 3", s.To)
		}
		found = true
	}
	if !found {
		t.Fatal("no conflicting vote emitted after the competitor arrived")
	}
}

// TestDelayedSendsFlushOnPrivateTimer: the delay behavior postpones
// transmissions via wrapper-owned negative timer IDs and replays them when
// the timer fires; engine timers pass through untouched.
func TestDelayedSendsFlushOnPrivateTimer(t *testing.T) {
	ring := testRing(t, 4)
	v := vote(ring, 1, proposal(t, ring, 1, 1).Block)
	inner := &stubEngine{id: 1, scripts: [][]engine.Output{{
		engine.Send{To: 2, Msg: &types.VoteMsg{Vote: v}},
	}}}
	eng := wrap(t, inner, 1, adversary.Spec{Kind: adversary.Delay, Delay: 5 * time.Millisecond})
	outs := eng.Init(0)
	if len(outs) != 1 {
		t.Fatalf("expected only the delay timer, got %v", outs)
	}
	timer, ok := outs[0].(engine.SetTimer)
	if !ok || timer.ID >= 0 {
		t.Fatalf("expected a private (negative) timer, got %v", outs[0])
	}
	if timer.Delay < 5*time.Millisecond {
		t.Fatalf("timer delay %v below configured delay", timer.Delay)
	}
	flushed := eng.OnTimer(timer.Delay, timer.ID)
	if len(flushed) != 1 {
		t.Fatalf("flush produced %d outputs", len(flushed))
	}
	if s, ok := flushed[0].(engine.Send); !ok || s.To != 2 {
		t.Fatalf("flushed output %v is not the delayed send", flushed[0])
	}
}

// TestBehaviorDeterminism: identical configuration and event sequence must
// produce identical outputs — the property scenario replay depends on.
func TestBehaviorDeterminism(t *testing.T) {
	ring := testRing(t, 4)
	build := func() engine.Engine {
		p := proposal(t, ring, 1, 4)
		inner := &stubEngine{id: 1, scripts: [][]engine.Output{
			{engine.Broadcast{Msg: p, SelfDeliver: true}},
			{engine.Send{To: 2, Msg: &types.VoteMsg{Vote: vote(ring, 1, p.Block)}}},
		}}
		return wrap(t, inner, 1,
			adversary.Spec{Kind: adversary.Drop, P: 0.5},
			adversary.Spec{Kind: adversary.Duplicate, P: 0.5},
			adversary.Spec{Kind: adversary.Garbage, Every: 1},
		)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Init(0), b.Init(0)) {
		t.Fatal("first event diverged between identical wrappers")
	}
	if !reflect.DeepEqual(a.OnMessage(0, 2, proposal(t, ring, 2, 9)), b.OnMessage(0, 2, proposal(t, ring, 2, 9))) {
		t.Fatal("second event diverged between identical wrappers")
	}
}

// TestSpecStringsAreStable pins the replay-line rendering the fuzzer prints.
func TestSpecStringsAreStable(t *testing.T) {
	cases := map[string]adversary.Spec{
		"equivocate":            {Kind: adversary.Equivocate},
		"drop(p=0.25)":          {Kind: adversary.Drop, P: 0.25},
		"corrupt-sigs(every=3)": {Kind: adversary.CorruptSigs, Every: 3},
		"delay(d=2ms,j=1ms)":    {Kind: adversary.Delay, Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("spec %v rendered %q, want %q", spec.Kind, got, want)
		}
	}
	for _, kind := range adversary.Kinds {
		if _, err := (adversary.Spec{Kind: kind, Every: 2, P: 0.5, Delay: time.Millisecond}).Build(); err != nil {
			t.Errorf("catalog kind %q does not build: %v", kind, err)
		}
	}
}

// Package adversary is the Byzantine-behavior subsystem: a composable,
// message-level Behavior interface and an engine wrapper that applies a
// chain of behaviors to a replica's outbound traffic. Because behaviors act
// on engine.Output values rather than on engine internals, the same
// implementations corrupt DiemBFT and Streamlet replicas uniformly — leader
// equivocation, vote withholding, conflicting-vote double-signing, marker
// lying, stale-message replay, signature corruption, garbage injection, and
// timing attacks (drop/delay/duplicate) all work against both engines, under
// the deterministic simulator and the real runtimes alike.
//
// The package replaces the former ad-hoc diembft.Misbehavior struct and the
// streamlet WithholdVotes knob. Behaviors are built from serializable Specs
// (see behaviors.go) so the harness's scenario fuzzer can print, replay and
// minimize adversarial scenarios from a seed.
package adversary

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/types"
)

// Config identifies the corrupted replica and seeds its randomness.
type Config struct {
	// ID is the Byzantine replica; N = 3F+1 is the cluster shape.
	ID   types.ReplicaID
	N, F int
	// Signer signs fabricated messages (equivocating proposals, double
	// votes, lied markers) with the replica's real key, so they pass
	// verification everywhere — the Byzantine model the paper assumes.
	Signer crypto.Signer
	// Seed drives every random choice the behaviors make. Runs with the
	// same seed (and the same deterministic substrate underneath) replay
	// bit-identically.
	Seed int64
	// Colluders lists the whole Byzantine coalition (including this
	// replica). The paper's adversary is a coordinating coalition, so
	// knowing one's co-conspirators is part of the model; behaviors use it
	// to aim fork halves at honest voters. Optional — behaviors degrade to
	// coalition-blind heuristics without it.
	Colluders []types.ReplicaID
}

// Context is the per-replica state behaviors act through: identity, signing,
// and deterministic randomness.
type Context struct {
	cfg Config
	rng *rand.Rand
}

// ID returns the Byzantine replica's identity.
func (c *Context) ID() types.ReplicaID { return c.cfg.ID }

// N returns the cluster size.
func (c *Context) N() int { return c.cfg.N }

// F returns the design fault bound.
func (c *Context) F() int { return c.cfg.F }

// Rand returns the behavior RNG (deterministic per Config.Seed).
func (c *Context) Rand() *rand.Rand { return c.rng }

// Sign signs a payload with the replica's key.
func (c *Context) Sign(payload []byte) []byte { return c.cfg.Signer.Sign(payload) }

// IsColluder reports whether id belongs to the configured coalition (always
// false when membership was not configured).
func (c *Context) IsColluder(id types.ReplicaID) bool {
	for _, b := range c.cfg.Colluders {
		if b == id {
			return true
		}
	}
	return false
}

// Honest returns the replicas outside the coalition, in ID order — empty
// when the coalition membership was not configured.
func (c *Context) Honest() []types.ReplicaID {
	if len(c.cfg.Colluders) == 0 {
		return nil
	}
	byz := make(map[types.ReplicaID]bool, len(c.cfg.Colluders))
	for _, id := range c.cfg.Colluders {
		byz[id] = true
	}
	out := make([]types.ReplicaID, 0, c.cfg.N-len(c.cfg.Colluders))
	for i := 0; i < c.cfg.N; i++ {
		if id := types.ReplicaID(i); !byz[id] {
			out = append(out, id)
		}
	}
	return out
}

// Outbound is one outbound transmission as behaviors see it: either a
// point-to-point send or a broadcast, with an optional extra delivery delay.
type Outbound struct {
	// Broadcast sends to every other replica; To is ignored. SelfDeliver
	// additionally loops the message back to the sender (the engines route
	// their own proposals through the common path this way).
	Broadcast   bool
	SelfDeliver bool
	// To is the point-to-point recipient (may be the replica itself, which
	// runtimes treat as loopback).
	To types.ReplicaID
	// Msg is the message. Behaviors must never mutate a message in place —
	// engines retain references to what they emitted — and instead emit
	// rewritten copies.
	Msg types.Message
	// Delay postpones the transmission (timing attacks). The wrapper
	// realizes it with a private timer, so it works on every runtime.
	Delay time.Duration
}

// Behavior is one composable Byzantine deviation. Apply receives each
// outbound transmission the (honest) engine produced and emits zero or more
// replacements; emitting the input unchanged is the identity. Behaviors are
// chained in order: what the first emits, the second sees.
type Behavior interface {
	// Name identifies the behavior in specs and logs.
	Name() string
	// Apply transforms one outbound transmission.
	Apply(ctx *Context, now time.Duration, out Outbound, emit func(Outbound))
}

// InboundObserver is implemented by behaviors that need to watch the
// replica's inbound traffic (e.g. double-voting needs the round's competing
// proposals). Observation is read-only: the message is delivered to the
// wrapped engine unchanged.
type InboundObserver interface {
	ObserveInbound(ctx *Context, now time.Duration, from types.ReplicaID, msg types.Message)
}

// Emitter is implemented by behaviors that inject transmissions of their
// own after an event, independent of what the engine produced — e.g. a
// double-voter signing a conflicting vote when the competing proposal
// arrives after its honest vote already left. Emissions flow through the
// remainder of the behavior chain.
type Emitter interface {
	Emit(ctx *Context, now time.Duration, emit func(Outbound))
}

// Replica wraps an honest engine and applies a behavior chain to its
// outputs. It implements engine.Engine and — delegating to the inner engine
// where possible — engine.Pipelined, so corrupted replicas run under every
// substrate an honest one does.
type Replica struct {
	inner     engine.Engine
	pipelined engine.Pipelined // nil when inner lacks the split
	ctx       Context
	behaviors []Behavior
	observers []InboundObserver

	// delayed holds transmissions postponed by Outbound.Delay, keyed by the
	// private (negative) timer ID that releases them. Engine timer IDs pack
	// rounds and are always >= 0, so the spaces cannot collide.
	delayed   map[int][]Outbound
	nextTimer int

	outs []engine.Output
	now  time.Duration
}

// Wrap builds the behavior chain from specs and wraps inner with it. An
// empty spec list returns inner unchanged — honest replicas never pay for
// the subsystem's existence (the zero-allocation guards pin this).
func Wrap(inner engine.Engine, cfg Config, specs []Spec) (engine.Engine, error) {
	if len(specs) == 0 {
		return inner, nil
	}
	behaviors, err := Build(specs)
	if err != nil {
		return nil, err
	}
	return New(inner, cfg, behaviors...), nil
}

// New wraps inner with the behavior chain. With no behaviors the wrapper is
// pure pass-through (but prefer not wrapping at all: honest replicas built
// through internal/compose never are, keeping the honest hot path untouched).
func New(inner engine.Engine, cfg Config, behaviors ...Behavior) *Replica {
	r := &Replica{
		inner:     inner,
		ctx:       Context{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5f3759df))},
		behaviors: behaviors,
		delayed:   make(map[int][]Outbound),
		nextTimer: -1,
	}
	if p, ok := inner.(engine.Pipelined); ok {
		r.pipelined = p
	}
	for _, b := range behaviors {
		if o, ok := b.(InboundObserver); ok {
			r.observers = append(r.observers, o)
		}
	}
	return r
}

// Inner exposes the wrapped engine (tests and diagnostics).
func (r *Replica) Inner() engine.Engine { return r.inner }

// Restore delegates journal recovery to the wrapped engine, so a WAL-backed
// Byzantine replica (WithAdversary + WithWAL, or a fuzz scenario combining
// an adversary with a crash/restart plan) recovers exactly like an honest
// one — the behaviors only corrupt what leaves the replica, not its state.
func (r *Replica) Restore(rec *core.Recovery) error {
	type restorer interface {
		Restore(*core.Recovery) error
	}
	if inner, ok := r.inner.(restorer); ok {
		return inner.Restore(rec)
	}
	if rec == nil || rec.Empty() {
		return nil
	}
	return fmt.Errorf("adversary: wrapped engine %T does not support journal restore", r.inner)
}

// ID implements engine.Engine.
func (r *Replica) ID() types.ReplicaID { return r.inner.ID() }

// Init implements engine.Engine.
func (r *Replica) Init(now time.Duration) []engine.Output {
	return r.transform(now, r.inner.Init(now))
}

// OnMessage implements engine.Engine.
func (r *Replica) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	r.observe(now, from, msg)
	return r.transform(now, r.inner.OnMessage(now, from, msg))
}

// OnTimer implements engine.Engine. Negative IDs are the wrapper's own
// delayed-transmission timers; everything else belongs to the inner engine.
func (r *Replica) OnTimer(now time.Duration, id int) []engine.Output {
	if id < 0 {
		pending := r.delayed[id]
		delete(r.delayed, id)
		r.outs = r.outs[:0]
		r.now = now
		for _, out := range pending {
			out.Delay = 0
			r.materialize(out)
		}
		return r.take()
	}
	return r.transform(now, r.inner.OnTimer(now, id))
}

// Prevalidate implements engine.Pipelined by delegation; an inner engine
// without the split accepts everything here and checks in OnMessage instead.
func (r *Replica) Prevalidate(from types.ReplicaID, msg types.Message) error {
	if r.pipelined != nil {
		return r.pipelined.Prevalidate(from, msg)
	}
	return nil
}

// OnVerifiedMessage implements engine.Pipelined.
func (r *Replica) OnVerifiedMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	r.observe(now, from, msg)
	if r.pipelined != nil {
		return r.transform(now, r.pipelined.OnVerifiedMessage(now, from, msg))
	}
	return r.transform(now, r.inner.OnMessage(now, from, msg))
}

func (r *Replica) observe(now time.Duration, from types.ReplicaID, msg types.Message) {
	for _, o := range r.observers {
		o.ObserveInbound(&r.ctx, now, from, msg)
	}
}

// transform routes every Send/Broadcast output through the behavior chain;
// timers, commits and strength reports pass through untouched. After the
// engine's outputs, each Emitter behavior gets a chance to inject its own
// transmissions (fed through the rest of the chain).
func (r *Replica) transform(now time.Duration, outs []engine.Output) []engine.Output {
	r.outs = r.outs[:0]
	r.now = now
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			r.chain(0, Outbound{To: o.To, Msg: o.Msg})
		case engine.Broadcast:
			r.chain(0, Outbound{Broadcast: true, SelfDeliver: o.SelfDeliver, Msg: o.Msg})
		default:
			r.outs = append(r.outs, out)
		}
	}
	for i, b := range r.behaviors {
		if e, ok := b.(Emitter); ok {
			next := i + 1
			e.Emit(&r.ctx, now, func(o Outbound) { r.chain(next, o) })
		}
	}
	return r.take()
}

func (r *Replica) take() []engine.Output {
	outs := make([]engine.Output, len(r.outs))
	copy(outs, r.outs)
	return outs
}

// chain feeds out through behaviors[i:]; emissions of behavior i continue at
// i+1, and whatever survives the whole chain is materialized as outputs.
func (r *Replica) chain(i int, out Outbound) {
	if out.Msg == nil {
		return
	}
	if i >= len(r.behaviors) {
		r.materialize(out)
		return
	}
	r.behaviors[i].Apply(&r.ctx, r.now, out, func(next Outbound) { r.chain(i+1, next) })
}

func (r *Replica) materialize(out Outbound) {
	if out.Delay > 0 {
		id := r.nextTimer
		r.nextTimer--
		r.delayed[id] = append(r.delayed[id], Outbound{
			Broadcast: out.Broadcast, SelfDeliver: out.SelfDeliver, To: out.To, Msg: out.Msg,
		})
		r.outs = append(r.outs, engine.SetTimer{ID: id, Delay: out.Delay})
		return
	}
	if out.Broadcast {
		r.outs = append(r.outs, engine.Broadcast{Msg: out.Msg, SelfDeliver: out.SelfDeliver})
		return
	}
	r.outs = append(r.outs, engine.Send{To: out.To, Msg: out.Msg})
}

package gateway_test

import (
	"bytes"
	"testing"

	"repro/internal/gateway"
	"repro/internal/types"
)

// The subscription frames cross the trust boundary between the gateway and
// arbitrary internet clients in both directions, so both decoders face
// attacker-controlled bytes: they must never panic, never over-allocate,
// and must round-trip exactly what the encoders produced.

func seedEvent() gateway.Event {
	var id types.BlockID
	for i := range id {
		id[i] = byte(i * 3)
	}
	votes := make([]types.Vote, 3)
	for i := range votes {
		votes[i] = types.Vote{Block: id, Round: 7, Height: 5, Voter: types.ReplicaID(i), Signature: []byte("sig")}
	}
	qc := &types.QC{Block: id, Round: 7, Height: 5, Votes: votes}
	carrier := types.NewBlock(id, qc, 8, 6, 1, 99, types.Payload{Padding: 32},
		[]types.StrengthRecord{{Block: id, Height: 3, Round: 3, X: 2}})
	// Make the QC certify the carrier so the seed is a structurally honest
	// frame (the fuzzer mutates from there).
	cqc := &types.QC{Block: carrier.ID(), Round: 8, Height: 6, Votes: votes}
	return gateway.Event{
		Record:  types.StrengthRecord{Block: id, Height: 3, Round: 3, X: 2},
		Carrier: carrier,
		QC:      cqc,
	}
}

func FuzzDecodeEventFrame(f *testing.F) {
	f.Add(gateway.AppendEventFrame(nil, seedEvent()))
	f.Add([]byte{'e'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := gateway.DecodeEventFrame(data)
		if err != nil {
			return
		}
		// Decoded OK: re-encoding must be byte-identical (a canonical
		// encoding is what subscribers hash and verify against).
		re := gateway.AppendEventFrame(nil, ev)
		if !bytes.Equal(re, data) {
			t.Fatalf("event frame round-trip mismatch:\n in=%x\nout=%x", data, re)
		}
	})
}

func FuzzDecodeSubscribeFrame(f *testing.F) {
	f.Add(gateway.AppendSubscribeFrame(nil, 0))
	f.Add(gateway.AppendSubscribeFrame(nil, 3))
	f.Add([]byte{'s'})
	f.Fuzz(func(t *testing.T, data []byte) {
		min, err := gateway.DecodeSubscribeFrame(data)
		if err != nil {
			return
		}
		re := gateway.AppendSubscribeFrame(nil, min)
		if !bytes.Equal(re, data) {
			t.Fatalf("subscribe frame round-trip mismatch:\n in=%x\nout=%x", data, re)
		}
	})
}

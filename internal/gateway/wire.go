package gateway

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/types"
)

// The subscription wire protocol: length-delimited binary frames using the
// repo's pinned deterministic encodings (types.Append*/Consume*), NOT gob —
// subscribers exist outside the trust domain, so the decoder must be
// fuzzable and allocation-bounded against adversarial bytes.
//
//	frame   := uint32(len(payload)) payload        (big-endian length)
//	payload := kind:byte body
//	kind 's' (client→gateway) subscribe: minLevel:uint32
//	kind 'e' (gateway→client) event:     record  carrier  qc
//	          record  = types.StrengthRecord.Encode   (the claimed rise)
//	          carrier = uint32-length-prefixed types.Block.AppendEncoding
//	          qc      = uint32-length-prefixed types.QC.Encode
//
// The carrier is a certified block whose CommitLog contains the record, and
// qc certifies the carrier — the §5 proof. A subscriber re-verifies both
// via its own lightclient before trusting the record, so a gateway that
// forges or inflates levels is caught on the client.

// Frame kinds.
const (
	frameSubscribe = byte('s')
	frameEvent     = byte('e')
)

// MaxFrame bounds one frame's payload. A block carries at most the
// engine-capped payload plus a bounded CommitLog; 1 MiB leaves generous
// headroom while keeping a malicious length prefix from ballooning memory.
const MaxFrame = 1 << 20

// Event is one proof-carrying strength rise as it crosses the wire.
type Event struct {
	// Record is the claimed rise: block, height, round, level.
	Record types.StrengthRecord
	// Carrier is the certified block whose CommitLog proves the record.
	Carrier *types.Block
	// QC certifies Carrier.
	QC *types.QC
}

// AppendEventFrame appends the payload (no length prefix) of an event frame.
func AppendEventFrame(b []byte, ev Event) []byte {
	b = append(b, frameEvent)
	b = ev.Record.Encode(b)
	blk := ev.Carrier.AppendEncoding(nil)
	b = types.AppendUint32(b, uint32(len(blk)))
	b = append(b, blk...)
	qc := ev.QC.Encode(nil)
	b = types.AppendUint32(b, uint32(len(qc)))
	b = append(b, qc...)
	return b
}

// DecodeEventFrame parses an event frame payload (including the kind byte).
func DecodeEventFrame(b []byte) (Event, error) {
	var ev Event
	if len(b) == 0 || b[0] != frameEvent {
		return ev, fmt.Errorf("gateway: not an event frame")
	}
	rest := b[1:]
	rec, rest, err := types.DecodeStrengthRecord(rest)
	if err != nil {
		return ev, fmt.Errorf("gateway: event record: %w", err)
	}
	ev.Record = rec
	blkBytes, rest, err := consumeChunk(rest)
	if err != nil {
		return ev, fmt.Errorf("gateway: event carrier: %w", err)
	}
	blk, blkRest, err := types.DecodeBlock(blkBytes)
	if err != nil {
		return ev, fmt.Errorf("gateway: event carrier: %w", err)
	}
	if len(blkRest) != 0 {
		return ev, fmt.Errorf("gateway: trailing bytes after carrier")
	}
	ev.Carrier = blk
	qcBytes, rest, err := consumeChunk(rest)
	if err != nil {
		return ev, fmt.Errorf("gateway: event qc: %w", err)
	}
	qc, trailing, err := types.DecodeQC(qcBytes)
	if err != nil {
		return ev, fmt.Errorf("gateway: event qc: %w", err)
	}
	if len(trailing) != 0 || len(rest) != 0 {
		return ev, fmt.Errorf("gateway: trailing bytes in event frame")
	}
	ev.QC = qc
	return ev, nil
}

// AppendSubscribeFrame appends the payload of a subscribe frame.
func AppendSubscribeFrame(b []byte, minLevel int) []byte {
	b = append(b, frameSubscribe)
	return types.AppendUint32(b, uint32(minLevel))
}

// DecodeSubscribeFrame parses a subscribe frame payload.
func DecodeSubscribeFrame(b []byte) (minLevel int, err error) {
	if len(b) == 0 || b[0] != frameSubscribe {
		return 0, fmt.Errorf("gateway: not a subscribe frame")
	}
	v, rest, err := types.ConsumeUint32(b[1:])
	if err != nil {
		return 0, fmt.Errorf("gateway: subscribe frame: %w", err)
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("gateway: trailing bytes in subscribe frame")
	}
	return int(v), nil
}

// consumeChunk reads one uint32-length-prefixed byte chunk.
func consumeChunk(b []byte) (chunk, rest []byte, err error) {
	n, rest, err := types.ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n) > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("chunk length %d exceeds remaining %d", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// WriteFrame writes one length-delimited frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("gateway: frame %d exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-delimited frame, rejecting oversized lengths
// before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("gateway: frame length %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

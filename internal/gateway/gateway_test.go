package gateway_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/gateway"
	"repro/internal/types"
)

// pipeListener turns net.Pipe into a net.Listener so tests get fully
// synchronous conns: a write blocks until the peer reads, which makes
// back-pressure (and therefore eviction) deterministic instead of hiding
// behind kernel socket buffers.
type pipeListener struct {
	ch     chan net.Conn
	closed chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr { return &net.UnixAddr{Name: "pipe", Net: "pipe"} }

// dial hands the server end to the gateway and returns the client end.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	select {
	case l.ch <- server:
	case <-time.After(5 * time.Second):
		t.Fatal("gateway did not accept")
	}
	return client
}

type gwFixture struct {
	t    *testing.T
	ring *crypto.KeyRing
	gw   *gateway.Gateway
	ln   *pipeListener
	seq  int
}

func newGwFixture(t *testing.T, queueBound int) *gwFixture {
	t.Helper()
	ring, err := crypto.NewKeyRing(4, 7, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	gw := gateway.New(gateway.Config{F: 1, Verifier: ring, QueueBound: queueBound})
	ln := newPipeListener()
	go gw.Serve(ln)
	t.Cleanup(func() { gw.Close() })
	return &gwFixture{t: t, ring: ring, gw: gw, ln: ln}
}

// certifiedPair builds a carrier block whose CommitLog claims the given
// rises, plus a genuine 2f+1 certificate over it.
func (f *gwFixture) certifiedPair(log []types.StrengthRecord) (*types.Block, *types.QC) {
	f.t.Helper()
	f.seq++
	genesis := types.Genesis()
	b := types.NewBlock(genesis.ID(), types.NewGenesisQC(genesis.ID()),
		types.Round(f.seq), types.Height(f.seq), 0, 0, types.Payload{}, log)
	votes := make([]types.Vote, 3)
	for i := range votes {
		v := types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: types.ReplicaID(i)}
		v.Signature = f.ring.Signer(v.Voter).Sign(v.SigningPayload())
		votes[i] = v
	}
	return b, &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
}

// rise names a distinct subject block per index so each ingest is a fresh
// monotone rise.
func rise(i, x int) types.StrengthRecord {
	var id types.BlockID
	id[0], id[1] = byte(i), byte(i>>8)
	id[31] = 0xAB
	return types.StrengthRecord{Block: id, Height: types.Height(i), Round: types.Round(i), X: x}
}

// subscribe dials, sends the handshake, and waits until the gateway has
// registered the subscription.
func (f *gwFixture) subscribe(minLevel, want int) net.Conn {
	f.t.Helper()
	conn := f.ln.dial(f.t)
	go func() {
		_ = gateway.WriteFrame(conn, gateway.AppendSubscribeFrame(nil, minLevel))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for f.gw.Subscribers() < want {
		if time.Now().After(deadline) {
			f.t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return conn
}

// collect reads frames off conn until it has n events or the conn dies.
func collect(t *testing.T, conn net.Conn, n int, out chan<- []gateway.Event) {
	t.Helper()
	var evs []gateway.Event
	for len(evs) < n {
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		payload, err := gateway.ReadFrame(conn)
		if err != nil {
			break
		}
		ev, err := gateway.DecodeEventFrame(payload)
		if err != nil {
			t.Errorf("bad event frame: %v", err)
			break
		}
		evs = append(evs, ev)
	}
	out <- evs
}

// TestIngestRejectsForgedProof: pairs whose certificate does not genuinely
// certify the carrier are rejected and fan nothing out.
func TestIngestRejectsForgedProof(t *testing.T) {
	f := newGwFixture(t, 0)
	b, qc := f.certifiedPair([]types.StrengthRecord{rise(1, 1)})

	// QC for a different block.
	other, otherQC := f.certifiedPair([]types.StrengthRecord{rise(2, 1)})
	if err := f.gw.Ingest(b, otherQC); err == nil {
		t.Fatal("mismatched certificate accepted")
	}
	// Sub-quorum certificate.
	sub := &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: qc.Votes[:2]}
	if err := f.gw.Ingest(b, sub); err == nil {
		t.Fatal("sub-quorum certificate accepted")
	}
	// Tampered vote signature.
	bad := *qc
	bad.Votes = append([]types.Vote(nil), qc.Votes...)
	bad.Votes[1].Signature = []byte("forged")
	if err := f.gw.Ingest(b, &bad); err == nil {
		t.Fatal("forged vote signature accepted")
	}
	if f.gw.Proven() != 0 {
		t.Fatalf("forged pairs proved %d levels", f.gw.Proven())
	}
	_ = other
	if err := f.gw.Ingest(b, qc); err != nil {
		t.Fatalf("genuine pair rejected: %v", err)
	}
	if err := f.gw.Ingest(other, otherQC); err != nil {
		t.Fatalf("genuine pair rejected: %v", err)
	}
	if f.gw.Proven() != 2 {
		t.Fatalf("proved %d levels, want 2", f.gw.Proven())
	}
}

// TestFanOutOrderAndMinLevel: a subscriber receives every rise at or above
// its minimum level, in ingest order, each carrying a verifiable proof.
func TestFanOutOrderAndMinLevel(t *testing.T) {
	f := newGwFixture(t, 0)
	all := f.subscribe(0, 1)
	strongOnly := f.subscribe(2, 2)

	const events = 6
	allCh := make(chan []gateway.Event, 1)
	strongCh := make(chan []gateway.Event, 1)
	go collect(t, all, events, allCh)
	go collect(t, strongOnly, events/2, strongCh)

	for i := 0; i < events; i++ {
		x := 1
		if i%2 == 1 {
			x = 2
		}
		b, qc := f.certifiedPair([]types.StrengthRecord{rise(i, x)})
		if err := f.gw.Ingest(b, qc); err != nil {
			t.Fatal(err)
		}
	}

	got := <-allCh
	if len(got) != events {
		t.Fatalf("full subscriber got %d events, want %d", len(got), events)
	}
	for i, ev := range got {
		if ev.Record.Height != types.Height(i) {
			t.Fatalf("event %d out of order: height %d", i, ev.Record.Height)
		}
		// The attached proof must hold up under independent verification.
		if ev.QC.Block != ev.Carrier.ID() {
			t.Fatalf("event %d proof does not certify its carrier", i)
		}
		if err := crypto.VerifyQC(f.ring, ev.QC, 3); err != nil {
			t.Fatalf("event %d carried unverifiable proof: %v", i, err)
		}
	}
	strong := <-strongCh
	if len(strong) != events/2 {
		t.Fatalf("min-level subscriber got %d events, want %d", len(strong), events/2)
	}
	for _, ev := range strong {
		if ev.Record.X < 2 {
			t.Fatalf("min-level subscriber received level-%d rise", ev.Record.X)
		}
	}
}

// TestSlowSubscriberEvicted: a subscriber that stops reading is evicted once
// its bounded queue overflows, while a fast subscriber still receives every
// rise in order. The feed never blocks on the straggler.
func TestSlowSubscriberEvicted(t *testing.T) {
	const bound = 4
	f := newGwFixture(t, bound)

	fast := f.subscribe(0, 1)
	slow := f.subscribe(0, 2) // subscribes, then never reads
	_ = slow

	// Stream the fast subscriber's events as they arrive so ingest can be
	// paced on its receipt: its queue is provably empty before each new
	// rise, while the stalled one accumulates one frame parked in its
	// blocked writer plus `bound` queued — everything past that must evict.
	const events = bound + 4
	fastCh := make(chan gateway.Event, events)
	go func() {
		for {
			_ = fast.SetReadDeadline(time.Now().Add(5 * time.Second))
			payload, err := gateway.ReadFrame(fast)
			if err != nil {
				close(fastCh)
				return
			}
			ev, err := gateway.DecodeEventFrame(payload)
			if err != nil {
				t.Errorf("bad event frame: %v", err)
				close(fastCh)
				return
			}
			fastCh <- ev
		}
	}()

	for i := 0; i < events; i++ {
		b, qc := f.certifiedPair([]types.StrengthRecord{rise(i, 1)})
		if err := f.gw.Ingest(b, qc); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		select {
		case ev, ok := <-fastCh:
			if !ok {
				t.Fatal("fast subscriber dropped")
			}
			if ev.Record.Height != types.Height(i) {
				t.Fatalf("fast subscriber event %d out of order: height %d", i, ev.Record.Height)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("fast subscriber starved at event %d by a stalled peer", i)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for f.gw.Subscribers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber not evicted: %d live", f.gw.Subscribers())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClosedConnUnsubscribes: a client hanging up is deregistered.
func TestClosedConnUnsubscribes(t *testing.T) {
	f := newGwFixture(t, 0)
	conn := f.subscribe(0, 1)
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for f.gw.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("closed subscriber still registered")
		}
		time.Sleep(time.Millisecond)
	}
}

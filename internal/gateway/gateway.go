// Package gateway is the fan-out half of the access tier: it takes the
// certified-pair feed from one or more observers (internal/observer),
// derives proof-carrying strength-rise events per Section 5 — a certified
// block's CommitLog entries are proven levels — and streams them to many
// subscribers over a length-delimited binary protocol.
//
// Trust model: subscribers do NOT trust the gateway. Every event carries
// its proof (the carrier block plus the QC certifying it); sft.Subscriber
// re-verifies through its own lightclient.Client, so a gateway that forges
// or inflates levels is caught client-side. The gateway still verifies its
// own feed (via an internal light client) so a compromised observer cannot
// use it as an amplifier for garbage.
//
// Back-pressure model: per-subscriber queues are bounded. When a
// subscriber's queue overflows the subscriber is evicted — the opposite of
// the in-process Commits() subscription, whose unbounded backlog is
// acceptable only because it lives in the replica's own address space. One
// stalled client must not grow gateway memory or delay the feed.
package gateway

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/lightclient"
	"repro/internal/obs"
	"repro/internal/types"
)

// DefaultQueueBound is the per-subscriber event queue depth.
const DefaultQueueBound = 256

// subscribeTimeout bounds how long a fresh connection may take to present
// its subscribe frame before the gateway drops it.
const subscribeTimeout = 10 * time.Second

// Config parameterizes a gateway.
type Config struct {
	// F is the committee fault threshold (quorum 2f+1 for proof checks).
	F int
	// Verifier checks certificate signatures (the cluster KeyRing).
	Verifier crypto.Verifier
	// QueueBound is the per-subscriber queue depth; a subscriber whose
	// queue overflows is evicted (default DefaultQueueBound).
	QueueBound int
	// Obs, if non-nil, receives gateway metric updates.
	Obs *obs.Obs
}

// Gateway fans proof-carrying strength events out to subscribers.
type Gateway struct {
	cfg Config

	mu     sync.Mutex
	lc     *lightclient.Client
	levels map[types.BlockID]int
	subs   map[*subscriber]struct{}
	lns    []net.Listener
	closed bool
	wg     sync.WaitGroup
}

type subscriber struct {
	conn     net.Conn
	minLevel int
	ch       chan []byte
	stop     chan struct{}
	once     sync.Once
}

func (s *subscriber) halt() { s.once.Do(func() { close(s.stop); s.conn.Close() }) }

// New creates a gateway.
func New(cfg Config) *Gateway {
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = DefaultQueueBound
	}
	return &Gateway{
		cfg:    cfg,
		lc:     lightclient.New(cfg.Verifier, cfg.F),
		levels: make(map[types.BlockID]int),
		subs:   make(map[*subscriber]struct{}),
	}
}

// Ingest feeds one certified pair from an observer: qc must certify b.
// New strength levels proven by b's CommitLog fan out to subscribers with
// the pair attached as proof. Safe for concurrent use.
func (g *Gateway) Ingest(b *types.Block, qc *types.QC) error {
	g.mu.Lock()
	if err := g.lc.ProcessCertified(b, qc); err != nil {
		g.mu.Unlock()
		g.cfg.Obs.OnGatewayIngest(true)
		return err
	}
	// Collect the rises this carrier proves, monotone per subject block.
	var fresh []types.StrengthRecord
	for _, rec := range b.CommitLog {
		if old, ok := g.levels[rec.Block]; ok && rec.X <= old {
			continue
		}
		g.levels[rec.Block] = rec.X
		fresh = append(fresh, rec)
	}
	subs := make([]*subscriber, 0, len(g.subs))
	for s := range g.subs {
		subs = append(subs, s)
	}
	g.mu.Unlock()
	g.cfg.Obs.OnGatewayIngest(false)

	for _, rec := range fresh {
		frame := AppendEventFrame(nil, Event{Record: rec, Carrier: b, QC: qc})
		for _, s := range subs {
			if rec.X < s.minLevel {
				continue
			}
			select {
			case s.ch <- frame:
				g.cfg.Obs.OnGatewayEvent()
			case <-s.stop:
			default:
				// Queue full: the slowest subscriber loses its slot rather
				// than the feed growing without bound.
				g.evict(s)
			}
		}
	}
	return nil
}

// Serve accepts subscriber connections on ln until ln or the gateway is
// closed. Call in a goroutine; multiple listeners may be served at once.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return fmt.Errorf("gateway: closed")
	}
	g.lns = append(g.lns, ln)
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil
		}
		g.wg.Add(1)
		go g.handle(conn)
	}
}

// Subscribers returns the number of live subscriptions.
func (g *Gateway) Subscribers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.subs)
}

// Proven returns how many distinct blocks have gateway-verified levels.
func (g *Gateway) Proven() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lc.Proven()
}

// Close disconnects all subscribers and stops serving.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	lns := g.lns
	g.lns = nil
	subs := make([]*subscriber, 0, len(g.subs))
	for s := range g.subs {
		subs = append(subs, s)
	}
	g.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, s := range subs {
		s.halt()
	}
	g.wg.Wait()
	return nil
}

func (g *Gateway) handle(conn net.Conn) {
	defer g.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(subscribeTimeout))
	payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	minLevel, err := DecodeSubscribeFrame(payload)
	if err != nil {
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	s := &subscriber{
		conn:     conn,
		minLevel: minLevel,
		ch:       make(chan []byte, g.cfg.QueueBound),
		stop:     make(chan struct{}),
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		conn.Close()
		return
	}
	g.subs[s] = struct{}{}
	g.mu.Unlock()
	g.cfg.Obs.OnGatewaySubscribed(1)

	defer func() {
		g.mu.Lock()
		_, present := g.subs[s]
		delete(g.subs, s)
		g.mu.Unlock()
		s.halt()
		if present {
			g.cfg.Obs.OnGatewaySubscribed(-1)
		}
	}()

	// Drain the subscriber's direction too: a client closing its end is the
	// unsubscribe signal, and discarding anything else it sends keeps the
	// protocol one-directional after the handshake.
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				s.halt()
				return
			}
		}
	}()

	for {
		select {
		case frame := <-s.ch:
			if err := WriteFrame(conn, frame); err != nil {
				return
			}
			g.cfg.Obs.OnGatewayFrameOut(int64(len(frame) + 4))
		case <-s.stop:
			return
		}
	}
}

// evict removes one over-slow subscriber.
func (g *Gateway) evict(s *subscriber) {
	g.mu.Lock()
	_, present := g.subs[s]
	delete(g.subs, s)
	g.mu.Unlock()
	s.halt()
	if present {
		g.cfg.Obs.OnGatewayEvicted()
		g.cfg.Obs.OnGatewaySubscribed(-1)
	}
}

// Package blockstore maintains each replica's local block tree: every block
// it has seen, parent/child links, certification state (which blocks have
// QCs), the highest known QC, and the ancestry/conflict queries on which
// both the voting rules and the SFT endorsement bookkeeping rely.
package blockstore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/types"
)

// Common errors returned by Store operations.
var (
	ErrUnknownBlock  = errors.New("blockstore: unknown block")
	ErrMissingParent = errors.New("blockstore: missing parent")
	ErrBadHeight     = errors.New("blockstore: height not parent+1")
	ErrBadRound      = errors.New("blockstore: round not greater than parent round")
)

type node struct {
	block    *types.Block
	parent   *node // nil for genesis
	children []*node
	qc       *types.QC // certificate for this block, if one is known
}

// Store is one replica's block tree. It is not safe for concurrent use; the
// engines own their store and the runtime serializes engine events.
type Store struct {
	genesis *types.Block
	nodes   map[types.BlockID]*node
	highQC  *types.QC
	// pruned tracks the height below which non-committed branches have been
	// discarded; ancestor walks stop at pruned nodes' boundary.
	prunedHeight types.Height
}

// New creates a store seeded with the canonical genesis block and its
// conventional round-0 QC.
func New() *Store {
	g := types.Genesis()
	s := &Store{
		genesis: g,
		nodes:   make(map[types.BlockID]*node),
	}
	s.nodes[g.ID()] = &node{block: g}
	s.highQC = types.NewGenesisQC(g.ID())
	s.nodes[g.ID()].qc = s.highQC
	return s
}

// Genesis returns the genesis block.
func (s *Store) Genesis() *types.Block { return s.genesis }

// HighQC returns the highest-ranked QC seen so far (never nil).
func (s *Store) HighQC() *types.QC { return s.highQC }

// Len returns the number of blocks stored, including genesis.
func (s *Store) Len() int { return len(s.nodes) }

// Block returns the block with the given ID, or nil if unknown.
func (s *Store) Block(id types.BlockID) *types.Block {
	if n, ok := s.nodes[id]; ok {
		return n.block
	}
	return nil
}

// Has reports whether the block is stored.
func (s *Store) Has(id types.BlockID) bool {
	_, ok := s.nodes[id]
	return ok
}

// Insert adds a block whose parent is already stored, validating the basic
// chain invariants: height is parent height + 1 and round exceeds the
// parent's round.
func (s *Store) Insert(b *types.Block) error {
	id := b.ID()
	if _, ok := s.nodes[id]; ok {
		return nil // duplicate inserts are harmless
	}
	p, ok := s.nodes[b.Parent]
	if !ok {
		return fmt.Errorf("%w: parent %s of %s", ErrMissingParent, b.Parent, b)
	}
	if b.Height != p.block.Height+1 {
		return fmt.Errorf("%w: %s over parent h%d", ErrBadHeight, b, p.block.Height)
	}
	if b.Round <= p.block.Round {
		return fmt.Errorf("%w: %s over parent r%d", ErrBadRound, b, p.block.Round)
	}
	n := &node{block: b, parent: p}
	p.children = append(p.children, n)
	s.nodes[id] = n
	return nil
}

// RegisterQC records a certificate for a stored block and updates the
// highest QC. It returns the certified block and whether the certificate
// improved stored state (first or larger cert for the block, or a new high
// QC) — the durability journal uses the flag to log each certificate once
// instead of on every re-delivery.
func (s *Store) RegisterQC(qc *types.QC) (*types.Block, bool, error) {
	n, ok := s.nodes[qc.Block]
	if !ok {
		return nil, false, fmt.Errorf("%w: qc for %s", ErrUnknownBlock, qc.Block)
	}
	improved := false
	if n.qc == nil || len(qc.Votes) > len(n.qc.Votes) {
		// Keep the largest certificate seen for the block: Figure 8's
		// extra-wait experiment produces QCs with more than 2f+1 votes and
		// bigger certificates carry more endorsement information.
		n.qc = qc
		improved = true
	}
	if qc.RanksHigher(s.highQC) {
		s.highQC = qc
		improved = true
	}
	return n.block, improved, nil
}

// QCFor returns the certificate stored for the block, or nil.
func (s *Store) QCFor(id types.BlockID) *types.QC {
	if n, ok := s.nodes[id]; ok {
		return n.qc
	}
	return nil
}

// IsCertified reports whether a QC is known for the block.
func (s *Store) IsCertified(id types.BlockID) bool {
	n, ok := s.nodes[id]
	return ok && n.qc != nil
}

// Parent returns the parent block, or nil for genesis or unknown blocks.
func (s *Store) Parent(id types.BlockID) *types.Block {
	n, ok := s.nodes[id]
	if !ok || n.parent == nil {
		return nil
	}
	return n.parent.block
}

// Children returns the stored children of a block.
func (s *Store) Children(id types.BlockID) []*types.Block {
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	out := make([]*types.Block, len(n.children))
	for i, c := range n.children {
		out[i] = c.block
	}
	return out
}

// VisitChildren calls fn on each stored child of a block, stopping early if
// fn returns false. Unlike Children it performs no allocation, which matters
// to the SFT tracker's per-QC re-evaluation loops. fn must not mutate the
// store.
func (s *Store) VisitChildren(id types.BlockID, fn func(*types.Block) bool) {
	n, ok := s.nodes[id]
	if !ok {
		return
	}
	for _, c := range n.children {
		if !fn(c.block) {
			return
		}
	}
}

// IsAncestor reports whether anc is an ancestor of (or equal to) desc,
// i.e. desc extends anc in the paper's terminology.
func (s *Store) IsAncestor(anc, desc types.BlockID) bool {
	a, ok := s.nodes[anc]
	if !ok {
		return false
	}
	d, ok := s.nodes[desc]
	if !ok {
		return false
	}
	for d != nil && d.block.Height > a.block.Height {
		d = d.parent
	}
	return d == a
}

// Conflicts reports whether the two stored blocks conflict: neither extends
// the other (Section 2.1).
func (s *Store) Conflicts(a, b types.BlockID) bool {
	if a == b {
		return false
	}
	return !s.IsAncestor(a, b) && !s.IsAncestor(b, a)
}

// CommonAncestor returns the highest common ancestor of two stored blocks,
// or nil if either is unknown. If one extends the other, the lower block
// itself is returned.
func (s *Store) CommonAncestor(a, b types.BlockID) *types.Block {
	na, ok := s.nodes[a]
	if !ok {
		return nil
	}
	nb, ok := s.nodes[b]
	if !ok {
		return nil
	}
	for na.block.Height > nb.block.Height {
		na = na.parent
	}
	for nb.block.Height > na.block.Height {
		nb = nb.parent
	}
	for na != nb {
		if na.parent == nil || nb.parent == nil {
			return nil
		}
		na = na.parent
		nb = nb.parent
	}
	return na.block
}

// AncestorAtHeight returns the ancestor of id at exactly height h (possibly
// the block itself), or nil.
func (s *Store) AncestorAtHeight(id types.BlockID, h types.Height) *types.Block {
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	for n != nil && n.block.Height > h {
		n = n.parent
	}
	if n == nil || n.block.Height != h {
		return nil
	}
	return n.block
}

// ChainBetween returns the blocks from anc (exclusive) to desc (inclusive),
// ordered by increasing height, or nil if desc does not extend anc.
func (s *Store) ChainBetween(anc, desc types.BlockID) []*types.Block {
	if !s.IsAncestor(anc, desc) {
		return nil
	}
	var rev []*types.Block
	n := s.nodes[desc]
	for n != nil && n.block.ID() != anc {
		rev = append(rev, n.block)
		n = n.parent
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WalkAncestors calls fn on each strict ancestor of id from parent upward,
// stopping when fn returns false or genesis is passed.
func (s *Store) WalkAncestors(id types.BlockID, fn func(*types.Block) bool) {
	n, ok := s.nodes[id]
	if !ok {
		return
	}
	for n = n.parent; n != nil; n = n.parent {
		if !fn(n.block) {
			return
		}
	}
}

// Snapshot returns every stored block except genesis in parent-before-child
// order (ascending height), suitable for bulk Restore or for serving a full
// state transfer. Certificates are not included; callers that need them pair
// the snapshot with QCFor.
func (s *Store) Snapshot() []*types.Block {
	out := make([]*types.Block, 0, len(s.nodes)-1)
	for _, n := range s.nodes {
		if !n.block.IsGenesis() {
			out = append(out, n.block)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Height != b.Height {
			return a.Height < b.Height
		}
		return a.Round < b.Round
	})
	return out
}

// Restore bulk-inserts a snapshot (or a WAL replay) into the store,
// registering each block's embedded justify certificate, and returns how
// many blocks were installed. Blocks whose parent is absent are skipped —
// the same boundary semantics as pruning, where ancestry walks stop at a
// detached edge — so restoring a log whose head was compacted degrades
// gracefully rather than failing. Duplicates are skipped silently.
//
// onInstall, if non-nil, observes each newly installed block together with
// whether its justify improved the stored certificate state; the engines'
// recovery hooks use it to rebuild their own bookkeeping (proposed rounds,
// endorsement trackers) alongside the tree.
func (s *Store) Restore(blocks []*types.Block, onInstall func(b *types.Block, qcImproved bool)) int {
	installed := 0
	for _, b := range blocks {
		if b == nil || s.Has(b.ID()) {
			continue
		}
		if err := s.Insert(b); err != nil {
			continue
		}
		installed++
		improved := false
		if b.Justify != nil {
			_, improved, _ = s.RegisterQC(b.Justify)
		}
		if onInstall != nil {
			onInstall(b, improved)
		}
	}
	return installed
}

// PruneBelow discards every block below height h and re-anchors the tree at
// keep's ancestor at height h (its parent link becomes nil). Side-fork
// blocks at or above h whose ancestry was cut are detached as well; their
// own turn comes at the next prune. Engines call this once strong commits
// have saturated so long experiments do not grow memory without bound.
func (s *Store) PruneBelow(h types.Height, keep types.BlockID) int {
	anchor := s.AncestorAtHeight(keep, h)
	if anchor == nil || h == 0 {
		return 0
	}
	removed := 0
	for id, n := range s.nodes {
		if n.block.Height >= h {
			continue
		}
		// Orphan surviving children; ancestry walks then terminate at a
		// nil parent above the cut.
		for _, c := range n.children {
			c.parent = nil
		}
		delete(s.nodes, id)
		removed++
	}
	if h > s.prunedHeight {
		s.prunedHeight = h
	}
	return removed
}

// PrunedHeight returns the height below which side branches were discarded.
func (s *Store) PrunedHeight() types.Height { return s.prunedHeight }

package blockstore_test

import (
	"errors"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/types"
)

// chainBuilder makes hand-built trees terse: mk(parent, round) inserts a
// block at parent.Height+1.
type chainBuilder struct {
	t     *testing.T
	s     *blockstore.Store
	count uint32
}

func newBuilder(t *testing.T) *chainBuilder {
	return &chainBuilder{t: t, s: blockstore.New()}
}

func (cb *chainBuilder) mk(parent *types.Block, round types.Round) *types.Block {
	cb.t.Helper()
	cb.count++
	b := types.NewBlock(parent.ID(), types.NewGenesisQC(parent.ID()), round, parent.Height+1, 0,
		int64(cb.count), types.Payload{Txns: []types.Transaction{{Sender: cb.count}}}, nil)
	if err := cb.s.Insert(b); err != nil {
		cb.t.Fatalf("insert round %d: %v", round, err)
	}
	return b
}

func (cb *chainBuilder) qc(b *types.Block, voters ...types.ReplicaID) *types.QC {
	cb.t.Helper()
	votes := make([]types.Vote, len(voters))
	for i, v := range voters {
		votes[i] = types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: v}
	}
	qc := &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
	if _, _, err := cb.s.RegisterQC(qc); err != nil {
		cb.t.Fatalf("register qc: %v", err)
	}
	return qc
}

func TestInsertValidation(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	b1 := cb.mk(g, 1)

	// Missing parent.
	orphan := types.NewBlock(types.BlockID{9}, types.NewGenesisQC(types.BlockID{9}), 5, 5, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(orphan); !errors.Is(err, blockstore.ErrMissingParent) {
		t.Errorf("want ErrMissingParent, got %v", err)
	}
	// Wrong height.
	badH := types.NewBlock(b1.ID(), types.NewGenesisQC(b1.ID()), 2, 5, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(badH); !errors.Is(err, blockstore.ErrBadHeight) {
		t.Errorf("want ErrBadHeight, got %v", err)
	}
	// Non-increasing round.
	badR := types.NewBlock(b1.ID(), types.NewGenesisQC(b1.ID()), 1, 2, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(badR); !errors.Is(err, blockstore.ErrBadRound) {
		t.Errorf("want ErrBadRound, got %v", err)
	}
	// Duplicate insert is a no-op.
	if err := cb.s.Insert(b1); err != nil {
		t.Errorf("duplicate insert: %v", err)
	}
	if cb.s.Len() != 2 { // genesis + b1
		t.Errorf("store len = %d, want 2", cb.s.Len())
	}
}

func TestAncestryAndConflicts(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	//      g - a1 - a2 - a3
	//        \ b1 - b2
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)
	a3 := cb.mk(a2, 3)
	b1 := cb.mk(g, 2) // sibling branch
	b2 := cb.mk(b1, 4)

	if !cb.s.IsAncestor(g.ID(), a3.ID()) || !cb.s.IsAncestor(a1.ID(), a3.ID()) {
		t.Error("ancestor chain broken")
	}
	if !cb.s.IsAncestor(a3.ID(), a3.ID()) {
		t.Error("a block extends itself")
	}
	if cb.s.IsAncestor(a3.ID(), a1.ID()) {
		t.Error("descendant is not an ancestor")
	}
	if cb.s.Conflicts(a1.ID(), a3.ID()) {
		t.Error("same-branch blocks should not conflict")
	}
	if !cb.s.Conflicts(a2.ID(), b2.ID()) || !cb.s.Conflicts(a1.ID(), b1.ID()) {
		t.Error("cross-branch blocks must conflict")
	}
	if cb.s.Conflicts(a1.ID(), a1.ID()) {
		t.Error("a block does not conflict itself")
	}

	if ca := cb.s.CommonAncestor(a3.ID(), b2.ID()); ca == nil || ca.ID() != g.ID() {
		t.Errorf("common ancestor = %v, want genesis", ca)
	}
	if ca := cb.s.CommonAncestor(a1.ID(), a3.ID()); ca == nil || ca.ID() != a1.ID() {
		t.Errorf("common ancestor on same branch = %v, want a1", ca)
	}
}

func TestChainBetweenAndWalk(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)
	a3 := cb.mk(a2, 3)

	chain := cb.s.ChainBetween(g.ID(), a3.ID())
	if len(chain) != 3 || chain[0].ID() != a1.ID() || chain[2].ID() != a3.ID() {
		t.Fatalf("chain between genesis and a3 wrong: %v", chain)
	}
	if cb.s.ChainBetween(a3.ID(), a1.ID()) != nil {
		t.Error("reverse chain must be nil")
	}

	var seen []types.Round
	cb.s.WalkAncestors(a3.ID(), func(b *types.Block) bool {
		seen = append(seen, b.Round)
		return b.Round != 1
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 1 {
		t.Errorf("walk order wrong: %v", seen)
	}

	if b := cb.s.AncestorAtHeight(a3.ID(), 1); b == nil || b.ID() != a1.ID() {
		t.Error("AncestorAtHeight(1) wrong")
	}
	if cb.s.AncestorAtHeight(a3.ID(), 9) != nil {
		t.Error("AncestorAtHeight above block must be nil")
	}
}

func TestQCRegistration(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)

	if cb.s.IsCertified(a1.ID()) {
		t.Error("uncertified block reported certified")
	}
	cb.qc(a1, 0, 1, 2)
	if !cb.s.IsCertified(a1.ID()) {
		t.Error("certified block not reported")
	}
	if cb.s.HighQC().Block != a1.ID() {
		t.Error("high QC not updated")
	}
	cb.qc(a2, 0, 1, 2)
	if cb.s.HighQC().Block != a2.ID() {
		t.Error("high QC should follow the higher round")
	}
	// A larger certificate for the same block replaces the smaller one.
	cb.qc(a1, 0, 1, 2, 3)
	if got := len(cb.s.QCFor(a1.ID()).Votes); got != 4 {
		t.Errorf("bigger QC not kept: %d votes", got)
	}
	// A smaller one does not.
	cb.qc(a1, 0, 1)
	if got := len(cb.s.QCFor(a1.ID()).Votes); got != 4 {
		t.Errorf("smaller QC replaced bigger: %d votes", got)
	}
	// Unknown block.
	if _, _, err := cb.s.RegisterQC(&types.QC{Block: types.BlockID{9}, Round: 9}); err == nil {
		t.Error("QC for unknown block accepted")
	}
}

func TestPruneBelow(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	// Main chain to height 6 plus a dead fork at height 2.
	cur := g
	var blocks []*types.Block
	for r := types.Round(1); r <= 6; r++ {
		cur = cb.mk(cur, r)
		blocks = append(blocks, cur)
	}
	fork := cb.mk(blocks[0], 7) // height 2, dead branch
	forkChild := cb.mk(fork, 8)

	removed := cb.s.PruneBelow(4, cur.ID())
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	// Everything below the cut is gone, spine included; the anchor at the
	// cut height and everything above survives.
	for _, b := range blocks {
		if b.Height < 4 && cb.s.Has(b.ID()) {
			t.Errorf("below-cut spine block h%d survived", b.Height)
		}
		if b.Height >= 4 && !cb.s.Has(b.ID()) {
			t.Errorf("above-cut spine block h%d pruned", b.Height)
		}
	}
	if cb.s.Has(fork.ID()) || cb.s.Has(forkChild.ID()) {
		t.Error("dead fork below cut survived")
	}
	// The surviving chain is still internally consistent.
	if !cb.s.IsAncestor(blocks[3].ID(), cur.ID()) {
		t.Error("anchor no longer an ancestor of the tip")
	}
	if cb.s.IsAncestor(g.ID(), cur.ID()) {
		t.Error("pruned genesis still counted as an ancestor")
	}
	if cb.s.PrunedHeight() != 4 {
		t.Errorf("pruned height = %d", cb.s.PrunedHeight())
	}
	// Chain operations above the cut still work.
	if chain := cb.s.ChainBetween(blocks[3].ID(), cur.ID()); len(chain) != 2 {
		t.Errorf("chain above cut has %d blocks", len(chain))
	}
}

// TestPruningBoundaryQueries pins the ancestry/conflict semantics at and
// below PrunedHeight — the boundary recovery replay leans on: a detached
// edge behaves exactly like an unknown relation, never like agreement.
func TestPruningBoundaryQueries(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	// Spine to height 8 with a live fork branching at height 4.
	cur := g
	var spine []*types.Block
	for r := types.Round(1); r <= 8; r++ {
		cur = cb.mk(cur, r)
		spine = append(spine, cur)
	}
	forkA := cb.mk(spine[3], 9) // height 5, conflicts with spine[4..]
	forkB := cb.mk(forkA, 10)   // height 6
	tip := cur

	cut := types.Height(4)
	cb.s.PruneBelow(cut, tip.ID())

	// AT the boundary: the anchor block (height == prunedHeight) survives
	// and all queries against it behave normally.
	anchor := spine[3]
	if !cb.s.Has(anchor.ID()) {
		t.Fatal("anchor at the pruned height must survive")
	}
	if !cb.s.IsAncestor(anchor.ID(), tip.ID()) {
		t.Error("anchor not an ancestor of the tip")
	}
	if cb.s.Conflicts(anchor.ID(), tip.ID()) {
		t.Error("anchor conflicts with its own descendant")
	}
	if got := cb.s.AncestorAtHeight(tip.ID(), cut); got == nil || got.ID() != anchor.ID() {
		t.Errorf("AncestorAtHeight(cut) = %v, want the anchor", got)
	}

	// BELOW the boundary: pruned blocks are unknown — ancestry is false,
	// lookups are nil, and Conflicts is conservatively TRUE (an unknown
	// relation must never pass for agreement: markers computed over it can
	// only over-report, which is the safe direction).
	pruned := spine[1] // height 2, gone
	if cb.s.Has(pruned.ID()) {
		t.Fatal("below-cut block survived")
	}
	if cb.s.IsAncestor(pruned.ID(), tip.ID()) {
		t.Error("pruned block still reported as ancestor")
	}
	if !cb.s.Conflicts(pruned.ID(), tip.ID()) {
		t.Error("unknown relation must conservatively count as conflicting")
	}
	if cb.s.AncestorAtHeight(tip.ID(), 2) != nil {
		t.Error("AncestorAtHeight below the cut must be nil")
	}
	if cb.s.CommonAncestor(pruned.ID(), tip.ID()) != nil {
		t.Error("CommonAncestor with a pruned block must be nil")
	}

	// ACROSS the boundary: the surviving fork still conflicts with the
	// spine above the cut, and their common ancestor is the anchor.
	if !cb.s.Conflicts(forkB.ID(), tip.ID()) {
		t.Error("surviving fork no longer conflicts with the spine")
	}
	if ca := cb.s.CommonAncestor(forkB.ID(), tip.ID()); ca == nil || ca.ID() != anchor.ID() {
		t.Errorf("common ancestor across the fork = %v, want the anchor", ca)
	}
	// A walk from the fork stops at the detached edge rather than claiming
	// genesis ancestry.
	if cb.s.IsAncestor(g.ID(), forkB.ID()) {
		t.Error("walk across the pruned edge reached genesis")
	}
	// ChainBetween from a pruned block is unknown ancestry -> nil.
	if cb.s.ChainBetween(pruned.ID(), tip.ID()) != nil {
		t.Error("ChainBetween from a pruned block must be nil")
	}
}

// TestSnapshotRestore covers the durability hooks: a snapshot re-installed
// into a fresh store reproduces the tree, certificates included via the
// embedded justifies, and restore degrades gracefully on detached blocks.
func TestSnapshotRestore(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	cur := g
	qc := cb.s.HighQC()
	for r := types.Round(1); r <= 5; r++ {
		b := types.NewBlock(cur.ID(), qc, r, cur.Height+1, 0, int64(r), types.Payload{}, nil)
		if err := cb.s.Insert(b); err != nil {
			t.Fatal(err)
		}
		qc = cb.qc(b, 0, 1, 2)
		cur = b
	}
	snap := cb.s.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d blocks, want 5", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Height <= snap[i-1].Height {
			t.Fatal("snapshot not in ascending height order")
		}
	}

	fresh := blockstore.New()
	if n := fresh.Restore(snap, nil); n != 5 {
		t.Fatalf("restored %d blocks, want 5", n)
	}
	for _, b := range snap {
		if !fresh.Has(b.ID()) {
			t.Fatalf("restored store missing %v", b)
		}
	}
	// Justifies certify heights 1..4; the high QC tracks the highest round
	// certificate among them.
	if !fresh.IsCertified(snap[3].ID()) {
		t.Error("restored store lost certification state")
	}
	// Restore with a hole: dropping the first block detaches the rest.
	holey := blockstore.New()
	if n := holey.Restore(snap[1:], nil); n != 0 {
		t.Errorf("restore across a hole installed %d blocks, want 0", n)
	}
	// Idempotent re-restore.
	if n := fresh.Restore(snap, nil); n != 0 {
		t.Errorf("re-restore installed %d blocks, want 0", n)
	}
}

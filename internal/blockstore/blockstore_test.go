package blockstore_test

import (
	"errors"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/types"
)

// chainBuilder makes hand-built trees terse: mk(parent, round) inserts a
// block at parent.Height+1.
type chainBuilder struct {
	t     *testing.T
	s     *blockstore.Store
	count uint32
}

func newBuilder(t *testing.T) *chainBuilder {
	return &chainBuilder{t: t, s: blockstore.New()}
}

func (cb *chainBuilder) mk(parent *types.Block, round types.Round) *types.Block {
	cb.t.Helper()
	cb.count++
	b := types.NewBlock(parent.ID(), types.NewGenesisQC(parent.ID()), round, parent.Height+1, 0,
		int64(cb.count), types.Payload{Txns: []types.Transaction{{Sender: cb.count}}}, nil)
	if err := cb.s.Insert(b); err != nil {
		cb.t.Fatalf("insert round %d: %v", round, err)
	}
	return b
}

func (cb *chainBuilder) qc(b *types.Block, voters ...types.ReplicaID) *types.QC {
	cb.t.Helper()
	votes := make([]types.Vote, len(voters))
	for i, v := range voters {
		votes[i] = types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: v}
	}
	qc := &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
	if _, err := cb.s.RegisterQC(qc); err != nil {
		cb.t.Fatalf("register qc: %v", err)
	}
	return qc
}

func TestInsertValidation(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	b1 := cb.mk(g, 1)

	// Missing parent.
	orphan := types.NewBlock(types.BlockID{9}, types.NewGenesisQC(types.BlockID{9}), 5, 5, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(orphan); !errors.Is(err, blockstore.ErrMissingParent) {
		t.Errorf("want ErrMissingParent, got %v", err)
	}
	// Wrong height.
	badH := types.NewBlock(b1.ID(), types.NewGenesisQC(b1.ID()), 2, 5, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(badH); !errors.Is(err, blockstore.ErrBadHeight) {
		t.Errorf("want ErrBadHeight, got %v", err)
	}
	// Non-increasing round.
	badR := types.NewBlock(b1.ID(), types.NewGenesisQC(b1.ID()), 1, 2, 0, 0, types.Payload{}, nil)
	if err := cb.s.Insert(badR); !errors.Is(err, blockstore.ErrBadRound) {
		t.Errorf("want ErrBadRound, got %v", err)
	}
	// Duplicate insert is a no-op.
	if err := cb.s.Insert(b1); err != nil {
		t.Errorf("duplicate insert: %v", err)
	}
	if cb.s.Len() != 2 { // genesis + b1
		t.Errorf("store len = %d, want 2", cb.s.Len())
	}
}

func TestAncestryAndConflicts(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	//      g - a1 - a2 - a3
	//        \ b1 - b2
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)
	a3 := cb.mk(a2, 3)
	b1 := cb.mk(g, 2) // sibling branch
	b2 := cb.mk(b1, 4)

	if !cb.s.IsAncestor(g.ID(), a3.ID()) || !cb.s.IsAncestor(a1.ID(), a3.ID()) {
		t.Error("ancestor chain broken")
	}
	if !cb.s.IsAncestor(a3.ID(), a3.ID()) {
		t.Error("a block extends itself")
	}
	if cb.s.IsAncestor(a3.ID(), a1.ID()) {
		t.Error("descendant is not an ancestor")
	}
	if cb.s.Conflicts(a1.ID(), a3.ID()) {
		t.Error("same-branch blocks should not conflict")
	}
	if !cb.s.Conflicts(a2.ID(), b2.ID()) || !cb.s.Conflicts(a1.ID(), b1.ID()) {
		t.Error("cross-branch blocks must conflict")
	}
	if cb.s.Conflicts(a1.ID(), a1.ID()) {
		t.Error("a block does not conflict itself")
	}

	if ca := cb.s.CommonAncestor(a3.ID(), b2.ID()); ca == nil || ca.ID() != g.ID() {
		t.Errorf("common ancestor = %v, want genesis", ca)
	}
	if ca := cb.s.CommonAncestor(a1.ID(), a3.ID()); ca == nil || ca.ID() != a1.ID() {
		t.Errorf("common ancestor on same branch = %v, want a1", ca)
	}
}

func TestChainBetweenAndWalk(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)
	a3 := cb.mk(a2, 3)

	chain := cb.s.ChainBetween(g.ID(), a3.ID())
	if len(chain) != 3 || chain[0].ID() != a1.ID() || chain[2].ID() != a3.ID() {
		t.Fatalf("chain between genesis and a3 wrong: %v", chain)
	}
	if cb.s.ChainBetween(a3.ID(), a1.ID()) != nil {
		t.Error("reverse chain must be nil")
	}

	var seen []types.Round
	cb.s.WalkAncestors(a3.ID(), func(b *types.Block) bool {
		seen = append(seen, b.Round)
		return b.Round != 1
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 1 {
		t.Errorf("walk order wrong: %v", seen)
	}

	if b := cb.s.AncestorAtHeight(a3.ID(), 1); b == nil || b.ID() != a1.ID() {
		t.Error("AncestorAtHeight(1) wrong")
	}
	if cb.s.AncestorAtHeight(a3.ID(), 9) != nil {
		t.Error("AncestorAtHeight above block must be nil")
	}
}

func TestQCRegistration(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	a1 := cb.mk(g, 1)
	a2 := cb.mk(a1, 2)

	if cb.s.IsCertified(a1.ID()) {
		t.Error("uncertified block reported certified")
	}
	cb.qc(a1, 0, 1, 2)
	if !cb.s.IsCertified(a1.ID()) {
		t.Error("certified block not reported")
	}
	if cb.s.HighQC().Block != a1.ID() {
		t.Error("high QC not updated")
	}
	cb.qc(a2, 0, 1, 2)
	if cb.s.HighQC().Block != a2.ID() {
		t.Error("high QC should follow the higher round")
	}
	// A larger certificate for the same block replaces the smaller one.
	cb.qc(a1, 0, 1, 2, 3)
	if got := len(cb.s.QCFor(a1.ID()).Votes); got != 4 {
		t.Errorf("bigger QC not kept: %d votes", got)
	}
	// A smaller one does not.
	cb.qc(a1, 0, 1)
	if got := len(cb.s.QCFor(a1.ID()).Votes); got != 4 {
		t.Errorf("smaller QC replaced bigger: %d votes", got)
	}
	// Unknown block.
	if _, err := cb.s.RegisterQC(&types.QC{Block: types.BlockID{9}, Round: 9}); err == nil {
		t.Error("QC for unknown block accepted")
	}
}

func TestPruneBelow(t *testing.T) {
	cb := newBuilder(t)
	g := cb.s.Genesis()
	// Main chain to height 6 plus a dead fork at height 2.
	cur := g
	var blocks []*types.Block
	for r := types.Round(1); r <= 6; r++ {
		cur = cb.mk(cur, r)
		blocks = append(blocks, cur)
	}
	fork := cb.mk(blocks[0], 7) // height 2, dead branch
	forkChild := cb.mk(fork, 8)

	removed := cb.s.PruneBelow(4, cur.ID())
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	// Everything below the cut is gone, spine included; the anchor at the
	// cut height and everything above survives.
	for _, b := range blocks {
		if b.Height < 4 && cb.s.Has(b.ID()) {
			t.Errorf("below-cut spine block h%d survived", b.Height)
		}
		if b.Height >= 4 && !cb.s.Has(b.ID()) {
			t.Errorf("above-cut spine block h%d pruned", b.Height)
		}
	}
	if cb.s.Has(fork.ID()) || cb.s.Has(forkChild.ID()) {
		t.Error("dead fork below cut survived")
	}
	// The surviving chain is still internally consistent.
	if !cb.s.IsAncestor(blocks[3].ID(), cur.ID()) {
		t.Error("anchor no longer an ancestor of the tip")
	}
	if cb.s.IsAncestor(g.ID(), cur.ID()) {
		t.Error("pruned genesis still counted as an ancestor")
	}
	if cb.s.PrunedHeight() != 4 {
		t.Errorf("pruned height = %d", cb.s.PrunedHeight())
	}
	// Chain operations above the cut still work.
	if chain := cb.s.ChainBetween(blocks[3].ID(), cur.ID()); len(chain) != 2 {
		t.Errorf("chain above cut has %d blocks", len(chain))
	}
}

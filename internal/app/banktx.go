package app

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"

	"repro/internal/types"
)

// Bank operations.
const (
	// OpTransfer moves Amount from From to To.
	OpTransfer byte = 1
	// OpWithdraw removes Amount from From (funds leave the system — the
	// high-value irreversible operation applications gate on strength).
	OpWithdraw byte = 2
)

// BankTxSize is the fixed wire size of a bank transaction: op(1) + from(4) +
// to(4) + amount(8) + nonce(8) + signature(64).
const BankTxSize = 1 + 4 + 4 + 8 + 8 + ed25519.SignatureSize

// BankTx is one signed bank operation, carried as the Data of a
// types.Transaction. The wire form is fixed-width and pinned: it is what the
// account holder signs over (minus the signature) and what replicas decode
// during execution, so encode(decode(x)) == x for every valid x.
type BankTx struct {
	Op     byte
	From   uint32
	To     uint32 // ignored for OpWithdraw
	Amount uint64
	Nonce  uint64 // must be exactly the sender account's nonce + 1
	Sig    [ed25519.SignatureSize]byte
}

// Encode appends the deterministic wire form of the transaction.
func (t *BankTx) Encode(b []byte) []byte {
	b = append(b, t.Op)
	b = types.AppendUint32(b, t.From)
	b = types.AppendUint32(b, t.To)
	b = types.AppendUint64(b, t.Amount)
	b = types.AppendUint64(b, t.Nonce)
	return append(b, t.Sig[:]...)
}

// DecodeBankTx parses one bank transaction from the front of b.
func DecodeBankTx(b []byte) (BankTx, []byte, error) {
	var t BankTx
	if len(b) < BankTxSize {
		return t, nil, types.ErrShortBuffer
	}
	t.Op = b[0]
	b = b[1:]
	var err error
	t.From, b, err = types.ConsumeUint32(b)
	if err != nil {
		return t, nil, err
	}
	t.To, b, err = types.ConsumeUint32(b)
	if err != nil {
		return t, nil, err
	}
	t.Amount, b, err = types.ConsumeUint64(b)
	if err != nil {
		return t, nil, err
	}
	t.Nonce, b, err = types.ConsumeUint64(b)
	if err != nil {
		return t, nil, err
	}
	copy(t.Sig[:], b)
	b = b[len(t.Sig):]
	if t.Op != OpTransfer && t.Op != OpWithdraw {
		return t, nil, fmt.Errorf("app: unknown bank op %d", t.Op)
	}
	return t, b, nil
}

// AppendSigningPayload appends the byte string the account holder signs:
// everything but the signature, behind a domain separator.
func (t *BankTx) AppendSigningPayload(b []byte) []byte {
	b = append(b, "banktx/"...)
	b = append(b, t.Op)
	b = types.AppendUint32(b, t.From)
	b = types.AppendUint32(b, t.To)
	b = types.AppendUint64(b, t.Amount)
	return types.AppendUint64(b, t.Nonce)
}

// AccountKey deterministically derives account id's ed25519 key from the
// bank seed — the simulation stand-in for client key custody, letting
// workloads drive millions of accounts without storing key material.
func AccountKey(seed int64, id uint32) ed25519.PrivateKey {
	material := types.AppendUint64([]byte("bankacct/"), uint64(seed))
	material = types.AppendUint32(material, id)
	s := sha256.Sum256(material)
	return ed25519.NewKeyFromSeed(s[:])
}

// SignBankTx signs the transaction in place with the account key derived
// from seed and t.From.
func SignBankTx(seed int64, t *BankTx) {
	payload := t.AppendSigningPayload(make([]byte, 0, 32+BankTxSize))
	copy(t.Sig[:], ed25519.Sign(AccountKey(seed, t.From), payload))
}

// AsTransaction wraps the bank transaction into the consensus-layer
// transaction envelope (Sender/Seq mirror From/Nonce so the mempool's
// conflict gate and the linearizability checkers identify it).
func (t *BankTx) AsTransaction() types.Transaction {
	return types.Transaction{Sender: t.From, Seq: t.Nonce, Data: t.Encode(make([]byte, 0, BankTxSize))}
}

package app

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

// FuzzBankApply is the execution-layer determinism fuzzer: arbitrary bytes
// become a transaction stream, two independent Bank instances apply it as one
// block, and any divergence in root or results is a crash. It also pins the
// BankTx wire form's decode→encode fixpoint, mirroring the consensus-message
// fuzzers in internal/types.
func FuzzBankApply(f *testing.F) {
	seedTx := BankTx{Op: OpTransfer, From: 1, To: 2, Amount: 50, Nonce: 1}
	SignBankTx(3, &seedTx)
	f.Add(seedTx.Encode(nil), uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, BankTxSize*3), uint8(16))

	f.Fuzz(func(t *testing.T, data []byte, chunks uint8) {
		// Fixpoint: every decodable prefix re-encodes to the same bytes.
		if tx, rest, err := DecodeBankTx(data); err == nil {
			if got := tx.Encode(nil); !bytes.Equal(got, data[:len(data)-len(rest)]) {
				t.Fatalf("decode→encode not a fixpoint:\n in  %x\n out %x", data[:len(data)-len(rest)], got)
			}
		}

		// Slice the input into transactions: each chunk becomes one txn's
		// Data (valid or garbage — the bank must classify either way,
		// deterministically). Signature verification is off: the fuzzer
		// exercises state mechanics, not ed25519.
		n := int(chunks%8) + 1
		var txns []types.Transaction
		for i := 0; i < n && len(data) > 0; i++ {
			cut := len(data) / (n - i)
			if cut == 0 {
				cut = len(data)
			}
			txns = append(txns, types.Transaction{Sender: uint32(i), Seq: uint64(i), Data: data[:cut]})
			data = data[cut:]
		}
		blk := &types.Block{
			Parent:  types.Genesis().ID(),
			Round:   1,
			Height:  1,
			Payload: types.Payload{Txns: txns},
		}

		cfg := BankConfig{Seed: 1, Accounts: 256, InitialBalance: 1000, DisableSigVerify: true}
		b1, b2 := NewBank(cfg), NewBank(cfg)
		r1, res1, err1 := b1.Apply(b1.GenesisRoot(), blk)
		r2, res2, err2 := b2.Apply(b2.GenesisRoot(), blk)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("apply error divergence: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if r1 != r2 {
			t.Fatalf("root divergence on identical input: %x vs %x", r1[:8], r2[:8])
		}
		if len(res1) != len(res2) {
			t.Fatalf("result count divergence: %d vs %d", len(res1), len(res2))
		}
		for i := range res1 {
			if res1[i] != res2[i] {
				t.Fatalf("result %d divergence: %+v vs %+v", i, res1[i], res2[i])
			}
		}
		// Committing the block and snapshotting must also agree.
		if err := b1.Commit(r1); err != nil {
			t.Fatal(err)
		}
		if err := b2.Commit(r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Snapshot(), b2.Snapshot()) {
			t.Fatal("snapshot divergence after identical commits")
		}
		// And a bank restored from the snapshot lands on the same root.
		b3 := NewBank(cfg)
		if err := b3.Restore(b1.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if b3.Committed() != b1.Committed() {
			t.Fatal("restored bank root differs from source")
		}
	})
}

package app

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

// testBank returns a small bank plus a signing helper bound to its seed.
func testBank(t *testing.T, accounts uint32) *Bank {
	t.Helper()
	return NewBank(BankConfig{Seed: 7, Accounts: accounts, InitialBalance: 1000})
}

// signedTx builds a signed bank transaction for the test seed.
func signedTx(op byte, from, to uint32, amount, nonce uint64) types.Transaction {
	tx := BankTx{Op: op, From: from, To: to, Amount: amount, Nonce: nonce}
	SignBankTx(7, &tx)
	return tx.AsTransaction()
}

// blockWith wraps transactions into a block at the given height/parent.
func blockWith(parent types.BlockID, h types.Height, txns ...types.Transaction) *types.Block {
	return &types.Block{
		Parent:  parent,
		Round:   types.Round(h),
		Height:  h,
		Payload: types.Payload{Txns: txns},
	}
}

func TestBankApplyTransfers(t *testing.T) {
	b := testBank(t, 16)
	root, results, err := b.Apply(b.GenesisRoot(), blockWith(types.Genesis().ID(), 1,
		signedTx(OpTransfer, 0, 1, 300, 1),
		signedTx(OpTransfer, 0, 1, 800, 2), // only 700 left
		signedTx(OpWithdraw, 1, 0, 100, 1),
		signedTx(OpTransfer, 2, 2, 50, 1), // self-transfer: burns nothing, advances nonce
	))
	if err != nil {
		t.Fatal(err)
	}
	want := []Code{CodeOK, CodeInsufficient, CodeOK, CodeOK}
	for i, r := range results {
		if r.Code != want[i] {
			t.Fatalf("txn %d: code %v, want %v", i, r.Code, want[i])
		}
	}
	if err := b.Commit(root); err != nil {
		t.Fatal(err)
	}
	if got := b.Balance(0); got != 700 {
		t.Fatalf("account 0 balance %d, want 700", got)
	}
	if got := b.Balance(1); got != 1200 {
		t.Fatalf("account 1 balance %d, want 1200", got)
	}
	if got := b.Balance(2); got != 1000 {
		t.Fatalf("account 2 balance %d, want 1000 (self-transfer)", got)
	}
	if got := b.TotalSupply(); got != 16*1000-100 {
		t.Fatalf("supply %d, want %d (one 100 withdrawal)", got, 16*1000-100)
	}
}

func TestBankRejectsBadSignatureAndNonce(t *testing.T) {
	b := testBank(t, 4)
	bad := BankTx{Op: OpTransfer, From: 0, To: 1, Amount: 10, Nonce: 1}
	SignBankTx(99, &bad) // wrong seed => wrong key
	skipAhead := signedTx(OpTransfer, 1, 2, 10, 5)
	garbage := types.Transaction{Sender: 3, Seq: 1, Data: []byte("not a bank tx")}
	root, results, err := b.Apply(b.GenesisRoot(), blockWith(types.Genesis().ID(), 1,
		bad.AsTransaction(), skipAhead, garbage))
	if err != nil {
		t.Fatal(err)
	}
	want := []Code{CodeBadSignature, CodeBadNonce, CodeMalformed}
	for i, r := range results {
		if r.Code != want[i] {
			t.Fatalf("txn %d: code %v, want %v", i, r.Code, want[i])
		}
	}
	if root != b.GenesisRoot() {
		t.Fatal("all-rejected block must leave the root unchanged")
	}
}

// TestBankDeterminism drives two independent banks through the same chain and
// demands bit-identical roots at every block.
func TestBankDeterminism(t *testing.T) {
	b1, b2 := testBank(t, 64), testBank(t, 64)
	parent1, parent2 := b1.GenesisRoot(), b2.GenesisRoot()
	parentID := types.Genesis().ID()
	nonce := make(map[uint32]uint64)
	for h := types.Height(1); h <= 20; h++ {
		var txns []types.Transaction
		for i := 0; i < 8; i++ {
			from := uint32((int(h)*3 + i) % 64)
			nonce[from]++
			txns = append(txns, signedTx(OpTransfer, from, (from+7)%64, uint64(1+i), nonce[from]))
		}
		blk := blockWith(parentID, h, txns...)
		r1, res1, err1 := b1.Apply(parent1, blk)
		r2, res2, err2 := b2.Apply(parent2, blk)
		if err1 != nil || err2 != nil {
			t.Fatalf("h%d: %v / %v", h, err1, err2)
		}
		if r1 != r2 {
			t.Fatalf("h%d: roots diverge", h)
		}
		for i := range res1 {
			if res1[i] != res2[i] {
				t.Fatalf("h%d txn %d: results diverge", h, i)
			}
		}
		parent1, parent2, parentID = r1, r2, blk.ID()
	}
	if err := b1.Commit(parent1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(parent2); err != nil {
		t.Fatal(err)
	}
	if b1.Committed() != b2.Committed() {
		t.Fatal("committed roots diverge")
	}
}

// TestBankForkOverlays executes two competing blocks off one parent and
// verifies committing one discards the other without contaminating state.
func TestBankForkOverlays(t *testing.T) {
	b := testBank(t, 8)
	g := b.GenesisRoot()
	blkA := blockWith(types.Genesis().ID(), 1, signedTx(OpTransfer, 0, 1, 100, 1))
	blkB := blockWith(types.Genesis().ID(), 1, signedTx(OpTransfer, 0, 2, 250, 1))
	rootA, _, err := b.Apply(g, blkA)
	if err != nil {
		t.Fatal(err)
	}
	rootB, _, err := b.Apply(g, blkB)
	if err != nil {
		t.Fatal(err)
	}
	if rootA == rootB {
		t.Fatal("distinct forks must produce distinct roots")
	}
	// Extend fork B, then commit it.
	blkB2 := blockWith(blkB.ID(), 2, signedTx(OpWithdraw, 2, 0, 50, 1))
	rootB2, _, err := b.Apply(rootB, blkB2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(rootB2); err != nil {
		t.Fatal(err)
	}
	if got := b.Balance(0); got != 750 {
		t.Fatalf("account 0 balance %d, want 750 (fork A must not leak)", got)
	}
	if got := b.Balance(2); got != 1200 {
		t.Fatalf("account 2 balance %d, want 1200", got)
	}
	// Fork A is dead: applying on top of it must now fail.
	if _, _, err := b.Apply(rootA, blockWith(blkA.ID(), 2)); err == nil {
		t.Fatal("apply on a swept fork must fail")
	}
}

func TestBankSnapshotRestore(t *testing.T) {
	b := testBank(t, 32)
	root, _, err := b.Apply(b.GenesisRoot(), blockWith(types.Genesis().ID(), 1,
		signedTx(OpTransfer, 3, 9, 123, 1),
		signedTx(OpWithdraw, 9, 0, 7, 1),
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(root); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	fresh := testBank(t, 32)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Committed() != b.Committed() {
		t.Fatal("restored root differs from snapshotted root")
	}
	if fresh.Balance(3) != b.Balance(3) || fresh.Nonce(9) != b.Nonce(9) {
		t.Fatal("restored account state differs")
	}
	if !bytes.Equal(fresh.Snapshot(), snap) {
		t.Fatal("snapshot of restored bank differs (not canonical)")
	}
	// Restore into a differently-parameterized bank must fail loudly.
	other := NewBank(BankConfig{Seed: 7, Accounts: 32, InitialBalance: 5})
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore across configs must fail")
	}
}

// TestExecutorChain drives the Executor across a three-block chain and checks
// memoization, parent resolution, and commit-driven base advancement.
func TestExecutorChain(t *testing.T) {
	ex := NewExecutor(testBank(t, 8))
	parentID := types.Genesis().ID()
	var blocks []*types.Block
	for h := types.Height(1); h <= 3; h++ {
		blk := blockWith(parentID, h, signedTx(OpTransfer, 0, 1, 1, uint64(h)))
		blocks = append(blocks, blk)
		parentID = blk.ID()
	}
	r1, err := ex.Execute(blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if again, err := ex.Execute(blocks[0]); err != nil || again != r1 {
		t.Fatalf("re-execute not memoized: %v %x!=%x", err, again[:4], r1[:4])
	}
	// Orphan: block 3 before block 2 has no parent root.
	if _, err := ex.Execute(blocks[2]); err == nil {
		t.Fatal("executing an orphan must fail")
	}
	if _, err := ex.Execute(blocks[1]); err != nil {
		t.Fatal(err)
	}
	if err := ex.OnCommit(blocks[2]); err != nil {
		t.Fatal(err)
	}
	if ex.CommittedHeight() != 3 {
		t.Fatalf("committed height %d, want 3", ex.CommittedHeight())
	}
	r3, ok := ex.Root(blocks[2].ID())
	if !ok || ex.CommittedRoot() != r3 {
		t.Fatal("committed root must match block 3's executed root")
	}
	if res := ex.Results(blocks[1].ID()); len(res) != 1 || res[0].Code != CodeOK {
		t.Fatalf("results for block 2: %v", res)
	}
	if ex.Executed() != 3 {
		t.Fatalf("executed %d blocks, want 3", ex.Executed())
	}
}

// TestBankApplyAllocs guards the execute-before-vote hot path: applying a
// block of valid pre-verified transfers must stay allocation-lean, since it
// sits between proposal reception and voting on every replica.
func TestBankApplyAllocs(t *testing.T) {
	b := NewBank(BankConfig{Seed: 7, Accounts: 1 << 16, InitialBalance: 1 << 20, DisableSigVerify: true})
	var txns []types.Transaction
	for i := uint32(0); i < 64; i++ {
		txns = append(txns, signedTx(OpTransfer, i, i+64, 5, 1))
	}
	blk := blockWith(types.Genesis().ID(), 1, txns...)
	parent := b.GenesisRoot()
	avg := testing.AllocsPerRun(50, func() {
		blk.Payload.Txns[0].Seq++ // perturb so each run produces a distinct block ID
		blk = blockWith(blk.Parent, blk.Height, blk.Payload.Txns...)
		if _, _, err := b.Apply(parent, blk); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the delta map, the results slice, the per-account map inserts,
	// and the overlay record. ~6 allocs per txn would indicate a regression
	// (e.g. payload re-encoding or per-txn hashing buffers escaping).
	if perTxn := avg / float64(len(txns)); perTxn > 6 {
		t.Fatalf("%.1f allocs per applied txn (avg %.0f per block), want <= 6", perTxn, avg)
	}
}

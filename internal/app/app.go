// Package app is the deterministic execution layer: application state
// machines that engines run under the execute-before-vote discipline. A
// replica executes every proposal it accepts BEFORE voting on it and carries
// the resulting 32-byte state root (the AppHash) inside the vote's signing
// payload, so a quorum certificate certifies the post-state of the block,
// not merely its position in the chain — the HotStuff-style design in which
// parent links remain by BlockHash while the certified root detects state
// divergence: an honest replica whose execution disagrees with a proposal's
// justify certificate refuses to vote, turning non-determinism or a lying
// proposer into a visible liveness event instead of a silent fork.
//
// The contract every StateMachine must honor is strict determinism: Apply is
// a pure function of (parent state root, block bytes). Wall clocks, map
// iteration order, randomness, and floating point are all forbidden inputs.
// Two honest replicas that execute the same chain MUST produce bit-identical
// roots; the consensus layer treats any disagreement as Byzantine evidence.
package app

import (
	"fmt"

	"repro/internal/types"
)

// Code classifies the outcome of executing one transaction. Codes are part
// of the deterministic output: every honest replica assigns the same code to
// the same transaction at the same chain position.
type Code uint8

// Transaction result codes.
const (
	CodeOK           Code = 0 // applied
	CodeMalformed    Code = 1 // undecodable or structurally invalid
	CodeBadSignature Code = 2 // signature check failed
	CodeBadNonce     Code = 3 // nonce is not the account's next
	CodeInsufficient Code = 4 // balance too low
)

// String renders the code for logs.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeMalformed:
		return "malformed"
	case CodeBadSignature:
		return "bad-signature"
	case CodeBadNonce:
		return "bad-nonce"
	case CodeInsufficient:
		return "insufficient-funds"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// TxResult is the execution outcome of one transaction within a block,
// exposed on commit events so subscribers act on results without re-decoding
// payloads.
type TxResult struct {
	Sender uint32
	Seq    uint64
	Code   Code
}

// StateMachine is the application the execution layer drives. Implementations
// must be deterministic (see the package comment); they own fork bookkeeping
// through the parent-root parameter: consensus may execute competing blocks
// extending the same parent, and only Commit collapses the speculation.
type StateMachine interface {
	// GenesisRoot returns the state root of the initial (pre-genesis-block)
	// state. Every replica must derive the identical value without
	// communication.
	GenesisRoot() [32]byte
	// Apply executes the block's transactions against the state identified
	// by parent (the parent block's state root) and returns the resulting
	// root plus one result per transaction. Apply must not mutate the state
	// at parent — the block may lose to a sibling — and must be idempotent
	// across identical calls. An error means the block cannot be executed
	// (unknown parent state); the engine then refuses to vote on it.
	Apply(parent [32]byte, b *types.Block) ([32]byte, []TxResult, error)
	// Commit finalizes root as the durable base state. Speculative states
	// not on the committed path may be discarded.
	Commit(root [32]byte) error
	// Snapshot serializes the committed base state, for state sync and for
	// seeding a restarted replica. Speculative (uncommitted) state is not
	// included.
	Snapshot() []byte
	// Restore replaces the committed base state from a Snapshot.
	Restore(snap []byte) error
}

// prune keeps this many heights of executed-root history behind the
// committed height, covering late strength rises and stragglers re-fetching
// results before entries are dropped.
const prune = 256

type rootEntry struct {
	root    [32]byte
	height  types.Height
	results []TxResult
}

// Executor is the engine-facing harness around a StateMachine: it maps block
// IDs to executed state roots, memoizes per-block results, resolves parent
// roots across forks, and drives Commit as consensus finalizes blocks. It is
// not safe for concurrent use; the engine's event loop owns it.
type Executor struct {
	sm     StateMachine
	roots  map[types.BlockID]rootEntry
	commit struct {
		root   [32]byte
		height types.Height
	}
	executed int64
}

// NewExecutor wraps sm, seeding the genesis block's root so height-1 blocks
// resolve their parent state.
func NewExecutor(sm StateMachine) *Executor {
	e := &Executor{sm: sm, roots: make(map[types.BlockID]rootEntry)}
	g := sm.GenesisRoot()
	e.roots[types.Genesis().ID()] = rootEntry{root: g}
	e.commit.root = g
	return e
}

// StateMachine returns the wrapped application.
func (e *Executor) StateMachine() StateMachine { return e.sm }

// Execute runs b through the state machine (idempotently: re-executing an
// already-executed block returns the memoized root) and returns its state
// root. It fails when the parent's root is unknown — the block is then
// unexecutable and must not be voted on.
func (e *Executor) Execute(b *types.Block) ([32]byte, error) {
	if ent, ok := e.roots[b.ID()]; ok {
		return ent.root, nil
	}
	parent, ok := e.roots[b.Parent]
	if !ok {
		return [32]byte{}, fmt.Errorf("app: parent %v of %v not executed", b.Parent, b)
	}
	root, results, err := e.sm.Apply(parent.root, b)
	if err != nil {
		return [32]byte{}, fmt.Errorf("app: execute %v: %w", b, err)
	}
	e.roots[b.ID()] = rootEntry{root: root, height: b.Height, results: results}
	e.executed++
	return root, nil
}

// Root returns the executed state root of block id, if known.
func (e *Executor) Root(id types.BlockID) ([32]byte, bool) {
	ent, ok := e.roots[id]
	return ent.root, ok
}

// Results returns the memoized per-transaction results of block id (nil if
// the block was never executed here or has been pruned).
func (e *Executor) Results(id types.BlockID) []TxResult {
	return e.roots[id].results
}

// OnCommit finalizes b's state: the state machine's base advances to b's
// root and executed-root history far below the committed height is pruned.
// The block is executed first if it never was (a commit implies the replica
// accepted the chain).
func (e *Executor) OnCommit(b *types.Block) error {
	root, err := e.Execute(b)
	if err != nil {
		return err
	}
	if err := e.sm.Commit(root); err != nil {
		return fmt.Errorf("app: commit %v: %w", b, err)
	}
	e.commit.root = root
	e.commit.height = b.Height
	if b.Height > prune {
		floor := b.Height - prune
		for id, ent := range e.roots {
			if ent.height < floor && ent.height > 0 {
				delete(e.roots, id)
			}
		}
	}
	return nil
}

// CommittedRoot returns the state root of the latest committed block (the
// genesis root before any commit).
func (e *Executor) CommittedRoot() [32]byte { return e.commit.root }

// CommittedHeight returns the height of the latest committed block.
func (e *Executor) CommittedHeight() types.Height { return e.commit.height }

// Executed returns the number of blocks run through the state machine.
func (e *Executor) Executed() int64 { return e.executed }

package app

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// Bank is the flagship execution-layer application: a signed-transfer ledger
// over a large account space (the workloads drive ~1M accounts). Every
// account starts at InitialBalance; transactions are ed25519-signed by
// per-account keys derived from the bank seed, ordered by strict per-account
// nonces, and balance-checked — a failed check burns the transaction
// deterministically (same result code everywhere) without touching state.
//
// State root. The root is an incremental commitment: an XOR fold of
// per-account leaf hashes H("bankleaf/" || id || balance || nonce) over the
// accounts that diverge from their initial state, finalized under a domain
// separator with the bank parameters. Updates are O(1) per touched account
// regardless of the account space, which is what makes execute-before-vote
// affordable at ~1M accounts. It is Merkle-ish, not a Merkle tree: it
// detects divergence among honest replicas (the consensus use) but offers
// no compact membership proofs and the XOR fold is not collision-resistant
// against adversarially chosen state multisets — a production deployment
// would swap in a real accumulator behind the same StateMachine interface.
//
// Forks. Apply never mutates the state at the parent root; it records a
// copy-on-write overlay keyed by the resulting root, so competing blocks
// extending the same parent execute independently. Commit folds the winning
// overlay chain into the base state and sweeps overlays that can no longer
// reach it.
type Bank struct {
	cfg  BankConfig
	keys *BankKeys

	base     map[uint32]accountState // accounts diverging from initial state
	baseAcc  [32]byte                // XOR fold over base's leaf hashes
	baseRoot [32]byte

	overlays map[[32]byte]*overlay // speculative states keyed by root

	sigScratch []byte
}

// BankConfig parameterizes a Bank. All replicas of a cluster must use the
// identical config — it is folded into the state root.
type BankConfig struct {
	// Seed derives the per-account ed25519 keys.
	Seed int64
	// Accounts is the number of pre-funded accounts (IDs [0, Accounts)).
	Accounts uint32
	// InitialBalance funds every account at genesis.
	InitialBalance uint64
	// DisableSigVerify skips ed25519 signature checks during Apply —
	// deterministic as long as every replica agrees, useful when the
	// workload is trusted and only the state-machine mechanics are under
	// test. Leave false for the real execution contract.
	DisableSigVerify bool
	// Keys optionally shares a key/verification cache across in-process
	// replicas (pure memoization: signature verdicts are deterministic, so
	// sharing never changes results). Nil gives the bank a private cache.
	Keys *BankKeys
}

type accountState struct {
	Balance uint64
	Nonce   uint64
}

type overlay struct {
	parent [32]byte
	root   [32]byte
	acc    [32]byte
	delta  map[uint32]accountState // absolute post-states of touched accounts
}

// NewBank creates a bank with every account funded at InitialBalance.
func NewBank(cfg BankConfig) *Bank {
	if cfg.Accounts == 0 {
		cfg.Accounts = 1
	}
	keys := cfg.Keys
	if keys == nil {
		keys = NewBankKeys(cfg.Seed)
	}
	b := &Bank{
		cfg:      cfg,
		keys:     keys,
		base:     make(map[uint32]accountState),
		overlays: make(map[[32]byte]*overlay),
	}
	b.baseRoot = b.finalizeRoot(b.baseAcc)
	return b
}

// initial returns the genesis state of account id.
func (b *Bank) initial(id uint32) accountState {
	if id < b.cfg.Accounts {
		return accountState{Balance: b.cfg.InitialBalance}
	}
	return accountState{}
}

// leaf hashes one account's divergent state into its root contribution.
func leaf(id uint32, st accountState) [32]byte {
	var buf [8 + 4 + 8 + 8]byte
	copy(buf[:], "bankleaf")
	buf[8] = byte(id >> 24)
	buf[9] = byte(id >> 16)
	buf[10] = byte(id >> 8)
	buf[11] = byte(id)
	for i := 0; i < 8; i++ {
		buf[12+i] = byte(st.Balance >> (56 - 8*i))
		buf[20+i] = byte(st.Nonce >> (56 - 8*i))
	}
	return sha256.Sum256(buf[:])
}

// finalizeRoot derives the state root from the accumulator, folding in the
// bank parameters so differently-configured banks can never alias.
func (b *Bank) finalizeRoot(acc [32]byte) [32]byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, "bankroot/"...)
	buf = types.AppendUint32(buf, b.cfg.Accounts)
	buf = types.AppendUint64(buf, b.cfg.InitialBalance)
	buf = append(buf, acc[:]...)
	return sha256.Sum256(buf)
}

// GenesisRoot implements StateMachine.
func (b *Bank) GenesisRoot() [32]byte {
	var zero [32]byte
	return b.finalizeRoot(zero)
}

// stateAt resolves account id's state as of the given root, walking the
// overlay chain down to the base. ok is false when root is unknown.
func (b *Bank) stateAt(root [32]byte, id uint32) (accountState, bool) {
	cur := root
	for cur != b.baseRoot {
		o := b.overlays[cur]
		if o == nil {
			return accountState{}, false
		}
		if st, hit := o.delta[id]; hit {
			return st, true
		}
		cur = o.parent
	}
	if st, hit := b.base[id]; hit {
		return st, true
	}
	return b.initial(id), true
}

// knownRoot reports whether root resolves to the base or a live overlay.
func (b *Bank) knownRoot(root [32]byte) bool {
	cur := root
	for cur != b.baseRoot {
		o := b.overlays[cur]
		if o == nil {
			return false
		}
		cur = o.parent
	}
	return true
}

// Apply implements StateMachine: execute the block's transactions against
// the state at parent, returning the new root and per-transaction results.
func (b *Bank) Apply(parent [32]byte, blk *types.Block) ([32]byte, []TxResult, error) {
	if !b.knownRoot(parent) {
		return [32]byte{}, nil, fmt.Errorf("app: bank has no state at root %x", parent[:8])
	}
	acc := b.accAt(parent)
	delta := make(map[uint32]accountState)
	results := make([]TxResult, 0, len(blk.Payload.Txns))

	// get/set resolve against the in-progress delta first so transactions
	// within one block see each other's effects.
	get := func(id uint32) accountState {
		if st, ok := delta[id]; ok {
			return st
		}
		st, _ := b.stateAt(parent, id)
		return st
	}
	set := func(id uint32, st accountState) {
		old := get(id)
		if old != b.initial(id) {
			l := leaf(id, old)
			for i := range acc {
				acc[i] ^= l[i]
			}
		}
		if st != b.initial(id) {
			l := leaf(id, st)
			for i := range acc {
				acc[i] ^= l[i]
			}
		}
		delta[id] = st
	}

	for _, txn := range blk.Payload.Txns {
		results = append(results, TxResult{Sender: txn.Sender, Seq: txn.Seq, Code: b.applyOne(txn, get, set)})
	}

	root := b.finalizeRoot(acc)
	if len(delta) == 0 {
		// State unchanged (empty or all-rejected block): the root IS the
		// parent root; recording an identity overlay would self-link.
		return parent, results, nil
	}
	if _, dup := b.overlays[root]; !dup && root != b.baseRoot {
		b.overlays[root] = &overlay{parent: parent, root: root, acc: acc, delta: delta}
	}
	return root, results, nil
}

// accAt returns the accumulator at a known root.
func (b *Bank) accAt(root [32]byte) [32]byte {
	if root == b.baseRoot {
		return b.baseAcc
	}
	return b.overlays[root].acc
}

// applyOne executes a single transaction, mutating state through set only
// when every check passes.
func (b *Bank) applyOne(txn types.Transaction, get func(uint32) accountState, set func(uint32, accountState)) Code {
	t, rest, err := DecodeBankTx(txn.Data)
	if err != nil || len(rest) != 0 || t.Amount == 0 {
		return CodeMalformed
	}
	if !b.cfg.DisableSigVerify {
		b.sigScratch = t.AppendSigningPayload(b.sigScratch[:0])
		if !b.keys.Verify(t.From, b.sigScratch, t.Sig[:]) {
			return CodeBadSignature
		}
	}
	from := get(t.From)
	if t.Nonce != from.Nonce+1 {
		return CodeBadNonce
	}
	if from.Balance < t.Amount {
		// The nonce does NOT advance on a failed balance check: the holder
		// can re-sign the same nonce with a smaller amount.
		return CodeInsufficient
	}
	from.Balance -= t.Amount
	from.Nonce = t.Nonce
	if t.Op == OpTransfer && t.To == t.From {
		from.Balance += t.Amount // self-transfer: nonce advances, funds stay
	}
	set(t.From, from)
	if t.Op == OpTransfer && t.To != t.From {
		to := get(t.To)
		to.Balance += t.Amount
		set(t.To, to)
	}
	return CodeOK
}

// Commit implements StateMachine: fold the overlay chain ending at root into
// the base state and sweep overlays that no longer reach the new base.
func (b *Bank) Commit(root [32]byte) error {
	if root == b.baseRoot {
		return nil
	}
	// Collect the chain base -> root (walked tip-down, applied bottom-up).
	var chain []*overlay
	cur := root
	for cur != b.baseRoot {
		o := b.overlays[cur]
		if o == nil {
			return fmt.Errorf("app: bank cannot commit unknown root %x", root[:8])
		}
		chain = append(chain, o)
		cur = o.parent
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for id, st := range chain[i].delta {
			if st == b.initial(id) {
				delete(b.base, id)
			} else {
				b.base[id] = st
			}
		}
		delete(b.overlays, chain[i].root)
	}
	b.baseAcc = chain[0].acc
	b.baseRoot = root
	// Sweep overlays that no longer chain down to the base: committed
	// siblings and their descendants are dead forks (their chains terminate
	// at an overlay deleted by the fold above, so knownRoot sees them).
	for root, o := range b.overlays {
		if !b.knownRoot(o.root) {
			delete(b.overlays, root)
		}
	}
	return nil
}

// Committed returns the root of the committed base state.
func (b *Bank) Committed() [32]byte { return b.baseRoot }

// Balance returns account id's committed balance.
func (b *Bank) Balance(id uint32) uint64 {
	if st, ok := b.base[id]; ok {
		return st.Balance
	}
	return b.initial(id).Balance
}

// Nonce returns account id's committed nonce.
func (b *Bank) Nonce(id uint32) uint64 {
	if st, ok := b.base[id]; ok {
		return st.Nonce
	}
	return 0
}

// Divergent returns the number of accounts whose committed state differs
// from genesis.
func (b *Bank) Divergent() int { return len(b.base) }

// TotalSupply returns the committed sum of all balances — the conservation
// invariant tests assert: initial supply minus withdrawals, regardless of
// transfer volume.
func (b *Bank) TotalSupply() uint64 {
	total := uint64(b.cfg.Accounts) * b.cfg.InitialBalance
	for id, st := range b.base {
		total -= b.initial(id).Balance
		total += st.Balance
	}
	return total
}

// snapMagic versions the snapshot wire form.
var snapMagic = []byte("banksnap/1/")

// Snapshot implements StateMachine: the committed base state, accounts
// sorted by ID for determinism.
func (b *Bank) Snapshot() []byte {
	ids := make([]uint32, 0, len(b.base))
	for id := range b.base {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, len(snapMagic)+16+20*len(ids))
	out = append(out, snapMagic...)
	out = types.AppendUint32(out, b.cfg.Accounts)
	out = types.AppendUint64(out, b.cfg.InitialBalance)
	out = types.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		st := b.base[id]
		out = types.AppendUint32(out, id)
		out = types.AppendUint64(out, st.Balance)
		out = types.AppendUint64(out, st.Nonce)
	}
	return out
}

// Restore implements StateMachine: replace the committed base state with the
// snapshot's. Speculative overlays are discarded.
func (b *Bank) Restore(snap []byte) error {
	rest, err := consume(snap, snapMagic)
	if err != nil {
		return err
	}
	accounts, rest, err := types.ConsumeUint32(rest)
	if err != nil {
		return err
	}
	initialBalance, rest, err := types.ConsumeUint64(rest)
	if err != nil {
		return err
	}
	if accounts != b.cfg.Accounts || initialBalance != b.cfg.InitialBalance {
		return fmt.Errorf("app: snapshot for a different bank (accounts %d/%d, balance %d/%d)",
			accounts, b.cfg.Accounts, initialBalance, b.cfg.InitialBalance)
	}
	n, rest, err := types.ConsumeUint32(rest)
	if err != nil {
		return err
	}
	base := make(map[uint32]accountState, n)
	var acc [32]byte
	prev := -1
	for i := uint32(0); i < n; i++ {
		var id uint32
		var st accountState
		if id, rest, err = types.ConsumeUint32(rest); err != nil {
			return err
		}
		if int(id) <= prev {
			return fmt.Errorf("app: snapshot accounts out of order at %d", id)
		}
		prev = int(id)
		if st.Balance, rest, err = types.ConsumeUint64(rest); err != nil {
			return err
		}
		if st.Nonce, rest, err = types.ConsumeUint64(rest); err != nil {
			return err
		}
		if st == b.initial(id) {
			return fmt.Errorf("app: snapshot carries non-divergent account %d", id)
		}
		base[id] = st
		l := leaf(id, st)
		for j := range acc {
			acc[j] ^= l[j]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("app: %d trailing snapshot bytes", len(rest))
	}
	b.base = base
	b.baseAcc = acc
	b.baseRoot = b.finalizeRoot(acc)
	b.overlays = make(map[[32]byte]*overlay)
	return nil
}

func consume(b, magic []byte) ([]byte, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("app: bad snapshot magic")
	}
	return b[len(magic):], nil
}

// BankKeys caches account public keys and signature verdicts. Safe for
// concurrent use, shareable across in-process replicas: key derivation and
// ed25519 verification are deterministic, so the cache is pure memoization.
type BankKeys struct {
	seed int64

	mu       sync.RWMutex
	pubs     map[uint32]ed25519.PublicKey
	verdicts map[[32]byte]bool
}

// NewBankKeys creates a cache for the account keyspace derived from seed.
func NewBankKeys(seed int64) *BankKeys {
	return &BankKeys{seed: seed, pubs: make(map[uint32]ed25519.PublicKey), verdicts: make(map[[32]byte]bool)}
}

// Pub returns account id's public key, deriving and caching it on first use.
func (k *BankKeys) Pub(id uint32) ed25519.PublicKey {
	k.mu.RLock()
	pub, ok := k.pubs[id]
	k.mu.RUnlock()
	if ok {
		return pub
	}
	pub = AccountKey(k.seed, id).Public().(ed25519.PublicKey)
	k.mu.Lock()
	k.pubs[id] = pub
	k.mu.Unlock()
	return pub
}

// Verify checks sig over payload against account from's key, memoizing the
// verdict so replicas sharing the cache pay each verification once.
func (k *BankKeys) Verify(from uint32, payload, sig []byte) bool {
	h := sha256.New()
	var idb [4]byte
	idb[0], idb[1], idb[2], idb[3] = byte(from>>24), byte(from>>16), byte(from>>8), byte(from)
	h.Write(idb[:])
	h.Write(payload)
	h.Write(sig)
	var key [32]byte
	h.Sum(key[:0])

	k.mu.RLock()
	verdict, ok := k.verdicts[key]
	k.mu.RUnlock()
	if ok {
		return verdict
	}
	verdict = ed25519.Verify(k.Pub(from), payload, sig)
	k.mu.Lock()
	k.verdicts[key] = verdict
	k.mu.Unlock()
	return verdict
}

package intervals_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/intervals"
)

func TestFromMarker(t *testing.T) {
	tests := []struct {
		marker, r uint64
		contains  []uint64
		excludes  []uint64
	}{
		{0, 5, []uint64{1, 3, 5}, []uint64{0, 6}},
		{3, 5, []uint64{4, 5}, []uint64{1, 3, 6}},
		{5, 5, nil, []uint64{1, 5, 6}},
		{9, 5, nil, []uint64{1, 5, 9}},
	}
	for _, tc := range tests {
		s := intervals.FromMarker(tc.marker, tc.r)
		for _, v := range tc.contains {
			if !s.Contains(v) {
				t.Errorf("FromMarker(%d,%d) should contain %d", tc.marker, tc.r, v)
			}
		}
		for _, v := range tc.excludes {
			if s.Contains(v) {
				t.Errorf("FromMarker(%d,%d) should not contain %d", tc.marker, tc.r, v)
			}
		}
	}
}

func TestAddMergesAdjacentAndOverlapping(t *testing.T) {
	s := intervals.New(
		intervals.Interval{Lo: 1, Hi: 3},
		intervals.Interval{Lo: 4, Hi: 6}, // adjacent: merges with [1,3]
		intervals.Interval{Lo: 10, Hi: 12},
		intervals.Interval{Lo: 11, Hi: 15}, // overlapping: merges with [10,12]
	)
	if s.Len() != 2 {
		t.Fatalf("want 2 intervals after normalization, got %d: %s", s.Len(), s)
	}
	ivs := s.Intervals()
	if ivs[0] != (intervals.Interval{Lo: 1, Hi: 6}) || ivs[1] != (intervals.Interval{Lo: 10, Hi: 15}) {
		t.Fatalf("bad normalization: %s", s)
	}
}

func TestSubtract(t *testing.T) {
	s := intervals.Full(10) // [1,10]
	s = s.Subtract(intervals.Interval{Lo: 4, Hi: 6})
	if s.String() != "{[1,3],[7,10]}" {
		t.Fatalf("split failed: %s", s)
	}
	s = s.Subtract(intervals.Interval{Lo: 1, Hi: 3})
	if s.String() != "{[7,10]}" {
		t.Fatalf("left trim failed: %s", s)
	}
	s = s.Subtract(intervals.Interval{Lo: 9, Hi: 20})
	if s.String() != "{[7,8]}" {
		t.Fatalf("right trim failed: %s", s)
	}
	if !s.Subtract(intervals.Interval{Lo: 1, Hi: 99}).Empty() {
		t.Fatal("full subtraction should empty the set")
	}
}

func TestIntersect(t *testing.T) {
	a := intervals.New(intervals.Interval{Lo: 1, Hi: 5}, intervals.Interval{Lo: 8, Hi: 12})
	b := intervals.New(intervals.Interval{Lo: 4, Hi: 9})
	got := a.Intersect(b)
	if got.String() != "{[4,5],[8,9]}" {
		t.Fatalf("intersect: %s", got)
	}
	if !a.Intersect(intervals.Set{}).Empty() {
		t.Fatal("intersect with empty must be empty")
	}
}

func TestCount(t *testing.T) {
	s := intervals.New(intervals.Interval{Lo: 1, Hi: 3}, intervals.Interval{Lo: 10, Hi: 10})
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	if (intervals.Set{}).Count() != 0 {
		t.Fatal("empty count")
	}
}

// randomSet builds a set from up to 6 random intervals over [1, 64].
func randomSet(rng *rand.Rand) intervals.Set {
	var s intervals.Set
	for i := 0; i < rng.Intn(6); i++ {
		lo := uint64(rng.Intn(64)) + 1
		hi := lo + uint64(rng.Intn(10))
		s = s.Add(intervals.Interval{Lo: lo, Hi: hi})
	}
	return s
}

func TestPropertyNormalization(t *testing.T) {
	// After any sequence of operations, intervals are sorted, disjoint and
	// non-adjacent.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		s := randomSet(rng)
		s = s.Union(randomSet(rng))
		s = s.Subtract(intervals.Interval{Lo: uint64(rng.Intn(64)) + 1, Hi: uint64(rng.Intn(64)) + 1})
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				t.Fatalf("trial %d: empty interval in %s", trial, s)
			}
			if i > 0 && ivs[i-1].Hi+1 >= iv.Lo {
				t.Fatalf("trial %d: not normalized: %s", trial, s)
			}
		}
	}
}

func TestPropertyMembershipAlgebra(t *testing.T) {
	// Pointwise semantics of union/subtract/intersect.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.SubtractSet(b)
		for v := uint64(1); v <= 80; v++ {
			inA, inB := a.Contains(v), b.Contains(v)
			if union.Contains(v) != (inA || inB) {
				t.Fatalf("union wrong at %d: %s ∪ %s = %s", v, a, b, union)
			}
			if inter.Contains(v) != (inA && inB) {
				t.Fatalf("intersect wrong at %d: %s ∩ %s = %s", v, a, b, inter)
			}
			if diff.Contains(v) != (inA && !inB) {
				t.Fatalf("subtract wrong at %d: %s \\ %s = %s", v, a, b, diff)
			}
		}
	}
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		s := randomSet(rng)
		dec, rest, err := intervals.Decode(s.Encode(nil))
		if err != nil || len(rest) != 0 {
			t.Fatalf("trial %d: decode err=%v rest=%d", trial, err, len(rest))
		}
		if !dec.Equal(s) {
			t.Fatalf("trial %d: round trip %s -> %s", trial, s, dec)
		}
	}
}

func TestQuickContainsMatchesFromMarker(t *testing.T) {
	// FromMarker(m, r) must contain exactly the rounds in (m, r].
	check := func(m, r, probe uint16) bool {
		s := intervals.FromMarker(uint64(m), uint64(r))
		want := uint64(probe) > uint64(m) && uint64(probe) <= uint64(r)
		return s.Contains(uint64(probe)) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	s := intervals.New(intervals.Interval{Lo: 2, Hi: 4}, intervals.Interval{Lo: 9, Hi: 9})
	enc, err := s.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out intervals.Set
	if err := out.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(s) {
		t.Fatalf("gob round trip: %s -> %s", s, out)
	}
	if err := out.GobDecode([]byte{1, 2}); err == nil {
		t.Error("GobDecode accepted garbage")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := intervals.New(intervals.Interval{Lo: 1, Hi: 5})
	enc := s.Encode(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := intervals.Decode(enc[:cut]); err == nil {
			t.Errorf("decode accepted truncation at %d", cut)
		}
	}
}

// Package intervals implements closed integer intervals over round numbers
// and normalized interval sets. They encode the "set of intervals of round
// numbers that a strong-vote endorses" from Section 3.4 of the paper: a
// generalized strong-vote ⟨vote, B, r, I⟩ endorses any block whose round
// number lies in I.
//
// The single-marker scheme of Section 3.2 is the special case
// I = [marker+1, r]; see FromMarker.
//
// Rounds are plain uint64 here so the package stays a dependency leaf;
// callers convert from their typed round numbers.
package intervals

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrShortBuffer is returned by Decode when the input is truncated.
var ErrShortBuffer = errors.New("intervals: short buffer")

// Interval is a closed interval [Lo, Hi] of round numbers. An interval with
// Lo > Hi is empty.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains no rounds.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether r lies in the interval.
func (iv Interval) Contains(r uint64) bool { return iv.Lo <= r && r <= iv.Hi }

// String renders the interval as "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Set is a normalized set of disjoint, sorted, non-adjacent intervals.
// The zero value is the empty set.
type Set struct {
	ivs []Interval
}

// New builds a normalized set from arbitrary intervals: empties are dropped,
// the rest are sorted and overlapping or adjacent intervals are merged.
func New(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// FromMarker returns the interval set a single-marker strong-vote endorses:
// [marker+1, r], where r is the round of the voted block. With the default
// marker 0 this endorses every round in [1, r].
func FromMarker(marker, r uint64) Set {
	if marker >= r {
		return Set{}
	}
	return Set{ivs: []Interval{{Lo: marker + 1, Hi: r}}}
}

// Full returns the set [1, r].
func Full(r uint64) Set {
	if r == 0 {
		return Set{}
	}
	return Set{ivs: []Interval{{Lo: 1, Hi: r}}}
}

// Empty reports whether the set contains no rounds.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Len returns the number of disjoint intervals in the set.
func (s Set) Len() int { return len(s.ivs) }

// Intervals returns a copy of the normalized intervals, sorted by Lo.
func (s Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Contains reports whether round r is endorsed by the set.
func (s Set) Contains(r uint64) bool {
	// Binary search for the first interval with Hi >= r.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= r })
	return i < len(s.ivs) && s.ivs[i].Contains(r)
}

// Add returns the set with iv merged in, preserving normalization.
func (s Set) Add(iv Interval) Set {
	if iv.Empty() {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, cur := range s.ivs {
		switch {
		case cur.Hi+1 < iv.Lo:
			// cur entirely before iv (not even adjacent).
			out = append(out, cur)
		case iv.Hi+1 < cur.Lo:
			// cur entirely after iv.
			if !inserted {
				out = append(out, iv)
				inserted = true
			}
			out = append(out, cur)
		default:
			// Overlapping or adjacent: absorb cur into iv.
			iv.Lo = min(iv.Lo, cur.Lo)
			iv.Hi = max(iv.Hi, cur.Hi)
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return Set{ivs: out}
}

// Union returns the union of the two sets.
func (s Set) Union(t Set) Set {
	out := s
	for _, iv := range t.ivs {
		out = out.Add(iv)
	}
	return out
}

// Subtract returns the set with every round in iv removed.
func (s Set) Subtract(iv Interval) Set {
	if iv.Empty() || len(s.ivs) == 0 {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, cur := range s.ivs {
		if cur.Hi < iv.Lo || cur.Lo > iv.Hi {
			out = append(out, cur)
			continue
		}
		// Left remainder.
		if cur.Lo < iv.Lo {
			out = append(out, Interval{Lo: cur.Lo, Hi: iv.Lo - 1})
		}
		// Right remainder.
		if cur.Hi > iv.Hi {
			out = append(out, Interval{Lo: iv.Hi + 1, Hi: cur.Hi})
		}
	}
	return Set{ivs: out}
}

// SubtractSet returns s minus every interval of t.
func (s Set) SubtractSet(t Set) Set {
	out := s
	for _, iv := range t.ivs {
		out = out.Subtract(iv)
	}
	return out
}

// Intersect returns the intersection of the two sets.
func (s Set) Intersect(t Set) Set {
	out := make([]Interval, 0, len(s.ivs))
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		a, b := s.ivs[i], t.ivs[j]
		lo, hi := max(a.Lo, b.Lo), min(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Interval{Lo: lo, Hi: hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

// Equal reports whether the two sets contain exactly the same rounds.
func (s Set) Equal(t Set) bool {
	if len(s.ivs) != len(t.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != t.ivs[i] {
			return false
		}
	}
	return true
}

// Count returns the total number of rounds in the set.
func (s Set) Count() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Hi - iv.Lo + 1
	}
	return n
}

// String renders the set as "{[a,b],[c,d]}".
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Encode appends a deterministic binary encoding of the set to b, for
// inclusion in signed strong-vote payloads.
func (s Set) Encode(b []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(s.ivs)))
	b = append(b, tmp[:4]...)
	for _, iv := range s.ivs {
		binary.BigEndian.PutUint64(tmp[:], iv.Lo)
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], iv.Hi)
		b = append(b, tmp[:]...)
	}
	return b
}

// GobEncode implements gob.GobEncoder so sets survive the TCP transport's
// gob envelope despite having unexported fields.
func (s Set) GobEncode() ([]byte, error) {
	return s.Encode(nil), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Set) GobDecode(b []byte) error {
	dec, rest, err := Decode(b)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("intervals: %d trailing bytes", len(rest))
	}
	*s = dec
	return nil
}

// Decode parses a set encoded by Encode from the front of b, returning the
// set and the remaining bytes.
func Decode(b []byte) (Set, []byte, error) {
	if len(b) < 4 {
		return Set{}, nil, ErrShortBuffer
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	var s Set
	for i := uint32(0); i < n; i++ {
		if len(b) < 16 {
			return Set{}, nil, ErrShortBuffer
		}
		lo := binary.BigEndian.Uint64(b[:8])
		hi := binary.BigEndian.Uint64(b[8:16])
		b = b[16:]
		s = s.Add(Interval{Lo: lo, Hi: hi})
	}
	return s, b, nil
}

package diembft_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wal"
)

// openJournal opens (or reopens) a replica's WAL under dir.
func openJournal(t *testing.T, dir string, id types.ReplicaID) *core.Journal {
	t.Helper()
	l, err := wal.Open(filepath.Join(dir, fmt.Sprintf("replica-%d", id)), wal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return core.NewJournal(l)
}

// recoverReplica rebuilds a replica from its journal dir with the given
// config mutation applied on top of the test default.
func recoverReplica(t *testing.T, dir string, id types.ReplicaID, n, f int, ring *crypto.KeyRing) (*diembft.Replica, *core.Recovery) {
	t.Helper()
	j := openJournal(t, dir, id)
	rec, err := core.Recover(j.Log())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rep, err := diembft.New(diembft.Config{
		ID: id, N: n, F: f,
		Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
		SFT: true, RoundTimeout: 500 * time.Millisecond,
		Journal: j,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := rep.Restore(rec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return rep, rec
}

// TestKillRestartMatchesPreCrashState is the PR-2 determinism criterion:
// under a fixed seed, a replica killed mid-run and restored from its WAL
// reports the same high-QC, committed prefix, and VoteHistory markers as the
// pre-crash engine object (which the simulator conveniently keeps frozen).
func TestKillRestartMatchesPreCrashState(t *testing.T) {
	const (
		n      = 4
		f      = 1
		victim = types.ReplicaID(2)
	)
	dir := t.TempDir()
	ring, err := crypto.NewKeyRing(n, 42, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := simnet.Config{Seed: 11}
	sim, replicas := buildCluster(t, n, f, func(id types.ReplicaID, c *diembft.Config) {
		if id == victim {
			c.Journal = openJournal(t, dir, id)
		}
	}, simCfg)
	sim.CrashAt(victim, 2*time.Second)
	sim.Run(3 * time.Second)

	pre := replicas[victim] // frozen at the crash instant
	if pre.CommittedHeight() == 0 || pre.VotedRound() == 0 {
		t.Fatalf("victim made no progress before the crash (committed h%d, voted r%d)",
			pre.CommittedHeight(), pre.VotedRound())
	}

	post, _ := recoverReplica(t, dir, victim, n, f, ring)

	if got, want := post.HighQC().Block, pre.HighQC().Block; got != want {
		t.Errorf("high QC block: recovered %v, pre-crash %v", got, want)
	}
	if got, want := post.HighQC().Round, pre.HighQC().Round; got != want {
		t.Errorf("high QC round: recovered %d, pre-crash %d", got, want)
	}
	if got, want := post.LastCommitted(), pre.LastCommitted(); got != want {
		t.Errorf("last committed: recovered %v, pre-crash %v", got, want)
	}
	if got, want := post.CommittedHeight(), pre.CommittedHeight(); got != want {
		t.Errorf("committed height: recovered %d, pre-crash %d", got, want)
	}
	if got, want := post.VotedRound(), pre.VotedRound(); got != want {
		t.Errorf("voted round: recovered %d, pre-crash %d", got, want)
	}
	if got, want := post.LockedRound(), pre.LockedRound(); got != want {
		t.Errorf("locked round: recovered %d, pre-crash %d", got, want)
	}

	// The vote history — the state the paper's markers summarize — must
	// match entry for entry.
	preVoted, postVoted := pre.History().Voted(), post.History().Voted()
	if len(preVoted) != len(postVoted) {
		t.Fatalf("vote history length: recovered %d, pre-crash %d", len(postVoted), len(preVoted))
	}
	for i := range preVoted {
		if preVoted[i] != postVoted[i] {
			t.Fatalf("vote history entry %d: recovered %+v, pre-crash %+v", i, postVoted[i], preVoted[i])
		}
	}

	// And the derived markers agree on a fresh extension of the high chain:
	// the recovered replica's next vote carries exactly the marker the
	// pre-crash replica would have reported.
	tip := pre.Store().Block(pre.HighQC().Block)
	if tip == nil {
		t.Fatal("pre-crash store lost its high block")
	}
	ext := types.NewBlock(tip.ID(), pre.HighQC(), tip.Round+1, tip.Height+1, 0, 0, types.Payload{}, nil)
	if err := pre.Store().Insert(ext); err != nil {
		t.Fatalf("extend pre-crash store: %v", err)
	}
	if err := post.Store().Insert(ext); err != nil {
		t.Fatalf("extend recovered store: %v", err)
	}
	if got, want := post.History().Marker(ext), pre.History().Marker(ext); got != want {
		t.Errorf("marker on fresh extension: recovered %d, pre-crash %d", got, want)
	}
}

// TestRecoveredReplicaRefusesContradictingVote is the PR-2 safety
// criterion: drive a post-recovery engine with proposals that would
// contradict its persisted history and assert the vote rule refuses — and
// that when it does vote on a conflicting fork, the marker faithfully
// reports the pre-crash conflicting round.
func TestRecoveredReplicaRefusesContradictingVote(t *testing.T) {
	const (
		n      = 4
		f      = 1
		victim = types.ReplicaID(3) // leads no early round; votes on everything
	)
	dir := t.TempDir()
	ring, err := crypto.NewKeyRing(n, 42, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: drive the victim directly with a signed proposal for round 1
	// so it votes for block A, journaling vote + block.
	journal := openJournal(t, dir, victim)
	pre, err := diembft.New(diembft.Config{
		ID: victim, N: n, F: f,
		Signer: ring.Signer(victim), Verifier: ring, VerifySignatures: true,
		SFT: true, RoundTimeout: 500 * time.Millisecond,
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	pre.Init(0)

	genesis := pre.Store().Genesis()
	gqc := types.NewGenesisQC(genesis.ID())
	leader1 := types.ReplicaID(0) // round-robin: replica 0 leads round 1
	blockA := types.NewBlock(genesis.ID(), gqc, 1, 1, leader1, 0, types.Payload{
		Txns: []types.Transaction{{Sender: 1, Seq: 1, Data: []byte("fork-A")}},
	}, nil)
	propA := &types.Proposal{Block: blockA, Round: 1, Sender: leader1}
	propA.Signature = ring.Signer(leader1).Sign(propA.SigningPayload())

	outs := pre.OnMessage(0, leader1, propA)
	voteA := findVote(t, outs)
	if voteA == nil {
		t.Fatal("victim did not vote for the round-1 proposal")
	}
	if voteA.Block != blockA.ID() {
		t.Fatalf("voted for %v, want %v", voteA.Block, blockA.ID())
	}

	// Phase 2: crash (drop the engine) and recover from the WAL.
	post, rec := recoverReplica(t, dir, victim, n, f, ring)
	if len(rec.Votes) != 1 {
		t.Fatalf("recovered %d votes, want 1", len(rec.Votes))
	}
	post.Init(0)

	// Refusal 1: the same round again — even the identical proposal must
	// not produce a second vote (rvote was restored).
	if v := findVote(t, post.OnMessage(0, leader1, propA)); v != nil {
		t.Fatalf("recovered replica re-voted in round %d: %v", 1, v)
	}

	// Refusal 2: a CONFLICTING round-1 proposal (equivocating leader). A
	// forgetful replica would happily vote for it, contradicting its
	// pre-crash vote for A; the recovered one must refuse.
	blockA2 := types.NewBlock(genesis.ID(), gqc, 1, 1, leader1, 0, types.Payload{
		Txns: []types.Transaction{{Sender: 1, Seq: 1, Data: []byte("fork-A2")}},
	}, nil)
	propA2 := &types.Proposal{Block: blockA2, Round: 1, Sender: leader1}
	propA2.Signature = ring.Signer(leader1).Sign(propA2.SigningPayload())
	if v := findVote(t, post.OnMessage(0, leader1, propA2)); v != nil {
		t.Fatalf("recovered replica voted for a conflicting round-1 block: %v", v)
	}

	// Advance the recovered replica into round 2 the way the protocol does:
	// a timeout certificate (2f+1 peers giving up on round 1).
	for _, peer := range []types.ReplicaID{0, 1, 2} {
		to := &types.Timeout{Round: 1, HighQC: gqc, Sender: peer}
		to.Signature = ring.Signer(peer).Sign(to.SigningPayload())
		post.OnMessage(0, peer, to)
	}
	if got := post.Round(); got != 2 {
		t.Fatalf("timeout certificate did not advance the recovered replica: round %d", got)
	}

	// Marker obligation: a round-2 proposal on a DIFFERENT fork (extending
	// genesis, conflicting with A). The recovered replica may vote — but
	// the marker must be 1 (the round of its pre-crash vote for A), so the
	// vote endorses nothing on the abandoned fork. A replica that lost its
	// history would report marker 0 and endorse A's round, breaking the
	// resilience ladder.
	leader2 := types.ReplicaID(1)
	blockB := types.NewBlock(genesis.ID(), gqc, 2, 1, leader2, 0, types.Payload{
		Txns: []types.Transaction{{Sender: 2, Seq: 1, Data: []byte("fork-B")}},
	}, nil)
	propB := &types.Proposal{Block: blockB, Round: 2, Sender: leader2}
	propB.Signature = ring.Signer(leader2).Sign(propB.SigningPayload())
	voteB := findVote(t, post.OnMessage(0, leader2, propB))
	if voteB == nil {
		t.Fatal("recovered replica refused a legitimate round-2 proposal")
	}
	if voteB.Marker != 1 {
		t.Fatalf("recovered vote carries marker %d, want 1 (the pre-crash conflicting round)", voteB.Marker)
	}
	if voteB.Endorses(blockA.Round) {
		t.Fatal("recovered vote endorses the pre-crash conflicting round")
	}
}

// findVote extracts the vote from an output batch, or nil.
func findVote(t *testing.T, outs []engine.Output) *types.Vote {
	t.Helper()
	for _, out := range outs {
		if send, ok := out.(engine.Send); ok {
			if vm, ok := send.Msg.(*types.VoteMsg); ok {
				v := vm.Vote
				return &v
			}
		}
	}
	return nil
}

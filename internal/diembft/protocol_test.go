package diembft_test

import (
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

// corrupt swaps replica id's engine for one wrapped with the given
// adversary behaviors (the subsystem that replaced the old engine-level
// Misbehavior knobs). Call after buildCluster, before Run.
func corrupt(t *testing.T, sim *simnet.Sim, rep *diembft.Replica, n, f int, specs ...adversary.Spec) {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 42, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	var eng engine.Engine
	eng, err = adversary.Wrap(rep, adversary.Config{
		ID: rep.ID(), N: n, F: f, Signer: ring.Signer(rep.ID()), Seed: int64(rep.ID()) + 1,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetEngine(rep.ID(), eng)
}

// TestSafetyUnderEquivocatingLeader: one Byzantine equivocator (t = f) must
// never cause honest replicas to commit divergent prefixes.
func TestSafetyUnderEquivocatingLeader(t *testing.T) {
	commits := make(map[types.ReplicaID][]types.BlockID)
	simCfg := simnet.Config{
		Seed: 21,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b.ID())
		},
	}
	sim, reps := buildCluster(t, 4, 1, nil, simCfg)
	corrupt(t, sim, reps[2], 4, 1, adversary.Spec{Kind: adversary.Equivocate})
	sim.Run(5 * time.Second)

	honest := []types.ReplicaID{0, 1, 3}
	for _, id := range honest {
		if len(commits[id]) < 5 {
			t.Fatalf("replica %v committed only %d blocks under equivocation", id, len(commits[id]))
		}
	}
	ref := commits[0]
	for _, id := range honest[1:] {
		other := commits[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i] != other[i] {
				t.Fatalf("SAFETY VIOLATION: divergence at %d between 0 and %v", i, id)
			}
		}
	}
}

// TestIntervalVoteMode: the generalized §3.4 votes work end to end and, in a
// fault-free cluster, produce the same 2f-strong outcomes as markers.
func TestIntervalVoteMode(t *testing.T) {
	best := make(map[types.BlockID]int)
	simCfg := simnet.Config{
		Seed: 22,
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, _ := buildCluster(t, 4, 1, func(id types.ReplicaID, c *diembft.Config) {
		c.VoteMode = diembft.VoteIntervals
		c.IntervalWindow = 64
	}, simCfg)
	sim.Run(3 * time.Second)

	reached := 0
	for _, x := range best {
		if x == 2 {
			reached++
		}
	}
	if reached < 10 {
		t.Fatalf("interval mode reached 2f on only %d blocks", reached)
	}
}

// TestWithholdingVotesCapsStrength: with one silent Byzantine replica
// (t = f = 1 at n = 4) the maximum achievable strength is 2f - t = f; the
// liveness bound of Definition 2.
func TestWithholdingVotesCapsStrength(t *testing.T) {
	best := make(map[types.BlockID]int)
	simCfg := simnet.Config{
		Seed: 23,
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, reps := buildCluster(t, 4, 1, nil, simCfg)
	corrupt(t, sim, reps[3], 4, 1, adversary.Spec{Kind: adversary.Withhold})
	sim.Run(5 * time.Second)

	if len(best) == 0 {
		t.Fatal("no strong commits with one silent replica")
	}
	for id, x := range best {
		if x > 1 { // 2f - t = 1
			t.Fatalf("block %v reached %d-strong with a silent replica (max 1)", id, x)
		}
	}
}

// TestFBFTExtraVotesRaiseStrength: the Appendix B baseline reaches 2f-strong
// through leader-relayed late votes.
func TestFBFTExtraVotesRaiseStrength(t *testing.T) {
	best := make(map[types.BlockID]int)
	var extraVotes int
	simCfg := simnet.Config{
		Seed: 24,
		// A straggler whose votes always miss the QC window.
		Latency: &simnet.RegionModel{
			RegionOf: []int{0, 0, 0, 0},
			Intra:    2 * time.Millisecond,
			Inter:    [][]time.Duration{{2 * time.Millisecond}},
			Penalty:  map[types.ReplicaID]time.Duration{3: 30 * time.Millisecond},
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, _ := buildCluster(t, 4, 1, func(id types.ReplicaID, c *diembft.Config) {
		c.SFT = false
		c.FBFT = true
	}, simCfg)
	sim.Run(4 * time.Second)
	extraVotes = int(sim.Stats().ByType[types.MsgExtraVote])

	if extraVotes == 0 {
		t.Fatal("FBFT relayed no extra votes despite a straggler")
	}
	reached := 0
	for _, x := range best {
		if x == 2 {
			reached++
		}
	}
	if reached < 5 {
		t.Fatalf("FBFT reached 2f on only %d blocks (extra votes: %d)", reached, extraVotes)
	}
}

// TestCommitLogAttached: with MaxCommitLog set, proposals carry §5 strength
// records.
func TestCommitLogAttached(t *testing.T) {
	var logged int
	simCfg := simnet.Config{
		Seed: 25,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			logged += len(b.CommitLog)
		},
	}
	sim, _ := buildCluster(t, 4, 1, func(id types.ReplicaID, c *diembft.Config) {
		c.MaxCommitLog = 8
	}, simCfg)
	sim.Run(2 * time.Second)
	if logged == 0 {
		t.Fatal("no strength records in committed blocks")
	}
}

// TestPartialSynchronyRecovery: with long pre-GST delays the cluster stalls
// (timeouts), then recovers and commits after GST — the liveness property.
func TestPartialSynchronyRecovery(t *testing.T) {
	const gst = 3 * time.Second
	var beforeGST, afterGST int
	simCfg := simnet.Config{
		Seed: 26,
		ExtraDelay: func(from, to types.ReplicaID, now time.Duration) time.Duration {
			if now < gst {
				return 2 * time.Second // far beyond the round timeout
			}
			return 0
		},
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep != 0 {
				return
			}
			if now < gst {
				beforeGST++
			} else {
				afterGST++
			}
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(8 * time.Second)

	if afterGST < 10 {
		t.Fatalf("only %d commits after GST (before: %d)", afterGST, beforeGST)
	}
}

// TestPruningKeepsLiveness: aggressive pruning must not break long runs.
func TestPruningKeepsLiveness(t *testing.T) {
	var commits int
	var replicas []*diembft.Replica
	simCfg := simnet.Config{
		Seed: 27,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep == 0 {
				commits++
			}
		},
	}
	sim, reps := buildCluster(t, 4, 1, func(id types.ReplicaID, c *diembft.Config) {
		c.PruneKeep = 16
	}, simCfg)
	replicas = reps
	sim.Run(10 * time.Second)

	if commits < 100 {
		t.Fatalf("pruned cluster committed only %d blocks", commits)
	}
	// Stores must stay bounded: committed ~900 blocks, keep window 16 plus
	// slack.
	for _, r := range replicas {
		if r.Store().Len() > 200 {
			t.Fatalf("replica %v store grew to %d blocks despite pruning", r.ID(), r.Store().Len())
		}
	}
}

// TestDynamicExtraWait: ExtraWaitFor applies the Figure 8 wait to selected
// rounds only (the paper's dynamic per-block strategy).
func TestDynamicExtraWait(t *testing.T) {
	best := make(map[types.Round]int) // strength by block round
	rounds := make(map[types.BlockID]types.Round)
	simCfg := simnet.Config{
		Seed: 28,
		Latency: &simnet.RegionModel{
			RegionOf: []int{0, 0, 0, 0},
			Intra:    2 * time.Millisecond,
			Inter:    [][]time.Duration{{2 * time.Millisecond}},
			Penalty:  map[types.ReplicaID]time.Duration{3: 25 * time.Millisecond},
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep != 0 {
				return
			}
			rounds[b.ID()] = b.Round
			if x > best[b.Round] {
				best[b.Round] = x
			}
		},
	}
	// Wait only on rounds divisible by 10: those QCs catch the straggler.
	sim, _ := buildCluster(t, 4, 1, func(id types.ReplicaID, c *diembft.Config) {
		c.ExtraWaitFor = func(r types.Round) time.Duration {
			if r%10 == 0 {
				return 80 * time.Millisecond
			}
			return 0
		}
	}, simCfg)
	sim.Run(4 * time.Second)

	// Blocks certified in waited rounds (round % 10 == 0) gain full
	// strength immediately; count how many reached 2f overall as a sanity
	// signal that the selective wait worked.
	reached := 0
	for _, x := range best {
		if x == 2 {
			reached++
		}
	}
	if reached == 0 {
		t.Fatal("dynamic extra wait produced no 2f-strong commits")
	}
}

package diembft_test

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/types"
)

// TestPrevalidateProposal pins the stateless stage on proposals: genuine
// ones pass, forged signatures and forged justify certificates fail — and a
// message that passed Prevalidate is then accepted by the verified state
// stage without re-verification.
func TestPrevalidateProposal(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	good := genuineProposal(ring, 1)
	if err := rep.Prevalidate(0, good); err != nil {
		t.Fatalf("genuine proposal rejected: %v", err)
	}
	if !hasVote(rep.OnVerifiedMessage(0, 0, good)) {
		t.Fatal("verified state stage did not vote for a prevalidated proposal")
	}

	forged := genuineProposal(ring, 2)
	forged.Signature = ring.Signer(2).Sign(forged.SigningPayload())
	if err := rep.Prevalidate(0, forged); err == nil {
		t.Fatal("forged proposal signature passed prevalidation")
	}

	wrongLeader := genuineProposal(ring, 3)
	wrongLeader.Sender = 2
	wrongLeader.Block.Proposer = 2
	wrongLeader.Signature = ring.Signer(2).Sign(wrongLeader.SigningPayload())
	if err := rep.Prevalidate(2, wrongLeader); err == nil {
		t.Fatal("wrong-leader proposal passed prevalidation")
	}
}

// TestPrevalidateVoteAndTimeout covers the remaining signed message types:
// tampered votes and timeouts (including a corrupted attached high QC) must
// fail, genuine ones pass.
func TestPrevalidateVoteAndTimeout(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	good := genuineProposal(ring, 1)
	v := types.Vote{Block: good.Block.ID(), Round: 1, Height: 1, Voter: 2}
	v.Signature = ring.Signer(2).Sign(v.SigningPayload())
	if err := rep.Prevalidate(2, &types.VoteMsg{Vote: v}); err != nil {
		t.Fatalf("genuine vote rejected: %v", err)
	}
	bad := v
	bad.Marker = 9 // payload no longer matches the signature
	if err := rep.Prevalidate(2, &types.VoteMsg{Vote: bad}); err == nil {
		t.Fatal("tampered vote passed prevalidation")
	}

	// Timeout carrying a valid QC.
	var votes []types.Vote
	for i := 0; i < 3; i++ {
		qv := types.Vote{Block: good.Block.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		qv.Signature = ring.Signer(qv.Voter).Sign(qv.SigningPayload())
		votes = append(votes, qv)
	}
	qc := &types.QC{Block: good.Block.ID(), Round: 1, Height: 1, Votes: votes}
	to := &types.Timeout{Round: 2, HighQC: qc, HighRound: qc.Round, Sender: 3}
	to.Signature = ring.Signer(3).Sign(to.SigningPayload())
	if err := rep.Prevalidate(3, to); err != nil {
		t.Fatalf("genuine timeout rejected: %v", err)
	}

	corrupted := &types.QC{Block: qc.Block, Round: qc.Round, Height: qc.Height}
	corrupted.Votes = append([]types.Vote(nil), qc.Votes...)
	corrupted.Votes[1].Signature = []byte("forged")
	badTO := &types.Timeout{Round: 2, HighQC: corrupted, HighRound: corrupted.Round, Sender: 3}
	badTO.Signature = ring.Signer(3).Sign(badTO.SigningPayload())
	if err := rep.Prevalidate(3, badTO); err == nil {
		t.Fatal("timeout with corrupted high QC passed prevalidation")
	}

	badSig := &types.Timeout{Round: 2, HighQC: qc, HighRound: qc.Round, Sender: 3}
	badSig.Signature = ring.Signer(2).Sign(badSig.SigningPayload())
	if err := rep.Prevalidate(3, badSig); err == nil {
		t.Fatal("timeout with forged sender signature passed prevalidation")
	}
}

// TestSpoofedSelfTimeoutRejected pins the loopback-trust rule on the inline
// path: a network peer sending a Timeout that claims Sender == receiver
// (with a forged high QC) must not bypass verification — only true local
// loopback (transport from == self) skips it.
func TestSpoofedSelfTimeoutRejected(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	g := types.Genesis()
	b1 := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 5, 1, 0, 5, types.Payload{}, nil)
	var votes []types.Vote
	for i := 0; i < 3; i++ {
		v := types.Vote{Block: b1.ID(), Round: 5, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = []byte("forged")
		votes = append(votes, v)
	}
	forgedQC := &types.QC{Block: b1.ID(), Round: 5, Height: 1, Votes: votes}
	spoofed := &types.Timeout{Round: 5, HighQC: forgedQC, HighRound: forgedQC.Round, Sender: 1 /* the receiver itself */}
	spoofed.Signature = []byte("forged")

	rep.OnMessage(0, 2, spoofed) // delivered from the network, not loopback
	if rep.HighQC().Round == 5 {
		t.Fatal("forged high QC accepted from a spoofed self-sender timeout")
	}
	if err := rep.Prevalidate(2, spoofed); err == nil {
		t.Fatal("spoofed self-sender timeout passed prevalidation")
	}
}

// TestPrevalidatePassesSyncSegments pins the documented exception: bulk sync
// responses are never rejected by prevalidation (their prefix semantics are
// the engine loop's), even when a segment certificate is corrupt.
func TestPrevalidatePassesSyncSegments(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	g := types.Genesis()
	b1 := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 5, types.Payload{}, nil)
	var votes []types.Vote
	for i := 0; i < 3; i++ {
		v := types.Vote{Block: b1.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = []byte("forged")
		votes = append(votes, v)
	}
	badQC := &types.QC{Block: b1.ID(), Round: 1, Height: 1, Votes: votes}
	b2 := types.NewBlock(b1.ID(), badQC, 2, 2, 1, 6, types.Payload{}, nil)

	resp := &types.SyncResponse{Blocks: []*types.Block{b2}, Sender: 2}
	if err := rep.Prevalidate(2, resp); err != nil {
		t.Fatalf("sync segment rejected by prevalidation: %v", err)
	}
	// The verified state stage still rejects the corrupt link itself.
	before := rep.Store().Len()
	rep.OnVerifiedMessage(0, 2, resp)
	if rep.Store().Len() != before {
		t.Fatal("corrupt sync segment block was installed")
	}
}

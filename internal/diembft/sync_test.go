package diembft_test

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestPartitionedReplicaCatchesUpViaSync: replica 3 is fully partitioned
// for two seconds (all its traffic dropped in both directions), missing
// dozens of blocks. After healing, the block-sync protocol must let it
// fetch the missing ancestry, resume voting, and commit the same chain.
func TestPartitionedReplicaCatchesUpViaSync(t *testing.T) {
	const (
		healAt = 2 * time.Second
		end    = 8 * time.Second
	)
	commits := make(map[types.ReplicaID][]types.BlockID)
	var victimCommitsAfterHeal int
	simCfg := simnet.Config{
		Seed: 51,
		Drop: func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool {
			if now >= healAt {
				return false
			}
			return from == 3 || to == 3
		},
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b.ID())
			if rep == 3 && now > healAt {
				victimCommitsAfterHeal++
			}
		},
	}
	sim, replicas := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(end)

	// The victim must have caught up: hundreds of blocks committed after
	// the heal, not just post-heal proposals.
	if victimCommitsAfterHeal < 100 {
		t.Fatalf("victim committed only %d blocks after healing", victimCommitsAfterHeal)
	}
	// Its committed chain must be a prefix-consistent copy of the others.
	ref := commits[0]
	victim := commits[3]
	if len(victim) == 0 {
		t.Fatal("victim committed nothing")
	}
	// The victim's first commit after healing sits deep in the chain; all
	// its commits must appear at the same position in replica 0's log.
	offset := -1
	for i, id := range ref {
		if id == victim[0] {
			offset = i
			break
		}
	}
	if offset < 0 {
		t.Fatal("victim's first commit not in replica 0's chain")
	}
	for i := 0; i < min(len(victim), len(ref)-offset); i++ {
		if victim[i] != ref[offset+i] {
			t.Fatalf("victim diverges at its commit %d", i)
		}
	}
	// And it should be participating again (voting), i.e. near the tip.
	if replicas[3].CommittedHeight()+10 < replicas[0].CommittedHeight() {
		t.Fatalf("victim stuck at height %d vs %d", replicas[3].CommittedHeight(), replicas[0].CommittedHeight())
	}
	t.Logf("victim recovered: %d commits after heal, height %d vs %d",
		victimCommitsAfterHeal, replicas[3].CommittedHeight(), replicas[0].CommittedHeight())
}

// TestSyncRequestBounded: sync responses are capped, so a freshly joining
// replica pulls the chain in segments rather than one giant message.
func TestSyncResponsesServeSegments(t *testing.T) {
	var srvSegments, maxBlocks int
	simCfg := simnet.Config{
		Seed: 52,
		Drop: func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool {
			return now < 4*time.Second && (from == 3 || to == 3)
		},
		OnCommit: func(types.ReplicaID, time.Duration, *types.Block) {},
	}
	// Count sync traffic via a message-inspecting drop hook on the healed
	// phase (Drop sees every delivery).
	simCfg.Drop = func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool {
		if sr, ok := msg.(*types.SyncResponse); ok {
			srvSegments++
			if len(sr.Blocks) > maxBlocks {
				maxBlocks = len(sr.Blocks)
			}
		}
		return now < 4*time.Second && (from == 3 || to == 3)
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(8 * time.Second)

	if srvSegments == 0 {
		t.Fatal("no sync responses were served")
	}
	if maxBlocks > 128 {
		t.Fatalf("sync segment of %d blocks exceeds the cap", maxBlocks)
	}
	t.Logf("%d sync segments served, largest %d blocks", srvSegments, maxBlocks)
}

package diembft_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/simnet"
	"repro/internal/types"
)

// buildCluster wires n SFT-DiemBFT replicas into a fresh simulator.
func buildCluster(t testing.TB, n, f int, cfgMut func(id types.ReplicaID, c *diembft.Config), simCfg simnet.Config) (*simnet.Sim, []*diembft.Replica) {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 42, crypto.SchemeSim)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	simCfg.N = n
	if simCfg.Latency == nil {
		simCfg.Latency = &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: time.Millisecond}
	}
	sim := simnet.New(simCfg)
	replicas := make([]*diembft.Replica, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		cfg := diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			RoundTimeout:     500 * time.Millisecond,
		}
		if cfgMut != nil {
			cfgMut(id, &cfg)
		}
		rep, err := diembft.New(cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		replicas[i] = rep
		sim.SetEngine(id, rep)
	}
	return sim, replicas
}

func TestClusterCommitsBlocks(t *testing.T) {
	commits := make(map[types.ReplicaID][]*types.Block)
	simCfg := simnet.Config{
		Seed: 1,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b)
		},
	}
	sim, replicas := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(3 * time.Second)

	for id, reps := range commits {
		if len(reps) == 0 {
			t.Fatalf("replica %v committed nothing", id)
		}
	}
	if len(commits) != 4 {
		t.Fatalf("only %d replicas committed", len(commits))
	}
	// All replicas must agree on the committed prefix (safety).
	ref := commits[0]
	for id := types.ReplicaID(1); id < 4; id++ {
		other := commits[id]
		n := min(len(ref), len(other))
		for i := 0; i < n; i++ {
			if ref[i].ID() != other[i].ID() {
				t.Fatalf("divergent commit at index %d: %v vs %v", i, ref[i], other[i])
			}
		}
	}
	// Rounds should have advanced well beyond the timeout path.
	for _, rep := range replicas {
		if rep.Round() < 20 {
			t.Fatalf("replica %v stuck at round %d", rep.ID(), rep.Round())
		}
	}
	t.Logf("committed %d blocks, final round %d", len(ref), replicas[0].Round())
}

func TestStrengthReaches2F(t *testing.T) {
	// In a fault-free 4-replica cluster every block should eventually be
	// 2f-strong committed (Theorem 2 with c = 0).
	best := make(map[types.BlockID]int)
	simCfg := simnet.Config{
		Seed: 2,
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(3 * time.Second)

	reached := 0
	for _, x := range best {
		if x == 2 { // 2f = 2 for f = 1
			reached++
		}
	}
	if reached < 10 {
		t.Fatalf("only %d blocks reached 2f-strong, want >= 10 (tracked %d)", reached, len(best))
	}
}

func TestCrashedLeaderRotatesOut(t *testing.T) {
	commits := make(map[types.ReplicaID]int)
	simCfg := simnet.Config{
		Seed: 3,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep]++
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	// Crash replica 1 early; the protocol must keep committing through
	// timeouts when replica 1's turns come up.
	sim.CrashAt(1, 200*time.Millisecond)
	sim.Run(8 * time.Second)

	for _, id := range []types.ReplicaID{0, 2, 3} {
		if commits[id] < 5 {
			t.Fatalf("replica %v committed only %d blocks after leader crash", id, commits[id])
		}
	}
}

package diembft_test

import (
	"testing"
	"time"

	"repro/internal/diembft"
	"repro/internal/simnet"
	"repro/internal/types"
)

// TestSyncHealsGapBeyondSegmentCap partitions one replica of a 7-node
// cluster long enough that the missed chain exceeds one sync segment (128
// blocks); recovery must proceed through multiple request/response rounds.
func TestSyncHealsGapBeyondSegmentCap(t *testing.T) {
	const healAt = 14 * time.Second
	var segs, maxseg int
	simCfg := simnet.Config{
		Seed: 53,
		Drop: func(from, to types.ReplicaID, msg types.Message, now time.Duration) bool {
			if sr, ok := msg.(*types.SyncResponse); ok {
				segs++
				if len(sr.Blocks) > maxseg {
					maxseg = len(sr.Blocks)
				}
			}
			return now < healAt && (from == 6 || to == 6)
		},
	}
	sim, replicas := buildCluster(t, 7, 2, func(id types.ReplicaID, c *diembft.Config) {
		c.RoundTimeout = 150 * time.Millisecond
	}, simCfg)
	sim.Run(20 * time.Second)

	gapAtHeal := replicas[0].CommittedHeight() // rough upper bound marker
	if replicas[6].CommittedHeight()+10 < replicas[0].CommittedHeight() {
		t.Fatalf("victim stuck at %d vs %d (segs=%d maxseg=%d)",
			replicas[6].CommittedHeight(), replicas[0].CommittedHeight(), segs, maxseg)
	}
	if maxseg > 128 {
		t.Fatalf("segment cap violated: %d", maxseg)
	}
	if segs < 2 {
		t.Fatalf("expected multiple sync segments for a long gap, got %d", segs)
	}
	t.Logf("victim healed to %d/%d via %d segments (max %d blocks)",
		replicas[6].CommittedHeight(), gapAtHeal, segs, maxseg)
}

package diembft

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/obs"
	"repro/internal/pacemaker"
	"repro/internal/statesync"
	"repro/internal/types"
)

// syncMaxBlocks caps how many blocks one sync response may carry, shared by
// the onSyncRequest serve path and warmSegment's warming bound so the two
// cannot drift apart (a larger serve cap with a smaller warm bound would
// silently push the tail of every segment back onto cold engine-loop
// verification). It matches the state-sync protocol's segment cap.
const syncMaxBlocks = statesync.DefaultMaxBlocks

// Prevalidate implements engine.Pipelined: every check on an inbound message
// that reads no mutable replica state — structural sanity, sender
// signatures, and certificate verification. Runtimes call it from transport
// reader goroutines and worker pools concurrently with the event loop; the
// only shared structure it touches is the verified-QC cache, which is
// internally synchronized (and which OnVerifiedMessage's state stage then
// hits instead of re-verifying).
//
// A nil return means the state stage will not need to verify any signature
// on this message; an error means the state stage would have dropped the
// message without producing outputs, so the runtime can discard it.
//
// Bulk sync segments (SyncResponse, StateSyncResponse) are the one
// exception: their accept/reject semantics are prefix-stateful (the engine
// installs blocks link by link and stops at the first bad one), so
// Prevalidate never rejects them. It still pulls their signature work
// off-loop by verifying every segment certificate into the shared QC cache,
// which turns the engine loop's own verification into cache hits.
func (r *Replica) Prevalidate(from types.ReplicaID, msg types.Message) error {
	if !r.cfg.VerifySignatures {
		return nil
	}
	switch m := msg.(type) {
	case *types.Proposal:
		return r.prevalidateProposal(m)
	case *types.VoteMsg:
		return crypto.VerifyVote(r.cfg.Verifier, m.Vote)
	case *types.Timeout:
		return r.prevalidateTimeout(m)
	case *types.RoundEntry:
		return r.prevalidateRoundEntry(m)
	case *types.ExtraVote:
		return crypto.VerifyVote(r.cfg.Verifier, m.Vote)
	case *types.SyncResponse:
		r.warmSegment(m.Blocks, nil)
		return nil
	case *types.StateSyncResponse:
		r.warmSegment(m.Blocks, m.HighQC)
		return nil
	}
	// SyncRequest/StateSyncRequest carry no signatures; unknown message
	// types are the state stage's business to ignore.
	return nil
}

// prevalidateProposal mirrors validProposal's checks exactly — all of them
// are stateless, so the whole validation moves off-loop.
func (r *Replica) prevalidateProposal(p *types.Proposal) error {
	if p.Block == nil || p.Block.Justify == nil {
		return fmt.Errorf("diembft: proposal without block or justify")
	}
	if p.Block.Round != p.Round || p.Block.Proposer != p.Sender {
		return fmt.Errorf("diembft: proposal round/proposer mismatch")
	}
	if r.cfg.LeaderReputationWindow <= 0 && pacemaker.Leader(p.Round, r.cfg.N) != p.Sender {
		// Reputation rotation reads the (mutable) block store, so its leader
		// check stays on the event loop; validProposal always re-checks.
		return fmt.Errorf("diembft: proposal from non-leader %v", p.Sender)
	}
	if p.Block.Justify.Block != p.Block.Parent {
		return fmt.Errorf("diembft: justify does not certify parent")
	}
	if !r.cfg.Verifier.Verify(p.Sender, p.SigningPayload(), p.Signature) {
		return fmt.Errorf("diembft: bad proposal signature from %v", p.Sender)
	}
	// verifyQC structure-checks the certificate itself; no separate
	// CheckStructure pass is needed.
	return r.verifyQC(p.Block.Justify)
}

// prevalidateTimeout mirrors onTimeout's verification: sender signature and
// the attached high QC. Unlike the inline path, no Sender == self exception
// is needed here: a replica's own timeout only reaches it through trusted
// local self-delivery, which runtimes hand to OnVerifiedMessage without
// calling Prevalidate at all — anything arriving here came off the network
// and gets the full check. For honest traffic (network timeouts always name
// a remote sender) the two paths behave identically.
func (r *Replica) prevalidateTimeout(t *types.Timeout) error {
	// Active-mode window and structural checks run BEFORE any signature math:
	// dropping a spammed far-future timeout here costs a comparison, not a
	// verification — that asymmetry is the whole point of the bounded window.
	// The round snapshot may lag the event loop by one event; it only ever
	// lags (rounds never regress), so stale drops are sound and a borderline
	// in-window message is simply re-judged by the state stage.
	if r.pm.Active() {
		if cur := types.Round(r.curRound.Load()); t.Round > cur+r.pm.Window() {
			r.cfg.Obs.OnTimeoutRejected(obs.ReasonFutureWindow)
			return fmt.Errorf("diembft: timeout for round %d beyond window (at %d)", t.Round, cur)
		}
		if t.HighQC == nil {
			r.cfg.Obs.OnTimeoutRejected(obs.ReasonMismatch)
			return fmt.Errorf("diembft: timeout without high QC")
		}
	}
	if t.HighQC != nil && t.HighRound != t.HighQC.Round {
		r.cfg.Obs.OnTimeoutRejected(obs.ReasonMismatch)
		return fmt.Errorf("diembft: timeout high-round claim %d does not match QC round %d", t.HighRound, t.HighQC.Round)
	}
	if !r.cfg.Verifier.Verify(t.Sender, t.SigningPayload(), t.Signature) {
		return fmt.Errorf("diembft: bad timeout signature from %v", t.Sender)
	}
	if t.HighQC != nil {
		// verifyQC structure-checks the certificate itself.
		return r.verifyQC(t.HighQC)
	}
	return nil
}

// prevalidateRoundEntry mirrors onRoundEntry's verification off-loop. The
// cheap structural and window checks run first so forged entries cost no
// signature work; QC verification lands in the shared cache, so the state
// stage's own processQC path turns into cache hits.
func (r *Replica) prevalidateRoundEntry(e *types.RoundEntry) error {
	if !r.pm.Active() {
		return nil // the passive state stage ignores these entirely
	}
	cur := types.Round(r.curRound.Load())
	if e.Round <= cur {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonStale)
		return fmt.Errorf("diembft: stale round entry for %d (at %d)", e.Round, cur)
	}
	if e.Round > cur+r.pm.Window() {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonFutureWindow)
		return fmt.Errorf("diembft: round entry for %d beyond window (at %d)", e.Round, cur)
	}
	hasQC, hasTC := e.Justify != nil, e.TC != nil
	if hasQC == hasTC {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonNoJustify)
		return fmt.Errorf("diembft: round entry needs exactly one justification")
	}
	if (hasQC && e.Justify.Round+1 != e.Round) || (hasTC && e.TC.Round+1 != e.Round) {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonBadJustify)
		return fmt.Errorf("diembft: round entry justification does not prove round %d", e.Round)
	}
	if !r.cfg.Verifier.Verify(e.Sender, e.SigningPayload(), e.Signature) {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonBadSignature)
		return fmt.Errorf("diembft: bad round entry signature from %v", e.Sender)
	}
	if hasQC {
		if err := r.verifyQC(e.Justify); err != nil {
			r.cfg.Obs.OnRoundEntryRejected(obs.ReasonBadJustify)
			return err
		}
		return nil
	}
	if err := crypto.VerifyTC(r.cfg.Verifier, e.TC, r.cfg.quorum()); err != nil {
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonBadJustify)
		return err
	}
	return nil
}

// warmSegment verifies a sync segment's certificates into the shared QC
// cache without judging the segment — entries that fail are simply not
// cached and the state stage rejects them with its usual link-by-link
// semantics. The warm is bounded the same way the state stage's work is:
// honest serves cap segments at statesync.DefaultMaxBlocks, and a segment
// is rejected at its first bad certificate, so warming beyond either bound
// would only hand a Byzantine peer a CPU-amplification vector (thousands of
// garbage QCs burned on a reader goroutine for one cheap frame).
func (r *Replica) warmSegment(blocks []*types.Block, highQC *types.QC) {
	if r.qcCache == nil {
		return
	}
	if len(blocks) > syncMaxBlocks {
		blocks = blocks[:syncMaxBlocks]
	}
	for _, b := range blocks {
		if b == nil || b.Justify == nil {
			continue
		}
		if err := r.verifyQC(b.Justify); err != nil {
			return
		}
	}
	if highQC != nil {
		_ = r.verifyQC(highQC)
	}
}

package diembft

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/pacemaker"
	"repro/internal/statesync"
	"repro/internal/types"
)

// syncMaxBlocks caps how many blocks one sync response may carry, shared by
// the onSyncRequest serve path and warmSegment's warming bound so the two
// cannot drift apart (a larger serve cap with a smaller warm bound would
// silently push the tail of every segment back onto cold engine-loop
// verification). It matches the state-sync protocol's segment cap.
const syncMaxBlocks = statesync.DefaultMaxBlocks

// Prevalidate implements engine.Pipelined: every check on an inbound message
// that reads no mutable replica state — structural sanity, sender
// signatures, and certificate verification. Runtimes call it from transport
// reader goroutines and worker pools concurrently with the event loop; the
// only shared structure it touches is the verified-QC cache, which is
// internally synchronized (and which OnVerifiedMessage's state stage then
// hits instead of re-verifying).
//
// A nil return means the state stage will not need to verify any signature
// on this message; an error means the state stage would have dropped the
// message without producing outputs, so the runtime can discard it.
//
// Bulk sync segments (SyncResponse, StateSyncResponse) are the one
// exception: their accept/reject semantics are prefix-stateful (the engine
// installs blocks link by link and stops at the first bad one), so
// Prevalidate never rejects them. It still pulls their signature work
// off-loop by verifying every segment certificate into the shared QC cache,
// which turns the engine loop's own verification into cache hits.
func (r *Replica) Prevalidate(from types.ReplicaID, msg types.Message) error {
	if !r.cfg.VerifySignatures {
		return nil
	}
	switch m := msg.(type) {
	case *types.Proposal:
		return r.prevalidateProposal(m)
	case *types.VoteMsg:
		return crypto.VerifyVote(r.cfg.Verifier, m.Vote)
	case *types.Timeout:
		return r.prevalidateTimeout(m)
	case *types.ExtraVote:
		return crypto.VerifyVote(r.cfg.Verifier, m.Vote)
	case *types.SyncResponse:
		r.warmSegment(m.Blocks, nil)
		return nil
	case *types.StateSyncResponse:
		r.warmSegment(m.Blocks, m.HighQC)
		return nil
	}
	// SyncRequest/StateSyncRequest carry no signatures; unknown message
	// types are the state stage's business to ignore.
	return nil
}

// prevalidateProposal mirrors validProposal's checks exactly — all of them
// are stateless, so the whole validation moves off-loop.
func (r *Replica) prevalidateProposal(p *types.Proposal) error {
	if p.Block == nil || p.Block.Justify == nil {
		return fmt.Errorf("diembft: proposal without block or justify")
	}
	if p.Block.Round != p.Round || p.Block.Proposer != p.Sender {
		return fmt.Errorf("diembft: proposal round/proposer mismatch")
	}
	if pacemaker.Leader(p.Round, r.cfg.N) != p.Sender {
		return fmt.Errorf("diembft: proposal from non-leader %v", p.Sender)
	}
	if p.Block.Justify.Block != p.Block.Parent {
		return fmt.Errorf("diembft: justify does not certify parent")
	}
	if !r.cfg.Verifier.Verify(p.Sender, p.SigningPayload(), p.Signature) {
		return fmt.Errorf("diembft: bad proposal signature from %v", p.Sender)
	}
	// verifyQC structure-checks the certificate itself; no separate
	// CheckStructure pass is needed.
	return r.verifyQC(p.Block.Justify)
}

// prevalidateTimeout mirrors onTimeout's verification: sender signature and
// the attached high QC. Unlike the inline path, no Sender == self exception
// is needed here: a replica's own timeout only reaches it through trusted
// local self-delivery, which runtimes hand to OnVerifiedMessage without
// calling Prevalidate at all — anything arriving here came off the network
// and gets the full check. For honest traffic (network timeouts always name
// a remote sender) the two paths behave identically.
func (r *Replica) prevalidateTimeout(t *types.Timeout) error {
	if !r.cfg.Verifier.Verify(t.Sender, t.SigningPayload(), t.Signature) {
		return fmt.Errorf("diembft: bad timeout signature from %v", t.Sender)
	}
	if t.HighQC != nil {
		// verifyQC structure-checks the certificate itself.
		return r.verifyQC(t.HighQC)
	}
	return nil
}

// warmSegment verifies a sync segment's certificates into the shared QC
// cache without judging the segment — entries that fail are simply not
// cached and the state stage rejects them with its usual link-by-link
// semantics. The warm is bounded the same way the state stage's work is:
// honest serves cap segments at statesync.DefaultMaxBlocks, and a segment
// is rejected at its first bad certificate, so warming beyond either bound
// would only hand a Byzantine peer a CPU-amplification vector (thousands of
// garbage QCs burned on a reader goroutine for one cheap frame).
func (r *Replica) warmSegment(blocks []*types.Block, highQC *types.QC) {
	if r.qcCache == nil {
		return
	}
	if len(blocks) > syncMaxBlocks {
		blocks = blocks[:syncMaxBlocks]
	}
	for _, b := range blocks {
		if b == nil || b.Justify == nil {
			continue
		}
		if err := r.verifyQC(b.Justify); err != nil {
			return
		}
	}
	if highQC != nil {
		_ = r.verifyQC(highQC)
	}
}

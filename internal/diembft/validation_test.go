package diembft_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

// soloReplica builds one replica engine for direct white-box event feeding.
func soloReplica(t *testing.T, id types.ReplicaID, n, f int, ring *crypto.KeyRing) *diembft.Replica {
	t.Helper()
	rep, err := diembft.New(diembft.Config{
		ID:               id,
		N:                n,
		F:                f,
		Signer:           ring.Signer(id),
		Verifier:         ring,
		VerifySignatures: true,
		SFT:              true,
		RoundTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// hasVote reports whether any output is a vote send.
func hasVote(outs []engine.Output) bool {
	for _, o := range outs {
		if s, ok := o.(engine.Send); ok {
			if _, isVote := s.Msg.(*types.VoteMsg); isVote {
				return true
			}
		}
	}
	return false
}

// genuineProposal builds a correctly signed round-1 proposal from replica 0.
func genuineProposal(ring *crypto.KeyRing, payloadTag uint32) *types.Proposal {
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 5,
		types.Payload{Txns: []types.Transaction{{Sender: payloadTag}}}, nil)
	p := &types.Proposal{Block: b, Round: 1, Sender: 0}
	p.Signature = ring.Signer(0).Sign(p.SigningPayload())
	return p
}

func TestRejectsForgedProposalSignature(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	p := genuineProposal(ring, 1)
	p.Signature = ring.Signer(2).Sign(p.SigningPayload()) // wrong key
	if hasVote(rep.OnMessage(0, 0, p)) {
		t.Fatal("voted for a proposal with a forged signature")
	}
	good := genuineProposal(ring, 1)
	if !hasVote(rep.OnMessage(0, 0, good)) {
		t.Fatal("did not vote for a genuine proposal")
	}
}

func TestRejectsWrongLeader(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	// Replica 2 proposes in round 1, but round 1 belongs to replica 0.
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 2, 5, types.Payload{}, nil)
	p := &types.Proposal{Block: b, Round: 1, Sender: 2}
	p.Signature = ring.Signer(2).Sign(p.SigningPayload())
	if hasVote(rep.OnMessage(0, 2, p)) {
		t.Fatal("voted for a proposal from the wrong leader")
	}
}

func TestVotesOncePerRound(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	// Two different valid-looking proposals for round 1 from the leader
	// (an equivocation): only the first gets a vote.
	p1 := genuineProposal(ring, 1)
	p2 := genuineProposal(ring, 2)
	if !hasVote(rep.OnMessage(0, 0, p1)) {
		t.Fatal("first proposal not voted")
	}
	if hasVote(rep.OnMessage(0, 0, p2)) {
		t.Fatal("voted twice in one round")
	}
}

func TestRejectsProposalWithInvalidJustify(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	// Round-2 block justified by a QC with forged vote signatures.
	g := types.Genesis()
	b1 := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 5, types.Payload{}, nil)
	var votes []types.Vote
	for i := 0; i < 3; i++ {
		v := types.Vote{Block: b1.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = []byte("forged")
		votes = append(votes, v)
	}
	badQC := &types.QC{Block: b1.ID(), Round: 1, Height: 1, Votes: votes}
	b2 := types.NewBlock(b1.ID(), badQC, 2, 2, 1, 6, types.Payload{}, nil)
	p := &types.Proposal{Block: b2, Round: 2, Sender: 1}
	p.Signature = ring.Signer(1).Sign(p.SigningPayload())

	// Even with the parent present, the forged QC must be rejected.
	gp := genuineProposal(ring, 1)
	rep.OnMessage(0, 0, gp)
	if hasVote(rep.OnMessage(0, 1, p)) {
		t.Fatal("voted for a proposal with a forged justify QC")
	}
}

func TestOrphanProposalsFlushInOrder(t *testing.T) {
	// Deliver proposals out of order (child before parent): the replica
	// must buffer the orphan and process it once the parent arrives.
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)

	// Drive a 4-replica simulated cluster and collect replica 3's commits
	// while reordering its deliveries via a jittery latency model with a
	// huge spread.
	commits := 0
	sim := simnet.New(simnet.Config{
		N:       4,
		Latency: &simnet.UniformModel{Base: time.Millisecond, Jitter: 40 * time.Millisecond},
		Seed:    4,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep == 3 {
				commits++
			}
		},
	})
	for i := 0; i < 4; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID: id, N: 4, F: 1,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			RoundTimeout:     800 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.SetEngine(id, rep)
	}
	sim.Run(10 * time.Second)
	if commits < 20 {
		t.Fatalf("reordered delivery broke progress: %d commits", commits)
	}
}

func TestDeterministicRuns(t *testing.T) {
	// The same seed must yield the exact same commit sequence.
	run := func(seed int64) []types.BlockID {
		var got []types.BlockID
		simCfg := simnet.Config{
			Seed: seed,
			OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
				if rep == 0 {
					got = append(got, b.ID())
				}
			},
		}
		sim, _ := buildCluster(t, 4, 1, nil, simCfg)
		sim.Run(2 * time.Second)
		return got
	}
	a, b := run(77), run(77)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("commit %d differs across identical seeds", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	base := diembft.Config{
		ID: 0, N: 4, F: 1,
		Signer: ring.Signer(0), Verifier: ring,
		RoundTimeout: time.Second,
	}
	bad := base
	bad.N = 5
	if _, err := diembft.New(bad); err == nil {
		t.Error("accepted n != 3f+1")
	}
	bad = base
	bad.Signer = nil
	if _, err := diembft.New(bad); err == nil {
		t.Error("accepted nil signer")
	}
	bad = base
	bad.RoundTimeout = 0
	if _, err := diembft.New(bad); err == nil {
		t.Error("accepted zero timeout")
	}
	bad = base
	bad.SFT, bad.FBFT = true, true
	if _, err := diembft.New(bad); err == nil {
		t.Error("accepted SFT+FBFT")
	}
	if _, err := diembft.New(base); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

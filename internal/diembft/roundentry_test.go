package diembft_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/obs"
	"repro/internal/types"
)

// activeReplica builds one replica with the attack-hardened pacemaker on,
// reporting rejections into sink (nil is fine).
func activeReplica(t *testing.T, id types.ReplicaID, n, f int, ring *crypto.KeyRing, sink *obs.Obs) *diembft.Replica {
	t.Helper()
	rep, err := diembft.New(diembft.Config{
		ID:               id,
		N:                n,
		F:                f,
		Signer:           ring.Signer(id),
		Verifier:         ring,
		VerifySignatures: true,
		SFT:              true,
		RoundTimeout:     time.Second,
		ActivePacemaker:  true,
		Obs:              sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func signedEntry(ring *crypto.KeyRing, e *types.RoundEntry) *types.RoundEntry {
	e.Signature = ring.Signer(e.Sender).Sign(e.SigningPayload())
	return e
}

// round1QC assembles a genuine 3-vote certificate for the round-1 block.
func round1QC(ring *crypto.KeyRing, b *types.Block) *types.QC {
	var votes []types.Vote
	for i := 0; i < 3; i++ {
		v := types.Vote{Block: b.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = ring.Signer(v.Voter).Sign(v.SigningPayload())
		votes = append(votes, v)
	}
	return &types.QC{Block: b.ID(), Round: 1, Height: 1, Votes: votes}
}

// genuineTC builds a verifiable timeout certificate for round 1 out of three
// properly signed timeouts.
func genuineTC(ring *crypto.KeyRing) *types.TC {
	g := types.Genesis()
	gqc := types.NewGenesisQC(g.ID())
	var timeouts []*types.Timeout
	for _, id := range []types.ReplicaID{0, 2, 3} {
		to := &types.Timeout{Round: 1, HighQC: gqc, HighRound: 0, Sender: id}
		to.Signature = ring.Signer(id).Sign(to.SigningPayload())
		timeouts = append(timeouts, to)
	}
	return types.NewTC(1, timeouts)
}

// TestRoundEntryRejectsUnjustified drives every rejection class through the
// engine path: naked claims, double justifications, justifications for the
// wrong round, rounds beyond the future window, forged sender signatures and
// forged TC attestations all leave the round untouched and bump the counter.
func TestRoundEntryRejectsUnjustified(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	sink := obs.New(obs.Options{N: 4, F: 1})
	rep := activeReplica(t, 1, 4, 1, ring, sink)
	rep.Init(0)

	good := genuineProposal(ring, 1)
	qc := round1QC(ring, good.Block)
	tc := genuineTC(ring)

	forgedTC := &types.TC{Round: 1, Attestations: []types.TCAttestation{
		{Sender: 0, HighRound: 0, Signature: []byte("forged")},
		{Sender: 2, HighRound: 0, Signature: []byte("forged")},
		{Sender: 3, HighRound: 0, Signature: []byte("forged")},
	}}

	cases := []struct {
		name  string
		entry *types.RoundEntry
	}{
		{"naked claim", &types.RoundEntry{Round: 2, Sender: 2}},
		{"both justifications", &types.RoundEntry{Round: 2, Justify: qc, TC: tc, Sender: 2}},
		{"qc for the wrong round", &types.RoundEntry{Round: 3, Justify: qc, Sender: 2}},
		{"tc for the wrong round", &types.RoundEntry{Round: 3, TC: tc, Sender: 2}},
		{"beyond the future window", &types.RoundEntry{Round: 100, TC: &types.TC{Round: 99}, Sender: 2}},
		{"forged tc attestations", &types.RoundEntry{Round: 2, TC: forgedTC, Sender: 2}},
	}
	for i, tcase := range cases {
		rep.OnMessage(0, 2, signedEntry(ring, tcase.entry))
		if got := rep.Round(); got != 1 {
			t.Fatalf("%s: advanced to round %d", tcase.name, got)
		}
		if got := sink.RoundEntryRejections(); got != int64(i+1) {
			t.Fatalf("%s: rejection counter %d, want %d", tcase.name, got, i+1)
		}
	}

	// Forged outer signature on an otherwise-valid entry.
	bad := &types.RoundEntry{Round: 2, TC: tc, Sender: 2}
	bad.Signature = ring.Signer(3).Sign(bad.SigningPayload())
	rep.OnMessage(0, 2, bad)
	if got := rep.Round(); got != 1 {
		t.Fatalf("forged sender signature: advanced to round %d", got)
	}
}

// TestRoundEntryFollowsQCJustification: a peer's announcement carrying the
// QC that certifies round 1 legally moves the replica into round 2.
func TestRoundEntryFollowsQCJustification(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := activeReplica(t, 1, 4, 1, ring, nil)
	rep.Init(0)

	good := genuineProposal(ring, 1)
	if !hasVote(rep.OnMessage(0, 0, good)) {
		t.Fatal("did not vote for the genuine proposal")
	}
	qc := round1QC(ring, good.Block)
	rep.OnMessage(0, 2, signedEntry(ring, &types.RoundEntry{Round: 2, Justify: qc, Sender: 2}))
	if got := rep.Round(); got != 2 {
		t.Fatalf("round %d after QC-justified entry, want 2", got)
	}
}

// TestRoundEntryFollowsTCJustification: 2f+1 verifiable timeout attestations
// for round 1 justify entering round 2.
func TestRoundEntryFollowsTCJustification(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := activeReplica(t, 1, 4, 1, ring, nil)
	rep.Init(0)

	rep.OnMessage(0, 2, signedEntry(ring, &types.RoundEntry{Round: 2, TC: genuineTC(ring), Sender: 2}))
	if got := rep.Round(); got != 2 {
		t.Fatalf("round %d after TC-justified entry, want 2", got)
	}
}

// TestPassiveIgnoresRoundEntry pins the determinism contract: a passive
// (paper-baseline) replica ignores the active protocol's announcements
// entirely, justified or not.
func TestPassiveIgnoresRoundEntry(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := soloReplica(t, 1, 4, 1, ring)
	rep.Init(0)

	rep.OnMessage(0, 2, signedEntry(ring, &types.RoundEntry{Round: 2, TC: genuineTC(ring), Sender: 2}))
	if got := rep.Round(); got != 1 {
		t.Fatalf("passive replica followed a round entry to round %d", got)
	}
}

// TestTimeoutHighRoundMismatchRejected: the signed high-round claim must
// match the certificate the timeout ships, or the message is dropped before
// it can seed a lying TC attestation.
func TestTimeoutHighRoundMismatchRejected(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	sink := obs.New(obs.Options{N: 4, F: 1})
	rep := activeReplica(t, 1, 4, 1, ring, sink)
	rep.Init(0)

	good := genuineProposal(ring, 1)
	qc := round1QC(ring, good.Block)
	to := &types.Timeout{Round: 2, HighQC: qc, HighRound: 5, Sender: 3} // claims r5, QC says r1
	to.Signature = ring.Signer(3).Sign(to.SigningPayload())
	rep.OnMessage(0, 3, to)
	if got := rep.PacemakerStats().Buffered; got != 0 {
		t.Fatalf("mismatched timeout was buffered (%d)", got)
	}
	if sink.RejectedTimeouts() == 0 {
		t.Fatal("mismatch rejection not counted")
	}
}

// TestTimeoutBeyondWindowRejected: in active mode a timeout claiming a round
// far past the local one is dropped (honest peers are never that far ahead);
// the passive baseline buffers the same message.
func TestTimeoutBeyondWindowRejected(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	g := types.Genesis()
	mk := func() *types.Timeout {
		to := &types.Timeout{Round: 100, HighQC: types.NewGenesisQC(g.ID()), HighRound: 0, Sender: 3}
		to.Signature = ring.Signer(3).Sign(to.SigningPayload())
		return to
	}

	active := activeReplica(t, 1, 4, 1, ring, nil)
	active.Init(0)
	active.OnMessage(0, 3, mk())
	if got := active.PacemakerStats().Buffered; got != 0 {
		t.Fatalf("active replica buffered a timeout %d rounds ahead", 99)
	}

	passive := soloReplica(t, 1, 4, 1, ring)
	passive.Init(0)
	passive.OnMessage(0, 3, mk())
	if got := passive.PacemakerStats().Buffered; got != 1 {
		t.Fatalf("passive baseline buffered %d timeouts, want 1", got)
	}
}

package types

import (
	"fmt"
	"math/bits"

	"repro/internal/intervals"
)

// This file adds decoders for the pinned deterministic encodings the rest of
// the package defines (Vote.AppendSigningPayload, QC.Encode, Block ID
// preimages). The encodings are what replicas hash and sign, so they are
// frozen; the write-ahead log (internal/wal, internal/core.Journal) persists
// exactly these bytes and recovery decodes them back. Round-tripping through
// the ID preimage means a decoded block recomputes the identical BlockID.

// Wire format magic prefixes, shared by encoders and decoders.
var (
	voteMagic  = []byte("vote/")
	blockMagic = []byte("block/")
)

// consumeMagic strips an expected prefix from the front of b.
func consumeMagic(b, magic []byte) ([]byte, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("types: bad magic, want %q", magic)
	}
	return b[len(magic):], nil
}

// consumeID reads a BlockID from the front of b.
func consumeID(b []byte) (BlockID, []byte, error) {
	var id BlockID
	if len(b) < len(id) {
		return id, nil, ErrShortBuffer
	}
	copy(id[:], b)
	return id, b[len(id):], nil
}

// Encode appends the full deterministic encoding of the vote — the signing
// payload followed by the length-prefixed signature — and returns the
// extended slice. DecodeVote reverses it.
func (v *Vote) Encode(b []byte) []byte {
	b = v.AppendSigningPayload(b)
	return AppendBytes(b, v.Signature)
}

// decodeVotePayload parses the signing-payload portion of a vote (everything
// Encode writes before the signature) from the front of b.
func decodeVotePayload(b []byte) (Vote, []byte, error) {
	var v Vote
	b, err := consumeMagic(b, voteMagic)
	if err != nil {
		return v, nil, err
	}
	v.Block, b, err = consumeID(b)
	if err != nil {
		return v, nil, err
	}
	r, b, err := ConsumeUint64(b)
	if err != nil {
		return v, nil, err
	}
	h, b, err := ConsumeUint64(b)
	if err != nil {
		return v, nil, err
	}
	voter, b, err := ConsumeUint32(b)
	if err != nil {
		return v, nil, err
	}
	m, b, err := ConsumeUint64(b)
	if err != nil {
		return v, nil, err
	}
	if len(b) < 1 {
		return v, nil, ErrShortBuffer
	}
	flags := b[0]
	b = b[1:]
	v.Round, v.Height, v.Voter, v.Marker = Round(r), Height(h), ReplicaID(voter), Round(m)
	if flags&^(voteFlagIntervals|voteFlagAppHash) != 0 {
		return v, nil, fmt.Errorf("types: bad vote flags %d", flags)
	}
	if flags&voteFlagIntervals != 0 {
		v.HasIntervals = true
		v.Intervals, b, err = intervals.Decode(b)
		if err != nil {
			return v, nil, err
		}
	}
	if flags&voteFlagAppHash != 0 {
		if len(b) < len(v.AppHash) {
			return v, nil, ErrShortBuffer
		}
		copy(v.AppHash[:], b)
		b = b[len(v.AppHash):]
		if !v.HasAppHash() {
			// A zero AppHash must be encoded as flag 0 (the legacy form);
			// accepting a flagged zero would make the encoding ambiguous and
			// break the decode→encode fixpoint the fuzzers pin.
			return v, nil, fmt.Errorf("types: vote flags a zero AppHash")
		}
	}
	return v, b, nil
}

// DecodeVote parses a vote encoded by Vote.Encode from the front of b,
// returning the vote and the remaining bytes. The signature is copied, so
// the vote does not alias b.
func DecodeVote(b []byte) (Vote, []byte, error) {
	v, b, err := decodeVotePayload(b)
	if err != nil {
		return v, nil, err
	}
	sig, b, err := ConsumeBytes(b)
	if err != nil {
		return v, nil, err
	}
	if len(sig) > 0 {
		v.Signature = append([]byte(nil), sig...)
	}
	return v, b, nil
}

// DecodeQC parses a certificate encoded by QC.Encode from the front of b.
func DecodeQC(b []byte) (*QC, []byte, error) {
	q := &QC{}
	var err error
	q.Block, b, err = consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	r, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	h, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	q.Round, q.Height = Round(r), Height(h)
	if n == aggSentinel || n == aggAppSentinel {
		var appHash [32]byte
		if n == aggAppSentinel {
			if len(b) < len(appHash) {
				return nil, nil, ErrShortBuffer
			}
			copy(appHash[:], b)
			b = b[len(appHash):]
			if appHash == ([32]byte{}) {
				return nil, nil, fmt.Errorf("types: compact qc flags a zero AppHash")
			}
		}
		b, err = decodeCompactQC(q, b, appHash)
		if err != nil {
			return nil, nil, err
		}
		return q, b, nil
	}
	if n > 0 {
		// A vote frame is at least its 4-byte length prefix, the 66-byte
		// minimal signing payload, and a 4-byte empty-signature prefix.
		// Bounding the count by that floor caps the slice pre-allocation at
		// ~2x the input size, so a corrupt count fails cleanly instead of
		// attempting a multi-GB allocation during recovery.
		const minVoteFrame = 4 + 66 + 4
		if uint64(n)*minVoteFrame > uint64(len(b)) {
			return nil, nil, ErrShortBuffer
		}
		q.Votes = make([]Vote, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		payload, rest, err := ConsumeBytes(b)
		if err != nil {
			return nil, nil, err
		}
		v, trailing, err := decodeVotePayload(payload)
		if err != nil {
			return nil, nil, err
		}
		if len(trailing) != 0 {
			return nil, nil, fmt.Errorf("types: %d trailing bytes in vote payload", len(trailing))
		}
		sig, rest, err := ConsumeBytes(rest)
		if err != nil {
			return nil, nil, err
		}
		if len(sig) > 0 {
			v.Signature = append([]byte(nil), sig...)
		}
		q.Votes = append(q.Votes, v)
		b = rest
	}
	return q, b, nil
}

// decodeCompactQC parses the compact certificate body (everything after the
// aggSentinel vote-count slot, or after the AppHash that follows an
// aggAppSentinel): signer bitmap, sparse marker overrides, aggregated
// signature. It materializes one vote per bitmap bit, ascending by voter —
// each carrying the certificate-level appHash, which is uniform across the
// votes by CheckStructure — so every consumer of qc.Votes (endorsement
// tracking, quorum comparisons, journal replay) sees the same view as the
// vector form, minus the per-vote signatures, which the compact form does
// not carry.
func decodeCompactQC(q *QC, b []byte, appHash [32]byte) ([]byte, error) {
	words, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, err
	}
	if words < 1 || words > MaxAggWords {
		return nil, fmt.Errorf("types: compact qc bitmap of %d words (max %d)", words, MaxAggWords)
	}
	a := &AggCert{Signers: make([]uint64, words)}
	for i := range a.Signers {
		a.Signers[i], b, err = ConsumeUint64(b)
		if err != nil {
			return nil, err
		}
	}
	voters := a.Count()
	if voters == 0 {
		return nil, fmt.Errorf("types: compact qc with empty signer bitmap")
	}
	q.Agg = a
	q.Votes = make([]Vote, 0, voters)
	for w, word := range a.Signers {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			q.Votes = append(q.Votes, Vote{
				Block:   q.Block,
				Round:   q.Round,
				Height:  q.Height,
				Voter:   ReplicaID(w*64 + bit),
				AppHash: appHash,
			})
		}
	}
	sparse, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, err
	}
	if int(sparse) > voters {
		return nil, fmt.Errorf("types: compact qc with %d overrides for %d voters", sparse, voters)
	}
	prev := -1
	idx := 0
	for i := uint32(0); i < sparse; i++ {
		voter, rest, err := ConsumeUint32(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if int(voter) <= prev || !a.Has(ReplicaID(voter)) {
			return nil, fmt.Errorf("types: compact qc override for voter %d out of order or unset", voter)
		}
		prev = int(voter)
		m, rest, err := ConsumeUint64(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if len(b) < 1 {
			return nil, ErrShortBuffer
		}
		hasIntervals := b[0]
		b = b[1:]
		// Overrides and materialized votes are both ascending by voter, so a
		// single forward scan lines them up.
		for idx < len(q.Votes) && q.Votes[idx].Voter != ReplicaID(voter) {
			idx++
		}
		v := &q.Votes[idx]
		v.Marker = Round(m)
		switch hasIntervals {
		case 0:
		case 1:
			v.HasIntervals = true
			v.Intervals, b, err = intervals.Decode(b)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("types: bad interval flag %d", hasIntervals)
		}
	}
	if len(b) < len(a.Sig) {
		return nil, ErrShortBuffer
	}
	copy(a.Sig[:], b)
	return b[len(a.Sig):], nil
}

// GobEncode routes the gob codec (the TCP transport's envelope encoding)
// through the pinned deterministic QC encoding, so compact certificates ship
// their compact bytes over real sockets instead of gob's structural encoding
// of the materialized vote vector.
func (q *QC) GobEncode() ([]byte, error) { return q.Encode(nil), nil }

// GobDecode reverses GobEncode.
func (q *QC) GobDecode(data []byte) error {
	dec, rest, err := DecodeQC(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("types: %d trailing bytes after gob-decoded qc", len(rest))
	}
	*q = *dec
	return nil
}

// AppendEncoding appends the block's full deterministic encoding — the exact
// SHA-256 preimage of its ID — and returns the extended slice. DecodeBlock
// reverses it, so a decoded block recomputes the identical BlockID.
func (b *Block) AppendEncoding(buf []byte) []byte {
	buf = append(buf, blockMagic...)
	buf = append(buf, b.Parent[:]...)
	if b.Justify != nil {
		buf = append(buf, 1)
		buf = b.Justify.Encode(buf)
	} else {
		buf = append(buf, 0)
	}
	buf = AppendUint64(buf, uint64(b.Round))
	buf = AppendUint64(buf, uint64(b.Height))
	buf = AppendUint32(buf, uint32(b.Proposer))
	buf = AppendUint64(buf, uint64(b.Timestamp))
	buf = b.Payload.Encode(buf)
	buf = AppendUint32(buf, uint32(len(b.CommitLog)))
	for _, rec := range b.CommitLog {
		buf = rec.Encode(buf)
	}
	return buf
}

// DecodeStrengthRecord parses one light-client log entry from the front of b.
func DecodeStrengthRecord(b []byte) (StrengthRecord, []byte, error) {
	var s StrengthRecord
	var err error
	s.Block, b, err = consumeID(b)
	if err != nil {
		return s, nil, err
	}
	h, b, err := ConsumeUint64(b)
	if err != nil {
		return s, nil, err
	}
	r, b, err := ConsumeUint64(b)
	if err != nil {
		return s, nil, err
	}
	x, b, err := ConsumeUint64(b)
	if err != nil {
		return s, nil, err
	}
	s.Height, s.Round, s.X = Height(h), Round(r), int(x)
	return s, b, nil
}

// DecodeBlock parses a block encoded by AppendEncoding from the front of b.
func DecodeBlock(b []byte) (*Block, []byte, error) {
	b, err := consumeMagic(b, blockMagic)
	if err != nil {
		return nil, nil, err
	}
	blk := &Block{}
	blk.Parent, b, err = consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, ErrShortBuffer
	}
	hasJustify := b[0]
	b = b[1:]
	switch hasJustify {
	case 0:
	case 1:
		blk.Justify, b, err = DecodeQC(b)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("types: bad justify flag %d", hasJustify)
	}
	r, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	h, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	proposer, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	ts, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	blk.Round, blk.Height = Round(r), Height(h)
	blk.Proposer, blk.Timestamp = ReplicaID(proposer), int64(ts)
	blk.Payload, b, err = DecodePayload(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if n > 0 {
		if uint64(n)*56 > uint64(len(b)) {
			return nil, nil, ErrShortBuffer
		}
		blk.CommitLog = make([]StrengthRecord, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var rec StrengthRecord
		rec, b, err = DecodeStrengthRecord(b)
		if err != nil {
			return nil, nil, err
		}
		blk.CommitLog = append(blk.CommitLog, rec)
	}
	return blk, b, nil
}

package types

import (
	"bytes"
	"testing"

	"repro/internal/intervals"
)

func sampleVote(withIntervals bool) Vote {
	v := Vote{
		Block:     BlockID{1, 2, 3},
		Round:     9,
		Height:    8,
		Voter:     3,
		Marker:    4,
		Signature: []byte("sig"),
	}
	if withIntervals {
		v.HasIntervals = true
		v.Intervals = intervals.New(intervals.Interval{Lo: 1, Hi: 5}, intervals.Interval{Lo: 8, Hi: 9})
	}
	return v
}

// TestSigningPayloadAllocs is the PR-1 allocation guard for vote signing:
// appending the payload into a buffer with sufficient capacity must not
// allocate. Engines hold such a buffer per replica.
func TestSigningPayloadAllocs(t *testing.T) {
	v := sampleVote(false)
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = v.AppendSigningPayload(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendSigningPayload allocates %.1f times, want 0", allocs)
	}
}

// TestQCEncodeAllocs guards the certificate encoding used for block hashing:
// no per-vote allocations once the destination buffer has capacity.
func TestQCEncodeAllocs(t *testing.T) {
	v := sampleVote(false)
	qc := &QC{Block: v.Block, Round: v.Round, Height: v.Height}
	for i := 0; i < 21; i++ {
		w := v
		w.Voter = ReplicaID(i)
		qc.Votes = append(qc.Votes, w)
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		buf = qc.Encode(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("QC.Encode allocates %.1f times, want 0", allocs)
	}
}

// TestSigningPayloadEquivalence pins that the append-style payload is
// byte-identical to the allocating form, for marker and interval votes.
func TestSigningPayloadEquivalence(t *testing.T) {
	for _, withIv := range []bool{false, true} {
		v := sampleVote(withIv)
		direct := v.SigningPayload()
		appended := v.AppendSigningPayload([]byte("prefix/"))
		if !bytes.HasPrefix(appended, []byte("prefix/")) {
			t.Fatal("append variant did not extend the given buffer")
		}
		if !bytes.Equal(direct, appended[len("prefix/"):]) {
			t.Errorf("intervals=%v: payloads differ", withIv)
		}
	}
}

// TestQCEncodeFormat pins the exact wire format of QC.Encode against a
// reference composition of the primitive encoders. Block IDs hash over this
// encoding, so any drift would silently fork every replica.
func TestQCEncodeFormat(t *testing.T) {
	qc := &QC{Block: BlockID{7}, Round: 3, Height: 2}
	for i := 0; i < 3; i++ {
		v := sampleVote(i == 1) // mix marker and interval votes
		v.Voter = ReplicaID(i)
		qc.Votes = append(qc.Votes, v)
	}
	want := qc.Block[:]
	want = AppendUint64(want, uint64(qc.Round))
	want = AppendUint64(want, uint64(qc.Height))
	want = AppendUint32(want, uint32(len(qc.Votes)))
	for _, v := range qc.Votes {
		want = AppendBytes(want, v.SigningPayload())
		want = AppendBytes(want, v.Signature)
	}
	if got := qc.Encode(nil); !bytes.Equal(got, want) {
		t.Errorf("QC.Encode drifted from the reference format:\n got %x\nwant %x", got, want)
	}
}

func BenchmarkSigningPayload(b *testing.B) {
	v := sampleVote(false)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = v.AppendSigningPayload(buf[:0])
	}
}

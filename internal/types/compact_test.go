package types_test

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/intervals"
	"repro/internal/types"
)

// mkCompactQC hand-builds a structurally valid compact certificate over the
// given voters. The aggregate signature bytes are arbitrary — these tests pin
// the wire format, not the crypto (internal/crypto/agg_test.go does that).
func mkCompactQC(voters ...types.ReplicaID) *types.QC {
	var id types.BlockID
	id[0] = 0xAB
	q := &types.QC{Block: id, Round: 7, Height: 6}
	agg := &types.AggCert{}
	for i := range agg.Sig {
		agg.Sig[i] = byte(i + 1)
	}
	words := 1
	for _, v := range voters {
		q.Votes = append(q.Votes, types.Vote{Block: id, Round: 7, Height: 6, Voter: v})
		if w := int(v)/64 + 1; w > words {
			words = w
		}
	}
	agg.Signers = make([]uint64, words)
	for _, v := range voters {
		agg.Signers[v>>6] |= 1 << (v & 63)
	}
	q.Agg = agg
	return q
}

// Offsets into the compact encoding: 48-byte header (block, round, height),
// 4-byte sentinel, then word count / bitmap / sparse table / signature.
const (
	compactWordsOff  = 48 + 4
	compactBitmapOff = compactWordsOff + 4
)

func TestCompactQCEncodeDecodeRoundTrip(t *testing.T) {
	q := mkCompactQC(1, 5, 64)
	q.Votes[1].Marker = 9
	q.Votes[2].HasIntervals = true
	q.Votes[2].Intervals = intervals.New(intervals.Interval{Lo: 3, Hi: 9})

	enc := q.Encode(nil)
	dec, rest, err := types.DecodeQC(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d trailing)", err, len(rest))
	}
	if dec.Agg == nil {
		t.Fatal("compact form decoded without Agg")
	}
	if dec.Agg.Sig != q.Agg.Sig {
		t.Fatal("aggregate signature did not round-trip")
	}
	if len(dec.Votes) != 3 {
		t.Fatalf("materialized %d votes, want 3", len(dec.Votes))
	}
	for i, want := range []types.ReplicaID{1, 5, 64} {
		v := dec.Votes[i]
		if v.Voter != want {
			t.Fatalf("vote %d voter = %v, want %v (ascending order)", i, v.Voter, want)
		}
		if v.Block != q.Block || v.Round != q.Round || v.Height != q.Height {
			t.Fatalf("vote %d header fields not inherited from the QC", i)
		}
		if v.Signature != nil {
			t.Fatalf("vote %d materialized with a signature", i)
		}
	}
	if dec.Votes[0].Marker != 0 || dec.Votes[1].Marker != 9 {
		t.Fatalf("markers did not round-trip: %d, %d", dec.Votes[0].Marker, dec.Votes[1].Marker)
	}
	if !dec.Votes[2].HasIntervals || !dec.Votes[2].Intervals.Contains(5) {
		t.Fatal("interval set did not round-trip")
	}
	if err := dec.CheckStructure(3); err != nil {
		t.Fatalf("decoded compact QC fails structure check: %v", err)
	}
	if e2 := dec.Encode(nil); !bytes.Equal(enc, e2) {
		t.Fatalf("re-encode differs:\n e1: %x\n e2: %x", enc, e2)
	}
	if got := q.Size(); got != len(enc) {
		t.Fatalf("Size() = %d, encoded %d bytes", got, len(enc))
	}
}

// TestCompactQCGobRoundTrip pins that the gob path (the TCP transport's
// codec) ships the versioned wire encoding for both certificate forms.
func TestCompactQCGobRoundTrip(t *testing.T) {
	for name, q := range map[string]*types.QC{
		"compact": mkCompactQC(0, 1, 2),
		"vector":  seedQC(),
		"genesis": types.NewGenesisQC(types.BlockID{}),
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(q); err != nil {
			t.Fatalf("%s: gob encode: %v", name, err)
		}
		var dec types.QC
		if err := gob.NewDecoder(&buf).Decode(&dec); err != nil {
			t.Fatalf("%s: gob decode: %v", name, err)
		}
		if !bytes.Equal(q.Encode(nil), dec.Encode(nil)) {
			t.Fatalf("%s: gob round-trip changed the canonical encoding", name)
		}
	}
}

// TestCompactQCSizeFlat is the hard-failing size guard behind the O(1)
// certificate claim (`make bench-guard` runs it): a steady-state compact QC
// must encode to the same byte count at n=31 and n=103 except for the one
// extra bitmap word a >64-replica committee needs. If a per-signer field
// ever leaks back into the compact encoding, this fails.
func TestCompactQCSizeFlat(t *testing.T) {
	size := func(n int) int {
		f := (n - 1) / 3
		voters := make([]types.ReplicaID, 2*f+1)
		for i := range voters {
			voters[i] = types.ReplicaID(i)
		}
		q := mkCompactQC(voters...)
		enc := q.Encode(nil)
		if got := q.Size(); got != len(enc) {
			t.Fatalf("n=%d: Size() = %d, encoded %d bytes", n, got, len(enc))
		}
		return len(enc)
	}
	small, large := size(31), size(103)
	if small != 100 {
		t.Errorf("compact QC at n=31 encodes to %d bytes, want 100", small)
	}
	if large != 108 {
		t.Errorf("compact QC at n=103 encodes to %d bytes, want 108", large)
	}
	// One u64 bitmap word per 64 replicas is the only growth allowed.
	if allowed := 8 * ((103+63)/64 - (31+63)/64); large-small > allowed {
		t.Fatalf("compact QC grew %d bytes from n=31 to n=103 (allowed %d) — not O(1)", large-small, allowed)
	}
}

func TestCompactQCDecodeRejects(t *testing.T) {
	base := mkCompactQC(0, 1, 2)
	base.Votes[1].Marker = 4
	base.Votes[2].Marker = 5
	enc := base.Encode(nil)
	if _, rest, err := types.DecodeQC(enc); err != nil || len(rest) != 0 {
		t.Fatalf("baseline does not decode: %v", err)
	}
	// Sparse table layout for this QC: one bitmap word, so the sparse count
	// sits right after it and entries are (voter u32, marker u64, flag u8).
	sparseOff := compactBitmapOff + 8
	entryOff := sparseOff + 4
	secondVoterOff := entryOff + 13

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), enc...))
		if _, _, err := types.DecodeQC(b); err == nil {
			t.Errorf("%s: decoder accepted corrupt compact QC", name)
		}
	}
	mutate("zero bitmap words", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[compactWordsOff:], 0)
		return b
	})
	mutate("word count above MaxAggWords", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[compactWordsOff:], types.MaxAggWords+1)
		return b
	})
	mutate("empty bitmap", func(b []byte) []byte {
		binary.BigEndian.PutUint64(b[compactBitmapOff:], 0)
		return b
	})
	mutate("sparse count above popcount", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[sparseOff:], 4)
		return b
	})
	mutate("duplicate sparse voter", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[secondVoterOff:], 1) // repeats the first entry's voter
		return b
	})
	mutate("sparse voter with unset bit", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[secondVoterOff:], 9)
		return b
	})
	mutate("truncated aggregate signature", func(b []byte) []byte {
		return b[:len(b)-1]
	})
}

// TestCompactQCStructureChecks covers the bitmap ↔ votes consistency rules
// CheckStructure enforces on in-memory compact certificates.
func TestCompactQCStructureChecks(t *testing.T) {
	if err := mkCompactQC(0, 1, 2).CheckStructure(3); err != nil {
		t.Fatalf("valid compact QC rejected: %v", err)
	}

	// Sub-quorum popcount: 3 signers can never satisfy quorum 4.
	if err := mkCompactQC(0, 1, 2).CheckStructure(4); err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Errorf("sub-quorum compact QC passed: %v", err)
	}

	// Extra bit with no matching vote: popcount disagrees with the vote set.
	q := mkCompactQC(0, 1, 2)
	q.Agg.Signers[0] |= 1 << 10
	if err := q.CheckStructure(3); err == nil {
		t.Error("bitmap/vote count mismatch passed")
	}

	// A vote whose bit is missing from the bitmap.
	q = mkCompactQC(0, 1, 2)
	q.Agg.Signers[0] &^= 1 << 2 // clear voter 2's bit...
	q.Agg.Signers[0] |= 1 << 9  // ...keep popcount intact
	if err := q.CheckStructure(3); err == nil {
		t.Error("vote missing from bitmap passed")
	}

	// Oversized bitmap.
	q = mkCompactQC(0, 1, 2)
	q.Agg.Signers = append(q.Agg.Signers, make([]uint64, types.MaxAggWords)...)
	if err := q.CheckStructure(3); err == nil {
		t.Error("bitmap above MaxAggWords passed")
	}
}

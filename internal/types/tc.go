package types

import (
	"fmt"
	"sort"
)

// TCAttestation is one replica's contribution to a timeout certificate: the
// (sender, highest-QC-round) pair under the sender's timeout signature. The
// signature covers TimeoutSigningPayload(round, sender, highRound), i.e. the
// exact bytes the sender signed on its Timeout message, so a TC is verifiable
// without shipping the 2f+1 full HighQC certificates.
type TCAttestation struct {
	Sender    ReplicaID
	HighRound Round
	Signature []byte
}

// TC is a timeout certificate: 2f+1 distinct signed timeouts for one round,
// reduced to their attestations. It proves that a quorum gave up on Round —
// legal justification for entering Round+1 — and its highest attested QC
// round bounds what the next leader may extend (a leader proposing below
// MaxHighRound after a TC is discarding certified work and is rejected).
type TC struct {
	Round        Round
	Attestations []TCAttestation
}

// NewTC assembles a certificate from 2f+1 collected timeouts, attestations
// sorted ascending by sender so the encoding is deterministic regardless of
// arrival order.
func NewTC(round Round, timeouts []*Timeout) *TC {
	tc := &TC{Round: round, Attestations: make([]TCAttestation, 0, len(timeouts))}
	for _, t := range timeouts {
		tc.Attestations = append(tc.Attestations, TCAttestation{
			Sender:    t.Sender,
			HighRound: t.HighRound,
			Signature: t.Signature,
		})
	}
	sort.Slice(tc.Attestations, func(i, j int) bool {
		return tc.Attestations[i].Sender < tc.Attestations[j].Sender
	})
	return tc
}

// MaxHighRound returns the highest QC round any attester claimed — the floor
// a TC-justified proposal must extend.
func (tc *TC) MaxHighRound() Round {
	var high Round
	for i := range tc.Attestations {
		if r := tc.Attestations[i].HighRound; r > high {
			high = r
		}
	}
	return high
}

// CheckStructure validates everything about the TC that does not require
// cryptography: at least quorum attestations, ascending distinct senders
// (which also pins the deterministic encoding order), and no attested QC
// round at or above the certificate's own round.
func (tc *TC) CheckStructure(quorum int) error {
	if len(tc.Attestations) < quorum {
		return fmt.Errorf("tc r%d: %d attestations < quorum %d", tc.Round, len(tc.Attestations), quorum)
	}
	prev := -1
	for i := range tc.Attestations {
		a := &tc.Attestations[i]
		if int(a.Sender) <= prev {
			return fmt.Errorf("tc r%d: attester %s out of order or duplicated", tc.Round, a.Sender)
		}
		prev = int(a.Sender)
		if a.HighRound >= tc.Round {
			return fmt.Errorf("tc r%d: attested high round %d not below certificate round", tc.Round, a.HighRound)
		}
	}
	return nil
}

// Size returns the modeled wire size of the TC in bytes.
func (tc *TC) Size() int {
	n := len(tcMagic) + 8 + 4
	for i := range tc.Attestations {
		n += 4 + 8 + 4 + len(tc.Attestations[i].Signature)
	}
	return n
}

// String renders the TC for logs.
func (tc *TC) String() string {
	return fmt.Sprintf("tc{r%d, %d attestations}", tc.Round, len(tc.Attestations))
}

var tcMagic = []byte("tc/")

// Encode appends the deterministic encoding of the TC — magic, round,
// attestation count, then per-attestation (sender, high round, signature)
// frames — and returns the extended slice. DecodeTC reverses it.
func (tc *TC) Encode(b []byte) []byte {
	b = append(b, tcMagic...)
	b = AppendUint64(b, uint64(tc.Round))
	b = AppendUint32(b, uint32(len(tc.Attestations)))
	for i := range tc.Attestations {
		a := &tc.Attestations[i]
		b = AppendUint32(b, uint32(a.Sender))
		b = AppendUint64(b, uint64(a.HighRound))
		b = AppendBytes(b, a.Signature)
	}
	return b
}

// DecodeTC parses a certificate encoded by TC.Encode from the front of b,
// returning the TC and the remaining bytes. Signatures are copied, so the
// certificate does not alias b.
func DecodeTC(b []byte) (*TC, []byte, error) {
	b, err := consumeMagic(b, tcMagic)
	if err != nil {
		return nil, nil, err
	}
	r, b, err := ConsumeUint64(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	tc := &TC{Round: Round(r)}
	if n > 0 {
		// An attestation frame is at least its 4-byte sender, 8-byte high
		// round, and 4-byte empty-signature prefix. Bounding the count by that
		// floor caps the pre-allocation at ~2x the input size, so a corrupt
		// count fails cleanly instead of attempting a huge allocation.
		const minAttFrame = 4 + 8 + 4
		if uint64(n)*minAttFrame > uint64(len(b)) {
			return nil, nil, ErrShortBuffer
		}
		tc.Attestations = make([]TCAttestation, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var a TCAttestation
		sender, rest, err := ConsumeUint32(b)
		if err != nil {
			return nil, nil, err
		}
		high, rest, err := ConsumeUint64(rest)
		if err != nil {
			return nil, nil, err
		}
		sig, rest, err := ConsumeBytes(rest)
		if err != nil {
			return nil, nil, err
		}
		a.Sender, a.HighRound = ReplicaID(sender), Round(high)
		if len(sig) > 0 {
			a.Signature = append([]byte(nil), sig...)
		}
		tc.Attestations = append(tc.Attestations, a)
		b = rest
	}
	return tc, b, nil
}

// GobEncode routes the gob codec (the TCP transport's envelope encoding)
// through the pinned deterministic TC encoding, mirroring QC.GobEncode.
func (tc *TC) GobEncode() ([]byte, error) { return tc.Encode(nil), nil }

// GobDecode reverses GobEncode.
func (tc *TC) GobDecode(data []byte) error {
	dec, rest, err := DecodeTC(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("types: %d trailing bytes after gob-decoded tc", len(rest))
	}
	*tc = *dec
	return nil
}

// Package types defines the fundamental data types shared by every module
// of the SFT-BFT reproduction: replica/round/height identifiers, blocks,
// transactions, votes, quorum certificates, and the wire messages exchanged
// by the consensus engines.
//
// All types use deterministic binary encodings (see encoding.go) so that
// hashing and signing are stable across platforms and runs.
package types

import (
	"encoding/hex"
	"fmt"
)

// ReplicaID identifies one of the n replicas, in [0, n).
type ReplicaID uint32

// Round is a DiemBFT/Streamlet round (view) number. Genesis has round 0 and
// the first proposed block has round 1, matching the paper's convention that
// the default marker value 0 endorses everything.
type Round uint64

// Height is the position of a block in the chain. Genesis has height 0.
type Height uint64

// BlockID is the collision-resistant hash (SHA-256) of a block's
// deterministic encoding.
type BlockID [32]byte

// ZeroID is the all-zero block ID, used as the parent of genesis.
var ZeroID BlockID

// String renders a short hex prefix, enough to disambiguate in logs.
func (id BlockID) String() string {
	return hex.EncodeToString(id[:4])
}

// IsZero reports whether the ID is the all-zero value.
func (id BlockID) IsZero() bool {
	return id == ZeroID
}

// String implements fmt.Stringer for log readability.
func (r ReplicaID) String() string { return fmt.Sprintf("r%d", uint32(r)) }

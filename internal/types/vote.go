package types

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/intervals"
)

// Vote is a strong-vote ⟨vote, B, r, marker⟩ (Section 3.2) or its
// generalized form ⟨vote, B, r, I⟩ (Section 3.4). A plain DiemBFT vote is a
// strong-vote whose marker is ignored, so one type serves both the baseline
// and the SFT protocols.
//
// In the DiemBFT engines Marker is the largest *round* of any conflicting
// block the voter ever voted for; in the Streamlet engines (Appendix D) the
// same field carries the largest *height* of any conflicting voted block.
type Vote struct {
	Block  BlockID
	Round  Round
	Height Height
	Voter  ReplicaID

	// Marker is the single-marker summary of the voter's conflicting
	// history. Default 0 endorses all ancestors.
	Marker Round

	// Intervals, when HasIntervals is set, is the generalized endorsement
	// set I of Section 3.4. Rounds in I are endorsed.
	Intervals    intervals.Set
	HasIntervals bool

	// AppHash is the state root the voter computed by executing Block before
	// voting (execute-before-vote). The zero hash means "no execution layer":
	// nodes without an application emit it, and the signing payload then
	// degrades to the exact legacy encoding, so pre-execution vectors and
	// fixed-seed determinism pins decode and reproduce unchanged. A non-zero
	// AppHash enters the signing payload, so a certificate over such votes
	// certifies the state, not just the ordering.
	AppHash [32]byte

	Signature []byte
}

// Vote payload flag bits. The trailing flag byte of the signing payload is a
// bitfield: bit 0 marks an interval set (the pre-existing 0/1 flag), bit 1
// marks a trailing 32-byte AppHash. Legacy encoders only ever wrote 0 or 1,
// so old vectors decode unchanged and new encoders emit old bytes whenever
// the AppHash is zero.
const (
	voteFlagIntervals = 1 << 0
	voteFlagAppHash   = 1 << 1
)

// HasAppHash reports whether the vote carries an execution state root.
func (v *Vote) HasAppHash() bool { return v.AppHash != ([32]byte{}) }

// SigningPayload returns the deterministic byte string a replica signs to
// produce the vote signature. It covers everything except the signature.
func (v Vote) SigningPayload() []byte {
	return v.AppendSigningPayload(make([]byte, 0, 96))
}

// AppendSigningPayload appends the signing payload to b and returns the
// extended slice. Hot paths (signing and per-vote QC verification) call it
// with a reused scratch buffer so that payload construction is
// allocation-free in steady state.
func (v *Vote) AppendSigningPayload(b []byte) []byte {
	b = append(b, "vote/"...)
	b = append(b, v.Block[:]...)
	b = AppendUint64(b, uint64(v.Round))
	b = AppendUint64(b, uint64(v.Height))
	b = AppendUint32(b, uint32(v.Voter))
	b = AppendUint64(b, uint64(v.Marker))
	var flags byte
	if v.HasIntervals {
		flags |= voteFlagIntervals
	}
	if v.HasAppHash() {
		flags |= voteFlagAppHash
	}
	b = append(b, flags)
	if v.HasIntervals {
		b = v.Intervals.Encode(b)
	}
	if flags&voteFlagAppHash != 0 {
		b = append(b, v.AppHash[:]...)
	}
	return b
}

// Endorses reports whether this strong-vote endorses a block at round
// (or, for Streamlet, height) target on the chain the vote extends.
// Per Figure 4 the vote endorses its own block unconditionally and any
// ancestor whose round exceeds the marker (or lies in the interval set).
// The caller is responsible for the chain-extension check; Endorses only
// evaluates the marker/interval condition.
func (v Vote) Endorses(target Round) bool {
	if target == v.Round {
		// Direct vote: B = B'.
		return true
	}
	if v.HasIntervals {
		return v.Intervals.Contains(uint64(target))
	}
	return v.Marker < target
}

// Size returns the modeled wire size of the vote in bytes. The paper's
// efficiency claim is that a strong-vote adds only one integer (or a small
// interval set) to a regular vote.
func (v Vote) Size() int {
	n := 32 + 8 + 8 + 4 + 8 + 1 + len(v.Signature)
	if v.HasIntervals {
		n += 4 + 16*v.Intervals.Len()
	}
	if v.HasAppHash() {
		n += 32
	}
	return n
}

// String renders the vote for logs.
func (v Vote) String() string {
	if v.HasIntervals {
		return fmt.Sprintf("vote{%s r%d by %s I=%s}", v.Block, v.Round, v.Voter, v.Intervals)
	}
	return fmt.Sprintf("vote{%s r%d by %s m=%d}", v.Block, v.Round, v.Voter, v.Marker)
}

// AggCert is the compact certificate form: one aggregated 32-byte signature
// plus a signer bitmap replaces the per-vote signature vector, making the
// certificate constant-size in the committee (the bitmap grows one u64 per
// 64 replicas). See internal/crypto/agg.go for the aggregation scheme and
// the package doc for the wire layout.
type AggCert struct {
	// Sig is the aggregated signature scalar, big-endian.
	Sig [32]byte
	// Signers is the voter bitmap: bit i of word i/64 set means replica i's
	// vote is aggregated into Sig.
	Signers []uint64
}

// MaxAggWords bounds the signer bitmap at 16 words (1024 replicas), matching
// CheckStructure's stack bitset; decoders reject anything larger before
// allocating.
const MaxAggWords = 16

// Has reports whether replica id's bit is set in the signer bitmap.
func (a *AggCert) Has(id ReplicaID) bool {
	w := int(id) >> 6
	return w < len(a.Signers) && a.Signers[w]&(1<<(id&63)) != 0
}

// Count returns the number of set bits (aggregated voters).
func (a *AggCert) Count() int {
	n := 0
	for _, w := range a.Signers {
		n += bits.OnesCount64(w)
	}
	return n
}

// QC is a quorum certificate: 2f+1 distinct signed strong-votes for one
// block. With SFT enabled it is the paper's strong-QC; the embedded votes
// keep their markers so that every replica can recompute endorsements.
//
// A QC exists in one of two forms. The vector form (Agg == nil) carries the
// full signed votes. The compact form (Agg != nil) carries the aggregated
// signature and signer bitmap instead; Votes is still populated — decoders
// materialize one vote per bitmap bit, markers restored from the sparse
// override table — but the per-vote Signature fields are nil. Everything
// downstream of verification (endorsement tracking, orphan-QC ranking,
// journal replay) reads Votes and works identically on both forms.
type QC struct {
	Block  BlockID
	Round  Round
	Height Height
	Votes  []Vote

	// Agg, when non-nil, marks the compact form.
	Agg *AggCert
}

// NewGenesisQC builds the conventional round-0 certificate for the genesis
// block, treated as valid without votes by convention.
func NewGenesisQC(genesisID BlockID) *QC {
	return &QC{Block: genesisID, Round: 0, Height: 0}
}

// AppHash returns the execution state root the certificate certifies: the
// (structurally uniform) AppHash of its votes. Genesis certificates and
// certificates formed without an execution layer return the zero hash. The
// value is derived from the votes rather than stored, so the certificate can
// never disagree with what its voters actually signed.
func (q *QC) AppHash() [32]byte {
	if len(q.Votes) > 0 {
		return q.Votes[0].AppHash
	}
	return [32]byte{}
}

// RanksHigher reports whether q should replace other as the highest known
// QC. QCs are ranked by round number (Section 2.1).
func (q *QC) RanksHigher(other *QC) bool {
	if other == nil {
		return true
	}
	return q.Round > other.Round
}

// CheckStructure validates everything about the QC that does not require
// cryptography: at least quorum votes, all for the same block and round,
// from distinct voters. Genesis QCs (round 0, no votes) pass by convention.
// Compact QCs additionally require the signer bitmap to agree exactly with
// the materialized vote set.
func (q *QC) CheckStructure(quorum int) error {
	if q.Round == 0 && len(q.Votes) == 0 && q.Agg == nil {
		return nil
	}
	if a := q.Agg; a != nil {
		if len(a.Signers) > MaxAggWords {
			return fmt.Errorf("qc for %s r%d: %d bitmap words exceeds %d", q.Block, q.Round, len(a.Signers), MaxAggWords)
		}
		if a.Count() != len(q.Votes) {
			return fmt.Errorf("qc for %s r%d: bitmap has %d signers, %d votes", q.Block, q.Round, a.Count(), len(q.Votes))
		}
		for i := range q.Votes {
			if !a.Has(q.Votes[i].Voter) {
				return fmt.Errorf("qc for %s r%d: voter %s missing from signer bitmap", q.Block, q.Round, q.Votes[i].Voter)
			}
		}
	}
	if len(q.Votes) < quorum {
		return fmt.Errorf("qc for %s r%d: %d votes < quorum %d", q.Block, q.Round, len(q.Votes), quorum)
	}
	// Duplicate-voter detection runs on every QC a replica receives, so the
	// common case (replica IDs below 1024, i.e. any realistic cluster) uses a
	// stack bitset instead of allocating a map per call.
	var bits [16]uint64
	var seen map[ReplicaID]bool
	for i := range q.Votes {
		v := &q.Votes[i]
		if v.Block != q.Block || v.Round != q.Round {
			return fmt.Errorf("qc for %s r%d: vote %s mismatched", q.Block, q.Round, v)
		}
		// Execute-before-vote: a certificate certifies exactly one state
		// root, so every aggregated vote must carry the same AppHash. A
		// Byzantine leader cannot launder a minority wrong-root vote into a
		// quorum this way.
		if v.AppHash != q.Votes[0].AppHash {
			return fmt.Errorf("qc for %s r%d: vote %s certifies a different AppHash", q.Block, q.Round, v)
		}
		if v.Voter < ReplicaID(len(bits)*64) {
			w, m := v.Voter>>6, uint64(1)<<(v.Voter&63)
			if bits[w]&m != 0 {
				return fmt.Errorf("qc for %s r%d: duplicate voter %s", q.Block, q.Round, v.Voter)
			}
			bits[w] |= m
			continue
		}
		if seen == nil {
			seen = make(map[ReplicaID]bool, len(q.Votes))
		}
		if seen[v.Voter] {
			return fmt.Errorf("qc for %s r%d: duplicate voter %s", q.Block, q.Round, v.Voter)
		}
		seen[v.Voter] = true
	}
	return nil
}

// Voters returns the set of replica IDs whose votes form the certificate.
func (q *QC) Voters() []ReplicaID {
	out := make([]ReplicaID, len(q.Votes))
	for i, v := range q.Votes {
		out[i] = v.Voter
	}
	return out
}

// Size returns the modeled wire size of the QC in bytes. The compact form
// counts its actual encoding (header, bitmap, sparse marker overrides,
// aggregated signature) — constant in the committee size apart from one
// bitmap word per 64 replicas.
func (q *QC) Size() int {
	n := 32 + 8 + 8 + 4
	if q.Agg != nil {
		n += 4 + 8*len(q.Agg.Signers) + 4 + len(q.Agg.Sig)
		if q.AppHash() != ([32]byte{}) {
			n += 32
		}
		for i := range q.Votes {
			v := &q.Votes[i]
			if v.Marker == 0 && !v.HasIntervals {
				continue
			}
			n += 4 + 8 + 1
			if v.HasIntervals {
				n += 4 + 16*v.Intervals.Len()
			}
		}
		return n
	}
	for _, v := range q.Votes {
		n += v.Size()
	}
	return n
}

// aggSentinel marks the compact encoding in the vote-count slot. It can
// never collide with a legacy vote count: DecodeQC bounds real counts by
// input length / minVoteFrame, which 0xFFFFFFFF always exceeds.
// aggAppSentinel (same technique, next value down) marks a compact
// certificate whose body is prefixed with the 32-byte AppHash its votes
// certify — the versioned extension the execution layer rides on, leaving
// pre-execution compact vectors decoding byte-for-byte as before.
const (
	aggSentinel    = 0xFFFFFFFF
	aggAppSentinel = 0xFFFFFFFE
)

// Encode appends a deterministic encoding of the QC, used when hashing the
// block that carries it. Per-vote payloads are appended in place (length
// prefix backfilled) so encoding a QC performs no per-vote allocations.
//
// Versioning: both forms share the header (block, round, height). The vector
// form follows with the vote count and the per-vote payload+signature
// frames. The compact form writes aggSentinel in the count slot, then the
// signer bitmap (word count + words), a sparse override table carrying only
// the votes whose marker state is non-default (voter, marker, interval
// flag/set), and the 32-byte aggregated signature. Steady state — every
// marker 0 — the override table is empty and the encoding is constant-size
// plus one bitmap word per 64 replicas.
func (q *QC) Encode(b []byte) []byte {
	b = append(b, q.Block[:]...)
	b = AppendUint64(b, uint64(q.Round))
	b = AppendUint64(b, uint64(q.Height))
	if a := q.Agg; a != nil {
		if app := q.AppHash(); app != ([32]byte{}) {
			b = AppendUint32(b, aggAppSentinel)
			b = append(b, app[:]...)
		} else {
			b = AppendUint32(b, aggSentinel)
		}
		b = AppendUint32(b, uint32(len(a.Signers)))
		for _, w := range a.Signers {
			b = AppendUint64(b, w)
		}
		mark := len(b)
		b = append(b, 0, 0, 0, 0) // sparse count, backfilled below
		sparse := 0
		for i := range q.Votes {
			v := &q.Votes[i]
			if v.Marker == 0 && !v.HasIntervals {
				continue
			}
			sparse++
			b = AppendUint32(b, uint32(v.Voter))
			b = AppendUint64(b, uint64(v.Marker))
			if v.HasIntervals {
				b = append(b, 1)
				b = v.Intervals.Encode(b)
			} else {
				b = append(b, 0)
			}
		}
		binary.BigEndian.PutUint32(b[mark:], uint32(sparse))
		return append(b, a.Sig[:]...)
	}
	b = AppendUint32(b, uint32(len(q.Votes)))
	for i := range q.Votes {
		v := &q.Votes[i]
		mark := len(b)
		b = append(b, 0, 0, 0, 0) // length prefix, backfilled below
		b = v.AppendSigningPayload(b)
		binary.BigEndian.PutUint32(b[mark:], uint32(len(b)-mark-4))
		b = AppendBytes(b, v.Signature)
	}
	return b
}

// String renders the QC for logs.
func (q *QC) String() string {
	return fmt.Sprintf("qc{%s r%d, %d votes}", q.Block, q.Round, len(q.Votes))
}

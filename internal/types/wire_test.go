package types

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/intervals"
)

func sampleVotes() []Vote {
	id := BlockID{1, 2, 3}
	return []Vote{
		{Block: id, Round: 7, Height: 5, Voter: 3, Marker: 2, Signature: []byte("sig-a")},
		{Block: id, Round: 9, Height: 6, Voter: 0}, // zero marker, no signature
		{
			Block: id, Round: 12, Height: 8, Voter: 11,
			HasIntervals: true,
			Intervals:    intervals.New(intervals.Interval{Lo: 1, Hi: 4}, intervals.Interval{Lo: 8, Hi: 12}),
			Signature:    bytes.Repeat([]byte{0xEE}, 64),
		},
	}
}

func TestVoteEncodeDecodeRoundtrip(t *testing.T) {
	for i, v := range sampleVotes() {
		enc := v.Encode(nil)
		got, rest, err := DecodeVote(enc)
		if err != nil {
			t.Fatalf("vote %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("vote %d: %d trailing bytes", i, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("vote %d roundtrip mismatch:\n got %+v\nwant %+v", i, got, v)
		}
	}
}

func TestVoteDecodeTruncated(t *testing.T) {
	v := sampleVotes()[0]
	enc := v.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeVote(enc[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestQCEncodeDecodeRoundtrip(t *testing.T) {
	votes := sampleVotes()
	id := votes[0].Block
	qc := &QC{Block: id, Round: 7, Height: 5, Votes: votes}
	enc := qc.Encode(nil)
	got, rest, err := DecodeQC(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got, qc) {
		t.Fatalf("qc roundtrip mismatch:\n got %+v\nwant %+v", got, qc)
	}

	// A genesis QC (no votes) must roundtrip too.
	gqc := NewGenesisQC(Genesis().ID())
	got, _, err = DecodeQC(gqc.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, gqc) {
		t.Fatalf("genesis qc mismatch: %+v vs %+v", got, gqc)
	}
}

func TestBlockEncodeDecodeRoundtrip(t *testing.T) {
	g := Genesis()
	qc := NewGenesisQC(g.ID())
	payload := Payload{
		Txns:    []Transaction{{Sender: 4, Seq: 9, Data: []byte("cmd")}, {Sender: 5, Seq: 1}},
		Padding: 4096,
	}
	log := []StrengthRecord{{Block: g.ID(), Height: 0, Round: 0, X: 3}}
	b := NewBlock(g.ID(), qc, 3, 1, 2, 12345, payload, log)

	enc := b.AppendEncoding(nil)
	got, rest, err := DecodeBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// The decoded block must recompute the identical ID: the encoding is the
	// ID preimage, which is what makes WAL/state-sync blocks self-verifying.
	if got.ID() != b.ID() {
		t.Fatalf("decoded block ID %v differs from original %v", got.ID(), b.ID())
	}
	if got.Parent != b.Parent || got.Round != b.Round || got.Height != b.Height ||
		got.Proposer != b.Proposer || got.Timestamp != b.Timestamp {
		t.Fatalf("header mismatch: %+v vs %+v", got, b)
	}
	if !reflect.DeepEqual(got.Payload, b.Payload) || !reflect.DeepEqual(got.CommitLog, b.CommitLog) {
		t.Fatalf("body mismatch")
	}

	// Genesis (nil justify) roundtrip.
	gotG, _, err := DecodeBlock(g.AppendEncoding(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gotG.ID() != g.ID() || gotG.Justify != nil {
		t.Fatalf("genesis roundtrip mismatch")
	}
}

func TestBlockDecodeTruncated(t *testing.T) {
	g := Genesis()
	b := NewBlock(g.ID(), NewGenesisQC(g.ID()), 1, 1, 0, 0, Payload{}, nil)
	enc := b.AppendEncoding(nil)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodeBlock(enc[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

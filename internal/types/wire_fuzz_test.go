package types_test

import (
	"bytes"
	"testing"

	"repro/internal/intervals"
	"repro/internal/types"
)

// Native fuzz targets for the pinned wire decoders. The encodings are what
// replicas hash, sign, persist in the write-ahead log and serve over state
// sync, so the decoders face attacker-controlled bytes; they must never
// panic, never over-allocate, and must round-trip exactly what the encoders
// produced. CI runs a short `-fuzztime` smoke (make fuzz-smoke); the
// nightly workflow fuzzes longer.

func seedVote() types.Vote {
	var id types.BlockID
	for i := range id {
		id[i] = byte(i * 7)
	}
	return types.Vote{
		Block:     id,
		Round:     42,
		Height:    17,
		Voter:     3,
		Marker:    9,
		Signature: []byte("sig-bytes"),
	}
}

func seedIntervalVote() types.Vote {
	v := seedVote()
	v.Marker = 0
	v.HasIntervals = true
	v.Intervals = intervals.New(intervals.Interval{Lo: 3, Hi: 9}, intervals.Interval{Lo: 20, Hi: 25})
	return v
}

func seedQC() *types.QC {
	v1, v2, v3 := seedVote(), seedVote(), seedIntervalVote()
	v2.Voter, v3.Voter = 4, 5
	return &types.QC{Block: v1.Block, Round: v1.Round, Height: v1.Height, Votes: []types.Vote{v1, v2, v3}}
}

func seedBlock() *types.Block {
	qc := seedQC()
	payload := types.Payload{
		Txns:    []types.Transaction{{Sender: 9, Seq: 11, Data: []byte("txn-data")}},
		Padding: 128,
	}
	log := []types.StrengthRecord{{Block: qc.Block, Height: 16, Round: 41, X: 3}}
	return types.NewBlock(qc.Block, qc, 43, 18, 2, 12345, payload, log)
}

func FuzzDecodeVote(f *testing.F) {
	v1, v2 := seedVote(), seedIntervalVote()
	f.Add(v1.Encode(nil))
	f.Add(v2.Encode(nil))
	f.Add([]byte("vote/"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := types.DecodeVote(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		// Decode→encode fixpoint: a decoded vote re-encodes to a canonical
		// form that decodes back to itself byte-for-byte. (Raw input may be
		// non-canonical — interval sets normalize on decode — so the first
		// re-encode need not equal the input.)
		e1 := v.Encode(nil)
		v2, tail, err := types.DecodeVote(e1)
		if err != nil || len(tail) != 0 {
			t.Fatalf("canonical re-encoding failed to decode: %v (%d trailing)", err, len(tail))
		}
		if e2 := v2.Encode(nil); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
	})
}

func FuzzDecodeQC(f *testing.F) {
	f.Add(seedQC().Encode(nil))
	f.Add(types.NewGenesisQC(types.BlockID{}).Encode(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		qc, rest, err := types.DecodeQC(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		e1 := qc.Encode(nil)
		qc2, tail, err := types.DecodeQC(e1)
		if err != nil || len(tail) != 0 {
			t.Fatalf("canonical re-encoding failed to decode: %v (%d trailing)", err, len(tail))
		}
		if e2 := qc2.Encode(nil); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
	})
}

// FuzzDecodeCompactQC drives DecodeQC with compact-form (aggregated) seeds:
// the sentinel count, signer bitmap, sparse marker override table and
// aggregate signature all face attacker-controlled bytes. Same contract as
// the other decoders — never panic, and decode→encode must reach a fixpoint.
func FuzzDecodeCompactQC(f *testing.F) {
	plain := mkCompactQC(0, 1, 2)
	f.Add(plain.Encode(nil))
	marked := mkCompactQC(1, 5, 64)
	marked.Votes[1].Marker = 9
	marked.Votes[2].HasIntervals = true
	marked.Votes[2].Intervals = intervals.New(intervals.Interval{Lo: 3, Hi: 9})
	f.Add(marked.Encode(nil))
	f.Add(marked.Encode(nil)[:60]) // truncated inside the bitmap
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		qc, rest, err := types.DecodeQC(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		if qc.Agg != nil {
			// Compact-form invariants: every materialized vote is bitmap-backed
			// and signature-free.
			for i := range qc.Votes {
				if !qc.Agg.Has(qc.Votes[i].Voter) {
					t.Fatalf("materialized voter %v missing from bitmap", qc.Votes[i].Voter)
				}
				if qc.Votes[i].Signature != nil {
					t.Fatal("compact decode materialized a signature")
				}
			}
			if qc.Agg.Count() != len(qc.Votes) {
				t.Fatalf("bitmap count %d != %d votes", qc.Agg.Count(), len(qc.Votes))
			}
		}
		e1 := qc.Encode(nil)
		qc2, tail, err := types.DecodeQC(e1)
		if err != nil || len(tail) != 0 {
			t.Fatalf("canonical re-encoding failed to decode: %v (%d trailing)", err, len(tail))
		}
		if e2 := qc2.Encode(nil); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
	})
}

func seedTC() *types.TC {
	timeouts := []*types.Timeout{
		{Round: 9, HighRound: 7, Sender: 2, Signature: []byte("sig-2")},
		{Round: 9, HighRound: 5, Sender: 0, Signature: []byte("sig-0")},
		{Round: 9, HighRound: 8, Sender: 5, Signature: []byte("sig-5")},
	}
	return types.NewTC(9, timeouts)
}

// FuzzDecodeTC drives the timeout-certificate decoder: TCs arrive inside
// RoundEntry announcements from arbitrary peers, so the codec faces
// attacker-controlled bytes before any signature check runs. Same contract
// as the other decoders — never panic, never over-allocate on a corrupt
// attestation count, and decode→encode must reach a fixpoint.
func FuzzDecodeTC(f *testing.F) {
	tc := seedTC()
	f.Add(tc.Encode(nil))
	f.Add((&types.TC{Round: 3}).Encode(nil))
	f.Add(tc.Encode(nil)[:20]) // truncated inside the first attestation
	f.Add([]byte("tc/"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tc, rest, err := types.DecodeTC(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		e1 := tc.Encode(nil)
		tc2, tail, err := types.DecodeTC(e1)
		if err != nil || len(tail) != 0 {
			t.Fatalf("canonical re-encoding failed to decode: %v (%d trailing)", err, len(tail))
		}
		if e2 := tc2.Encode(nil); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
		if tc2.MaxHighRound() != tc.MaxHighRound() {
			t.Fatal("re-decoded TC computes a different MaxHighRound")
		}
	})
}

func FuzzDecodeBlock(f *testing.F) {
	f.Add(seedBlock().AppendEncoding(nil))
	f.Add(types.Genesis().AppendEncoding(nil))
	f.Add([]byte("block/"))
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, rest, err := types.DecodeBlock(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		// The encoding is the block's ID preimage: the decode→encode
		// fixpoint pins that a decoded block recomputes one stable ID.
		e1 := blk.AppendEncoding(nil)
		blk2, tail, err := types.DecodeBlock(e1)
		if err != nil || len(tail) != 0 {
			t.Fatalf("canonical re-encoding failed to decode: %v (%d trailing)", err, len(tail))
		}
		if e2 := blk2.AppendEncoding(nil); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
		if blk2.ID() != blk.ID() {
			t.Fatal("re-decoded block computes a different ID")
		}
	})
}

package types

import (
	"encoding/binary"
	"errors"
)

// The encoders in this file produce the deterministic byte strings that are
// hashed into block IDs and signed in votes and timeouts. They are
// append-style (like the strconv.Append* family) to avoid intermediate
// buffers on hot paths.

// ErrShortBuffer is returned by decoders when the input is truncated.
var ErrShortBuffer = errors.New("types: short buffer")

// AppendUint64 appends v in big-endian order.
func AppendUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// AppendUint32 appends v in big-endian order.
func AppendUint32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(b, p []byte) []byte {
	b = AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// ConsumeUint64 reads a big-endian uint64 from the front of b.
func ConsumeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortBuffer
	}
	return binary.BigEndian.Uint64(b[:8]), b[8:], nil
}

// ConsumeUint32 reads a big-endian uint32 from the front of b.
func ConsumeUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrShortBuffer
	}
	return binary.BigEndian.Uint32(b[:4]), b[4:], nil
}

// ConsumeBytes reads a length-prefixed byte string from the front of b.
// The returned slice aliases b.
func ConsumeBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := ConsumeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint32(len(rest)) < n {
		return nil, nil, ErrShortBuffer
	}
	return rest[:n], rest[n:], nil
}

package types

import (
	"crypto/sha256"
	"fmt"
)

// StrengthRecord is one entry of the strong-commit Log a proposal carries
// for light clients (Section 5): it announces that, in the proposer's view,
// block Block at height Height reached strong-commit strength X (in units of
// replicas tolerated, i.e. x of "x-strong").
type StrengthRecord struct {
	Block  BlockID
	Height Height
	Round  Round
	X      int
}

// Encode appends the deterministic encoding of the record.
func (s StrengthRecord) Encode(b []byte) []byte {
	b = append(b, s.Block[:]...)
	b = AppendUint64(b, uint64(s.Height))
	b = AppendUint64(b, uint64(s.Round))
	b = AppendUint64(b, uint64(s.X))
	return b
}

// Block is a chain block B_k = (H(B_{k-1}), qc, txn) per Section 2.1, plus
// the round number, proposer, a virtual-time creation stamp (used by the
// harness to measure commit latency the way the paper does: from block
// creation to commit), and the optional light-client Log.
type Block struct {
	Parent    BlockID
	Justify   *QC // certifies Parent; nil only inside genesis
	Round     Round
	Height    Height
	Proposer  ReplicaID
	Timestamp int64 // virtual nanoseconds at creation
	Payload   Payload
	CommitLog []StrengthRecord

	id BlockID // cached hash of the encoding above
}

// NewBlock assembles a block and computes its ID. justify must certify
// parent (justify.Block == parent).
func NewBlock(parent BlockID, justify *QC, round Round, height Height, proposer ReplicaID, ts int64, payload Payload, log []StrengthRecord) *Block {
	b := &Block{
		Parent:    parent,
		Justify:   justify,
		Round:     round,
		Height:    height,
		Proposer:  proposer,
		Timestamp: ts,
		Payload:   payload,
		CommitLog: log,
	}
	b.id = b.computeID()
	return b
}

// Genesis returns the canonical genesis block: height 0, round 0, no parent.
// Every replica constructs the identical genesis, so its ID agrees
// everywhere without communication.
func Genesis() *Block {
	b := &Block{Round: 0, Height: 0, Proposer: 0, Timestamp: 0}
	b.id = b.computeID()
	return b
}

// ID returns the block's hash, computing and caching it if the block was
// decoded from the wire rather than built with NewBlock.
func (b *Block) ID() BlockID {
	if b.id.IsZero() {
		b.id = b.computeID()
	}
	return b.id
}

func (b *Block) computeID() BlockID {
	// The ID preimage IS the block's wire encoding (see wire.go), so a block
	// decoded from the WAL or a state-sync frame recomputes the same ID.
	return BlockID(sha256.Sum256(b.AppendEncoding(make([]byte, 0, 256))))
}

// IsGenesis reports whether the block is the genesis block.
func (b *Block) IsGenesis() bool { return b.Height == 0 && b.Parent.IsZero() }

// Size returns the modeled wire size of the block in bytes.
func (b *Block) Size() int {
	n := 32 + 8 + 8 + 4 + 8 + b.Payload.Size() + 16*len(b.CommitLog)
	if b.Justify != nil {
		n += b.Justify.Size()
	}
	return n
}

// String renders the block for logs.
func (b *Block) String() string {
	return fmt.Sprintf("block{%s h%d r%d by %s}", b.ID(), b.Height, b.Round, b.Proposer)
}

package types

// Transaction is a client request replicated by the protocol. The consensus
// layer treats the data as opaque; Sender/Seq exist so tests and the
// linearizability checker can identify transactions.
type Transaction struct {
	Sender uint32 // originating client
	Seq    uint64 // per-client sequence number
	Data   []byte // opaque command
}

// Size returns the modeled wire size of the transaction in bytes.
func (t Transaction) Size() int {
	return 12 + len(t.Data)
}

// Encode appends the deterministic encoding of the transaction.
func (t Transaction) Encode(b []byte) []byte {
	b = AppendUint32(b, t.Sender)
	b = AppendUint64(b, t.Seq)
	b = AppendBytes(b, t.Data)
	return b
}

// DecodeTransaction parses one transaction from the front of b.
func DecodeTransaction(b []byte) (Transaction, []byte, error) {
	var t Transaction
	sender, b, err := ConsumeUint32(b)
	if err != nil {
		return t, nil, err
	}
	seq, b, err := ConsumeUint64(b)
	if err != nil {
		return t, nil, err
	}
	data, b, err := ConsumeBytes(b)
	if err != nil {
		return t, nil, err
	}
	t.Sender = sender
	t.Seq = seq
	t.Data = append([]byte(nil), data...)
	return t, b, nil
}

// Payload is the batch of transactions carried by one block. The paper's
// experiments use ~1000 transactions / ~450KB per block.
//
// Padding models block bytes without materializing them: the simulator
// counts Padding toward the wire Size (so bandwidth accounting matches a
// ~450KB block) while the hash covers only the padding *length*, keeping
// block hashing cheap in long simulations. Real deployments set Padding 0.
type Payload struct {
	Txns    []Transaction
	Padding uint32
}

// Size returns the modeled wire size of the payload in bytes.
func (p Payload) Size() int {
	n := 8 + int(p.Padding)
	for _, t := range p.Txns {
		n += t.Size()
	}
	return n
}

// Encode appends the deterministic encoding of the payload.
func (p Payload) Encode(b []byte) []byte {
	b = AppendUint32(b, p.Padding)
	b = AppendUint32(b, uint32(len(p.Txns)))
	for _, t := range p.Txns {
		b = t.Encode(b)
	}
	return b
}

// DecodePayload parses a payload from the front of b.
func DecodePayload(b []byte) (Payload, []byte, error) {
	padding, b, err := ConsumeUint32(b)
	if err != nil {
		return Payload{}, nil, err
	}
	n, b, err := ConsumeUint32(b)
	if err != nil {
		return Payload{}, nil, err
	}
	p := Payload{Padding: padding, Txns: make([]Transaction, 0, n)}
	for i := uint32(0); i < n; i++ {
		var t Transaction
		t, b, err = DecodeTransaction(b)
		if err != nil {
			return Payload{}, nil, err
		}
		p.Txns = append(p.Txns, t)
	}
	return p, b, nil
}

package types_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/intervals"
	"repro/internal/types"
)

func TestEncodingRoundTripPrimitives(t *testing.T) {
	b := types.AppendUint64(nil, 0xDEADBEEFCAFE)
	b = types.AppendUint32(b, 42)
	b = types.AppendBytes(b, []byte("hello"))

	v64, b, err := types.ConsumeUint64(b)
	if err != nil || v64 != 0xDEADBEEFCAFE {
		t.Fatalf("uint64 round trip: %x, %v", v64, err)
	}
	v32, b, err := types.ConsumeUint32(b)
	if err != nil || v32 != 42 {
		t.Fatalf("uint32 round trip: %d, %v", v32, err)
	}
	s, b, err := types.ConsumeBytes(b)
	if err != nil || string(s) != "hello" {
		t.Fatalf("bytes round trip: %q, %v", s, err)
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
}

func TestEncodingShortBuffers(t *testing.T) {
	if _, _, err := types.ConsumeUint64([]byte{1, 2}); err == nil {
		t.Error("ConsumeUint64 accepted short buffer")
	}
	if _, _, err := types.ConsumeUint32([]byte{1}); err == nil {
		t.Error("ConsumeUint32 accepted short buffer")
	}
	// Length prefix claims more bytes than available.
	bad := types.AppendUint32(nil, 100)
	if _, _, err := types.ConsumeBytes(bad); err == nil {
		t.Error("ConsumeBytes accepted truncated payload")
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	check := func(sender uint32, seq uint64, data []byte) bool {
		in := types.Transaction{Sender: sender, Seq: seq, Data: data}
		out, rest, err := types.DecodeTransaction(in.Encode(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		return out.Sender == in.Sender && out.Seq == in.Seq && bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	in := types.Payload{
		Padding: 1234,
		Txns: []types.Transaction{
			{Sender: 1, Seq: 2, Data: []byte("a")},
			{Sender: 3, Seq: 4, Data: nil},
		},
	}
	out, rest, err := types.DecodePayload(in.Encode(nil))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d rest)", err, len(rest))
	}
	if out.Padding != in.Padding || len(out.Txns) != len(in.Txns) {
		t.Fatalf("mismatch: %+v", out)
	}
	if in.Size() != out.Size() {
		t.Fatalf("size mismatch: %d vs %d", in.Size(), out.Size())
	}
}

func TestBlockIDDeterminism(t *testing.T) {
	g := types.Genesis()
	if g.ID() != types.Genesis().ID() {
		t.Fatal("genesis not deterministic")
	}
	qc := types.NewGenesisQC(g.ID())
	b1 := types.NewBlock(g.ID(), qc, 1, 1, 0, 100, types.Payload{}, nil)
	b2 := types.NewBlock(g.ID(), qc, 1, 1, 0, 100, types.Payload{}, nil)
	if b1.ID() != b2.ID() {
		t.Fatal("identical blocks hash differently")
	}
	// Any field change must change the ID.
	for name, blk := range map[string]*types.Block{
		"round":     types.NewBlock(g.ID(), qc, 2, 1, 0, 100, types.Payload{}, nil),
		"height":    types.NewBlock(g.ID(), qc, 1, 2, 0, 100, types.Payload{}, nil),
		"proposer":  types.NewBlock(g.ID(), qc, 1, 1, 1, 100, types.Payload{}, nil),
		"timestamp": types.NewBlock(g.ID(), qc, 1, 1, 0, 101, types.Payload{}, nil),
		"payload":   types.NewBlock(g.ID(), qc, 1, 1, 0, 100, types.Payload{Padding: 1}, nil),
		"log": types.NewBlock(g.ID(), qc, 1, 1, 0, 100, types.Payload{},
			[]types.StrengthRecord{{Height: 1, X: 3}}),
	} {
		if blk.ID() == b1.ID() {
			t.Errorf("changing %s did not change the block ID", name)
		}
	}
}

func TestVoteEndorses(t *testing.T) {
	tests := []struct {
		name   string
		vote   types.Vote
		target types.Round
		want   bool
	}{
		{"direct vote always endorses", types.Vote{Round: 5, Marker: 99}, 5, true},
		{"marker below target", types.Vote{Round: 9, Marker: 3}, 5, true},
		{"marker equals target", types.Vote{Round: 9, Marker: 5}, 5, false},
		{"marker above target", types.Vote{Round: 9, Marker: 7}, 5, false},
		{"default marker endorses all", types.Vote{Round: 9, Marker: 0}, 1, true},
		{
			"interval contains target",
			types.Vote{Round: 9, HasIntervals: true, Intervals: intervals.New(intervals.Interval{Lo: 4, Hi: 6})},
			5, true,
		},
		{
			"interval gap excludes target",
			types.Vote{Round: 9, HasIntervals: true,
				Intervals: intervals.New(intervals.Interval{Lo: 1, Hi: 3}, intervals.Interval{Lo: 7, Hi: 9})},
			5, false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.vote.Endorses(tc.target); got != tc.want {
				t.Errorf("Endorses(%d) = %v, want %v", tc.target, got, tc.want)
			}
		})
	}
}

func TestVoteSigningPayloadBindsFields(t *testing.T) {
	base := types.Vote{Block: types.BlockID{1}, Round: 2, Height: 3, Voter: 4, Marker: 5}
	mut := []types.Vote{
		{Block: types.BlockID{9}, Round: 2, Height: 3, Voter: 4, Marker: 5},
		{Block: types.BlockID{1}, Round: 9, Height: 3, Voter: 4, Marker: 5},
		{Block: types.BlockID{1}, Round: 2, Height: 9, Voter: 4, Marker: 5},
		{Block: types.BlockID{1}, Round: 2, Height: 3, Voter: 9, Marker: 5},
		{Block: types.BlockID{1}, Round: 2, Height: 3, Voter: 4, Marker: 9},
		{Block: types.BlockID{1}, Round: 2, Height: 3, Voter: 4, Marker: 5, HasIntervals: true},
	}
	ref := string(base.SigningPayload())
	for i, v := range mut {
		if string(v.SigningPayload()) == ref {
			t.Errorf("mutation %d not reflected in signing payload", i)
		}
	}
}

func TestQCCheckStructure(t *testing.T) {
	id := types.BlockID{7}
	mkVote := func(voter types.ReplicaID) types.Vote {
		return types.Vote{Block: id, Round: 3, Voter: voter}
	}
	tests := []struct {
		name    string
		qc      types.QC
		quorum  int
		wantErr bool
	}{
		{"valid", types.QC{Block: id, Round: 3, Votes: []types.Vote{mkVote(0), mkVote(1), mkVote(2)}}, 3, false},
		{"genesis passes empty", types.QC{Block: id, Round: 0}, 3, false},
		{"below quorum", types.QC{Block: id, Round: 3, Votes: []types.Vote{mkVote(0)}}, 3, true},
		{"duplicate voter", types.QC{Block: id, Round: 3, Votes: []types.Vote{mkVote(0), mkVote(0), mkVote(1)}}, 3, true},
		{
			"mismatched block",
			types.QC{Block: id, Round: 3, Votes: []types.Vote{mkVote(0), mkVote(1), {Block: types.BlockID{8}, Round: 3, Voter: 2}}},
			3, true,
		},
		{
			"mismatched round",
			types.QC{Block: id, Round: 3, Votes: []types.Vote{mkVote(0), mkVote(1), {Block: id, Round: 4, Voter: 2}}},
			3, true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.qc.CheckStructure(tc.quorum)
			if (err != nil) != tc.wantErr {
				t.Errorf("CheckStructure: err=%v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestQCRanksHigher(t *testing.T) {
	low := &types.QC{Round: 3}
	high := &types.QC{Round: 5}
	if !high.RanksHigher(low) || low.RanksHigher(high) {
		t.Error("rank by round broken")
	}
	if !low.RanksHigher(nil) {
		t.Error("anything outranks nil")
	}
	same := &types.QC{Round: 3}
	if low.RanksHigher(same) {
		t.Error("equal rounds must not outrank")
	}
}

func TestMessageSizesPositive(t *testing.T) {
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 0, types.Payload{Padding: 1000}, nil)
	msgs := []types.Message{
		&types.Proposal{Block: b, Round: 1},
		&types.VoteMsg{Vote: types.Vote{Round: 1}},
		&types.Timeout{Round: 1, HighQC: types.NewGenesisQC(g.ID())},
		&types.Echo{Inner: &types.VoteMsg{}, Relayer: 1},
		&types.ExtraVote{Vote: types.Vote{Round: 1}, Leader: 0},
	}
	seen := make(map[types.MsgType]bool)
	for _, m := range msgs {
		if m.Size() <= 0 {
			t.Errorf("%T has non-positive size", m)
		}
		if seen[m.Type()] {
			t.Errorf("%T reuses message type %d", m, m.Type())
		}
		seen[m.Type()] = true
	}
	// Padding must be counted in proposal size.
	small := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 0, types.Payload{}, nil)
	if (&types.Proposal{Block: b}).Size() <= (&types.Proposal{Block: small}).Size() {
		t.Error("padding not reflected in proposal size")
	}
}

func TestStrengthRecordEncodeDeterminism(t *testing.T) {
	rec := types.StrengthRecord{Block: types.BlockID{1}, Height: 2, Round: 3, X: 4}
	if !bytes.Equal(rec.Encode(nil), rec.Encode(nil)) {
		t.Error("record encoding not deterministic")
	}
	other := types.StrengthRecord{Block: types.BlockID{1}, Height: 2, Round: 3, X: 5}
	if bytes.Equal(rec.Encode(nil), other.Encode(nil)) {
		t.Error("X not bound in record encoding")
	}
}

package types

import "fmt"

// MsgType discriminates the wire messages of the consensus engines.
type MsgType uint8

// Message types. Streamlet shares Proposal/VoteMsg; EchoMsg wraps a relayed
// message for Streamlet's echo mechanism.
const (
	MsgProposal MsgType = iota + 1
	MsgVote
	MsgTimeout
	MsgEcho
	MsgExtraVote // FBFT baseline: a late vote multicast by the leader
	MsgSyncRequest
	MsgSyncResponse
	MsgStateSyncRequest
	MsgStateSyncResponse
	MsgRoundEntry // active pacemaker: justified round-entry announcement
)

// Message is the interface implemented by every consensus wire message.
type Message interface {
	// Type returns the message discriminator.
	Type() MsgType
	// Size returns the modeled wire size in bytes, used by the harness to
	// account for bandwidth overhead.
	Size() int
}

// Proposal carries ⟨propose, B_k, r⟩_{L_r}: the leader's block for round r.
// The block embeds the justifying QC, so no separate QC field is needed.
type Proposal struct {
	Block     *Block
	Round     Round
	Sender    ReplicaID
	Signature []byte
}

// Type implements Message.
func (p *Proposal) Type() MsgType { return MsgProposal }

// Size implements Message. A nil block (possible on a decoded frame from a
// malicious peer; receivers reject it) counts only the envelope.
func (p *Proposal) Size() int {
	n := 1 + 8 + 4 + len(p.Signature)
	if p.Block != nil {
		n += p.Block.Size()
	}
	return n
}

// SigningPayload returns the bytes the proposer signs.
func (p *Proposal) SigningPayload() []byte {
	b := make([]byte, 0, 64)
	b = append(b, "prop/"...)
	id := p.Block.ID()
	b = append(b, id[:]...)
	b = AppendUint64(b, uint64(p.Round))
	b = AppendUint32(b, uint32(p.Sender))
	return b
}

// String renders the proposal for logs.
func (p *Proposal) String() string {
	return fmt.Sprintf("proposal{r%d %s}", p.Round, p.Block)
}

// VoteMsg carries one strong-vote to its recipient (the next leader in
// DiemBFT; everyone in Streamlet).
type VoteMsg struct {
	Vote Vote
}

// Type implements Message.
func (m *VoteMsg) Type() MsgType { return MsgVote }

// Size implements Message.
func (m *VoteMsg) Size() int { return 1 + m.Vote.Size() }

// String renders the message for logs.
func (m *VoteMsg) String() string { return m.Vote.String() }

// Timeout carries ⟨timeout, r, qc_high⟩_i: replica i gave up on round r and
// reports its highest QC so the next leader can extend it.
type Timeout struct {
	Round  Round
	HighQC *QC
	// HighRound duplicates HighQC.Round under the signature, so a timeout
	// certificate can carry just the 2f+1 (sender, high-round, signature)
	// attestations — verifiable without shipping 2f+1 full QCs — and bound
	// the next leader's proposal by the highest attested QC round. Receivers
	// reject timeouts whose HighRound disagrees with the embedded HighQC.
	HighRound Round
	Sender    ReplicaID
	Signature []byte
}

// Type implements Message.
func (t *Timeout) Type() MsgType { return MsgTimeout }

// Size implements Message.
func (t *Timeout) Size() int {
	n := 1 + 8 + 8 + 4 + len(t.Signature)
	if t.HighQC != nil {
		n += t.HighQC.Size()
	}
	return n
}

// TimeoutSigningPayload appends the bytes a replica signs for a timeout of
// round r claiming highest QC round high, and returns the extended slice.
// Shared by Timeout.SigningPayload and TC attestation verification, which
// reconstructs the same payload from the attestation fields alone.
func TimeoutSigningPayload(b []byte, r Round, sender ReplicaID, high Round) []byte {
	b = append(b, "timeout/"...)
	b = AppendUint64(b, uint64(r))
	b = AppendUint32(b, uint32(sender))
	b = AppendUint64(b, uint64(high))
	return b
}

// SigningPayload returns the bytes the sender signs.
func (t *Timeout) SigningPayload() []byte {
	return TimeoutSigningPayload(make([]byte, 0, 32), t.Round, t.Sender, t.HighRound)
}

// String renders the timeout for logs.
func (t *Timeout) String() string { return fmt.Sprintf("timeout{r%d by %s}", t.Round, t.Sender) }

// Echo wraps a message relayed by Streamlet's "echo every previously unseen
// message" rule.
type Echo struct {
	Inner   Message
	Relayer ReplicaID
}

// Type implements Message.
func (e *Echo) Type() MsgType { return MsgEcho }

// Size implements Message. A nil inner message (malicious relay) counts
// only the wrapper.
func (e *Echo) Size() int {
	n := 1 + 4
	if e.Inner != nil {
		n += e.Inner.Size()
	}
	return n
}

// String renders the echo for logs.
func (e *Echo) String() string { return fmt.Sprintf("echo{%v by %s}", e.Inner, e.Relayer) }

// SyncRequest asks a peer for the ancestor chain of a block the requester
// is missing (a replica that fell behind — e.g. after a partition — heals
// its block tree this way before it can vote again).
type SyncRequest struct {
	// Block is the missing block whose ancestry is wanted.
	Block BlockID
	// Have is the requester's highest committed height; the responder
	// sends blocks above it, newest-capped at its own chain.
	Have   Height
	Sender ReplicaID
}

// Type implements Message.
func (s *SyncRequest) Type() MsgType { return MsgSyncRequest }

// Size implements Message.
func (s *SyncRequest) Size() int { return 1 + 32 + 8 + 4 }

// String renders the request for logs.
func (s *SyncRequest) String() string {
	return fmt.Sprintf("syncreq{%s above h%d by %s}", s.Block, s.Have, s.Sender)
}

// SyncResponse carries a contiguous ascending chain segment ending at the
// requested block. Each block embeds its parent's QC, so the segment is
// self-certifying.
type SyncResponse struct {
	Blocks []*Block
	Sender ReplicaID
}

// Type implements Message.
func (s *SyncResponse) Type() MsgType { return MsgSyncResponse }

// Size implements Message.
func (s *SyncResponse) Size() int {
	n := 1 + 4
	for _, b := range s.Blocks {
		if b != nil {
			n += b.Size()
		}
	}
	return n
}

// String renders the response for logs.
func (s *SyncResponse) String() string {
	return fmt.Sprintf("syncresp{%d blocks by %s}", len(s.Blocks), s.Sender)
}

// StateSyncRequest asks a peer for the certified chain above the
// requester's committed height. Unlike SyncRequest (which heals one known
// missing block), it is the catch-up message of internal/statesync: a
// recovered or lagging replica that only knows how far it got asks peers
// for everything after that.
type StateSyncRequest struct {
	// Have is the requester's committed height; responders send certified
	// blocks strictly above it.
	Have   Height
	Sender ReplicaID
}

// Type implements Message.
func (s *StateSyncRequest) Type() MsgType { return MsgStateSyncRequest }

// Size implements Message.
func (s *StateSyncRequest) Size() int { return 1 + 8 + 4 }

// String renders the request for logs.
func (s *StateSyncRequest) String() string {
	return fmt.Sprintf("statesyncreq{above h%d by %s}", s.Have, s.Sender)
}

// StateSyncResponse carries a contiguous ascending certified chain segment
// starting just above the requester's committed height. Interior blocks are
// certified by their successor's embedded justify QC; HighQC certifies the
// final block when the segment reaches the responder's tip.
type StateSyncResponse struct {
	Blocks []*Block
	HighQC *QC
	Sender ReplicaID
}

// Type implements Message.
func (s *StateSyncResponse) Type() MsgType { return MsgStateSyncResponse }

// Size implements Message.
func (s *StateSyncResponse) Size() int {
	n := 1 + 4
	for _, b := range s.Blocks {
		if b != nil {
			n += b.Size()
		}
	}
	if s.HighQC != nil {
		n += s.HighQC.Size()
	}
	return n
}

// String renders the response for logs.
func (s *StateSyncResponse) String() string {
	return fmt.Sprintf("statesyncresp{%d blocks by %s}", len(s.Blocks), s.Sender)
}

// ExtraVote is the Appendix B FBFT baseline message: after a QC already
// formed with 2f+1 votes, the round's leader multicasts each additional
// late vote so that replicas can grow the block's direct-vote quorum.
type ExtraVote struct {
	Vote   Vote
	Leader ReplicaID
}

// Type implements Message.
func (m *ExtraVote) Type() MsgType { return MsgExtraVote }

// Size implements Message.
func (m *ExtraVote) Size() int { return 1 + 4 + m.Vote.Size() }

// String renders the message for logs.
func (m *ExtraVote) String() string {
	return fmt.Sprintf("extravote{%v via %s}", m.Vote, m.Leader)
}

// RoundEntry announces justified entry into a round (the active pacemaker's
// Jolteon-style advance message): exactly one of Justify (a QC for round
// Round-1) or TC (a timeout certificate for round Round-1) proves the sender
// entered Round legally. Replicas reject entries whose justification does not
// prove the advance, so a liar cannot drag honest replicas into future views.
type RoundEntry struct {
	Round     Round
	Justify   *QC // QC path: certifies round Round-1
	TC        *TC // TC path: 2f+1 timeouts for round Round-1
	Sender    ReplicaID
	Signature []byte
}

// Type implements Message.
func (e *RoundEntry) Type() MsgType { return MsgRoundEntry }

// Size implements Message.
func (e *RoundEntry) Size() int {
	n := 1 + 8 + 4 + len(e.Signature)
	if e.Justify != nil {
		n += e.Justify.Size()
	}
	if e.TC != nil {
		n += e.TC.Size()
	}
	return n
}

// SigningPayload returns the bytes the sender signs: round, sender, and the
// justification's identity (kind, round, and — for the QC path — the
// certified block), so a signature cannot be replayed onto a different
// justification.
func (e *RoundEntry) SigningPayload() []byte {
	b := make([]byte, 0, 64)
	b = append(b, "entry/"...)
	b = AppendUint64(b, uint64(e.Round))
	b = AppendUint32(b, uint32(e.Sender))
	switch {
	case e.Justify != nil:
		b = append(b, 1)
		b = AppendUint64(b, uint64(e.Justify.Round))
		b = append(b, e.Justify.Block[:]...)
	case e.TC != nil:
		b = append(b, 2)
		b = AppendUint64(b, uint64(e.TC.Round))
	default:
		b = append(b, 0)
	}
	return b
}

// String renders the entry for logs.
func (e *RoundEntry) String() string {
	switch {
	case e.Justify != nil:
		return fmt.Sprintf("entry{r%d by %s, qc r%d}", e.Round, e.Sender, e.Justify.Round)
	case e.TC != nil:
		return fmt.Sprintf("entry{r%d by %s, tc r%d}", e.Round, e.Sender, e.TC.Round)
	default:
		return fmt.Sprintf("entry{r%d by %s, unjustified}", e.Round, e.Sender)
	}
}

package harness

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/diembft"
	"repro/internal/metrics"
	"repro/internal/pacemaker"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// This file contains one driver per table/figure of the paper's evaluation
// (see DESIGN.md's experiment index). Every driver takes a Scale so the
// same experiment runs at paper scale (n=100, ≥5 virtual minutes) from
// cmd/sftbench and at reduced scale from `go test -bench`.

// Scale controls the cost of an experiment run.
type Scale struct {
	// N and F give the cluster size (N = 3F+1). 0 means paper scale
	// (n=100, f=33).
	N, F int
	// Duration is the virtual run length; 0 means the paper's 5 minutes.
	Duration time.Duration
	// Seed defaults to 1.
	Seed int64
	// Scheme selects the signature implementation for every scenario the
	// experiment builds: "" or crypto.SchemeSim for the fast deterministic
	// scheme, crypto.SchemeEd25519 for real crypto (which implies signature
	// verification; see Scenario.Scheme).
	Scheme string
	// Pipeline enables the verification pipeline (prevalidate/apply split)
	// in every scenario the experiment builds.
	Pipeline bool
}

func (s Scale) withDefaults() Scale {
	if s.N == 0 {
		s.N, s.F = 100, 33
	}
	if s.Duration == 0 {
		s.Duration = 5 * time.Minute
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Experiment timing constants. Absolute values differ from the paper's EC2
// testbed by design; DESIGN.md §2 explains why only the shapes must match.
const (
	intraDelay = 1 * time.Millisecond
	symJitter  = 25 * time.Millisecond
	asymJitter = 4 * time.Millisecond
	// stragglerPenalty delays a straggler's traffic enough that its votes
	// miss every QC formed at network speed (paper §4.1's out-of-sync
	// replicas) while staying far below the round timeout.
	stragglerPenalty = 80 * time.Millisecond
)

// stragglerSet spreads k stragglers evenly over the replica ID space.
func stragglerSet(n, k int) map[types.ReplicaID]time.Duration {
	out := make(map[types.ReplicaID]time.Duration, k)
	for i := 0; i < k; i++ {
		out[types.ReplicaID((i*n+n/2)/k%n)] = stragglerPenalty
	}
	return out
}

// symmetricScenario builds the Figure 6 (left) setting: 3 equal regions,
// delta between regions, with a few stragglers.
func symmetricScenario(sc Scale, delta time.Duration) *Scenario {
	sc = sc.withDefaults()
	model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, delta, symJitter)
	model.Penalty = stragglerSet(sc.N, max(1, sc.N/33))
	return &Scenario{
		Name:     "symmetric",
		N:        sc.N,
		F:        sc.F,
		Latency:  model,
		Seed:     sc.Seed,
		Duration: sc.Duration,
		// Rounds take ~2*delta (+straggler-led slack); never time out.
		RoundTimeout:   4*delta + 4*stragglerPenalty,
		SFT:            true,
		Scheme:         sc.Scheme,
		VerifyPipeline: sc.Pipeline,
	}
}

// Figure7a measures x-strong commit latency in the symmetric setting for
// one delta (the paper sweeps delta ∈ {100ms, 200ms}).
func Figure7a(sc Scale, delta time.Duration) (*Result, error) {
	s := symmetricScenario(sc, delta)
	s.Name = "fig7a"
	return Run(s)
}

// Figure7b measures x-strong commit latency in the asymmetric setting
// (Figure 6 right): regions A and B hold 90% of replicas 20ms apart, region
// C holds 10% at distance delta. At delta=200ms region C's leaders time out
// (RoundTimeout below C's ~2*delta round trip), so C never contributes
// strong-votes and levels above ~1.7f become unreachable — the paper's
// "outcast replicas".
func Figure7b(sc Scale, delta time.Duration) (*Result, error) {
	sc = sc.withDefaults()
	szC := sc.N / 10
	szA := (sc.N - szC + 1) / 2
	szB := sc.N - szC - szA
	model := simnet.NewAsymmetricModel([3]int{szA, szB, szC}, intraDelay, 20*time.Millisecond, delta, asymJitter)
	// Sample strength at regions A and B only: region C replicas privately
	// form QCs for their timed-out rounds that never enter the chain, so
	// their local view reports levels the blockchain never certifies.
	observers := make(map[types.ReplicaID]bool, szA+szB)
	for i := 0; i < szA+szB; i++ {
		observers[types.ReplicaID(i)] = true
	}
	return Run(&Scenario{
		Name:           "fig7b",
		N:              sc.N,
		F:              sc.F,
		Latency:        model,
		Seed:           sc.Seed,
		Duration:       sc.Duration,
		LevelObservers: observers,
		// 150ms: far above A/B's ~40ms rounds, below region C's round trip
		// at delta=200ms (~400ms), above it at delta=100ms (~200ms...240ms
		// reach the voters before their round timer expires).
		RoundTimeout:   150 * time.Millisecond,
		SFT:            true,
		Scheme:         sc.Scheme,
		VerifyPipeline: sc.Pipeline,
	})
}

// Figure8Point is one point of the regular-vs-strong latency trade-off.
type Figure8Point struct {
	ExtraWait time.Duration
	Result    *Result
}

// Figure8 sweeps the leader extra-wait knob in the symmetric delta=100ms
// setting: leaders hold the QC open for `wait` after reaching 2f+1 votes
// and fold late (straggler) votes into a larger strong-QC, trading regular
// commit latency for strong commit latency.
func Figure8(sc Scale, waits []time.Duration) ([]Figure8Point, error) {
	out := make([]Figure8Point, 0, len(waits))
	for _, w := range waits {
		s := symmetricScenario(sc, 100*time.Millisecond)
		s.Name = "fig8"
		s.ExtraWait = w
		res, err := Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure8Point{ExtraWait: w, Result: res})
	}
	return out, nil
}

// ThroughputComparison runs the symmetric setting with SFT off (DiemBFT
// baseline) and on (SFT-DiemBFT), supporting the paper's §4 claim that
// throughput and regular commit latency are essentially unchanged.
func ThroughputComparison(sc Scale, delta time.Duration) (baseline, sft *Result, err error) {
	base := symmetricScenario(sc, delta)
	base.Name = "throughput-diembft"
	base.SFT = false
	baseline, err = Run(base)
	if err != nil {
		return nil, nil, err
	}
	s := symmetricScenario(sc, delta)
	s.Name = "throughput-sft-diembft"
	sft, err = Run(s)
	if err != nil {
		return nil, nil, err
	}
	return baseline, sft, nil
}

// ComplexityPoint is one cluster size of the message-complexity comparison.
type ComplexityPoint struct {
	N             int
	SFTMsgsPerDec float64
	FBFTMsgsPer   float64
}

// MessageComplexity compares messages per block decision between
// SFT-DiemBFT (linear, §3.2) and the FBFT adaptation (quadratic, Appendix
// B) as n grows (sc supplies duration, seed, and crypto scheme; its cluster
// size is ignored in favor of the fs sweep). About f replicas are stragglers
// whose votes arrive after the QC forms; FBFT's leaders multicast each such
// late vote.
func MessageComplexity(sc Scale, fs []int) ([]ComplexityPoint, error) {
	duration := sc.Duration
	if duration == 0 {
		duration = time.Minute
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	out := make([]ComplexityPoint, 0, len(fs))
	for _, f := range fs {
		n := 3*f + 1
		mk := func(fbft bool) *Scenario {
			model := simnet.NewSymmetricModel(n, 3, intraDelay, 100*time.Millisecond, 10*time.Millisecond)
			model.Penalty = stragglerSet(n, f) // f stragglers -> f late votes/round
			return &Scenario{
				Name:           "msgcomplexity",
				N:              n,
				F:              f,
				Latency:        model,
				Seed:           seed,
				Duration:       duration,
				RoundTimeout:   time.Second,
				SFT:            !fbft,
				FBFT:           fbft,
				Scheme:         sc.Scheme,
				VerifyPipeline: sc.Pipeline,
			}
		}
		sft, err := Run(mk(false))
		if err != nil {
			return nil, err
		}
		fb, err := Run(mk(true))
		if err != nil {
			return nil, err
		}
		out = append(out, ComplexityPoint{
			N:             n,
			SFTMsgsPerDec: sft.MsgsPerCommit,
			FBFTMsgsPer:   fb.MsgsPerCommit,
		})
	}
	return out, nil
}

// Theorem2 runs the benign-fault liveness experiment: c crash faults from
// the start; Theorem 2 promises every block is (2f-c)-strong committed
// within n+2 rounds. Returns the run plus the target level 2f-c.
func Theorem2(sc Scale, c int) (*Result, int, error) {
	sc = sc.withDefaults()
	crash := make(map[types.ReplicaID]time.Duration, c)
	for i := 0; i < c; i++ {
		// Crash a consecutive block of replicas 1ns after start. Spreading
		// the crashes over the ID space would leave no run of 4 consecutive
		// alive leaders at c = f, and the 3-chain commit rule would never
		// fire — Theorem 2 bounds strength accumulation on committed
		// blocks, not leader-rotation liveness.
		crash[types.ReplicaID((sc.N/2+i)%sc.N)] = time.Nanosecond
	}
	target := 2*sc.F - c
	model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, 20*time.Millisecond, 5*time.Millisecond)
	res, err := Run(&Scenario{
		Name:            "theorem2",
		N:               sc.N,
		F:               sc.F,
		Latency:         model,
		Seed:            sc.Seed,
		Duration:        sc.Duration,
		RoundTimeout:    250 * time.Millisecond,
		SFT:             true,
		Scheme:          sc.Scheme,
		VerifyPipeline:  sc.Pipeline,
		Levels:          []int{sc.F, target},
		Crash:           crash,
		RecordStrengths: true,
	})
	if err != nil {
		return nil, 0, err
	}
	// Benign scenario: the fuzzer's checkers must hold with zero Byzantine
	// replicas (crash faults never excuse a safety breach).
	if vs := CheckInvariants(res, 0); len(vs) > 0 {
		return nil, 0, fmt.Errorf("theorem2: invariant violated: %s", vs[0])
	}
	return res, target, nil
}

// Theorem3 runs the Byzantine-fault liveness experiment: t equivocating
// Byzantine replicas (built through the adversary subsystem's Equivocate
// behavior), comparing marker strong-votes (Section 3.2, liveness only under
// benign faults) against interval strong-votes (Section 3.4, Theorem 3:
// (2f-t)-strong within n+2 rounds despite Byzantine faults). Both runs pass
// through the scenario fuzzer's invariant checkers; a Definition 1 or
// monotonicity breach fails the experiment outright.
func Theorem3(sc Scale, t int) (marker, interval *Result, target int, err error) {
	sc = sc.withDefaults()
	byz := make(map[types.ReplicaID][]adversary.Spec, t)
	for i := 0; i < t; i++ {
		byz[types.ReplicaID((i*sc.N+sc.N/2)/max(1, t)%sc.N)] = []adversary.Spec{{Kind: adversary.Equivocate}}
	}
	target = 2*sc.F - t
	mk := func(mode diembft.VoteMode) *Scenario {
		model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, 20*time.Millisecond, 5*time.Millisecond)
		return &Scenario{
			Name:            "theorem3",
			N:               sc.N,
			F:               sc.F,
			Latency:         model,
			Seed:            sc.Seed,
			Duration:        sc.Duration,
			RoundTimeout:    250 * time.Millisecond,
			SFT:             true,
			VoteMode:        mode,
			Adversaries:     byz,
			Scheme:          sc.Scheme,
			VerifyPipeline:  sc.Pipeline,
			Levels:          []int{sc.F, target},
			RecordStrengths: true,
		}
	}
	check := func(res *Result) error {
		if vs := CheckInvariants(res, len(byz)); len(vs) > 0 {
			return fmt.Errorf("theorem3: invariant violated: %s", vs[0])
		}
		return nil
	}
	marker, err = Run(mk(diembft.VoteMarker))
	if err != nil {
		return nil, nil, 0, err
	}
	if err = check(marker); err != nil {
		return nil, nil, 0, err
	}
	interval, err = Run(mk(diembft.VoteIntervals))
	if err != nil {
		return nil, nil, 0, err
	}
	if err = check(interval); err != nil {
		return nil, nil, 0, err
	}
	return marker, interval, target, nil
}

// LivenessAttackResult pairs the two arms of the pacemaker-hardening A/B:
// the same seed, cluster and adversary coalition run once against the
// passive paper baseline (per-peer timeout cap effectively removed, as
// before the hardening) and once against the active pacemaker with
// justified round entry, the future window, the default per-peer cap and
// leader-reputation rotation.
type LivenessAttackResult struct {
	Passive, Active *Result
	// PassivePeak / ActivePeak are the worst single-peer timeout-buffer
	// high-watermarks across replicas — the memory-exhaustion evidence.
	PassivePeak, ActivePeak int
	// PassiveDropped / ActiveDropped count timeouts the per-peer cap shed.
	PassiveDropped, ActiveDropped uint64
	// Cap is the hardened arm's per-peer bound (ActivePeak must stay <= Cap).
	Cap int
}

func peakPacemaker(res *Result) (peak int, dropped uint64) {
	for _, st := range res.Pacemakers {
		if st.PeakPerPeer > peak {
			peak = st.PeakPerPeer
		}
		dropped += st.Dropped
	}
	return peak, dropped
}

// LivenessAttack runs the liveness-under-attack experiment: f colluders
// composing timeout-spam at full cadence with round-entry lying, against an
// otherwise healthy cluster. The experiment asserts the hardening claim
// outright — both arms must stay safe (the attack forges no protocol
// content, so the invariant checkers run at t=0), the active arm must keep
// committing with its worst per-peer timeout buffer bounded by the cap, and
// the passive arm must exhibit the unbounded buffer growth the hardening
// removes. Defaults to the acceptance shape (n=7, f=2, 10 virtual seconds)
// rather than paper scale.
func LivenessAttack(sc Scale) (*LivenessAttackResult, error) {
	if sc.N == 0 {
		sc.N, sc.F = 7, 2
	}
	if sc.Duration == 0 {
		sc.Duration = 10 * time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	byz := make(map[types.ReplicaID][]adversary.Spec, sc.F)
	for i := 0; i < sc.F; i++ {
		// Consecutive trailing IDs: adjacent leader slots maximize the rounds
		// the coalition fronts.
		byz[types.ReplicaID(sc.N-1-i)] = []adversary.Spec{
			{Kind: adversary.TimeoutSpam, Every: 1},
			{Kind: adversary.LieRoundEntry, Every: 2},
		}
	}
	mk := func(active bool) *Scenario {
		model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, 20*time.Millisecond, 5*time.Millisecond)
		s := &Scenario{
			Name:             "livenessattack",
			N:                sc.N,
			F:                sc.F,
			Latency:          model,
			Seed:             sc.Seed,
			Duration:         sc.Duration,
			RoundTimeout:     250 * time.Millisecond,
			SFT:              true,
			VerifySignatures: true,
			Scheme:           sc.Scheme,
			VerifyPipeline:   sc.Pipeline,
			Adversaries:      byz,
			RecordStrengths:  true,
			RecordChains:     true,
		}
		if active {
			s.ActivePacemaker = true
			s.LeaderReputationWindow = 8
		} else {
			// The pre-hardening pacemaker buffered timeouts without a
			// per-peer bound; an effectively infinite cap reproduces that
			// while keeping the Stats accounting live.
			s.PerPeerTimeoutCap = 1 << 20
		}
		return s
	}
	out := &LivenessAttackResult{Cap: pacemaker.DefaultPerPeerCap}
	var err error
	if out.Passive, err = Run(mk(false)); err != nil {
		return nil, err
	}
	if out.Active, err = Run(mk(true)); err != nil {
		return nil, err
	}
	t := adversary.ForgingReplicas(byz)
	for arm, res := range map[string]*Result{"passive": out.Passive, "active": out.Active} {
		if vs := CheckInvariants(res, t); len(vs) > 0 {
			return nil, fmt.Errorf("livenessattack: %s arm safety violated: %s", arm, vs[0])
		}
	}
	out.PassivePeak, out.PassiveDropped = peakPacemaker(out.Passive)
	out.ActivePeak, out.ActiveDropped = peakPacemaker(out.Active)
	if out.Active.CommittedBlocks < 3 {
		return nil, fmt.Errorf("livenessattack: hardened arm stalled (%d commits)", out.Active.CommittedBlocks)
	}
	if out.ActivePeak > out.Cap {
		return nil, fmt.Errorf("livenessattack: hardened arm's per-peer buffer peaked at %d > cap %d", out.ActivePeak, out.Cap)
	}
	if out.PassivePeak <= out.Cap {
		return nil, fmt.Errorf("livenessattack: passive arm peaked at only %d — the attack demonstrated nothing", out.PassivePeak)
	}
	return out, nil
}

// CrashRecoveryResult aggregates the kill/restart/state-sync-rejoin
// experiment (the durability layer's workload class).
type CrashRecoveryResult struct {
	// Baseline is the same scenario without the kill; Faulty is the run
	// where Victim is killed at CrashAt and restored at RestartAt.
	Baseline, Faulty *Result
	Victim           types.ReplicaID
	CrashAt          time.Duration
	RestartAt        time.Duration

	// SharedPrefix is the height up to which the two runs' observers agree
	// (the runs are event-identical until the kill, so this is at least the
	// chain height reached by the crash; afterwards they may diverge).
	SharedPrefix types.Height
	// Consistent is the safety verdict: within the faulty run the victim's
	// committed chain agrees with the observer's at every shared height,
	// and it recommitted nothing below SharedPrefix that contradicts the
	// no-crash baseline.
	Consistent bool
	// VictimHeight and ObserverHeight are the final committed heights in
	// the faulty run; their gap shows how far the rejoined replica caught
	// up.
	VictimHeight, ObserverHeight types.Height
}

// CrashRecovery runs the durability scenario: a symmetric cluster where one
// replica is killed a third of the way in and restarted from its
// write-ahead log at the halfway point, re-joining via state sync. It also
// runs the identical scenario without the kill and checks that the
// recovered replica's commits are consistent with both the faulty run's
// observer and the no-crash baseline's committed prefix.
func CrashRecovery(sc Scale, delta time.Duration) (*CrashRecoveryResult, error) {
	sc = sc.withDefaults()
	// The symmetric model penalizes replica n/2 as its straggler; pick the
	// last replica so the kill/restart story is not confounded with it.
	victim := types.ReplicaID(sc.N - 1)
	crashAt := sc.Duration / 3
	restartAt := sc.Duration / 2

	base := symmetricScenario(sc, delta)
	base.Name = "crashrecovery-baseline"
	base.RecordChains = true
	// Disable pruning so full chains stay comparable across the run.
	base.PruneKeep = types.Height(1 << 30)
	baseline, err := Run(base)
	if err != nil {
		return nil, err
	}

	faulty := symmetricScenario(sc, delta)
	faulty.Name = "crashrecovery"
	faulty.RecordChains = true
	faulty.PruneKeep = types.Height(1 << 30)
	faulty.Crashes = []CrashPlan{{Replica: victim, Crash: crashAt, Restart: restartAt}}
	res, err := Run(faulty)
	if err != nil {
		return nil, err
	}

	out := &CrashRecoveryResult{
		Baseline: baseline,
		Faulty:   res,
		Victim:   victim,
		CrashAt:  crashAt, RestartAt: restartAt,
	}
	baseChain := baseline.Chains[baseline.Observer]
	obsChain := res.Chains[res.Observer]
	victimChain := res.Chains[victim]

	// Shared prefix of the two runs at their observers: identical until the
	// kill perturbs the event sequence.
	for h := types.Height(1); ; h++ {
		a, okA := baseChain[h]
		b, okB := obsChain[h]
		if !okA || !okB || a != b {
			break
		}
		out.SharedPrefix = h
	}

	out.Consistent = true
	for h, id := range victimChain {
		if out.VictimHeight < h {
			out.VictimHeight = h
		}
		// Within-run agreement: every honest replica commits the same block
		// per height — the property a recovery bug would break first.
		if ref, ok := obsChain[h]; ok && ref != id {
			out.Consistent = false
		}
		// Cross-run: nothing recommitted below the shared prefix may
		// contradict the no-crash baseline.
		if h <= out.SharedPrefix {
			if ref, ok := baseChain[h]; ok && ref != id {
				out.Consistent = false
			}
		}
	}
	for h := range obsChain {
		if out.ObserverHeight < h {
			out.ObserverHeight = h
		}
	}
	return out, nil
}

// BankWorkloadResult aggregates the execution-layer workload experiment.
type BankWorkloadResult struct {
	Result   *Result
	Accounts uint32
	Signed   bool
	// Generated counts transactions issued by the workload;
	// ExecutedBlocks the blocks the observer's replica ran through its bank.
	Generated      int64
	ExecutedBlocks int64
	// SubmitToF and SubmitTo2F are the submit→x-strong latency distributions
	// at the regular commit level (x = f) and the maximum assurance level
	// (x = 2f). Submission time equals block creation time for this workload
	// (the leader batches at proposal), so these are the collector's
	// creation→x-strong series read at the two levels.
	SubmitToF, SubmitTo2F metrics.Summary
	// AgreedHeights counts committed heights at which every replica recorded
	// the identical state root (the run fails outright if any height
	// diverges).
	AgreedHeights int
}

// BankWorkload runs the flagship execution-layer experiment: an n=7 cluster
// where every replica executes a signed-transfer bank before voting, leaders
// drive a large account population through it, and the result reports how
// long a client waits between submitting and its transaction's block
// reaching f-strong (spendable for reads) and 2f-strong (safe to release a
// withdrawal). accounts defaults to 128Ki, txnsPerBlock to 128; sign turns
// on real ed25519 transaction signatures and replica-side verification.
func BankWorkload(sc Scale, accounts uint32, txnsPerBlock int, sign bool) (*BankWorkloadResult, error) {
	if sc.N == 0 {
		sc.N, sc.F = 7, 2
	}
	if sc.Duration == 0 {
		sc.Duration = 12 * time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if accounts == 0 {
		accounts = 1 << 17
	}
	if txnsPerBlock == 0 {
		txnsPerBlock = 128
	}
	cfg := app.BankConfig{
		Seed:             sc.Seed,
		Accounts:         accounts,
		InitialBalance:   1 << 24,
		DisableSigVerify: !sign,
	}
	if sign {
		// One shared key/verdict cache across the cluster: account pubkeys
		// derive once and every signature verifies once globally instead of
		// once per replica.
		cfg.Keys = app.NewBankKeys(cfg.Seed)
	}
	gen := workload.NewBankWorkload(sc.Seed, cfg, txnsPerBlock, sign)
	model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, 20*time.Millisecond, 5*time.Millisecond)
	res, err := Run(&Scenario{
		Name:            "bankworkload",
		N:               sc.N,
		F:               sc.F,
		Latency:         model,
		Seed:            sc.Seed,
		Duration:        sc.Duration,
		RoundTimeout:    250 * time.Millisecond,
		SFT:             true,
		Scheme:          sc.Scheme,
		VerifyPipeline:  sc.Pipeline,
		Levels:          []int{sc.F, 2 * sc.F},
		App:             func() app.StateMachine { return app.NewBank(cfg) },
		PayloadNow:      gen.Payload,
		PayloadTxns:     txnsPerBlock,
		RecordChains:    true,
		RecordStrengths: true,
	})
	if err != nil {
		return nil, err
	}
	// Benign run: the fuzzer's checkers — including execution agreement —
	// must hold at t = 0.
	if vs := CheckInvariants(res, 0); len(vs) > 0 {
		return nil, fmt.Errorf("bankworkload: invariant violated: %s", vs[0])
	}
	out := &BankWorkloadResult{
		Result:     res,
		Accounts:   accounts,
		Signed:     sign,
		Generated:  gen.Generated(),
		SubmitToF:  res.LevelLatency[sc.F],
		SubmitTo2F: res.LevelLatency[2*sc.F],
	}
	if obs := res.AppHashes[res.Observer]; obs != nil {
		for h, root := range obs {
			all := true
			for rep := range res.AppHashes {
				if other, ok := res.AppHashes[rep][h]; !ok || other != root {
					all = false
					break
				}
			}
			if all {
				out.AgreedHeights++
			}
		}
	}
	out.ExecutedBlocks = res.AppExecutedBlocks
	return out, nil
}

// StreamletLatency runs SFT-Streamlet (Appendix D) in a uniform-delay
// setting and reports strong commit latencies per level, the Appendix D
// counterpart of Figure 7a.
func StreamletLatency(sc Scale, delta time.Duration) (*Result, error) {
	sc = sc.withDefaults()
	model := simnet.NewSymmetricModel(sc.N, 3, intraDelay, delta/2, delta/8)
	return Run(&Scenario{
		Name:     "streamlet",
		Protocol: ProtoStreamlet,
		N:        sc.N,
		F:        sc.F,
		Latency:  model,
		Seed:     sc.Seed,
		Duration: sc.Duration,
		// Streamlet's lock-step parameter must bound the actual network
		// delay: delta/2 base + jitter + margin.
		Delta:          delta,
		SFT:            true,
		Scheme:         sc.Scheme,
		VerifyPipeline: sc.Pipeline,
		DisableEcho:    sc.N > 31, // echo is O(n^3); keep it for small clusters only
	})
}

// Package harness builds clusters, runs scenarios on the discrete-event
// simulator, and aggregates the measurements the paper's evaluation reports:
// regular-commit latency, x-strong-commit latency per resilience level,
// throughput, and message complexity. The per-figure experiment drivers
// (Figure 7a/7b, Figure 8, message complexity, the liveness theorems) live
// in experiments.go.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/pacemaker"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// Protocol selects the consensus engine for a scenario.
type Protocol int

// Supported protocols.
const (
	ProtoDiemBFT Protocol = iota + 1
	ProtoStreamlet
)

// Scenario describes one experiment run.
type Scenario struct {
	Name     string
	Protocol Protocol // default ProtoDiemBFT

	// Cluster shape. N must be 3F+1.
	N, F int

	// Latency is the network model; required.
	Latency simnet.LatencyModel
	// Seed makes runs reproducible.
	Seed int64
	// Duration is the virtual run length.
	Duration time.Duration
	// Warmup and TailMargin clip measurement to blocks created inside
	// [Warmup, Duration-TailMargin], removing start-up transients and
	// blocks whose strength could not have saturated before the run ends.
	Warmup, TailMargin time.Duration

	// DiemBFT engine knobs.
	RoundTimeout   time.Duration
	ExtraWait      time.Duration
	ExtraWaitFor   func(r types.Round) time.Duration
	SFT            bool
	FBFT           bool
	VoteMode       diembft.VoteMode
	IntervalWindow types.Round
	Horizon        int
	PruneKeep      types.Height

	// Active pacemaker knobs (DiemBFT; see diembft.Config). The zero values
	// are the passive paper baseline.
	ActivePacemaker        bool
	TimeoutWindow          types.Round
	PerPeerTimeoutCap      int
	LeaderReputationWindow types.Round

	// Streamlet engine knobs.
	Delta       time.Duration
	DisableEcho bool
	// ProposalWindow bounds how far ahead of the lock-step round a
	// Streamlet proposal may claim to be (0 = unbounded baseline).
	ProposalWindow types.Round

	VerifySignatures bool
	// Scheme selects the signature implementation: crypto.SchemeSim (the
	// default, fast and deterministic), crypto.SchemeSimAgg /
	// crypto.SchemeEd25519Agg for the compact aggregated-certificate
	// variants (ed25519-agg implies verification), or crypto.SchemeEd25519 for real
	// crypto. An ed25519 scenario implies VerifySignatures — running real
	// signatures without checking them measures nothing.
	Scheme string
	// VerifyPipeline routes deliveries through the engines' prevalidate /
	// apply split (stateless signature work separated from state
	// transitions). The simulator runs the split synchronously, so results
	// stay deterministic and — for honest traffic — bit-identical to the
	// pipeline being off; see Config.Prevalidate in internal/simnet.
	VerifyPipeline bool
	// DisableQCCache turns off the per-replica verified-QC memo (DiemBFT
	// engines), forcing every delivery to re-verify. The determinism tests
	// use it to assert cache-on and cache-off runs are bit-identical.
	DisableQCCache bool

	// Partial synchrony: before GST every delivery gets PreGSTExtra added
	// to its delay (GST 0 = synchronous from the start).
	GST         time.Duration
	PreGSTExtra time.Duration

	// Faults: crash times and Byzantine behavior chains per replica. Each
	// listed replica's engine is wrapped with the composed adversary
	// behaviors (internal/adversary), uniformly for both protocols.
	Crash       map[types.ReplicaID]time.Duration
	Adversaries map[types.ReplicaID][]adversary.Spec

	// Partitions schedules network splits on the simulator (see
	// simnet.PartitionAt): each plan installs its groups at At and — when
	// Heal > 0 — restores full connectivity at Heal. Later plans replace
	// earlier ones.
	Partitions []PartitionPlan

	// NaiveEndorsements runs every replica's SFT tracker with the UNSAFE
	// marker-free counting of Appendix C. Only the scenario fuzzer's
	// weakened-rule canary sets it — to prove its Definition 1 checker
	// catches the violation.
	NaiveEndorsements bool

	// Crashes are kill/restart schedules: each plan's replica runs with a
	// write-ahead log, is killed at Crash, and (when Restart > 0) comes
	// back restored from that log and re-joins via state sync. Replicas
	// listed here must not also appear in Crash/Byzantine.
	Crashes []CrashPlan
	// DataDir roots the per-replica WAL directories for Crashes (and, when
	// set with no Crashes, gives EVERY replica a journal). Empty means a
	// temporary directory that is removed when Run returns.
	DataDir string
	// RecordChains makes Result.Chains hold every replica's committed block
	// per height — the crash-recovery consistency checks read it.
	RecordChains bool
	// RecordStrengths makes Result.Strengths hold every replica's maximum
	// observed strength per block (regular commits folded in at x = F) and
	// Result.Blocks the blocks those observations refer to — the invariant
	// checkers of the scenario fuzzer read them.
	RecordStrengths bool

	// Levels are the strength values x (in replicas tolerated) whose
	// first-reach latency is recorded. Defaults to the 1.0f..2.0f sweep.
	Levels []int

	// LevelObservers restricts strength-latency sampling to these replicas
	// (nil = all). Figure 7b uses it to exclude the outcast region, whose
	// replicas see their own never-chained QCs and hence privately observe
	// levels the chain never certifies.
	LevelObservers map[types.ReplicaID]bool

	// Workload shape: modeled transactions and bytes per block (defaults
	// to the paper's ~1000 txns / ~450KB).
	PayloadTxns  int
	PayloadBytes int

	// PayloadNow, when non-nil, replaces the default synthetic payload
	// source with a time-aware one (see compose.Spec.PayloadNow); the bank
	// workload uses it so submit timestamps equal block creation times.
	PayloadNow func(r types.Round, now time.Duration) types.Payload

	// App, when non-nil, attaches the execution layer: every replica runs a
	// fresh instance from this factory (fresh again on restart, so recovery
	// re-executes the restored chain — see compose.Spec.App) and votes carry
	// the resulting AppHash. Result.AppHashes records each replica's
	// committed state root per height when RecordChains is also set.
	App func() app.StateMachine
}

// PartitionPlan schedules one network split: Groups install at At (replicas
// not listed form one implicit final group) and the split heals at Heal
// (0 = never).
type PartitionPlan struct {
	At, Heal time.Duration
	Groups   [][]types.ReplicaID
}

// CrashPlan schedules one replica's kill and (optional) restart. The
// replica runs journal-backed; at Crash it stops processing events (its WAL
// retains everything flushed — i.e. everything, since engines flush per
// event); at Restart a fresh engine is recovered from the WAL, re-joins via
// state sync, and resumes voting under its pre-crash marker obligations.
type CrashPlan struct {
	Replica types.ReplicaID
	Crash   time.Duration
	// Restart of 0 means the replica stays down.
	Restart time.Duration
}

// Result aggregates one scenario run.
type Result struct {
	Scenario *Scenario

	// CommittedBlocks/Txns are counted at the observer (first honest,
	// non-crashed replica).
	CommittedBlocks int
	CommittedTxns   int64
	ThroughputTPS   float64
	BlocksPerSec    float64

	// RegularLatency is block-creation-to-commit over all blocks over all
	// replicas (the paper's measurement), window-clipped.
	RegularLatency metrics.Summary
	// LevelLatency maps strength level x to creation-to-x-strong latency.
	LevelLatency map[int]metrics.Summary
	// LevelCommitDelay maps strength level x to the delay between a
	// replica's regular (f-strong) commit of a block and the block reaching
	// x-strong at that replica — the operator-facing "how much longer for
	// more resilience" number. Rises observed in the same engine event as
	// the commit (or, in DiemBFT, microseconds before it: strength outputs
	// precede commit outputs within one event) count as zero.
	LevelCommitDelay map[int]metrics.Summary

	Msgs          simnet.MsgStats
	MsgsPerCommit float64
	BytesPerBlock float64
	FinalRound    types.Round
	Events        int64

	// Observer is the replica whose commits the scalar counters use (the
	// first one that is neither crashed, Byzantine, nor under a CrashPlan).
	Observer types.ReplicaID
	// Chains maps replica -> height -> committed block when
	// Scenario.RecordChains is set.
	Chains map[types.ReplicaID]map[types.Height]types.BlockID

	// Strengths maps replica -> block -> maximum observed strength (regular
	// commits folded in at x = F) when Scenario.RecordStrengths is set;
	// Blocks indexes every block those observations mention. The scenario
	// fuzzer's Definition 1 and monotonicity checkers read them.
	Strengths map[types.ReplicaID]map[types.BlockID]int
	Blocks    map[types.BlockID]*types.Block
	// StrengthViolations lists monotonicity/bounds breaches observed live
	// (strength must rise, stay within (0, 2F], per replica per block).
	StrengthViolations []string
	// PartitionDrops counts deliveries discarded by scheduled partitions.
	PartitionDrops int64

	// AppHashes maps replica -> height -> the execution-layer state root the
	// replica committed there, recorded at commit time when Scenario.App and
	// Scenario.RecordChains are both set. The fuzzer's execution-agreement
	// invariant and the bank-workload experiment read it.
	AppHashes map[types.ReplicaID]map[types.Height][32]byte
	// AppExecutedBlocks is the number of blocks the observer's replica ran
	// through its state machine (Scenario.App runs only).
	AppExecutedBlocks int64

	// Pacemakers holds each DiemBFT replica's final timeout-buffer
	// accounting (buffered entries, per-peer high-watermark, cap drops) —
	// the evidence the liveness-attack A/B uses to prove bounded memory
	// under timeout-spam. Replicas under a CrashPlan report their final
	// incarnation; Streamlet scenarios leave it empty.
	Pacemakers map[types.ReplicaID]pacemaker.Stats
}

// DefaultLevels returns the paper's x sweep {1.0f, 1.1f, ..., 2.0f} as
// integer strength values.
func DefaultLevels(f int) []int {
	out := make([]int, 0, 11)
	seen := make(map[int]bool)
	for i := 0; i <= 10; i++ {
		x := f + i*f/10
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// LevelLabel renders a strength value as a multiple of f ("1.3f").
func LevelLabel(x, f int) string {
	return fmt.Sprintf("%.1ff", float64(x)/float64(f))
}

func (s *Scenario) withDefaults() *Scenario {
	c := *s
	if c.Protocol == 0 {
		c.Protocol = ProtoDiemBFT
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = time.Second
	}
	if c.Delta == 0 {
		c.Delta = 100 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Minute
	}
	if c.Levels == nil {
		c.Levels = DefaultLevels(c.F)
	}
	if c.PayloadTxns == 0 {
		c.PayloadTxns = workload.PaperTxnsPerBlock
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = workload.PaperBlockBytes
	}
	if c.Horizon == 0 {
		c.Horizon = 2*c.N + 16
	}
	if c.PruneKeep == 0 {
		c.PruneKeep = types.Height(3*c.N + 64)
	}
	if c.TailMargin == 0 {
		c.TailMargin = c.Duration / 5
	}
	if c.Scheme == "" {
		c.Scheme = crypto.SchemeSim
	}
	if c.Scheme == crypto.SchemeEd25519 || c.Scheme == crypto.SchemeEd25519Agg {
		c.VerifySignatures = true
	}
	return &c
}

// collector accumulates measurements during a run.
type collector struct {
	sc       *Scenario
	levels   []int
	regular  metrics.Series
	byLevel  map[int]*metrics.Series
	reached  map[types.ReplicaID]map[types.BlockID]int
	commits  map[types.ReplicaID]int
	chains   map[types.ReplicaID]map[types.Height]types.BlockID
	observer types.ReplicaID

	// Commit→x-strong delay accounting (in-window blocks only). commitAt
	// holds each replica's regular-commit time per block; delayLevel the
	// per-level delay series. Strength rises can precede the commit within
	// one engine event (DiemBFT emits Strength outputs before Commit), so
	// pre-commit rises buffer in pendingRises and flush at commit with the
	// delay clamped at zero.
	commitAt     map[types.ReplicaID]map[types.BlockID]time.Duration
	delayLevel   map[int]*metrics.Series
	pendingRises map[types.ReplicaID]map[types.BlockID][]pendingRise

	// Invariant-checker inputs (Scenario.RecordStrengths). strengths holds
	// the per-replica maximum (commits folded in at F); lastEvent tracks
	// only tracker-reported strength events, the stream the monotonicity
	// invariant constrains.
	strengths  map[types.ReplicaID]map[types.BlockID]int
	lastEvent  map[types.ReplicaID]map[types.BlockID]int
	blocks     map[types.BlockID]*types.Block
	violations []string
}

// pendingRise is one strength rise observed before the block's regular
// commit, awaiting the commit time to resolve into a delay.
type pendingRise struct {
	x  int
	at time.Duration
}

func newCollector(sc *Scenario, observer types.ReplicaID) *collector {
	c := &collector{
		sc:           sc,
		levels:       sc.Levels,
		byLevel:      make(map[int]*metrics.Series, len(sc.Levels)),
		reached:      make(map[types.ReplicaID]map[types.BlockID]int),
		commits:      make(map[types.ReplicaID]int),
		observer:     observer,
		commitAt:     make(map[types.ReplicaID]map[types.BlockID]time.Duration),
		delayLevel:   make(map[int]*metrics.Series, len(sc.Levels)),
		pendingRises: make(map[types.ReplicaID]map[types.BlockID][]pendingRise),
	}
	for _, lv := range sc.Levels {
		c.byLevel[lv] = &metrics.Series{}
		c.delayLevel[lv] = &metrics.Series{}
	}
	if sc.RecordChains {
		c.chains = make(map[types.ReplicaID]map[types.Height]types.BlockID)
	}
	if sc.RecordStrengths {
		c.strengths = make(map[types.ReplicaID]map[types.BlockID]int)
		c.lastEvent = make(map[types.ReplicaID]map[types.BlockID]int)
		c.blocks = make(map[types.BlockID]*types.Block)
	}
	return c
}

// noteRestart resets the monotonicity baseline for a replica: a restarted
// incarnation may legitimately re-announce a level the pre-crash one already
// reported (its tracker restores from the journal, then re-observes via
// state sync). Monotonicity is a per-incarnation invariant.
func (c *collector) noteRestart(id types.ReplicaID) {
	if c.lastEvent != nil {
		delete(c.lastEvent, id)
	}
}

// recordStrength folds one strength observation (x = F for regular commits)
// into the checker inputs, flagging monotonicity and bounds breaches.
func (c *collector) recordStrength(rep types.ReplicaID, b *types.Block, x int, fromCommit bool) {
	if c.strengths == nil {
		return
	}
	id := b.ID()
	if _, ok := c.blocks[id]; !ok {
		c.blocks[id] = b
	}
	m, ok := c.strengths[rep]
	if !ok {
		m = make(map[types.BlockID]int)
		c.strengths[rep] = m
	}
	if !fromCommit {
		// Live monotonicity/bounds checks: strength reports must strictly
		// rise per replica per block and stay within (0, 2F].
		le, ok := c.lastEvent[rep]
		if !ok {
			le = make(map[types.BlockID]int)
			c.lastEvent[rep] = le
		}
		if x <= 0 || x > 2*c.sc.F {
			c.violations = append(c.violations,
				fmt.Sprintf("replica %d reported out-of-range strength %d for %s (f=%d)", rep, x, id, c.sc.F))
		} else if prev, seen := le[id]; seen && x <= prev {
			c.violations = append(c.violations,
				fmt.Sprintf("replica %d strength for %s did not rise: %d after %d", rep, id, x, prev))
		}
		if x > le[id] {
			le[id] = x
		}
	}
	if prev, seen := m[id]; !seen || x > prev {
		m[id] = x
	}
}

// inWindow reports whether a block's creation time falls inside the
// measurement window.
func (c *collector) inWindow(b *types.Block) bool {
	ts := time.Duration(b.Timestamp)
	return ts >= c.sc.Warmup && ts <= c.sc.Duration-c.sc.TailMargin
}

func (c *collector) onCommit(rep types.ReplicaID, now time.Duration, b *types.Block) {
	c.commits[rep]++
	if c.chains != nil {
		m, ok := c.chains[rep]
		if !ok {
			m = make(map[types.Height]types.BlockID)
			c.chains[rep] = m
		}
		m[b.Height] = b.ID()
	}
	c.recordStrength(rep, b, c.sc.F, true)
	if c.inWindow(b) {
		c.regular.AddDuration(now - time.Duration(b.Timestamp))
	}
	if c.inWindow(b) && (c.sc.LevelObservers == nil || c.sc.LevelObservers[rep]) {
		id := b.ID()
		m, ok := c.commitAt[rep]
		if !ok {
			m = make(map[types.BlockID]time.Duration)
			c.commitAt[rep] = m
		}
		m[id] = now
		// Rises the tracker reported ahead of this commit resolve now.
		if pend := c.pendingRises[rep][id]; len(pend) > 0 {
			for _, p := range pend {
				c.addLevelDelay(p.x, p.at-now)
			}
			delete(c.pendingRises[rep], id)
		}
	}
}

// addLevelDelay folds one commit→x-strong delay into the per-level series,
// clamping at zero (a rise reported in, or just ahead of, the commit's own
// engine event costs the operator nothing extra).
func (c *collector) addLevelDelay(lv int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	if s, ok := c.delayLevel[lv]; ok {
		s.AddDuration(d)
	}
}

func (c *collector) onStrength(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
	c.recordStrength(rep, b, x, false)
	if c.sc.LevelObservers != nil && !c.sc.LevelObservers[rep] {
		return
	}
	if !c.inWindow(b) {
		return
	}
	m, ok := c.reached[rep]
	if !ok {
		m = make(map[types.BlockID]int)
		c.reached[rep] = m
	}
	prev := m[b.ID()]
	if x <= prev {
		return
	}
	m[b.ID()] = x
	lat := now - time.Duration(b.Timestamp)
	id := b.ID()
	committed, hasCommit := c.commitAt[rep][id]
	for _, lv := range c.levels {
		if lv > prev && lv <= x {
			c.byLevel[lv].AddDuration(lat)
			if hasCommit {
				c.addLevelDelay(lv, now-committed)
			} else {
				// Strength outputs precede the commit output within one
				// DiemBFT event; park the rise until the commit lands.
				pm, ok := c.pendingRises[rep]
				if !ok {
					pm = make(map[types.BlockID][]pendingRise)
					c.pendingRises[rep] = pm
				}
				pm[id] = append(pm[id], pendingRise{x: lv, at: now})
			}
		}
	}
}

// Run executes the scenario and returns its measurements.
func Run(sc *Scenario) (*Result, error) {
	s := sc.withDefaults()
	if s.N != 3*s.F+1 {
		return nil, fmt.Errorf("harness: n=%d must be 3f+1 (f=%d)", s.N, s.F)
	}
	if s.Latency == nil {
		return nil, fmt.Errorf("harness: latency model required")
	}
	ring, err := crypto.NewKeyRing(s.N, s.Seed, s.Scheme)
	if err != nil {
		return nil, err
	}

	// Observer: first replica that is neither crashed nor Byzantine nor
	// scheduled for a kill/restart.
	planned := make(map[types.ReplicaID]bool, len(s.Crashes))
	for _, plan := range s.Crashes {
		planned[plan.Replica] = true
	}
	observer := types.ReplicaID(0)
	for i := 0; i < s.N; i++ {
		id := types.ReplicaID(i)
		if _, crashed := s.Crash[id]; crashed {
			continue
		}
		if _, byz := s.Adversaries[id]; byz {
			continue
		}
		if planned[id] {
			continue
		}
		observer = id
		break
	}
	col := newCollector(s, observer)

	// Keep the engine handles: the commit observer reads committed AppHashes
	// out of them, and after the run the harness harvests per-replica
	// pacemaker stats (restarted replicas overwrite their slot, so the map
	// always points at the final incarnation).
	engines := make(map[types.ReplicaID]engine.Engine, s.N)

	onCommit := col.onCommit
	var appHashes map[types.ReplicaID]map[types.Height][32]byte
	if s.App != nil && s.RecordChains {
		// Record each replica's committed state root at commit time — the
		// executor is guaranteed to still hold the root then (it prunes only
		// far below the committed height).
		appHashes = make(map[types.ReplicaID]map[types.Height][32]byte)
		onCommit = func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			col.onCommit(rep, now, b)
			if exec := engineExecutor(engines[rep]); exec != nil {
				if root, ok := exec.Root(b.ID()); ok {
					m := appHashes[rep]
					if m == nil {
						m = make(map[types.Height][32]byte)
						appHashes[rep] = m
					}
					m[b.Height] = root
				}
			}
		}
	}

	simCfg := simnet.Config{
		N:           s.N,
		Latency:     s.Latency,
		Seed:        s.Seed,
		OnCommit:    onCommit,
		OnStrength:  col.onStrength,
		Prevalidate: s.VerifyPipeline,
	}
	if s.GST > 0 {
		gst, extra := s.GST, s.PreGSTExtra
		simCfg.ExtraDelay = func(from, to types.ReplicaID, now time.Duration) time.Duration {
			if now < gst {
				return extra
			}
			return 0
		}
	}
	sim := simnet.New(simCfg)

	payload := workload.PaperPayload(s.Seed, s.PayloadTxns, s.PayloadBytes)

	// Durability: replicas under a CrashPlan (or every replica, when a
	// DataDir is pinned) run journal-backed so restarts can recover.
	durable := make(map[types.ReplicaID]bool)
	for _, plan := range s.Crashes {
		durable[plan.Replica] = true
	}
	dataDir := s.DataDir
	if len(durable) > 0 || dataDir != "" {
		if dataDir == "" {
			tmp, err := os.MkdirTemp("", "sft-wal-")
			if err != nil {
				return nil, fmt.Errorf("harness: wal dir: %w", err)
			}
			defer os.RemoveAll(tmp)
			dataDir = tmp
		} else if len(s.Crashes) == 0 {
			for i := 0; i < s.N; i++ {
				durable[types.ReplicaID(i)] = true
			}
		}
	}
	walDir := func(id types.ReplicaID) string {
		return filepath.Join(dataDir, fmt.Sprintf("replica-%d", id))
	}
	// NoSync (fsync=false): simulated crashes stop event dispatch, not the
	// host process, so page-cache durability models the kill faithfully and
	// scenario runs stay fast. Real deployments (cmd/sftnode) fsync.
	openJournal := func(id types.ReplicaID) (*core.Journal, *core.Recovery, error) {
		return compose.OpenWAL(walDir(id), false)
	}

	for i := 0; i < s.N; i++ {
		id := types.ReplicaID(i)
		var journal *core.Journal
		if durable[id] {
			j, _, err := openJournal(id)
			if err != nil {
				return nil, err
			}
			journal = j
		}
		eng, err := compose.Engine(engineSpec(s, id, ring, payload, journal))
		if err != nil {
			return nil, err
		}
		engines[id] = eng
		sim.SetEngine(id, eng)
	}
	for id, at := range s.Crash {
		sim.CrashAt(id, at)
	}
	for _, plan := range s.Partitions {
		sim.PartitionAt(plan.At, plan.Groups...)
		if plan.Heal > 0 {
			sim.HealAt(plan.Heal)
		}
	}
	for _, plan := range s.Crashes {
		sim.CrashAt(plan.Replica, plan.Crash)
		if plan.Restart <= 0 {
			continue
		}
		id := plan.Replica
		sim.RestartAt(id, plan.Restart, func() engine.Engine {
			// Runs at virtual time plan.Restart: recover the WAL as of the
			// crash and build a fresh engine around it.
			col.noteRestart(id)
			journal, rec, err := openJournal(id)
			if err != nil {
				panic(fmt.Sprintf("harness: restart %v: %v", id, err))
			}
			eng, err := compose.Engine(engineSpec(s, id, ring, payload, journal))
			if err != nil {
				panic(fmt.Sprintf("harness: rebuild %v: %v", id, err))
			}
			if err := compose.Restore(eng, rec); err != nil {
				panic(fmt.Sprintf("harness: restore %v: %v", id, err))
			}
			engines[id] = eng
			return eng
		})
	}
	sim.Run(s.Duration)

	res := &Result{
		Scenario:         s,
		Observer:         observer,
		CommittedBlocks:  col.commits[observer],
		LevelLatency:     make(map[int]metrics.Summary, len(s.Levels)),
		LevelCommitDelay: make(map[int]metrics.Summary, len(s.Levels)),
		Msgs:             sim.Stats(),
		Events:           sim.Events(),
	}
	res.CommittedTxns = int64(res.CommittedBlocks) * int64(s.PayloadTxns)
	res.ThroughputTPS = float64(res.CommittedTxns) / s.Duration.Seconds()
	res.BlocksPerSec = float64(res.CommittedBlocks) / s.Duration.Seconds()
	res.RegularLatency = col.regular.Summarize()
	for lv, series := range col.byLevel {
		res.LevelLatency[lv] = series.Summarize()
	}
	for lv, series := range col.delayLevel {
		res.LevelCommitDelay[lv] = series.Summarize()
	}
	if res.CommittedBlocks > 0 {
		res.MsgsPerCommit = float64(res.Msgs.Count) / float64(res.CommittedBlocks)
		res.BytesPerBlock = float64(res.Msgs.Bytes) / float64(res.CommittedBlocks)
	}
	res.Chains = col.chains
	res.AppHashes = appHashes
	if exec := engineExecutor(engines[observer]); exec != nil {
		res.AppExecutedBlocks = exec.Executed()
	}
	res.Strengths = col.strengths
	res.Blocks = col.blocks
	res.StrengthViolations = col.violations
	res.PartitionDrops = sim.PartitionDrops()
	res.Pacemakers = make(map[types.ReplicaID]pacemaker.Stats, len(engines))
	for id, eng := range engines {
		if w, ok := eng.(*adversary.Replica); ok {
			eng = w.Inner()
		}
		if p, ok := eng.(interface{ PacemakerStats() pacemaker.Stats }); ok {
			res.Pacemakers[id] = p.PacemakerStats()
		}
	}
	return res, nil
}

// engineExecutor digs the execution-layer executor out of an engine handle,
// unwrapping an adversary shell first; nil when the engine runs no app.
func engineExecutor(e engine.Engine) *app.Executor {
	if e == nil {
		return nil
	}
	if w, ok := e.(*adversary.Replica); ok {
		e = w.Inner()
	}
	if ax, ok := e.(interface{ AppExecutor() *app.Executor }); ok {
		return ax.AppExecutor()
	}
	return nil
}

// engineSpec maps a scenario onto the shared composition path
// (internal/compose) — the same path the public sft facade builds nodes
// through, so facade runs and harness runs construct identical engines.
func engineSpec(s *Scenario, id types.ReplicaID, ring *crypto.KeyRing, payload func(types.Round) types.Payload, journal *core.Journal) compose.Spec {
	switch s.Protocol {
	case ProtoStreamlet:
		spec := compose.Spec{
			Protocol:          compose.Streamlet,
			ID:                id,
			N:                 s.N,
			F:                 s.F,
			Signer:            ring.Signer(id),
			Verifier:          ring,
			VerifySignatures:  s.VerifySignatures,
			Delta:             s.Delta,
			SFT:               s.SFT,
			Horizon:           s.Horizon,
			DisableEcho:       s.DisableEcho,
			ProposalWindow:    s.ProposalWindow,
			Payload:           payload,
			PayloadNow:        s.PayloadNow,
			App:               s.App,
			NaiveEndorsements: s.NaiveEndorsements,
			Journal:           journal,
		}
		applyAdversary(&spec, s, id)
		return spec
	default:
		spec := compose.Spec{
			Protocol:          compose.DiemBFT,
			ID:                id,
			N:                 s.N,
			F:                 s.F,
			Signer:            ring.Signer(id),
			Verifier:          ring,
			VerifySignatures:  s.VerifySignatures,
			DisableQCCache:    s.DisableQCCache,
			SFT:               s.SFT,
			FBFT:              s.FBFT,
			VoteMode:          s.VoteMode,
			IntervalWindow:    s.IntervalWindow,
			Horizon:           s.Horizon,
			RoundTimeout:      s.RoundTimeout,
			ExtraWait:         s.ExtraWait,
			ExtraWaitFor:      s.ExtraWaitFor,
			Payload:           payload,
			PayloadNow:        s.PayloadNow,
			App:               s.App,
			PruneKeep:         s.PruneKeep,
			NaiveEndorsements: s.NaiveEndorsements,
			Journal:           journal,

			ActivePacemaker:        s.ActivePacemaker,
			TimeoutWindow:          s.TimeoutWindow,
			PerPeerTimeoutCap:      s.PerPeerTimeoutCap,
			LeaderReputationWindow: s.LeaderReputationWindow,
		}
		applyAdversary(&spec, s, id)
		return spec
	}
}

// applyAdversary attaches the replica's Byzantine behavior chain, seeding
// its randomness from the scenario seed and the replica identity so every
// corrupted replica misbehaves differently but reproducibly.
func applyAdversary(spec *compose.Spec, s *Scenario, id types.ReplicaID) {
	specs, ok := s.Adversaries[id]
	if !ok || len(specs) == 0 {
		return
	}
	spec.Adversary = specs
	spec.AdversarySeed = s.Seed*1000003 + int64(id)
	peers := make([]types.ReplicaID, 0, len(s.Adversaries))
	for rep := range s.Adversaries {
		peers = append(peers, rep)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	spec.AdversaryPeers = peers
}

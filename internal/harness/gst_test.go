package harness_test

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/simnet"
)

// TestGSTScenarioFields exercises the Scenario-level partial-synchrony
// knobs: with a 5s GST and crippling pre-GST delays, almost all commits and
// strong commits happen after GST, and the cluster still reaches 2f-strong
// afterwards — the paper's setting ("after GST ... blocks will be strong
// committed").
func TestGSTScenarioFields(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := harness.Run(&harness.Scenario{
		Name:         "gst",
		N:            13,
		F:            4,
		Latency:      simnet.NewSymmetricModel(13, 3, time.Millisecond, 20*time.Millisecond, 5*time.Millisecond),
		Seed:         44,
		Duration:     60 * time.Second,
		Warmup:       10 * time.Second, // measure only post-GST blocks
		GST:          5 * time.Second,
		PreGSTExtra:  2 * time.Second, // >> round timeout: no progress pre-GST
		RoundTimeout: 400 * time.Millisecond,
		SFT:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBlocks < 50 {
		t.Fatalf("only %d blocks committed after GST", res.CommittedBlocks)
	}
	if s := res.LevelLatency[8]; s.Count == 0 { // 2f = 8
		t.Fatal("2f-strong unreached after GST")
	}
	t.Logf("post-GST: %d blocks, regular %.3fs, 2f-strong %.3fs",
		res.CommittedBlocks, res.RegularLatency.Mean, res.LevelLatency[8].Mean)
}

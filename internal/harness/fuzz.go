package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/diembft"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// This file is the randomized adversarial scenario fuzzer: a seeded
// generator samples cluster shapes, engines, commit-rule modes, crash and
// restart plans, network partitions and per-replica Byzantine behavior
// compositions (internal/adversary), runs each scenario on the
// discrete-event simulator through the same composition path as every other
// experiment, and checks the paper's invariants on the result:
//
//   - Definition 1 safety: no two conflicting blocks may both be observed at
//     strength >= t by honest replicas, where t is the number of Byzantine
//     replicas in the scenario (any x-strong commit with x >= t is final).
//   - Strength monotonicity: per honest replica per block, reported
//     strength strictly rises and stays within (0, 2f].
//   - Chain consistency: with t <= f, honest replicas agree on the
//     committed block at every height.
//   - Liveness under benign faults (Theorem 2): scenarios with no Byzantine
//     replicas, healed partitions and at most f crashes keep committing,
//     and fault-free runs reach the 2f-strong ceiling.
//
// Every scenario is reproducible from (Seed, Index) alone; violations are
// reported with the full generated spec so one line of output replays them.

// FuzzOptions configures a fuzzing sweep.
type FuzzOptions struct {
	// Seed drives scenario generation AND each scenario's simulation; the
	// pair (Seed, Index) identifies one scenario forever.
	Seed int64
	// Scenarios is the number of scenarios to run (default 50).
	Scenarios int
	// N fixes the cluster size (must be 3f+1); 0 samples from {4, 7}.
	N int
	// Duration is the per-scenario virtual run length (default 6s).
	Duration time.Duration
	// Naive runs every scenario with the UNSAFE marker-free endorsement
	// counting of Appendix C — the weakened-rule canary that the checkers
	// must catch.
	Naive bool
	// Scheme fixes the signature scheme for every scenario ("" = the
	// generator's default, crypto.SchemeSim). The aggregate schemes exercise
	// compact certificates under the full adversary mix.
	Scheme string
	// Workers bounds the number of scenarios run concurrently: 1 runs the
	// sweep on the calling goroutine exactly as before, 0 selects
	// GOMAXPROCS. Each (Seed, Index) replay is an independent deterministic
	// simulation and results merge in index order, so the report is
	// identical at any worker count.
	Workers int
}

func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.Scenarios == 0 {
		o.Scenarios = 50
	}
	if o.Duration == 0 {
		o.Duration = 6 * time.Second
	}
	return o
}

// FuzzScenario is one generated scenario, fully self-describing: the fields
// below (all plain data) rebuild the exact run.
type FuzzScenario struct {
	Index   int
	SubSeed int64

	Protocol Protocol
	N, F     int
	Duration time.Duration

	// Engine knobs sampled by the generator.
	VoteMode     diembft.VoteMode // DiemBFT only
	RoundTimeout time.Duration
	Delta        time.Duration // Streamlet only
	Verify       bool
	Naive        bool
	Scheme       string // "" = crypto.SchemeSim

	// Pacemaker knobs (DiemBFT only). The generator samples the active
	// pacemaker so justified round entry and timeout validation run under
	// the full adversary mix; the liveness canary additionally pins
	// LeaderReputation and PerPeerCap for its A/B arms.
	ActivePacemaker  bool
	LeaderReputation types.Round
	PerPeerCap       int

	// BankApp attaches the execution layer: every replica runs a small bank
	// state machine (signature verification off for sweep speed), leaders
	// propose bank-transfer payloads, and votes carry AppHashes — so the
	// execute-before-vote path faces the same adversary mix as consensus
	// itself, and the execution-agreement invariant below gets checked.
	BankApp bool

	// Network model (uniform latency keeps specs compact).
	LatencyBase, LatencyJitter time.Duration

	// Faults.
	Adversaries map[types.ReplicaID][]adversary.Spec
	Crashes     []CrashPlan
	Partitions  []PartitionPlan
}

// subSeed mixes the sweep seed and scenario index into an independent
// per-scenario seed (splitmix64 finalizer).
func subSeed(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// GenFuzzScenario deterministically generates scenario `index` of the sweep
// (seed, opts): calling it again with the same arguments replays the exact
// same scenario.
func GenFuzzScenario(seed int64, index int, opts FuzzOptions) FuzzScenario {
	opts = opts.withDefaults()
	sub := subSeed(seed, index)
	rng := rand.New(rand.NewSource(sub))

	n := opts.N
	if n == 0 {
		n = []int{4, 7}[rng.Intn(2)]
	}
	f := (n - 1) / 3
	s := FuzzScenario{
		Index:         index,
		SubSeed:       sub,
		N:             n,
		F:             f,
		Duration:      opts.Duration,
		RoundTimeout:  250 * time.Millisecond,
		Delta:         25 * time.Millisecond,
		LatencyBase:   5 * time.Millisecond,
		LatencyJitter: 2 * time.Millisecond,
		Naive:         opts.Naive,
		Scheme:        opts.Scheme,
	}
	if rng.Float64() < 0.6 {
		s.Protocol = ProtoDiemBFT
		s.VoteMode = diembft.VoteMarker
		if rng.Float64() < 0.3 {
			s.VoteMode = diembft.VoteIntervals
		}
		// Sample the active pacemaker (and occasionally leader reputation)
		// so justified round entry faces the same adversary mix as the
		// baseline — benign active scenarios must still pass the Theorem 2
		// liveness checks below.
		if rng.Float64() < 0.35 {
			s.ActivePacemaker = true
			if rng.Float64() < 0.5 {
				s.LeaderReputation = 8
			}
		}
	} else {
		s.Protocol = ProtoStreamlet
	}

	// Byzantine replicas: up to 2f of them, each composing 1-2 behaviors.
	t := rng.Intn(2*f + 1)
	if t > 0 {
		s.Adversaries = make(map[types.ReplicaID][]adversary.Spec, t)
		for _, id := range pickReplicas(rng, n, t, nil) {
			s.Adversaries[id] = sampleBehaviors(rng)
		}
	}
	// Forged-content behaviors (bad signatures, garbage) are only a
	// meaningful attack against verifying receivers; scenarios containing
	// them always verify.
	s.Verify = rng.Float64() < 0.3
	for _, specs := range s.Adversaries {
		for _, b := range specs {
			if b.Kind == adversary.CorruptSigs || b.Kind == adversary.Garbage {
				s.Verify = true
			}
		}
	}

	// Crash/restart plans on non-Byzantine replicas.
	if rng.Float64() < 0.5 && f > 0 {
		c := 1 + rng.Intn(f)
		for _, id := range pickReplicas(rng, n, c, s.Adversaries) {
			plan := CrashPlan{
				Replica: id,
				Crash:   time.Duration(float64(s.Duration) * (0.2 + 0.4*rng.Float64())),
			}
			if rng.Float64() < 0.5 {
				plan.Restart = plan.Crash + time.Duration(float64(s.Duration)*(0.1+0.2*rng.Float64()))
			}
			s.Crashes = append(s.Crashes, plan)
		}
		sort.Slice(s.Crashes, func(i, j int) bool { return s.Crashes[i].Replica < s.Crashes[j].Replica })
	}

	// A third of the scenarios run the execution layer, so AppHash-carrying
	// votes and vote filtering face every behavior composition above.
	s.BankApp = rng.Float64() < 0.35

	// One partition window: a random split installed mid-run, usually
	// healed.
	if rng.Float64() < 0.4 {
		size := 1 + rng.Intn(n-1)
		group := pickReplicas(rng, n, size, nil)
		plan := PartitionPlan{
			At:     time.Duration(float64(s.Duration) * (0.2 + 0.3*rng.Float64())),
			Groups: [][]types.ReplicaID{group},
		}
		if rng.Float64() < 0.85 {
			plan.Heal = plan.At + time.Duration(float64(s.Duration)*(0.1+0.25*rng.Float64()))
		}
		s.Partitions = append(s.Partitions, plan)
	}
	return s
}

// pickReplicas samples k distinct replicas from [0, n), skipping `exclude`.
func pickReplicas(rng *rand.Rand, n, k int, exclude map[types.ReplicaID][]adversary.Spec) []types.ReplicaID {
	pool := make([]types.ReplicaID, 0, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		if _, skip := exclude[id]; skip {
			continue
		}
		pool = append(pool, id)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if k > len(pool) {
		k = len(pool)
	}
	out := append([]types.ReplicaID(nil), pool[:k]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sampleBehaviors draws a 1-2 element behavior composition.
func sampleBehaviors(rng *rand.Rand) []adversary.Spec {
	count := 1 + rng.Intn(2)
	seen := make(map[adversary.Kind]bool, count)
	out := make([]adversary.Spec, 0, count)
	for len(out) < count {
		spec := sampleBehavior(rng)
		if seen[spec.Kind] {
			continue
		}
		seen[spec.Kind] = true
		out = append(out, spec)
	}
	return out
}

func sampleBehavior(rng *rand.Rand) adversary.Spec {
	switch adversary.Kinds[rng.Intn(len(adversary.Kinds))] {
	case adversary.Equivocate:
		return adversary.Spec{Kind: adversary.Equivocate}
	case adversary.Withhold:
		return adversary.Spec{Kind: adversary.Withhold}
	case adversary.DoubleVote:
		return adversary.Spec{Kind: adversary.DoubleVote}
	case adversary.LieMarkers:
		return adversary.Spec{Kind: adversary.LieMarkers}
	case adversary.ForkRevive:
		return adversary.Spec{Kind: adversary.ForkRevive}
	case adversary.CorruptSigs:
		return adversary.Spec{Kind: adversary.CorruptSigs, Every: 2 + rng.Intn(4)}
	case adversary.Garbage:
		return adversary.Spec{Kind: adversary.Garbage, Every: 3 + rng.Intn(5)}
	case adversary.ReplayStale:
		return adversary.Spec{Kind: adversary.ReplayStale, Every: 3 + rng.Intn(5)}
	case adversary.TimeoutSpam:
		return adversary.Spec{Kind: adversary.TimeoutSpam, Every: 2 + rng.Intn(4)}
	case adversary.LieRoundEntry:
		return adversary.Spec{Kind: adversary.LieRoundEntry, Every: 2 + rng.Intn(4)}
	case adversary.WrongAppHash:
		return adversary.Spec{Kind: adversary.WrongAppHash}
	case adversary.Drop:
		return adversary.Spec{Kind: adversary.Drop, P: 0.1 + 0.4*rng.Float64()}
	case adversary.Delay:
		return adversary.Spec{
			Kind:   adversary.Delay,
			Delay:  time.Duration(1+rng.Intn(20)) * time.Millisecond,
			Jitter: time.Duration(1+rng.Intn(10)) * time.Millisecond,
		}
	default:
		return adversary.Spec{Kind: adversary.Duplicate, P: 0.1 + 0.4*rng.Float64()}
	}
}

// Scenario lowers the generated spec onto the harness scenario type — the
// same structure every other experiment runs through.
func (s FuzzScenario) Scenario() *Scenario {
	sc := &Scenario{
		Name:     fmt.Sprintf("fuzz-%d", s.Index),
		Protocol: s.Protocol,
		N:        s.N,
		F:        s.F,
		Latency:  &simnet.UniformModel{Base: s.LatencyBase, Jitter: s.LatencyJitter},
		Seed:     s.SubSeed,
		Duration: s.Duration,

		RoundTimeout:     s.RoundTimeout,
		Delta:            s.Delta,
		SFT:              true,
		VoteMode:         s.VoteMode,
		VerifySignatures: s.Verify,
		Scheme:           s.Scheme,

		ActivePacemaker:        s.ActivePacemaker,
		LeaderReputationWindow: s.LeaderReputation,
		PerPeerTimeoutCap:      s.PerPeerCap,

		NaiveEndorsements: s.Naive,
		Adversaries:       s.Adversaries,
		Crashes:           s.Crashes,
		Partitions:        s.Partitions,

		RecordChains:    true,
		RecordStrengths: true,
	}
	if s.BankApp {
		cfg := app.BankConfig{Seed: s.SubSeed, Accounts: 128, InitialBalance: 1 << 20, DisableSigVerify: true}
		sc.App = func() app.StateMachine { return app.NewBank(cfg) }
		// One shared generator models one client population submitting to
		// whoever leads; batches stay small to keep sweep cost flat.
		sc.PayloadNow = workload.NewBankWorkload(s.SubSeed, cfg, 24, false).Payload
	}
	return sc
}

// String renders the spec as one replayable line.
func (s FuzzScenario) String() string {
	var b strings.Builder
	proto := "diembft"
	if s.Protocol == ProtoStreamlet {
		proto = "streamlet"
	}
	fmt.Fprintf(&b, "scenario %d (subseed %d): %s n=%d f=%d dur=%v verify=%v",
		s.Index, s.SubSeed, proto, s.N, s.F, s.Duration, s.Verify)
	if s.Scheme != "" {
		fmt.Fprintf(&b, " scheme=%s", s.Scheme)
	}
	if s.Protocol == ProtoDiemBFT && s.VoteMode == diembft.VoteIntervals {
		b.WriteString(" votes=intervals")
	}
	if s.ActivePacemaker {
		b.WriteString(" active-pm")
		if s.LeaderReputation > 0 {
			fmt.Fprintf(&b, " rep=%d", s.LeaderReputation)
		}
	}
	if s.PerPeerCap > 0 {
		fmt.Fprintf(&b, " peercap=%d", s.PerPeerCap)
	}
	if s.BankApp {
		b.WriteString(" bank-app")
	}
	if s.Naive {
		b.WriteString(" NAIVE-RULE")
	}
	ids := make([]types.ReplicaID, 0, len(s.Adversaries))
	for id := range s.Adversaries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		names := make([]string, 0, len(s.Adversaries[id]))
		for _, spec := range s.Adversaries[id] {
			names = append(names, spec.String())
		}
		fmt.Fprintf(&b, " byz[%d]={%s}", id, strings.Join(names, ","))
	}
	for _, c := range s.Crashes {
		if c.Restart > 0 {
			fmt.Fprintf(&b, " crash[%d]=%v..%v", c.Replica, c.Crash.Round(time.Millisecond), c.Restart.Round(time.Millisecond))
		} else {
			fmt.Fprintf(&b, " crash[%d]=%v", c.Replica, c.Crash.Round(time.Millisecond))
		}
	}
	for _, p := range s.Partitions {
		heal := "never"
		if p.Heal > 0 {
			heal = p.Heal.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, " partition=%v..%s groups=%v", p.At.Round(time.Millisecond), heal, p.Groups)
	}
	return b.String()
}

// RunFuzzScenario executes one generated scenario and returns the raw run
// result plus every invariant violation found. The Definition 1 threshold
// counts only forging adversaries: a composition of pure timing behaviors
// (drop/delay/duplicate) cannot fabricate conflicting commits, so safety is
// checked around such replicas as if they were honest.
func RunFuzzScenario(spec FuzzScenario) (*Result, []string, error) {
	res, err := Run(spec.Scenario())
	if err != nil {
		return nil, nil, err
	}
	violations := CheckInvariants(res, adversary.ForgingReplicas(spec.Adversaries))
	violations = append(violations, checkLiveness(spec, res)...)
	return res, violations, nil
}

// CheckInvariants runs the safety checkers over a recorded result: the
// collector's live monotonicity findings, Definition 1 (no two conflicting
// blocks both at strength >= t in honest observations; pass t = the number
// of forging Byzantine replicas), and cross-replica chain consistency when
// t <= f. The scenario must have run with RecordStrengths (and, for chain
// consistency, RecordChains). Replicas whose behavior chains cannot forge
// (timing-only adversaries) count as honest observers.
func CheckInvariants(res *Result, byz int) []string {
	var out []string
	out = append(out, res.StrengthViolations...)
	honest := func(rep types.ReplicaID) bool {
		specs, bad := res.Scenario.Adversaries[rep]
		if !bad {
			return true
		}
		for _, s := range specs {
			if s.Kind.Forges() {
				return false
			}
		}
		return true
	}

	// Definition 1: collect the maximum honest-observed strength per block,
	// keep blocks at >= t, and verify they all lie on one chain.
	best := make(map[types.BlockID]int)
	for rep, m := range res.Strengths {
		if !honest(rep) {
			continue
		}
		for id, x := range m {
			if x > best[id] {
				best[id] = x
			}
		}
	}
	strong := make([]*types.Block, 0, len(best))
	for id, x := range best {
		if x >= byz && res.Blocks[id] != nil {
			strong = append(strong, res.Blocks[id])
		}
	}
	sort.Slice(strong, func(i, j int) bool {
		a, b := strong[i], strong[j]
		if a.Height != b.Height {
			return a.Height < b.Height
		}
		ai, bi := a.ID(), b.ID()
		return string(ai[:]) < string(bi[:])
	})
	// Pairwise-conflict freedom over a height-sorted list reduces to each
	// consecutive pair chaining: same height twice is an immediate
	// conflict, and if every block's ancestor at the previous block's
	// height is that block, the whole set lies on one chain.
	for i := 1; i < len(strong); i++ {
		lo, hi := strong[i-1], strong[i]
		if lo.Height == hi.Height {
			out = append(out, fmt.Sprintf(
				"Definition 1 violated: conflicting blocks %s and %s at height %d both reached strength >= %d with %d byzantine",
				lo.ID(), hi.ID(), lo.Height, byz, byz))
			continue
		}
		if anc, known := ancestorAt(res.Blocks, hi, lo.Height); known && anc != lo.ID() {
			out = append(out, fmt.Sprintf(
				"Definition 1 violated: conflicting blocks %s (h%d) and %s (h%d) both reached strength >= %d with %d byzantine",
				lo.ID(), lo.Height, hi.ID(), hi.Height, byz, byz))
		}
	}

	// Chain consistency: with at most f Byzantine replicas the classical
	// guarantee holds — honest committed chains agree at every height.
	if byz <= res.Scenario.F && res.Chains != nil {
		agreed := make(map[types.Height]types.BlockID)
		owner := make(map[types.Height]types.ReplicaID)
		reps := make([]types.ReplicaID, 0, len(res.Chains))
		for rep := range res.Chains {
			reps = append(reps, rep)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		for _, rep := range reps {
			if !honest(rep) {
				continue
			}
			for h, id := range res.Chains[rep] {
				if ref, ok := agreed[h]; !ok {
					agreed[h] = id
					owner[h] = rep
				} else if ref != id {
					out = append(out, fmt.Sprintf(
						"chain consistency violated at height %d: replica %d committed %s, replica %d committed %s",
						h, owner[h], ref, rep, id))
				}
			}
		}
	}

	// Execution agreement: with at most f Byzantine replicas, honest replicas
	// running the execution layer must commit the SAME state root at every
	// height — the fork-detection property the AppHash-in-vote design exists
	// for (a wrong-apphash coalition at t <= f must never split the committed
	// state).
	if byz <= res.Scenario.F && res.AppHashes != nil {
		agreed := make(map[types.Height][32]byte)
		owner := make(map[types.Height]types.ReplicaID)
		reps := make([]types.ReplicaID, 0, len(res.AppHashes))
		for rep := range res.AppHashes {
			reps = append(reps, rep)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
		for _, rep := range reps {
			if !honest(rep) {
				continue
			}
			for h, root := range res.AppHashes[rep] {
				if ref, ok := agreed[h]; !ok {
					agreed[h] = root
					owner[h] = rep
				} else if ref != root {
					out = append(out, fmt.Sprintf(
						"execution agreement violated at height %d: replica %d committed state root %x, replica %d committed %x",
						h, owner[h], ref[:8], rep, root[:8]))
				}
			}
		}
	}
	return out
}

// ancestorAt walks hi's parent links down to the target height. known is
// false when the walk leaves the recorded block set (pruned or unobserved
// ancestry) — the checker then stays conservative and reports nothing.
func ancestorAt(blocks map[types.BlockID]*types.Block, hi *types.Block, h types.Height) (types.BlockID, bool) {
	cur := hi
	for cur.Height > h {
		p, ok := blocks[cur.Parent]
		if !ok {
			return types.BlockID{}, false
		}
		cur = p
	}
	return cur.ID(), true
}

// checkLiveness applies the Theorem 2 class of checks to benign scenarios:
// with no Byzantine replicas, healed partitions and at most f permanent
// crashes the cluster must keep committing, and undisturbed runs must reach
// the 2f-strong ceiling on some block.
func checkLiveness(spec FuzzScenario, res *Result) []string {
	if len(spec.Adversaries) > 0 {
		return nil // liveness bounds only bind under benign faults
	}
	down := 0
	for _, c := range spec.Crashes {
		if c.Restart <= 0 {
			down++
		}
	}
	if down > spec.F {
		return nil
	}
	for _, p := range spec.Partitions {
		if p.Heal <= 0 || p.Heal > spec.Duration*3/5 {
			return nil // an unhealed (or late-healing) partition voids the bound
		}
	}
	var out []string
	if res.CommittedBlocks < 3 {
		out = append(out, fmt.Sprintf(
			"liveness violated: benign scenario committed only %d blocks at the observer", res.CommittedBlocks))
	}
	if len(spec.Partitions) == 0 && len(spec.Crashes) == 0 {
		target := 2 * spec.F
		reached := 0
		for _, m := range res.Strengths {
			for _, x := range m {
				if x >= target {
					reached++
				}
			}
		}
		if reached == 0 {
			out = append(out, fmt.Sprintf(
				"liveness violated: fault-free scenario never reached the %d-strong ceiling", target))
		}
	}
	return out
}

// FuzzFailure pairs a violating scenario with its findings.
type FuzzFailure struct {
	Spec       FuzzScenario
	Violations []string
}

// FuzzReport aggregates one fuzzing sweep.
type FuzzReport struct {
	Options   FuzzOptions
	Scenarios int
	// Failures lists every scenario with at least one invariant violation.
	Failures []FuzzFailure
	// ByzantineScenarios / PartitionScenarios / CrashScenarios count how
	// much of the space the sweep actually touched.
	ByzantineScenarios, PartitionScenarios, CrashScenarios int
	// TotalEvents and TotalBlocks aggregate simulation work; Elapsed is
	// host wall time (scenarios/min = Scenarios / Elapsed.Minutes()).
	TotalEvents int64
	TotalBlocks int
	Elapsed     time.Duration
}

// fuzzOutcome is the per-index result of one scenario, small enough to hold
// for the whole sweep so concurrent runs can be merged in index order.
type fuzzOutcome struct {
	spec       FuzzScenario
	events     int64
	blocks     int
	violations []string
	err        error
}

func runFuzzIndex(opts FuzzOptions, i int) fuzzOutcome {
	spec := GenFuzzScenario(opts.Seed, i, opts)
	res, violations, err := RunFuzzScenario(spec)
	if err != nil {
		return fuzzOutcome{spec: spec, err: fmt.Errorf("fuzz scenario %d: %w", i, err)}
	}
	return fuzzOutcome{spec: spec, events: res.Events, blocks: res.CommittedBlocks, violations: violations}
}

// RunFuzz executes the sweep: Scenarios generated scenarios, each run and
// invariant-checked. The returned report carries every violating spec; a
// violation is reproduced by re-running its (Seed, Index) pair.
//
// Scenarios are independent deterministic simulations keyed by (Seed, Index),
// so with Options.Workers > 1 they run on a worker pool and are merged back
// in ascending index order — the report is identical at every worker count,
// and Workers == 1 runs the sweep on the calling goroutine exactly as the
// serial implementation did.
func RunFuzz(opts FuzzOptions) (*FuzzReport, error) {
	opts = opts.withDefaults()
	report := &FuzzReport{Options: opts, Scenarios: opts.Scenarios}
	start := time.Now()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Scenarios {
		workers = opts.Scenarios
	}

	outcomes := make([]fuzzOutcome, opts.Scenarios)
	if workers <= 1 {
		for i := 0; i < opts.Scenarios; i++ {
			outcomes[i] = runFuzzIndex(opts, i)
			if outcomes[i].err != nil {
				// Match the serial contract: stop at the first failing
				// scenario rather than finishing the sweep.
				return nil, outcomes[i].err
			}
		}
	} else {
		indices := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range indices {
					outcomes[i] = runFuzzIndex(opts, i)
				}
			}()
		}
		for i := 0; i < opts.Scenarios; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
	}

	// Merge strictly in index order so the report — counters, failure list,
	// everything except Elapsed — is independent of scheduling.
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return nil, o.err
		}
		if len(o.spec.Adversaries) > 0 {
			report.ByzantineScenarios++
		}
		if len(o.spec.Partitions) > 0 {
			report.PartitionScenarios++
		}
		if len(o.spec.Crashes) > 0 {
			report.CrashScenarios++
		}
		report.TotalEvents += o.events
		report.TotalBlocks += o.blocks
		if len(o.violations) > 0 {
			report.Failures = append(report.Failures, FuzzFailure{Spec: o.spec, Violations: o.violations})
		}
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// WeakenedRuleCanary runs the directed Appendix C attack — 2f colluders at
// consecutive leader slots composing round starvation, double-signing,
// fork revival and marker lying — against the deliberately weakened naive
// commit rule (endorsements counted without markers). It returns the
// generated spec and the checker's findings: a healthy checker reports a
// Definition 1 violation here, and the identical collusion under the real
// marker rule reports none. Different seeds start the colluder window at
// different slots and reshuffle timing; callers scan a few seeds and pin
// the first that fires (the spec line makes it replayable).
func WeakenedRuleCanary(seed int64, n int, naive bool) (FuzzScenario, []string, error) {
	f := (n - 1) / 3
	sub := subSeed(seed, 1<<20) // outside any sweep's index space
	rng := rand.New(rand.NewSource(sub))
	spec := FuzzScenario{
		Index:         1 << 20,
		SubSeed:       sub,
		Protocol:      ProtoDiemBFT,
		N:             n,
		F:             f,
		VoteMode:      diembft.VoteMarker,
		Duration:      12 * time.Second,
		RoundTimeout:  250 * time.Millisecond,
		Delta:         25 * time.Millisecond,
		LatencyBase:   5 * time.Millisecond,
		LatencyJitter: 2 * time.Millisecond,
		Naive:         naive,
		Adversaries:   make(map[types.ReplicaID][]adversary.Spec, f+1),
	}
	// 2f colluders on consecutive leader slots give the coalition runs of
	// adjacent rounds — what a revived branch needs to grow its own
	// 3-chain. The chain order matters: the starver releases votes for
	// contested rounds, the double-voter signs the conflicting copy, and
	// the reviver (seeing both votes pass through) knows which branches can
	// still be completed.
	start := rng.Intn(n)
	for i := 0; i < 2*f; i++ {
		id := types.ReplicaID((start + i) % n)
		spec.Adversaries[id] = []adversary.Spec{
			{Kind: adversary.WithholdUncontested},
			{Kind: adversary.DoubleVote},
			{Kind: adversary.ForkRevive},
			{Kind: adversary.LieMarkers},
		}
	}
	_, violations, err := RunFuzzScenario(spec)
	return spec, violations, err
}

// PacemakerCanary runs the directed liveness attack — f colluders composing
// timeout-spam at full cadence with round-entry lying — under one seed and
// returns the run plus the safety checker's findings. With active false the
// scenario models the unhardened baseline: the passive pacemaker with the
// per-peer timeout cap effectively removed, so the spam accumulates in the
// timeout buffer without bound (watch Result.Pacemakers' PeakPerPeer climb
// with the run length). With active true the same seed runs the hardened
// pacemaker — justified round entry, future-window validation, the default
// per-peer cap, and leader-reputation rotation — which must keep committing
// with PeakPerPeer bounded by the cap. Callers compare the two arms; both
// must stay CheckInvariants-clean, because this is a liveness/resource
// attack, not a safety one.
func PacemakerCanary(seed int64, n int, active bool) (FuzzScenario, *Result, []string, error) {
	f := (n - 1) / 3
	sub := subSeed(seed, 1<<21) // outside sweep index space and the weakened-rule canary's slot
	rng := rand.New(rand.NewSource(sub))
	spec := FuzzScenario{
		Index:         1 << 21,
		SubSeed:       sub,
		Protocol:      ProtoDiemBFT,
		N:             n,
		F:             f,
		VoteMode:      diembft.VoteMarker,
		Duration:      10 * time.Second,
		RoundTimeout:  250 * time.Millisecond,
		Delta:         25 * time.Millisecond,
		LatencyBase:   5 * time.Millisecond,
		LatencyJitter: 2 * time.Millisecond,
		Verify:        true,
		Adversaries:   make(map[types.ReplicaID][]adversary.Spec, f),
	}
	if active {
		spec.ActivePacemaker = true
		spec.LeaderReputation = 8
	} else {
		// The pre-hardening buffer had no per-peer bound; an effectively
		// infinite cap reproduces it while keeping Stats accounting live.
		spec.PerPeerCap = 1 << 20
	}
	start := rng.Intn(n)
	for i := 0; i < f; i++ {
		id := types.ReplicaID((start + i) % n)
		spec.Adversaries[id] = []adversary.Spec{
			{Kind: adversary.TimeoutSpam, Every: 1},
			{Kind: adversary.LieRoundEntry, Every: 2},
		}
	}
	res, violations, err := RunFuzzScenario(spec)
	return spec, res, violations, err
}

package harness

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/types"
	"repro/sft"
)

// This file is the access-tier scale experiment: the read path must scale to
// many clients without touching the write path. A committee of N voting
// replicas runs twice over real sockets — once bare, once with a non-voting
// observer feeding a gateway that serves Subscribers concurrent
// proof-verified strength subscriptions — and the commit cadence of the two
// runs is compared. A third arm serves fabricated proofs from a lying
// gateway; every subscriber must reject them.

// GatewayScale parameterizes the experiment. Unlike the simulated
// experiments, Duration here is wall-clock time per arm: the cluster, the
// observer, the gateway and every subscriber are real processes-in-miniature
// exchanging bytes over loopback TCP.
type GatewayScale struct {
	// N is the committee size (3f+1).
	N int
	// Seed derives the cluster PKI.
	Seed int64
	// Scheme is the signature scheme (crypto.SchemeSim et al).
	Scheme string
	// Duration is the wall-clock run time per arm.
	Duration time.Duration
	// Subscribers is the concurrent verified-subscription count (default
	// 1000 — the "client-scale" claim under test).
	Subscribers int
	// QueueBound is the gateway's per-subscriber queue depth (default 1024
	// here: the experiment measures scale, not eviction, which
	// internal/gateway tests directly).
	QueueBound int
	// ExtraWait paces leaders (the Figure 8 knob), bounding the event rate
	// so the fan-out load is the controlled variable (default 50ms; applied
	// to both arms so the comparison stays fair).
	ExtraWait time.Duration
}

// GatewayArm measures one cluster run.
type GatewayArm struct {
	// Commits counts regular commits at replica 0.
	Commits int
	// Interval summarizes the inter-commit interval at replica 0, in
	// seconds — the cadence the gateway arm must not disturb.
	Interval metrics.Summary
}

// GatewayScaleResult is the experiment outcome.
type GatewayScaleResult struct {
	// Subscribers is the resolved concurrent-subscription count.
	Subscribers int
	// Baseline is the bare cluster; WithGateway adds the observer, the
	// gateway and Subscribers verified subscriptions.
	Baseline    GatewayArm
	WithGateway GatewayArm
	// SlowdownP50 is WithGateway's p50 inter-commit interval over
	// Baseline's — the read path's tax on the write path (1.0 = none).
	SlowdownP50 float64
	// EventsVerified counts proof-verified events across all subscribers;
	// MinEventsPerSubscriber is the worst subscriber's count and
	// SubscribersServed how many verified at least one event.
	EventsVerified         int64
	MinEventsPerSubscriber int
	SubscribersServed      int
	// ProofFailures counts honest-arm proof rejections (must be 0).
	ProofFailures int
	// ProvenBlocks is how many distinct blocks the gateway proved strength
	// for.
	ProvenBlocks int
	// LyingSubscribers dialed the lying gateway; LyingRejected is how many
	// rejected its fabricated proof (the two must be equal).
	LyingSubscribers int
	LyingRejected    int
}

// Verdict summarizes pass/fail: every subscriber served, no honest-arm proof
// failures, every lying-arm subscriber rejecting.
func (r *GatewayScaleResult) Verdict() error {
	if r.SubscribersServed < r.Subscribers {
		return fmt.Errorf("only %d/%d subscribers verified an event", r.SubscribersServed, r.Subscribers)
	}
	if r.ProofFailures > 0 {
		return fmt.Errorf("%d proof failures against an honest gateway", r.ProofFailures)
	}
	if r.LyingRejected != r.LyingSubscribers {
		return fmt.Errorf("only %d/%d subscribers rejected the lying gateway", r.LyingRejected, r.LyingSubscribers)
	}
	return nil
}

// GatewayScaleExperiment runs all three arms.
func GatewayScaleExperiment(cfg GatewayScale) (*GatewayScaleResult, error) {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 1000
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 1024
	}
	if cfg.ExtraWait <= 0 {
		cfg.ExtraWait = 50 * time.Millisecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	res := &GatewayScaleResult{Subscribers: cfg.Subscribers}

	base, _, err := runGatewayArm(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("baseline arm: %w", err)
	}
	res.Baseline = base

	arm, stats, err := runGatewayArm(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("gateway arm: %w", err)
	}
	res.WithGateway = arm
	res.EventsVerified = stats.events
	res.MinEventsPerSubscriber = stats.minPerSub
	res.SubscribersServed = stats.served
	res.ProofFailures = stats.proofFailures
	res.ProvenBlocks = stats.proven
	if base.Interval.P50 > 0 {
		res.SlowdownP50 = arm.Interval.P50 / base.Interval.P50
	}

	dialed, rejected, err := runLyingGateway(cfg)
	if err != nil {
		return nil, fmt.Errorf("lying-gateway arm: %w", err)
	}
	res.LyingSubscribers = dialed
	res.LyingRejected = rejected
	return res, nil
}

// subscriberStats aggregates the gateway arm's subscriber-side accounting.
type subscriberStats struct {
	events        int64
	minPerSub     int
	served        int
	proofFailures int
	proven        int
}

// runGatewayArm runs one cluster for cfg.Duration, with or without the
// access tier attached, and reports the commit cadence at replica 0.
func runGatewayArm(cfg GatewayScale, withGateway bool) (GatewayArm, subscriberStats, error) {
	var arm GatewayArm
	var stats subscriberStats
	ring, err := sft.NewKeyRing(cfg.N, cfg.Seed, sft.Scheme(cfg.Scheme))
	if err != nil {
		return arm, stats, err
	}

	nodes := make([]*sft.Node, cfg.N)
	peers := map[sft.ReplicaID]string{}
	for i := 0; i < cfg.N; i++ {
		id := sft.ReplicaID(i)
		opts := []sft.Option{
			sft.WithScheme(sft.Scheme(cfg.Scheme)),
			sft.WithKeyRing(ring),
			sft.WithTransport(sft.TCP(sft.TCPConfig{Listen: "127.0.0.1:0"})),
			sft.WithRoundTimeout(time.Second),
			sft.WithExtraWait(cfg.ExtraWait),
			sft.WithCommitLog(16),
		}
		if cfg.Scheme == crypto.SchemeEd25519 || cfg.Scheme == crypto.SchemeEd25519Agg {
			opts = append(opts, sft.WithVerifyPipeline(0))
		}
		nodes[i], err = sft.New(sft.Config{ID: id, N: cfg.N, Seed: cfg.Seed}, opts...)
		if err != nil {
			return arm, stats, err
		}
		peers[id] = nodes[i].Addr().String()
	}
	for _, node := range nodes {
		if err := node.SetPeers(peers); err != nil {
			return arm, stats, err
		}
	}

	// Attach the read path — and register every subscriber — before the
	// first proposal, so "events per subscriber" counts the full stream.
	var gw *sft.GatewayService
	var obs *sft.ObserverNode
	var subs []*sft.Subscriber
	if withGateway {
		gw, err = sft.NewGateway(sft.GatewayConfig{
			N: cfg.N, Seed: cfg.Seed, Scheme: sft.Scheme(cfg.Scheme),
			Ring: ring, QueueBound: cfg.QueueBound,
		})
		if err != nil {
			return arm, stats, err
		}
		defer gw.Close()
		addr, err := gw.Listen("127.0.0.1:0")
		if err != nil {
			return arm, stats, err
		}
		obs, err = sft.NewObserver(sft.ObserverConfig{
			N: cfg.N, Seed: cfg.Seed, Scheme: sft.Scheme(cfg.Scheme),
			Ring: ring, Gateway: gw,
		}, sft.ObserverTCP(sft.ObserverTCPConfig{Upstreams: peers}))
		if err != nil {
			return arm, stats, err
		}
		subs = make([]*sft.Subscriber, cfg.Subscribers)
		for i := range subs {
			subs[i], err = sft.Subscribe(addr.String(), sft.SubscriberConfig{
				N: cfg.N, Seed: cfg.Seed, Scheme: sft.Scheme(cfg.Scheme), Ring: ring,
			})
			if err != nil {
				return arm, stats, fmt.Errorf("subscriber %d: %w", i, err)
			}
		}
	}

	// Drain each subscriber concurrently, counting verified events.
	counts := make([]int64, len(subs))
	var drains sync.WaitGroup
	for i, sub := range subs {
		drains.Add(1)
		go func(i int, sub *sft.Subscriber) {
			defer drains.Done()
			for range sub.Events() {
				atomic.AddInt64(&counts[i], 1)
			}
		}(i, sub)
	}

	// Commit cadence at replica 0, stamped on receipt.
	commitTimes := make(chan time.Time, 4096)
	commits := nodes[0].Commits()
	go func() {
		for ev := range commits {
			if ev.Regular {
				select {
				case commitTimes <- time.Now():
				default:
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	runErr := make(chan error, cfg.N+1)
	for _, node := range nodes {
		wg.Add(1)
		go func(nd *sft.Node) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				runErr <- err
			}
		}(node)
	}
	if obs != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := obs.Run(ctx); err != nil {
				runErr <- err
			}
		}()
	}
	wg.Wait()
	if gw != nil {
		stats.proven = gw.Proven()
		gw.Close() // closes every subscription; the drains then finish
	}
	drains.Wait()
	select {
	case err := <-runErr:
		return arm, stats, err
	default:
	}

	var proofErr *sft.ErrProofInvalid
	stats.minPerSub = int(^uint(0) >> 1)
	for i, sub := range subs {
		c := int(atomic.LoadInt64(&counts[i]))
		stats.events += int64(c)
		if c > 0 {
			stats.served++
		}
		if c < stats.minPerSub {
			stats.minPerSub = c
		}
		if errors.As(sub.Err(), &proofErr) {
			stats.proofFailures++
		}
		sub.Close()
	}
	if len(subs) == 0 {
		stats.minPerSub = 0
	}

	close(commitTimes)
	var last time.Time
	intervals := &metrics.Series{}
	for ts := range commitTimes {
		arm.Commits++
		if !last.IsZero() {
			intervals.AddDuration(ts.Sub(last))
		}
		last = ts
	}
	if arm.Commits == 0 {
		return arm, stats, fmt.Errorf("cluster committed nothing in %v", cfg.Duration)
	}
	arm.Interval = intervals.Summarize()
	return arm, stats, nil
}

// runLyingGateway serves a fabricated proof — a genuinely certified carrier
// whose claimed strength record is inflated past what its commit log proves —
// to a pool of subscribers. Every one must reject it client-side.
func runLyingGateway(cfg GatewayScale) (dialed, rejected int, err error) {
	ring, err := crypto.NewKeyRing(cfg.N, cfg.Seed, cfg.Scheme)
	if err != nil {
		return 0, 0, err
	}
	f := (cfg.N - 1) / 3

	genesis := types.Genesis()
	var subject types.BlockID
	subject[0] = 0xEE
	honest := types.StrengthRecord{Block: subject, Height: 3, Round: 3, X: f}
	carrier := types.NewBlock(genesis.ID(), types.NewGenesisQC(genesis.ID()),
		5, 5, 0, 0, types.Payload{}, []types.StrengthRecord{honest})
	votes := make([]types.Vote, 2*f+1)
	for i := range votes {
		v := types.Vote{Block: carrier.ID(), Round: carrier.Round, Height: carrier.Height, Voter: types.ReplicaID(i)}
		v.Signature = ring.Signer(v.Voter).Sign(v.SigningPayload())
		votes[i] = v
	}
	qc := &types.QC{Block: carrier.ID(), Round: carrier.Round, Height: carrier.Height, Votes: votes}
	lie := honest
	lie.X = 2 * f // claims maximum strength; the log only proves f

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := gateway.ReadFrame(c); err != nil {
					return
				}
				frame := gateway.AppendEventFrame(nil, gateway.Event{Record: lie, Carrier: carrier, QC: qc})
				_ = gateway.WriteFrame(c, frame)
			}(conn)
		}
	}()

	dialed = cfg.Subscribers
	if dialed > 128 {
		dialed = 128
	}
	sftRing, err := sft.NewKeyRing(cfg.N, cfg.Seed, sft.Scheme(cfg.Scheme))
	if err != nil {
		return 0, 0, err
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < dialed; i++ {
		sub, err := sft.Subscribe(ln.Addr().String(), sft.SubscriberConfig{
			N: cfg.N, Seed: cfg.Seed, Scheme: sft.Scheme(cfg.Scheme), Ring: sftRing,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("lying-arm subscriber %d: %w", i, err)
		}
		wg.Add(1)
		go func(sub *sft.Subscriber) {
			defer wg.Done()
			defer sub.Close()
			deadline := time.After(30 * time.Second)
			for {
				select {
				case _, ok := <-sub.Events():
					if ok {
						return // accepted the lie: not rejected
					}
					var proofErr *sft.ErrProofInvalid
					if errors.As(sub.Err(), &proofErr) {
						mu.Lock()
						rejected++
						mu.Unlock()
					}
					return
				case <-deadline:
					return
				}
			}
		}(sub)
	}
	wg.Wait()
	return dialed, rejected, nil
}

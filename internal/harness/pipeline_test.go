package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/simnet"
)

// pipelineScenario is the fixed-seed scenario the verification-pipeline
// determinism oracle runs, parameterized over scheme, protocol, and the
// pipeline switch.
func pipelineScenario(seed int64, scheme string, proto Protocol, pipeline bool) *Scenario {
	sc := &Scenario{
		Name:             "pipeline-determinism",
		Protocol:         proto,
		N:                7,
		F:                2,
		Latency:          simnet.NewSymmetricModel(7, 3, intraDelay, 50*time.Millisecond, symJitter),
		Seed:             seed,
		Duration:         20 * time.Second,
		RoundTimeout:     2 * time.Second,
		SFT:              true,
		Scheme:           scheme,
		VerifySignatures: true,
		VerifyPipeline:   pipeline,
	}
	if proto == ProtoStreamlet {
		sc.Delta = 100 * time.Millisecond
	}
	return sc
}

// TestDeterminismVerifyPipelineOnOff is PR-3's regression oracle: routing a
// fixed-seed run through the prevalidate/apply split (batched signature
// verification, OnVerifiedMessage state stage) must leave commits, level
// latencies, message accounting, and processed events bit-identical to the
// classic inline path — for both crypto schemes and both protocols
// (Streamlet's run includes the echo relay, which prevalidation recurses
// into).
func TestDeterminismVerifyPipelineOnOff(t *testing.T) {
	cases := []struct {
		name   string
		scheme string
		proto  Protocol
		seeds  []int64
	}{
		{"diembft/sim", crypto.SchemeSim, ProtoDiemBFT, []int64{1, 7, 42}},
		{"diembft/ed25519", crypto.SchemeEd25519, ProtoDiemBFT, []int64{1}},
		{"streamlet/sim", crypto.SchemeSim, ProtoStreamlet, []int64{1, 7}},
		{"streamlet/ed25519", crypto.SchemeEd25519, ProtoStreamlet, []int64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range tc.seeds {
				off, err := Run(pipelineScenario(seed, tc.scheme, tc.proto, false))
				if err != nil {
					t.Fatal(err)
				}
				on, err := Run(pipelineScenario(seed, tc.scheme, tc.proto, true))
				if err != nil {
					t.Fatal(err)
				}
				if off.CommittedBlocks == 0 {
					t.Fatalf("seed %d: no commits; scenario too short to be meaningful", seed)
				}
				if !reflect.DeepEqual(fp(off), fp(on)) {
					t.Errorf("seed %d: pipeline-on run differs from pipeline-off run:\n on=%+v\noff=%+v",
						seed, fp(on), fp(off))
				}
				if !ResultsEquivalent(off, on) {
					t.Errorf("seed %d: ResultsEquivalent disagrees with fingerprint equality", seed)
				}
			}
		})
	}
}

// TestVerifyPipelineExperiment smoke-tests the sftbench-facing ablation at
// reduced scale: it must report identical on/off results and produce a
// worker sweep with sane values.
func TestVerifyPipelineExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := VerifyPipeline(Scale{N: 7, F: 2, Duration: 15 * time.Second, Seed: 2}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != crypto.SchemeEd25519 {
		t.Fatalf("experiment defaulted to scheme %q, want ed25519", res.Scheme)
	}
	if !res.Identical {
		t.Fatal("pipeline on/off runs diverged")
	}
	if res.On.CommittedBlocks == 0 {
		t.Fatal("no commits in ablation run")
	}
	if len(res.Sweep) == 0 || res.SerialNsPerQC <= 0 {
		t.Fatalf("batch sweep missing: serial=%v sweep=%v", res.SerialNsPerQC, res.Sweep)
	}
	for _, p := range res.Sweep {
		if p.NsPerQC <= 0 || p.Speedup <= 0 {
			t.Fatalf("degenerate sweep point %+v", p)
		}
	}
}

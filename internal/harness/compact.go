package harness

import (
	"fmt"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// This file is the compact-certificate experiment: the measurement behind
// the O(1)-certificate claim. A quorum certificate carrying 2f+1 individual
// ed25519 signatures grows linearly in the committee — ~70 wire bytes and
// one signature verification per signer — which is what makes 100+-replica
// committees expensive. The aggregated form replaces the vote vector with
// one 32-byte aggregate plus a signer bitmap, so both wire size and verify
// CPU stay (near-)constant as n grows. CompactCertificates measures both
// forms at several committee sizes and, for each size, runs a fig7a-style
// symmetric-latency simulation under the aggregate scheme to show the full
// protocol stays live and committing with compact certificates on the wire.

// CompactPoint holds one committee size's measurements.
type CompactPoint struct {
	N, F, Quorum int

	// Wire bytes of one quorum certificate: the legacy per-signer vote
	// vector vs the aggregated bitmap form.
	VectorQCBytes, CompactQCBytes int

	// Host CPU (ns) for one full cold certificate verification in each
	// form, averaged over many iterations.
	VectorVerifyNs, CompactVerifyNs float64

	// Sim is the fig7a-style simulation at this committee size under
	// crypto.SchemeEd25519Agg (real vote signatures, compact certificates).
	Sim *Result
}

// verifyIters is how many cold verifications each timing loop averages
// over. Vector verification at n=103 costs quorum(=69) ed25519 checks per
// iteration, so this keeps the whole sweep in the hundreds of milliseconds.
const verifyIters = 50

// CompactCertificates measures, for each committee size in ns, one quorum
// certificate's wire bytes and cold-verification CPU in vector vs compact
// form, then runs a fig7a-style simulation (symmetric regions, delta apart)
// with the ed25519-agg scheme. sc.N is ignored — the sweep is the point.
func CompactCertificates(sc Scale, ns []int, delta time.Duration) ([]CompactPoint, error) {
	sc = sc.withDefaults()
	points := make([]CompactPoint, 0, len(ns))
	for _, n := range ns {
		if (n-1)%3 != 0 {
			return nil, fmt.Errorf("harness: compact sweep n=%d is not 3f+1", n)
		}
		f := (n - 1) / 3
		p := CompactPoint{N: n, F: f, Quorum: 2*f + 1}
		if err := measureCompact(&p, sc.Seed); err != nil {
			return nil, err
		}

		simScale := Scale{
			N: n, F: f, Duration: sc.Duration, Seed: sc.Seed,
			Scheme: crypto.SchemeEd25519Agg, Pipeline: sc.Pipeline,
		}
		s := symmetricScenario(simScale, delta)
		s.Name = "compactcert"
		res, err := Run(s)
		if err != nil {
			return nil, err
		}
		p.Sim = res
		points = append(points, p)
	}
	return points, nil
}

// measureCompact builds one genuine quorum certificate (real ed25519 vote
// signatures) and records its encoded size and cold verify time in both
// forms.
func measureCompact(p *CompactPoint, seed int64) error {
	ring, err := crypto.NewKeyRing(p.N, seed, crypto.SchemeEd25519)
	if err != nil {
		return err
	}
	aggRing, err := crypto.NewKeyRing(p.N, seed, crypto.SchemeEd25519Agg)
	if err != nil {
		return err
	}

	var block types.BlockID
	block[0] = 0xC4
	vector := &types.QC{Block: block, Round: 9, Height: 9}
	for i := 0; i < p.Quorum; i++ {
		v := types.Vote{Block: block, Round: 9, Height: 9, Voter: types.ReplicaID(i)}
		v.Signature = ring.Signer(v.Voter).Sign(v.SigningPayload())
		vector.Votes = append(vector.Votes, v)
	}
	compact := &types.QC{Block: block, Round: 9, Height: 9,
		Votes: append([]types.Vote(nil), vector.Votes...)}
	if err := crypto.AggregateQC(aggRing, compact); err != nil {
		return err
	}

	p.VectorQCBytes = len(vector.Encode(nil))
	p.CompactQCBytes = len(compact.Encode(nil))

	time1 := func(verifier crypto.Verifier, qc *types.QC) (float64, error) {
		start := time.Now()
		for i := 0; i < verifyIters; i++ {
			if err := crypto.VerifyQC(verifier, qc, p.Quorum); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / verifyIters, nil
	}
	if p.VectorVerifyNs, err = time1(ring, vector); err != nil {
		return fmt.Errorf("harness: vector verify n=%d: %w", p.N, err)
	}
	if p.CompactVerifyNs, err = time1(aggRing, compact); err != nil {
		return fmt.Errorf("harness: compact verify n=%d: %w", p.N, err)
	}
	return nil
}

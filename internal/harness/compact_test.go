package harness_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/crypto"
	"repro/internal/harness"
	"repro/internal/types"
)

// reportKey flattens everything deterministic about a fuzz report — counters
// and the full failure list — so sweeps run at different worker counts can
// be compared byte-for-byte (Elapsed is host wall time and excluded).
func reportKey(r *harness.FuzzReport) string {
	s := fmt.Sprintf("scen=%d byz=%d part=%d crash=%d events=%d blocks=%d",
		r.Scenarios, r.ByzantineScenarios, r.PartitionScenarios, r.CrashScenarios,
		r.TotalEvents, r.TotalBlocks)
	for _, f := range r.Failures {
		s += "\n" + f.Spec.String()
		for _, v := range f.Violations {
			s += "\n  -> " + v
		}
	}
	return s
}

// TestRunFuzzParallelMatchesSerial pins the worker-pool refactor: the sweep
// report must be identical at every worker count, byte for byte.
func TestRunFuzzParallelMatchesSerial(t *testing.T) {
	opts := harness.FuzzOptions{Seed: 11, Scenarios: 8, N: 4, Duration: 3 * time.Second}

	opts.Workers = 1
	serial, err := harness.RunFuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		opts.Workers = workers
		parallel, err := harness.RunFuzz(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := reportKey(parallel), reportKey(serial); got != want {
			t.Fatalf("workers=%d report diverged from serial:\n--- serial\n%s\n--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}

// TestFuzzSweepAggregateScheme runs the invariant-checking sweep with the
// aggregate scheme pinned, so every certificate formed in every scenario —
// under the full Byzantine/partition/crash mix — is a compact one.
func TestFuzzSweepAggregateScheme(t *testing.T) {
	scenarios := 10
	if testing.Short() {
		scenarios = 4
	}
	report, err := harness.RunFuzz(harness.FuzzOptions{
		Seed:      3,
		Scenarios: scenarios,
		Scheme:    crypto.SchemeSimAgg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fail := range report.Failures {
		t.Errorf("%s: %v", fail.Spec, fail.Violations)
	}
	if report.TotalBlocks == 0 {
		t.Fatal("aggregate-scheme sweep committed nothing")
	}
}

// TestAdversaryVsCompactQCs subjects compact certificates to the byte-level
// adversaries under real crypto: one replica injects garbage frames, another
// corrupts signatures, with ed25519-agg certificates on the wire. The honest
// majority must keep committing and hold every invariant.
func TestAdversaryVsCompactQCs(t *testing.T) {
	spec := harness.GenFuzzScenario(5, 0, harness.FuzzOptions{
		N: 7, Duration: 8 * time.Second, Scheme: crypto.SchemeEd25519Agg,
	})
	spec.Crashes = nil
	spec.Partitions = nil
	spec.Adversaries = map[types.ReplicaID][]adversary.Spec{
		1: {{Kind: adversary.Garbage, Every: 2}},
		3: {{Kind: adversary.CorruptSigs, Every: 1}},
	}
	res, violations, err := harness.RunFuzzScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("invariants violated under garbage/corrupt-sigs with compact QCs: %v", violations)
	}
	if res.CommittedBlocks < 3 {
		t.Fatalf("honest majority stalled: %d blocks committed", res.CommittedBlocks)
	}
}

// TestCompactCertificatesExperiment smoke-runs the compactcert experiment
// driver at reduced scale and asserts the headline property directly: QC
// wire bytes flat (modulo bitmap words) and verify CPU not scaling with n.
func TestCompactCertificatesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("real-crypto simulation sweep")
	}
	points, err := harness.CompactCertificates(
		harness.Scale{Duration: 10 * time.Second, Seed: 1},
		[]int{31, 103}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	small, large := points[0], points[1]
	if small.CompactQCBytes >= small.VectorQCBytes {
		t.Fatalf("compact form (%dB) not smaller than vector form (%dB)",
			small.CompactQCBytes, small.VectorQCBytes)
	}
	growth := large.CompactQCBytes - small.CompactQCBytes
	if allowed := 8 * ((large.N+63)/64 - (small.N+63)/64); growth > allowed {
		t.Fatalf("compact QC grew %d bytes from n=%d to n=%d (allowed %d)",
			growth, small.N, large.N, allowed)
	}
	for _, p := range points {
		if p.Sim.CommittedBlocks < 3 {
			t.Fatalf("n=%d aggregate-scheme simulation stalled: %d blocks", p.N, p.Sim.CommittedBlocks)
		}
		if p.Sim.RegularLatency.P99 < p.Sim.RegularLatency.P50 {
			t.Fatalf("n=%d latency distribution inverted: p99 %.3f < p50 %.3f",
				p.N, p.Sim.RegularLatency.P99, p.Sim.RegularLatency.P50)
		}
	}
}

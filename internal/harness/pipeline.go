package harness

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// This file hosts the VerifyPipeline ablation: the PR-3 experiment that
// answers "what does the verification pipeline buy under real crypto, and
// does it change anything?" in one report. It has two halves:
//
//   - A macro A/B on the simulator: the same fixed-seed scenario with the
//     prevalidate/apply split off and on. The simulator is single-threaded,
//     so this half measures the pipeline's bookkeeping overhead and — the
//     important part — proves the determinism oracle: commits, latencies,
//     message counts, and processed events must be bit-identical.
//   - A batch-verification worker sweep off the simulator: cold QC
//     verifications through crypto.BatchVerifyQC at several worker counts
//     against the serial crypto.VerifyQC baseline. This half carries the
//     hardware-dependent claim; its speedup scales with cores (and is ~1x
//     on a single-core host, where only the batch plumbing overhead shows).

// BatchSweepPoint is one worker count of the batch-verification micro sweep.
type BatchSweepPoint struct {
	Workers int
	// NsPerQC is the mean wall time of one cold BatchVerifyQC call.
	NsPerQC float64
	// Speedup is SerialNsPerQC / NsPerQC.
	Speedup float64
}

// VerifyPipelineResult aggregates the ablation.
type VerifyPipelineResult struct {
	Scheme string

	// Off/On are the same fixed-seed scenario without and with the
	// verification pipeline; OffWall/OnWall their host wall-clock times.
	Off, On         *Result
	OffWall, OnWall time.Duration
	// OffEventsPerSec/OnEventsPerSec are simulator events processed per
	// host second — the macro throughput measure.
	OffEventsPerSec, OnEventsPerSec float64

	// Identical is the determinism verdict: the pipeline changed nothing
	// about the run's results.
	Identical bool

	// SerialNsPerQC is the serial cold-verification baseline for the sweep.
	SerialNsPerQC float64
	// Quorum is the number of signatures per certificate in the sweep.
	Quorum int
	// Sweep holds one point per worker count.
	Sweep []BatchSweepPoint
}

// VerifyPipeline runs the ablation at the given scale. The scenario follows
// sc.Scheme, defaulting to real ed25519 signatures — the scheme whose serial
// verification cost motivates the pipeline.
func VerifyPipeline(sc Scale, delta time.Duration) (*VerifyPipelineResult, error) {
	sc = sc.withDefaults()
	if sc.Scheme == "" {
		sc.Scheme = crypto.SchemeEd25519
	}
	out := &VerifyPipelineResult{Scheme: sc.Scheme}

	mk := func(pipeline bool) *Scenario {
		s := symmetricScenario(Scale{
			N: sc.N, F: sc.F, Duration: sc.Duration, Seed: sc.Seed,
			Scheme: sc.Scheme, Pipeline: pipeline,
		}, delta)
		s.Name = "verifypipeline"
		s.VerifySignatures = true
		return s
	}

	start := time.Now()
	off, err := Run(mk(false))
	if err != nil {
		return nil, err
	}
	out.OffWall = time.Since(start)
	start = time.Now()
	on, err := Run(mk(true))
	if err != nil {
		return nil, err
	}
	out.OnWall = time.Since(start)

	out.Off, out.On = off, on
	out.OffEventsPerSec = float64(off.Events) / out.OffWall.Seconds()
	out.OnEventsPerSec = float64(on.Events) / out.OnWall.Seconds()
	out.Identical = ResultsEquivalent(off, on)

	quorum := 2*sc.F + 1
	serial, sweep, err := BatchVerifySweep(sc.Scheme, sc.N, quorum, sc.Seed, []int{1, 2, 4, 8})
	if err != nil {
		return nil, err
	}
	out.SerialNsPerQC = serial
	out.Quorum = quorum
	out.Sweep = sweep
	return out, nil
}

// ResultsEquivalent reports whether two runs produced identical results in
// every dimension the determinism oracle pins: commits, transaction counts,
// processed events, message accounting (including the per-type breakdown),
// and all latency summaries.
func ResultsEquivalent(a, b *Result) bool {
	type view struct {
		Blocks  int
		Txns    int64
		Events  int64
		Count   int64
		Bytes   int64
		ByType  map[types.MsgType]int64
		Regular interface{}
		Levels  interface{}
	}
	strip := func(r *Result) view {
		return view{
			Blocks:  r.CommittedBlocks,
			Txns:    r.CommittedTxns,
			Events:  r.Events,
			Count:   r.Msgs.Count,
			Bytes:   r.Msgs.Bytes,
			ByType:  r.Msgs.ByType,
			Regular: r.RegularLatency,
			Levels:  r.LevelLatency,
		}
	}
	return reflect.DeepEqual(strip(a), strip(b))
}

// BatchVerifySweep measures cold QC verification: the serial VerifyQC
// baseline, then BatchVerifyQC at each worker count. Every measured call is
// a cache-less cold verification of a quorum-sized certificate — the
// workload a leader faces on every first delivery.
func BatchVerifySweep(scheme string, n, quorum int, seed int64, workers []int) (serialNsPerQC float64, sweep []BatchSweepPoint, err error) {
	ring, err := crypto.NewKeyRing(n, seed, scheme)
	if err != nil {
		return 0, nil, err
	}
	var block types.BlockID
	block[0] = 0x5f
	qc := &types.QC{Block: block, Round: 9, Height: 9}
	for i := 0; i < quorum; i++ {
		v := types.Vote{Block: block, Round: 9, Height: 9, Voter: types.ReplicaID(i)}
		v.Signature = ring.Signer(v.Voter).Sign(v.SigningPayload())
		qc.Votes = append(qc.Votes, v)
	}

	measure := func(fn func() error) (float64, error) {
		// Time-boxed: enough iterations for a stable mean without making the
		// ed25519 sweep dominate the experiment's wall time.
		const (
			minIters = 8
			budget   = 250 * time.Millisecond
		)
		iters := 0
		start := time.Now()
		for time.Since(start) < budget || iters < minIters {
			if err := fn(); err != nil {
				return 0, err
			}
			iters++
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}

	serialNsPerQC, err = measure(func() error { return crypto.VerifyQC(ring, qc, quorum) })
	if err != nil {
		return 0, nil, err
	}
	for _, w := range workers {
		ns, err := measure(func() error { return crypto.BatchVerifyQC(ring, qc, quorum, w) })
		if err != nil {
			return 0, nil, err
		}
		sweep = append(sweep, BatchSweepPoint{Workers: w, NsPerQC: ns, Speedup: serialNsPerQC / ns})
	}
	return serialNsPerQC, sweep, nil
}

// Verdict renders the determinism outcome; reports print it verbatim.
func (r *VerifyPipelineResult) Verdict() string {
	if !r.Identical {
		return "DIVERGED — determinism violation"
	}
	return "IDENTICAL"
}

// String renders the result compactly for logs.
func (r *VerifyPipelineResult) String() string {
	return fmt.Sprintf("verifypipeline{scheme=%s off=%.0f ev/s on=%.0f ev/s, %s}",
		r.Scheme, r.OffEventsPerSec, r.OnEventsPerSec, r.Verdict())
}

package harness_test

import (
	"testing"
	"time"

	"repro/internal/harness"
)

func TestTheorem2Liveness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// n=13, f=4: under c benign crashes every block must reach (2f-c)-strong.
	sc := harness.Scale{N: 13, F: 4, Duration: 60 * time.Second, Seed: 5}
	for _, c := range []int{0, 2, 4} {
		res, target, err := harness.Theorem2(sc, c)
		if err != nil {
			t.Fatal(err)
		}
		s := res.LevelLatency[target]
		if s.Count == 0 {
			t.Errorf("c=%d: target level %d never reached", c, target)
			continue
		}
		// Theorem 2's bound is n+2 rounds. Crashed leaders cost a round
		// timeout each; a generous wall bound is (n+2) * (timeout).
		bound := float64(13+2) * 0.25 * 2
		if s.Mean > bound {
			t.Errorf("c=%d: mean latency %.3fs exceeds bound %.1fs", c, s.Mean, bound)
		}
		t.Logf("c=%d: (2f-c)=%d-strong latency %s over %d blocks", c, target, s, res.CommittedBlocks)
	}
}

// TestLivenessAttack runs the pacemaker-hardening A/B at acceptance scale:
// the experiment itself asserts safety on both arms, liveness and bounded
// per-peer timeout memory on the hardened arm, and demonstrated unbounded
// growth on the passive baseline.
func TestLivenessAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := harness.LivenessAttack(harness.Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Active.CommittedBlocks < res.Passive.CommittedBlocks/2 {
		t.Errorf("hardened arm committed %d blocks vs passive %d — hardening cost liveness",
			res.Active.CommittedBlocks, res.Passive.CommittedBlocks)
	}
	t.Logf("passive: %d commits, peak per-peer buffer %d; active: %d commits, peak %d (cap %d)",
		res.Passive.CommittedBlocks, res.PassivePeak,
		res.Active.CommittedBlocks, res.ActivePeak, res.Cap)
}

// TestPacemakerCanary pins the fuzz-side A/B demo the sftbench adversary
// sweep runs: same seed, passive buffer grows past the cap, active stays
// bounded, both safe.
func TestPacemakerCanary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	_, passive, pv, err := harness.PacemakerCanary(3, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	_, active, av, err := harness.PacemakerCanary(3, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) > 0 || len(av) > 0 {
		t.Fatalf("canary violated safety: passive=%v active=%v", pv, av)
	}
	peak := func(r *harness.Result) (p int) {
		for _, st := range r.Pacemakers {
			if st.PeakPerPeer > p {
				p = st.PeakPerPeer
			}
		}
		return p
	}
	if got := peak(active); got > 8 {
		t.Errorf("active arm per-peer buffer peaked at %d > cap", got)
	}
	if got := peak(passive); got <= 8 {
		t.Errorf("passive arm peaked at only %d — spam demonstrated nothing", got)
	}
}

func TestTheorem3IntervalVsMarker(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// t equivocating Byzantine leaders; interval votes (Theorem 3) must
	// reach the (2f-t) target at least as fast as markers, whose liveness
	// is only guaranteed under benign faults.
	sc := harness.Scale{N: 13, F: 4, Duration: 90 * time.Second, Seed: 6}
	marker, interval, target, err := harness.Theorem3(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms := marker.LevelLatency[target]
	is := interval.LevelLatency[target]
	t.Logf("target %d-strong: marker %s | interval %s", target, ms, is)
	if is.Count == 0 {
		t.Fatalf("interval mode never reached the Theorem 3 target %d", target)
	}
	if ms.Count > 0 && is.Count > 0 && is.Mean > ms.Mean*1.25 {
		t.Errorf("interval mode slower than marker mode: %.3f vs %.3f", is.Mean, ms.Mean)
	}
	// Interval votes must cover at least as many blocks as markers.
	if is.Count < ms.Count {
		t.Errorf("interval mode reached target on fewer blocks: %d < %d", is.Count, ms.Count)
	}
}

func TestThroughputParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// §4: SFT-DiemBFT throughput and regular commit latency are essentially
	// identical to DiemBFT (the strong-vote adds one integer per vote).
	sc := harness.Scale{N: 31, F: 10, Duration: 60 * time.Second, Seed: 7}
	base, sft, err := harness.ThroughputComparison(sc, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DiemBFT:     %.0f tps, regular %.3fs, %.0f bytes/block",
		base.ThroughputTPS, base.RegularLatency.Mean, base.BytesPerBlock)
	t.Logf("SFT-DiemBFT: %.0f tps, regular %.3fs, %.0f bytes/block",
		sft.ThroughputTPS, sft.RegularLatency.Mean, sft.BytesPerBlock)

	ratio := sft.ThroughputTPS / base.ThroughputTPS
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("throughput ratio %.3f outside [0.97, 1.03]", ratio)
	}
	lat := sft.RegularLatency.Mean / base.RegularLatency.Mean
	if lat < 0.95 || lat > 1.05 {
		t.Errorf("regular latency ratio %.3f outside [0.95, 1.05]", lat)
	}
}

func TestMessageComplexityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	points, err := harness.MessageComplexity(harness.Scale{Duration: 30 * time.Second, Seed: 8}, []int{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("n=%d: SFT %.1f msgs/decision, FBFT %.1f msgs/decision",
			p.N, p.SFTMsgsPerDec, p.FBFTMsgsPer)
		if p.FBFTMsgsPer <= p.SFTMsgsPerDec {
			t.Errorf("n=%d: FBFT not more expensive than SFT", p.N)
		}
	}
	// SFT messages per decision grow linearly: per-replica cost
	// (msgs/decision/n) stays roughly constant.
	sftSmall := points[0].SFTMsgsPerDec / float64(points[0].N)
	sftBig := points[len(points)-1].SFTMsgsPerDec / float64(points[len(points)-1].N)
	if sftBig > sftSmall*1.5 {
		t.Errorf("SFT per-replica message cost grew: %.2f -> %.2f", sftSmall, sftBig)
	}
	// FBFT messages per decision grow quadratically: per-replica cost
	// grows with n. Between n=7 and n=31 it should grow clearly.
	fbSmall := points[0].FBFTMsgsPer / float64(points[0].N)
	fbBig := points[len(points)-1].FBFTMsgsPer / float64(points[len(points)-1].N)
	if fbBig < fbSmall*1.5 {
		t.Errorf("FBFT per-replica message cost did not grow: %.2f -> %.2f", fbSmall, fbBig)
	}
}

func TestStreamletLatencyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := harness.Scale{N: 13, F: 4, Duration: 60 * time.Second, Seed: 9}
	res, err := harness.StreamletLatency(sc, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBlocks < 20 {
		t.Fatalf("streamlet committed only %d blocks", res.CommittedBlocks)
	}
	f := 4
	if s := res.LevelLatency[2*f]; s.Count == 0 {
		t.Error("2f-strong unreached in fault-free SFT-Streamlet")
	}
	fLat := res.LevelLatency[f]
	tfLat := res.LevelLatency[2*f]
	if fLat.Count > 0 && tfLat.Count > 0 && tfLat.Mean < fLat.Mean {
		t.Errorf("2f-strong (%.3f) faster than f-strong (%.3f)", tfLat.Mean, fLat.Mean)
	}
	for _, lv := range harness.DefaultLevels(f) {
		t.Logf("x=%s: %s", harness.LevelLabel(lv, f), res.LevelLatency[lv])
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := harness.Run(&harness.Scenario{N: 5, F: 1}); err == nil {
		t.Error("accepted n != 3f+1")
	}
	if _, err := harness.Run(&harness.Scenario{N: 4, F: 1}); err == nil {
		t.Error("accepted missing latency model")
	}
}

func TestDefaultLevels(t *testing.T) {
	levels := harness.DefaultLevels(33)
	if levels[0] != 33 || levels[len(levels)-1] != 66 {
		t.Fatalf("levels = %v", levels)
	}
	if harness.LevelLabel(36, 33) != "1.1f" {
		t.Fatalf("label = %s", harness.LevelLabel(36, 33))
	}
	// Small f collapses duplicate levels.
	small := harness.DefaultLevels(1)
	if len(small) != 2 || small[0] != 1 || small[1] != 2 {
		t.Fatalf("small levels = %v", small)
	}
}

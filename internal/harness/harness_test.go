package harness_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/harness"
)

func TestFigure7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := harness.Scale{N: 31, F: 10, Duration: 90 * time.Second, Seed: 1}
	res, err := harness.Figure7a(sc, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBlocks < 50 {
		t.Fatalf("too few committed blocks: %d", res.CommittedBlocks)
	}
	levels := harness.DefaultLevels(10)
	var prev float64
	for i, lv := range levels {
		s := res.LevelLatency[lv]
		t.Logf("x=%s latency %s", harness.LevelLabel(lv, 10), s)
		if s.Count == 0 {
			t.Errorf("level %d unreached", lv)
			continue
		}
		// Latency must be (weakly) monotone in x, modulo 20% noise.
		if i > 0 && s.Mean < prev*0.8 {
			t.Errorf("latency not monotone at level %d: %.3f < %.3f", lv, s.Mean, prev)
		}
		prev = s.Mean
	}
	// The 2f level must be far above f (straggler tail).
	fLat := res.LevelLatency[levels[0]].Mean
	tfLat := res.LevelLatency[levels[len(levels)-1]].Mean
	if !(tfLat > 1.5*fLat) {
		t.Errorf("2f-strong (%.3fs) not clearly above f-strong (%.3fs)", tfLat, fLat)
	}
	t.Logf("regular commit: %s, throughput %.0f tps, msgs/commit %.1f",
		res.RegularLatency, res.ThroughputTPS, res.MsgsPerCommit)
}

func TestFigure7bOutcastCap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := harness.Scale{N: 31, F: 10, Duration: 90 * time.Second, Seed: 2}

	// delta=100ms: region C leaders succeed, all levels eventually reached.
	res100, err := harness.Figure7b(sc, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// delta=200ms: region C rounds time out; levels needing C replicas'
	// strong-votes (above ~1.7f) must be unreachable.
	res200, err := harness.Figure7b(sc, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f := 10
	top := 2 * f
	if s := res100.LevelLatency[top]; s.Count == 0 {
		t.Errorf("delta=100ms: 2f-strong unreached, want reachable")
	}
	if s := res200.LevelLatency[top]; s.Count != 0 {
		t.Errorf("delta=200ms: 2f-strong reached %d times, want outcast cap", s.Count)
	}
	// Low levels must still work at delta=200ms.
	if s := res200.LevelLatency[f]; s.Count == 0 {
		t.Errorf("delta=200ms: f-strong unreached; cluster not live")
	}
	for _, lv := range harness.DefaultLevels(f) {
		t.Logf("x=%s  d100: %s | d200: %s", harness.LevelLabel(lv, f),
			res100.LevelLatency[lv], res200.LevelLatency[lv])
	}
}

func TestFigure8Tradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := harness.Scale{N: 31, F: 10, Duration: 60 * time.Second, Seed: 3}
	// The straggler penalty applies on both legs (proposal in, vote out),
	// so full capture needs waits beyond ~2x the penalty plus jitter.
	waits := []time.Duration{0, 100 * time.Millisecond, 250 * time.Millisecond}
	points, err := harness.Figure8(sc, waits)
	if err != nil {
		t.Fatal(err)
	}
	f := 10
	for _, p := range points {
		t.Logf("wait=%v regular=%.3fs 2f-strong=%s",
			p.ExtraWait, p.Result.RegularLatency.Mean, p.Result.LevelLatency[2*f])
	}
	// Regular commit latency grows with the wait.
	if !(points[2].Result.RegularLatency.Mean > points[0].Result.RegularLatency.Mean) {
		t.Errorf("regular latency did not grow with extra wait")
	}
	// 2f-strong latency shrinks dramatically with a large enough wait.
	l0 := points[0].Result.LevelLatency[2*f]
	l2 := points[2].Result.LevelLatency[2*f]
	if l0.Count > 0 && l2.Count > 0 && !(l2.Mean < l0.Mean*0.6) {
		t.Errorf("2f-strong latency did not improve: %.3f -> %.3f", l0.Mean, l2.Mean)
	}
	// With a wait beyond the straggler penalty the strong curve merges into
	// the regular one (every QC already has all votes).
	if l2.Count > 0 && math.Abs(l2.Mean-points[2].Result.RegularLatency.Mean) > 0.5*points[2].Result.RegularLatency.Mean {
		t.Logf("note: 2f curve not fully merged (%.3f vs regular %.3f)", l2.Mean, points[2].Result.RegularLatency.Mean)
	}
}

package harness_test

import (
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/app"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// bankScenario builds an n=7 cluster where every replica executes a bank
// before voting and leaders propose transfer traffic.
func bankScenario(seed int64, accounts uint32) (*harness.Scenario, app.BankConfig) {
	cfg := app.BankConfig{Seed: seed, Accounts: accounts, InitialBalance: 1 << 20, DisableSigVerify: true}
	gen := workload.NewBankWorkload(seed, cfg, 32, false)
	return &harness.Scenario{
		Name:            "bank",
		N:               7,
		F:               2,
		Latency:         &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:            seed,
		Duration:        8 * time.Second,
		RoundTimeout:    250 * time.Millisecond,
		SFT:             true,
		Levels:          []int{2, 4},
		App:             func() app.StateMachine { return app.NewBank(cfg) },
		PayloadNow:      gen.Payload,
		RecordChains:    true,
		RecordStrengths: true,
	}, cfg
}

// TestBankRunAgreesOnAppHashes is the headline execution-layer acceptance
// check: an n=7 simnet bank run commits the identical state root on every
// replica at every height, and the roots actually evolve (the workload is
// not a no-op).
func TestBankRunAgreesOnAppHashes(t *testing.T) {
	sc, _ := bankScenario(11, 1<<10)
	res, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if vs := harness.CheckInvariants(res, 0); len(vs) > 0 {
		t.Fatalf("benign bank run violated invariants: %v", vs)
	}
	if res.CommittedBlocks < 10 {
		t.Fatalf("bank run barely committed: %d blocks", res.CommittedBlocks)
	}
	if res.AppExecutedBlocks < int64(res.CommittedBlocks) {
		t.Fatalf("observer executed %d blocks but committed %d", res.AppExecutedBlocks, res.CommittedBlocks)
	}
	// Every replica must have recorded a root for every height it committed,
	// all heights must agree (CheckInvariants above), and the state must
	// actually move: at least two distinct roots across the run.
	distinct := make(map[[32]byte]bool)
	for rep, chain := range res.Chains {
		roots := res.AppHashes[rep]
		if len(roots) != len(chain) {
			t.Fatalf("replica %d committed %d heights but recorded %d roots", rep, len(chain), len(roots))
		}
		for h := range chain {
			distinct[roots[h]] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("state roots never evolved: %d distinct roots", len(distinct))
	}
}

// TestWrongAppHashAdversaryHarmless pins the fork-detection defense: a
// coalition of f wrong-apphash voters (votes re-signed over lying state
// roots) must neither split the committed state nor stall the cluster —
// honest leaders drop the mismatching votes and form QCs from the rest.
func TestWrongAppHashAdversaryHarmless(t *testing.T) {
	for _, proto := range []harness.Protocol{harness.ProtoDiemBFT, harness.ProtoStreamlet} {
		sc, _ := bankScenario(23, 1<<10)
		sc.Protocol = proto
		sc.Delta = 25 * time.Millisecond
		sc.VerifySignatures = true
		sc.Adversaries = map[types.ReplicaID][]adversary.Spec{
			5: {{Kind: adversary.WrongAppHash}},
			6: {{Kind: adversary.WrongAppHash}},
		}
		res, err := harness.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		t0 := adversary.ForgingReplicas(sc.Adversaries)
		if vs := harness.CheckInvariants(res, t0); len(vs) > 0 {
			t.Fatalf("proto %v: wrong-apphash coalition broke invariants: %v", proto, vs)
		}
		if res.CommittedBlocks < 10 {
			t.Fatalf("proto %v: cluster stalled under wrong-apphash votes: %d blocks", proto, res.CommittedBlocks)
		}
	}
}

// TestBankCrashRestartReconverges pins durability for the execution layer: a
// replica killed mid-run and restored from its WAL rebuilds a FRESH bank,
// re-executes the recovered chain, rejoins via state sync, and lands on the
// same state roots as everyone else at every height it recommits.
func TestBankCrashRestartReconverges(t *testing.T) {
	sc, _ := bankScenario(31, 1<<10)
	victim := types.ReplicaID(6)
	sc.Crashes = []harness.CrashPlan{{Replica: victim, Crash: 3 * time.Second, Restart: 4 * time.Second}}
	res, err := harness.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if vs := harness.CheckInvariants(res, 0); len(vs) > 0 {
		t.Fatalf("crash/restart bank run violated invariants: %v", vs)
	}
	victimRoots := res.AppHashes[victim]
	obsRoots := res.AppHashes[res.Observer]
	if len(victimRoots) == 0 {
		t.Fatal("restarted replica recorded no committed roots")
	}
	post := 0
	for h, root := range victimRoots {
		if ref, ok := obsRoots[h]; ok && ref != root {
			t.Fatalf("height %d: victim root %x, observer root %x", h, root[:8], ref[:8])
		}
		if ok := victimChainAfterRestart(res, victim, h); ok {
			post++
		}
	}
	if post == 0 {
		t.Fatal("victim never committed after restart; recovery is vacuous")
	}
}

// TestBankWorkloadExperiment smoke-runs the flagship experiment at reduced
// scale with real transaction signatures and asserts it produces latency
// distributions at both assurance levels over a state-root-agreed chain.
func TestBankWorkloadExperiment(t *testing.T) {
	res, err := harness.BankWorkload(harness.Scale{Duration: 6 * time.Second}, 1<<12, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubmitToF.Count == 0 || res.SubmitTo2F.Count == 0 {
		t.Fatalf("missing latency samples: f=%d 2f=%d", res.SubmitToF.Count, res.SubmitTo2F.Count)
	}
	if res.SubmitTo2F.P50 < res.SubmitToF.P50 {
		t.Fatalf("2f-strong median (%v) below f-strong median (%v)", res.SubmitTo2F.P50, res.SubmitToF.P50)
	}
	if res.AgreedHeights == 0 {
		t.Fatal("no height had all replicas agreeing on the state root")
	}
	if res.Generated == 0 || res.ExecutedBlocks == 0 {
		t.Fatalf("workload did not flow: generated=%d executed=%d", res.Generated, res.ExecutedBlocks)
	}
}

// victimChainAfterRestart reports whether height h was committed by the
// victim's post-restart incarnation (approximated: any height beyond the
// chain length reached at the crash must be post-restart; to stay simple we
// just require the victim's top quarter of heights).
func victimChainAfterRestart(res *harness.Result, victim types.ReplicaID, h types.Height) bool {
	var maxH types.Height
	for hh := range res.AppHashes[victim] {
		if hh > maxH {
			maxH = hh
		}
	}
	return h > maxH*3/4
}

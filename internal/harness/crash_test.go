package harness

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestCrashRecoveryScenario is the end-to-end durability check: a replica
// killed mid-run and restored from its WAL re-joins via state sync, catches
// back up, and never commits anything inconsistent with the rest of the
// cluster or with the no-crash baseline's committed prefix.
func TestCrashRecoveryScenario(t *testing.T) {
	res, err := CrashRecovery(Scale{N: 7, F: 2, Duration: 40 * time.Second, Seed: 5}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("SAFETY: recovered replica committed inconsistently with its peers or the baseline prefix")
	}
	if res.SharedPrefix == 0 {
		t.Fatal("runs share no committed prefix; the kill should not perturb pre-crash events")
	}
	if res.VictimHeight <= res.SharedPrefix {
		t.Fatalf("victim never caught up past its crash point: reached h%d, shared prefix h%d",
			res.VictimHeight, res.SharedPrefix)
	}
	// The rejoined replica should track the observer's tip closely by the
	// end of the run (state sync plus live traffic closes the gap).
	if res.ObserverHeight > res.VictimHeight+10 {
		t.Fatalf("victim lagging after rejoin: victim h%d vs observer h%d",
			res.VictimHeight, res.ObserverHeight)
	}
	if res.Faulty.CommittedBlocks == 0 {
		t.Fatal("faulty run committed nothing at the observer")
	}
}

// TestCrashWithoutRestartStaysDown: a CrashPlan with no restart behaves like
// the legacy Crash map — the cluster keeps going (n=7 tolerates f=2).
func TestCrashWithoutRestartStaysDown(t *testing.T) {
	sc := &Scenario{
		Name:         "crash-norestart",
		N:            7,
		F:            2,
		Latency:      &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:         3,
		Duration:     15 * time.Second,
		RoundTimeout: 400 * time.Millisecond,
		SFT:          true,
		RecordChains: true,
		Crashes:      []CrashPlan{{Replica: 6, Crash: 5 * time.Second}},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBlocks == 0 {
		t.Fatal("cluster stalled after a single tolerated crash")
	}
	victimChain := res.Chains[6]
	obsChain := res.Chains[0]
	if len(victimChain) == 0 {
		t.Fatal("victim committed nothing before its crash")
	}
	for h, id := range victimChain {
		if ref, ok := obsChain[h]; ok && ref != id {
			t.Fatalf("victim's pre-crash commit at h%d disagrees with the observer", h)
		}
	}
	if len(victimChain) >= len(obsChain) {
		t.Fatalf("victim (down from 5s) committed as much as the observer: %d vs %d",
			len(victimChain), len(obsChain))
	}
}

// TestDurableRunMatchesInMemoryRun: attaching journals to every replica
// (DataDir set, no crashes) must not change a fixed-seed run's results —
// the WAL is write-only on the hot path.
func TestDurableRunMatchesInMemoryRun(t *testing.T) {
	base := Scenario{
		Name:         "durable-ab",
		N:            4,
		F:            1,
		Latency:      &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: time.Millisecond},
		Seed:         9,
		Duration:     10 * time.Second,
		RoundTimeout: 400 * time.Millisecond,
		SFT:          true,
		RecordChains: true,
	}
	plain := base
	plainRes, err := Run(&plain)
	if err != nil {
		t.Fatal(err)
	}
	durable := base
	durable.DataDir = t.TempDir()
	durableRes, err := Run(&durable)
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.CommittedBlocks != durableRes.CommittedBlocks {
		t.Fatalf("journaling changed committed blocks: %d vs %d",
			plainRes.CommittedBlocks, durableRes.CommittedBlocks)
	}
	if plainRes.Events != durableRes.Events {
		t.Fatalf("journaling changed the event sequence: %d vs %d events",
			plainRes.Events, durableRes.Events)
	}
	for rep, chain := range plainRes.Chains {
		other := durableRes.Chains[rep]
		if len(other) != len(chain) {
			t.Fatalf("replica %v: chain length %d vs %d", rep, len(other), len(chain))
		}
		for h, id := range chain {
			if other[h] != id {
				t.Fatalf("replica %v h%d: %v vs %v", rep, h, other[h], id)
			}
		}
	}
}

package harness_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/types"
)

// TestFuzzSweepHoldsInvariants is the headline adversarial test: a seeded
// sweep of randomized scenarios — both engines, random Byzantine behavior
// compositions up to 2f colluders, crash/restart plans, partitions — must
// produce zero invariant violations under the real commit rule.
func TestFuzzSweepHoldsInvariants(t *testing.T) {
	scenarios := 50
	if testing.Short() {
		scenarios = 12
	}
	report, err := harness.RunFuzz(harness.FuzzOptions{Seed: 1, Scenarios: scenarios})
	if err != nil {
		t.Fatal(err)
	}
	for _, fail := range report.Failures {
		t.Errorf("%s\n  -> %s", fail.Spec, strings.Join(fail.Violations, "\n  -> "))
	}
	t.Logf("%d scenarios (%d byzantine, %d partitioned, %d crashing), %d events, %d blocks in %v",
		report.Scenarios, report.ByzantineScenarios, report.PartitionScenarios,
		report.CrashScenarios, report.TotalEvents, report.TotalBlocks, report.Elapsed)
	if report.ByzantineScenarios == 0 || report.CrashScenarios == 0 {
		t.Fatalf("sweep explored too little: %+v", report)
	}
}

// TestFuzzScenarioReplayDeterminism pins reproducibility: re-running a
// generated scenario from its (seed, index) pair is bit-identical.
func TestFuzzScenarioReplayDeterminism(t *testing.T) {
	opts := harness.FuzzOptions{Seed: 7}
	for _, idx := range []int{0, 3, 9} {
		specA := harness.GenFuzzScenario(7, idx, opts)
		specB := harness.GenFuzzScenario(7, idx, opts)
		if specA.String() != specB.String() {
			t.Fatalf("spec generation not deterministic:\n%s\n%s", specA, specB)
		}
		resA, vioA, err := harness.RunFuzzScenario(specA)
		if err != nil {
			t.Fatal(err)
		}
		resB, vioB, err := harness.RunFuzzScenario(specB)
		if err != nil {
			t.Fatal(err)
		}
		if resA.Events != resB.Events || resA.CommittedBlocks != resB.CommittedBlocks ||
			resA.Msgs.Count != resB.Msgs.Count || len(vioA) != len(vioB) {
			t.Fatalf("scenario %d replay diverged: events %d vs %d, blocks %d vs %d, msgs %d vs %d",
				idx, resA.Events, resB.Events, resA.CommittedBlocks, resB.CommittedBlocks,
				resA.Msgs.Count, resB.Msgs.Count)
		}
	}
}

// TestWeakenedRuleCaught pins the checker's teeth: the directed Appendix C
// collusion against the naive (marker-free) endorsement rule must be
// flagged as a Definition 1 violation, while the identical scenario under
// the real marker rule stays clean.
func TestWeakenedRuleCaught(t *testing.T) {
	var seed int64
	caught := false
	for seed = 1; seed <= 8; seed++ {
		spec, violations, err := harness.WeakenedRuleCanary(seed, 7, true)
		if err != nil {
			t.Fatal(err)
		}
		if hasDef1(violations) {
			caught = true
			t.Logf("naive rule caught at seed %d: %s", seed, spec)
			break
		}
	}
	if !caught {
		t.Fatal("weakened (naive) commit rule produced no Definition 1 violation in 8 seeds")
	}
	// The same collusion under the real marker rule must stay safe — any
	// invariant breach (not just Definition 1) is a regression.
	spec, violations, err := harness.WeakenedRuleCanary(seed, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("marker rule violated invariants under the canary collusion: %s\n%v", spec, violations)
	}
}

func hasDef1(violations []string) bool {
	for _, v := range violations {
		if strings.Contains(v, "Definition 1") {
			return true
		}
	}
	return false
}

// TestPartitionStallsAndHeals sanity-checks the new partition scheduling
// end to end: a majority-less split stops commits, healing restores them.
func TestPartitionStallsAndHeals(t *testing.T) {
	spec := harness.GenFuzzScenario(3, 0, harness.FuzzOptions{N: 4, Duration: 6 * time.Second})
	spec.Adversaries = nil
	spec.Crashes = nil
	spec.Partitions = []harness.PartitionPlan{{
		At:     2 * time.Second,
		Heal:   3 * time.Second,
		Groups: [][]types.ReplicaID{{0, 1}},
	}}
	res, violations, err := harness.RunFuzzScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("healed-partition scenario violated invariants: %v", violations)
	}
	if res.PartitionDrops == 0 {
		t.Fatal("partition dropped no deliveries")
	}
	if res.CommittedBlocks < 3 {
		t.Fatalf("cluster never recovered after heal: %d blocks", res.CommittedBlocks)
	}
}

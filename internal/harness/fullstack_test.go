package harness_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/health"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestFullStackConsistency runs a 7-replica SFT cluster with per-replica
// ledgers and state machines, one straggler, and a health monitor, then
// checks the whole story end to end: linearizable logs agree, state
// machines agree, strength levels respect the straggler, and the monitor
// identifies it.
func TestFullStackConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const (
		n         = 7
		f         = 2
		straggler = types.ReplicaID(5)
	)
	ring, err := crypto.NewKeyRing(n, 77, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}

	ledgers := make([]*ledger.Ledger, n)
	stores := make([]*ledger.KVStore, n)
	for i := range ledgers {
		stores[i] = ledger.NewKVStore()
		ledgers[i] = ledger.New(stores[i])
	}
	monitor := health.NewMonitor(n, 2*n)

	sim := simnet.New(simnet.Config{
		N: n,
		Latency: &simnet.RegionModel{
			RegionOf: make([]int, n),
			Intra:    3 * time.Millisecond,
			Inter:    [][]time.Duration{{3 * time.Millisecond}},
			Jitter:   2 * time.Millisecond,
			Penalty:  map[types.ReplicaID]time.Duration{straggler: 40 * time.Millisecond},
		},
		Seed: 3,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if err := ledgers[rep].Commit(b); err != nil {
				t.Errorf("replica %v ledger: %v", rep, err)
			}
			// Feed the health monitor from replica 0's chain view.
			if rep == 0 && b.Justify != nil {
				monitor.ObserveQC(b.Justify)
			}
		},
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			ledgers[rep].Strengthen(b.ID(), x)
		},
	})

	// A write-heavy workload over a small keyspace so state convergence is
	// meaningful.
	gen := workload.NewGenerator(5, 8, 0)
	payload := func(r types.Round) types.Payload {
		base := gen.Batch(4)
		for i := range base {
			base[i].Data = []byte{byte('a' + i%4), '=', byte('0' + r%10)}
		}
		return types.Payload{Txns: base}
	}
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID: id, N: n, F: f,
			Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
			SFT: true, RoundTimeout: 500 * time.Millisecond,
			Payload: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.SetEngine(id, rep)
	}
	sim.Run(20 * time.Second)

	// 1. Logs are consistent prefixes of one another.
	if err := ledger.CheckPrefixConsistency(ledgers); err != nil {
		t.Fatalf("ledger divergence: %v", err)
	}
	if ledgers[0].Height() < 100 {
		t.Fatalf("only %d blocks committed", ledgers[0].Height())
	}

	// 2. State machines with equal heights agree exactly.
	h := ledgers[0].Height()
	for i := 1; i < n; i++ {
		if ledgers[i].Height() < h {
			h = ledgers[i].Height()
		}
	}
	if h == 0 {
		t.Fatal("no common committed prefix")
	}
	// Replay prefix h on fresh stores for an exact comparison.
	replay := func(l *ledger.Ledger) *ledger.KVStore {
		kv := ledger.NewKVStore()
		for hh := types.Height(1); hh <= h; hh++ {
			for _, txn := range l.At(hh).Block.Payload.Txns {
				kv.Apply(txn)
			}
		}
		return kv
	}
	ref := replay(ledgers[0])
	for i := 1; i < n; i++ {
		got := replay(ledgers[i])
		if got.Ops() != ref.Ops() || got.Len() != ref.Len() {
			t.Fatalf("state divergence at replica %d: ops %d vs %d", i, got.Ops(), ref.Ops())
		}
	}

	// 3. Strength levels in the middle of the log reached 2f eventually,
	// and the ledger's prefix-strength query works.
	mid := h / 2
	if x := ledgers[0].StrengthAt(mid); x != 2*f {
		t.Errorf("mid-log block strength = %d, want %d", x, 2*f)
	}
	if x := ledgers[0].MinStrengthOver(mid, mid+5); x < f {
		t.Errorf("prefix strength = %d", x)
	}

	// 4. The health monitor flags the straggler (whose votes never enter
	// QCs except when it leads) as the diversity bottleneck: it appears far
	// less often than its peers.
	counts := monitor.AppearanceCounts()
	avg := 0
	for id, c := range counts {
		if types.ReplicaID(id) != straggler {
			avg += c
		}
	}
	avg /= n - 1
	if counts[straggler] >= avg/2 {
		t.Errorf("straggler appears %d times vs avg %d — monitor sees no difference", counts[straggler], avg)
	}
	if monitor.MaxLevel(f) < f {
		t.Errorf("monitor max level = %d", monitor.MaxLevel(f))
	}
}

package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

// Determinism is this repository's regression oracle for performance work:
// every optimization must leave fixed-seed experiment results bit-identical.
// These tests pin that property for the PR-1 hot-path changes (verified-QC
// cache, pooled event queue, bitset endorser sets, indexed marker walks).

// fingerprint reduces a Result to the comparable fields: commits, message
// accounting, events, and every latency summary.
type fingerprint struct {
	Blocks  int
	Txns    int64
	Events  int64
	Msgs    simnet.MsgStats
	Regular [5]float64
	Levels  map[int][5]float64
}

func fp(res *Result) fingerprint {
	f := fingerprint{
		Blocks: res.CommittedBlocks,
		Txns:   res.CommittedTxns,
		Events: res.Events,
		Msgs:   res.Msgs,
		Regular: [5]float64{
			res.RegularLatency.Mean, res.RegularLatency.P50, res.RegularLatency.P95,
			res.RegularLatency.Max, float64(res.RegularLatency.Count),
		},
		Levels: make(map[int][5]float64, len(res.LevelLatency)),
	}
	for lv, s := range res.LevelLatency {
		f.Levels[lv] = [5]float64{s.Mean, s.P50, s.P95, s.Max, float64(s.Count)}
	}
	return f
}

func verifyingScenario(seed int64, disableCache bool) *Scenario {
	return &Scenario{
		Name:             "determinism",
		N:                7,
		F:                2,
		Latency:          simnet.NewSymmetricModel(7, 3, intraDelay, 50*time.Millisecond, symJitter),
		Seed:             seed,
		Duration:         20 * time.Second,
		RoundTimeout:     2 * time.Second,
		SFT:              true,
		VerifySignatures: true,
		DisableQCCache:   disableCache,
	}
}

// TestDeterminismQCCacheOnOff asserts that enabling the verified-QC cache
// changes nothing about a fixed-seed run: commits, per-level latencies,
// message counts, bytes, and processed events are all bit-identical. The
// cache only memoizes a pure predicate, so any divergence is a bug.
func TestDeterminismQCCacheOnOff(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cached, err := Run(verifyingScenario(seed, false))
		if err != nil {
			t.Fatal(err)
		}
		uncached, err := Run(verifyingScenario(seed, true))
		if err != nil {
			t.Fatal(err)
		}
		if cached.CommittedBlocks == 0 {
			t.Fatalf("seed %d: no commits; scenario too short to be meaningful", seed)
		}
		if !reflect.DeepEqual(fp(cached), fp(uncached)) {
			t.Errorf("seed %d: cache-on run differs from cache-off run:\n on=%+v\noff=%+v",
				seed, fp(cached), fp(uncached))
		}
	}
}

// TestDeterminismRepeatRun asserts that the same seed yields the same result
// twice in one process — the pooled event queue and bitset tracker must not
// introduce any iteration-order or reuse sensitivity.
func TestDeterminismRepeatRun(t *testing.T) {
	sc := Scale{N: 13, F: 4, Duration: 20 * time.Second, Seed: 3}
	a, err := Figure7a(sc, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure7a(sc, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.CommittedBlocks == 0 {
		t.Fatal("no commits")
	}
	if !reflect.DeepEqual(fp(a), fp(b)) {
		t.Errorf("repeat run differs:\n a=%+v\n b=%+v", fp(a), fp(b))
	}
}

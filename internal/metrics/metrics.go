// Package metrics provides the small statistics toolkit the experiment
// harness uses — streaming series with mean/percentile/min/max summaries —
// plus the concurrency-safe counters the transports and the verification
// pipeline export (dropped frames, prevalidation rejects).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic event counter. Transports
// increment it from reader goroutines; operators read it from anywhere. The
// zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Series accumulates float64 samples.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends one sample.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDuration appends a duration sample in seconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean, or NaN for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or NaN for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.vals) {
		rank = len(s.vals)
	}
	return s.vals[rank-1]
}

// Min returns the smallest sample, or NaN for an empty series.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[0]
}

// Max returns the largest sample, or NaN for an empty series.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// StdDev returns the population standard deviation, or NaN when empty.
func (s *Series) StdDev() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}

func (s *Series) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Summary is an immutable snapshot of a series. It carries the latency
// distribution (p50/p95/p99), not just the mean — tail behavior is what the
// paper's extra-wait and commit-strength trade-offs move, and a mean alone
// hides it.
type Summary struct {
	Count               int
	Mean, P50, P95, P99 float64
	Min, Max            float64
}

// Summarize snapshots the series.
func (s *Series) Summarize() Summary {
	if len(s.vals) == 0 {
		return Summary{}
	}
	return Summary{
		Count: s.Count(),
		Mean:  s.Mean(),
		P50:   s.Percentile(50),
		P95:   s.Percentile(95),
		P99:   s.Percentile(99),
		Min:   s.Min(),
		Max:   s.Max(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}

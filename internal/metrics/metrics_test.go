package metrics_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSeriesStats(t *testing.T) {
	var s metrics.Series
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(1); got != 1 {
		t.Errorf("p1 = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
}

func TestSeriesAddAfterSort(t *testing.T) {
	// Percentile sorts internally; later Adds must still be seen.
	var s metrics.Series
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(10)
	if got := s.Max(); got != 10 {
		t.Fatalf("max after post-sort add = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	var s metrics.Series
	for name, v := range map[string]float64{
		"mean": s.Mean(), "p50": s.Percentile(50), "min": s.Min(),
		"max": s.Max(), "stddev": s.StdDev(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty series = %v, want NaN", name, v)
		}
	}
	sum := s.Summarize()
	if sum.Count != 0 {
		t.Error("empty summary count")
	}
	if sum.String() != "n=0" {
		t.Errorf("empty summary string = %q", sum.String())
	}
}

func TestAddDuration(t *testing.T) {
	var s metrics.Series
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("duration sample = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	var s metrics.Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.Count != 100 || sum.Mean != 50.5 || sum.P50 != 50 || sum.P95 != 95 || sum.P99 != 99 || sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.String() == "" {
		t.Error("summary string empty")
	}
}

package runtime_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/types"
)

// TestPipelinedClusterCommits runs a real-crypto SFT-DiemBFT cluster with
// the prevalidation worker pool enabled on every node and checks liveness
// and prefix agreement — the end-to-end proof that taking signature checks
// off the event loop does not disturb the protocol.
func TestPipelinedClusterCommits(t *testing.T) {
	const n, f = 4, 1
	ring, err := crypto.NewKeyRing(n, 17, crypto.SchemeEd25519)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	net := runtime.NewLocalNetwork(n)

	var mu sync.Mutex
	got := make(map[types.ReplicaID][]types.BlockID)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	nodes := make([]*runtime.Node, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			BatchWorkers:     2,
			SFT:              true,
			RoundTimeout:     300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		node, err := runtime.NewNode(rep, net.Endpoint(id), runtime.Options{
			N:                  n,
			PrevalidateWorkers: 2,
			OnCommit: func(b *types.Block) {
				mu.Lock()
				got[id] = append(got[id], b.ID())
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
		net.Close()
	}()

	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		enough := true
		for i := 0; i < n; i++ {
			if len(got[types.ReplicaID(i)]) < 10 {
				enough = false
			}
		}
		mu.Unlock()
		if enough {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("pipelined cluster too slow: %d/%d/%d/%d commits",
				len(got[0]), len(got[1]), len(got[2]), len(got[3]))
		case <-time.After(50 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	ref := got[0]
	for id := types.ReplicaID(1); id < n; id++ {
		other := got[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i] != other[i] {
				t.Fatalf("divergence at %d between replica 0 and %v", i, id)
			}
		}
	}
	for i, node := range nodes {
		if d := node.PrevalidateDrops(); d != 0 {
			t.Fatalf("node %d dropped %d honest messages in prevalidation", i, d)
		}
	}
}

// orderProbe is a minimal engine.Pipelined that records the order in which
// validated messages reach the state stage and rejects messages whose
// StateSyncRequest.Have is odd — a stand-in for a bad signature.
type orderProbe struct {
	mu   sync.Mutex
	seen map[types.ReplicaID][]types.Height
	done chan struct{}
	want int
}

func (p *orderProbe) ID() types.ReplicaID                        { return 0 }
func (p *orderProbe) Init(time.Duration) []engine.Output         { return nil }
func (p *orderProbe) OnTimer(time.Duration, int) []engine.Output { return nil }

func (p *orderProbe) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	panic("pipeline must deliver via OnVerifiedMessage")
}

func (p *orderProbe) Prevalidate(from types.ReplicaID, msg types.Message) error {
	m := msg.(*types.StateSyncRequest)
	if m.Have%2 == 1 {
		return fmt.Errorf("probe: invalid message %d", m.Have)
	}
	return nil
}

func (p *orderProbe) OnVerifiedMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	m := msg.(*types.StateSyncRequest)
	p.mu.Lock()
	p.seen[from] = append(p.seen[from], m.Have)
	total := 0
	for _, s := range p.seen {
		total += len(s)
	}
	if total == p.want {
		close(p.done)
	}
	p.mu.Unlock()
	return nil
}

// TestPipelinePerSenderFIFOAndDrops pins the worker pool's two contracts:
// messages that fail Prevalidate never reach the state stage (and are
// counted), and each sender's surviving messages arrive in send order even
// though two workers prevalidate concurrently.
func TestPipelinePerSenderFIFOAndDrops(t *testing.T) {
	const senders = 3
	const perSender = 40 // even Have values survive; odd ones are dropped
	probe := &orderProbe{
		seen: make(map[types.ReplicaID][]types.Height),
		done: make(chan struct{}),
		want: senders * perSender / 2,
	}
	net := runtime.NewLocalNetwork(senders + 1)
	node, err := runtime.NewNode(probe, net.Endpoint(0), runtime.Options{
		N:                  senders + 1,
		PrevalidateWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = node.Run(ctx)
	}()

	for s := 1; s <= senders; s++ {
		ep := net.Endpoint(types.ReplicaID(s))
		for i := 0; i < perSender; i++ {
			msg := &types.StateSyncRequest{Have: types.Height(i), Sender: types.ReplicaID(s)}
			if err := ep.Send(0, msg); err != nil {
				t.Fatalf("send %d/%d: %v", s, i, err)
			}
		}
	}

	select {
	case <-probe.done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not deliver all valid messages")
	}
	cancel()
	<-runDone
	net.Close()

	probe.mu.Lock()
	defer probe.mu.Unlock()
	for s := 1; s <= senders; s++ {
		seq := probe.seen[types.ReplicaID(s)]
		if len(seq) != perSender/2 {
			t.Fatalf("sender %d: %d messages survived, want %d", s, len(seq), perSender/2)
		}
		for i, h := range seq {
			if h != types.Height(2*i) {
				t.Fatalf("sender %d: position %d got Have=%d, want %d (FIFO violated)", s, i, h, 2*i)
			}
		}
	}
	if d := node.PrevalidateDrops(); d != senders*perSender/2 {
		t.Fatalf("PrevalidateDrops=%d, want %d", d, senders*perSender/2)
	}
}

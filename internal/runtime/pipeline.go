package runtime

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// prevalidatePipeline is the bounded worker-pool stage between a Transport
// and the engine loop: inbound messages are sharded by sender onto workers
// that run the engine's stateless Prevalidate concurrently, drop failures,
// and forward survivors — marked Verified — to the event loop, which then
// applies them without any signature work.
//
// Ordering guarantee: per-sender FIFO. Every sender is pinned to one worker
// (sender ID mod workers) and each worker forwards in arrival order, so the
// relative order of one sender's messages is preserved end to end.
// Cross-sender interleaving is unconstrained, exactly like the network
// itself, so the consensus engines observe nothing new.
//
// Backpressure: worker queues and the output channel are bounded; when the
// engine loop falls behind, the dispatcher blocks on the full queue, which
// in turn parks the transport's receive path — the same flow control a
// single-threaded loop provides, just with a deeper buffer.
type prevalidatePipeline struct {
	eng    engine.Pipelined
	queues []chan Inbound
	out    chan Inbound

	// checked counts messages that went through Prevalidate; drops counts
	// the ones it rejected (bad signatures, malformed certificates).
	checked metrics.Counter
	drops   metrics.Counter

	// obs mirrors the counters (and the queue-depth gauge) into the
	// observability registry; nil-safe.
	obs *obs.Obs
}

const (
	pipelineWorkerQueue = 256
	pipelineOutQueue    = 1024
)

// newPrevalidatePipeline constructs the stage without starting any
// goroutines — Node.Run calls start, so a node that is built but never run
// leaks nothing and leaves its transport untouched.
func newPrevalidatePipeline(eng engine.Pipelined, workers int, o *obs.Obs) *prevalidatePipeline {
	if workers < 1 {
		workers = 1
	}
	p := &prevalidatePipeline{
		eng:    eng,
		obs:    o,
		queues: make([]chan Inbound, workers),
		out:    make(chan Inbound, pipelineOutQueue),
	}
	for i := range p.queues {
		p.queues[i] = make(chan Inbound, pipelineWorkerQueue)
	}
	return p
}

// start launches the stage: one dispatcher goroutine sharding src by sender,
// one prevalidation goroutine per queue, and a closer that shuts the output
// when src closes. stop aborts all of them mid-flight (used when the node's
// Run returns while the transport is still open).
func (p *prevalidatePipeline) start(src <-chan Inbound, stop <-chan struct{}) {
	eng := p.eng
	workers := len(p.queues)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := range p.queues {
		go func(q <-chan Inbound) {
			defer wg.Done()
			for in := range q {
				// Frames a transport already prevalidated (tcpnet reader
				// goroutines with a Prevalidate hook) pass straight through;
				// routing them via the sender's worker keeps per-sender FIFO
				// even when verified and unverified frames mix.
				if !in.Verified {
					p.checked.Inc()
					if err := eng.Prevalidate(in.From, in.Msg); err != nil {
						p.drops.Inc()
						p.obs.OnPrevalidate(true)
						p.obs.PrevalidateQueueAdd(-1)
						continue
					}
					p.obs.OnPrevalidate(false)
					in.Verified = true
				}
				p.obs.PrevalidateQueueAdd(-1)
				select {
				case p.out <- in:
				case <-stop:
					return
				}
			}
		}(p.queues[i])
	}

	go func() {
	dispatch:
		// The receive itself selects on stop, so the dispatcher (and with it
		// the workers, whose queues close below) exits when the node stops
		// even if the transport outlives it — no goroutines parked on a
		// still-open src after Run returns.
		for {
			select {
			case in, ok := <-src:
				if !ok {
					break dispatch
				}
				p.obs.PrevalidateQueueAdd(1)
				select {
				case p.queues[int(uint32(in.From))%workers] <- in:
				case <-stop:
					p.obs.PrevalidateQueueAdd(-1)
					break dispatch
				}
			case <-stop:
				break dispatch
			}
		}
		for _, q := range p.queues {
			close(q)
		}
	}()
	go func() {
		wg.Wait()
		close(p.out)
	}()
}

// Drops returns how many inbound messages prevalidation rejected.
func (p *prevalidatePipeline) Drops() int64 { return p.drops.Load() }

// Checked returns how many inbound messages went through Prevalidate.
func (p *prevalidatePipeline) Checked() int64 { return p.checked.Load() }

package runtime_test

import (
	"testing"

	"repro/internal/runtime"
	"repro/internal/types"
)

func TestLocalNetworkRouting(t *testing.T) {
	net := runtime.NewLocalNetwork(3)
	defer net.Close()

	a := net.Endpoint(0)
	b := net.Endpoint(1)
	if err := a.Send(1, &types.VoteMsg{Vote: types.Vote{Round: 7}}); err != nil {
		t.Fatal(err)
	}
	in := <-b.Recv()
	if in.From != 0 {
		t.Fatalf("from = %v", in.From)
	}
	if vm, ok := in.Msg.(*types.VoteMsg); !ok || vm.Vote.Round != 7 {
		t.Fatalf("msg = %v", in.Msg)
	}
}

func TestLocalNetworkUnknownEndpoint(t *testing.T) {
	net := runtime.NewLocalNetwork(2)
	defer net.Close()
	if err := net.Endpoint(0).Send(9, &types.VoteMsg{}); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestLocalNetworkOverflowDrops(t *testing.T) {
	net := runtime.NewLocalNetwork(2)
	defer net.Close()
	a := net.Endpoint(0)
	// Fill the receiver's buffer (capacity 1024) without draining.
	var firstErr error
	for i := 0; i < 2048; i++ {
		if err := a.Send(1, &types.VoteMsg{}); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("overflow never reported")
	}
}

func TestLocalNetworkClose(t *testing.T) {
	net := runtime.NewLocalNetwork(2)
	a := net.Endpoint(0)
	net.Close()
	net.Close() // idempotent
	if err := a.Send(1, &types.VoteMsg{}); err == nil {
		t.Fatal("send after close succeeded")
	}
	// Recv channel is closed.
	if _, ok := <-net.Endpoint(1).Recv(); ok {
		t.Fatal("recv channel still open")
	}
}

package runtime_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/wal"
)

// TestRunClosesJournalOnCancel: the shutdown path must flush and close the
// WAL instead of dropping buffered appends — after Run returns, the journal
// is closed and a reopened log replays the full pre-shutdown state.
func TestRunClosesJournalOnCancel(t *testing.T) {
	const n, f = 4, 1
	ring, err := crypto.NewKeyRing(n, 99, crypto.SchemeEd25519)
	if err != nil {
		t.Fatal(err)
	}
	net := runtime.NewLocalNetwork(n)
	dir := t.TempDir()

	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	journal := core.NewJournal(l)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	committed := make(chan struct{}, 1)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		cfg := diembft.Config{
			ID: id, N: n, F: f,
			Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
			SFT: true, RoundTimeout: 300 * time.Millisecond,
		}
		opts := runtime.Options{N: n}
		if id == 0 {
			cfg.Journal = journal
			opts.Journal = journal
			opts.OnCommit = func(b *types.Block) {
				select {
				case committed <- struct{}{}:
				default:
				}
			}
		}
		rep, err := diembft.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		node, err := runtime.NewNode(rep, net.Endpoint(id), opts)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	select {
	case <-committed:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster never committed")
	}
	cancel()
	net.Close()
	wg.Wait()

	// Run's exit closed the journal: further appends must fail...
	if err := journal.AppendLock(1); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("journal still open after Run returned: %v", err)
	}
	// ...and a reopened log replays a consistent, non-empty state.
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec, err := core.Recover(l2)
	if err != nil {
		t.Fatalf("recover after shutdown: %v", err)
	}
	if rec.Empty() || len(rec.Votes) == 0 || rec.CommittedHeight == 0 {
		t.Fatalf("shutdown dropped durable state: %d blocks, %d votes, committed h%d",
			len(rec.Blocks), len(rec.Votes), rec.CommittedHeight)
	}
}

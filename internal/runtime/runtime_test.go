package runtime_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/runtime"
	"repro/internal/types"
)

// startLocalCluster runs n SFT-DiemBFT nodes over an in-process network and
// returns a commit observer plus a cancel function.
func startLocalCluster(t *testing.T, n, f int) (commits func() map[types.ReplicaID][]types.BlockID, strengths func() int, stop func()) {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 99, crypto.SchemeEd25519)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	net := runtime.NewLocalNetwork(n)

	var mu sync.Mutex
	got := make(map[types.ReplicaID][]types.BlockID)
	strongEvents := 0

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			RoundTimeout:     300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		node, err := runtime.NewNode(rep, net.Endpoint(id), runtime.Options{
			N: n,
			OnCommit: func(b *types.Block) {
				mu.Lock()
				got[id] = append(got[id], b.ID())
				mu.Unlock()
			},
			OnStrength: func(b *types.Block, x int) {
				mu.Lock()
				strongEvents++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}
	commits = func() map[types.ReplicaID][]types.BlockID {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[types.ReplicaID][]types.BlockID, len(got))
		for k, v := range got {
			out[k] = append([]types.BlockID(nil), v...)
		}
		return out
	}
	strengths = func() int {
		mu.Lock()
		defer mu.Unlock()
		return strongEvents
	}
	stop = func() {
		cancel()
		wg.Wait()
		net.Close()
	}
	return commits, strengths, stop
}

func TestLocalClusterCommits(t *testing.T) {
	commits, strengths, stop := startLocalCluster(t, 4, 1)
	defer stop()

	deadline := time.After(10 * time.Second)
	for {
		got := commits()
		if len(got[0]) >= 10 && len(got[1]) >= 10 && len(got[2]) >= 10 && len(got[3]) >= 10 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("cluster too slow: %d/%d/%d/%d commits",
				len(got[0]), len(got[1]), len(got[2]), len(got[3]))
		case <-time.After(50 * time.Millisecond):
		}
	}
	// Prefix agreement across replicas.
	got := commits()
	ref := got[0]
	for id := types.ReplicaID(1); id < 4; id++ {
		other := got[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i] != other[i] {
				t.Fatalf("divergence at %d between replica 0 and %v", i, id)
			}
		}
	}
	if strengths() == 0 {
		t.Fatal("no strength updates observed")
	}
}

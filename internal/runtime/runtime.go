// Package runtime hosts a consensus engine (internal/engine) on real
// infrastructure: goroutines, wall-clock timers, and a pluggable Transport
// (in-process channels via LocalNetwork, or TCP via internal/tcpnet). The
// engine code is identical to what runs under the simulator; only the event
// loop differs.
package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/types"
)

// Inbound is one received message. Verified marks a message that already
// passed the engine's stateless Prevalidate stage (on a transport reader
// goroutine or the node's worker pool) or was generated locally; the event
// loop applies such messages without re-checking signatures.
type Inbound struct {
	From     types.ReplicaID
	Msg      types.Message
	Verified bool
}

// Transport moves messages between replicas.
type Transport interface {
	// Send transmits msg to one replica. Implementations must be safe for
	// use from the node's event loop goroutine.
	Send(to types.ReplicaID, msg types.Message) error
	// Recv returns the channel of inbound messages.
	Recv() <-chan Inbound
	// Close releases resources; Recv's channel may close afterwards.
	Close() error
}

// Feeder is optionally implemented by transports that relay a replica's own
// broadcast traffic to attached read-only observers (tcpnet mirrors inbound
// peer frames itself, but the node's own proposals never cross its inbound
// path). The node calls FeedLocal once per Broadcast output, from the event
// loop goroutine; implementations must not block.
type Feeder interface {
	FeedLocal(msg types.Message)
}

// Durable is the durability resource a node owns while running —
// typically a *core.Journal wrapping the engine's write-ahead log. Close
// must flush (with fsync) and release it.
type Durable interface {
	Close() error
}

// Options configures a Node.
type Options struct {
	// N is the number of replicas (for broadcast fan-out).
	N int
	// OnCommit, if non-nil, observes regular commits.
	OnCommit func(b *types.Block)
	// OnStrength, if non-nil, observes strong-commit level updates.
	OnStrength func(b *types.Block, x int)
	// Journal, if non-nil, is flushed and closed when Run returns — the
	// engine appends to it synchronously from the event loop, so closing
	// after the loop exits guarantees no buffered appends are dropped on a
	// graceful shutdown (context cancellation included).
	Journal Durable
	// PrevalidateWorkers, when > 0 and the engine implements
	// engine.Pipelined, inserts a bounded worker pool between the transport
	// and the event loop: signature and certificate checks run concurrently
	// there (per-sender FIFO preserved) and the loop applies pre-verified
	// messages without any crypto. 0 keeps the classic single-threaded path.
	PrevalidateWorkers int
	// Obs, if non-nil, receives prevalidation queue-depth and outcome
	// observations from the worker pool (see internal/obs).
	Obs *obs.Obs
}

// Node runs one engine on a transport until its context is cancelled.
type Node struct {
	eng   engine.Engine
	tr    Transport
	opts  Options
	start time.Time

	// pipelined is non-nil when the engine supports the prevalidate/apply
	// split; pipe is the worker-pool stage (nil when PrevalidateWorkers is
	// 0). Both are set once in NewNode and immutable afterwards, so stats
	// accessors may read them from any goroutine. recv is the channel the
	// event loop consumes: the pipeline's output when the pool is on, the
	// transport's otherwise.
	pipelined engine.Pipelined
	pipe      *prevalidatePipeline
	recv      <-chan Inbound
	// src is the transport's inbound channel, captured once in NewNode (the
	// Transport contract doesn't promise Recv returns a stable channel); the
	// pipeline drains it when enabled, otherwise recv aliases it.
	src <-chan Inbound

	timerCh  chan int
	loopback chan Inbound
	stopping chan struct{}
}

// NewNode wires an engine to a transport. When Options.PrevalidateWorkers is
// set and the engine implements engine.Pipelined, the prevalidation worker
// pool is constructed here (so the wiring is immutable and stats accessors
// are race-free) but its goroutines only start — and the transport is only
// drained — once Run is called.
func NewNode(eng engine.Engine, tr Transport, opts Options) (*Node, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("runtime: N must be positive")
	}
	n := &Node{
		eng:      eng,
		tr:       tr,
		opts:     opts,
		timerCh:  make(chan int, 64),
		loopback: make(chan Inbound, 64),
		stopping: make(chan struct{}),
	}
	n.src = tr.Recv()
	n.recv = n.src
	if pe, ok := eng.(engine.Pipelined); ok {
		n.pipelined = pe
		if opts.PrevalidateWorkers > 0 {
			n.pipe = newPrevalidatePipeline(pe, opts.PrevalidateWorkers, opts.Obs)
			n.recv = n.pipe.out
		}
	}
	return n, nil
}

// PrevalidateDrops returns how many inbound messages the node's worker pool
// rejected during prevalidation (0 when the pipeline is off).
func (n *Node) PrevalidateDrops() int64 {
	if n.pipe == nil {
		return 0
	}
	return n.pipe.Drops()
}

// Run executes the node's event loop until ctx is cancelled. It owns the
// engine: no other goroutine may touch it while Run is active. If a journal
// is configured it is flushed and closed on the way out, so a graceful stop
// (signal, -run timeout) never drops buffered WAL appends.
func (n *Node) Run(ctx context.Context) (err error) {
	n.start = time.Now()
	defer close(n.stopping)
	if n.opts.Journal != nil {
		defer func() {
			// The loop has exited; the engine is quiescent, so this flush
			// observes every append. Surface a close failure unless the run
			// is already reporting an error.
			if cerr := n.opts.Journal.Close(); cerr != nil && (err == nil || err == ctx.Err()) {
				err = cerr
			}
		}()
	}
	if n.pipe != nil {
		n.pipe.start(n.src, n.stopping)
	}
	n.apply(n.eng.Init(n.now()))
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case in, ok := <-n.recv:
			if !ok {
				return nil
			}
			n.apply(n.dispatch(in))
		case in := <-n.loopback:
			n.apply(n.dispatch(in))
		case id := <-n.timerCh:
			n.apply(n.eng.OnTimer(n.now(), id))
		}
	}
}

// dispatch applies one inbound message: messages that already passed
// prevalidation (worker pool, transport reader hook, or local loopback) skip
// the engine's signature checks via OnVerifiedMessage.
func (n *Node) dispatch(in Inbound) []engine.Output {
	if in.Verified && n.pipelined != nil {
		return n.pipelined.OnVerifiedMessage(n.now(), in.From, in.Msg)
	}
	return n.eng.OnMessage(n.now(), in.From, in.Msg)
}

func (n *Node) now() time.Duration { return time.Since(n.start) }

func (n *Node) apply(outs []engine.Output) {
	self := n.eng.ID()
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			if o.To == self {
				// Locally generated: trusted, no prevalidation needed.
				n.enqueueLoopback(Inbound{From: self, Msg: o.Msg, Verified: true})
				continue
			}
			// Best-effort: the consensus protocol tolerates message loss
			// via timeouts, so transport errors are not fatal.
			_ = n.tr.Send(o.To, o.Msg)
		case engine.Broadcast:
			for i := 0; i < n.opts.N; i++ {
				to := types.ReplicaID(i)
				if to == self {
					continue
				}
				_ = n.tr.Send(to, o.Msg)
			}
			if f, ok := n.tr.(Feeder); ok {
				f.FeedLocal(o.Msg)
			}
			if o.SelfDeliver {
				n.enqueueLoopback(Inbound{From: self, Msg: o.Msg, Verified: true})
			}
		case engine.SetTimer:
			id := o.ID
			time.AfterFunc(o.Delay, func() {
				select {
				case n.timerCh <- id:
				case <-n.stopping:
				}
			})
		case engine.Commit:
			if n.opts.OnCommit != nil {
				n.opts.OnCommit(o.Block)
			}
		case engine.Strength:
			if n.opts.OnStrength != nil {
				n.opts.OnStrength(o.Block, o.X)
			}
		}
	}
}

func (n *Node) enqueueLoopback(in Inbound) {
	// The loopback buffer is drained by the same goroutine that fills it,
	// so a full buffer must not deadlock: fall back to a goroutine handoff.
	select {
	case n.loopback <- in:
	default:
		go func() {
			select {
			case n.loopback <- in:
			case <-n.stopping:
			}
		}()
	}
}

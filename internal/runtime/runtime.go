// Package runtime hosts a consensus engine (internal/engine) on real
// infrastructure: goroutines, wall-clock timers, and a pluggable Transport
// (in-process channels via LocalNetwork, or TCP via internal/tcpnet). The
// engine code is identical to what runs under the simulator; only the event
// loop differs.
package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/types"
)

// Inbound is one received message.
type Inbound struct {
	From types.ReplicaID
	Msg  types.Message
}

// Transport moves messages between replicas.
type Transport interface {
	// Send transmits msg to one replica. Implementations must be safe for
	// use from the node's event loop goroutine.
	Send(to types.ReplicaID, msg types.Message) error
	// Recv returns the channel of inbound messages.
	Recv() <-chan Inbound
	// Close releases resources; Recv's channel may close afterwards.
	Close() error
}

// Durable is the durability resource a node owns while running —
// typically a *core.Journal wrapping the engine's write-ahead log. Close
// must flush (with fsync) and release it.
type Durable interface {
	Close() error
}

// Options configures a Node.
type Options struct {
	// N is the number of replicas (for broadcast fan-out).
	N int
	// OnCommit, if non-nil, observes regular commits.
	OnCommit func(b *types.Block)
	// OnStrength, if non-nil, observes strong-commit level updates.
	OnStrength func(b *types.Block, x int)
	// Journal, if non-nil, is flushed and closed when Run returns — the
	// engine appends to it synchronously from the event loop, so closing
	// after the loop exits guarantees no buffered appends are dropped on a
	// graceful shutdown (context cancellation included).
	Journal Durable
}

// Node runs one engine on a transport until its context is cancelled.
type Node struct {
	eng   engine.Engine
	tr    Transport
	opts  Options
	start time.Time

	timerCh  chan int
	loopback chan Inbound
	stopping chan struct{}
}

// NewNode wires an engine to a transport.
func NewNode(eng engine.Engine, tr Transport, opts Options) (*Node, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("runtime: N must be positive")
	}
	return &Node{
		eng:      eng,
		tr:       tr,
		opts:     opts,
		timerCh:  make(chan int, 64),
		loopback: make(chan Inbound, 64),
		stopping: make(chan struct{}),
	}, nil
}

// Run executes the node's event loop until ctx is cancelled. It owns the
// engine: no other goroutine may touch it while Run is active. If a journal
// is configured it is flushed and closed on the way out, so a graceful stop
// (signal, -run timeout) never drops buffered WAL appends.
func (n *Node) Run(ctx context.Context) (err error) {
	n.start = time.Now()
	defer close(n.stopping)
	if n.opts.Journal != nil {
		defer func() {
			// The loop has exited; the engine is quiescent, so this flush
			// observes every append. Surface a close failure unless the run
			// is already reporting an error.
			if cerr := n.opts.Journal.Close(); cerr != nil && (err == nil || err == ctx.Err()) {
				err = cerr
			}
		}()
	}
	n.apply(n.eng.Init(n.now()))
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case in, ok := <-n.tr.Recv():
			if !ok {
				return nil
			}
			n.apply(n.eng.OnMessage(n.now(), in.From, in.Msg))
		case in := <-n.loopback:
			n.apply(n.eng.OnMessage(n.now(), in.From, in.Msg))
		case id := <-n.timerCh:
			n.apply(n.eng.OnTimer(n.now(), id))
		}
	}
}

func (n *Node) now() time.Duration { return time.Since(n.start) }

func (n *Node) apply(outs []engine.Output) {
	self := n.eng.ID()
	for _, out := range outs {
		switch o := out.(type) {
		case engine.Send:
			if o.To == self {
				n.enqueueLoopback(Inbound{From: self, Msg: o.Msg})
				continue
			}
			// Best-effort: the consensus protocol tolerates message loss
			// via timeouts, so transport errors are not fatal.
			_ = n.tr.Send(o.To, o.Msg)
		case engine.Broadcast:
			for i := 0; i < n.opts.N; i++ {
				to := types.ReplicaID(i)
				if to == self {
					continue
				}
				_ = n.tr.Send(to, o.Msg)
			}
			if o.SelfDeliver {
				n.enqueueLoopback(Inbound{From: self, Msg: o.Msg})
			}
		case engine.SetTimer:
			id := o.ID
			time.AfterFunc(o.Delay, func() {
				select {
				case n.timerCh <- id:
				case <-n.stopping:
				}
			})
		case engine.Commit:
			if n.opts.OnCommit != nil {
				n.opts.OnCommit(o.Block)
			}
		case engine.Strength:
			if n.opts.OnStrength != nil {
				n.opts.OnStrength(o.Block, o.X)
			}
		}
	}
}

func (n *Node) enqueueLoopback(in Inbound) {
	// The loopback buffer is drained by the same goroutine that fills it,
	// so a full buffer must not deadlock: fall back to a goroutine handoff.
	select {
	case n.loopback <- in:
	default:
		go func() {
			select {
			case n.loopback <- in:
			case <-n.stopping:
			}
		}()
	}
}

package runtime

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// LocalNetwork connects n in-process nodes through buffered channels — the
// transport used by the quickstart example and the runtime tests.
type LocalNetwork struct {
	inboxes []chan Inbound

	mu     sync.Mutex
	closed bool
}

// NewLocalNetwork creates a network with n endpoints.
func NewLocalNetwork(n int) *LocalNetwork {
	net := &LocalNetwork{inboxes: make([]chan Inbound, n)}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan Inbound, 1024)
	}
	return net
}

// Endpoint returns the transport for replica id.
func (l *LocalNetwork) Endpoint(id types.ReplicaID) Transport {
	return &localTransport{net: l, id: id}
}

// Close shuts down all endpoints.
func (l *LocalNetwork) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, ch := range l.inboxes {
		close(ch)
	}
}

func (l *LocalNetwork) send(from, to types.ReplicaID, msg types.Message) error {
	if int(to) >= len(l.inboxes) {
		return fmt.Errorf("localnet: no endpoint %v", to)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("localnet: closed")
	}
	select {
	case l.inboxes[to] <- Inbound{From: from, Msg: msg}:
		return nil
	default:
		// Receiver overloaded: drop, like a saturated network link. The
		// protocol recovers via timeouts.
		return fmt.Errorf("localnet: inbox %v full", to)
	}
}

type localTransport struct {
	net *LocalNetwork
	id  types.ReplicaID
}

func (t *localTransport) Send(to types.ReplicaID, msg types.Message) error {
	return t.net.send(t.id, to, msg)
}

func (t *localTransport) Recv() <-chan Inbound { return t.net.inboxes[t.id] }

func (t *localTransport) Close() error { return nil }

package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
)

func testBlock(round types.Round, height types.Height, proposer types.ReplicaID) *types.Block {
	return types.NewBlock(types.BlockID{}, nil, round, height, proposer, int64(round)*1e6, types.Payload{}, nil)
}

// TestHistogramBucketBoundaries pins the Prometheus "le" semantics: a sample
// exactly on a bucket's upper bound counts into that bucket, one just above
// falls into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	h.Observe(1)         // le="1"
	h.Observe(1.0000001) // le="2"
	h.Observe(2)         // le="2"
	h.Observe(5)         // le="5"
	h.Observe(7)         // +Inf
	s := h.Snapshot()
	want := []int64{1, 3, 4, 5} // cumulative per bucket incl +Inf
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (snapshot %+v)", i, s.Cumulative[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-(1+1.0000001+2+5+7)) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// TestHistogramQuantileVsSeries cross-checks the histogram's interpolated
// quantiles against the exact nearest-rank percentiles of metrics.Series on
// the same samples: the estimates must agree within the width of the bucket
// holding the exact value.
func TestHistogramQuantileVsSeries(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	var s metrics.Series
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~0.6ms..25s, the histogram's designed range.
		v := math.Exp(rng.Float64()*math.Log(40000)) * 0.0006
		h.Observe(v)
		s.Add(v)
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		est := h.Quantile(q)
		exact := s.Percentile(q * 100)
		// Tolerance: the bucket holding the exact value.
		lo, hi := 0.0, math.Inf(1)
		for i, b := range LatencyBuckets {
			if exact <= b {
				hi = b
				if i > 0 {
					lo = LatencyBuckets[i-1]
				}
				break
			}
		}
		if est < lo || est > hi {
			t.Fatalf("q=%v: histogram %v outside exact value's bucket [%v, %v] (exact %v)", q, est, lo, hi, exact)
		}
	}
	if !math.IsNaN(newHistogram(LatencyBuckets).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

// TestRegistryScrapeRace hammers every metric kind from writer goroutines
// while scraping concurrently; run under -race this pins the lock-free
// update / locked exposition split.
func TestRegistryScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_counter_total", "c")
	g := r.Gauge("race_gauge", "g")
	h := r.Histogram("race_hist_seconds", "h", LatencyBuckets, Label{Key: "level", Value: "1"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				g.SetMax(rng.Int63n(1000))
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("empty scrape")
		}
	}
	close(stop)
	wg.Wait()
}

// TestPrometheusExposition checks the text format end to end: HELP/TYPE
// headers, labeled children, cumulative monotone buckets, and the +Inf
// bucket equal to _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sft_frames_total", "Frames.", Label{Key: "peer", Value: "3"}, Label{Key: "dir", Value: "in"})
	c.Add(7)
	g := r.Gauge("sft_round", "Round.")
	g.Set(42)
	h := r.Histogram("sft_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sft_frames_total Frames.\n",
		"# TYPE sft_frames_total counter\n",
		`sft_frames_total{peer="3",dir="in"} 7` + "\n",
		"# TYPE sft_round gauge\n",
		"sft_round 42\n",
		"# TYPE sft_lat_seconds histogram\n",
		`sft_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`sft_lat_seconds_bucket{le="1"} 2` + "\n",
		`sft_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"sft_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Kind conflicts must fail loudly at registration, not corrupt scrapes.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("re-registering a counter as a gauge did not panic")
			}
		}()
		r.Gauge("sft_frames_total", "wrong kind")
	}()
}

// TestTracerEviction pins the ring semantics: capacity bounds residency,
// eviction recycles the oldest slot, Recent returns newest first, and
// CommittedAt forgets evicted blocks.
func TestTracerEviction(t *testing.T) {
	tr := NewTracer(4)
	blocks := make([]*types.Block, 6)
	for i := range blocks {
		blocks[i] = testBlock(types.Round(i+1), types.Height(i+1), 0)
		tr.Observe(blocks[i], StageProposed, time.Duration(i)*time.Millisecond)
		tr.Observe(blocks[i], StageCommitted, time.Duration(i)*time.Millisecond+time.Microsecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	if _, ok := tr.CommittedAt(blocks[0].ID()); ok {
		t.Fatal("evicted block still resident")
	}
	if at, ok := tr.CommittedAt(blocks[5].ID()); !ok || at != 5*time.Millisecond+time.Microsecond {
		t.Fatalf("newest block commit time = %v, %v", at, ok)
	}
	recent := tr.Recent(2)
	if len(recent) != 2 || recent[0].ID != blocks[5].ID() || recent[1].ID != blocks[4].ID() {
		t.Fatalf("Recent order wrong: %v", recent)
	}
	if !recent[0].Has(StageProposed) || !recent[0].Has(StageCommitted) {
		t.Fatalf("stages lost: %v", recent[0].Stages)
	}
}

// TestObsNilSafety calls every hook on a nil sink — the contract that lets
// instrumented code skip configuration branches.
func TestObsNilSafety(t *testing.T) {
	var o *Obs
	b := testBlock(1, 1, 0)
	o.OnRoundEnter(1, 0, true)
	o.OnLocalTimeout(1)
	o.OnProposed(b, 0)
	o.OnBlockSeen(b, 0)
	o.OnVoted(b, 0)
	o.OnQCFormed(b, 0)
	o.OnQCObserved(b, 0)
	o.OnCommit(b, 0)
	o.OnStrength(b, 1, 0)
	o.ObserveVerifyBatch(time.Millisecond)
	o.ObserveWALFlush(time.Millisecond, 100, true)
	o.OnFrameIn(0, 10)
	o.OnFrameOut(0, 10)
	o.OnPrevalidate(true)
	o.PrevalidateQueueAdd(1)
	if o.Registry() != nil || o.Tracer() != nil || o.Commits() != 0 {
		t.Fatal("nil sink accessors must return zero values")
	}
}

// TestObsStrengthDelay pins the commit→x-strong clamp: a rise reported
// before the commit (DiemBFT's in-event ordering) produces a zero delay once
// the commit lands, and rises after the commit measure the real gap.
func TestObsStrengthDelay(t *testing.T) {
	o := New(Options{N: 4, F: 1})
	b := testBlock(3, 3, 1)
	// Rise arrives first (same engine event), commit after.
	o.OnStrength(b, 1, 100*time.Millisecond)
	o.OnCommit(b, 100*time.Millisecond)
	o.OnStrength(b, 2, 350*time.Millisecond)
	if got := o.commitToLevel[2].Count(); got != 1 {
		t.Fatalf("level-2 delay samples = %d, want 1", got)
	}
	if got := o.commitToLevel[2].Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("level-2 delay = %v, want 0.25", got)
	}
	// The pre-commit rise recorded no (negative) delay sample.
	if got := o.commitToLevel[1].Count(); got != 0 {
		t.Fatalf("level-1 delay samples = %d, want 0 (rise preceded commit)", got)
	}
	if o.Commits() != 1 || o.rises.Value() != 2 {
		t.Fatalf("commits %d rises %d", o.Commits(), o.rises.Value())
	}
}

// TestHotPathAllocs guards the instrumentation cost on the consensus hot
// path: steady-state hooks (resident trace slot, pre-registered handles)
// must not allocate.
func TestHotPathAllocs(t *testing.T) {
	o := New(Options{N: 4, F: 1})
	b := testBlock(2, 2, 1)
	o.OnProposed(b, time.Millisecond) // make the trace slot resident, cache the ID
	cases := []struct {
		name string
		fn   func()
	}{
		{"OnVoted", func() { o.OnVoted(b, 2*time.Millisecond) }},
		{"OnQCObserved", func() { o.OnQCObserved(b, 3*time.Millisecond) }},
		{"OnCommit", func() { o.OnCommit(b, 4*time.Millisecond) }},
		{"OnRoundEnter", func() { o.OnRoundEnter(5, 5*time.Millisecond, false) }},
		{"OnFrameIn", func() { o.OnFrameIn(2, 128) }},
		{"OnPrevalidate", func() { o.OnPrevalidate(false) }},
		{"ObserveWALFlush", func() { o.ObserveWALFlush(time.Millisecond, 512, true) }},
		{"HistogramObserve", func() { o.commitLatency.Observe(0.01) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg > 0 {
			t.Errorf("%s allocates %.2f per call on the hot path", tc.name, avg)
		}
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)

func testHandler(healthy *bool) (http.Handler, *Obs) {
	o := New(Options{N: 4, F: 1, TraceCapacity: 8})
	b := testBlock(1, 1, 2)
	o.OnProposed(b, 10*time.Millisecond)
	o.OnVoted(b, 11*time.Millisecond)
	o.OnQCObserved(b, 15*time.Millisecond)
	o.OnCommit(b, 20*time.Millisecond)
	o.OnStrength(b, 2, 30*time.Millisecond)
	h := NewHandler(ServerConfig{
		Obs:     o,
		Healthy: func() bool { return *healthy },
		Health:  func() any { return map[string]int{"diversity": 4} },
	})
	return h, o
}

func TestServerMetrics(t *testing.T) {
	healthy := true
	h, _ := testHandler(&healthy)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short exposition: %d lines", len(lines))
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, name := range []string{
		"sft_commits_total 1", "sft_votes_sent_total 1",
		`sft_strength_latency_seconds_count{level="2"} 1`,
		`sft_commit_to_strength_seconds_count{level="2"} 1`,
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("exposition missing %q", name)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	healthy := true
	h, _ := testHandler(&healthy)
	srv := httptest.NewServer(h)
	defer srv.Close()

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("/healthz status %d, want %d", resp.StatusCode, wantCode)
		}
		var body struct {
			Status string         `json:"status"`
			Health map[string]int `json:"health"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Status != wantStatus {
			t.Fatalf("status %q, want %q", body.Status, wantStatus)
		}
		if body.Health["diversity"] != 4 {
			t.Fatalf("health payload missing: %+v", body)
		}
	}
	check(http.StatusOK, "ok")
	healthy = false
	check(http.StatusServiceUnavailable, "unavailable")
}

func TestServerTracez(t *testing.T) {
	healthy := true
	h, _ := testHandler(&healthy)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/tracez?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez status %d", resp.StatusCode)
	}
	var body struct {
		Traces []struct {
			ID        string  `json:"id"`
			Height    uint64  `json:"height"`
			Committed float64 `json:"committed_s"`
			Strengths []struct {
				X int `json:"x"`
			} `json:"strengths"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(body.Traces))
	}
	tr := body.Traces[0]
	if tr.Height != 1 || tr.ID == "" || tr.Committed != 0.02 {
		t.Fatalf("trace %+v", tr)
	}
	if len(tr.Strengths) != 1 || tr.Strengths[0].X != 2 {
		t.Fatalf("strength rises %+v", tr.Strengths)
	}
}

func TestServerPprofAndDisabled(t *testing.T) {
	healthy := true
	h, _ := testHandler(&healthy)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	// Without a sink, the data endpoints 404 but health still serves.
	none := httptest.NewServer(NewHandler(ServerConfig{}))
	defer none.Close()
	for path, want := range map[string]int{
		"/metrics": http.StatusNotFound,
		"/tracez":  http.StatusNotFound,
		"/healthz": http.StatusOK,
	} {
		resp, err := http.Get(none.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig wires the ops HTTP handler.
type ServerConfig struct {
	// Obs backs /metrics and /tracez. Required.
	Obs *Obs
	// Healthy gates /healthz; nil means always healthy.
	Healthy func() bool
	// Health supplies the /healthz JSON payload (e.g. a health.Report).
	// Optional.
	Health func() any
	// TraceLimit bounds /tracez output (default 64; ?n= overrides up to
	// the tracer capacity).
	TraceLimit int
}

// traceView is the JSON shape of one block trace on /tracez.
type traceView struct {
	ID        string  `json:"id"`
	Height    uint64  `json:"height"`
	Round     uint64  `json:"round"`
	Proposer  uint32  `json:"proposer"`
	Proposed  float64 `json:"proposed_s,omitempty"`
	Voted     float64 `json:"voted_s,omitempty"`
	QCFormed  float64 `json:"qc_s,omitempty"`
	Committed float64 `json:"committed_s,omitempty"`
	Strengths []struct {
		X  int     `json:"x"`
		At float64 `json:"at_s"`
	} `json:"strengths,omitempty"`
}

func viewOf(t BlockTrace) traceView {
	v := traceView{
		ID:       t.ID.String(),
		Height:   uint64(t.Height),
		Round:    uint64(t.Round),
		Proposer: uint32(t.Proposer),
	}
	sec := func(d time.Duration) float64 { return d.Seconds() }
	if t.Has(StageProposed) {
		v.Proposed = sec(t.Proposed)
	}
	if t.Has(StageVoted) {
		v.Voted = sec(t.Voted)
	}
	if t.Has(StageQC) {
		v.QCFormed = sec(t.QCFormed)
	}
	if t.Has(StageCommitted) {
		v.Committed = sec(t.Committed)
	}
	for _, r := range t.Strengths {
		v.Strengths = append(v.Strengths, struct {
			X  int     `json:"x"`
			At float64 `json:"at_s"`
		}{r.X, sec(r.At)})
	}
	return v
}

// NewHandler returns the ops mux: /metrics (Prometheus text), /healthz
// (JSON, 200/503), /tracez (recent block traces as JSON), /debug/pprof.
func NewHandler(c ServerConfig) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if c.Obs == nil {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.Obs.Registry().WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		healthy := c.Healthy == nil || c.Healthy()
		body := map[string]any{"status": "ok"}
		code := http.StatusOK
		if !healthy {
			body["status"] = "unavailable"
			code = http.StatusServiceUnavailable
		}
		if c.Health != nil {
			if h := c.Health(); h != nil {
				body["health"] = h
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		if c.Obs == nil {
			http.Error(w, "observability disabled", http.StatusNotFound)
			return
		}
		limit := c.TraceLimit
		if limit <= 0 {
			limit = 64
		}
		if s := r.URL.Query().Get("n"); s != "" {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
				limit = n
			}
		}
		traces := c.Obs.Tracer().Recent(limit)
		views := make([]traceView, len(traces))
		for i, t := range traces {
			views[i] = viewOf(t)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"traces": views})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

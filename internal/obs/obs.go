package obs

import (
	"strconv"
	"time"

	"repro/internal/types"
)

// Options configures an Obs sink.
type Options struct {
	// N is the committee size; per-peer network metrics are pre-registered
	// for replica IDs in [0, N).
	N int
	// F is the fault threshold; per-level strength histograms are
	// pre-registered for levels in [1, 2F].
	F int
	// TraceCapacity bounds the block-lifecycle ring (default 256).
	TraceCapacity int
}

// Obs is the observability sink. Every layer of the stack reports into the
// pre-resolved handles below; a nil *Obs is a valid sink whose hooks are
// no-ops, so instrumented code never branches on configuration.
type Obs struct {
	reg    *Registry
	tracer *Tracer
	n, f   int

	rounds        *Counter
	timeoutRounds *Counter
	localTimeouts *Counter
	curRound      *Gauge

	proposals   *Counter
	votes       *Counter
	qcsFormed   *Counter
	qcsObserved *Counter

	commits         *Counter
	committedHeight *Gauge
	rises           *Counter
	maxStrength     *Gauge
	commitLatency   *Histogram
	levelLatency    []*Histogram // index x in [0, 2f]; 0 unused
	commitToLevel   []*Histogram // commit -> x-strong delay, same indexing

	verifyBatch *Histogram

	walFlushes *Counter
	walBytes   *Counter
	walFsync   *Histogram

	framesIn, framesOut []*Counter // indexed by peer ReplicaID
	bytesIn, bytesOut   []*Counter

	prevalChecked *Counter
	prevalDropped *Counter
	prevalQueue   *Gauge

	// Execution layer (execute-before-vote): blocks run through the state
	// machine, and AppHash disagreements — a vote or justify certificate
	// certifying a state root the local execution did not produce, the
	// genuine fork signal the paper's safety argument turns into a refusal
	// to vote.
	appExecuted   *Counter
	appMismatches *Counter

	// Pacemaker hardening: rejected timeouts and round entries, by reason.
	// Children are pre-registered per reason so hot-path (and prevalidation
	// reader-goroutine) increments never touch the registry lock.
	rejTimeouts map[string]*Counter
	rejEntries  map[string]*Counter

	// Access tier: strength-subscription gateway fan-out. Subscriber counts
	// and evictions make the bounded-queue policy observable; the
	// ingested/rejected pair separates a healthy proof feed from one being
	// fed garbage.
	gwSubscribers *Gauge
	gwEvents      *Counter
	gwEvictions   *Counter
	gwIngested    *Counter
	gwRejected    *Counter
	gwFramesOut   *Counter
	gwBytesOut    *Counter
}

// Rejection reasons for the pacemaker-hardening counter families. The sets
// are closed so every child pre-registers; an unknown reason lands on
// ReasonOther rather than allocating a new child at runtime.
const (
	ReasonStale        = "stale"
	ReasonFutureWindow = "future-window"
	ReasonPeerCap      = "peer-cap"
	ReasonMismatch     = "high-round-mismatch"
	ReasonNoJustify    = "no-justify"
	ReasonBadJustify   = "bad-justify"
	ReasonBadSignature = "bad-signature"
	ReasonOther        = "other"
)

var timeoutReasons = []string{ReasonStale, ReasonFutureWindow, ReasonPeerCap, ReasonMismatch, ReasonBadSignature, ReasonOther}
var entryReasons = []string{ReasonStale, ReasonFutureWindow, ReasonNoJustify, ReasonBadJustify, ReasonBadSignature, ReasonOther}

// New builds an Obs sink with every metric family pre-registered so hot-path
// hooks never touch the registry lock.
func New(o Options) *Obs {
	if o.N <= 0 {
		o.N = 1
	}
	if o.F < 0 {
		o.F = 0
	}
	r := NewRegistry()
	s := &Obs{
		reg:    r,
		tracer: NewTracer(o.TraceCapacity),
		n:      o.N,
		f:      o.F,

		rounds:        r.Counter("sft_rounds_total", "Rounds entered by the local engine."),
		timeoutRounds: r.Counter("sft_timeout_round_advances_total", "Round advances driven by a timeout certificate rather than a QC."),
		localTimeouts: r.Counter("sft_round_timeouts_total", "Local pacemaker round timeouts fired."),
		curRound:      r.Gauge("sft_round", "Current engine round."),

		proposals:   r.Counter("sft_proposals_total", "Blocks proposed by this replica as leader."),
		votes:       r.Counter("sft_votes_sent_total", "Votes this replica sent."),
		qcsFormed:   r.Counter("sft_qcs_formed_total", "Quorum certificates assembled by this replica from collected votes."),
		qcsObserved: r.Counter("sft_qcs_observed_total", "Quorum certificates registered locally (formed or received)."),

		commits:         r.Counter("sft_commits_total", "Blocks committed."),
		committedHeight: r.Gauge("sft_committed_height", "Height of the latest committed block."),
		rises:           r.Counter("sft_strength_rises_total", "Commit-strength increase events reported by the strength tracker."),
		maxStrength:     r.Gauge("sft_max_strength", "Highest commit strength observed for any block."),
		commitLatency:   r.Histogram("sft_commit_latency_seconds", "Block creation to local commit, engine clock.", LatencyBuckets),

		verifyBatch: r.Histogram("sft_verify_batch_seconds", "Wall-clock latency of batch/aggregate QC signature verification.", LatencyBuckets),

		walFlushes: r.Counter("sft_wal_flushes_total", "WAL batch flushes."),
		walBytes:   r.Counter("sft_wal_flush_bytes_total", "Bytes written by WAL flushes."),
		walFsync:   r.Histogram("sft_wal_fsync_seconds", "Wall-clock latency of WAL flush+fsync.", LatencyBuckets),

		prevalChecked: r.Counter("sft_prevalidate_checked_total", "Messages run through signature prevalidation."),
		prevalDropped: r.Counter("sft_prevalidate_dropped_total", "Messages dropped by signature prevalidation."),
		prevalQueue:   r.Gauge("sft_prevalidate_queue_depth", "Messages queued awaiting prevalidation workers."),

		appExecuted:   r.Counter("sft_app_blocks_executed_total", "Blocks executed through the application state machine (execute-before-vote)."),
		appMismatches: r.Counter("sft_app_apphash_mismatches_total", "AppHash disagreements detected (vote or certificate state root differs from local execution)."),

		gwSubscribers: r.Gauge("sft_gateway_subscribers", "Strength-subscription connections currently attached to the gateway."),
		gwEvents:      r.Counter("sft_gateway_events_total", "Proof-carrying strength-rise events fanned out (one per subscriber delivery)."),
		gwEvictions:   r.Counter("sft_gateway_evictions_total", "Subscribers evicted because their bounded queue overflowed (slowest-subscriber policy)."),
		gwIngested:    r.Counter("sft_gateway_certified_ingested_total", "Certified (block, QC) pairs accepted from the observer feed."),
		gwRejected:    r.Counter("sft_gateway_certified_rejected_total", "Certified pairs rejected by the gateway's own proof verification."),
		gwFramesOut:   r.Counter("sft_gateway_frames_sent_total", "Subscription protocol frames written to subscribers."),
		gwBytesOut:    r.Counter("sft_gateway_bytes_sent_total", "Subscription protocol bytes written to subscribers."),
	}

	levels := 2 * o.F
	s.levelLatency = make([]*Histogram, levels+1)
	s.commitToLevel = make([]*Histogram, levels+1)
	for x := 1; x <= levels; x++ {
		lv := Label{Key: "level", Value: strconv.Itoa(x)}
		s.levelLatency[x] = r.Histogram("sft_strength_latency_seconds",
			"Block creation to x-strong commit, engine clock, by strength level.", LatencyBuckets, lv)
		s.commitToLevel[x] = r.Histogram("sft_commit_to_strength_seconds",
			"Local commit to x-strong commit, engine clock, by strength level.", LatencyBuckets, lv)
	}

	s.rejTimeouts = make(map[string]*Counter, len(timeoutReasons))
	for _, reason := range timeoutReasons {
		s.rejTimeouts[reason] = r.Counter("sft_pacemaker_rejected_timeouts_total",
			"Timeout messages rejected by the pacemaker's validation, by reason.",
			Label{Key: "reason", Value: reason})
	}
	s.rejEntries = make(map[string]*Counter, len(entryReasons))
	for _, reason := range entryReasons {
		s.rejEntries[reason] = r.Counter("sft_round_entry_rejected_total",
			"Round-entry announcements rejected as unjustified, by reason.",
			Label{Key: "reason", Value: reason})
	}

	s.framesIn = make([]*Counter, o.N)
	s.framesOut = make([]*Counter, o.N)
	s.bytesIn = make([]*Counter, o.N)
	s.bytesOut = make([]*Counter, o.N)
	for p := 0; p < o.N; p++ {
		peer := Label{Key: "peer", Value: strconv.Itoa(p)}
		in := Label{Key: "dir", Value: "in"}
		out := Label{Key: "dir", Value: "out"}
		s.framesIn[p] = r.Counter("sft_net_frames_total", "Transport frames exchanged, by peer and direction.", peer, in)
		s.framesOut[p] = r.Counter("sft_net_frames_total", "Transport frames exchanged, by peer and direction.", peer, out)
		s.bytesIn[p] = r.Counter("sft_net_bytes_total", "Transport bytes exchanged, by peer and direction.", peer, in)
		s.bytesOut[p] = r.Counter("sft_net_bytes_total", "Transport bytes exchanged, by peer and direction.", peer, out)
	}
	return s
}

// Registry exposes the metric registry (for /metrics and tests).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer exposes the block-lifecycle tracer (for /tracez and tests).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// --- engine hooks (engine clock; single event-loop goroutine) -------------

// OnRoundEnter records the engine entering round r at engine time now.
// viaTimeout marks advances driven by a timeout certificate.
func (o *Obs) OnRoundEnter(r types.Round, now time.Duration, viaTimeout bool) {
	if o == nil {
		return
	}
	o.rounds.Inc()
	o.curRound.SetMax(int64(r))
	if viaTimeout {
		o.timeoutRounds.Inc()
	}
}

// OnLocalTimeout records a local pacemaker round timeout.
func (o *Obs) OnLocalTimeout(r types.Round) {
	if o == nil {
		return
	}
	o.localTimeouts.Inc()
}

// OnProposed records that this replica proposed block b as leader.
func (o *Obs) OnProposed(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.proposals.Inc()
	o.tracer.Observe(b, StageProposed, now)
}

// OnBlockSeen records that a (verified) proposal for b arrived.
func (o *Obs) OnBlockSeen(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.tracer.Observe(b, StageProposed, now)
}

// OnVoted records that this replica voted for block b.
func (o *Obs) OnVoted(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.votes.Inc()
	o.tracer.Observe(b, StageVoted, now)
}

// OnQCFormed records that this replica assembled a QC for block b from
// collected votes (leader-side).
func (o *Obs) OnQCFormed(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.qcsFormed.Inc()
	o.tracer.Observe(b, StageQC, now)
}

// OnQCObserved records that a QC for block b was registered locally,
// whether formed here or received from a peer.
func (o *Obs) OnQCObserved(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.qcsObserved.Inc()
	o.tracer.Observe(b, StageQC, now)
}

// OnCommit records the local commit of block b at engine time now.
func (o *Obs) OnCommit(b *types.Block, now time.Duration) {
	if o == nil {
		return
	}
	o.commits.Inc()
	o.committedHeight.SetMax(int64(b.Height))
	if lat := now - time.Duration(b.Timestamp); lat >= 0 {
		o.commitLatency.ObserveDuration(lat)
	}
	o.tracer.Observe(b, StageCommitted, now)
}

// OnStrength records block b reaching commit strength x at engine time now.
// Within one engine event the strength tracker can report rises before the
// commit output is emitted; the commit→x-strong delay clamps at zero.
func (o *Obs) OnStrength(b *types.Block, x int, now time.Duration) {
	if o == nil {
		return
	}
	o.rises.Inc()
	o.maxStrength.SetMax(int64(x))
	if x >= 1 && x < len(o.levelLatency) {
		if lat := now - time.Duration(b.Timestamp); lat >= 0 {
			o.levelLatency[x].ObserveDuration(lat)
		}
		if at, ok := o.tracer.CommittedAt(b.ID()); ok {
			d := now - at
			if d < 0 {
				d = 0
			}
			o.commitToLevel[x].ObserveDuration(d)
		}
	}
	o.tracer.Rise(b, x, now)
}

// OnAppExecuted records one block run through the application state machine.
func (o *Obs) OnAppExecuted() {
	if o == nil {
		return
	}
	o.appExecuted.Inc()
}

// OnAppHashMismatch records an AppHash disagreement: a vote or justify
// certificate certified a state root the local execution did not produce.
func (o *Obs) OnAppHashMismatch() {
	if o == nil {
		return
	}
	o.appMismatches.Inc()
}

// --- operational hooks (wall clock; may run off the event loop) -----------

// ObserveVerifyBatch records the wall-clock latency of one batch/aggregate
// QC signature verification.
func (o *Obs) ObserveVerifyBatch(d time.Duration) {
	if o == nil {
		return
	}
	o.verifyBatch.ObserveDuration(d)
}

// ObserveWALFlush records one WAL flush: wall-clock duration, bytes written,
// and whether the flush fsynced.
func (o *Obs) ObserveWALFlush(d time.Duration, bytes int, synced bool) {
	if o == nil {
		return
	}
	o.walFlushes.Inc()
	o.walBytes.Add(int64(bytes))
	if synced {
		o.walFsync.ObserveDuration(d)
	}
}

// OnFrameIn records one inbound transport frame from peer.
func (o *Obs) OnFrameIn(peer types.ReplicaID, bytes int64) {
	if o == nil || int(peer) >= len(o.framesIn) {
		return
	}
	o.framesIn[peer].Inc()
	o.bytesIn[peer].Add(bytes)
}

// OnFrameOut records one outbound transport frame to peer.
func (o *Obs) OnFrameOut(peer types.ReplicaID, bytes int64) {
	if o == nil || int(peer) >= len(o.framesOut) {
		return
	}
	o.framesOut[peer].Inc()
	o.bytesOut[peer].Add(bytes)
}

// OnPrevalidate records one message run through signature prevalidation.
func (o *Obs) OnPrevalidate(dropped bool) {
	if o == nil {
		return
	}
	o.prevalChecked.Inc()
	if dropped {
		o.prevalDropped.Inc()
	}
}

// PrevalidateQueueAdd moves the prevalidation queue-depth gauge by delta.
func (o *Obs) PrevalidateQueueAdd(delta int64) {
	if o == nil {
		return
	}
	o.prevalQueue.Add(delta)
}

// OnTimeoutRejected records a timeout message the pacemaker validation
// rejected (stale, beyond the future window, per-peer cap, inconsistent
// high-round claim, bad signature). Safe from prevalidation goroutines.
func (o *Obs) OnTimeoutRejected(reason string) {
	if o == nil {
		return
	}
	c, ok := o.rejTimeouts[reason]
	if !ok {
		c = o.rejTimeouts[ReasonOther]
	}
	c.Inc()
}

// OnRoundEntryRejected records a round-entry announcement rejected as
// unjustified. Safe from prevalidation goroutines.
func (o *Obs) OnRoundEntryRejected(reason string) {
	if o == nil {
		return
	}
	c, ok := o.rejEntries[reason]
	if !ok {
		c = o.rejEntries[ReasonOther]
	}
	c.Inc()
}

// --- snapshot accessors (for sft.MetricsSnapshot parity) ------------------

// CurrentRound returns the highest round entered.
func (o *Obs) CurrentRound() int64 {
	if o == nil {
		return 0
	}
	return o.curRound.Value()
}

// LocalTimeouts returns the number of local round timeouts fired.
func (o *Obs) LocalTimeouts() int64 {
	if o == nil {
		return 0
	}
	return o.localTimeouts.Value()
}

// PrevalidateDrops returns the number of messages dropped by prevalidation.
func (o *Obs) PrevalidateDrops() int64 {
	if o == nil {
		return 0
	}
	return o.prevalDropped.Value()
}

// WALFlushes returns the number of WAL flushes observed.
func (o *Obs) WALFlushes() int64 {
	if o == nil {
		return 0
	}
	return o.walFlushes.Value()
}

// Commits returns the number of commits observed.
func (o *Obs) Commits() int64 {
	if o == nil {
		return 0
	}
	return o.commits.Value()
}

// AppHashMismatches returns the number of AppHash disagreements detected.
func (o *Obs) AppHashMismatches() int64 {
	if o == nil {
		return 0
	}
	return o.appMismatches.Value()
}

// RejectedTimeouts returns the total timeout messages rejected across all
// reasons.
func (o *Obs) RejectedTimeouts() int64 {
	if o == nil {
		return 0
	}
	var total int64
	for _, c := range o.rejTimeouts {
		total += c.Value()
	}
	return total
}

// RoundEntryRejections returns the total round entries rejected across all
// reasons.
func (o *Obs) RoundEntryRejections() int64 {
	if o == nil {
		return 0
	}
	var total int64
	for _, c := range o.rejEntries {
		total += c.Value()
	}
	return total
}

// --- gateway hooks (access tier; called from gateway goroutines) ----------

// OnGatewaySubscribed moves the live-subscriber gauge by delta (+1 attach,
// -1 detach).
func (o *Obs) OnGatewaySubscribed(delta int64) {
	if o == nil {
		return
	}
	o.gwSubscribers.Add(delta)
}

// OnGatewayEvicted records one slowest-subscriber eviction.
func (o *Obs) OnGatewayEvicted() {
	if o == nil {
		return
	}
	o.gwEvictions.Inc()
}

// OnGatewayIngest records one certified pair arriving from the observer
// feed; rejected marks pairs the gateway's own proof verification refused.
func (o *Obs) OnGatewayIngest(rejected bool) {
	if o == nil {
		return
	}
	if rejected {
		o.gwRejected.Inc()
		return
	}
	o.gwIngested.Inc()
}

// OnGatewayEvent records one strength-rise delivery queued to a subscriber.
func (o *Obs) OnGatewayEvent() {
	if o == nil {
		return
	}
	o.gwEvents.Inc()
}

// OnGatewayFrameOut records one subscription frame written to a subscriber.
func (o *Obs) OnGatewayFrameOut(bytes int64) {
	if o == nil {
		return
	}
	o.gwFramesOut.Inc()
	o.gwBytesOut.Add(bytes)
}

// GatewayEvictions returns the eviction counter (tests, smoke checks).
func (o *Obs) GatewayEvictions() int64 {
	if o == nil {
		return 0
	}
	return o.gwEvictions.Value()
}

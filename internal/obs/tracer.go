package obs

import (
	"sync"
	"time"

	"repro/internal/types"
)

// Stage is a bitmask of lifecycle stages a block has reached on this node.
type Stage uint8

// Lifecycle stages, in the order a block normally passes through them.
const (
	StageProposed Stage = 1 << iota // proposal seen (or made) for the block
	StageVoted                      // this node voted for the block
	StageQC                         // a QC for the block was formed/registered
	StageCommitted
)

// StrengthRise records one commit-strength increase for a block.
type StrengthRise struct {
	X  int           `json:"x"`
	At time.Duration `json:"at"`
}

// BlockTrace is one block's lifecycle as observed by this node. Timestamps
// are engine-clock durations (virtual under simnet, wall-anchored under the
// real runtime); a zero timestamp with the stage bit unset means the stage
// was not observed.
type BlockTrace struct {
	ID        types.BlockID
	Height    types.Height
	Round     types.Round
	Proposer  types.ReplicaID
	Stages    Stage
	Proposed  time.Duration
	Voted     time.Duration
	QCFormed  time.Duration
	Committed time.Duration
	Strengths []StrengthRise
}

// Has reports whether the trace reached stage s.
func (t *BlockTrace) Has(s Stage) bool { return t.Stages&s != 0 }

// Tracer keeps the lifecycle of the most recent blocks in a fixed-capacity
// ring. Eviction recycles slots, so steady-state tracing allocates only when
// a block collects more strength rises than any evicted predecessor did.
type Tracer struct {
	mu      sync.Mutex
	ring    []BlockTrace
	byID    map[types.BlockID]int
	next    int
	size    int
	evicted int64
}

// NewTracer returns a tracer retaining the last capacity blocks
// (default 256 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		ring: make([]BlockTrace, capacity),
		byID: make(map[types.BlockID]int, capacity),
	}
}

// slot returns the trace entry for b, allocating (and possibly evicting) as
// needed. Caller holds t.mu.
func (t *Tracer) slot(b *types.Block) *BlockTrace {
	id := b.ID()
	if i, ok := t.byID[id]; ok {
		return &t.ring[i]
	}
	i := t.next
	t.next = (t.next + 1) % len(t.ring)
	e := &t.ring[i]
	if t.size < len(t.ring) {
		t.size++
	} else {
		delete(t.byID, e.ID)
		t.evicted++
	}
	rises := e.Strengths[:0]
	*e = BlockTrace{
		ID:        id,
		Height:    b.Height,
		Round:     b.Round,
		Proposer:  b.Proposer,
		Strengths: rises,
	}
	t.byID[id] = i
	return e
}

// Observe records that block b reached stage s at engine time now.
func (t *Tracer) Observe(b *types.Block, s Stage, now time.Duration) {
	if t == nil || b == nil {
		return
	}
	t.mu.Lock()
	e := t.slot(b)
	e.Stages |= s
	switch s {
	case StageProposed:
		e.Proposed = now
	case StageVoted:
		e.Voted = now
	case StageQC:
		e.QCFormed = now
	case StageCommitted:
		e.Committed = now
	}
	t.mu.Unlock()
}

// Rise records a strength increase to x for block b at engine time now.
func (t *Tracer) Rise(b *types.Block, x int, now time.Duration) {
	if t == nil || b == nil {
		return
	}
	t.mu.Lock()
	e := t.slot(b)
	e.Strengths = append(e.Strengths, StrengthRise{X: x, At: now})
	t.mu.Unlock()
}

// CommittedAt returns the commit timestamp of block b if this node observed
// its commit and the trace is still resident.
func (t *Tracer) CommittedAt(id types.BlockID) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byID[id]
	if !ok || t.ring[i].Stages&StageCommitted == 0 {
		return 0, false
	}
	return t.ring[i].Committed, true
}

// Evicted returns how many traces have been recycled out of the ring.
func (t *Tracer) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Len returns the number of live traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Recent returns deep copies of up to max traces, newest first. max <= 0
// means all live traces.
func (t *Tracer) Recent(max int) []BlockTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.size
	if max > 0 && max < n {
		n = max
	}
	out := make([]BlockTrace, 0, n)
	for k := 0; k < n; k++ {
		i := (t.next - 1 - k + len(t.ring)*2) % len(t.ring)
		e := t.ring[i]
		e.Strengths = append([]StrengthRise(nil), e.Strengths...)
		out = append(out, e)
	}
	return out
}

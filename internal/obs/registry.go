// Package obs is the operator-grade observability subsystem: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus-text exposition, a deterministic block-lifecycle tracer, and the
// Obs sink every layer of the stack reports into.
//
// Two rules keep the determinism contract intact:
//
//  1. Hooks are pure observation. They update atomics and a ring buffer and
//     never feed anything back into an engine, so a fixed-seed simulation is
//     bit-identical with observability enabled or disabled.
//  2. Consensus-visible timestamps (block lifecycle stages, strength rises)
//     come from the engine's clock — virtual time under simnet — while
//     operational latencies that only exist off the event loop (fsync, batch
//     verify) may use the wall clock.
//
// Every hook is nil-safe on the *Obs receiver, so instrumented code calls
// unconditionally and pays a single predictable branch when observability is
// off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric child.
type Label struct {
	Key, Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta (must be >= 0 to stay monotonic; not enforced).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (CAS loop; lock-free).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets is the default bucket layout for latency histograms, in
// seconds. It spans 0.5ms..60s, which covers both simnet virtual latencies
// and real fsync/verify times.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket i
// counts samples v <= bounds[i] (Prometheus "le" semantics); one implicit
// +Inf bucket catches the rest. Observe is a bucket search plus three atomic
// ops and allocates nothing.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; NOT cumulative
	sum    atomic.Uint64  // float64 bits, updated via CAS
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) == +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank — the standard
// histogram_quantile estimate. Samples landing in the +Inf bucket clamp to
// the highest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	total := h.count.Load()
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram's state with
// cumulative bucket counts, ready for exposition.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, ascending; +Inf implied
	Cumulative []int64   // len(Bounds)+1, cumulative counts
	Sum        float64
	Count      int64
}

// Snapshot copies the histogram state. Concurrent Observe calls may tear
// between buckets and the total, which Prometheus scrapes tolerate.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
		Sum:        h.Sum(),
		Count:      h.count.Load(),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// child is one labeled instance within a family.
type child struct {
	labels  string // pre-rendered {k="v",...}, or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one metric name: help text, kind, and its labeled children.
type family struct {
	name, help string
	kind       metricKind
	mu         sync.Mutex
	children   []*child
}

// Registry holds metric families in registration order and renders them in
// Prometheus text exposition format. Registration takes a lock; observation
// on the returned handles is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) fam(name, help string, kind metricKind) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter registers (or extends) a counter family and returns the handle for
// the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, kindCounter)
	c := &child{labels: renderLabels(labels), counter: &Counter{}}
	f.mu.Lock()
	f.children = append(f.children, c)
	f.mu.Unlock()
	return c.counter
}

// Gauge registers (or extends) a gauge family and returns the handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, kindGauge)
	c := &child{labels: renderLabels(labels), gauge: &Gauge{}}
	f.mu.Lock()
	f.children = append(f.children, c)
	f.mu.Unlock()
	return c.gauge
}

// Histogram registers (or extends) a histogram family with the given bucket
// upper bounds and returns the handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, kindHistogram)
	c := &child{labels: renderLabels(labels), hist: newHistogram(bounds)}
	f.mu.Lock()
	f.children = append(f.children, c)
	f.mu.Unlock()
	return c.hist
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels appends extra to a pre-rendered label string.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4). Safe to call concurrently with metric updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, len(f.children))
		copy(children, f.children)
		f.mu.Unlock()

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.labels, c.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.labels, c.gauge.Value())
			case kindHistogram:
				s := c.hist.Snapshot()
				for i, bound := range s.Bounds {
					le := `le="` + formatFloat(bound) + `"`
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLabels(c.labels, le), s.Cumulative[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLabels(c.labels, `le="+Inf"`), s.Cumulative[len(s.Cumulative)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, c.labels, formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, c.labels, s.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

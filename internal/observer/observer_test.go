package observer_test

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/observer"
	"repro/internal/statesync"
	"repro/internal/types"
)

// fixture builds a linear certified chain over a 4-replica committee and
// drives an observer engine with it message by message.
type fixture struct {
	t    *testing.T
	ring *crypto.KeyRing
	obs  *observer.Observer

	chain []*types.Block // chain[0] = genesis
}

func newFixture(t *testing.T, cfg observer.Config) *fixture {
	t.Helper()
	ring, err := crypto.NewKeyRing(4, 7, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID == 0 {
		cfg.ID = 4
	}
	cfg.N, cfg.F = 4, 1
	cfg.Verifier = ring
	o, err := observer.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, ring: ring, obs: o, chain: []*types.Block{types.Genesis()}}
}

// extend appends one block at the next round/height, certified by signers.
func (f *fixture) extend(signers int) (*types.Block, *types.QC) {
	f.t.Helper()
	parent := f.chain[len(f.chain)-1]
	justify := f.qcFor(parent, signers)
	r := types.Round(len(f.chain))
	b := types.NewBlock(parent.ID(), justify, r, types.Height(len(f.chain)), 0, 0, types.Payload{}, nil)
	f.chain = append(f.chain, b)
	return b, justify
}

func (f *fixture) qcFor(b *types.Block, signers int) *types.QC {
	f.t.Helper()
	if b.IsGenesis() {
		return types.NewGenesisQC(b.ID())
	}
	votes := make([]types.Vote, signers)
	for i := 0; i < signers; i++ {
		v := types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: types.ReplicaID(i)}
		v.Signature = f.ring.Signer(v.Voter).Sign(v.SigningPayload())
		votes[i] = v
	}
	return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
}

func (f *fixture) proposal(b *types.Block) *types.Proposal {
	f.t.Helper()
	p := &types.Proposal{Block: b, Round: b.Round, Sender: 0}
	p.Signature = f.ring.Signer(0).Sign(p.SigningPayload())
	return p
}

func (f *fixture) deliver(msg types.Message) []engine.Output {
	return f.obs.OnMessage(0, 0, msg)
}

func commits(outs []engine.Output) []*types.Block {
	var bs []*types.Block
	for _, o := range outs {
		if c, ok := o.(engine.Commit); ok {
			bs = append(bs, c.Block)
		}
	}
	return bs
}

func strengths(outs []engine.Output) map[types.BlockID]int {
	m := map[types.BlockID]int{}
	for _, o := range outs {
		if s, ok := o.(engine.Strength); ok {
			m[s.Block.ID()] = s.X
		}
	}
	return m
}

// TestFollowsChainAndCommits feeds a certified chain via proposals and
// checks the observer derives the same commits and strength rises a voting
// replica would: the first block regular-commits when the 3-chain closes
// (level f), and deeper certification raises its level toward 2f.
func TestFollowsChainAndCommits(t *testing.T) {
	var certified []types.BlockID
	f := newFixture(t, observer.Config{
		VerifySignatures: true,
		OnCertified: func(b *types.Block, qc *types.QC) {
			certified = append(certified, b.ID())
		},
	})

	// b1..b3 certified by 3 = 2f+1 voters closes the 3-chain over b1.
	var all []engine.Output
	var blocks []*types.Block
	for i := 0; i < 4; i++ {
		b, _ := f.extend(3)
		blocks = append(blocks, b)
		all = append(all, f.deliver(f.proposal(b))...)
	}
	cs := commits(all)
	if len(cs) == 0 || cs[0].ID() != blocks[0].ID() {
		t.Fatalf("first commit = %v, want b1", cs)
	}
	// Commits must be height-ascending.
	for i := 1; i < len(cs); i++ {
		if cs[i].Height != cs[i-1].Height+1 {
			t.Fatalf("commit order broken at %d: %v then %v", i, cs[i-1], cs[i])
		}
	}
	if got := strengths(all)[blocks[0].ID()]; got != 1 {
		t.Fatalf("b1 strength = %d, want f = 1", got)
	}
	if f.obs.CommittedHeight() == 0 {
		t.Fatal("committed height not advanced")
	}
	// Every delivered block's parent got exactly one certified-feed event
	// (the genesis justify carries no votes and is skipped).
	if len(certified) != 3 {
		t.Fatalf("certified feed fired %d times, want 3", len(certified))
	}

	// Certify with the full committee: strength rises to 2f = 2.
	b5, _ := f.extend(4)
	all = f.deliver(f.proposal(b5))
	b6, _ := f.extend(4)
	all = append(all, f.deliver(f.proposal(b6))...)
	b7, _ := f.extend(4)
	all = append(all, f.deliver(f.proposal(b7))...)
	found := false
	for _, x := range strengths(all) {
		if x == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no block reached strength 2f with full-committee certificates")
	}
}

// TestRejectsForgedTraffic: proposals with a bad signature, a sub-quorum
// justify, or a justify that does not certify the parent never enter the
// store.
func TestRejectsForgedTraffic(t *testing.T) {
	f := newFixture(t, observer.Config{VerifySignatures: true})
	b1, _ := f.extend(3)
	p := f.proposal(b1)
	p.Signature = []byte("forged")
	f.deliver(p)
	if f.obs.Store().Has(b1.ID()) {
		t.Fatal("forged proposal signature accepted")
	}

	b2 := types.NewBlock(b1.ID(), f.qcFor(b1, 2), 2, 2, 0, 0, types.Payload{}, nil)
	f.deliver(f.proposal(b1)) // legit b1 first
	f.deliver(f.proposal(b2))
	if f.obs.Store().Has(b2.ID()) {
		t.Fatal("sub-quorum justify accepted")
	}

	// Tampered vote signature inside an otherwise well-formed QC.
	qc := f.qcFor(b1, 3)
	qc.Votes[1].Signature = []byte("forged")
	b3 := types.NewBlock(b1.ID(), qc, 2, 2, 0, 0, types.Payload{}, nil)
	f.deliver(f.proposal(b3))
	if f.obs.Store().Has(b3.ID()) {
		t.Fatal("forged certificate accepted")
	}
}

// TestOrphanHealsViaCatchUp: delivering a block whose parent is missing
// buffers it and emits a state-sync request; the response heals the gap and
// the buffered child flushes, with commits arriving in order.
func TestOrphanHealsViaCatchUp(t *testing.T) {
	f := newFixture(t, observer.Config{VerifySignatures: true})

	// Build a served store with the full chain, as an upstream replica.
	served := blockstore.New()
	for i := 0; i < 5; i++ {
		b, justify := f.extend(3)
		if err := served.Insert(b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := served.RegisterQC(justify); err != nil {
			t.Fatal(err)
		}
	}
	// Register the tip QC so the served high-QC covers the whole chain.
	if _, _, err := served.RegisterQC(f.qcFor(f.chain[len(f.chain)-1], 3)); err != nil {
		t.Fatal(err)
	}

	// Deliver only the tip proposal: parent is missing.
	tip := f.chain[len(f.chain)-1]
	outs := f.deliver(f.proposal(tip))
	var req *types.StateSyncRequest
	for _, o := range outs {
		if s, ok := o.(engine.Send); ok {
			if r, ok := s.Msg.(*types.StateSyncRequest); ok {
				req = r
			}
		}
	}
	if req == nil {
		t.Fatal("no catch-up request for orphaned tip")
	}

	resp := statesync.Serve(served, req, 0, 0)
	if resp == nil {
		t.Fatal("upstream served nothing")
	}
	outs = f.deliver(resp)
	if len(commits(outs)) == 0 {
		t.Fatal("catch-up produced no commits")
	}
	if !f.obs.Store().Has(tip.ID()) {
		t.Fatal("orphaned tip not flushed after catch-up")
	}
}

// TestRestartResumesWithoutGaps: a fresh observer instance (as after a
// crash) catching up via state sync reports the same committed chain the
// original saw — no gaps, no reordering.
func TestRestartResumesWithoutGaps(t *testing.T) {
	var firstRun []types.BlockID
	f := newFixture(t, observer.Config{VerifySignatures: true})
	served := blockstore.New()
	for i := 0; i < 6; i++ {
		b, justify := f.extend(3)
		if err := served.Insert(b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := served.RegisterQC(justify); err != nil {
			t.Fatal(err)
		}
		for _, c := range commits(f.deliver(f.proposal(b))) {
			firstRun = append(firstRun, c.ID())
		}
	}
	if _, _, err := served.RegisterQC(f.qcFor(f.chain[len(f.chain)-1], 3)); err != nil {
		t.Fatal(err)
	}
	if len(firstRun) == 0 {
		t.Fatal("original observer committed nothing")
	}

	// "Restart": a brand-new engine with empty state syncs from scratch.
	ring := f.ring
	o2, err := observer.New(observer.Config{ID: 4, N: 4, F: 1, Verifier: ring, VerifySignatures: true})
	if err != nil {
		t.Fatal(err)
	}
	var second []types.BlockID
	req := statesync.NewRequest(0, 4)
	resp := statesync.Serve(served, req, 0, 0)
	for _, c := range commits(o2.OnMessage(0, 0, resp)) {
		second = append(second, c.ID())
	}
	if len(second) != len(firstRun) {
		t.Fatalf("restart commits %d blocks, original %d", len(second), len(firstRun))
	}
	for i := range second {
		if second[i] != firstRun[i] {
			t.Fatalf("commit %d diverges after restart", i)
		}
	}
}

// TestRoundEntryFeedsStrength: a round entry's justify QC raises strength
// even before the next proposal arrives.
func TestRoundEntryFeedsStrength(t *testing.T) {
	f := newFixture(t, observer.Config{VerifySignatures: true})
	for i := 0; i < 3; i++ {
		b, _ := f.extend(3)
		f.deliver(f.proposal(b))
	}
	// The QC certifying the chain tip arrives via a round entry.
	tip := f.chain[len(f.chain)-1]
	re := &types.RoundEntry{Round: tip.Round + 1, Justify: f.qcFor(tip, 3), Sender: 0}
	outs := f.deliver(re)
	if len(commits(outs)) == 0 {
		t.Fatal("round-entry QC closed a 3-chain but nothing committed")
	}
}

// Package observer implements the non-voting follower of the access tier:
// an engine that consumes the consensus tier's certified-chain traffic
// (proposals with embedded justify QCs, echoes, round entries, state-sync
// segments), verifies every signature and certificate itself, and tracks
// commit strength with the paper's marker rule — without ever voting. Its
// vote power is structurally zero: it emits no votes, no timeouts, no
// proposals; the only messages it sends are catch-up requests.
//
// Observers exist so client load (strength subscriptions, read APIs) lands
// on a tier that scales horizontally instead of on voting replicas' hot
// path — Flow's access-node split, applied to SFT. An observer derives
// regular commits from the same strength bookkeeping replicas use: the
// first time the tracker reports a block at level f it is committed by the
// regular rule (a certified 3-chain yields 2f+1 direct endorsers per block,
// i.e. exactly f beyond the quorum's f+1 honest floor), so commit and
// strength events observed here match the voting engines' event stream.
package observer

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/statesync"
	"repro/internal/types"
)

// syncTimerID is the observer's only timer: the periodic catch-up probe.
const syncTimerID = 9001

// DefaultSyncInterval paces the catch-up probe when the feed stalls.
const DefaultSyncInterval = 500 * time.Millisecond

// maxOrphans bounds the buffer of blocks whose ancestry has not arrived
// yet. An attacker spraying validly-signed blocks with unknown parents
// cannot grow it without bound; evicted holes heal via state sync.
const maxOrphans = 1024

// maxEchoDepth bounds nested Echo unwrapping, mirroring the voting engines.
const maxEchoDepth = 4

// Config parameterizes an observer engine.
type Config struct {
	// ID is the observer's wire identity. By convention it lies outside the
	// voting committee [0, N); replicas never count it toward quorums.
	ID types.ReplicaID
	// N and F describe the voting committee (n = 3f+1).
	N, F int
	// Mode selects the marker rule: core.ModeRound (DiemBFT) or
	// core.ModeHeight (Streamlet). Defaults to ModeRound.
	Mode core.Mode
	// Verifier checks vote and proposal signatures (the cluster KeyRing).
	Verifier crypto.Verifier
	// VerifySignatures enables cryptographic checks (on for anything real;
	// off only for pure-simulation tests, matching the voting engines).
	VerifySignatures bool
	// Horizon bounds the tracker's ancestor walk (0 = unbounded).
	Horizon int
	// Upstreams are the replicas catch-up requests rotate over. Defaults to
	// the whole committee.
	Upstreams []types.ReplicaID
	// SyncInterval paces the stall-detection catch-up probe.
	SyncInterval time.Duration
	// BatchWorkers parallelizes cold QC verification (0 = sequential).
	BatchWorkers int
	// OnCertified, if non-nil, observes every (block, qc) pair where qc
	// certifies block, exactly once per block, in arrival order. This is
	// the §5 proof feed: a certified block's CommitLog entries are proven
	// strength levels, which is what the gateway serves to subscribers.
	OnCertified func(b *types.Block, qc *types.QC)
}

// Observer is the engine. It implements engine.Engine and engine.Pipelined,
// so it runs unchanged under the discrete-event simulator and the TCP
// runtime, with optional reader-side prevalidation.
type Observer struct {
	cfg     Config
	store   *blockstore.Store
	tracker *core.Tracker
	qcCache *crypto.QCCache

	// committed marks blocks already reported via engine.Commit.
	committed  map[types.BlockID]bool
	committedH types.Height
	// certified marks blocks already reported via OnCertified.
	certified map[types.BlockID]bool
	// strength is the highest level already reported per block.
	strength map[types.BlockID]int

	// orphans buffers proposals whose parent has not arrived, keyed by the
	// missing parent; orphanOrder implements FIFO eviction at maxOrphans.
	orphans     map[types.BlockID][]*types.Proposal
	orphanOrder []types.BlockID
	syncAsked   map[types.BlockID]bool

	// rises accumulates tracker callbacks during one event, drained by emit.
	rises []rise
	outs  []engine.Output

	// lastTip detects a stalled feed between sync-timer firings.
	lastTip types.Height
	nextUp  int
}

type rise struct {
	b *types.Block
	x int
}

// New creates an observer engine.
func New(cfg Config) (*Observer, error) {
	if cfg.N <= 0 || cfg.F < 0 {
		return nil, fmt.Errorf("observer: invalid committee n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.ModeRound
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}
	if len(cfg.Upstreams) == 0 {
		for i := 0; i < cfg.N; i++ {
			cfg.Upstreams = append(cfg.Upstreams, types.ReplicaID(i))
		}
	}
	o := &Observer{
		cfg:       cfg,
		store:     blockstore.New(),
		committed: make(map[types.BlockID]bool),
		certified: make(map[types.BlockID]bool),
		strength:  make(map[types.BlockID]int),
		orphans:   make(map[types.BlockID][]*types.Proposal),
		syncAsked: make(map[types.BlockID]bool),
		qcCache:   crypto.NewQCCache(0),
	}
	o.tracker = core.NewTracker(o.store, core.Config{
		N:       cfg.N,
		F:       cfg.F,
		Mode:    cfg.Mode,
		Horizon: cfg.Horizon,
		OnStrength: func(b *types.Block, x int) {
			o.rises = append(o.rises, rise{b, x})
		},
	})
	return o, nil
}

// ID implements engine.Engine.
func (o *Observer) ID() types.ReplicaID { return o.cfg.ID }

// Store exposes the observer's block tree (read-only use).
func (o *Observer) Store() *blockstore.Store { return o.store }

// CommittedHeight returns the highest height reported committed.
func (o *Observer) CommittedHeight() types.Height { return o.committedH }

// Strength returns the highest reported strength of a block, or -1.
func (o *Observer) Strength(id types.BlockID) int {
	if x, ok := o.strength[id]; ok {
		return x
	}
	return -1
}

// Init implements engine.Engine: ask an upstream where the chain is and
// start the stall-detection timer.
func (o *Observer) Init(now time.Duration) []engine.Output {
	o.outs = o.outs[:0]
	o.requestCatchUp()
	o.outs = append(o.outs, engine.SetTimer{ID: syncTimerID, Delay: o.cfg.SyncInterval})
	return o.take()
}

// OnTimer implements engine.Engine: if the chain tip has not advanced since
// the last firing, probe the next upstream for missing blocks.
func (o *Observer) OnTimer(now time.Duration, id int) []engine.Output {
	if id != syncTimerID {
		return nil
	}
	o.outs = o.outs[:0]
	if tip := o.tipHeight(); tip == o.lastTip {
		o.requestCatchUp()
	} else {
		o.lastTip = tip
	}
	o.outs = append(o.outs, engine.SetTimer{ID: syncTimerID, Delay: o.cfg.SyncInterval})
	return o.take()
}

// OnMessage implements engine.Engine.
func (o *Observer) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	return o.onMessage(from, msg, false)
}

// OnVerifiedMessage implements engine.Pipelined.
func (o *Observer) OnVerifiedMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	return o.onMessage(from, msg, true)
}

// Prevalidate implements engine.Pipelined: the stateless subset of the
// observer's checks, safe to run concurrently on transport reader
// goroutines. State-sync segments are never rejected here — their
// signatures are re-checked link by link on application — so this only
// front-loads proposal/echo/round-entry verification.
func (o *Observer) Prevalidate(from types.ReplicaID, msg types.Message) error {
	if !o.cfg.VerifySignatures {
		return nil
	}
	switch m := msg.(type) {
	case *types.Proposal:
		return o.checkProposal(m)
	case *types.Echo:
		inner := m
		for depth := 0; depth < maxEchoDepth; depth++ {
			p, ok := inner.Inner.(*types.Proposal)
			if ok {
				return o.checkProposal(p)
			}
			next, ok := inner.Inner.(*types.Echo)
			if !ok {
				return fmt.Errorf("observer: echo wraps no proposal")
			}
			inner = next
		}
		return fmt.Errorf("observer: echo nesting too deep")
	case *types.RoundEntry:
		if m.Justify != nil {
			return o.verifyQC(m.Justify)
		}
		return nil
	}
	return nil
}

func (o *Observer) onMessage(from types.ReplicaID, msg types.Message, verified bool) []engine.Output {
	o.outs = o.outs[:0]
	switch m := msg.(type) {
	case *types.Proposal:
		o.onProposal(from, m, verified)
	case *types.Echo:
		inner := m.Inner
		for depth := 0; depth < maxEchoDepth; depth++ {
			switch im := inner.(type) {
			case *types.Proposal:
				o.onProposal(from, im, verified)
				inner = nil
			case *types.Echo:
				inner = im.Inner
				continue
			default:
				inner = nil
			}
			break
		}
	case *types.RoundEntry:
		// A round entry's QC certifies the previous round's block — feed it
		// so strength can rise even when the next proposal is still in
		// flight.
		if m.Justify != nil {
			o.noteQC(m.Justify, verified)
		}
	case *types.StateSyncResponse:
		o.onStateSync(m)
	}
	o.emit()
	return o.take()
}

// checkProposal is the stateless validity check: proposer signature and
// justify certificate.
func (o *Observer) checkProposal(p *types.Proposal) error {
	if p.Block == nil || p.Block.Justify == nil {
		return fmt.Errorf("observer: proposal without block or justify")
	}
	if p.Block.Justify.Block != p.Block.Parent {
		return fmt.Errorf("observer: justify does not certify parent")
	}
	if !o.cfg.VerifySignatures {
		return nil
	}
	if int(p.Sender) >= o.cfg.N || !o.cfg.Verifier.Verify(p.Sender, p.SigningPayload(), p.Signature) {
		return fmt.Errorf("observer: bad proposal signature")
	}
	return o.verifyQC(p.Block.Justify)
}

func (o *Observer) verifyQC(qc *types.QC) error {
	if err := qc.CheckStructure(o.quorum()); err != nil {
		return err
	}
	if !o.cfg.VerifySignatures {
		return nil
	}
	workers := o.cfg.BatchWorkers
	if workers < 1 {
		workers = 1
	}
	return o.qcCache.VerifyQCBatch(o.cfg.Verifier, qc, o.quorum(), workers)
}

// isGenesisQC matches the round-0 no-votes convention (types.NewGenesisQC).
func isGenesisQC(qc *types.QC) bool {
	return qc.Round == 0 && len(qc.Votes) == 0 && qc.Agg == nil
}

func (o *Observer) quorum() int { return 2*o.cfg.F + 1 }

func (o *Observer) onProposal(from types.ReplicaID, p *types.Proposal, verified bool) {
	if p.Block == nil || p.Block.Justify == nil || o.store.Has(p.Block.ID()) {
		return
	}
	if !verified {
		if err := o.checkProposal(p); err != nil {
			return
		}
	}
	if !o.store.Has(p.Block.Parent) {
		o.bufferOrphan(p)
		o.requestCatchUp()
		return
	}
	o.ingest(p.Block)
	o.flushOrphans(p.Block.ID())
}

// ingest installs one block whose parent is present and whose signatures
// are already verified, then routes its justify QC through the tracker and
// the certified-pair feed.
func (o *Observer) ingest(b *types.Block) {
	if err := o.store.Insert(b); err != nil {
		return
	}
	delete(o.syncAsked, b.ID())
	o.noteQC(b.Justify, true)
}

// noteQC registers one QC (already structurally bound to a stored parent or
// about to be): it updates the store's high QC, feeds the strength tracker,
// and fires the certified feed the first time the certified block is seen.
func (o *Observer) noteQC(qc *types.QC, verified bool) {
	if qc == nil || isGenesisQC(qc) {
		return
	}
	if !verified {
		if err := o.verifyQC(qc); err != nil {
			return
		}
	}
	certified, _, err := o.store.RegisterQC(qc)
	if err != nil || certified == nil {
		return
	}
	o.tracker.OnQC(qc)
	if o.cfg.OnCertified != nil && !o.certified[qc.Block] {
		o.certified[qc.Block] = true
		o.cfg.OnCertified(certified, qc)
	}
}

func (o *Observer) bufferOrphan(p *types.Proposal) {
	missing := p.Block.Parent
	if len(o.orphanOrder) >= maxOrphans {
		evict := o.orphanOrder[0]
		o.orphanOrder = o.orphanOrder[1:]
		delete(o.orphans, evict)
	}
	if _, ok := o.orphans[missing]; !ok {
		o.orphanOrder = append(o.orphanOrder, missing)
	}
	o.orphans[missing] = append(o.orphans[missing], p)
}

// flushOrphans re-ingests buffered proposals whose parent just arrived,
// cascading down the tree.
func (o *Observer) flushOrphans(parent types.BlockID) {
	queue := []types.BlockID{parent}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		buffered, ok := o.orphans[id]
		if !ok {
			continue
		}
		delete(o.orphans, id)
		for i, oid := range o.orphanOrder {
			if oid == id {
				o.orphanOrder = append(o.orphanOrder[:i], o.orphanOrder[i+1:]...)
				break
			}
		}
		for _, p := range buffered {
			if o.store.Has(p.Block.ID()) {
				continue
			}
			o.ingest(p.Block)
			queue = append(queue, p.Block.ID())
		}
	}
}

// onStateSync installs a catch-up segment; every link is re-verified (the
// applier checks structure and, when enabled, signatures), so a lying
// upstream cannot smuggle an uncertified block in.
func (o *Observer) onStateSync(m *types.StateSyncResponse) {
	applier := &statesync.Applier{
		Store:  o.store,
		Quorum: o.quorum(),
		OnInstall: func(b *types.Block) {
			delete(o.syncAsked, b.ID())
			o.flushOrphans(b.ID())
		},
		OnQC: func(qc *types.QC) {
			o.tracker.OnQC(qc)
			if o.cfg.OnCertified != nil && !o.certified[qc.Block] {
				if cb := o.store.Block(qc.Block); cb != nil {
					o.certified[qc.Block] = true
					o.cfg.OnCertified(cb, qc)
				}
			}
		},
	}
	if o.cfg.VerifySignatures {
		applier.VerifyQC = func(qc *types.QC) error { return o.verifyQC(qc) }
	}
	installed, _ := applier.Apply(m)
	if installed > 0 && len(m.Blocks) >= statesync.DefaultMaxBlocks {
		// Full segment: the upstream likely has more; ask again right away
		// rather than waiting out the stall timer.
		o.requestCatchUp()
	}
}

// requestCatchUp asks the next upstream (round-robin) for everything above
// the observer's current tip.
func (o *Observer) requestCatchUp() {
	up := o.cfg.Upstreams[o.nextUp%len(o.cfg.Upstreams)]
	o.nextUp++
	o.outs = append(o.outs, engine.Send{
		To:  up,
		Msg: statesync.NewRequest(o.tipHeight(), o.cfg.ID),
	})
}

func (o *Observer) tipHeight() types.Height {
	if b := o.store.Block(o.store.HighQC().Block); b != nil {
		return b.Height
	}
	return 0
}

// emit drains the tracker rises accumulated during one event into outputs:
// regular commits first (ascending height, each block exactly once — the
// first rise to level f commits the block and its uncommitted ancestors),
// then strength events, monotone per block.
func (o *Observer) emit() {
	if len(o.rises) == 0 {
		return
	}
	rises := o.rises
	o.rises = nil
	sort.SliceStable(rises, func(i, j int) bool {
		if rises[i].b.Height != rises[j].b.Height {
			return rises[i].b.Height < rises[j].b.Height
		}
		return rises[i].x < rises[j].x
	})
	for _, r := range rises {
		if !o.committed[r.b.ID()] {
			o.commitChain(r.b)
		}
		if old, ok := o.strength[r.b.ID()]; !ok || r.x > old {
			o.strength[r.b.ID()] = r.x
			o.outs = append(o.outs, engine.Strength{Block: r.b, X: r.x})
		}
	}
}

// commitChain emits Commit for every uncommitted ancestor of b (ascending)
// and then b itself.
func (o *Observer) commitChain(b *types.Block) {
	chain := []*types.Block{b}
	o.store.WalkAncestors(b.ID(), func(a *types.Block) bool {
		if a.IsGenesis() || o.committed[a.ID()] {
			return false
		}
		chain = append(chain, a)
		return true
	})
	for i := len(chain) - 1; i >= 0; i-- {
		blk := chain[i]
		o.committed[blk.ID()] = true
		if blk.Height > o.committedH {
			o.committedH = blk.Height
		}
		o.outs = append(o.outs, engine.Commit{Block: blk})
	}
}

func (o *Observer) take() []engine.Output {
	outs := o.outs
	o.outs = nil
	return outs
}

package workload

import (
	"crypto/ed25519"
	"math/rand"
	"time"

	"repro/internal/app"
	"repro/internal/types"
)

// BankWorkload generates signed bank-transfer traffic for the execution
// layer: each payload carries a batch of app.BankTx operations (mostly
// transfers, some withdrawals) drawn from a deterministic account
// population. The generator tracks the nonce it last issued per account, so
// in a benign run — where every proposed block commits — transactions apply
// cleanly; under forks or timeouts the nonces of never-committed proposals
// are burned and the bank rejects the successors with CodeBadNonce, which is
// deliberate: result codes are part of the deterministic state the AppHash
// certifies, not something the workload may paper over.
//
// The generator is stateful and not safe for concurrent use; the
// discrete-event simulator calls it from one goroutine (whichever replica
// leads the round), which both keeps it deterministic and models a shared
// client population submitting to the current leader.
type BankWorkload struct {
	cfg  app.BankConfig
	rng  *rand.Rand
	txns int
	sign bool

	nonce map[uint32]uint64
	keys  map[uint32]ed25519.PrivateKey

	generated int64
	lastAt    time.Duration
}

// NewBankWorkload creates a generator over the account population cfg
// describes. txnsPerBlock is the batch size per payload; sign controls
// whether transactions carry real ed25519 signatures (matching a bank built
// with signature verification on) or zero signatures (for banks running
// DisableSigVerify, e.g. the scenario fuzzer's fast path).
func NewBankWorkload(seed int64, cfg app.BankConfig, txnsPerBlock int, sign bool) *BankWorkload {
	if cfg.Accounts == 0 {
		cfg.Accounts = 1
	}
	if txnsPerBlock <= 0 {
		txnsPerBlock = 1
	}
	return &BankWorkload{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		txns:  txnsPerBlock,
		sign:  sign,
		nonce: make(map[uint32]uint64),
		keys:  make(map[uint32]ed25519.PrivateKey),
	}
}

// key returns account id's signing key, deriving it on first use so driving
// a million-account population does not pay a million key derivations up
// front.
func (w *BankWorkload) key(id uint32) ed25519.PrivateKey {
	if k, ok := w.keys[id]; ok {
		return k
	}
	k := app.AccountKey(w.cfg.Seed, id)
	w.keys[id] = k
	return k
}

// Payload implements the engines' PayloadNow hook: it is invoked by the
// proposing leader with the virtual submission time, which doubles as each
// batched transaction's submit timestamp (the block's creation time), so
// creation→x-strong latency IS submit→x-strong latency for this workload.
func (w *BankWorkload) Payload(r types.Round, now time.Duration) types.Payload {
	out := make([]types.Transaction, 0, w.txns)
	for i := 0; i < w.txns; i++ {
		from := uint32(w.rng.Intn(int(w.cfg.Accounts)))
		tx := app.BankTx{
			Op:     app.OpTransfer,
			From:   from,
			To:     uint32(w.rng.Intn(int(w.cfg.Accounts))),
			Amount: 1 + uint64(w.rng.Intn(50)),
			Nonce:  w.nonce[from] + 1,
		}
		// One in eight operations is a withdrawal — the irreversible,
		// strength-gated operation class.
		if w.rng.Intn(8) == 0 {
			tx.Op = app.OpWithdraw
			tx.To = 0
		}
		w.nonce[from]++
		if w.sign {
			payload := tx.AppendSigningPayload(make([]byte, 0, 32+app.BankTxSize))
			copy(tx.Sig[:], ed25519.Sign(w.key(from), payload))
		}
		out = append(out, tx.AsTransaction())
	}
	w.generated += int64(w.txns)
	w.lastAt = now
	return types.Payload{Txns: out}
}

// Generated returns the number of transactions issued so far.
func (w *BankWorkload) Generated() int64 { return w.generated }

// Package workload generates the synthetic client load of the paper's
// evaluation: each proposed block carries roughly 1000 transactions and
// ~450KB of payload, and leaders are never starved.
package workload

import (
	"math/rand"

	"repro/internal/types"
)

// Paper workload constants (Section 4, "Experimental setup").
const (
	// PaperTxnsPerBlock is the ~1000 transactions per proposed block.
	PaperTxnsPerBlock = 1000
	// PaperBlockBytes is the ~450KB block size.
	PaperBlockBytes = 450 * 1024
)

// Generator produces deterministic synthetic transactions.
type Generator struct {
	rng     *rand.Rand
	clients uint32
	seq     []uint64
	txnSize int
}

// NewGenerator creates a generator with the given number of synthetic
// clients and per-transaction data size.
func NewGenerator(seed int64, clients uint32, txnSize int) *Generator {
	if clients == 0 {
		clients = 1
	}
	return &Generator{
		rng:     rand.New(rand.NewSource(seed)),
		clients: clients,
		seq:     make([]uint64, clients),
		txnSize: txnSize,
	}
}

// Next returns one new transaction from a random client.
func (g *Generator) Next() types.Transaction {
	c := uint32(g.rng.Intn(int(g.clients)))
	g.seq[c]++
	data := make([]byte, g.txnSize)
	g.rng.Read(data)
	return types.Transaction{Sender: c, Seq: g.seq[c], Data: data}
}

// Batch returns n new transactions.
func (g *Generator) Batch(n int) []types.Transaction {
	out := make([]types.Transaction, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// PaperPayload returns a payload source for the simulator that models the
// paper's block shape — txns transactions and blockBytes total size — while
// keeping hashing cheap: a handful of representative transactions plus
// Padding accounting for the rest of the bytes. Sampling a few real
// transactions keeps block IDs unique per (round, leader).
func PaperPayload(seed int64, txns, blockBytes int) func(round types.Round) types.Payload {
	g := NewGenerator(seed, 64, 128)
	return func(round types.Round) types.Payload {
		sample := g.Batch(4)
		size := 0
		for _, t := range sample {
			size += t.Size()
		}
		pad := blockBytes - size
		if pad < 0 {
			pad = 0
		}
		return types.Payload{Txns: sample, Padding: uint32(pad)}
	}
}

// FullPayload returns a payload source that materializes every transaction
// (used by the real TCP cluster and the throughput accounting tests).
func FullPayload(g *Generator, txns int) func(round types.Round) types.Payload {
	return func(round types.Round) types.Payload {
		return types.Payload{Txns: g.Batch(txns)}
	}
}

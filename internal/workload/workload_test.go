package workload_test

import (
	"testing"

	"repro/internal/workload"
)

func TestGeneratorSequencesPerClient(t *testing.T) {
	g := workload.NewGenerator(1, 4, 16)
	seen := make(map[uint32]uint64)
	for i := 0; i < 200; i++ {
		txn := g.Next()
		if txn.Sender >= 4 {
			t.Fatalf("sender %d out of range", txn.Sender)
		}
		if txn.Seq != seen[txn.Sender]+1 {
			t.Fatalf("client %d: seq %d after %d", txn.Sender, txn.Seq, seen[txn.Sender])
		}
		seen[txn.Sender] = txn.Seq
		if len(txn.Data) != 16 {
			t.Fatalf("txn size %d", len(txn.Data))
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := workload.NewGenerator(9, 4, 8).Batch(10)
	b := workload.NewGenerator(9, 4, 8).Batch(10)
	for i := range a {
		if a[i].Sender != b[i].Sender || a[i].Seq != b[i].Seq || string(a[i].Data) != string(b[i].Data) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestPaperPayloadShape(t *testing.T) {
	src := workload.PaperPayload(1, workload.PaperTxnsPerBlock, workload.PaperBlockBytes)
	p1 := src(1)
	p2 := src(2)
	// Modeled size must match the paper's ~450KB block.
	if p1.Size() < workload.PaperBlockBytes || p1.Size() > workload.PaperBlockBytes+64 {
		t.Fatalf("payload size %d, want ~%d", p1.Size(), workload.PaperBlockBytes)
	}
	// Sampled transactions make consecutive payloads distinct (unique
	// block IDs per round).
	if p1.Txns[0].Data == nil || string(p1.Txns[0].Data) == string(p2.Txns[0].Data) {
		t.Fatal("payloads not distinct across rounds")
	}
}

func TestFullPayload(t *testing.T) {
	g := workload.NewGenerator(1, 2, 8)
	src := workload.FullPayload(g, 25)
	p := src(1)
	if len(p.Txns) != 25 || p.Padding != 0 {
		t.Fatalf("full payload: %d txns, padding %d", len(p.Txns), p.Padding)
	}
}

package crypto

import (
	"testing"

	"repro/internal/types"
)

// buildQC signs a quorum of votes for one block with the given ring.
func buildQC(t testing.TB, kr *KeyRing, block types.BlockID, round types.Round, quorum int) *types.QC {
	t.Helper()
	qc := &types.QC{Block: block, Round: round, Height: types.Height(round)}
	for i := 0; i < quorum; i++ {
		v := types.Vote{
			Block:  block,
			Round:  round,
			Height: types.Height(round),
			Voter:  types.ReplicaID(i),
		}
		v.Signature = kr.Signer(v.Voter).Sign(v.SigningPayload())
		qc.Votes = append(qc.Votes, v)
	}
	return qc
}

func testBlockID(fill byte) types.BlockID {
	var id types.BlockID
	for i := range id {
		id[i] = fill
	}
	return id
}

func TestQCCacheHitsAndMisses(t *testing.T) {
	kr, err := NewKeyRing(7, 1, SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	qc := buildQC(t, kr, testBlockID(1), 3, 5)
	c := NewQCCache(8)

	for i := 0; i < 4; i++ {
		if err := c.VerifyQC(kr, qc, 5); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
}

// TestQCCacheNoAliasing ensures certificates that share a block but differ in
// any byte — voter set, markers, or signatures — never alias a cache entry.
func TestQCCacheNoAliasing(t *testing.T) {
	kr, err := NewKeyRing(7, 1, SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	qc := buildQC(t, kr, testBlockID(1), 3, 5)
	c := NewQCCache(8)
	if err := c.VerifyQC(kr, qc, 5); err != nil {
		t.Fatal(err)
	}

	// Tamper with a marker but keep the old signatures: the payload no
	// longer matches what was signed, so verification must fail even though
	// the valid original for the same block is cached.
	bad := &types.QC{Block: qc.Block, Round: qc.Round, Height: qc.Height}
	bad.Votes = append([]types.Vote(nil), qc.Votes...)
	bad.Votes[2].Marker = 99
	if err := c.VerifyQC(kr, bad, 5); err == nil {
		t.Fatal("tampered QC passed through the cache")
	}

	// A forged signature must fail too.
	forged := &types.QC{Block: qc.Block, Round: qc.Round, Height: qc.Height}
	forged.Votes = append([]types.Vote(nil), qc.Votes...)
	forged.Votes[0].Signature = append([]byte(nil), qc.Votes[0].Signature...)
	forged.Votes[0].Signature[0] ^= 1
	if err := c.VerifyQC(kr, forged, 5); err == nil {
		t.Fatal("forged QC passed through the cache")
	}

	// And the original still verifies (failed attempts are not cached).
	if err := c.VerifyQC(kr, qc, 5); err != nil {
		t.Fatal(err)
	}
}

// TestQCCacheQuorumKeying ensures the structural quorum parameter is part of
// the key: a QC valid at quorum 3 must not satisfy quorum 5 via the cache.
func TestQCCacheQuorumKeying(t *testing.T) {
	kr, err := NewKeyRing(7, 1, SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	qc := buildQC(t, kr, testBlockID(2), 4, 3)
	c := NewQCCache(8)
	if err := c.VerifyQC(kr, qc, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyQC(kr, qc, 5); err == nil {
		t.Fatal("3-vote QC passed quorum-5 check via the cache")
	}
}

func TestQCCacheLRUEviction(t *testing.T) {
	kr, err := NewKeyRing(7, 1, SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	c := NewQCCache(2)
	qcs := []*types.QC{
		buildQC(t, kr, testBlockID(1), 1, 5),
		buildQC(t, kr, testBlockID(2), 2, 5),
		buildQC(t, kr, testBlockID(3), 3, 5),
	}
	for _, qc := range qcs {
		if err := c.VerifyQC(kr, qc, 5); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", c.Len())
	}
	// qcs[0] was evicted: re-verifying it is a miss, not a hit.
	_, missesBefore := c.Stats()
	if err := c.VerifyQC(kr, qcs[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Fatal("evicted certificate was served from the cache")
	}
}

func TestQCCacheGenesisBypass(t *testing.T) {
	kr, err := NewKeyRing(4, 1, SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	c := NewQCCache(8)
	gen := types.NewGenesisQC(testBlockID(9))
	if err := c.VerifyQC(kr, gen, 3); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("genesis QC was cached")
	}
}

// BenchmarkVerifyQCCached measures the paper-relevant asymmetry: the first
// delivery of a QC pays 2f+1 signature checks, every re-delivery pays one
// digest. Run with -benchmem to see the allocation difference too.
func BenchmarkVerifyQCCached(b *testing.B) {
	for _, scheme := range []string{SchemeSim, SchemeEd25519} {
		kr, err := NewKeyRing(31, 1, scheme)
		if err != nil {
			b.Fatal(err)
		}
		qc := buildQC(b, kr, testBlockID(7), 5, 21)
		b.Run("scheme="+scheme+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := VerifyQC(kr, qc, 21); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("scheme="+scheme+"/cached", func(b *testing.B) {
			c := NewQCCache(8)
			if err := c.VerifyQC(kr, qc, 21); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.VerifyQC(kr, qc, 21); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

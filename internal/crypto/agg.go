package crypto

import (
	"crypto/sha512"
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/types"
)

// This file implements the aggregating certificate schemes behind the compact
// QC form (types.AggCert): one 32-byte aggregated signature scalar plus a
// signer bitmap replaces the O(n) per-vote signature vector, so certificate
// wire size and verification cost stay flat as the committee grows.
//
// Construction. Every replica i owns an aggregation scalar k_i derived from
// the ring seed and reduced modulo the ed25519 group order ℓ. A vote's
// aggregate contribution is k_i·H(P) mod ℓ, where P is the vote's
// *voter-free* aggregation payload ("aggvote/" || block || round || height ||
// marker/intervals) — the voter's identity enters through k_i, not the
// hashed bytes. The certificate signature is the sum of the contributions
// mod ℓ. Verification recomputes the sum from the signer bitmap: votes with
// identical marker state share one payload, so the steady state (every
// marker 0) needs ONE hash, ONE multiplication, and n cheap scalar
// additions — the cost profile of a real multi-signature pairing check, and
// the reason per-QC verify CPU is ~constant from n=31 to n=101.
//
// Trust model. Aggregation scalars are derived from the shared ring seed, so
// like SchemeSim this construction is unforgeable only against adversaries
// that do not hold the ring — exactly the scripted-adversary model of the
// experiments (a Byzantine behavior corrupts bytes; it does not know honest
// key material). The data flow — constant-size signature, signer bitmap,
// voter-free message grouping — matches a production BLS/ed25519-musig
// backend, and swapping one in changes only deriveAggKeys, hashToScalar and
// aggregateSum; every caller (AggregateQC, VerifyQC, the engines, the wire
// format) is already shaped for it. Vote-transit signatures remain real
// (base-scheme) signatures checked at vote reception; only the certificate
// compacts them away.

// aggOrder is the ed25519 group order ℓ = 2^252 + 27742...493.
var aggOrder, _ = new(big.Int).SetString(
	"7237005577332262213973186563042994240857116359379907606001950938285454250989", 10)

// deriveAggKeys derives the per-replica aggregation scalars from the ring
// seed: k_i = SHA-512("aggkey/" || seed || i) mod ℓ.
func deriveAggKeys(n int, seed int64) []*big.Int {
	keys := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		material := types.AppendUint64([]byte("aggkey/"), uint64(seed))
		material = types.AppendUint32(material, uint32(i))
		sum := sha512.Sum512(material)
		k := new(big.Int).SetBytes(sum[:])
		k.Mod(k, aggOrder)
		if k.Sign() == 0 {
			k.SetInt64(1) // never hit in practice; keeps k_i invertible-free but nonzero
		}
		keys[i] = k
	}
	return keys
}

// hashToScalar maps an aggregation payload to a scalar mod ℓ.
func hashToScalar(payload []byte) *big.Int {
	sum := sha512.Sum512(payload)
	k := new(big.Int).SetBytes(sum[:])
	return k.Mod(k, aggOrder)
}

// appendAggSuffix appends the marker/interval/AppHash portion of a vote's
// aggregation payload — the part that differs between votes of one QC and
// therefore the grouping key for verification. The flag byte mirrors the
// vote signing payload's bitfield: bit 0 intervals, bit 1 AppHash. Votes
// without an execution root (the pre-execution steady state) produce the
// exact legacy suffix bytes, so existing aggregate signatures verify
// unchanged.
func appendAggSuffix(b []byte, v *types.Vote) []byte {
	b = types.AppendUint64(b, uint64(v.Marker))
	var flags byte
	if v.HasIntervals {
		flags |= 1 << 0
	}
	if v.HasAppHash() {
		flags |= 1 << 1
	}
	b = append(b, flags)
	if v.HasIntervals {
		b = v.Intervals.Encode(b)
	}
	if v.HasAppHash() {
		b = append(b, v.AppHash[:]...)
	}
	return b
}

// appendAggPayload appends the full voter-free aggregation payload for one
// vote of the certificate.
func appendAggPayload(b []byte, qc *types.QC, v *types.Vote) []byte {
	b = append(b, "aggvote/"...)
	b = append(b, qc.Block[:]...)
	b = types.AppendUint64(b, uint64(qc.Round))
	b = types.AppendUint64(b, uint64(qc.Height))
	return appendAggSuffix(b, v)
}

// aggGroup accumulates the scalar-key sum for one distinct aggregation
// payload within a certificate.
type aggGroup struct {
	sum  *big.Int
	vote *types.Vote // representative vote carrying the marker state
}

// aggregateSum computes Σ k_i·H(P_i) mod ℓ over the certificate's votes,
// grouping votes that share a payload so the multiplication count is the
// number of distinct marker states, not the number of voters.
func (kr *KeyRing) aggregateSum(qc *types.QC) (*big.Int, error) {
	if kr.aggKeys == nil {
		return nil, fmt.Errorf("crypto: scheme %q does not aggregate", kr.scheme)
	}
	groups := make(map[string]*aggGroup, 1)
	var keyBuf []byte
	for i := range qc.Votes {
		v := &qc.Votes[i]
		if int(v.Voter) >= kr.n {
			return nil, fmt.Errorf("crypto: aggregate voter %s outside ring of %d", v.Voter, kr.n)
		}
		keyBuf = appendAggSuffix(keyBuf[:0], v)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &aggGroup{sum: new(big.Int), vote: v}
			groups[string(keyBuf)] = g
		}
		g.sum.Add(g.sum, kr.aggKeys[v.Voter])
	}
	// Map order is irrelevant: addition mod ℓ commutes, so the total is
	// deterministic for a given vote set.
	total := new(big.Int)
	scratch := new(big.Int)
	var payload []byte
	for _, g := range groups {
		payload = appendAggPayload(payload[:0], qc, g.vote)
		scratch.Mul(g.sum, hashToScalar(payload))
		total.Add(total, scratch)
	}
	return total.Mod(total, aggOrder), nil
}

// Aggregates reports whether the ring's scheme produces compact aggregated
// certificates (SchemeSimAgg or SchemeEd25519Agg).
func (kr *KeyRing) Aggregates() bool { return kr.aggKeys != nil }

// Aggregates reports whether the verifier supports aggregated certificates.
// Engines consult it once at construction to decide whether formed QCs should
// be compacted.
func Aggregates(v Verifier) bool {
	a, ok := v.(interface{ Aggregates() bool })
	return ok && a.Aggregates()
}

// AggregateQC compacts a freshly formed certificate in place: it computes the
// aggregated signature and signer bitmap from the votes, then drops the
// per-vote signatures (the compact form's invariant: qc.Agg != nil ⇔ votes
// carry no individual signatures). Vote markers are retained — endorsement
// tracking needs them, and the wire form preserves them sparsely.
func AggregateQC(v Verifier, qc *types.QC) error {
	kr, ok := v.(*KeyRing)
	if !ok || kr.aggKeys == nil {
		return fmt.Errorf("crypto: verifier cannot aggregate certificates")
	}
	sum, err := kr.aggregateSum(qc)
	if err != nil {
		return err
	}
	var maxVoter types.ReplicaID
	for i := range qc.Votes {
		if qc.Votes[i].Voter > maxVoter {
			maxVoter = qc.Votes[i].Voter
		}
	}
	cert := &types.AggCert{Signers: make([]uint64, int(maxVoter)/64+1)}
	for i := range qc.Votes {
		id := qc.Votes[i].Voter
		cert.Signers[id>>6] |= 1 << (id & 63)
	}
	if popcount(cert.Signers) != len(qc.Votes) {
		return fmt.Errorf("crypto: duplicate voter in certificate for %s", qc.Block)
	}
	sum.FillBytes(cert.Sig[:])
	qc.Agg = cert
	for i := range qc.Votes {
		qc.Votes[i].Signature = nil
	}
	return nil
}

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// verifyAggregate checks a compact certificate: structure (quorum, bitmap ↔
// vote consistency), then the aggregate equation. There are no per-vote
// signatures to bisect, so a mismatch cannot name an individual signer: the
// aggregator (the proposer that formed and shipped the certificate) is at
// fault, and the error says so. Exact per-signer attribution is a property of
// the vector form only — the engines still verify vote-transit signatures
// individually, so a corrupted *vote* is attributed before it ever enters a
// certificate.
func verifyAggregate(v Verifier, qc *types.QC, quorum int) error {
	if err := qc.CheckStructure(quorum); err != nil {
		return err
	}
	kr, ok := v.(*KeyRing)
	if !ok || kr.aggKeys == nil {
		return fmt.Errorf("crypto: compact %v requires an aggregating keyring", qc)
	}
	sum, err := kr.aggregateSum(qc)
	if err != nil {
		return err
	}
	var want [32]byte
	sum.FillBytes(want[:])
	if want != qc.Agg.Sig {
		return fmt.Errorf("crypto: aggregate signature mismatch on %v (aggregator at fault; compact certificates carry no per-signer attribution)", qc)
	}
	return nil
}

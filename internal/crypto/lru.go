package crypto

import (
	"container/list"
	"sync"
)

// lruSet is the mutex-guarded, LRU-bounded key set behind the verification
// memos (QCCache, SigCache). Lookups refresh recency; inserts are
// double-checked so concurrent misses that verified the same content twice
// insert once; the oldest key falls off past capacity. Nothing is stored
// but the keys themselves — the memos cache only the fact "this content
// verified", which signature immutability makes permanently true.
type lruSet[K comparable] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element
	order    *list.List // front = most recently used; values are K
}

func newLRUSet[K comparable](capacity int) *lruSet[K] {
	return &lruSet[K]{
		capacity: capacity,
		entries:  make(map[K]*list.Element, capacity),
		order:    list.New(),
	}
}

// contains reports whether k is cached, refreshing its recency on hit.
func (s *lruSet[K]) contains(k K) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if ok {
		s.order.MoveToFront(el)
	}
	return ok
}

// add inserts k unless a concurrent caller already did, evicting the oldest
// entry past capacity.
func (s *lruSet[K]) add(k K) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return
	}
	s.entries[k] = s.order.PushFront(k)
	if s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(K))
	}
}

// len returns the number of cached keys.
func (s *lruSet[K]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Package crypto provides the signing substrate for the consensus engines:
// a Signer/Verifier abstraction, a production-grade ed25519 implementation
// (stdlib crypto/ed25519), and a fast deterministic simulation scheme used
// by the discrete-event experiments where signature cost would only add
// noise. Both schemes share one KeyRing API simulating the paper's PKI.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"math/big"

	"repro/internal/types"
)

// Signer produces signatures on behalf of one replica.
type Signer interface {
	// ID returns the replica this signer signs for.
	ID() types.ReplicaID
	// Sign returns a signature over msg.
	Sign(msg []byte) []byte
}

// Verifier checks signatures from any replica in the system.
type Verifier interface {
	// Verify reports whether sig is a valid signature by replica id over msg.
	Verify(id types.ReplicaID, msg, sig []byte) bool
}

// KeyRing holds the key material for all n replicas, playing the role of the
// paper's public-key infrastructure: every replica knows every public key.
type KeyRing struct {
	n       int
	scheme  string
	pubs    []ed25519.PublicKey
	privs   []ed25519.PrivateKey
	simSeed [32]byte
	aggKeys []*big.Int // aggregation scalars (agg schemes only; see agg.go)
}

// Scheme names select the signature implementation. The two aggregate
// variants sign and verify individual messages exactly like their base
// scheme, and additionally compact formed certificates into the constant-size
// aggregated form (types.AggCert, agg.go).
const (
	SchemeEd25519    = "ed25519"
	SchemeSim        = "sim"
	SchemeEd25519Agg = "ed25519-agg"
	SchemeSimAgg     = "sim-agg"
)

// NewKeyRing deterministically derives keys for n replicas from seed.
// scheme is SchemeEd25519 for real signatures, SchemeSim for the fast
// deterministic scheme, or one of the -agg variants which add per-replica
// aggregation scalars for compact certificates.
func NewKeyRing(n int, seed int64, scheme string) (*KeyRing, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crypto: keyring size %d", n)
	}
	kr := &KeyRing{n: n, scheme: scheme}
	switch scheme {
	case SchemeSim, SchemeSimAgg:
		kr.simSeed = sha256.Sum256(types.AppendUint64([]byte("simseed/"), uint64(seed)))
	case SchemeEd25519, SchemeEd25519Agg:
		kr.pubs = make([]ed25519.PublicKey, n)
		kr.privs = make([]ed25519.PrivateKey, n)
		for i := 0; i < n; i++ {
			// Derive a 32-byte ed25519 seed per replica from the ring seed.
			material := types.AppendUint64([]byte("ed25519seed/"), uint64(seed))
			material = types.AppendUint32(material, uint32(i))
			s := sha256.Sum256(material)
			kr.privs[i] = ed25519.NewKeyFromSeed(s[:])
			kr.pubs[i] = kr.privs[i].Public().(ed25519.PublicKey)
		}
	default:
		return nil, fmt.Errorf("crypto: unknown scheme %q", scheme)
	}
	if scheme == SchemeSimAgg || scheme == SchemeEd25519Agg {
		kr.aggKeys = deriveAggKeys(n, seed)
	}
	return kr, nil
}

// N returns the number of replicas in the ring.
func (kr *KeyRing) N() int { return kr.n }

// Signer returns the signer for replica id.
func (kr *KeyRing) Signer(id types.ReplicaID) Signer {
	return &ringSigner{ring: kr, id: id}
}

// Verify implements Verifier.
func (kr *KeyRing) Verify(id types.ReplicaID, msg, sig []byte) bool {
	if int(id) >= kr.n {
		return false
	}
	switch kr.scheme {
	case SchemeSim, SchemeSimAgg:
		expect := kr.simSign(id, msg)
		if len(sig) != len(expect) {
			return false
		}
		// Constant time is irrelevant for the simulation scheme; plain
		// comparison keeps it fast.
		for i := range sig {
			if sig[i] != expect[i] {
				return false
			}
		}
		return true
	default:
		return ed25519.Verify(kr.pubs[id], msg, sig)
	}
}

// simSign computes the deterministic simulation "signature":
// SHA-256(seed || id || msg). It is unforgeable only against adversaries
// that do not know the ring seed, which is exactly the scripted-adversary
// model of the experiments.
func (kr *KeyRing) simSign(id types.ReplicaID, msg []byte) []byte {
	buf := make([]byte, 0, 40+len(msg))
	buf = append(buf, kr.simSeed[:]...)
	buf = types.AppendUint32(buf, uint32(id))
	buf = append(buf, msg...)
	sum := sha256.Sum256(buf)
	return sum[:]
}

type ringSigner struct {
	ring    *KeyRing
	id      types.ReplicaID
	scratch []byte // reused sim-scheme hashing buffer; signers are per-replica
}

func (s *ringSigner) ID() types.ReplicaID { return s.id }

func (s *ringSigner) Sign(msg []byte) []byte {
	switch s.ring.scheme {
	case SchemeSim, SchemeSimAgg:
		// Same derivation as KeyRing.simSign, but through the signer's own
		// scratch buffer: the only allocation left is the returned signature,
		// which the caller retains.
		s.scratch = append(s.scratch[:0], s.ring.simSeed[:]...)
		s.scratch = types.AppendUint32(s.scratch, uint32(s.id))
		s.scratch = append(s.scratch, msg...)
		sum := sha256.Sum256(s.scratch)
		return sum[:]
	default:
		return ed25519.Sign(s.ring.privs[s.id], msg)
	}
}

// VerifyQC checks every signature inside the certificate in addition to its
// structure: quorum size, distinct voters, votes match the certified block.
// One scratch buffer is reused for all per-vote signing payloads. Compact
// certificates (qc.Agg != nil) are checked with the aggregate equation
// instead of per-vote signatures.
func VerifyQC(v Verifier, qc *types.QC, quorum int) error {
	if qc.Agg != nil {
		return verifyAggregate(v, qc, quorum)
	}
	if err := qc.CheckStructure(quorum); err != nil {
		return err
	}
	var scratch [128]byte
	buf := scratch[:0]
	for i := range qc.Votes {
		vote := &qc.Votes[i]
		buf = vote.AppendSigningPayload(buf[:0])
		if !v.Verify(vote.Voter, buf, vote.Signature) {
			return fmt.Errorf("crypto: bad signature on %v", vote)
		}
	}
	return nil
}

// VerifyTC checks every attestation signature inside a timeout certificate
// in addition to its structure: quorum size, ascending distinct attesters,
// attested QC rounds below the certificate round. Each signature is verified
// against the reconstructed timeout signing payload, so the TC proves 2f+1
// replicas really signed timeouts for its round without carrying their QCs.
func VerifyTC(v Verifier, tc *types.TC, quorum int) error {
	if err := tc.CheckStructure(quorum); err != nil {
		return err
	}
	var scratch [64]byte
	for i := range tc.Attestations {
		a := &tc.Attestations[i]
		payload := types.TimeoutSigningPayload(scratch[:0], tc.Round, a.Sender, a.HighRound)
		if !v.Verify(a.Sender, payload, a.Signature) {
			return fmt.Errorf("crypto: bad timeout attestation from %v in %v", a.Sender, tc)
		}
	}
	return nil
}

// VerifyVote checks one vote's signature.
func VerifyVote(v Verifier, vote types.Vote) error {
	var scratch [128]byte
	payload := vote.AppendSigningPayload(scratch[:0])
	if !v.Verify(vote.Voter, payload, vote.Signature) {
		return fmt.Errorf("crypto: bad signature on %v", vote)
	}
	return nil
}

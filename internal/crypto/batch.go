package crypto

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/types"
)

// BatchVerifier accumulates (signer, payload, signature) triples and checks
// them in one pass over the whole batch instead of one call per signature.
// The paper's flexible-quorum certificates make this profitable: every QC
// carries `quorum` independent signatures over tiny payloads, and the
// verification pipeline additionally folds signatures from *different*
// messages into one batch before they reach the engine loop.
//
// The batch is checked shard-by-shard: the verifier splits the items into up
// to `workers` contiguous shards, verifies each shard with one aggregate
// pass, and — only when a shard's aggregate check fails — bisects that shard
// to pinpoint exactly which items are invalid. Bisection preserves exact
// attribution: a corrupted signature in a batch of hundreds is still charged
// to the precise signer, so Byzantine senders cannot hide behind honest
// traffic batched alongside them.
//
// The aggregate check is the substitution point for a true multi-scalar
// ed25519 batch equation (sum([z_i]s_i)B = sum([z_i]R_i) + sum([z_i k_i]A_i);
// ~1.9x over serial verification). The standard library exposes no batch
// primitive, so with stdlib-only ed25519 the aggregate pass degrades to a
// short-circuiting serial sweep of the shard and the speedup comes from the
// worker parallelism, which scales with cores. Swapping in a real batch
// backend changes only the aggregate pass; the accumulation API, sharding,
// and bisection attribution are already shaped for it.
//
// Payload bytes are copied into an internal arena at Add time (callers reuse
// scratch buffers for signing payloads); signature slices are retained and
// must stay immutable until Verify returns. A BatchVerifier is reusable via
// Reset but not safe for concurrent use; Verify itself fans work out to
// goroutines internally.
type BatchVerifier struct {
	v     Verifier
	items []batchItem
	arena []byte
	bad   []int
}

type batchItem struct {
	signer types.ReplicaID
	off    int32
	n      int32
	sig    []byte
}

// NewBatchVerifier creates an empty batch bound to the verifier.
func NewBatchVerifier(v Verifier) *BatchVerifier {
	return &BatchVerifier{v: v}
}

// Reset empties the batch and rebinds it to v, retaining internal buffers so
// steady-state reuse performs no allocations.
func (b *BatchVerifier) Reset(v Verifier) {
	b.v = v
	b.items = b.items[:0]
	b.arena = b.arena[:0]
	b.bad = b.bad[:0]
}

// Add appends one verification job. payload is copied; sig is retained and
// must not be mutated until Verify returns.
func (b *BatchVerifier) Add(signer types.ReplicaID, payload, sig []byte) {
	off := len(b.arena)
	b.arena = append(b.arena, payload...)
	b.items = append(b.items, batchItem{
		signer: signer,
		off:    int32(off),
		n:      int32(len(payload)),
		sig:    sig,
	})
}

// serialBatchThreshold is the batch size below which Verify ignores the
// requested worker count and runs serially on the calling goroutine.
const serialBatchThreshold = 8

// Len returns the number of accumulated jobs.
func (b *BatchVerifier) Len() int { return len(b.items) }

// Bad returns the indices (in Add order, ascending) of the items whose
// signatures failed the last Verify. The slice is reused by Reset.
func (b *BatchVerifier) Bad() []int { return b.bad }

// Verify checks the whole batch and reports whether every signature is
// valid. workers bounds the verification concurrency: < 1 selects
// GOMAXPROCS, 1 keeps everything on the calling goroutine (the mode the
// deterministic simulator uses). On failure Bad() lists the exact invalid
// indices, found by bisecting only the shards whose aggregate check failed.
func (b *BatchVerifier) Verify(workers int) bool {
	b.bad = b.bad[:0]
	n := len(b.items)
	if n == 0 {
		return true
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= serialBatchThreshold {
		// Small batches stay on the calling goroutine regardless of the
		// requested fan-out: the shard bookkeeping and goroutine startup cost
		// 6-10 allocations per call (see BENCH_PR3) with no verification win
		// on a handful of items. Guarded by an AllocsPerRun test.
		workers = 1
	}
	if workers == 1 {
		if !b.valid(0, n) {
			b.bisect(0, n)
		}
		return len(b.bad) == 0
	}
	// Contiguous shards, one goroutine each; each shard bisects privately and
	// the per-shard bad lists are concatenated in shard order, which keeps
	// Bad() ascending without a sort.
	shardBad := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if !b.valid(lo, hi) {
				sub := BatchVerifier{v: b.v, items: b.items, arena: b.arena}
				sub.bisect(lo, hi)
				shardBad[w] = sub.bad
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, bad := range shardBad {
		b.bad = append(b.bad, bad...)
	}
	return len(b.bad) == 0
}

// valid is the aggregate pass over items [lo, hi): it answers only "is every
// signature in this range valid", the exact contract a multi-scalar batch
// equation provides. See the type comment for the stdlib fallback.
func (b *BatchVerifier) valid(lo, hi int) bool {
	for i := lo; i < hi; i++ {
		it := &b.items[i]
		if !b.v.Verify(it.signer, b.arena[it.off:it.off+it.n], it.sig) {
			return false
		}
	}
	return true
}

// bisect pinpoints every invalid item in [lo, hi), which the caller has
// already determined to fail as a whole. Each recursion level re-checks both
// halves aggregately, descending only into failing halves — O(k log n)
// aggregate passes for k bad items.
func (b *BatchVerifier) bisect(lo, hi int) {
	if hi-lo == 1 {
		b.bad = append(b.bad, lo)
		return
	}
	mid := lo + (hi-lo)/2
	if !b.valid(lo, mid) {
		b.bisect(lo, mid)
	}
	if !b.valid(mid, hi) {
		b.bisect(mid, hi)
	}
}

// batchPool recycles BatchVerifiers across the prevalidation workers and the
// engines' QC-verification path, keeping batch construction allocation-free
// in steady state.
var batchPool = sync.Pool{New: func() any { return new(BatchVerifier) }}

// BatchVerifyQC is VerifyQC's batch counterpart: structure check, then all
// vote signatures in one batch pass with up to workers-way concurrency. On
// failure the error names the first offending vote (exact attribution via
// bisection) and how many of the batch were invalid. Compact certificates
// (qc.Agg != nil) carry no per-vote signatures: the aggregate equation IS the
// verify kernel, already one pass over the whole certificate, so they bypass
// the sharded path entirely.
func BatchVerifyQC(v Verifier, qc *types.QC, quorum, workers int) error {
	if qc.Agg != nil {
		return verifyAggregate(v, qc, quorum)
	}
	if err := qc.CheckStructure(quorum); err != nil {
		return err
	}
	if len(qc.Votes) == 0 {
		return nil // genesis QC, valid by convention
	}
	bv := batchPool.Get().(*BatchVerifier)
	bv.Reset(v)
	var scratch [128]byte
	buf := scratch[:0]
	for i := range qc.Votes {
		vote := &qc.Votes[i]
		buf = vote.AppendSigningPayload(buf[:0])
		bv.Add(vote.Voter, buf, vote.Signature)
	}
	var err error
	if !bv.Verify(workers) {
		bad := bv.Bad()
		err = fmt.Errorf("crypto: bad signature on %v (%d of %d in batch invalid)",
			&qc.Votes[bad[0]], len(bad), len(qc.Votes))
	}
	batchPool.Put(bv)
	return err
}
